(* uindex-cli: explore the U-index from the command line.

   Subcommands:
     codes        print the encoded paper schema
     demo         build the Example 1 database and run the Section 3.3 queries
     query        run one query against a freshly generated vehicle database
     explain      static search tree, or EXPLAIN ANALYZE with --analyze
     stats        run a canned workload and dump the metrics registry
     build        persist a generated index to a page file (crash-safe)
     bulk-build   same, but bottom-up from the sorted entry stream
     recover      replay a page file's journal and verify the index
     check        run the full corruption verifier against a page file
     salvage      rebuild a damaged index from the (regenerated) object store
     corrupt      inflict deterministic media damage on a page file
     bench-table1 regenerate Table 1 (small/full size)
     shootout     page-read comparison of U-index vs CG-tree on one config
     serve        serve the generated database over a socket (worker pool)
     client       send request lines to a running server

   Exit codes: 0 success, 1 usage/IO error, 2 corruption detected,
   3 (recover) a torn journal was discarded — the last committed state
   was restored but the in-flight transaction is lost. *)

module Ps = Workload.Paper_schema
module Dg = Workload.Datagen
module Ex = Workload.Experiment
module Qg = Workload.Querygen
module Value = Objstore.Value
module Query = Uindex.Query
module Index = Uindex.Index
module Exec = Uindex.Exec
module Encoding = Oodb_schema.Encoding
module Schema = Oodb_schema.Schema
module Smap = Uindex_shard.Shard_map
module Splitter = Uindex_shard.Splitter
module Router = Uindex_shard.Router

open Cmdliner

(* --- codes -------------------------------------------------------------- *)

let codes_cmd =
  let run extended =
    if extended then
      let e = Ps.extended () in
      Format.printf "%a" Encoding.pp e.b.enc
    else
      let b = Ps.base () in
      Format.printf "%a" Encoding.pp b.enc
  in
  let extended =
    Arg.(value & flag & info [ "extended" ] ~doc:"Include the Section 5 classes.")
  in
  Cmd.v
    (Cmd.info "codes" ~doc:"Print the encoded Fig. 1 schema (the COD relation).")
    Term.(const run $ extended)

(* --- demo --------------------------------------------------------------- *)

let demo_cmd =
  let run () =
    let b = Ps.base () in
    let ex = Ps.example1 b in
    let ch =
      Index.create_class_hierarchy (Storage.Pager.create ()) b.enc
        ~root:b.vehicle ~attr:"color"
    in
    Index.build ch ex.store;
    let path =
      Index.create_path (Storage.Pager.create ()) b.enc ~head:b.vehicle
        ~refs:[ "manufactured_by"; "president" ]
        ~attr:"age"
    in
    Index.build path ex.store;
    let show label idx q =
      let o = Exec.parallel idx q in
      Printf.printf "%-46s -> %s (%d pages)\n" label
        (String.concat ","
           (List.map string_of_int (Exec.head_oids o)))
        o.Exec.page_reads
    in
    Printf.printf "Example 1 database: %d objects\n\n" (Objstore.Store.count ex.store);
    show "red vehicles" ch
      (Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree b.vehicle));
    show "white autos or trucks" ch
      (Query.class_hierarchy ~value:(V_eq (Str "White"))
         (P_union [ P_subtree b.automobile; P_subtree b.truck ]));
    show "vehicles, president aged 50" path
      (Query.path ~value:(V_eq (Int 50))
         [
           Query.comp (P_subtree b.employee);
           Query.comp (P_subtree b.company);
           Query.comp (P_subtree b.vehicle);
         ]);
    show "vehicles of Japanese auto companies" path
      (Query.path ~value:V_any
         [
           Query.comp (P_subtree b.employee);
           Query.comp (P_subtree b.japanese_auto_company);
           Query.comp (P_subtree b.vehicle);
         ])
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Example 1 database and the Section 3.3 queries.")
    Term.(const run $ const ())

(* --- query --------------------------------------------------------------- *)

(* shared by query/serve: drop to the decode-then-search reference
   descent (DESIGN.md §13) for A/B runs against the compare-in-place
   fast path *)
let no_fast_descent_arg =
  Arg.(
    value & flag
    & info [ "no-fast-descent" ]
        ~doc:
          "Use the reference B-tree descent (decode every node) instead \
           of the compare-in-place fast path.  Answers and page reads \
           are identical; this exists for A/B measurement and \
           debugging.")

(* shared by query/explain: size of the cross-query LRU buffer pool; 0
   keeps the paper's exact uncached page-read accounting *)
let cache_pages_arg =
  Arg.(
    value & opt int 0
    & info [ "cache-pages" ]
        ~doc:
          "Attach a shared LRU buffer pool of $(docv) pages to the index. \
           Pool hits are reported separately and never counted as page \
           reads; 0 (the default) keeps the paper's exact uncached \
           accounting."
        ~docv:"N")

let pool_report idx =
  match Index.pool idx with
  | None -> ()
  | Some p ->
      Printf.printf "pool: %d hits, %d misses, %.1f%% hit rate, %d resident\n"
        (Storage.Buffer_pool.hits p)
        (Storage.Buffer_pool.misses p)
        (100. *. Storage.Buffer_pool.hit_rate p)
        (Storage.Buffer_pool.resident p)

let query_cmd =
  let run n_vehicles seed cls color algo cache_pages repeat no_fast =
    if no_fast then Btree.set_fast_descent false;
    let e = Dg.exp1 ~n_vehicles ~seed () in
    let b = e.ext.b in
    let schema = b.schema in
    let cls_id =
      match Schema.find schema cls with
      | Some id -> id
      | None ->
          Printf.eprintf "unknown class %S; try Vehicle, Automobile, Bus...\n" cls;
          exit 1
    in
    let value =
      match color with
      | None -> Query.V_any
      | Some c -> Query.V_eq (Value.Str c)
    in
    let q = Query.class_hierarchy ~value (P_subtree cls_id) in
    let algo = if algo = "forward" then `Forward else `Parallel in
    if cache_pages > 0 then Index.set_cache_pages e.ch_color cache_pages;
    let o = ref (Exec.run ~algo e.ch_color q) in
    for _ = 2 to max 1 repeat do
      o := Exec.run ~algo e.ch_color q
    done;
    let o = !o in
    Printf.printf "%d results, %d page reads%s, %d entries scanned\n"
      (List.length o.Exec.bindings) o.Exec.page_reads
      (if o.Exec.pool_hits > 0 then
         Printf.sprintf " (+%d pool hits)" o.Exec.pool_hits
       else "")
      o.Exec.entries_scanned;
    pool_report e.ch_color
  in
  let n =
    Arg.(value & opt int 12_000 & info [ "n" ] ~doc:"Number of vehicles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let cls =
    Arg.(value & opt string "Bus" & info [ "class" ] ~doc:"Class subtree to query.")
  in
  let color =
    Arg.(value & opt (some string) None & info [ "color" ] ~doc:"Exact color.")
  in
  let algo =
    Arg.(
      value
      & opt (enum [ ("parallel", "parallel"); ("forward", "forward") ]) "parallel"
      & info [ "algo" ] ~doc:"Retrieval algorithm.")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ]
          ~doc:
            "Run the query $(docv) times (the last run's costs are \
             reported) — with $(b,--cache-pages), later runs hit the warm \
             pool."
          ~docv:"K")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Run one class-hierarchy query on a generated vehicle database.")
    Term.(
      const run $ n $ seed $ cls $ color $ algo $ cache_pages_arg $ repeat
      $ no_fast_descent_arg)

(* --- run: textual queries --------------------------------------------------- *)

let run_cmd =
  let run n_vehicles seed qstr algo explain =
    let e = Dg.exp1 ~n_vehicles ~seed () in
    let b = e.ext.b in
    match Uindex.Qparse.parse b.schema qstr with
    | exception Uindex.Qparse.Parse_error m ->
        Printf.eprintf "parse error %s\n" m;
        exit 1
    | q ->
        (* route to the index matching the query's arity *)
        let idx =
          if List.length q.Uindex.Query.comps = 1 then e.ch_color else e.path_age
        in
        let algo = if algo = "forward" then `Forward else `Parallel in
        let o = Exec.run ~algo idx q in
        Printf.printf "query  %s\nindex  %s\n"
          (Uindex.Qparse.to_syntax b.schema q)
          (match Index.kind idx with
          | Index.Class_hierarchy _ -> "class-hierarchy on Vehicle.color"
          | Index.Path _ -> "path on Vehicle.manufactured_by.president.age");
        Printf.printf "%d results, %d page reads, %d entries scanned\n"
          (List.length o.Exec.bindings)
          o.Exec.page_reads o.Exec.entries_scanned;
        List.iteri
          (fun i bnd ->
            if i < 10 then
              Printf.printf "  %s\n"
                (String.concat " / "
                   (List.map
                      (fun (cls, oid) ->
                        Printf.sprintf "%s@%d" (Schema.name b.schema cls) oid)
                      bnd.Exec.comps)))
          o.Exec.bindings;
        if List.length o.Exec.bindings > 10 then Printf.printf "  ...\n";
        if explain then begin
          match Exec.explain idx q with
          | Some visits ->
              print_endline "\nsearch tree (the paper's Fig. 3):";
              Format.printf "%a" Exec.pp_explain visits
          | None ->
              print_endline
                "\n(no static search tree: the value predicate is a \
                 contiguous range; candidates are generated lazily)"
        end
  in
  let n = Arg.(value & opt int 12_000 & info [ "n" ] ~doc:"Number of vehicles.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let qstr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "Query in the paper's syntax, e.g. '(Red, Bus*)' or '([50-60], \
             Employee*, Company*, Vehicle*)'.")
  in
  let algo =
    Arg.(
      value
      & opt (enum [ ("parallel", "parallel"); ("forward", "forward") ]) "parallel"
      & info [ "algo" ] ~doc:"Retrieval algorithm.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print the search tree the parallel algorithm builds (Fig. 3).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a textual query (Section 3.4 syntax).")
    Term.(const run $ n $ seed $ qstr $ algo $ explain)

(* --- explain: search tree and EXPLAIN ANALYZE ------------------------------ *)

let parse_query schema qstr =
  match Uindex.Qparse.parse schema qstr with
  | exception Uindex.Qparse.Parse_error m ->
      Printf.eprintf "parse error %s\n" m;
      exit 1
  | q -> q

let explain_cmd =
  let run n_vehicles seed qstr algo analyze json cache_pages =
    let e = Dg.exp1 ~n_vehicles ~seed () in
    let b = e.ext.b in
    let q = parse_query b.schema qstr in
    let idx =
      if List.length q.Uindex.Query.comps = 1 then e.ch_color else e.path_age
    in
    if analyze then begin
      let algo = if algo = "forward" then `Forward else `Parallel in
      if cache_pages > 0 then begin
        (* warm the pool with one untraced run so the span tree shows
           steady-state behaviour (pool hits vs true page reads) *)
        Index.set_cache_pages idx cache_pages;
        ignore (Exec.run ~algo idx q)
      end;
      let o, sp = Exec.analyze ~algo idx q in
      if json then print_endline (Obs.Json.to_string (Obs.Trace.to_json sp))
      else begin
        Format.printf "%a" Obs.Trace.pp sp;
        Printf.printf
          "total: %d results, %d page reads%s, %d entries scanned\n"
          (List.length o.Exec.bindings)
          o.Exec.page_reads
          (if o.Exec.pool_hits > 0 then
             Printf.sprintf " (+%d pool hits)" o.Exec.pool_hits
           else "")
          o.Exec.entries_scanned;
        pool_report idx
      end
    end
    else
      match Exec.explain idx q with
      | Some visits ->
          print_endline "search tree (the paper's Fig. 3):";
          Format.printf "%a" Exec.pp_explain visits
      | None ->
          print_endline
            "(no static search tree: the value predicate is a contiguous \
             range; candidates are generated lazily — use --analyze to see \
             what the scan actually does)"
  in
  let n = Arg.(value & opt int 12_000 & info [ "n" ] ~doc:"Number of vehicles.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let qstr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:"Query in the paper's syntax, e.g. '(Red, Bus*)'.")
  in
  let algo =
    Arg.(
      value
      & opt (enum [ ("parallel", "parallel"); ("forward", "forward") ]) "parallel"
      & info [ "algo" ] ~doc:"Retrieval algorithm (with $(b,--analyze)).")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Execute the query and print the span tree of what actually \
             happened (per-descent page reads, entries, bindings) instead \
             of the static search tree.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"With $(b,--analyze): print the span tree as JSON.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the search tree for a query (Fig. 3), or EXPLAIN ANALYZE it \
          with $(b,--analyze).  With $(b,--cache-pages), the pool is warmed \
          by one untraced run first so the analyzed run shows steady-state \
          hits.")
    Term.(const run $ n $ seed $ qstr $ algo $ analyze $ json $ cache_pages_arg)

(* --- stats: canned workload + registry dump, or a live-server scrape ------- *)

(* small JSON accessors shared by stats --connect and top *)
let jmember k j = Obs.Json.member k j
let jobj_or_empty = function Some j -> j | None -> Obs.Json.Obj []

let jint j k =
  match jmember k j with
  | Some (Obs.Json.Int i) -> i
  | Some (Obs.Json.Float f) -> int_of_float f
  | _ -> 0

let jfloat j k =
  match jmember k j with
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int i) -> float_of_int i
  | _ -> 0.

let connect_or_die spec =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Uindex_server.Client.connect_spec spec with
  | c -> c
  | exception Uindex_server.Client.Error f ->
      Printf.eprintf "uindex-cli: cannot connect to %s: %s\n" spec
        (Uindex_server.Client.failure_to_string f);
      exit 1

(* a server that dies (or a chaos injector that cuts the connection)
   mid-scrape is an error message and exit 1, not a backtrace *)
let request_or_die f =
  match f () with
  | v -> v
  | exception Uindex_server.Client.Error fl ->
      Printf.eprintf "uindex-cli: server request failed: %s\n"
        (Uindex_server.Client.failure_to_string fl);
      exit 1

let stats_remote spec json monotone_since =
  let module Client = Uindex_server.Client in
  let c = connect_or_die spec in
  request_or_die @@ fun () ->
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let s = Client.stats c in
  let h = Client.health c in
  let combined = Obs.Json.Obj [ ("stats", s); ("health", h) ] in
  (* schema sanity: a live snapshot must carry a non-empty metrics object *)
  (match jmember "metrics" s with
  | Some (Obs.Json.Obj (_ :: _)) -> ()
  | _ ->
      Printf.eprintf "uindex-cli: stats reply carries no metrics snapshot\n";
      exit 1);
  let monotone_ok =
    match monotone_since with
    | None -> true
    | Some file ->
        let before =
          try
            Obs.Json.of_string
              (In_channel.with_open_text file In_channel.input_all)
          with
          | Sys_error msg ->
              Printf.eprintf "uindex-cli: %s\n" msg;
              exit 1
          | Obs.Json.Parse_error msg ->
              Printf.eprintf "uindex-cli: %s: %s\n" file msg;
              exit 1
        in
        let counters_of j =
          jobj_or_empty (Option.bind (jmember "stats" j) (jmember "counters"))
        in
        let deltas =
          Obs.Metrics.delta
            ~before:(counters_of before)
            ~after:(jobj_or_empty (jmember "counters" s))
        in
        let bad = List.filter (fun (_, d) -> d < 0) deltas in
        List.iter
          (fun (k, d) ->
            Printf.eprintf "uindex-cli: counter %s went backwards by %d\n" k
              (-d))
          bad;
        if bad = [] then
          Printf.eprintf "counters monotone: %d counters, +%d events since snapshot\n"
            (List.length deltas)
            (List.fold_left (fun a (_, d) -> a + d) 0 deltas);
        bad = []
  in
  (if json then print_endline (Obs.Json.to_multiline combined)
   else begin
     Printf.printf "server %s: up %.1fs, %d workers, queue %d, %d sessions\n"
       spec (jfloat h "uptime_s") (jint h "workers") (jint h "queue_depth")
       (jint h "active_sessions");
     Printf.printf "lsn: acked=%d durable=%d lag=%d\n" (jint h "acked_lsn")
       (jint h "durable_lsn") (jint h "lsn_lag");
     let sl = jobj_or_empty (jmember "slow_log" h) in
     Printf.printf "slow log: %d/%d entries (threshold %.1f ms)\n"
       (jint sl "length") (jint sl "capacity")
       (float_of_int (jint sl "threshold_ns") /. 1e6);
     let lat = jobj_or_empty (jmember "request_latency" s) in
     Printf.printf
       "request latency (µs): count=%d p50<=%d p90<=%d p99<=%d max=%d\n"
       (jint lat "count") (jint lat "p50" / 1000) (jint lat "p90" / 1000)
       (jint lat "p99" / 1000)
       (jint lat "max" / 1000);
     match jmember "counters" s with
     | Some (Obs.Json.Obj kvs) ->
         print_endline "counters:";
         List.iter
           (fun (k, v) ->
             match v with
             | Obs.Json.Int i -> Printf.printf "  %-40s %12d\n" k i
             | _ -> ())
           kvs
     | _ -> ()
   end);
  if not monotone_ok then exit 1

(* several endpoints: one column per server plus the cluster total — the
   view over a shard fleet (its servers plus the router) *)
let stats_multi specs json =
  let module Client = Uindex_server.Client in
  let scrape spec =
    let c = connect_or_die spec in
    request_or_die @@ fun () ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let s = Client.stats c in
    let h = Client.health c in
    (spec, s, h)
  in
  let snaps = List.map scrape specs in
  let counters s = jobj_or_empty (jmember "counters" s) in
  let merged =
    Obs.Metrics.merge_counters (List.map (fun (_, s, _) -> counters s) snaps)
  in
  if json then
    print_endline
      (Obs.Json.to_multiline
         (Obs.Json.Obj
            [
              ( "endpoints",
                Obs.Json.List
                  (List.map
                     (fun (spec, s, h) ->
                       Obs.Json.Obj
                         [
                           ("endpoint", Obs.Json.Str spec);
                           ("stats", s);
                           ("health", h);
                         ])
                     snaps) );
              ("merged_counters", merged);
            ]))
  else begin
    print_endline "endpoints:";
    List.iteri
      (fun i (spec, _, h) ->
        Printf.printf
          "  [%d] %s: up %.1fs, %d workers, queue %d, %d sessions%s\n" i spec
          (jfloat h "uptime_s") (jint h "workers") (jint h "queue_depth")
          (jint h "active_sessions")
          (match jmember "role" h with
          | Some (Obs.Json.Str r) -> ", role " ^ r
          | _ -> ""))
      snaps;
    let cols = List.map (fun (_, s, _) -> counters s) snaps in
    Printf.printf "%-40s" "counters:";
    List.iteri (fun i _ -> Printf.printf " %11s" (Printf.sprintf "[%d]" i)) cols;
    Printf.printf " %11s\n" "merged";
    match merged with
    | Obs.Json.Obj kvs ->
        List.iter
          (fun (k, v) ->
            match v with
            | Obs.Json.Int total ->
                Printf.printf "  %-38s" k;
                List.iter
                  (fun c -> Printf.printf " %11d" (jint c k))
                  cols;
                Printf.printf " %11d\n" total
            | _ -> ())
          kvs
    | _ -> ()
  end

let stats_cmd =
  let run_canned n_vehicles seed json =
    (* exercise every instrumented subsystem: build the generated database
       (pager, btree), run the Table 1 query mix (exec), then a durable
       build + recover round-trip (journal, buffer pool via experiment) *)
    let e = Dg.exp1 ~n_vehicles ~seed () in
    ignore (Ex.table1 e);
    let file = Filename.temp_file "uindex_stats" ".pages" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
      (fun () ->
        let pager = Storage.Pager.create_file ~page_size:1024 file in
        let b = e.ext.b in
        let ch =
          Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
        in
        Index.build ch e.store;
        Index.sync ch;
        Storage.Pager.close pager;
        ignore (Storage.Pager.recover file));
    (* exercise the request path too, so server.request_ns has a
       distribution: the same dispatch the socket server runs *)
    let db = Uindex.Db.create e.store in
    Uindex.Db.attach_index db e.ch_color;
    Uindex.Db.attach_index db e.path_age;
    let svc = Uindex_server.Service.create ~schema:e.ext.b.schema db in
    List.iter
      (fun line -> ignore (Uindex_server.Service.handle_line svc line))
      [
        "ping";
        "query (Red, Bus*)";
        "query (White, Vehicle*)";
        "query-forward (Red, Bus*)";
        "query ([50-60], Employee*, Company*, Vehicle*)";
        "stats";
      ];
    if json then
      print_endline (Obs.Json.to_multiline (Obs.Metrics.to_json Obs.Metrics.default))
    else begin
      Format.printf "%a" Obs.Metrics.pp Obs.Metrics.default;
      match
        Obs.Metrics.find_summary Obs.Metrics.default "server.request_ns"
      with
      | Some s ->
          Printf.printf
            "request latency (ns): count=%d p50<=%d p95<=%d p99<=%d max=%d\n"
            s.Obs.Metrics.count s.p50 s.p95 s.p99 s.max_value
      | None -> ()
    end
  in
  let run n_vehicles seed json connect monotone_since =
    match connect with
    | Some spec -> (
        match String.split_on_char ',' spec with
        | [] | [ _ ] -> stats_remote spec json monotone_since
        | specs ->
            if monotone_since <> None then begin
              Printf.eprintf
                "uindex-cli: --monotone-since needs a single endpoint\n";
              exit 1
            end;
            stats_multi specs json)
    | None -> run_canned n_vehicles seed json
  in
  let n =
    Arg.(value & opt int 2_000 & info [ "n" ] ~doc:"Number of vehicles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Dump the registry as JSON.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"SPEC"
          ~doc:
            "Scrape a live $(b,serve) instance instead of running the \
             canned workload: $(i,SPEC) is HOST:PORT or a Unix socket \
             path.  Prints the server's stats and health snapshots.  A \
             comma-separated list scrapes every endpoint (a shard fleet) \
             and renders per-endpoint columns plus the merged totals.")
  in
  let monotone_since =
    Arg.(
      value
      & opt (some string) None
      & info [ "monotone-since" ] ~docv:"FILE"
          ~doc:
            "With $(b,--connect): load a previous $(b,--json) snapshot \
             from $(i,FILE) and fail (exit 1) unless every counter is \
             monotone non-decreasing since then.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a canned workload (generated database, Table 1 query mix, one \
          durable build/recover round-trip) and dump the metrics registry — \
          or, with $(b,--connect), scrape a live server's registry over \
          the admin protocol.")
    Term.(const run $ n $ seed $ json $ connect $ monotone_since)

(* --- build: persist an index to a page file ------------------------------- *)

let build_cmd =
  let run file n_vehicles seed page_size sync_each no_checksums =
    let e = Dg.exp1 ~n_vehicles ~seed () in
    let b = e.ext.b in
    let pager =
      Storage.Pager.create_file ~page_size ~checksums:(not no_checksums) file
    in
    let ch =
      Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
    in
    if sync_each then
      (* one durable commit per object: every prefix of the build is a
         state `recover` can restore *)
      Objstore.Store.iter e.store (fun o ->
          Index.index_object ch e.store o.Objstore.Store.oid;
          Index.sync ch)
    else Index.build ch e.store;
    Index.sync ch;
    Printf.printf "%s: %d entries in %d pages (%d physical writes)\n" file
      (Index.entry_count ch)
      (Storage.Pager.page_count pager)
      (Storage.Pager.physical_writes pager);
    Storage.Pager.close pager
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Page file to create (truncated).")
  in
  let n =
    Arg.(value & opt int 12_000 & info [ "n" ] ~doc:"Number of vehicles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let page_size =
    Arg.(value & opt int 1024 & info [ "page-size" ] ~doc:"Page size in bytes.")
  in
  let sync_each =
    Arg.(
      value & flag
      & info [ "sync" ]
          ~doc:
            "Commit after every indexed object instead of once at the end \
             (slow; exercises the journal).")
  in
  let no_checksums =
    Arg.(
      value & flag
      & info [ "no-checksums" ]
          ~doc:
            "Disable per-page checksums (they are on by default for file \
             pagers; without them media damage is served silently).")
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "Build the Vehicle.color class-hierarchy index on a file-backed \
          pager and commit it.")
    Term.(const run $ file $ n $ seed $ page_size $ sync_each $ no_checksums)

(* --- bulk-build: bottom-up sorted load to a page file --------------------- *)

let bulk_build_cmd =
  let run file n_vehicles seed page_size fill no_checksums =
    let e = Dg.exp1 ~n_vehicles ~seed () in
    let b = e.ext.b in
    let pager =
      Storage.Pager.create_file ~page_size ~checksums:(not no_checksums) file
    in
    let ch =
      Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
    in
    let t0 = Unix.gettimeofday () in
    Index.build ~fill ch e.store;
    Index.sync ch;
    let elapsed = Unix.gettimeofday () -. t0 in
    let report = Btree.check_invariants (Index.tree ch) in
    Printf.printf
      "%s: %d entries bulk-loaded into %d pages (avg fill %.2f) in %.3fs (%d \
       physical writes)\n"
      file (Index.entry_count ch)
      (Storage.Pager.page_count pager)
      report.Btree.avg_fill elapsed
      (Storage.Pager.physical_writes pager);
    Storage.Pager.close pager
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Page file to create (truncated).")
  in
  let n =
    Arg.(value & opt int 12_000 & info [ "n" ] ~doc:"Number of vehicles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let page_size =
    Arg.(value & opt int 1024 & info [ "page-size" ] ~doc:"Page size in bytes.")
  in
  let fill =
    Arg.(
      value & opt float 0.9
      & info [ "fill" ] ~docv:"FACTOR"
          ~doc:
            "Leaf/internal fill factor in (0, 1]: pack pages to this \
             fraction, leaving headroom for later inserts.")
  in
  let no_checksums =
    Arg.(
      value & flag
      & info [ "no-checksums" ] ~doc:"Disable per-page checksums.")
  in
  Cmd.v
    (Cmd.info "bulk-build"
       ~doc:
         "Build the Vehicle.color class-hierarchy index bottom-up from the \
          sorted entry stream (each page written once, packed to $(b,--fill)) \
          and commit it — the fast path for initial builds.")
    Term.(const run $ file $ n $ seed $ page_size $ fill $ no_checksums)

(* --- shard-split: partition a page file into COD-range shards -------------- *)

let shard_split_cmd =
  let run source shards out endpoints page_size fill =
    if shards < 1 then begin
      Printf.eprintf "uindex-cli: --shards must be >= 1\n";
      exit 1
    end;
    if not (Sys.file_exists source) then begin
      Printf.eprintf "uindex-cli: no such file: %s\n" source;
      exit 1
    end;
    let b = (Ps.extended ()).b in
    let src_pager = Storage.Pager.open_file source in
    Fun.protect ~finally:(fun () -> Storage.Pager.close src_pager)
    @@ fun () ->
    let src =
      Index.attach_class_hierarchy src_pager b.enc ~root:b.vehicle
        ~attr:"color"
    in
    let bounds = Splitter.choose_boundaries ~source:src ~shards in
    let n = List.length bounds + 1 in
    if n < shards then
      Printf.eprintf
        "uindex-cli: only %d distinct classes to cut on; producing %d \
         shards instead of %d\n"
        n n shards;
    let eps =
      match endpoints with
      | None -> []
      | Some s -> String.split_on_char ',' s
    in
    if eps <> [] && List.length eps <> n then begin
      Printf.eprintf "uindex-cli: %d endpoints given for %d shards\n"
        (List.length eps) n;
      exit 1
    end;
    let file_of i = Printf.sprintf "%s.%d.pages" out i in
    (* bounds b1 < b2 < ... become ["", b1) [b1, b2) ... [bk, inf) *)
    let ranges =
      let rec go lo = function
        | [] -> [ (lo, None) ]
        | b :: rest -> (lo, Some b) :: go b rest
      in
      go "" bounds
    in
    let map =
      Smap.make
        (List.mapi
           (fun i (lo, hi) ->
             {
               Smap.lo;
               hi;
               file = Some (file_of i);
               endpoint = List.nth_opt eps i;
             })
           ranges)
    in
    let pagers = Array.make n None in
    let make_pager i =
      let p = Storage.Pager.create_file ~page_size (file_of i) in
      pagers.(i) <- Some p;
      p
    in
    let idxs = Splitter.split ~fill ~source:src ~make_pager map in
    let total = ref 0 in
    Array.iteri
      (fun i idx ->
        Index.sync idx;
        total := !total + Index.entry_count idx;
        Printf.printf "shard %d: %d entries -> %s%s\n" i
          (Index.entry_count idx) (file_of i)
          (match (Smap.get map i).Smap.endpoint with
          | Some e -> " (" ^ e ^ ")"
          | None -> ""))
      idxs;
    Array.iter (Option.iter Storage.Pager.close) pagers;
    (* every source entry must land on exactly one shard *)
    if !total <> Index.entry_count src then begin
      Printf.eprintf
        "uindex-cli: shard entry counts sum to %d but the source holds %d\n"
        !total (Index.entry_count src);
      exit 2
    end;
    let map_file = out ^ ".map.json" in
    Smap.save map map_file;
    Printf.printf "%s: %d shards, %d entries\n" map_file n !total
  in
  let source =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Source page file (written by $(b,build)/$(b,bulk-build)).")
  in
  let shards =
    Arg.(
      value & opt int 3
      & info [ "shards" ] ~docv:"N" ~doc:"Number of shards to produce.")
  in
  let out =
    Arg.(
      value & opt string "shard"
      & info [ "out" ] ~docv:"PREFIX"
          ~doc:
            "Output prefix: shard $(i,i) goes to $(i,PREFIX).$(i,i).pages \
             and the map to $(i,PREFIX).map.json.")
  in
  let endpoints =
    Arg.(
      value
      & opt (some string) None
      & info [ "endpoints" ] ~docv:"SPEC,SPEC,..."
          ~doc:
            "Comma-separated connect specs recorded in the map, one per \
             shard in range order — what $(b,serve --shard-map) routes \
             to.")
  in
  let page_size =
    Arg.(
      value & opt int 1024
      & info [ "page-size" ] ~docv:"BYTES" ~doc:"Shard page size.")
  in
  let fill =
    Arg.(
      value & opt float 0.9
      & info [ "fill" ] ~docv:"FACTOR"
          ~doc:"Bulk-load fill factor for the shard files, in (0, 1].")
  in
  Cmd.v
    (Cmd.info "shard-split"
       ~doc:
         "Partition a page file into COD-range shards: pick entry-balanced \
          class-subtree boundaries, bulk-load each shard's entries into \
          its own page file, and write the shard map ($(b,serve \
          --shard-map) consumes it).  Exits 2 if the shards do not \
          exactly cover the source.")
    Term.(const run $ source $ shards $ out $ endpoints $ page_size $ fill)

(* --- recover: journal replay + integrity check ----------------------------- *)

let recover_cmd =
  let run file =
    if not (Sys.file_exists file) then (
      Printf.eprintf "uindex-cli: no such file: %s\n" file;
      exit 1);
    let status = Storage.Pager.recover_status file in
    (match status with
    | Storage.Pager.Replayed ->
        print_endline "journal: committed transaction replayed"
    | Storage.Pager.No_journal ->
        print_endline "journal: none (file already consistent)"
    | Storage.Pager.Discarded_torn ->
        print_endline
          "journal: torn commit discarded (last committed state restored; \
           the in-flight transaction is lost)");
    let j name =
      Option.value ~default:0
        (Obs.Metrics.find Obs.Metrics.default ("journal." ^ name))
    in
    Printf.printf
      "journal counters: %d replay(s), %d record(s) replayed, %d torn \
       commit(s) discarded\n"
      (j "replays") (j "records_replayed") (j "torn_discarded");
    (match
       let pager = Storage.Pager.open_file file in
       let t = Btree.reattach pager in
       let r = Btree.check_invariants t in
       Format.printf "tree ok: %a@." Btree.pp_invariant_report r;
       Storage.Pager.close pager
     with
    | () -> ()
    | exception Storage.Storage_error.Corruption { detail; _ } ->
        Printf.eprintf "uindex-cli: %s: %s\n" file detail;
        exit 2
    | exception (Invalid_argument msg | Failure msg) ->
        Printf.eprintf "uindex-cli: %s: %s\n" file msg;
        exit 1);
    if status = Storage.Pager.Discarded_torn then exit 3
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Page file written by $(b,build).")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Replay any interrupted commit on FILE, reattach the index tree, \
          and verify its invariants.  Exits 3 when a torn journal had to be \
          discarded (the last committed state is intact, but the in-flight \
          transaction is lost), 2 when the file is corrupt.")
    Term.(const run $ file)

(* --- check / salvage / corrupt: the corruption-robustness toolkit ----------- *)

module Verify = Uindex.Verify

(* check/salvage regenerate the same deterministic database that `build`
   persisted (same -n / --seed), which doubles as the surviving object
   store the verifier cross-references and salvage rebuilds from. *)
let regen n_vehicles seed = Dg.exp1 ~n_vehicles ~seed ()

let print_report json report =
  if json then print_endline (Obs.Json.to_multiline (Verify.to_json report))
  else Format.printf "%a@." Verify.pp report

(* a file so damaged it cannot even be opened/attached still produces a
   one-issue machine-readable report *)
let unopenable_report ~component ?page detail =
  {
    Verify.ok = false;
    checksums = false;
    pages = 0;
    node_pages = 0;
    overflow_pages = 0;
    free_pages = 0;
    entries = 0;
    issues = [ { Verify.component; page; detail } ];
  }

let check_cmd =
  let run file n_vehicles seed json query =
    if not (Sys.file_exists file) then (
      Printf.eprintf "uindex-cli: no such file: %s\n" file;
      exit 1);
    let e = regen n_vehicles seed in
    let b = e.Dg.ext.b in
    match
      let pager = Storage.Pager.open_file file in
      let ch =
        Index.attach_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
      in
      (pager, ch)
    with
    | exception Storage.Storage_error.Corruption { page; component; detail } ->
        print_report json (unopenable_report ~component ?page detail);
        exit 2
    | exception Invalid_argument msg ->
        Printf.eprintf "uindex-cli: %s: %s\n" file msg;
        exit 1
    | pager, ch ->
        let report = Verify.check ~store:e.Dg.store ch in
        print_report json report;
        (match query with
        | Some qstr when report.Verify.ok ->
            let q = parse_query b.schema qstr in
            let o = Exec.run ~algo:`Parallel ch q in
            Printf.printf "%d results, %d page reads, %d entries scanned\n"
              (List.length o.Exec.bindings)
              o.Exec.page_reads o.Exec.entries_scanned
        | Some _ ->
            print_endline "(query skipped: the index failed verification)"
        | None -> ());
        Storage.Pager.close pager;
        if not report.Verify.ok then exit 2
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Page file written by $(b,build).")
  in
  let n =
    Arg.(value & opt int 12_000 & info [ "n" ] ~doc:"Number of vehicles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.")
  in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "query" ] ~docv:"QUERY"
          ~doc:
            "After a clean verification, run this query (paper syntax) \
             against the on-file index.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify FILE end to end: page reachability vs the free list, \
          B-tree invariants, entry decoding and COD validation, and a \
          cross-reference against the regenerated object store.  Exits 2 \
          when corruption is found.")
    Term.(const run $ file $ n $ seed $ json $ query)

let salvage_cmd =
  let run file n_vehicles seed page_size out json =
    let e = regen n_vehicles seed in
    let b = e.Dg.ext.b in
    let target, rename_over =
      match out with Some o -> (o, None) | None -> (file ^ ".salvage", Some file)
    in
    (* the damaged file is never read: the index is a pure function of the
       object store and schema, so it is rebuilt from the regenerated
       store onto a fresh file and verified before replacing anything *)
    let desc =
      Index.create_class_hierarchy (Storage.Pager.create ()) b.enc
        ~root:b.vehicle ~attr:"color"
    in
    let pager = Storage.Pager.create_file ~page_size target in
    let fresh = Verify.salvage desc e.Dg.store pager in
    let report = Verify.check ~store:e.Dg.store fresh in
    let entries = Index.entry_count fresh in
    let pages = Storage.Pager.page_count pager in
    Storage.Pager.close pager;
    if not report.Verify.ok then begin
      print_report json report;
      Printf.eprintf "uindex-cli: salvage of %s failed verification\n" file;
      exit 2
    end;
    (match rename_over with Some dst -> Sys.rename target dst | None -> ());
    print_report json report;
    Printf.printf "salvaged %s: %d entries in %d pages\n"
      (match rename_over with Some dst -> dst | None -> target)
      entries pages
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Damaged page file to replace.")
  in
  let n =
    Arg.(value & opt int 12_000 & info [ "n" ] ~doc:"Number of vehicles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let page_size =
    Arg.(value & opt int 1024 & info [ "page-size" ] ~doc:"Page size in bytes.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT"
          ~doc:
            "Write the rebuilt index to $(docv) instead of atomically \
             replacing FILE.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.")
  in
  Cmd.v
    (Cmd.info "salvage"
       ~doc:
         "Rebuild the index from the surviving (regenerated) object store \
          onto a fresh page file, verify it, and atomically replace FILE.")
    Term.(const run $ file $ n $ seed $ page_size $ out $ json)

let corrupt_cmd =
  let flip_conv =
    let parse s =
      let int_of s' =
        match int_of_string_opt s' with
        | Some i -> Ok i
        | None -> Error (`Msg (Printf.sprintf "not an integer: %S" s'))
      in
      match String.split_on_char ':' s with
      | [ p ] -> Result.map (fun p -> (p, 0)) (int_of p)
      | [ p; b ] ->
          Result.bind (int_of p) (fun p ->
              Result.map (fun b -> (p, b)) (int_of b))
      | _ -> Error (`Msg "expected PAGE or PAGE:BIT")
    in
    let print ppf (p, b) = Format.fprintf ppf "%d:%d" p b in
    Arg.conv (parse, print)
  in
  let run file flips zeros truncate =
    if not (Sys.file_exists file) then (
      Printf.eprintf "uindex-cli: no such file: %s\n" file;
      exit 1);
    let media =
      List.map
        (fun (page, bit) -> Storage.Pager.Flip_bit { page; bit })
        flips
      @ List.map (fun page -> Storage.Pager.Zero_page { page }) zeros
      @
      match truncate with
      | Some keep -> [ Storage.Pager.Truncate_file { keep } ]
      | None -> []
    in
    if media = [] then (
      Printf.eprintf
        "uindex-cli: nothing to do (use --flip-bit, --zero-page or \
         --truncate)\n";
      exit 1);
    match
      let pager = Storage.Pager.open_file file in
      ignore
        (Storage.Pager.create_faulty
           { Storage.Pager.no_faults with media }
           pager);
      Storage.Pager.close pager
    with
    | () -> Printf.printf "%s: applied %d media fault(s)\n" file (List.length media)
    | exception Invalid_argument msg ->
        Printf.eprintf "uindex-cli: %s\n" msg;
        exit 1
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Page file to damage (in place).")
  in
  let flips =
    Arg.(
      value
      & opt_all flip_conv []
      & info [ "flip-bit" ] ~docv:"PAGE[:BIT]"
          ~doc:"Flip one bit of logical page $(docv) (default bit 0).")
  in
  let zeros =
    Arg.(
      value & opt_all int []
      & info [ "zero-page" ] ~docv:"PAGE"
          ~doc:"Overwrite logical page $(docv) with zeros.")
  in
  let truncate =
    Arg.(
      value
      & opt (some int) None
      & info [ "truncate" ] ~docv:"PAGES"
          ~doc:"Truncate the file to $(docv) physical pages.")
  in
  Cmd.v
    (Cmd.info "corrupt"
       ~doc:
         "Deterministically damage a page file's committed state (for \
          exercising $(b,check), $(b,salvage) and the checksum layer).")
    Term.(const run $ file $ flips $ zeros $ truncate)

(* --- bench-table1 ---------------------------------------------------------- *)

let table1_cmd =
  let run n_vehicles seed =
    let e = Dg.exp1 ~n_vehicles ~seed () in
    print_string (Ex.render_table1 (Ex.table1 e))
  in
  let n =
    Arg.(value & opt int 12_000 & info [ "n" ] ~doc:"Number of vehicles.")
  in
  let seed = Arg.(value & opt int 20260706 & info [ "seed" ] ~doc:"Seed.") in
  Cmd.v
    (Cmd.info "bench-table1" ~doc:"Regenerate Table 1 (visited nodes per query).")
    Term.(const run $ n $ seed)

(* --- shootout ---------------------------------------------------------------- *)

let shootout_cmd =
  let run n_objects n_classes distinct_keys frac reps =
    let cfg =
      { (Dg.default_exp2 ~n_classes ~distinct_keys) with n_objects }
    in
    let d = Dg.exp2 cfg in
    let kind = if frac > 0.0 then Ex.Range frac else Ex.Exact in
    let series =
      Ex.figure_series d ~kind ~set_counts:(if n_classes >= 40 then [ 1; 10; 20; 30; 40 ] else [ 1; 2; 4; 6; 8 ])
        ~reps ~seed:42
    in
    print_string
      (Workload.Table.render_series
         ~title:
           (Printf.sprintf "%s, %d classes, %d keys, %d objects"
              (if frac > 0.0 then Printf.sprintf "range %.1f%%" (100.0 *. frac)
               else "exact match")
              n_classes distinct_keys n_objects)
         ~x_label:"sets" ~series)
  in
  let n =
    Arg.(value & opt int 150_000 & info [ "objects" ] ~doc:"Objects to generate.")
  in
  let classes =
    Arg.(value & opt int 40 & info [ "classes" ] ~doc:"Hierarchy size (8 or 40).")
  in
  let keys =
    Arg.(value & opt int 1000 & info [ "keys" ] ~doc:"Distinct key values.")
  in
  let frac =
    Arg.(
      value & opt float 0.0
      & info [ "range" ] ~doc:"Range fraction of key space (0 = exact match).")
  in
  let reps = Arg.(value & opt int 100 & info [ "reps" ] ~doc:"Repetitions.") in
  Cmd.v
    (Cmd.info "shootout" ~doc:"U-index vs CG-tree page reads (Figures 5-8).")
    Term.(const run $ n $ classes $ keys $ frac $ reps)

(* --- serve / client: the concurrent query service --------------------------- *)

module Server = Uindex_server.Server
module Service = Uindex_server.Service
module Client = Uindex_server.Client
module Chaos = Uindex_server.Chaos
module Scrub = Uindex_server.Scrub

let addr_args =
  let socket =
    Arg.(
      value
      & opt string "uindex.sock"
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path (ignored with $(b,--tcp)).")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Listen/connect on TCP instead, e.g. 127.0.0.1:7771.")
  in
  let combine socket tcp =
    match tcp with
    | None -> Server.Unix_sock socket
    | Some spec -> (
        match String.rindex_opt spec ':' with
        | Some i -> (
            let host = String.sub spec 0 i in
            let port = String.sub spec (i + 1) (String.length spec - i - 1) in
            match int_of_string_opt port with
            | Some p -> Server.Tcp (host, p)
            | None ->
                Printf.eprintf "uindex-cli: bad port in %S\n" spec;
                exit 1)
        | None ->
            Printf.eprintf "uindex-cli: expected HOST:PORT, got %S\n" spec;
            exit 1)
  in
  Term.(const combine $ socket $ tcp)

let parse_chaos_or_die = function
  | None -> None
  | Some spec -> (
      match Chaos.parse spec with
      | Ok s -> Some (Chaos.arm s)
      | Error msg ->
          Printf.eprintf "uindex-cli: %s\n" msg;
          exit 1)

(* the serve/router shutdown loop: announce the bound address, then wait
   for SIGTERM/SIGINT *)
let announce_and_wait server =
  let stop = Atomic.make false in
  let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  Sys.set_signal Sys.sigterm on_signal;
  Sys.set_signal Sys.sigint on_signal;
  (match Server.bound_addr server with
  | Unix.ADDR_UNIX p -> Printf.printf "listening on %s\n%!" p
  | Unix.ADDR_INET (ip, port) ->
      Printf.printf "listening on %s:%d\n%!" (Unix.string_of_inet_addr ip)
        port);
  while not (Atomic.get stop) do
    try Unix.sleepf 0.1 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  print_endline "shutting down"

(* serve --shard-map without --shard-id: the scatter-gather router.  No
   database of its own — every query fans out to the shards the planner
   cannot prune. *)
let run_router mapfile addr workers backlog timeout chaos restart_budget =
  let map =
    match Smap.load mapfile with
    | map -> map
    | exception (Sys_error msg | Invalid_argument msg) ->
        Printf.eprintf "uindex-cli: %s\n" msg;
        exit 1
  in
  let b = (Ps.extended ()).b in
  let backends =
    Array.mapi
      (fun i (s : Smap.shard) ->
        match s.endpoint with
        | Some ep -> Router.Remote ep
        | None ->
            Printf.eprintf
              "uindex-cli: shard %d carries no endpoint in %s (re-run \
               shard-split with --endpoints)\n"
              i mapfile;
            exit 1)
      (Smap.shards map)
  in
  let router =
    Router.create
      ~shard_timeout:(if timeout > 0. then timeout else 5.)
      ~schema:b.schema ~enc:b.enc ~map ~backends ()
  in
  let config =
    { (Server.default_config addr) with workers; backlog;
      request_timeout = timeout; chaos; restart_budget }
  in
  let server = Server.start_handler (Router.handler router) config in
  announce_and_wait server;
  Server.stop server

let serve_cmd =
  let run n_vehicles seed addr workers backlog timeout file churn group_window
      slow_ms slow_log trace_sample no_tracing no_fast chaos_spec scrub_every
      restart_budget shard_map shard_id =
    if no_fast then Btree.set_fast_descent false;
    let chaos = parse_chaos_or_die chaos_spec in
    match (shard_map, shard_id) with
    | None, Some _ ->
        Printf.eprintf "uindex-cli: --shard-id requires --shard-map\n";
        exit 1
    | Some mapfile, None ->
        run_router mapfile addr workers backlog timeout chaos restart_budget
    | shard_role ->
    let shard =
      match shard_role with
      | Some mapfile, Some k -> (
          match Smap.load mapfile with
          | map ->
              if k < 0 || k >= Smap.count map then begin
                Printf.eprintf
                  "uindex-cli: shard id %d out of range (map has %d shards)\n"
                  k (Smap.count map);
                exit 1
              end;
              Some (map, k)
          | exception (Sys_error msg | Invalid_argument msg) ->
              Printf.eprintf "uindex-cli: %s\n" msg;
              exit 1)
      | _ -> None
    in
    let e = Dg.exp1 ~n_vehicles ~seed () in
    let b = e.ext.b in
    let db = Uindex.Db.create e.store in
    (* arity-1 route: the on-file index when given, else the in-memory one;
       a --file index must have been built with the same -n/--seed so its
       entries match the regenerated store.  A shard server takes its page
       file from the map and restricts the arity-3 route to the same COD
       range, so every route answers exactly this shard's slice. *)
    let file_pager =
      match shard with
      | Some (map, k) ->
          let f =
            match (Smap.get map k).Smap.file with
            | Some f -> f
            | None ->
                Printf.eprintf
                  "uindex-cli: shard %d carries no page file in the map\n" k;
                exit 1
          in
          if not (Sys.file_exists f) then begin
            Printf.eprintf "uindex-cli: no such file: %s\n" f;
            exit 1
          end;
          let pager = Storage.Pager.open_file f in
          let ch =
            Index.attach_class_hierarchy pager b.enc ~root:b.vehicle
              ~attr:"color"
          in
          Uindex.Db.attach_index db ch;
          Uindex.Db.attach_index db
            (Splitter.restrict ~source:e.path_age map k
               (Storage.Pager.create ()));
          Some pager
      | None -> (
          Uindex.Db.attach_index db e.path_age;
          match file with
          | None ->
              Uindex.Db.attach_index db e.ch_color;
              None
          | Some f ->
              if not (Sys.file_exists f) then begin
                Printf.eprintf "uindex-cli: no such file: %s\n" f;
                exit 1
              end;
              let pager = Storage.Pager.open_file f in
              let ch =
                Index.attach_class_hierarchy pager b.enc ~root:b.vehicle
                  ~attr:"color"
              in
              Uindex.Db.attach_index db ch;
              Some pager)
    in
    Uindex.Db.set_group_window db group_window;
    let telemetry =
      {
        Service.tracing = not no_tracing;
        sample_every = max 1 trace_sample;
        slow_threshold_ns = int_of_float (slow_ms *. 1e6);
        slow_capacity = max 0 slow_log;
      }
    in
    let shard_info =
      Option.map
        (fun (map, k) ->
          match Smap.topology_json map with
          | Obs.Json.List l -> List.nth l k
          | _ -> Obs.Json.Null)
        shard
    in
    let svc = Service.create ~telemetry ?shard_info ~schema:b.schema db in
    let config = { (Server.default_config addr) with workers; backlog;
                   request_timeout = timeout; chaos; restart_budget } in
    let server = Server.start svc config in
    let scrub =
      if scrub_every > 0. then
        Some
          (Scrub.start
             ~config:{ Scrub.default_config with every = scrub_every }
             db)
      else None
    in
    (* --churn: in-process writer storm alongside the served readers.
       The inserted colors are prefixed so they never match a benchmark
       query: reader replies stay comparable to a churn-free run. *)
    let churn_stop = Atomic.make false in
    let churners =
      List.init (max 0 churn) (fun w ->
          Domain.spawn (fun () ->
              let k = ref 0 in
              while not (Atomic.get churn_stop) do
                let color = Printf.sprintf "zz-churn-%d-%d" w !k in
                ignore
                  (Uindex.Db.insert db ~cls:b.vehicle
                     [ ("color", Value.Str color) ]);
                ignore (Uindex.Db.commit db);
                incr k
              done;
              !k))
    in
    announce_and_wait server;
    Atomic.set churn_stop true;
    let commits = List.fold_left (fun a d -> a + Domain.join d) 0 churners in
    if churn > 0 then Printf.printf "churn writers committed %d times\n" commits;
    Option.iter Scrub.stop scrub;
    Server.stop server;
    (* SIGTERM drain dumps the slow-query log so the slowest requests of
       the run survive the process (stderr keeps stdout scriptable) *)
    let slow = Service.slow_log_json ~limit:16 svc in
    (match Obs.Json.member "count" slow with
    | Some (Obs.Json.Int n) when n > 0 ->
        prerr_endline "slow-query log (newest first):";
        prerr_endline (Obs.Json.to_multiline slow)
    | _ -> ());
    Option.iter Storage.Pager.close file_pager
  in
  let n =
    Arg.(value & opt int 12_000 & info [ "n" ] ~doc:"Number of vehicles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker domains.")
  in
  let backlog =
    Arg.(
      value & opt int 64
      & info [ "backlog" ]
          ~doc:"Queued connections before shedding with an overloaded reply.")
  in
  let timeout =
    Arg.(
      value & opt float 5.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-request deadline and socket timeout; 0 disables.")
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "Serve the class-hierarchy index from this page file (written \
             by $(b,build) with the same $(b,-n)/$(b,--seed)) instead of \
             the in-memory one.")
  in
  let churn =
    Arg.(
      value & opt int 0
      & info [ "churn" ] ~docv:"N"
          ~doc:
            "Run $(i,N) in-process writer threads that insert and commit \
             continuously while the server runs (group-commit exercise; \
             the written values never match benchmark queries).")
  in
  let group_window =
    Arg.(
      value & opt float 0.002
      & info [ "group-window" ] ~docv:"SECONDS"
          ~doc:
            "Group-commit window: how long a commit leader waits for \
             followers before flushing; 0 flushes immediately.")
  in
  let slow_ms =
    Arg.(
      value & opt float 10.
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query threshold in milliseconds: requests at least \
             this slow enter the slow-query log.  0 logs every request.")
  in
  let slow_log =
    Arg.(
      value & opt int 128
      & info [ "slow-log" ] ~docv:"N"
          ~doc:
            "Slow-query log capacity (a ring keeping the most recent \
             $(i,N) slow requests); 0 disables the log.")
  in
  let trace_sample =
    Arg.(
      value & opt int 1
      & info [ "trace-sample" ] ~docv:"K"
          ~doc:
            "Trace 1 in $(i,K) requests (requests carrying a client \
             trace id are always traced).")
  in
  let no_tracing =
    Arg.(
      value & flag
      & info [ "no-tracing" ]
          ~doc:
            "Disable per-request span capture (per-stage histograms and \
             the slow-query log stay on; slow entries just carry no \
             span).")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Arm the seeded fault injector on every connection.  \
             $(docv) is comma-separated key=value pairs: $(b,seed=N), \
             probabilities $(b,reset), $(b,partial), $(b,truncate), \
             $(b,delay), $(b,slow-read), $(b,crash) in [0,1], and \
             $(b,delay-ms=MS).  Example: \
             seed=7,reset=0.05,partial=0.1,delay=0.2,delay-ms=3.")
  in
  let scrub_every =
    Arg.(
      value & opt float 0.
      & info [ "scrub-every" ] ~docv:"SECONDS"
          ~doc:
            "Run the online background scrub this often: each pass \
             re-verifies every serving index against a pinned snapshot \
             (IO-throttled) and quarantines any damage it finds.  0 \
             disables the scrub.")
  in
  let restart_budget =
    Arg.(
      value & opt int 8
      & info [ "restart-budget" ] ~docv:"N"
          ~doc:
            "Worker/acceptor domain respawns the in-process supervisor \
             may perform before letting capacity degrade.")
  in
  let shard_map =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard-map" ] ~docv:"FILE"
          ~doc:
            "Shard map written by $(b,shard-split).  Alone: run the \
             scatter-gather router over the map's endpoints.  With \
             $(b,--shard-id): serve that one shard's page file.")
  in
  let shard_id =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-id" ] ~docv:"K"
          ~doc:
            "With $(b,--shard-map): serve shard $(i,K) — its page file \
             from the map, and the path index restricted to its COD \
             range.  [health] reports the shard's range.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the generated vehicle database over a socket: snapshot-\
          isolated readers on a fixed worker pool, with live telemetry \
          on the admin protocol ($(b,stats)/$(b,health)/$(b,slow-queries) \
          requests).  SIGTERM/SIGINT shut down gracefully (drain, sync, \
          dump the slow-query log, exit 0).  With $(b,--shard-map) the \
          process becomes a scatter-gather router (or, with \
          $(b,--shard-id), one shard of the fleet).")
    Term.(
      const run $ n $ seed $ addr_args $ workers $ backlog $ timeout $ file
      $ churn $ group_window $ slow_ms $ slow_log $ trace_sample
      $ no_tracing $ no_fast_descent_arg $ chaos $ scrub_every
      $ restart_budget $ shard_map $ shard_id)

let client_cmd =
  let run addr requests retry timeout retry_seed stable =
    (* a server that vanishes mid-request should be an error message,
       not a SIGPIPE death *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let failures = ref 0 in
    let note_reply raw =
      print_endline
        (if stable then Router.canonical_projection raw else raw);
      match Obs.Json.of_string raw with
      | j when Uindex_server.Protocol.response_is_ok j -> ()
      | _ -> incr failures
      | exception Obs.Json.Parse_error _ -> incr failures
    in
    let sockaddr =
      match addr with
      | Server.Unix_sock path -> Unix.ADDR_UNIX path
      | Server.Tcp (host, port) ->
          Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
    in
    (if retry > 0 then begin
       (* reconnecting path: transport failures and retryable replies
          are retried with seeded backoff; typed errors print and count *)
       let policy =
         { Client.default_retry_policy with attempts = retry; retry_seed }
       in
       let r = Client.retrying_addr ~timeout ~policy sockaddr in
       Fun.protect
         ~finally:(fun () -> Client.retry_close r)
         (fun () ->
           List.iter
             (fun line ->
               match Client.retry_request_raw r line with
               | raw -> note_reply raw
               | exception Client.Error f ->
                   Printf.printf "(request failed: %s)\n"
                     (Client.failure_to_string f);
                   incr failures)
             requests)
     end
     else begin
       let c =
         match Client.connect_addr ~timeout sockaddr with
         | c -> c
         | exception Client.Error f ->
             Printf.eprintf "uindex-cli: cannot connect: %s\n"
               (Client.failure_to_string f);
             exit 1
       in
       Fun.protect
         ~finally:(fun () -> Client.close c)
         (fun () ->
           List.iter
             (fun line ->
               match Client.request_raw c line with
               | raw -> note_reply raw
               | exception Client.Error f ->
                   Printf.printf "(request failed: %s)\n"
                     (Client.failure_to_string f);
                   incr failures)
             requests)
     end);
    if !failures > 0 then exit 1
  in
  let requests =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Request lines: $(b,ping), $(b,stats), $(b,quit), $(b,query \
             <q>), $(b,query-forward <q>) with $(i,<q>) in the paper's \
             syntax.")
  in
  let retry =
    Arg.(
      value & opt int 0
      & info [ "retry" ] ~docv:"ATTEMPTS"
          ~doc:
            "Retry each request up to $(docv) times total with seeded \
             exponential backoff, reconnecting after transport failures \
             and $(b,overloaded)/$(b,timeout) replies.  0 sends each \
             request exactly once.")
  in
  let timeout =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Socket read/write deadline — a stalled server surfaces as \
             a typed timeout instead of a hang.  0 disables.")
  in
  let retry_seed =
    Arg.(
      value & opt int 1
      & info [ "retry-seed" ] ~docv:"N"
          ~doc:"Seed for the backoff jitter stream (runs are replayable).")
  in
  let stable =
    Arg.(
      value & flag
      & info [ "stable" ]
          ~doc:
            "Print the canonical projection of each reply (drop the \
             deployment-dependent cost fields) — what a sharded and an \
             unsharded deployment must answer byte-identically.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send request lines to a running $(b,serve) instance and print \
          each raw JSON reply.  Exits 1 if any reply is not ok.")
    Term.(
      const run $ addr_args $ requests $ retry $ timeout $ retry_seed
      $ stable)

(* --- supervise: crash -> recover -> re-serve, automatically ----------------- *)

let supervise_cmd =
  let run file n seed socket tcp workers chaos scrub_every churn group_window
      timeout max_restarts =
    if not (Sys.file_exists file) then begin
      Printf.eprintf "uindex-cli: no such file: %s\n" file;
      exit 1
    end;
    (* validate the chaos spec here, before a child ever sees it *)
    ignore (parse_chaos_or_die chaos);
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let stop = ref false in
    let child = ref None in
    let on_signal =
      Sys.Signal_handle
        (fun _ ->
          stop := true;
          (* forward the shutdown so the child drains gracefully *)
          match !child with
          | Some pid -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
          | None -> ())
    in
    Sys.set_signal Sys.sigterm on_signal;
    Sys.set_signal Sys.sigint on_signal;
    let argv =
      Array.of_list
        ([
           Sys.executable_name; "serve"; "--file"; file;
           "-n"; string_of_int n;
           "--seed"; string_of_int seed;
           "--workers"; string_of_int workers;
           "--group-window"; Printf.sprintf "%g" group_window;
           "--timeout"; Printf.sprintf "%g" timeout;
         ]
        @ (match tcp with
          | Some spec -> [ "--tcp"; spec ]
          | None -> [ "--socket"; socket ])
        @ (match chaos with Some c -> [ "--chaos"; c ] | None -> [])
        @ (if scrub_every > 0. then
             [ "--scrub-every"; Printf.sprintf "%g" scrub_every ]
           else [])
        @ (if churn > 0 then [ "--churn"; string_of_int churn ] else []))
    in
    let rec waitpid pid =
      match Unix.waitpid [] pid with
      | _, status -> status
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid pid
    in
    let recover_file () =
      match Storage.Pager.recover_status file with
      | Storage.Pager.Replayed ->
          print_endline "supervise: recover replayed a committed journal"
      | Storage.Pager.No_journal ->
          print_endline "supervise: recover found the file consistent"
      | Storage.Pager.Discarded_torn ->
          print_endline
            "supervise: recover discarded a torn commit (last committed \
             state restored)"
      | exception Storage.Storage_error.Corruption { detail; _ } ->
          Printf.eprintf "uindex-cli: supervise: %s is corrupt: %s\n" file
            detail;
          exit 2
    in
    let restarts = ref 0 in
    let rec loop () =
      Printf.printf "supervise: starting server (restart %d/%d)\n%!"
        !restarts max_restarts;
      let pid =
        Unix.create_process Sys.executable_name argv Unix.stdin Unix.stdout
          Unix.stderr
      in
      child := Some pid;
      let status = waitpid pid in
      child := None;
      match status with
      | Unix.WEXITED 0 -> print_endline "supervise: server exited cleanly"
      | status ->
          let describe =
            match status with
            | Unix.WEXITED n -> Printf.sprintf "exit code %d" n
            | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
            | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
          in
          Printf.eprintf "supervise: server died (%s)\n%!" describe;
          if !stop then ()
          else begin
            (* crash exit: recover the page file, then re-serve — this
               is the process-level tier of the supervision story *)
            recover_file ();
            if !restarts >= max_restarts then begin
              Printf.eprintf
                "uindex-cli: supervise: restart budget (%d) exhausted\n"
                max_restarts;
              exit 1
            end;
            incr restarts;
            Unix.sleepf 0.2;
            loop ()
          end
    in
    loop ()
  in
  let file =
    Arg.(
      required
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Page file the supervised server serves (and recovers).")
  in
  let n =
    Arg.(value & opt int 12_000 & info [ "n" ] ~doc:"Number of vehicles.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let socket =
    Arg.(
      value
      & opt string "uindex.sock"
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path (ignored with $(b,--tcp)).")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Listen on TCP instead.")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker domains.")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:"Forwarded to $(b,serve --chaos).")
  in
  let scrub_every =
    Arg.(
      value & opt float 0.
      & info [ "scrub-every" ] ~docv:"SECONDS"
          ~doc:"Forwarded to $(b,serve --scrub-every).")
  in
  let churn =
    Arg.(
      value & opt int 0
      & info [ "churn" ] ~docv:"N" ~doc:"Forwarded to $(b,serve --churn).")
  in
  let group_window =
    Arg.(
      value & opt float 0.002
      & info [ "group-window" ] ~docv:"SECONDS"
          ~doc:"Forwarded to $(b,serve --group-window).")
  in
  let timeout =
    Arg.(
      value & opt float 5.
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Forwarded to $(b,serve --timeout).")
  in
  let max_restarts =
    Arg.(
      value & opt int 3
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Crash restarts before giving up (a crash loop should page \
             someone, not spin).")
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:
         "Run $(b,serve) as a supervised child process: on a crash exit \
          (a signal or a non-zero status), run journal recovery on the \
          page file and start a fresh server, up to $(b,--max-restarts) \
          times.  SIGTERM/SIGINT forward to the child for a graceful \
          drain.  Exits 2 if the recovered file is corrupt, 1 when the \
          restart budget is exhausted.")
    Term.(
      const run $ file $ n $ seed $ socket $ tcp $ workers $ chaos
      $ scrub_every $ churn $ group_window $ timeout $ max_restarts)

(* --- top: a refreshing live dashboard over the admin protocol -------------- *)

let top_cmd =
  let run_single spec interval iterations raw =
    let c = connect_or_die spec in
    request_or_die @@ fun () ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let prev = ref None in
    let tick = ref 0 in
    let counters j = jobj_or_empty (jmember "counters" j) in
    let summary s name =
      jobj_or_empty (Option.bind (jmember "metrics" s) (jmember name))
    in
    let rec loop () =
      incr tick;
      let s = Client.stats c in
      let h = Client.health c in
      let now = Unix.gettimeofday () in
      (* rates come from counter deltas between ticks; the first tick has
         no baseline and shows "-" *)
      let rate =
        match !prev with
        | None -> fun _ -> None
        | Some (s0, t0) ->
            let dt = max 1e-6 (now -. t0) in
            let deltas =
              Obs.Metrics.delta ~before:(counters s0) ~after:(counters s)
            in
            fun key ->
              Option.map
                (fun d -> float_of_int d /. dt)
                (List.assoc_opt key deltas)
      in
      let fmt_rate = function
        | None -> "       -"
        | Some r -> Printf.sprintf "%8.1f" r
      in
      let buf = Buffer.create 1024 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
      line "uindex top — %s   uptime %.1fs   tick %d (every %.1fs)" spec
        (jfloat h "uptime_s") !tick interval;
      line "workers %d   queue %d   sessions %d   lsn acked=%d durable=%d lag=%d"
        (jint h "workers") (jint h "queue_depth") (jint h "active_sessions")
        (jint h "acked_lsn") (jint h "durable_lsn") (jint h "lsn_lag");
      let sl = jobj_or_empty (jmember "slow_log" h) in
      let gc = jobj_or_empty (jmember "gc" h) in
      line "slow-log %d/%d (threshold %.1f ms)   tracing %s   gc minor-coll %d major-coll %d"
        (jint sl "length") (jint sl "capacity")
        (float_of_int (jint sl "threshold_ns") /. 1e6)
        (match jmember "tracing" h with
        | Some (Obs.Json.Bool true) -> "on"
        | _ -> "off")
        (jint gc "minor_collections")
        (jint gc "major_collections");
      line "";
      let lat = summary s "server.request_ns" in
      line "latency (cumulative µs): p50<=%d p90<=%d p99<=%d max=%d over %d requests"
        (jint lat "p50" / 1000) (jint lat "p90" / 1000)
        (jint lat "p99" / 1000) (jint lat "max" / 1000) (jint lat "count");
      let alloc = summary s "exec.alloc_per_query" in
      line "alloc/query (words): p50<=%d p99<=%d max=%d" (jint alloc "p50")
        (jint alloc "p99") (jint alloc "max");
      line "";
      line "                 rate/s";
      line "qps         %s" (fmt_rate (rate "server.requests"));
      line "errors      %s" (fmt_rate (rate "server.request_errors"));
      line "slow        %s" (fmt_rate (rate "server.slow_queries"));
      let hits = rate "buffer_pool.hits" and misses = rate "buffer_pool.misses" in
      let hit_pct =
        match (hits, misses) with
        | Some hi, Some mi when hi +. mi > 0. ->
            Printf.sprintf "%5.1f%%" (100. *. hi /. (hi +. mi))
        | _ -> "    -"
      in
      line "page reads  %s   pool hit %s" (fmt_rate (rate "pager.reads")) hit_pct;
      line "fsyncs      %s   commits %s" (fmt_rate (rate "journal.fsyncs"))
        (fmt_rate (rate "journal.commits"));
      (* a router also shows its fan-out economy *)
      if jmember "shard.forwarded" (counters s) <> None then
        line "forwarded   %s   pruned %s   shard-fail %s"
          (fmt_rate (rate "shard.forwarded"))
          (fmt_rate (rate "shard.pruned"))
          (fmt_rate (rate "shard.failures"));
      if not raw then print_string "\027[2J\027[H";
      print_string (Buffer.contents buf);
      flush stdout;
      prev := Some (s, now);
      if iterations = 0 || !tick < iterations then begin
        (try Unix.sleepf interval
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
      end
    in
    loop ()
  in
  (* several endpoints: a rate table, one column per server plus the
     cluster total *)
  let run_multi specs interval iterations raw =
    let cs = List.map connect_or_die specs in
    request_or_die @@ fun () ->
    Fun.protect ~finally:(fun () -> List.iter Client.close cs) @@ fun () ->
    let counters j = jobj_or_empty (jmember "counters" j) in
    let prev = ref None in
    let tick = ref 0 in
    let rec loop () =
      incr tick;
      let ss = List.map Client.stats cs in
      let hs = List.map Client.health cs in
      let now = Unix.gettimeofday () in
      let merged = Obs.Metrics.merge_counters (List.map counters ss) in
      let cols = Array.of_list (List.map counters ss @ [ merged ]) in
      let ncols = Array.length cols in
      let rate =
        match !prev with
        | Some (cols0, t0) when Array.length cols0 = ncols ->
            let dt = max 1e-6 (now -. t0) in
            fun i key ->
              Some (float_of_int (jint cols.(i) key - jint cols0.(i) key) /. dt)
        | _ -> fun _ _ -> None
      in
      let fmt_rate = function
        | None -> "        -"
        | Some r -> Printf.sprintf "%9.1f" r
      in
      let buf = Buffer.create 1024 in
      let line fmt =
        Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
      in
      line "uindex top — %d endpoints   tick %d (every %.1fs)"
        (List.length specs) !tick interval;
      List.iteri
        (fun i (spec, h) ->
          line "  [%d] %-28s up %8.1fs   workers %2d   queue %2d   sessions %2d%s"
            i spec (jfloat h "uptime_s") (jint h "workers")
            (jint h "queue_depth")
            (jint h "active_sessions")
            (match jmember "role" h with
            | Some (Obs.Json.Str r) -> "   role " ^ r
            | _ -> ""))
        (List.combine specs hs);
      line "";
      let header = Buffer.create 80 in
      Buffer.add_string header (Printf.sprintf "%-12s" "rate/s");
      for i = 0 to ncols - 2 do
        Buffer.add_string header
          (Printf.sprintf " %9s" (Printf.sprintf "[%d]" i))
      done;
      Buffer.add_string header (Printf.sprintf " %9s" "merged");
      line "%s" (Buffer.contents header);
      let row label key =
        let b = Buffer.create 80 in
        Buffer.add_string b (Printf.sprintf "%-12s" label);
        for i = 0 to ncols - 1 do
          Buffer.add_string b (Printf.sprintf " %s" (fmt_rate (rate i key)))
        done;
        line "%s" (Buffer.contents b)
      in
      row "qps" "server.requests";
      row "errors" "server.request_errors";
      row "slow" "server.slow_queries";
      row "page reads" "pager.reads";
      row "fsyncs" "journal.fsyncs";
      row "commits" "journal.commits";
      if
        Array.exists
          (fun c -> jmember "shard.forwarded" c <> None)
          cols
      then begin
        row "forwarded" "shard.forwarded";
        row "pruned" "shard.pruned";
        row "shard-fail" "shard.failures"
      end;
      if not raw then print_string "\027[2J\027[H";
      print_string (Buffer.contents buf);
      flush stdout;
      prev := Some (cols, now);
      if iterations = 0 || !tick < iterations then begin
        (try Unix.sleepf interval
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        loop ()
      end
    in
    loop ()
  in
  let run spec interval iterations raw =
    match String.split_on_char ',' spec with
    | [] | [ _ ] -> run_single spec interval iterations raw
    | specs -> run_multi specs interval iterations raw
  in
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"SPEC"
          ~doc:
            "Server endpoint: HOST:PORT or a Unix socket path.  A \
             comma-separated list polls every endpoint (a shard fleet) \
             and renders per-endpoint rate columns plus the merged \
             total.")
  in
  let interval =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after $(i,N) refreshes; 0 runs until interrupted.")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Do not clear the screen between refreshes (append frames — \
             for logs and tests).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Poll a running $(b,serve) instance over the admin protocol and \
          render a refreshing dashboard: qps, latency percentiles, cache \
          hit rate, fsync and commit rates, allocation per query, queue \
          and slow-log occupancy.")
    Term.(const run $ connect $ interval $ iterations $ raw)

let () =
  let doc = "A uniform indexing scheme for object-oriented databases (U-index)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "uindex-cli" ~doc)
          [
            codes_cmd;
            demo_cmd;
            query_cmd;
            run_cmd;
            explain_cmd;
            stats_cmd;
            build_cmd;
            bulk_build_cmd;
            shard_split_cmd;
            recover_cmd;
            check_cmd;
            salvage_cmd;
            corrupt_cmd;
            table1_cmd;
            shootout_cmd;
            serve_cmd;
            client_cmd;
            supervise_cmd;
            top_cmd;
          ]))
