(* Tests for the storage substrate: order-preserving encodings, the pager
   and its accounting, the per-query page cache. *)

module Bu = Storage.Bytes_util
module Pager = Storage.Pager
module Stats = Storage.Stats

let test_u16_u32 () =
  let b = Bytes.create 8 in
  List.iter
    (fun v ->
      Bu.put_u16 b 0 v;
      Alcotest.(check int) "u16 roundtrip" v (Bu.get_u16 b 0))
    [ 0; 1; 255; 256; 65535 ];
  List.iter
    (fun v ->
      Bu.put_u32 b 2 v;
      Alcotest.(check int) "u32 roundtrip" v (Bu.get_u32 b 2))
    [ 0; 1; 65536; 0x7FFFFFFF; 0xFFFFFFFF ]

let test_encode_int_order () =
  let vals = [ min_int; -1_000_000; -1; 0; 1; 42; 1_000_000; max_int ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ea = Bu.encode_int a and eb = Bu.encode_int b in
          Alcotest.(check bool)
            (Printf.sprintf "order %d vs %d" a b)
            (compare a b < 0)
            (String.compare ea eb < 0);
          Alcotest.(check int) "roundtrip" a (Bu.decode_int ea 0))
        vals)
    vals

let prop_encode_int_order =
  QCheck.Test.make ~count:1000 ~name:"encode_int preserves order"
    QCheck.(pair int int)
    (fun (a, b) ->
      let c1 = compare a b
      and c2 = String.compare (Bu.encode_int a) (Bu.encode_int b) in
      (c1 < 0) = (c2 < 0) && (c1 = 0) = (c2 = 0))

let prop_encode_u32_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"encode_u32 roundtrip"
    QCheck.(int_bound 0xFFFFFF)
    (fun x -> Bu.decode_u32 (Bu.encode_u32 x) 0 = x)

let test_succ_prefix () =
  Alcotest.(check string) "simple" "ac" (Bu.succ_prefix "ab");
  Alcotest.(check string) "carry" "b" (Bu.succ_prefix "a\xff");
  Alcotest.(check string) "double carry" "b" (Bu.succ_prefix "a\xff\xff");
  Alcotest.check_raises "all ff"
    (Invalid_argument "Bytes_util.succ_prefix: prefix is all 0xff") (fun () ->
      ignore (Bu.succ_prefix "\xff\xff"))

let prop_succ_prefix =
  QCheck.Test.make ~count:1000 ~name:"succ_prefix bounds all extensions"
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 1 8)) small_string)
    (fun (p, ext) ->
      QCheck.assume (String.exists (fun c -> c <> '\xff') p);
      let s = Bu.succ_prefix p in
      String.compare (p ^ ext) s < 0 && String.compare p s < 0)

let test_common_prefix () =
  Alcotest.(check int) "none" 0 (Bu.common_prefix_len "abc" "xyz");
  Alcotest.(check int) "partial" 2 (Bu.common_prefix_len "abc" "abd");
  Alcotest.(check int) "full shorter" 2 (Bu.common_prefix_len "ab" "abc")

let test_pager_basics () =
  let p = Pager.create ~page_size:128 () in
  let a = Pager.alloc p and b = Pager.alloc p in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "live pages" 2 (Pager.page_count p);
  let buf = Bytes.make 128 'x' in
  Pager.write p a buf;
  Alcotest.(check string) "read back" (Bytes.to_string buf)
    (Bytes.to_string (Pager.read p a));
  let s = Pager.stats p in
  Alcotest.(check int) "one read counted" 1 s.Stats.reads;
  Alcotest.(check int) "one write counted" 1 s.Stats.writes;
  Pager.free p a;
  Alcotest.(check int) "freed" 1 (Pager.page_count p);
  Alcotest.check_raises "read after free"
    (Invalid_argument "Pager: page not allocated") (fun () ->
      ignore (Pager.read p a));
  (* freed ids are recycled *)
  let c = Pager.alloc p in
  Alcotest.(check int) "recycled id" a c

let test_pager_wrong_size () =
  let p = Pager.create ~page_size:128 () in
  let a = Pager.alloc p in
  Alcotest.check_raises "wrong size write"
    (Invalid_argument "Pager.write: wrong page size") (fun () ->
      Pager.write p a (Bytes.create 64))

let test_pager_isolation () =
  (* mutating a returned buffer must not corrupt the stored page *)
  let p = Pager.create ~page_size:64 () in
  let a = Pager.alloc p in
  Pager.write p a (Bytes.make 64 'a');
  let buf = Pager.read p a in
  Bytes.fill buf 0 64 'z';
  Alcotest.(check char) "store unchanged" 'a' (Bytes.get (Pager.read p a) 0)

let test_cache_counts_distinct () =
  let p = Pager.create ~page_size:64 () in
  let a = Pager.alloc p and b = Pager.alloc p in
  let s = Pager.stats p in
  Stats.reset s;
  let cache = Pager.Cache.create p in
  ignore (Pager.Cache.read cache a);
  ignore (Pager.Cache.read cache a);
  ignore (Pager.Cache.read cache b);
  ignore (Pager.Cache.read cache a);
  Alcotest.(check int) "two distinct reads" 2 s.Stats.reads;
  Alcotest.(check int) "cache agrees" 2 (Pager.Cache.distinct_reads cache)

let with_temp_pages name f =
  let path = Filename.temp_file name ".pages" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Pager.journal_path path ])
    (fun () -> f path)

let test_file_pager () =
  (* checksums off: this test pins the raw physical layout (logical page
     [i] at physical [i + 1]); the checksummed layout has its own tests
     in test_corruption.ml *)
  with_temp_pages "uindex_pager" (fun path ->
      let p = Pager.create_file ~page_size:128 ~checksums:false path in
      let a = Pager.alloc p and b = Pager.alloc p in
      Pager.write p a (Bytes.make 128 'a');
      Pager.write p b (Bytes.make 128 'b');
      Alcotest.(check char) "a back" 'a' (Bytes.get (Pager.read p a) 0);
      Alcotest.(check char) "b back" 'b' (Bytes.get (Pager.read p b) 0);
      (* before the first sync only the header is on disk *)
      let file_len () =
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        close_in ic;
        len
      in
      Alcotest.(check int) "header only before sync" 128 (file_len ());
      Pager.sync p;
      (* after sync: header + two pages, page b at physical slot 2 *)
      Alcotest.(check int) "file holds two pages" 384 (file_len ());
      let ic = open_in_bin path in
      seek_in ic ((b + 1) * 128);
      Alcotest.(check char) "page b on disk" 'b' (input_char ic);
      close_in ic;
      Alcotest.(check bool) "journal gone after sync" false
        (Sys.file_exists (Pager.journal_path path));
      Pager.free p a;
      Alcotest.check_raises "read after free"
        (Invalid_argument "Pager: page not allocated") (fun () ->
          ignore (Pager.read p a));
      let c = Pager.alloc p in
      Alcotest.(check int) "recycled" a c;
      Alcotest.(check char) "recycled page zeroed" '\000'
        (Bytes.get (Pager.read p c) 0);
      Pager.close p;
      Alcotest.check_raises "closed" (Invalid_argument "Pager: store is closed")
        (fun () -> ignore (Pager.read p b)))

let test_free_list_reopen () =
  (* regression: pages freed in one session must be reused in the next *)
  with_temp_pages "uindex_freelist" (fun path ->
      let p = Pager.create_file ~page_size:128 path in
      let a = Pager.alloc p and b = Pager.alloc p and c = Pager.alloc p in
      Pager.write p a (Bytes.make 128 'a');
      Pager.write p c (Bytes.make 128 'c');
      Pager.free p b;
      Pager.close p;
      let p = Pager.open_file path in
      Alcotest.(check int) "page size restored" 128 (Pager.page_size p);
      Alcotest.(check int) "two live pages" 2 (Pager.page_count p);
      Alcotest.(check char) "a survives" 'a' (Bytes.get (Pager.read p a) 0);
      Alcotest.(check char) "c survives" 'c' (Bytes.get (Pager.read p c) 0);
      Alcotest.check_raises "b still freed"
        (Invalid_argument "Pager: page not allocated") (fun () ->
          ignore (Pager.read p b));
      let d = Pager.alloc p in
      Alcotest.(check int) "freed page reused after reopen" b d;
      let e = Pager.alloc p in
      Alcotest.(check int) "then fresh pages" 3 e;
      Pager.close p;
      (* free-list order itself survives: free two, reopen, reuse LIFO *)
      let p = Pager.open_file path in
      Pager.free p a;
      Pager.free p c;
      Pager.close p;
      let p = Pager.open_file path in
      Alcotest.(check int) "LIFO order preserved" c (Pager.alloc p);
      Alcotest.(check int) "LIFO order preserved 2" a (Pager.alloc p);
      Pager.close p)

let test_meta_roundtrip () =
  with_temp_pages "uindex_meta" (fun path ->
      let p = Pager.create_file ~page_size:128 path in
      Alcotest.(check string) "empty initially" "" (Pager.meta p);
      Pager.set_meta p "root=42";
      Pager.close p;
      let p = Pager.open_file ~page_size:128 path in
      Alcotest.(check string) "meta survives reopen" "root=42" (Pager.meta p);
      Alcotest.check_raises "oversized meta rejected"
        (Invalid_argument "Pager.set_meta: metadata does not fit in the header page")
        (fun () -> Pager.set_meta p (String.make 128 'x'));
      Pager.close p;
      (* page-size cross-check *)
      Alcotest.check_raises "size mismatch"
        (Invalid_argument
           "Pager.open_file: page size mismatch (file has 128, expected 256)")
        (fun () -> ignore (Pager.open_file ~page_size:256 path)))

let test_recover_torn_journal () =
  with_temp_pages "uindex_torn" (fun path ->
      let p = Pager.create_file ~page_size:128 path in
      let a = Pager.alloc p in
      Pager.write p a (Bytes.make 128 'a');
      Pager.close p;
      (* a crash mid-journal leaves garbage with no commit marker *)
      let oc = open_out_bin (Pager.journal_path path) in
      output_string oc "UJRNL1\n\000half-written garbage";
      close_out oc;
      Alcotest.(check bool) "torn journal discarded" false (Pager.recover path);
      Alcotest.(check bool) "journal deleted" false
        (Sys.file_exists (Pager.journal_path path));
      let p = Pager.open_file path in
      Alcotest.(check char) "committed state intact" 'a'
        (Bytes.get (Pager.read p a) 0);
      Pager.close p)

let test_recover_committed_journal () =
  (* checksums off so the transaction is exactly one dirty page + header
     (no checksum-page records) and the write counts below stay exact *)
  with_temp_pages "uindex_commit" (fun path ->
      let p = Pager.create_file ~page_size:128 ~checksums:false path in
      let a = Pager.alloc p in
      Pager.write p a (Bytes.make 128 'a');
      Pager.sync p;
      (* one dirty page -> 2 journal records + trailer = 3 journal writes,
         then 2 checkpoint writes.  Fail the first checkpoint write: the
         journal is committed but the main file is stale. *)
      Pager.write p a (Bytes.make 128 'b');
      let w0 = Pager.physical_writes p in
      let p =
        Pager.create_faulty { Pager.no_faults with fail_write = Some (w0 + 4) } p
      in
      (match Pager.sync p with
      | () -> Alcotest.fail "expected injected fault"
      | exception Pager.Fault _ -> ());
      Alcotest.(check int) "fault counted" 1 (Pager.stats p).Stats.faults;
      (try Pager.close p with Pager.Fault _ -> ());
      Alcotest.(check bool) "journal left behind" true
        (Sys.file_exists (Pager.journal_path path));
      (* open_file replays it automatically *)
      let p = Pager.open_file path in
      Alcotest.(check char) "journal replayed" 'b'
        (Bytes.get (Pager.read p a) 0);
      Alcotest.(check bool) "journal gone" false
        (Sys.file_exists (Pager.journal_path path));
      Pager.close p)

let test_faulty_reads () =
  let p = Pager.create ~page_size:64 () in
  let a = Pager.alloc p in
  Pager.write p a (Bytes.make 64 'a');
  let p =
    Pager.create_faulty { Pager.no_faults with read_error_every = Some 3 } p
  in
  let attempts = ref 0 and faults = ref 0 in
  for _ = 1 to 9 do
    incr attempts;
    match Pager.read p a with
    | _ -> ()
    | exception Pager.Fault _ -> incr faults
  done;
  Alcotest.(check int) "every third read faults" 3 !faults;
  Alcotest.(check int) "faults counted in stats" 3 (Pager.stats p).Stats.faults;
  (* transient: a retry succeeds *)
  Alcotest.(check char) "retry works" 'a' (Bytes.get (Pager.read p a) 0)

let test_torn_memory_write () =
  let p = Pager.create ~page_size:64 () in
  let a = Pager.alloc p in
  Pager.write p a (Bytes.make 64 'o');
  let w0 = Storage.Pager.physical_writes p in
  let p =
    Pager.create_faulty
      { Pager.no_faults with fail_write = Some (w0 + 1); torn = true }
      p
  in
  (match Pager.write p a (Bytes.make 64 'n') with
  | () -> Alcotest.fail "expected injected fault"
  | exception Pager.Fault _ -> ());
  let b = Pager.read p a in
  Alcotest.(check char) "first half new" 'n' (Bytes.get b 0);
  Alcotest.(check char) "second half old" 'o' (Bytes.get b 63);
  (* crashed: all later writes raise *)
  Alcotest.(check bool) "post-crash writes raise" true
    (match Pager.write p a (Bytes.make 64 'x') with
    | () -> false
    | exception Pager.Fault _ -> true)

let test_file_pager_btree () =
  (* the whole B-tree stack runs unchanged over the file backend *)
  let path = Filename.temp_file "uindex_btree" ".pages" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let pager = Pager.create_file ~page_size:256 path in
      let t = Btree.create pager in
      for i = 0 to 499 do
        Btree.insert t ~key:(Printf.sprintf "key%04d" i) ~value:(string_of_int i)
      done;
      Btree.check t;
      Alcotest.(check (option string)) "find through file" (Some "321")
        (Btree.find t "key0321");
      for i = 0 to 249 do
        ignore (Btree.delete t (Printf.sprintf "key%04d" (2 * i)))
      done;
      Btree.check t;
      Alcotest.(check int) "half left" 250 (Btree.length t);
      Pager.close pager)

let test_file_pager_reopen () =
  let path = Filename.temp_file "uindex_reopen" ".pages" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* session 1: build a tree, remember its root *)
      let pager = Pager.create_file ~page_size:256 path in
      let t = Btree.create pager in
      for i = 0 to 299 do
        Btree.insert t ~key:(Printf.sprintf "k%04d" i) ~value:(string_of_int i)
      done;
      let root = Btree.root t in
      Pager.close pager;
      (* session 2: reopen and read it back *)
      let pager = Pager.open_file ~page_size:256 path in
      let t = Btree.attach pager ~root in
      Btree.check t;
      Alcotest.(check int) "entries preserved" 300 (Btree.length t);
      Alcotest.(check (option string)) "value preserved" (Some "42")
        (Btree.find t "k0042");
      (* and keep writing *)
      Btree.insert t ~key:"new" ~value:"entry";
      ignore (Btree.delete t "k0000");
      Btree.check t;
      Alcotest.(check int) "mutations applied" 300 (Btree.length t);
      Pager.close pager;
      (* corrupted length detected *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "stray";
      close_out oc;
      Alcotest.check_raises "bad length"
        (Storage.Storage_error.Corruption
           {
             page = None;
             component = "pager.header";
             detail = "Pager.open_file: file length is not a multiple of page_size";
           })
        (fun () -> ignore (Pager.open_file ~page_size:256 path)))

let test_buffer_pool () =
  let p = Pager.create ~page_size:64 () in
  let ids = List.init 6 (fun _ -> Pager.alloc p) in
  List.iteri (fun i id -> Pager.write p id (Bytes.make 64 (Char.chr (65 + i)))) ids;
  let pool = Storage.Buffer_pool.create ~capacity:3 p in
  let s = Pager.stats p in
  Stats.reset s;
  let a, b, c, d =
    match ids with
    | a :: b :: c :: d :: _ -> (a, b, c, d)
    | _ -> assert false
  in
  ignore (Storage.Buffer_pool.read pool a);
  ignore (Storage.Buffer_pool.read pool b);
  ignore (Storage.Buffer_pool.read pool a);
  Alcotest.(check int) "one hit" 1 (Storage.Buffer_pool.hits pool);
  Alcotest.(check int) "two pager reads" 2 s.Stats.reads;
  (* fill beyond capacity: LRU (b) evicted, a kept (recently used) *)
  ignore (Storage.Buffer_pool.read pool c);
  ignore (Storage.Buffer_pool.read pool d);
  Alcotest.(check int) "resident = capacity" 3 (Storage.Buffer_pool.resident pool);
  Stats.reset s;
  ignore (Storage.Buffer_pool.read pool a);
  Alcotest.(check int) "a still resident" 0 s.Stats.reads;
  ignore (Storage.Buffer_pool.read pool b);
  Alcotest.(check int) "b was evicted" 1 s.Stats.reads;
  (* invalidation forces a re-read *)
  Storage.Buffer_pool.invalidate pool a;
  Stats.reset s;
  ignore (Storage.Buffer_pool.read pool a);
  Alcotest.(check int) "invalidated -> miss" 1 s.Stats.reads;
  (* pool serves current content after re-read *)
  Alcotest.(check char) "content" 'A'
    (Bytes.get (Storage.Buffer_pool.read pool a) 0);
  Storage.Buffer_pool.flush pool;
  Alcotest.(check int) "flushed" 0 (Storage.Buffer_pool.resident pool);
  Alcotest.(check bool) "hit rate sane" true
    (Storage.Buffer_pool.hit_rate pool >= 0.
    && Storage.Buffer_pool.hit_rate pool <= 1.)

(* the LRU-order test that would have caught the original fast-path bug:
   [t.head != Some n] allocated a fresh [Some] so the comparison was
   always true and every hit paid the unlink+relink.  [relinks] counts
   exactly the hits that move a node, so repeated reads of the MRU page
   must leave it untouched, and the full MRU->LRU order must track the
   access sequence. *)
let test_lru_fast_path () =
  let p = Pager.create ~page_size:64 () in
  let ids = Array.init 4 (fun _ -> Pager.alloc p) in
  let pool = Storage.Buffer_pool.create ~capacity:4 p in
  let order () = Storage.Buffer_pool.lru_order pool in
  Array.iter (fun id -> ignore (Storage.Buffer_pool.read pool id)) ids;
  Alcotest.(check (list int)) "misses stack MRU-first"
    [ ids.(3); ids.(2); ids.(1); ids.(0) ]
    (order ());
  (* hammer the MRU head: hits, but never a relink *)
  for _ = 1 to 5 do
    ignore (Storage.Buffer_pool.read pool ids.(3))
  done;
  Alcotest.(check int) "five hits" 5 (Storage.Buffer_pool.hits pool);
  Alcotest.(check int) "MRU hits take the fast path" 0
    (Storage.Buffer_pool.relinks pool);
  Alcotest.(check (list int)) "order unchanged"
    [ ids.(3); ids.(2); ids.(1); ids.(0) ]
    (order ());
  (* a hit in the middle relinks and reorders *)
  ignore (Storage.Buffer_pool.read pool ids.(1));
  Alcotest.(check int) "middle hit relinks" 1
    (Storage.Buffer_pool.relinks pool);
  Alcotest.(check (list int)) "reordered"
    [ ids.(1); ids.(3); ids.(2); ids.(0) ]
    (order ());
  (* the tail: relinked to the front, old second-to-last becomes tail *)
  ignore (Storage.Buffer_pool.read pool ids.(0));
  Alcotest.(check (list int)) "tail to front"
    [ ids.(0); ids.(1); ids.(3); ids.(2) ]
    (order ())

(* write-through: update refreshes resident bytes in place (no recency
   change, no write-allocate) so a later hit can never be stale *)
let test_pool_update () =
  let p = Pager.create ~page_size:64 () in
  let a = Pager.alloc p and b = Pager.alloc p in
  Pager.write p a (Bytes.make 64 'a');
  Pager.write p b (Bytes.make 64 'b');
  let pool = Storage.Buffer_pool.create ~capacity:4 p in
  ignore (Storage.Buffer_pool.read pool a);
  let fresh = Bytes.make 64 'A' in
  Pager.write p a fresh;
  Storage.Buffer_pool.update pool a fresh;
  let s = Pager.stats p in
  Stats.reset s;
  Alcotest.(check char) "updated in place" 'A'
    (Bytes.get (Storage.Buffer_pool.read pool a) 0);
  Alcotest.(check int) "served from pool" 0 s.Stats.reads;
  (* mutating the caller's buffer afterwards must not reach the pool *)
  Bytes.fill fresh 0 64 'Z';
  Alcotest.(check char) "pool holds a copy" 'A'
    (Bytes.get (Storage.Buffer_pool.read pool a) 0);
  (* updating a non-resident page does not allocate it *)
  Storage.Buffer_pool.update pool b (Bytes.make 64 'B');
  Alcotest.(check (list int)) "no write-allocate" [ a ]
    (Storage.Buffer_pool.lru_order pool)

let test_stats_diff () =
  let s = Stats.create () in
  s.reads <- 5;
  let before = Stats.snapshot s in
  s.reads <- 9;
  s.writes <- 2;
  let d = Stats.diff ~before ~after:(Stats.snapshot s) in
  Alcotest.(check int) "read delta" 4 d.Stats.reads;
  Alcotest.(check int) "write delta" 2 d.Stats.writes

let test_check_text () =
  Alcotest.(check string) "plain ok" "hello" (Bu.check_text "hello");
  Alcotest.check_raises "low byte rejected"
    (Invalid_argument "Bytes_util.check_text: byte below 0x08 in text component")
    (fun () -> ignore (Bu.check_text "a\x01b"))

(* the pager against a simple model over random op sequences *)
let prop_pager_model =
  QCheck.Test.make ~count:100 ~name:"pager behaves like an id->bytes map"
    QCheck.(list (pair (int_bound 3) small_nat))
    (fun ops ->
      let p = Pager.create ~page_size:64 () in
      let model : (int, char) Hashtbl.t = Hashtbl.create 8 in
      let live = ref [] in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 ->
              let id = Pager.alloc p in
              Hashtbl.replace model id '\000';
              live := id :: !live
          | 1 -> (
              match !live with
              | id :: _ ->
                  let c = Char.chr (32 + (x mod 90)) in
                  Pager.write p id (Bytes.make 64 c);
                  Hashtbl.replace model id c
              | [] -> ())
          | 2 -> (
              match !live with
              | id :: rest ->
                  Pager.free p id;
                  Hashtbl.remove model id;
                  live := rest
              | [] -> ())
          | _ -> (
              match !live with
              | id :: _ ->
                  if Bytes.get (Pager.read p id) 0 <> Hashtbl.find model id then
                    QCheck.Test.fail_reportf "content mismatch on page %d" id
              | [] -> ()))
        ops;
      Pager.page_count p = Hashtbl.length model
      && Hashtbl.fold
           (fun id c ok -> ok && Bytes.get (Pager.read p id) 0 = c)
           model true)

(* the buffer pool keeps exactly the most recently used pages *)
let prop_lru_order =
  QCheck.Test.make ~count:100 ~name:"buffer pool evicts least recently used"
    QCheck.(list (int_bound 9))
    (fun accesses ->
      let p = Pager.create ~page_size:64 () in
      let ids = Array.init 10 (fun _ -> Pager.alloc p) in
      let capacity = 4 in
      let pool = Storage.Buffer_pool.create ~capacity p in
      let recency = ref [] in
      List.iter
        (fun i ->
          ignore (Storage.Buffer_pool.read pool ids.(i));
          recency := i :: List.filter (fun j -> j <> i) !recency)
        accesses;
      let expected_resident =
        List.filteri (fun rank _ -> rank < capacity) !recency
      in
      (* reading a resident page must not touch the pager *)
      let s = Pager.stats p in
      List.for_all
        (fun i ->
          Stats.reset s;
          ignore (Storage.Buffer_pool.read pool ids.(i));
          s.Stats.reads = 0)
        expected_resident)

(* the buffer pool against a model cache (MRU-first assoc list capped at
   capacity) over random read/write+update/invalidate/flush schedules:
   residency, hit/miss/eviction counters, the Stats.pool_* mirrors and
   content (write-through means a pool read always returns the pager's
   current bytes) must all agree with the model *)
let prop_pool_model =
  QCheck.Test.make ~count:200 ~name:"buffer pool behaves like a model cache"
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun ops ->
      let p = Pager.create ~page_size:64 () in
      let ids = Array.init 8 (fun _ -> Pager.alloc p) in
      Array.iter (fun id -> Pager.write p id (Bytes.make 64 '0')) ids;
      let capacity = 3 in
      let pool = Storage.Buffer_pool.create ~capacity p in
      let s = Pager.stats p in
      Stats.reset s;
      (* model: MRU-first list of resident page ids, plus expected counters *)
      let resident = ref [] in
      let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
      let content = Hashtbl.create 8 in
      Array.iter (fun id -> Hashtbl.replace content id '0') ids;
      List.iter
        (fun (op, x) ->
          let id = ids.(x mod Array.length ids) in
          match op with
          | 0 | 1 | 2 | 3 | 4 | 5 ->
              (* read dominates the schedule, like real traffic *)
              let got = Storage.Buffer_pool.read pool id in
              if Bytes.get got 0 <> Hashtbl.find content id then
                QCheck.Test.fail_reportf "stale bytes for page %d" id;
              if List.mem id !resident then (
                incr hits;
                resident := id :: List.filter (fun j -> j <> id) !resident)
              else (
                incr misses;
                if List.length !resident >= capacity then (
                  incr evictions;
                  resident :=
                    List.filteri
                      (fun rank _ -> rank < capacity - 1)
                      !resident);
                resident := id :: !resident)
          | 6 | 7 ->
              (* write-through: pager write + pool update *)
              let c = Char.chr (Char.code 'a' + (x mod 26)) in
              let page = Bytes.make 64 c in
              Pager.write p id page;
              Storage.Buffer_pool.update pool id page;
              Hashtbl.replace content id c
          | 8 ->
              Storage.Buffer_pool.invalidate pool id;
              resident := List.filter (fun j -> j <> id) !resident
          | _ ->
              Storage.Buffer_pool.flush pool;
              resident := [])
        ops;
      if Storage.Buffer_pool.resident pool > capacity then
        QCheck.Test.fail_reportf "resident %d exceeds capacity %d"
          (Storage.Buffer_pool.resident pool)
          capacity;
      if Storage.Buffer_pool.lru_order pool <> !resident then
        QCheck.Test.fail_report "LRU order diverged from model";
      if
        Storage.Buffer_pool.hits pool <> !hits
        || Storage.Buffer_pool.misses pool <> !misses
        || Storage.Buffer_pool.evictions pool <> !evictions
      then
        QCheck.Test.fail_reportf "counters diverged: pool %d/%d/%d model %d/%d/%d"
          (Storage.Buffer_pool.hits pool)
          (Storage.Buffer_pool.misses pool)
          (Storage.Buffer_pool.evictions pool)
          !hits !misses !evictions;
      (* every miss reached the pager, every hit did not *)
      if s.Stats.reads <> !misses then
        QCheck.Test.fail_reportf "pager reads %d <> misses %d" s.Stats.reads
          !misses;
      (* the per-pager Stats mirrors carry the same story *)
      s.Stats.pool_hits = !hits
      && s.Stats.pool_misses = !misses
      && s.Stats.pool_evictions = !evictions)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_encode_int_order;
      prop_encode_u32_roundtrip;
      prop_succ_prefix;
      prop_pager_model;
      prop_lru_order;
      prop_pool_model;
    ]

let () =
  Alcotest.run "storage"
    [
      ( "encodings",
        [
          Alcotest.test_case "u16/u32" `Quick test_u16_u32;
          Alcotest.test_case "int order" `Quick test_encode_int_order;
          Alcotest.test_case "succ_prefix" `Quick test_succ_prefix;
          Alcotest.test_case "common prefix" `Quick test_common_prefix;
          Alcotest.test_case "check_text" `Quick test_check_text;
        ] );
      ( "pager",
        [
          Alcotest.test_case "alloc/read/write/free" `Quick test_pager_basics;
          Alcotest.test_case "wrong page size" `Quick test_pager_wrong_size;
          Alcotest.test_case "buffer isolation" `Quick test_pager_isolation;
          Alcotest.test_case "cache distinct counting" `Quick
            test_cache_counts_distinct;
          Alcotest.test_case "file backend" `Quick test_file_pager;
          Alcotest.test_case "file-backed btree" `Quick test_file_pager_btree;
          Alcotest.test_case "file reopen" `Quick test_file_pager_reopen;
          Alcotest.test_case "free list reopen" `Quick test_free_list_reopen;
          Alcotest.test_case "meta roundtrip" `Quick test_meta_roundtrip;
          Alcotest.test_case "torn journal discarded" `Quick
            test_recover_torn_journal;
          Alcotest.test_case "committed journal replayed" `Quick
            test_recover_committed_journal;
          Alcotest.test_case "transient read faults" `Quick test_faulty_reads;
          Alcotest.test_case "torn memory write" `Quick test_torn_memory_write;
          Alcotest.test_case "buffer pool LRU" `Quick test_buffer_pool;
          Alcotest.test_case "LRU fast path and order" `Quick
            test_lru_fast_path;
          Alcotest.test_case "pool write-through update" `Quick
            test_pool_update;
          Alcotest.test_case "stats diff" `Quick test_stats_diff;
        ] );
      ("properties", qsuite);
    ]
