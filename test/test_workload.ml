(* Tests for the experiment machinery: generators are deterministic and
   well-formed, the experiment structures agree with each other on query
   results, and the paper's headline comparative shapes hold on a scaled-
   down configuration. *)

module Dg = Workload.Datagen
module Ex = Workload.Experiment
module Qg = Workload.Querygen
module Rng = Workload.Rng
module Value = Objstore.Value
module Query = Uindex.Query
module Exec = Uindex.Exec

let small_cfg =
  { (Dg.default_exp2 ~n_classes:12 ~distinct_keys:50) with n_objects = 4_000; seed = 5 }

let small = lazy (Dg.exp2 small_cfg)

let test_rng_determinism () =
  let a = Rng.create 9 and b = Rng.create 9 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let xs = Rng.sample_distinct (Rng.create 3) 10 40 in
  Alcotest.(check int) "distinct count" 10 (List.length (List.sort_uniq compare xs));
  Alcotest.(check (list int)) "sorted" (List.sort compare xs) xs;
  Alcotest.check_raises "too many"
    (Invalid_argument "Rng.sample_distinct: k > bound") (fun () ->
      ignore (Rng.sample_distinct (Rng.create 1) 5 3))

let test_hierarchy_shape () =
  let s, root, pre = Dg.hierarchy ~n_classes:40 in
  Alcotest.(check int) "class count" 40 (Oodb_schema.Schema.class_count s);
  Alcotest.(check int) "pre-order covers all" 40 (Array.length pre);
  Alcotest.(check int) "root first" root pre.(0)

let test_exp2_builds_consistently () =
  let d = Lazy.force small in
  Alcotest.(check int) "all entries indexed" small_cfg.n_objects
    (Uindex.Index.entry_count d.uindex);
  Alcotest.(check int) "cg holds them too" small_cfg.n_objects
    (Baselines.Cg_tree.entry_count d.cg);
  Btree.check (Uindex.Index.tree d.uindex);
  Baselines.Cg_tree.check d.cg;
  (* same seed -> identical data *)
  let d2 = Dg.exp2 small_cfg in
  Alcotest.(check bool) "deterministic" true (d.entries = d2.entries)

let u_oids d ~lo ~hi ~sets =
  let value =
    if lo = hi then Query.V_eq (Value.Int lo)
    else Query.V_range (Some (Value.Int lo), Some (Value.Int hi))
  in
  let q = Query.class_hierarchy ~value (Qg.union_of_classes sets) in
  Exec.head_oids (Exec.parallel d.Dg.uindex q)

let cg_oids d ~lo ~hi ~sets =
  (if lo = hi then Baselines.Cg_tree.exact d.Dg.cg ~value:(Value.Int lo) ~sets
   else Baselines.Cg_tree.range d.Dg.cg ~lo:(Value.Int lo) ~hi:(Value.Int hi) ~sets)
  |> List.map snd |> List.sort_uniq compare

let reference_oids d ~lo ~hi ~sets =
  Array.to_list d.Dg.entries
  |> List.filter_map (fun (k, cls, oid) ->
         if k >= lo && k <= hi && List.mem cls sets then Some oid else None)
  |> List.sort_uniq compare

let test_structures_agree () =
  let d = Lazy.force small in
  let rng = Rng.create 77 in
  for _ = 1 to 40 do
    let k = 1 + Rng.int rng (Array.length d.classes) in
    let sets = Qg.pick_sets rng Qg.Random ~classes:d.classes ~k in
    let lo = Rng.int rng 50 in
    let hi = min 49 (lo + Rng.int rng 10) in
    let lo, hi = (min lo hi, max lo hi) in
    let expect = reference_oids d ~lo ~hi ~sets in
    Alcotest.(check (list int)) "U = reference" expect (u_oids d ~lo ~hi ~sets);
    Alcotest.(check (list int)) "CG = reference" expect (cg_oids d ~lo ~hi ~sets)
  done

let test_placements () =
  let d = Lazy.force small in
  let rng = Rng.create 4 in
  let near = Qg.pick_sets rng Qg.Near ~classes:d.classes ~k:4 in
  (* near sets are contiguous in pre-order *)
  let indices =
    List.map
      (fun c ->
        let rec find i = if d.classes.(i) = c then i else find (i + 1) in
        find 0)
      near
  in
  let sorted = List.sort compare indices in
  Alcotest.(check bool) "contiguous" true
    (List.mapi (fun i x -> x - i) sorted |> List.sort_uniq compare |> List.length = 1);
  let distant = Qg.pick_sets rng Qg.Distant ~classes:d.classes ~k:4 in
  Alcotest.(check int) "distant distinct" 4
    (List.length (List.sort_uniq compare distant));
  Alcotest.check_raises "too many sets"
    (Invalid_argument "Querygen.pick_sets: more sets than classes") (fun () ->
      ignore (Qg.pick_sets rng Qg.Near ~classes:d.classes ~k:99))

let test_range_bounds () =
  let rng = Rng.create 6 in
  for _ = 1 to 50 do
    let lo, hi = Qg.range_bounds rng ~distinct_keys:1000 ~frac:0.02 in
    Alcotest.(check int) "width" 20 (hi - lo + 1);
    Alcotest.(check bool) "in domain" true (lo >= 0 && hi < 1000)
  done

(* scaled-down versions of the paper's headline comparisons *)
let test_figure_shapes () =
  let d = Lazy.force small in
  let series kind =
    Ex.figure_series d ~kind ~set_counts:[ 1; 6; 12 ] ~reps:20 ~seed:3
  in
  let get name s = List.assoc name s in
  (* exact match: the U-index beats CG-trees and is insensitive to the
     number of sets (paper conclusion, Figure 5) *)
  let s = series Ex.Exact in
  let u = get "B-tree (near sets)" s and cg = get "CG-tree" s in
  let at k l = List.assoc k l in
  if at 12 u > 2.0 *. at 1 u then
    Alcotest.failf "U exact-match grew too much with sets: %.1f -> %.1f" (at 1 u)
      (at 12 u);
  if at 12 cg < at 12 u then
    Alcotest.failf "CG should not beat U on exact match at many sets (%f vs %f)"
      (at 12 cg) (at 12 u);
  (* wide ranges with one set: CG (set grouping) must win *)
  let s = series (Ex.Range 0.2) in
  let u = get "B-tree (near sets)" s and cg = get "CG-tree" s in
  if at 1 cg > at 1 u then
    Alcotest.failf "CG should win 1-set wide ranges (%f vs %f)" (at 1 cg) (at 1 u)

let test_table1_smoke () =
  let e = Dg.exp1 ~n_vehicles:1_500 ~n_companies:80 ~n_employees:40 ~seed:2 () in
  let rows = Ex.table1 e in
  Alcotest.(check int) "20 queries" 20 (List.length rows);
  List.iter
    (fun r ->
      if r.Ex.parallel <= 0 then Alcotest.failf "query %s read no pages" r.Ex.id;
      if r.Ex.parallel > r.Ex.forward + 30 then
        Alcotest.failf "query %s: parallel (%d) way above forward (%d)" r.Ex.id
          r.Ex.parallel r.Ex.forward)
    rows;
  let find id = List.find (fun r -> r.Ex.id = id) rows in
  (* paper conclusion 1: subtree retrieval cheaper than full class tree *)
  if (find "2").Ex.parallel > (find "1").Ex.parallel then
    Alcotest.fail "PassengerBus subtree should cost less than all Buses";
  (* paper conclusion 3: the parallel algorithm beats forward scanning on
     multi-value multi-class queries *)
  if (find "4b").Ex.parallel >= (find "4b").Ex.forward then
    Alcotest.fail "parallel should beat forward on query 4b"

let test_render () =
  let s = Workload.Table.render ~header:[ "a"; "b" ] ~rows:[ [ "1"; "22" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "has rule" true (String.length s > 10);
  let out =
    Workload.Table.render_series ~title:"t" ~x_label:"x"
      ~series:[ ("s1", [ (1, 2.0); (2, 4.5) ]); ("s2", [ (1, 0.1) ]) ]
  in
  Alcotest.(check bool) "missing cell dashed" true
    (String.length out > 0
    && String.split_on_char '\n' out
       |> List.exists (fun l -> String.length l > 0 && l.[String.length l - 1] = '-'))

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
          Alcotest.test_case "hierarchy shape" `Quick test_hierarchy_shape;
          Alcotest.test_case "exp2 build" `Quick test_exp2_builds_consistently;
          Alcotest.test_case "set placements" `Quick test_placements;
          Alcotest.test_case "range bounds" `Quick test_range_bounds;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "U = CG = reference" `Quick test_structures_agree;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "figure shapes" `Slow test_figure_shapes;
          Alcotest.test_case "table 1 smoke" `Slow test_table1_smoke;
          Alcotest.test_case "table rendering" `Quick test_render;
        ] );
    ]
