(* Tests for the grouped (OID-list) entry layout of Section 3.2.1, and its
   agreement with the single-value layout. *)

module Ps = Workload.Paper_schema
module Dg = Workload.Datagen
module Qg = Workload.Querygen
module Value = Objstore.Value
module Query = Uindex.Query
module Index = Uindex.Index
module Exec = Uindex.Exec
module Grouped = Uindex.Grouped
module Rng = Workload.Rng

let sorted = List.sort compare

let test_example1 () =
  let b = Ps.base () in
  let ex = Ps.example1 b in
  let g =
    Grouped.create (Storage.Pager.create ()) b.enc ~root:b.vehicle ~attr:"color"
  in
  Grouped.build g ex.store;
  Btree.check (Grouped.tree g);
  Alcotest.(check int) "six entries" 6 (Grouped.entry_count g);
  let run q = sorted (fst (Grouped.query g q)) in
  Alcotest.(check (list (pair int int)))
    "red vehicles"
    (sorted [ (b.automobile, ex.v3); (b.compact, ex.v4) ])
    (run (Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree b.vehicle)));
  Alcotest.(check (list (pair int int)))
    "white compacts only"
    [ (b.compact, ex.v6) ]
    (run (Query.class_hierarchy ~value:(V_eq (Str "White")) (P_class b.compact)));
  (* slot restriction filters the OID list *)
  Alcotest.(check (list (pair int int)))
    "slot filter"
    [ (b.automobile, ex.v3) ]
    (run
       (Query.class_hierarchy ~value:(V_eq (Str "Red"))
          (Query.P_subtree b.vehicle)
       |> fun q ->
       {
         q with
         Query.comps = [ Query.comp ~slot:(S_oid ex.v3) (P_subtree b.vehicle) ];
       }));
  (* maintenance *)
  Grouped.remove g ~value:(Value.Str "Red") ~cls:b.automobile ex.v3;
  Alcotest.(check (list (pair int int)))
    "after remove"
    [ (b.compact, ex.v4) ]
    (run (Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree b.vehicle)));
  Grouped.insert g ~value:(Value.Str "Red") ~cls:b.automobile ex.v3;
  Alcotest.(check int) "back to six" 6 (Grouped.entry_count g)

let test_agrees_with_single () =
  (* grouped and single-value layouts answer identically on random data *)
  let d =
    Dg.exp2
      { (Dg.default_exp2 ~n_classes:10 ~distinct_keys:30) with
        n_objects = 3_000; seed = 44 }
  in
  let g =
    Grouped.create (Storage.Pager.create ()) d.enc ~root:d.root ~attr:"k"
  in
  Array.iter
    (fun (k, cls, oid) -> Grouped.insert g ~value:(Value.Int k) ~cls oid)
    d.entries;
  Btree.check (Grouped.tree g);
  let rng = Rng.create 9 in
  for _ = 1 to 30 do
    let k = 1 + Rng.int rng 10 in
    let sets = Qg.pick_sets rng Qg.Random ~classes:d.classes ~k in
    let lo = Rng.int rng 30 in
    let hi = min 29 (lo + Rng.int rng 6) in
    let value =
      if Rng.bool rng then Query.V_eq (Value.Int lo)
      else Query.V_range (Some (Value.Int (min lo hi)), Some (Value.Int (max lo hi)))
    in
    let q = Query.class_hierarchy ~value (Qg.union_of_classes sets) in
    let single =
      (Exec.parallel d.uindex q).Exec.bindings
      |> List.map (fun b -> List.hd b.Exec.comps)
      |> sorted
    in
    let grouped = sorted (fst (Grouped.query g q)) in
    Alcotest.(check (list (pair int int))) "same results" single grouped
  done

let test_storage_tradeoff () =
  (* grouped entries store fewer pages with few distinct keys (dense OID
     lists); that is the paper's motivation for mentioning both layouts *)
  let d =
    Dg.exp2
      { (Dg.default_exp2 ~n_classes:10 ~distinct_keys:20) with
        n_objects = 8_000; seed = 3 }
  in
  let g =
    Grouped.create (Storage.Pager.create ()) d.enc ~root:d.root ~attr:"k"
  in
  Array.iter
    (fun (k, cls, oid) -> Grouped.insert g ~value:(Value.Int k) ~cls oid)
    d.entries;
  let single_pages =
    Storage.Pager.page_count (Btree.pager (Index.tree d.uindex))
  in
  let grouped_pages = Storage.Pager.page_count (Btree.pager (Grouped.tree g)) in
  if grouped_pages >= single_pages then
    Alcotest.failf "grouped (%d pages) should beat single-value (%d) at 20 keys"
      grouped_pages single_pages

let () =
  Alcotest.run "grouped"
    [
      ( "grouped-entries",
        [
          Alcotest.test_case "example 1" `Quick test_example1;
          Alcotest.test_case "agrees with single-value" `Quick
            test_agrees_with_single;
          Alcotest.test_case "storage trade-off" `Quick test_storage_tradeoff;
        ] );
    ]
