(* Fault-tolerant serving: the chaos injector, the retrying client, the
   corruption quarantine, the online scrub and domain supervision.

   The headline property mirrors test_corruption's: under a seeded storm
   of connection resets, truncated replies, injected delays, slow-loris
   reads and worker crashes, a retrying client observes only
   byte-identical answers (vs. a fault-free baseline) or typed errors —
   never a hang past its deadline, never a silent wrong answer.  And the
   live quarantine never accuses a page the offline verifier would not. *)

module Dg = Workload.Datagen
module Ps = Workload.Paper_schema
module Db = Uindex.Db
module Index = Uindex.Index
module Verify = Uindex.Verify
module Pager = Storage.Pager
module Json = Obs.Json
module Metrics = Obs.Metrics
module Protocol = Uindex_server.Protocol
module Service = Uindex_server.Service
module Server = Uindex_server.Server
module Client = Uindex_server.Client
module Chaos = Uindex_server.Chaos
module Scrub = Uindex_server.Scrub
module Quarantine = Uindex_server.Quarantine

let metric name =
  Option.value ~default:0 (Metrics.find Metrics.default name)

(* --- chaos spec grammar --------------------------------------------------- *)

let test_spec_parse () =
  (match Chaos.parse "seed=7,reset=0.05,partial=0.1,delay=0.2,delay-ms=3" with
  | Ok s ->
      Alcotest.(check int) "seed" 7 s.Chaos.seed;
      Alcotest.(check (float 1e-9)) "reset" 0.05 s.Chaos.reset;
      Alcotest.(check (float 1e-9)) "partial" 0.1 s.Chaos.partial;
      Alcotest.(check (float 1e-9)) "truncate" 0. s.Chaos.truncate;
      Alcotest.(check (float 1e-9)) "delay" 0.2 s.Chaos.delay;
      Alcotest.(check (float 1e-9)) "delay_ms" 3. s.Chaos.delay_ms;
      (* canonical spelling round-trips *)
      (match Chaos.parse (Chaos.spec_to_string s) with
      | Ok s' -> Alcotest.(check bool) "round trip" true (s = s')
      | Error e -> Alcotest.failf "round trip failed: %s" e)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Chaos.parse "" with
  | Ok s -> Alcotest.(check bool) "empty spec is none" true (s = Chaos.none)
  | Error e -> Alcotest.failf "empty spec: %s" e);
  List.iter
    (fun bad ->
      match Chaos.parse bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "reset"; "reset=1.5"; "reset=-0.1"; "bogus=1"; "seed=abc"; "delay-ms=-1" ]

(* --- server harness -------------------------------------------------------- *)

let with_chaos_server ?(workers = 2) ?(request_timeout = 2.) ?(restart_budget = 1000)
    ?chaos f =
  let e = Dg.exp1 ~n_vehicles:300 ~seed:3 () in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  Db.attach_index db e.path_age;
  let svc = Service.create ~schema:e.ext.b.schema db in
  let dir = Filename.temp_file "uindex_chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "srv.sock" in
  let config =
    {
      (Server.default_config (Server.Unix_sock path)) with
      workers;
      request_timeout;
      chaos = Option.map Chaos.arm chaos;
      restart_budget;
    }
  in
  let server = Server.start svc config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f ~svc ~server ~addr:(Unix.ADDR_UNIX path))

let mix =
  [
    "ping";
    "query (Red, Bus*)";
    "query (White, Vehicle*)";
    "query-forward (Red, Bus*)";
    "query ([50-60], Employee*, Company*, Vehicle*)";
  ]

(* fault-free reply bytes, straight from the service (exactly what an
   honest server writes on the wire) *)
let baseline svc = List.map (fun l -> (l, Service.serve_line svc l)) mix

(* --- the headline differential property ------------------------------------ *)

(* 25 generated chaos specs x 20 requests each = 500 request cases *)
let diff_ok = ref 0
let diff_typed = ref 0
let diff_exhausted = ref 0
let diff_total = ref 0

let typed_error_kinds =
  [
    "bad_request"; "parse_error"; "unroutable"; "frame_too_large";
    "timeout"; "overloaded"; "data_corruption"; "internal";
  ]

let prop_chaos_differential =
  QCheck.Test.make ~count:25
    ~name:"chaos: byte-identical answers or typed errors, never silence"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Chaos.Rng.create (seed + 1) in
      (* independent raw probabilities, then scale the fatal ones
         (reset/partial/truncate/crash) so their sum stays <= 0.35:
         12 attempts make surviving the storm near-certain *)
      let reset = Chaos.Rng.float rng *. 0.5
      and partial = Chaos.Rng.float rng *. 0.5
      and truncate = Chaos.Rng.float rng *. 0.5
      and crash = Chaos.Rng.float rng *. 0.5 in
      let fatal = reset +. partial +. truncate +. crash in
      let scale = if fatal > 0.35 then 0.35 /. fatal else 1. in
      let spec =
        {
          Chaos.seed;
          reset = reset *. scale;
          partial = partial *. scale;
          truncate = truncate *. scale;
          crash = crash *. scale;
          delay = Chaos.Rng.float rng *. 0.3;
          slow_read = Chaos.Rng.float rng *. 0.3;
          delay_ms = 1. +. float_of_int (Chaos.Rng.int rng 3);
        }
      in
      with_chaos_server ~chaos:spec @@ fun ~svc ~server:_ ~addr ->
      let base = baseline svc in
      let policy =
        {
          Client.attempts = 12;
          base_delay = 0.002;
          max_delay = 0.02;
          jitter = 0.5;
          retry_seed = seed;
        }
      in
      let r = Client.retrying_addr ~timeout:2. ~policy addr in
      Fun.protect ~finally:(fun () -> Client.retry_close r) @@ fun () ->
      for i = 0 to 19 do
        let line = List.nth mix (i mod List.length mix) in
        incr diff_total;
        match Client.retry_request_raw r line with
        | raw ->
            if raw = List.assoc line base then incr diff_ok
            else (
              (* not the true answer: it must be a typed error reply *)
              match Json.of_string raw with
              | exception _ ->
                  QCheck.Test.fail_reportf "malformed reply for %S: %s" line
                    raw
              | j ->
                  if Protocol.response_is_ok j then
                    QCheck.Test.fail_reportf
                      "silent wrong answer for %S: %s" line raw
                  else (
                    match Protocol.response_error_kind j with
                    | Some k when List.mem k typed_error_kinds ->
                        incr diff_typed
                    | k ->
                        QCheck.Test.fail_reportf
                          "untyped error for %S: kind %s" line
                          (Option.value ~default:"<none>" k)))
        | exception Client.Error (Client.Exhausted _) -> incr diff_exhausted
        | exception Client.Error f ->
            QCheck.Test.fail_reportf "request %S failed untyped: %s" line
              (Client.failure_to_string f)
      done;
      true)

let test_differential_aggregate () =
  (* the property above must have actually exercised the storm, and
     retries must have carried the overwhelming majority of requests
     through to the true answer *)
  Alcotest.(check int) "all request cases ran" 500 !diff_total;
  let min_ok = !diff_total * 9 / 10 in
  Alcotest.(check bool)
    (Printf.sprintf "availability: %d/%d byte-identical (>= %d), %d typed, %d exhausted"
       !diff_ok !diff_total min_ok !diff_typed !diff_exhausted)
    true
    (!diff_ok >= min_ok);
  Alcotest.(check bool) "the storm happened (chaos.faults > 0)" true
    (metric "chaos.faults" > 0);
  Alcotest.(check bool) "retries happened (client.retries > 0)" true
    (metric "client.retries" > 0)

(* --- client deadlines and retry exhaustion ---------------------------------- *)

let test_client_deadline () =
  (* a listener that accepts nothing: without SO_RCVTIMEO the client
     would hang forever on the reply read (the old bug) *)
  let dir = Filename.temp_file "uindex_dead" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "mute.sock" in
  let lst = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lst (Unix.ADDR_UNIX path);
  Unix.listen lst 4;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lst with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let c = Client.connect_unix ~timeout:0.2 path in
      let t0 = Unix.gettimeofday () in
      (match Client.request_raw c "ping" with
      | _ -> Alcotest.fail "a mute server must not produce a reply"
      | exception Client.Error Client.Timed_out -> ()
      | exception Client.Error f ->
          Alcotest.failf "expected Timed_out, got %s"
            (Client.failure_to_string f));
      let dt = Unix.gettimeofday () -. t0 in
      Client.close c;
      Alcotest.(check bool)
        (Printf.sprintf "bounded by the deadline (%.2fs)" dt)
        true (dt < 2.))

let test_retry_exhaustion () =
  let policy =
    { Client.default_retry_policy with attempts = 3; base_delay = 0.001 }
  in
  let r = Client.retrying ~timeout:0.2 ~policy "/nonexistent/uindex.sock" in
  (match Client.retry_request_raw r "ping" with
  | _ -> Alcotest.fail "no server, no reply"
  | exception Client.Error (Client.Exhausted { attempts; last }) ->
      Alcotest.(check int) "every attempt consumed" 3 attempts;
      Alcotest.(check bool) "last failure described" true
        (String.length last > 0)
  | exception Client.Error f ->
      Alcotest.failf "expected Exhausted, got %s" (Client.failure_to_string f));
  Alcotest.(check int) "two retries for three attempts" 2
    (Client.retry_count r);
  Client.retry_close r

(* --- corruption containment: typed replies + quarantine --------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let write_file path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc b)

(* one pristine class-hierarchy index file over the exp1 store, plus its
   reachable pages (collected via the verifier's throttle hook) *)
let build_pristine_file e path =
  let b = e.Dg.ext.Ps.b in
  let pager = Pager.create_file ~page_size:256 path in
  let idx =
    Index.create_class_hierarchy pager b.Ps.enc ~root:b.Ps.vehicle
      ~attr:"color"
  in
  Index.build idx e.Dg.store;
  Index.sync idx;
  Pager.close pager;
  let pager = Pager.open_file path in
  let idx =
    Index.attach_class_hierarchy pager b.Ps.enc ~root:b.Ps.vehicle
      ~attr:"color"
  in
  let reachable = ref [] in
  let report = Verify.check ~throttle:(fun id -> reachable := id :: !reachable) idx in
  if not report.Verify.ok then Alcotest.fail "pristine file does not verify";
  Pager.close pager;
  List.sort_uniq compare !reachable

let color_queries () =
  Array.to_list (Array.map (fun c -> Printf.sprintf "query (%s, Vehicle*)" c) Ps.colors)

let test_corruption_containment () =
  Quarantine.reset ();
  let e = Dg.exp1 ~n_vehicles:400 ~seed:7 () in
  let b = e.Dg.ext.Ps.b in
  let path = Filename.temp_file "uindex_quar" ".pages" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Pager.journal_path path ])
  @@ fun () ->
  let reachable = build_pristine_file e path in
  let image = read_file path in
  (* fault-free baseline over a pristine copy *)
  let base =
    write_file path image;
    let pager = Pager.open_file path in
    let idx =
      Index.attach_class_hierarchy pager b.Ps.enc ~root:b.Ps.vehicle
        ~attr:"color"
    in
    let db = Db.create e.Dg.store in
    Db.attach_index db idx;
    let svc = Service.create ~schema:b.Ps.schema db in
    let r = List.map (fun l -> (l, Service.serve_line svc l)) (color_queries ()) in
    Pager.close pager;
    r
  in
  (* damage reachable pages highest-id first until one of them is past
     the attach walk (so the server comes up) and a query trips on it *)
  let candidates = List.rev reachable in
  let rec try_candidate = function
    | [] -> Alcotest.fail "no candidate page produced a data_corruption reply"
    | page :: rest -> (
        Quarantine.reset ();
        write_file path image;
        let pager = Pager.open_file path in
        ignore
          (Pager.create_faulty
             { Pager.no_faults with media = [ Pager.Flip_bit { page; bit = 9 } ] }
             pager);
        match
          Index.attach_class_hierarchy pager b.Ps.enc ~root:b.Ps.vehicle
            ~attr:"color"
        with
        | exception Storage.Storage_error.Corruption _ ->
            (* the damage fell on the attach path; pick another page *)
            Pager.close pager;
            try_candidate rest
        | idx -> (
            let db = Db.create e.Dg.store in
            Db.attach_index db idx;
            let svc = Service.create ~schema:b.Ps.schema db in
            let corrupt_replies = ref 0 and ok_replies = ref 0 in
            List.iter
              (fun line ->
                let raw = Service.serve_line svc line in
                let j = Json.of_string raw in
                if Protocol.response_is_ok j then begin
                  (* untouched pages keep answering, byte-identically *)
                  Alcotest.(check string)
                    (Printf.sprintf "clean reply for %S" line)
                    (List.assoc line base) raw;
                  incr ok_replies
                end
                else (
                  Alcotest.(check (option string))
                    (Printf.sprintf "typed kind for %S" line)
                    (Some "data_corruption")
                    (Protocol.response_error_kind j);
                  incr corrupt_replies))
              (color_queries ());
            if !corrupt_replies = 0 then begin
              Pager.close pager;
              try_candidate rest
            end
            else begin
              Alcotest.(check bool) "other pages kept serving" true
                (!ok_replies > 0);
              (* corruption replies must release their sessions: a leak
                 here would pin snapshot reclamation forever *)
              Alcotest.(check int) "sessions drained after corrupt replies"
                0
                (Uindex.Db.active_sessions ());
              (* the quarantine heard about it ... *)
              Alcotest.(check bool) "quarantine populated" true
                (Quarantine.length () > 0);
              List.iter
                (fun (en : Quarantine.entry) ->
                  Alcotest.(check string) "source" "request" en.source)
                (Quarantine.entries ());
              (* ... and the health report concurs *)
              let health = Service.handle_line svc "health" in
              let qlen =
                Option.bind (Json.member "quarantine" health) (fun q ->
                    Option.bind (Json.member "length" q) Json.to_int)
              in
              Alcotest.(check bool) "health reports the quarantine" true
                (match qlen with Some n -> n > 0 | None -> false);
              (* the live quarantine never accuses a page the offline
                 verifier would not *)
              let report = Verify.check idx in
              let verifier_pages =
                List.filter_map (fun i -> i.Verify.page) report.Verify.issues
              in
              List.iter
                (fun p ->
                  if not (List.mem p verifier_pages) then
                    Alcotest.failf
                      "quarantined page %d unknown to the verifier" p)
                (Quarantine.pages ());
              Alcotest.(check bool) "corruption replies counted" true
                (metric "server.corruption_replies" > 0);
              Pager.close pager
            end))
  in
  try_candidate candidates;
  Quarantine.reset ()

(* --- the online scrub ------------------------------------------------------- *)

let wait_for ?(timeout = 10.) what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let test_scrub_clean () =
  Quarantine.reset ();
  let e = Dg.exp1 ~n_vehicles:200 ~seed:3 () in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  let before = metric "scrub.passes" in
  let s =
    Scrub.start
      ~config:{ Scrub.every = 0.05; pause_every = 16; pause = 0.0002 }
      db
  in
  wait_for "two clean scrub passes" (fun () -> Scrub.passes s >= 2);
  Scrub.stop s;
  Scrub.stop s (* idempotent *);
  Alcotest.(check bool) "passes counted" true (metric "scrub.passes" >= before + 2);
  Alcotest.(check bool) "pages visited" true (metric "scrub.pages" > 0);
  Alcotest.(check int) "a clean index quarantines nothing" 0
    (Quarantine.length ())

let test_scrub_finds_damage () =
  Quarantine.reset ();
  let e = Dg.exp1 ~n_vehicles:400 ~seed:7 () in
  let b = e.Dg.ext.Ps.b in
  let path = Filename.temp_file "uindex_scrub" ".pages" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Pager.journal_path path ])
  @@ fun () ->
  let reachable = build_pristine_file e path in
  let image = read_file path in
  let rec try_candidate = function
    | [] -> Alcotest.fail "no candidate page survived attach"
    | page :: rest -> (
        write_file path image;
        let pager = Pager.open_file path in
        ignore
          (Pager.create_faulty
             { Pager.no_faults with media = [ Pager.Flip_bit { page; bit = 3 } ] }
             pager);
        match
          Index.attach_class_hierarchy pager b.Ps.enc ~root:b.Ps.vehicle
            ~attr:"color"
        with
        | exception Storage.Storage_error.Corruption _ ->
            Pager.close pager;
            try_candidate rest
        | idx ->
            let db = Db.create e.Dg.store in
            Db.attach_index db idx;
            let s =
              Scrub.start
                ~config:{ Scrub.every = 0.05; pause_every = 64; pause = 0. }
                db
            in
            wait_for "a scrub pass over damage" (fun () -> Scrub.passes s >= 1);
            Scrub.stop s;
            Alcotest.(check bool) "the scrub quarantined the damage" true
              (Quarantine.length () > 0);
            Alcotest.(check bool) "scrub issues counted" true
              (metric "scrub.issues" > 0);
            List.iter
              (fun (en : Quarantine.entry) ->
                Alcotest.(check string) "source" "scrub" en.source)
              (Quarantine.entries ());
            Pager.close pager)
  in
  try_candidate (List.rev reachable);
  Quarantine.reset ()

(* --- supervision ------------------------------------------------------------ *)

let test_supervised_respawn () =
  (* crash-only chaos at p=0.5: worker domains die constantly, the
     supervisor respawns them, and a retrying client still gets every
     true answer *)
  let spec = { Chaos.none with seed = 11; crash = 0.5 } in
  let restarts_before = metric "server.worker_restarts" in
  with_chaos_server ~workers:2 ~restart_budget:500 ~chaos:spec
  @@ fun ~svc ~server:_ ~addr ->
  let base = baseline svc in
  let policy =
    {
      Client.attempts = 25;
      base_delay = 0.002;
      max_delay = 0.02;
      jitter = 0.5;
      retry_seed = 11;
    }
  in
  let r = Client.retrying_addr ~timeout:2. ~policy addr in
  Fun.protect ~finally:(fun () -> Client.retry_close r) @@ fun () ->
  for i = 0 to 29 do
    let line = List.nth mix (i mod List.length mix) in
    Alcotest.(check string)
      (Printf.sprintf "request %d (%s) answered true bytes" i line)
      (List.assoc line base)
      (Client.retry_request_raw r line)
  done;
  Alcotest.(check bool) "workers were respawned" true
    (metric "server.worker_restarts" > restarts_before);
  Alcotest.(check bool) "crashes were injected" true (metric "chaos.crashes" > 0)

let test_budget_exhaustion () =
  (* budget 0, one worker, certain crash: the first request kills the
     only worker forever — later requests must fail typed (exhausted
     retries), never hang *)
  let spec = { Chaos.none with seed = 5; crash = 1.0 } in
  with_chaos_server ~workers:1 ~restart_budget:0 ~request_timeout:0.5
    ~chaos:spec
  @@ fun ~svc:_ ~server:_ ~addr ->
  let policy =
    {
      Client.attempts = 2;
      base_delay = 0.001;
      max_delay = 0.005;
      jitter = 0.5;
      retry_seed = 5;
    }
  in
  let r = Client.retrying_addr ~timeout:0.4 ~policy addr in
  Fun.protect ~finally:(fun () -> Client.retry_close r) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (match Client.retry_request_raw r "ping" with
  | raw -> Alcotest.failf "dead pool answered: %s" raw
  | exception Client.Error (Client.Exhausted { attempts; _ }) ->
      Alcotest.(check int) "both attempts consumed" 2 attempts
  | exception Client.Error f ->
      Alcotest.failf "expected Exhausted, got %s" (Client.failure_to_string f));
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "failed fast, bounded by deadlines (%.2fs)" dt)
    true (dt < 5.);
  Alcotest.(check int) "no respawn happened" 0 (metric "server.restart_budget_left")

let () =
  Alcotest.run "chaos"
    [
      ( "spec",
        [ Alcotest.test_case "parse and round-trip" `Quick test_spec_parse ] );
      ( "client",
        [
          Alcotest.test_case "read deadline, not a hang" `Quick
            test_client_deadline;
          Alcotest.test_case "typed retry exhaustion" `Quick
            test_retry_exhaustion;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_chaos_differential;
          Alcotest.test_case "aggregate availability" `Quick
            test_differential_aggregate;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "containment: typed replies + quarantine" `Quick
            test_corruption_containment;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "clean passes stay silent" `Quick test_scrub_clean;
          Alcotest.test_case "damage is found and quarantined" `Quick
            test_scrub_finds_damage;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "crashed workers respawn under budget" `Quick
            test_supervised_respawn;
          Alcotest.test_case "exhausted budget fails typed, not hung" `Quick
            test_budget_exhaustion;
        ] );
    ]
