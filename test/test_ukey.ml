(* Tests for the composite-key encoding of U-index entries: clustering
   order, decode roundtrips, and the prefix-successor. *)

module Code = Oodb_schema.Code
module Schema = Oodb_schema.Schema
module Encoding = Oodb_schema.Encoding
module Value = Objstore.Value
module Ukey = Uindex.Ukey
module Ps = Workload.Paper_schema

let setup () =
  let b = Ps.base () in
  let code c = Encoding.code b.enc c in
  (b, code)

let test_entry_ordering () =
  let b, code = setup () in
  (* within one value, a class's entries precede its subclasses', which
     precede the next sibling's: Section 3.2.1's clustering *)
  let k cls oid = Ukey.entry_key ~value:(Value.Str "Red") [ (code cls, oid) ] in
  let veh = k b.vehicle 1 in
  let auto = k b.automobile 2 in
  let compact = k b.compact 3 in
  let truck = k b.truck 4 in
  Alcotest.(check bool) "vehicle < automobile" true (veh < auto);
  Alcotest.(check bool) "automobile < compact" true (auto < compact);
  Alcotest.(check bool) "compact < truck" true (compact < truck);
  (* values group first *)
  let blue = Ukey.entry_key ~value:(Value.Str "Blue") [ (code b.truck, 9) ] in
  Alcotest.(check bool) "Blue group before Red" true (blue < veh)

let test_path_entry_ordering () =
  let b, code = setup () in
  let k eoid coid void =
    Ukey.entry_key ~value:(Value.Int 50)
      [ (code b.employee, eoid); (code b.company, coid); (code b.vehicle, void) ]
  in
  (* same employee+company clusters, vehicles vary last *)
  Alcotest.(check bool) "vehicle varies last" true (k 1 2 3 < k 1 2 4);
  Alcotest.(check bool) "company groups" true (k 1 2 9 < k 1 3 1);
  Alcotest.(check bool) "employee groups" true (k 1 9 9 < k 2 1 1)

let test_component_order_enforced () =
  let b, code = setup () in
  Alcotest.check_raises "descending rejected"
    (Invalid_argument "Ukey.entry_key: components not in ascending code order")
    (fun () ->
      ignore
        (Ukey.entry_key ~value:(Value.Int 1)
           [ (code b.vehicle, 1); (code b.employee, 2) ]));
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Ukey.entry_key: no components") (fun () ->
      ignore (Ukey.entry_key ~value:(Value.Int 1) []))

let test_decode_roundtrip () =
  let b, code = setup () in
  let comps =
    [ (code b.employee, 7); (code b.company, 11); (code b.compact, 123456) ]
  in
  let key = Ukey.entry_key ~value:(Value.Int 50) comps in
  let d = Ukey.decode ~enc:b.enc ~ty:Schema.Int key in
  Alcotest.(check bool) "value" true (d.Ukey.value = Value.Int 50);
  Alcotest.(check (list (pair int int)))
    "components"
    [ (b.employee, 7); (b.company, 11); (b.compact, 123456) ]
    d.Ukey.comps;
  (* string-valued keys *)
  let key = Ukey.entry_key ~value:(Value.Str "Red") [ (code b.truck, 5) ] in
  let d = Ukey.decode ~enc:b.enc ~ty:Schema.String key in
  Alcotest.(check bool) "str value" true (d.Ukey.value = Value.Str "Red");
  Alcotest.(check (list (pair int int))) "str comps" [ (b.truck, 5) ] d.Ukey.comps

let test_decode_offsets () =
  let b, code = setup () in
  let comps = [ (code b.employee, 1); (code b.vehicle, 2) ] in
  let key = Ukey.entry_key ~value:(Value.Int 9) comps in
  let d = Ukey.decode ~enc:b.enc ~ty:Schema.Int key in
  List.iter2
    (fun (cs, os, oe) (c, _) ->
      (* the code region really serializes back to the component's class *)
      let ser = String.sub key cs (os - 1 - cs) in
      Alcotest.(check bool) "code slice" true
        (Encoding.class_of_serialized b.enc ser = Some c);
      Alcotest.(check int) "oid is 4 bytes" 4 (oe - os))
    d.Ukey.comp_offsets d.Ukey.comps;
  (* the final offset ends the key *)
  let _, _, last_end = List.nth d.Ukey.comp_offsets 1 in
  Alcotest.(check int) "covers whole key" (String.length key) last_end

let test_decode_malformed () =
  let b, _ = setup () in
  let raises s =
    match Ukey.decode ~enc:b.enc ~ty:Schema.Int s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "expected decode failure"
  in
  raises "";
  raises "short";
  raises (Value.encode (Value.Int 5));
  raises (Value.encode (Value.Int 5) ^ "\x01");
  raises (Value.encode (Value.Int 5) ^ "\x01ZZ\x02\x01\x00\x00")

let prop_roundtrip =
  let b, code = setup () in
  QCheck.Test.make ~count:500 ~name:"entry_key/decode roundtrip"
    QCheck.(pair (int_bound 1_000_000) (int_bound 0xFFFFFF))
    (fun (v, oid) ->
      let comps =
        [ (code b.employee, oid); (code b.company, oid + 1); (code b.vehicle, oid + 2) ]
      in
      let key = Ukey.entry_key ~value:(Value.Int v) comps in
      let d = Ukey.decode ~enc:b.enc ~ty:Schema.Int key in
      d.Ukey.value = Value.Int v
      && d.Ukey.comps
         = [ (b.employee, oid); (b.company, oid + 1); (b.vehicle, oid + 2) ])

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ]

let () =
  Alcotest.run "ukey"
    [
      ( "encoding",
        [
          Alcotest.test_case "class clustering" `Quick test_entry_ordering;
          Alcotest.test_case "path clustering" `Quick test_path_entry_ordering;
          Alcotest.test_case "component order" `Quick test_component_order_enforced;
          Alcotest.test_case "decode roundtrip" `Quick test_decode_roundtrip;
          Alcotest.test_case "decode offsets" `Quick test_decode_offsets;
          Alcotest.test_case "malformed keys" `Quick test_decode_malformed;
        ] );
      ("properties", qsuite);
    ]
