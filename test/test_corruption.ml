(* Corruption robustness: the per-page checksum layer, media-fault
   injection, [Pager.open_file] diagnostics, the buffer pool's
   no-cache-on-failure guarantee, and the headline property — over
   hundreds of randomized corruptions of a real index file, every query
   either returns byte-identical results or raises
   {!Storage.Storage_error.Corruption}.  Never a silent wrong answer.
   And [Verify.salvage] always restores oracle-identical results. *)

module Pager = Storage.Pager
module Bu = Storage.Bytes_util
module Err = Storage.Storage_error
module Pool = Storage.Buffer_pool
module Value = Objstore.Value
module Index = Uindex.Index
module Verify = Uindex.Verify
module Query = Uindex.Query
module Exec = Uindex.Exec
module Dg = Workload.Datagen
module Ps = Workload.Paper_schema
module Rng = Workload.Rng

let with_temp name f =
  let path = Filename.temp_file name ".pages" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Pager.journal_path path ])
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let write_file path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc b)

(* mangle the file in place through [f], which may also shorten it *)
let patch path f =
  let b = read_file path in
  write_file path (f b)

(* a small valid page file: [pages] pages of recognizable content *)
let build_file ?(page_size = 128) ?(checksums = true) ~pages path =
  let p = Pager.create_file ~page_size ~checksums path in
  for i = 0 to pages - 1 do
    let id = Pager.alloc p in
    Pager.write p id (Bytes.make page_size (Char.chr (65 + (i mod 26))))
  done;
  Pager.sync p;
  Pager.close p

let expect_corruption ?component ?page what fn =
  match fn () with
  | _ -> Alcotest.failf "%s: expected Storage_error.Corruption" what
  | exception Err.Corruption { component = c; page = p; _ } ->
      Option.iter
        (fun want -> Alcotest.(check string) (what ^ ": component") want c)
        component;
      Option.iter
        (fun want ->
          Alcotest.(check (option int)) (what ^ ": page") (Some want) p)
        page

(* ------------------------------------------------------------------ *)
(* open_file diagnostics: every corrupt-header detector, by mangling a
   valid file on disk                                                  *)
(* ------------------------------------------------------------------ *)

let ps = 128

(* recompute the header's trailing FNV after editing header fields, so
   the test reaches the detector BEHIND the checksum *)
let fix_header_fnv b = Bu.put_u32 b (ps - 4) (Bu.fnv32 b 0 (ps - 4))

let test_open_truncated () =
  with_temp "uc_trunc" (fun path ->
      build_file ~pages:3 path;
      patch path (fun b -> Bytes.sub b 0 8);
      expect_corruption ~component:"pager.header" "truncated file" (fun () ->
          Pager.open_file path))

let test_open_bad_magic () =
  with_temp "uc_magic" (fun path ->
      build_file ~pages:3 path;
      patch path (fun b -> Bytes.set b 0 'X'; b);
      match Pager.open_file path with
      | _ -> Alcotest.fail "bad magic: expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_open_bad_header_checksum () =
  with_temp "uc_hsum" (fun path ->
      build_file ~pages:3 path;
      (* flip a bit of the live-count field WITHOUT fixing the FNV *)
      patch path (fun b ->
          Bytes.set b 16 (Char.chr (Char.code (Bytes.get b 16) lxor 1));
          b);
      expect_corruption ~component:"pager.header" "bad header checksum"
        (fun () -> Pager.open_file path))

let test_open_bad_meta_length () =
  with_temp "uc_meta" (fun path ->
      build_file ~pages:3 path;
      patch path (fun b ->
          Bu.put_u16 b 26 60_000 (* far beyond meta_capacity *);
          fix_header_fnv b;
          b);
      expect_corruption ~component:"pager.header" "bad metadata length"
        (fun () -> Pager.open_file path))

let test_open_live_count_mismatch () =
  with_temp "uc_live" (fun path ->
      build_file ~pages:3 path;
      patch path (fun b ->
          Bu.put_u32 b 16 0 (* header claims no live pages; 3 exist *);
          fix_header_fnv b;
          b);
      expect_corruption ~component:"pager.header" "live count mismatch"
        (fun () -> Pager.open_file path))

let test_open_corrupt_free_list () =
  with_temp "uc_free" (fun path ->
      (* checksums off: the free page's next-link is then the only
         defence, and physical page = id + 1 *)
      let p = Pager.create_file ~page_size:ps ~checksums:false path in
      let ids = List.init 3 (fun _ -> Pager.alloc p) in
      List.iter (fun id -> Pager.write p id (Bytes.make ps 'z')) ids;
      Pager.free p (List.nth ids 1);
      Pager.sync p;
      Pager.close p;
      patch path (fun b ->
          Bu.put_u32 b ((1 + 1) * ps) 9999 (* freed page 1's next-link *);
          b);
      expect_corruption ~component:"pager.free_list" "corrupt free list"
        (fun () -> Pager.open_file path))

let test_open_free_page_checksum () =
  with_temp "uc_freesum" (fun path ->
      (* checksums on: damage to a FREE page is caught at open, since the
         free chain is walked and verified eagerly *)
      let p = Pager.create_file ~page_size:ps path in
      let ids = List.init 3 (fun _ -> Pager.alloc p) in
      List.iter (fun id -> Pager.write p id (Bytes.make ps 'z')) ids;
      Pager.free p (List.nth ids 1);
      Pager.sync p;
      Pager.close p;
      patch path (fun b ->
          (* with checksums, logical id 1 lives at physical 2 + 1 = 3;
             smash a byte beyond the next-link *)
          Bytes.set b ((3 * ps) + 40) '!';
          b);
      expect_corruption ~component:"pager.free_list" ~page:1
        "free page checksum" (fun () -> Pager.open_file path))

(* ------------------------------------------------------------------ *)
(* The interleaved checksummed layout round-trips across group
   boundaries                                                          *)
(* ------------------------------------------------------------------ *)

let test_checksummed_layout_roundtrip () =
  with_temp "uc_layout" (fun path ->
      (* page_size 64 => 15 data pages per checksum group; 40 pages span
         three groups *)
      let ps = 64 in
      let n = 40 in
      let content i = Bytes.make ps (Char.chr (33 + (i mod 90))) in
      let p = Pager.create_file ~page_size:ps path in
      for i = 0 to n - 1 do
        let id = Pager.alloc p in
        Alcotest.(check int) "dense ids" i id;
        Pager.write p id (content i)
      done;
      Pager.sync p;
      Pager.close p;
      let p = Pager.open_file path in
      Alcotest.(check bool) "checksums survive reopen" true
        (Pager.checksums_enabled p);
      for i = 0 to n - 1 do
        Alcotest.(check bytes) (Printf.sprintf "page %d" i) (content i)
          (Pager.read p i)
      done;
      (* free across groups, reallocate, and round-trip again *)
      List.iter (fun id -> Pager.free p id) [ 2; 17; 33 ];
      Pager.sync p;
      let re = List.init 3 (fun _ -> Pager.alloc p) in
      List.iter (fun id -> Pager.write p id (content (id + 7))) re;
      Pager.sync p;
      Pager.close p;
      let p = Pager.open_file path in
      List.iter
        (fun id ->
          Alcotest.(check bytes)
            (Printf.sprintf "refilled page %d" id)
            (content (id + 7)) (Pager.read p id))
        re;
      Pager.close p)

(* ------------------------------------------------------------------ *)
(* Media faults: each kind is detected by the checksum layer            *)
(* ------------------------------------------------------------------ *)

let failures () = Obs.Metrics.value Err.checksum_failures

let test_flip_bit_detected () =
  with_temp "uc_flip" (fun path ->
      build_file ~pages:2 path;
      let p = Pager.open_file path in
      ignore
        (Pager.create_faulty
           { Pager.no_faults with media = [ Pager.Flip_bit { page = 0; bit = 777 } ] }
           p);
      let before = failures () in
      expect_corruption ~component:"pager.page" ~page:0 "flipped bit"
        (fun () -> Pager.read p 0);
      Alcotest.(check bool) "metric incremented" true (failures () > before);
      (* the undamaged page still reads fine *)
      Alcotest.(check char) "page 1 intact" 'B' (Bytes.get (Pager.read p 1) 0);
      Pager.close p)

let test_zero_page_detected () =
  with_temp "uc_zero" (fun path ->
      build_file ~pages:2 path;
      let p = Pager.open_file path in
      ignore
        (Pager.create_faulty
           { Pager.no_faults with media = [ Pager.Zero_page { page = 1 } ] }
           p);
      expect_corruption ~component:"pager.page" ~page:1 "zeroed page"
        (fun () -> Pager.read p 1);
      Pager.close p)

let test_flip_bit_silent_without_checksums () =
  with_temp "uc_silent" (fun path ->
      build_file ~checksums:false ~pages:1 path;
      let p = Pager.open_file path in
      ignore
        (Pager.create_faulty
           { Pager.no_faults with media = [ Pager.Flip_bit { page = 0; bit = 3 } ] }
           p);
      (* no checksum layer: the damage is returned silently — this is
         exactly the failure mode checksums exist to close *)
      let b = Pager.read p 0 in
      Alcotest.(check bool) "bytes silently corrupt" true
        (Bytes.get b 0 <> 'A');
      Pager.close p)

let test_stale_page_detected () =
  with_temp "uc_stale" (fun path ->
      let ps = 128 in
      let p = Pager.create_file ~page_size:ps path in
      let id = Pager.alloc p in
      Pager.write p id (Bytes.make ps 'a');
      Pager.sync p;
      (* arm: snapshot the committed 'a' image; after the next sync the
         fault puts it back — a lost write, the classic firmware lie *)
      ignore
        (Pager.create_faulty
           { Pager.no_faults with media = [ Pager.Stale_page { page = id } ] }
           p);
      Pager.write p id (Bytes.make ps 'b');
      Pager.sync p;
      expect_corruption ~component:"pager.page" ~page:id "stale page"
        (fun () -> Pager.read p id);
      Pager.close p)

let test_truncate_detected () =
  with_temp "uc_trunc2" (fun path ->
      build_file ~pages:6 path;
      let p = Pager.open_file path in
      ignore
        (Pager.create_faulty
           { Pager.no_faults with media = [ Pager.Truncate_file { keep = 2 } ] }
           p);
      Pager.close p;
      (* reads of the lost region come back as zeros; some detector
         (checksum page, free list, or per-page sum) must fire *)
      expect_corruption "truncated tail" (fun () ->
          let p = Pager.open_file path in
          for id = 0 to 5 do
            ignore (Pager.read p id)
          done;
          Pager.close p))

let test_truncate_rejected_on_memory () =
  let p = Pager.create () in
  match
    Pager.create_faulty
      { Pager.no_faults with media = [ Pager.Truncate_file { keep = 1 } ] }
      p
  with
  | _ -> Alcotest.fail "truncate on a memory pager should be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* The buffer pool must never retain a page whose read failed           *)
(* ------------------------------------------------------------------ *)

let test_pool_never_caches_corrupt_page () =
  with_temp "uc_pool" (fun path ->
      build_file ~pages:2 path;
      let p = Pager.open_file path in
      let pool = Pool.create ~capacity:4 p in
      ignore
        (Pager.create_faulty
           { Pager.no_faults with media = [ Pager.Flip_bit { page = 0; bit = 9 } ] }
           p);
      Alcotest.(check char) "clean page cached" 'B' (Bytes.get (Pool.read pool 1) 0);
      Alcotest.(check int) "one resident" 1 (Pool.resident pool);
      expect_corruption ~component:"pager.page" "pool read of bad page"
        (fun () -> Pool.read pool 0);
      Alcotest.(check int) "failed page not cached" 1 (Pool.resident pool);
      (* a second read must hit the pager (and fail) again, not a cache *)
      expect_corruption ~component:"pager.page" "pool read again" (fun () ->
          Pool.read pool 0);
      Pager.close p)

(* ------------------------------------------------------------------ *)
(* attach/reattach over a damaged root: typed corruption, not a bare
   decode error                                                        *)
(* ------------------------------------------------------------------ *)

(* Regression: [attach] walks the leftmost path to recover the tree
   height, and used to decode those pages directly — a root page that no
   longer parsed as a node escaped as [Invalid_argument] instead of
   {!Err.Corruption}.  The damage is written through the pager, so its
   checksums stay consistent and only the node layer can notice. *)
let test_attach_corrupt_root () =
  with_temp "uc_attach" (fun path ->
      let page_size = 256 in
      let root =
        let p = Pager.create_file ~page_size path in
        let t = Btree.create p in
        for i = 0 to 99 do
          Btree.insert t ~key:(Printf.sprintf "k%03d" i)
            ~value:(string_of_int i)
        done;
        Btree.sync t;
        let root = Btree.root t in
        Pager.close p;
        root
      in
      let p = Pager.open_file path in
      Pager.write p root (Bytes.make page_size '\007');
      expect_corruption ~component:"btree.node" ~page:root
        "attach over mangled root" (fun () -> Btree.attach p ~root);
      expect_corruption ~component:"btree.node" ~page:root
        "reattach over mangled root" (fun () -> Btree.reattach p);
      Pager.close p)

(* ------------------------------------------------------------------ *)
(* The headline property: randomized corruption never yields a silent
   wrong answer, and salvage restores the oracle                        *)
(* ------------------------------------------------------------------ *)

(* One pristine index file, built once: a class-hierarchy index on
   Vehicle.color over the experiment-1 store. *)
let prop_no_silent_wrong_answers =
  let n_vehicles = 400 in
  let file_ps = 256 in
  let e = Dg.exp1 ~n_vehicles ~seed:7 () in
  let b = e.Dg.ext.Ps.b in
  let attach pager =
    Index.attach_class_hierarchy pager b.Ps.enc ~root:b.Ps.vehicle
      ~attr:"color"
  in
  (* an index description to salvage from: only its in-memory shape is
     used, so a throwaway empty memory index serves *)
  let desc =
    Index.create_class_hierarchy (Pager.create ()) b.Ps.enc
      ~root:b.Ps.vehicle ~attr:"color"
  in
  let queries =
    [
      Query.class_hierarchy ~value:Query.V_any (Query.P_subtree e.Dg.ext.Ps.bus);
      Query.class_hierarchy
        ~value:(Query.V_eq (Value.Str Ps.colors.(0)))
        (Query.P_subtree e.Dg.ext.Ps.bus);
      Query.class_hierarchy ~value:Query.V_any
        (Query.P_subtree b.Ps.automobile);
    ]
  in
  let canon (o : Exec.outcome) =
    List.sort compare
      (List.map (fun bd -> (bd.Exec.value, bd.Exec.comps)) o.Exec.bindings)
  in
  let pristine = Filename.temp_file "uc_prop" ".pages" in
  let () =
    let pager = Pager.create_file ~page_size:file_ps pristine in
    let idx =
      Index.create_class_hierarchy pager b.Ps.enc ~root:b.Ps.vehicle
        ~attr:"color"
    in
    Index.build idx e.Dg.store;
    Index.sync idx;
    Pager.close pager
  in
  let image = read_file pristine in
  let oracle =
    let pager = Pager.open_file pristine in
    let idx = attach pager in
    let o = List.map (fun q -> canon (Exec.run ~algo:`Parallel idx q)) queries in
    Pager.close pager;
    o
  in
  Sys.remove pristine;
  let victim = pristine ^ ".victim" in
  at_exit (fun () -> try Sys.remove victim with Sys_error _ -> ());
  QCheck.Test.make ~count:500
    ~name:"corruption: byte-identical answers or Corruption, never silence"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n_bytes = Bytes.length image in
      let n_phys = n_bytes / file_ps in
      (* derive one corruption of the committed image from the seed *)
      let mangled = Bytes.copy image in
      let mangled =
        match Rng.int rng 10 with
        | 0 | 1 ->
            (* zero a whole physical page *)
            let ph = Rng.int rng n_phys in
            Bytes.fill mangled (ph * file_ps) file_ps '\000';
            mangled
        | 2 ->
            (* drop the tail of the file *)
            let keep = 1 + Rng.int rng (n_phys - 1) in
            Bytes.sub mangled 0 (keep * file_ps)
        | _ ->
            (* flip one bit anywhere: header, checksum page, node, ... *)
            let off = Rng.int rng n_bytes in
            let bit = Rng.int rng 8 in
            Bytes.set mangled off
              (Char.chr (Char.code (Bytes.get mangled off) lxor (1 lsl bit)));
            mangled
      in
      write_file victim mangled;
      let detected = ref false in
      (match Pager.open_file victim with
      | exception Err.Corruption _ -> detected := true
      | exception Invalid_argument _ -> detected := true (* smashed magic *)
      | pager ->
          Fun.protect
            ~finally:(fun () -> Pager.close pager)
            (fun () ->
              match attach pager with
              | exception Err.Corruption _ -> detected := true
              | idx ->
                  let raised_in_query = ref false in
                  List.iter2
                    (fun q expect ->
                      match Exec.run ~algo:`Parallel idx q with
                      | o ->
                          if canon o <> expect then
                            QCheck.Test.fail_reportf
                              "silent wrong answer (seed %d)" seed
                      | exception Err.Corruption _ ->
                          raised_in_query := true)
                    queries oracle;
                  if !raised_in_query then begin
                    detected := true;
                    (* whatever a query can trip over, the verifier must
                       find too *)
                    let report = Verify.check ~store:e.Dg.store idx in
                    if report.Verify.ok then
                      QCheck.Test.fail_reportf
                        "query raised Corruption but check said ok (seed %d)"
                        seed
                  end));
      (* salvage never needs the damaged file: rebuild from the store
         and the answers must match the oracle exactly *)
      if !detected then begin
        let fresh_pager = Pager.create () in
        let fresh = Verify.salvage desc e.Dg.store fresh_pager in
        List.iter2
          (fun q expect ->
            if canon (Exec.run ~algo:`Parallel fresh q) <> expect then
              QCheck.Test.fail_reportf "salvage diverged (seed %d)" seed)
          queries oracle
      end;
      true)

(* the verifier also accepts a healthy index, with sensible page roles *)
let test_verify_clean () =
  with_temp "uc_verify" (fun path ->
      let e = Dg.exp1 ~n_vehicles:200 ~seed:3 () in
      let b = e.Dg.ext.Ps.b in
      let pager = Pager.create_file ~page_size:256 path in
      let idx =
        Index.create_class_hierarchy pager b.Ps.enc ~root:b.Ps.vehicle
          ~attr:"color"
      in
      Index.build idx e.Dg.store;
      Index.sync idx;
      let r = Verify.check ~store:e.Dg.store idx in
      Alcotest.(check bool) "ok" true r.Verify.ok;
      Alcotest.(check int) "entries" (Index.entry_count idx) r.Verify.entries;
      Alcotest.(check bool) "nodes counted" true (r.Verify.node_pages > 0);
      Alcotest.(check int) "all pages accounted" r.Verify.pages
        (r.Verify.node_pages + r.Verify.overflow_pages + r.Verify.free_pages);
      Pager.close pager)

let unit_suite =
  [
    Alcotest.test_case "open: truncated file" `Quick test_open_truncated;
    Alcotest.test_case "open: bad magic" `Quick test_open_bad_magic;
    Alcotest.test_case "open: bad header checksum" `Quick
      test_open_bad_header_checksum;
    Alcotest.test_case "open: bad metadata length" `Quick
      test_open_bad_meta_length;
    Alcotest.test_case "open: live count mismatch" `Quick
      test_open_live_count_mismatch;
    Alcotest.test_case "open: corrupt free list" `Quick
      test_open_corrupt_free_list;
    Alcotest.test_case "open: free page checksum" `Quick
      test_open_free_page_checksum;
    Alcotest.test_case "checksummed layout round-trips" `Quick
      test_checksummed_layout_roundtrip;
    Alcotest.test_case "flip_bit detected" `Quick test_flip_bit_detected;
    Alcotest.test_case "zero_page detected" `Quick test_zero_page_detected;
    Alcotest.test_case "flip silent without checksums" `Quick
      test_flip_bit_silent_without_checksums;
    Alcotest.test_case "stale_page detected" `Quick test_stale_page_detected;
    Alcotest.test_case "truncate detected" `Quick test_truncate_detected;
    Alcotest.test_case "truncate rejected on memory pager" `Quick
      test_truncate_rejected_on_memory;
    Alcotest.test_case "pool never caches a corrupt page" `Quick
      test_pool_never_caches_corrupt_page;
    Alcotest.test_case "attach over corrupt root" `Quick
      test_attach_corrupt_root;
    Alcotest.test_case "verify accepts a healthy index" `Quick
      test_verify_clean;
  ]

let () =
  Alcotest.run "corruption"
    [
      ("detect", unit_suite);
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_no_silent_wrong_answers ] );
    ]
