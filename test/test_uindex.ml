(* End-to-end tests of the U-index on the paper's Example 1 database and
   the Section 3.3 queries, plus maintenance and algorithm-agreement
   checks. *)

module Ps = Workload.Paper_schema
module Value = Objstore.Value
module Store = Objstore.Store
module Query = Uindex.Query
module Index = Uindex.Index
module Exec = Uindex.Exec
module Db = Uindex.Db

let sorted = List.sort compare

let check_oids what expected outcome =
  Alcotest.(check (list int)) what (sorted expected) (Exec.head_oids outcome)

let make_ch () =
  let b = Ps.base () in
  let ex = Ps.example1 b in
  let pager = Storage.Pager.create () in
  let idx =
    Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
  in
  Index.build idx ex.store;
  (b, ex, idx)

let make_path () =
  let b = Ps.base () in
  let ex = Ps.example1 b in
  let pager = Storage.Pager.create () in
  let idx =
    Index.create_path pager b.enc ~head:b.vehicle
      ~refs:[ "manufactured_by"; "president" ]
      ~attr:"age"
  in
  Index.build idx ex.store;
  (b, ex, idx)

(* --- class-hierarchy queries (Section 3.3) ------------------------------- *)

let test_ch_all_red () =
  let b, ex, idx = make_ch () in
  (* query 1: all vehicles (of all types) with red color *)
  let q =
    Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree b.vehicle)
  in
  check_oids "red vehicles" [ ex.v3; ex.v4 ] (Exec.parallel idx q)

let test_ch_exact_class () =
  let b, ex, idx = make_ch () in
  (* query 2: automobiles (the class only) with red color *)
  let q = Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_class b.automobile) in
  check_oids "red automobiles exactly" [ ex.v3 ] (Exec.parallel idx q);
  (* query 3: automobiles and their subclasses with red color *)
  let q =
    Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree b.automobile)
  in
  check_oids "red automobile subtree" [ ex.v3; ex.v4 ] (Exec.parallel idx q)

let test_ch_excluding_subclass () =
  let b, ex, idx = make_ch () in
  (* query 4: vehicles that are not compact automobiles, in white *)
  let q =
    Query.class_hierarchy ~value:(V_eq (Str "White"))
      (P_union [ P_class b.vehicle; P_class b.automobile; P_class b.truck ])
  in
  check_oids "white non-compacts" [ ex.v1; ex.v2 ] (Exec.parallel idx q)

let test_ch_union_subtrees () =
  let b, ex, idx = make_ch () in
  (* query 5: automobiles or trucks (with their subclasses) in white *)
  let q =
    Query.class_hierarchy ~value:(V_eq (Str "White"))
      (P_union [ P_subtree b.automobile; P_subtree b.truck ])
  in
  check_oids "white autos+trucks" [ ex.v2; ex.v6 ] (Exec.parallel idx q)

let test_ch_range () =
  let b, ex, idx = make_ch () in
  (* range over the value dimension: colors Blue..Red *)
  let q =
    Query.class_hierarchy
      ~value:(V_range (Some (Str "Blue"), Some (Str "Red")))
      (P_subtree b.compact)
  in
  check_oids "compact blue..red" [ ex.v4; ex.v5 ] (Exec.parallel idx q)

let test_ch_value_enum () =
  let b, ex, idx = make_ch () in
  let q =
    Query.class_hierarchy
      ~value:(V_in [ Str "Blue"; Str "White" ])
      (P_subtree b.vehicle)
  in
  check_oids "blue or white vehicles" [ ex.v1; ex.v2; ex.v5; ex.v6 ]
    (Exec.parallel idx q)

(* --- path queries --------------------------------------------------------- *)

let default_path_query b ~value =
  Query.path ~value
    [
      Query.comp (P_subtree b.Ps.employee);
      Query.comp (P_subtree b.Ps.company);
      Query.comp (P_subtree b.Ps.vehicle);
    ]

let test_path_age50 () =
  let b, ex, idx = make_path () in
  (* vehicles manufactured by a company whose president's age is 50:
     Fiat (e1, age 50) makes v2, v3, v6 *)
  let q = default_path_query b ~value:(V_eq (Int 50)) in
  check_oids "age-50 vehicles" [ ex.v2; ex.v3; ex.v6 ] (Exec.parallel idx q)

let test_path_specific_company () =
  let b, ex, idx = make_path () in
  let q =
    Query.path ~value:(V_eq (Int 50))
      [
        Query.comp (P_subtree b.employee);
        Query.comp ~slot:(S_oid ex.c2) (P_subtree b.company);
        Query.comp (P_subtree b.vehicle);
      ]
  in
  check_oids "age-50 vehicles of Fiat" [ ex.v2; ex.v3; ex.v6 ]
    (Exec.parallel idx q);
  let q =
    Query.path ~value:(V_eq (Int 50))
      [
        Query.comp (P_subtree b.employee);
        Query.comp ~slot:(S_oid ex.c1) (P_subtree b.company);
        Query.comp (P_subtree b.vehicle);
      ]
  in
  check_oids "age-50 vehicles of Subaru (none)" [] (Exec.parallel idx q)

let test_path_select_restriction () =
  let b, ex, idx = make_path () in
  (* paper's query 3: companies restricted by a prior select *)
  let big = [ ex.c2; ex.c3 ] in
  let q =
    Query.path ~value:(V_range (Some (Int 50), None))
      [
        Query.comp (P_subtree b.employee);
        Query.comp ~slot:(S_pred (fun o -> List.mem o big)) (P_subtree b.company);
        Query.comp (P_subtree b.vehicle);
      ]
  in
  check_oids "restricted companies, age >= 50"
    [ ex.v2; ex.v3; ex.v4; ex.v6 ]
    (Exec.parallel idx q)

let test_partial_path () =
  let b, ex, idx = make_path () in
  (* paper's query 4: all companies whose president's age is 50, answered
     from the vehicle path index *)
  let q =
    Query.path ~value:(V_eq (Int 50))
      [ Query.comp (P_subtree b.employee); Query.comp (P_subtree b.company) ]
  in
  let o = Exec.parallel idx q in
  check_oids "companies with age-50 president" [ ex.c2 ] o;
  Alcotest.(check int) "one binding only" 1 (List.length o.bindings)

let test_combined () =
  let b, ex, idx = make_path () in
  (* combined class/path query: vehicles made by Japanese auto companies —
     not answerable by a pure class-hierarchy or path index (Section 3.1) *)
  let q =
    Query.path ~value:V_any
      [
        Query.comp (P_subtree b.employee);
        Query.comp (P_subtree b.japanese_auto_company);
        Query.comp (P_subtree b.vehicle);
      ]
  in
  check_oids "vehicles of japanese companies" [ ex.v1; ex.v5 ]
    (Exec.parallel idx q);
  (* ... restricted to compacts *)
  let q =
    Query.path ~value:V_any
      [
        Query.comp (P_subtree b.employee);
        Query.comp (P_subtree b.japanese_auto_company);
        Query.comp (P_subtree b.compact);
      ]
  in
  check_oids "compacts of japanese companies" [ ex.v5 ] (Exec.parallel idx q)

(* --- algorithm agreement -------------------------------------------------- *)

let queries_for_agreement b =
  let open Query in
  [
    class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree b.Ps.vehicle);
    class_hierarchy ~value:(V_eq (Str "White")) (P_class b.Ps.compact);
    class_hierarchy ~value:V_any (P_subtree b.Ps.automobile);
    class_hierarchy
      ~value:(V_range (Some (Str "Blue"), Some (Str "Red")))
      (P_union [ P_subtree b.Ps.automobile; P_subtree b.Ps.truck ]);
    class_hierarchy ~value:(V_in [ Str "Red"; Str "Blue" ]) (P_class b.Ps.vehicle);
  ]

let test_forward_parallel_agree () =
  let b, _ex, idx = make_ch () in
  List.iter
    (fun q ->
      let f = Exec.forward idx q and p = Exec.parallel idx q in
      Alcotest.(check (list int))
        "same result set" (Exec.head_oids f) (Exec.head_oids p);
      if p.page_reads > f.page_reads then
        Alcotest.failf "parallel read more pages (%d) than forward (%d)"
          p.page_reads f.page_reads)
    (queries_for_agreement b)

(* --- maintenance ----------------------------------------------------------- *)

let test_db_maintenance () =
  let b = Ps.base () in
  let ex = Ps.example1 b in
  let db = Db.create ex.store in
  let pager = Storage.Pager.create () in
  let ch = Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color" in
  let path =
    Index.create_path pager b.enc ~head:b.vehicle
      ~refs:[ "manufactured_by"; "president" ]
      ~attr:"age"
  in
  Db.add_index db ch;
  Db.add_index db path;
  Db.check db;
  (* insert a new truck *)
  let t1 =
    Db.insert db ~cls:b.truck
      [
        ("name", Value.Str "Hino300");
        ("color", Value.Str "Red");
        ("manufactured_by", Value.Ref ex.c1);
      ]
  in
  Db.check db;
  let q = Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree b.truck) in
  check_oids "new red truck indexed" [ t1 ] (Exec.parallel ch q);
  (* recolor it *)
  Db.set_attr db t1 "color" (Value.Str "Green");
  Db.check db;
  check_oids "no red trucks after recolor" [] (Exec.parallel ch q);
  (* the paper's mid-path update: Fiat replaces its president (e1, 50) with
     Enzo (e2, 60) *)
  let q50 = default_path_query b ~value:(V_eq (Int 50)) in
  Db.set_attr db ex.c2 "president" (Value.Ref ex.e2);
  Db.check db;
  check_oids "no age-50 vehicles after president change" []
    (Exec.parallel path q50);
  let q60 = default_path_query b ~value:(V_eq (Int 60)) in
  check_oids "Fiat and Renault vehicles now under 60"
    [ ex.v2; ex.v3; ex.v4; ex.v6 ]
    (Exec.parallel path q60);
  (* tail-object update: the new president ages *)
  Db.set_attr db ex.e2 "age" (Value.Int 61);
  Db.check db;
  check_oids "no vehicles under 60 after birthday" [] (Exec.parallel path q60);
  (* delete a vehicle *)
  Db.delete db ex.v2;
  Db.check db;
  let q61 = default_path_query b ~value:(V_eq (Int 61)) in
  check_oids "v2 gone" [ ex.v3; ex.v4; ex.v6 ] (Exec.parallel path q61)

let test_remove_index () =
  let b = Ps.base () in
  let ex = Ps.example1 b in
  let db = Db.create ex.store in
  let ch =
    Index.create_class_hierarchy (Storage.Pager.create ()) b.enc
      ~root:b.vehicle ~attr:"color"
  in
  Db.add_index db ch;
  Alcotest.(check int) "registered" 1 (List.length (Db.indexes db));
  Db.remove_index db ch;
  Alcotest.(check int) "unregistered" 0 (List.length (Db.indexes db));
  (* mutations no longer touch the removed index *)
  let n0 = Index.entry_count ch in
  ignore
    (Db.insert db ~cls:b.truck
       [ ("name", Value.Str "T"); ("color", Value.Str "Red") ]);
  Alcotest.(check int) "index untouched" n0 (Index.entry_count ch)

let test_multi_value_refs () =
  (* Section 4.3: a vehicle manufactured by multiple companies appears in
     one entry per company *)
  let b = Ps.base () in
  let s = b.schema in
  let bike =
    Oodb_schema.Schema.add_class s ~parent:b.vehicle ~name:"Bicycle"
      ~attrs:[ ("comakers", Oodb_schema.Schema.Ref_set b.company) ]
  in
  Oodb_schema.Encoding.assign_new_class b.enc bike;
  let ex = Ps.example1 b in
  let db = Db.create ex.store in
  let pager = Storage.Pager.create () in
  let idx =
    Index.create_path pager b.enc ~head:bike ~refs:[ "comakers"; "president" ]
      ~attr:"age"
  in
  Db.add_index db idx;
  let bk =
    Db.insert db ~cls:bike
      [
        ("name", Value.Str "Tandem");
        ("comakers", Value.Ref_set [ ex.c1; ex.c2 ]);
      ]
  in
  Db.check db;
  Alcotest.(check int) "two entries for two makers" 2 (Index.entry_count idx);
  let q45 = default_path_query b ~value:(V_eq (Int 45)) in
  check_oids "via Subaru (e3 is 45)" [ bk ] (Exec.parallel idx q45);
  let q50 = default_path_query b ~value:(V_eq (Int 50)) in
  check_oids "via Fiat (e1 is 50)" [ bk ] (Exec.parallel idx q50);
  Db.delete db bk;
  Db.check db;
  Alcotest.(check int) "entries removed from both makers" 0
    (Index.entry_count idx)

let test_multiple_paths () =
  (* Section 3.3, "Multiple Paths": the Vehicle and Division paths share
     the Company/Employee suffix and live in ONE index; one query fetches
     both the divisions and the vehicles of companies whose president's
     age is 50, and the shared prefix compresses *)
  let b = Ps.base () in
  let ex = Ps.example1 b in
  (* add a few divisions *)
  let div name company =
    Store.insert ex.store ~cls:b.division
      [ ("name", Value.Str name); ("belongs_to", Value.Ref company) ]
  in
  let d1 = div "FiatEngines" ex.c2 in
  let d2 = div "FiatRacing" ex.c2 in
  let d3 = div "SubaruAero" ex.c1 in
  let idx =
    Index.create_path (Storage.Pager.create ()) b.enc ~head:b.vehicle
      ~refs:[ "manufactured_by"; "president" ]
      ~attr:"age"
  in
  Index.add_path idx ~head:b.division ~refs:[ "belongs_to"; "president" ]
    ~attr:"age";
  Index.build idx ex.store;
  Alcotest.(check int) "entries from both paths" 9 (Index.entry_count idx);
  Alcotest.(check int) "two paths registered" 2 (List.length (Index.paths idx));
  (* vehicles only *)
  let q_veh = default_path_query b ~value:(V_eq (Int 50)) in
  check_oids "vehicles via shared index" [ ex.v2; ex.v3; ex.v6 ]
    (Exec.parallel idx q_veh);
  (* divisions only *)
  let q_div =
    Query.path ~value:(V_eq (Int 50))
      [
        Query.comp (P_subtree b.employee);
        Query.comp (P_subtree b.company);
        Query.comp (P_subtree b.division);
      ]
  in
  check_oids "divisions via shared index" [ d1; d2 ] (Exec.parallel idx q_div);
  ignore d3;
  (* both at once: the paper's combined retrieval, clustered by the shared
     employee/company prefix *)
  let q_both =
    Query.path ~value:(V_eq (Int 50))
      [
        Query.comp (P_subtree b.employee);
        Query.comp (P_subtree b.company);
        Query.comp (P_union [ P_subtree b.division; P_subtree b.vehicle ]);
      ]
  in
  let o = Exec.parallel idx q_both in
  check_oids "divisions and vehicles together" [ ex.v2; ex.v3; ex.v6; d1; d2 ] o;
  (* incremental maintenance covers both paths *)
  let db = Db.create ex.store in
  Db.add_index db idx;
  let d4 = Db.insert db ~cls:b.division
      [ ("name", Value.Str "FiatMarine"); ("belongs_to", Value.Ref ex.c2) ]
  in
  Db.check db;
  check_oids "new division picked up" [ ex.v2; ex.v3; ex.v6; d1; d2; d4 ]
    (Exec.parallel idx q_both);
  (* type mismatch across paths rejected *)
  Alcotest.check_raises "type mismatch"
    (Invalid_argument
       "Uindex.add_path: the new path's attribute type differs from the \
        index's") (fun () ->
      Index.add_path idx ~head:b.division ~refs:[ "belongs_to" ] ~attr:"name");
  (* class-hierarchy indexes cannot take paths *)
  let ch =
    Index.create_class_hierarchy (Storage.Pager.create ()) b.enc
      ~root:b.vehicle ~attr:"color"
  in
  Alcotest.check_raises "not a path index"
    (Invalid_argument "Uindex.add_path: not a path index") (fun () ->
      Index.add_path ch ~head:b.division ~refs:[ "belongs_to"; "president" ]
        ~attr:"age")

let test_four_component_path () =
  (* a longer composition chain: Order -> Dealer -> Company -> Employee.age *)
  let s = Oodb_schema.Schema.create () in
  let open Oodb_schema in
  let employee = Schema.add_class s ~name:"Employee" ~attrs:[ ("age", Schema.Int) ] in
  let company =
    Schema.add_class s ~name:"Company" ~attrs:[ ("president", Schema.Ref employee) ]
  in
  let dealer =
    Schema.add_class s ~name:"Dealer" ~attrs:[ ("franchise_of", Schema.Ref company) ]
  in
  let mega_dealer = Schema.add_class s ~parent:dealer ~name:"MegaDealer" ~attrs:[] in
  let order =
    Schema.add_class s ~name:"Order" ~attrs:[ ("placed_at", Schema.Ref dealer) ]
  in
  let enc = Encoding.assign s in
  let store = Store.create s in
  let e1 = Store.insert store ~cls:employee [ ("age", Value.Int 50) ] in
  let e2 = Store.insert store ~cls:employee [ ("age", Value.Int 60) ] in
  let c1 = Store.insert store ~cls:company [ ("president", Value.Ref e1) ] in
  let c2 = Store.insert store ~cls:company [ ("president", Value.Ref e2) ] in
  let d1 = Store.insert store ~cls:dealer [ ("franchise_of", Value.Ref c1) ] in
  let d2 = Store.insert store ~cls:mega_dealer [ ("franchise_of", Value.Ref c1) ] in
  let d3 = Store.insert store ~cls:dealer [ ("franchise_of", Value.Ref c2) ] in
  let o1 = Store.insert store ~cls:order [ ("placed_at", Value.Ref d1) ] in
  let o2 = Store.insert store ~cls:order [ ("placed_at", Value.Ref d2) ] in
  let o3 = Store.insert store ~cls:order [ ("placed_at", Value.Ref d3) ] in
  let idx =
    Index.create_path (Storage.Pager.create ()) enc ~head:order
      ~refs:[ "placed_at"; "franchise_of"; "president" ]
      ~attr:"age"
  in
  Index.build idx store;
  Alcotest.(check int) "arity four" 4 (Index.arity idx);
  let q =
    Query.path ~value:(V_eq (Int 50))
      [
        Query.comp (P_subtree employee);
        Query.comp (P_subtree company);
        Query.comp (P_subtree dealer);
        Query.comp (P_subtree order);
      ]
  in
  check_oids "orders via age-50 presidents" [ o1; o2 ] (Exec.parallel idx q);
  (* restrict the in-path dealer to the MegaDealer subclass *)
  let q =
    Query.path ~value:(V_eq (Int 50))
      [
        Query.comp (P_subtree employee);
        Query.comp (P_subtree company);
        Query.comp (P_subtree mega_dealer);
        Query.comp (P_subtree order);
      ]
  in
  check_oids "orders at mega dealers only" [ o2 ] (Exec.parallel idx q);
  (* partial-path: the dealers of age-60 presidents *)
  let q =
    Query.path ~value:(V_eq (Int 60))
      [
        Query.comp (P_subtree employee);
        Query.comp (P_subtree company);
        Query.comp (P_subtree dealer);
      ]
  in
  check_oids "dealers via partial path" [ d3 ] (Exec.parallel idx q);
  ignore o3

let test_string_valued_path () =
  (* the indexed attribute is a string: company names at the end of a
     one-hop path *)
  let b = Ps.base () in
  let ex = Ps.example1 b in
  let idx =
    Index.create_path (Storage.Pager.create ()) b.enc ~head:b.vehicle
      ~refs:[ "manufactured_by" ] ~attr:"name"
  in
  Index.build idx ex.store;
  let q name =
    Query.path ~value:(V_eq (Str name))
      [ Query.comp (P_subtree b.company); Query.comp (P_subtree b.vehicle) ]
  in
  check_oids "Fiat's vehicles" [ ex.v2; ex.v3; ex.v6 ] (Exec.parallel idx (q "Fiat"));
  check_oids "Subaru's vehicles" [ ex.v1; ex.v5 ] (Exec.parallel idx (q "Subaru"));
  (* string range: makers Fiat..Renault *)
  let q =
    Query.path
      ~value:(V_range (Some (Str "Fiat"), Some (Str "Renault")))
      [ Query.comp (P_subtree b.company); Query.comp (P_subtree b.vehicle) ]
  in
  check_oids "Fiat..Renault vehicles" [ ex.v2; ex.v3; ex.v4; ex.v6 ]
    (Exec.parallel idx q);
  let f = Exec.forward idx q in
  Alcotest.(check (list int)) "forward agrees"
    (Exec.head_oids (Exec.parallel idx q))
    (Exec.head_oids f)

(* --- randomized end-to-end agreement --------------------------------------- *)

(* Random vehicle databases and random queries: both algorithms must agree
   with a naive evaluation over the object store. *)
let prop_algorithms_match_naive =
  QCheck.Test.make ~count:40 ~name:"parallel = forward = naive store scan"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let ext = Ps.extended () in
      let b = ext.Ps.b in
      let rng = Workload.Rng.create seed in
      let store = Store.create b.schema in
      let classes = Ps.vehicle_leaf_classes ext in
      for i = 0 to 120 + Workload.Rng.int rng 80 do
        ignore
          (Store.insert store
             ~cls:(Workload.Rng.pick rng classes)
             [
               ("name", Value.Str (Printf.sprintf "v%d" i));
               ("color", Value.Str (Workload.Rng.pick rng Ps.colors));
             ])
      done;
      let pager = Storage.Pager.create ~page_size:256 () in
      let config =
        { (Btree.default_config ~page_size:256) with max_entries = Some 6 }
      in
      let idx =
        Index.create_class_hierarchy ~config pager b.enc ~root:b.vehicle
          ~attr:"color"
      in
      Index.build idx store;
      (* a random query: value predicate x class pattern *)
      let random_pat () =
        let c = Workload.Rng.pick rng classes in
        if Workload.Rng.bool rng then Query.P_subtree c else Query.P_class c
      in
      let pat =
        match Workload.Rng.int rng 3 with
        | 0 -> random_pat ()
        | 1 -> Query.P_union [ random_pat (); random_pat () ]
        | _ -> Query.P_union [ random_pat (); random_pat (); random_pat () ]
      in
      let value =
        match Workload.Rng.int rng 4 with
        | 0 -> Query.V_any
        | 1 -> Query.V_eq (Value.Str (Workload.Rng.pick rng Ps.colors))
        | 2 ->
            let a = Workload.Rng.pick rng Ps.colors
            and b = Workload.Rng.pick rng Ps.colors in
            let lo = min a b and hi = max a b in
            Query.V_range (Some (Value.Str lo), Some (Value.Str hi))
        | _ ->
            Query.V_in
              [
                Value.Str (Workload.Rng.pick rng Ps.colors);
                Value.Str (Workload.Rng.pick rng Ps.colors);
              ]
      in
      let q = Query.class_hierarchy ~value pat in
      let naive =
        Store.extent store b.vehicle
        |> List.filter (fun oid ->
               Query.pat_matches b.schema pat (Store.class_of store oid)
               && Query.value_matches value (Store.attr store oid "color"))
        |> List.sort compare
      in
      let p = Exec.head_oids (Exec.parallel idx q)
      and f = Exec.head_oids (Exec.forward idx q) in
      if p <> naive then
        QCheck.Test.fail_reportf "parallel diverged: %d vs naive %d"
          (List.length p) (List.length naive);
      if f <> naive then
        QCheck.Test.fail_reportf "forward diverged: %d vs naive %d"
          (List.length f) (List.length naive);
      true)

(* Random mutation sequences through Db keep indexes exactly in sync. *)
let prop_db_sync =
  QCheck.Test.make ~count:15 ~name:"random mutations keep indexes in sync"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let b = Ps.base () in
      let ex = Ps.example1 b in
      let rng = Workload.Rng.create seed in
      let db = Db.create ex.store in
      let pager = Storage.Pager.create ~page_size:256 () in
      let ch =
        Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
      in
      let path =
        Index.create_path pager b.enc ~head:b.vehicle
          ~refs:[ "manufactured_by"; "president" ]
          ~attr:"age"
      in
      Db.add_index db ch;
      Db.add_index db path;
      let vehicles = ref [ ex.v1; ex.v2; ex.v3; ex.v4; ex.v5; ex.v6 ] in
      let companies = [| ex.c1; ex.c2; ex.c3 |] in
      let employees = [| ex.e1; ex.e2; ex.e3 |] in
      for i = 0 to 60 do
        (match Workload.Rng.int rng 5 with
        | 0 ->
            let v =
              Db.insert db
                ~cls:(Workload.Rng.pick rng [| b.vehicle; b.automobile; b.compact; b.truck |])
                [
                  ("name", Value.Str (Printf.sprintf "n%d" i));
                  ("color", Value.Str (Workload.Rng.pick rng Ps.colors));
                  ("manufactured_by", Value.Ref (Workload.Rng.pick rng companies));
                ]
            in
            vehicles := v :: !vehicles
        | 1 -> (
            match !vehicles with
            | v :: rest ->
                Db.delete db v;
                vehicles := rest
            | [] -> ())
        | 2 -> (
            match !vehicles with
            | v :: _ ->
                Db.set_attr db v "color"
                  (Value.Str (Workload.Rng.pick rng Ps.colors))
            | [] -> ())
        | 3 ->
            Db.set_attr db
              (Workload.Rng.pick rng companies)
              "president"
              (Value.Ref (Workload.Rng.pick rng employees))
        | _ ->
            Db.set_attr db
              (Workload.Rng.pick rng employees)
              "age"
              (Value.Int (30 + Workload.Rng.int rng 40)));
        if i mod 10 = 0 then Db.check db
      done;
      Db.check db;
      true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_algorithms_match_naive; prop_db_sync ]

let () =
  Alcotest.run "uindex"
    [
      ( "class-hierarchy",
        [
          Alcotest.test_case "all red vehicles" `Quick test_ch_all_red;
          Alcotest.test_case "exact class & subtree" `Quick test_ch_exact_class;
          Alcotest.test_case "excluding a subclass" `Quick test_ch_excluding_subclass;
          Alcotest.test_case "union of subtrees" `Quick test_ch_union_subtrees;
          Alcotest.test_case "value range" `Quick test_ch_range;
          Alcotest.test_case "value enumeration" `Quick test_ch_value_enum;
        ] );
      ( "path",
        [
          Alcotest.test_case "president age 50" `Quick test_path_age50;
          Alcotest.test_case "specific company slot" `Quick test_path_specific_company;
          Alcotest.test_case "select restriction" `Quick test_path_select_restriction;
          Alcotest.test_case "partial path" `Quick test_partial_path;
          Alcotest.test_case "combined class/path" `Quick test_combined;
          Alcotest.test_case "multiple paths, one index" `Quick
            test_multiple_paths;
          Alcotest.test_case "four-component path" `Quick
            test_four_component_path;
          Alcotest.test_case "string-valued path" `Quick test_string_valued_path;
        ] );
      ( "algorithms",
        [ Alcotest.test_case "forward = parallel" `Quick test_forward_parallel_agree ] );
      ("properties", qsuite);
      ( "maintenance",
        [
          Alcotest.test_case "db stays in sync" `Quick test_db_maintenance;
          Alcotest.test_case "remove index" `Quick test_remove_index;
          Alcotest.test_case "multi-value refs" `Quick test_multi_value_refs;
        ] );
    ]
