(* Tests for the front-compressed B+-tree: node serialization, insert /
   delete with rebalancing, scans, multi-interval descent, overflow
   values, and a model-based randomized test. *)

module Smap = Map.Make (String)

let mk ?(page_size = 256) ?max_entries ?(front_coding = true) () =
  let pager = Storage.Pager.create ~page_size () in
  let config =
    { (Btree.default_config ~page_size) with max_entries; front_coding }
  in
  Btree.create ~config pager

let all_entries t =
  let out = ref [] in
  Btree.iter t (fun e -> out := (e.Btree.key, e.Btree.value ()) :: !out);
  List.rev !out

(* --- node serialization --------------------------------------------------- *)

let test_node_roundtrip () =
  let open Btree.Node in
  let leaf =
    Leaf
      {
        lkeys = [| "alpha"; "alphabet"; "beta" |];
        lvals = [| Inline "1"; Inline ""; Overflow { head = 7; length = 999 } |];
        next = 42;
      }
  in
  let b = encode ~front_coding:true ~page_size:256 leaf in
  (match decode b with
  | Leaf l ->
      Alcotest.(check (array string)) "keys" [| "alpha"; "alphabet"; "beta" |] l.lkeys;
      Alcotest.(check int) "next" 42 l.next;
      (match l.lvals.(2) with
      | Overflow { head; length } ->
          Alcotest.(check (pair int int)) "overflow" (7, 999) (head, length)
      | Inline _ -> Alcotest.fail "expected overflow")
  | Internal _ -> Alcotest.fail "expected leaf");
  let internal =
    Internal { ikeys = [| "k1"; "k2" |]; children = [| 1; 2; 3 |] }
  in
  let b = encode ~front_coding:false ~page_size:256 internal in
  match decode b with
  | Internal n ->
      Alcotest.(check (array string)) "separators" [| "k1"; "k2" |] n.ikeys;
      Alcotest.(check (array int)) "children" [| 1; 2; 3 |] n.children
  | Leaf _ -> Alcotest.fail "expected internal"

(* encode must refuse any field the u16 layout would silently truncate:
   pre-guard, a 70000-byte suffix wrote nkeys-worth of garbage (low 16
   bits only) and a 65535-byte inline value collided with the overflow
   marker, both yielding well-formed-looking but wrong pages *)
let test_encode_u16_guards () =
  let open Btree.Node in
  let expect_invalid what fn =
    match fn () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: encode accepted a truncating field" what
  in
  let page_size = 1 lsl 18 in
  let big_key = String.make 70_000 'k' in
  expect_invalid "key suffix >= 65536" (fun () ->
      encode ~front_coding:true ~page_size
        (Leaf { lkeys = [| big_key |]; lvals = [| Inline "" |]; next = -1 }));
  expect_invalid "separator suffix >= 65536" (fun () ->
      encode ~front_coding:false ~page_size
        (Internal { ikeys = [| big_key |]; children = [| 1; 2 |] }));
  (* 0xFFFF is the overflow marker: the largest inline length is 65534 *)
  expect_invalid "inline value = 65535" (fun () ->
      encode ~front_coding:true ~page_size
        (Leaf
           {
             lkeys = [| "k" |];
             lvals = [| Inline (String.make 0xFFFF 'v') |];
             next = -1;
           }));
  (* the boundary cases must still round-trip *)
  let k = String.make 0xFFFF 'k' and v = String.make 0xFFFE 'v' in
  match decode (encode ~front_coding:true ~page_size
                  (Leaf { lkeys = [| k |]; lvals = [| Inline v |]; next = -1 }))
  with
  | Leaf l ->
      Alcotest.(check bool) "max key round-trips" true (l.lkeys.(0) = k);
      Alcotest.(check bool) "max inline round-trips" true (l.lvals.(0) = Inline v)
  | Internal _ -> Alcotest.fail "expected leaf"

(* the tree layer rejects oversized keys up front (and oversized values
   are routed to overflow pages, never inlined) *)
let test_tree_entry_guards () =
  let t = mk ~page_size:4096 () in
  (match Btree.insert t ~key:(String.make 70_000 'k') ~value:"" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "insert accepted a 70000-byte key");
  (* a value at the marker boundary must come back intact via overflow *)
  let v = String.make 0xFFFF 'v' in
  Btree.insert t ~key:"big" ~value:v;
  Alcotest.(check bool) "marker-length value survives" true
    (Btree.find t "big" = Some v)

let test_node_size_compression () =
  let open Btree.Node in
  let keys = Array.init 20 (fun i -> Printf.sprintf "common-prefix-%04d" i) in
  let vals = Array.make 20 (Inline "") in
  let leaf = Leaf { lkeys = keys; lvals = vals; next = -1 } in
  let on = size ~front_coding:true leaf
  and off = size ~front_coding:false leaf in
  if on * 2 > off then
    Alcotest.failf "front coding saved too little: %d vs %d" on off

(* --- basic operations ------------------------------------------------------ *)

let test_insert_find () =
  let t = mk () in
  for i = 0 to 499 do
    Btree.insert t ~key:(Printf.sprintf "key%04d" i) ~value:(string_of_int i)
  done;
  Btree.check t;
  Alcotest.(check int) "length" 500 (Btree.length t);
  Alcotest.(check (option string)) "find hit" (Some "123")
    (Btree.find t "key0123");
  Alcotest.(check (option string)) "find miss" None (Btree.find t "nokey");
  (* replace *)
  Btree.insert t ~key:"key0123" ~value:"replaced";
  Alcotest.(check (option string)) "replaced" (Some "replaced")
    (Btree.find t "key0123");
  Alcotest.(check int) "length unchanged" 500 (Btree.length t)

let test_iter_sorted () =
  let t = mk () in
  let keys = List.init 300 (fun i -> Printf.sprintf "%04d" (997 * i mod 1000)) in
  List.iter (fun k -> Btree.insert t ~key:k ~value:"") keys;
  let got = List.map fst (all_entries t) in
  Alcotest.(check (list string)) "sorted unique" (List.sort_uniq compare keys) got

let test_delete_rebalance () =
  let t = mk ~max_entries:6 () in
  let n = 400 in
  for i = 0 to n - 1 do
    Btree.insert t ~key:(Printf.sprintf "%05d" i) ~value:(string_of_int i)
  done;
  (* delete in an adversarial order: every other key, then the rest *)
  for i = 0 to (n / 2) - 1 do
    Alcotest.(check bool) "present" true (Btree.delete t (Printf.sprintf "%05d" (2 * i)));
    if i mod 17 = 0 then Btree.check t
  done;
  Btree.check t;
  Alcotest.(check int) "half left" (n / 2) (Btree.length t);
  Alcotest.(check bool) "absent delete" false (Btree.delete t "99999");
  for i = 0 to (n / 2) - 1 do
    ignore (Btree.delete t (Printf.sprintf "%05d" ((2 * i) + 1)))
  done;
  Btree.check t;
  Alcotest.(check int) "empty" 0 (Btree.length t);
  Alcotest.(check int) "height collapsed" 1 (Btree.height t)

let test_overflow_values () =
  let t = mk ~page_size:128 () in
  let big = String.init 5000 (fun i -> Char.chr (65 + (i mod 26))) in
  Btree.insert t ~key:"big" ~value:big;
  Btree.insert t ~key:"small" ~value:"s";
  Btree.check t;
  Alcotest.(check (option string)) "big back" (Some big) (Btree.find t "big");
  (* replacing an overflow value frees its chain *)
  let pages_before = Storage.Pager.page_count (Btree.pager t) in
  Btree.insert t ~key:"big" ~value:"now-small";
  let pages_after = Storage.Pager.page_count (Btree.pager t) in
  if pages_after >= pages_before then
    Alcotest.failf "overflow chain not freed: %d -> %d" pages_before pages_after;
  Alcotest.(check (option string)) "replaced" (Some "now-small") (Btree.find t "big");
  (* deleting one frees too *)
  Btree.insert t ~key:"big2" ~value:big;
  let with_chain = Storage.Pager.page_count (Btree.pager t) in
  ignore (Btree.delete t "big2");
  if Storage.Pager.page_count (Btree.pager t) >= with_chain then
    Alcotest.fail "delete did not free overflow pages"

let test_scan_range () =
  let t = mk () in
  for i = 0 to 99 do
    Btree.insert t ~key:(Printf.sprintf "%03d" i) ~value:""
  done;
  let got = ref [] in
  Btree.scan_range t ~read:(Btree.raw_read t) ~lo:"010" ~hi:"020" (fun e ->
      got := e.Btree.key :: !got);
  Alcotest.(check (list string))
    "half open [10,20)"
    (List.init 10 (fun i -> Printf.sprintf "%03d" (10 + i)))
    (List.rev !got)

let test_scan_intervals () =
  let t = mk ~max_entries:4 () in
  for i = 0 to 199 do
    Btree.insert t ~key:(Printf.sprintf "%03d" i) ~value:""
  done;
  let collect ivs =
    let got = ref [] in
    Btree.scan_intervals t ~read:(Btree.raw_read t) ivs (fun e ->
        got := e.Btree.key :: !got);
    List.rev !got
  in
  Alcotest.(check (list string))
    "two intervals"
    [ "005"; "006"; "150" ]
    (collect [ ("005", "007"); ("150", "151") ]);
  Alcotest.(check (list string)) "overlap merged" [ "010"; "011"; "012" ]
    (collect [ ("010", "012"); ("011", "013") ]);
  Alcotest.(check (list string)) "empty interval dropped" []
    (collect [ ("050", "050") ]);
  (* pruning: disjoint narrow intervals must read far fewer pages than the
     bracketing range *)
  let stats = Storage.Pager.stats (Btree.pager t) in
  Storage.Stats.reset stats;
  ignore (collect [ ("000", "002"); ("198", "200") ]);
  let pruned = stats.Storage.Stats.reads in
  Storage.Stats.reset stats;
  ignore (collect [ ("000", "200") ]);
  let full = stats.Storage.Stats.reads in
  if pruned * 3 > full then
    Alcotest.failf "no pruning: %d vs %d pages" pruned full

let test_scanner_seek_next () =
  let t = mk ~max_entries:4 () in
  for i = 0 to 49 do
    Btree.insert t ~key:(Printf.sprintf "%02d" (2 * i)) ~value:""
  done;
  let sc = Btree.Scanner.create t ~read:(Btree.raw_read t) in
  (match Btree.Scanner.seek sc "11" with
  | Some e -> Alcotest.(check string) "first >= 11" "12" e.Btree.key
  | None -> Alcotest.fail "expected entry");
  (match Btree.Scanner.next sc with
  | Some e -> Alcotest.(check string) "next" "14" e.Btree.key
  | None -> Alcotest.fail "expected entry");
  (match Btree.Scanner.seek sc "98" with
  | Some e -> Alcotest.(check string) "last" "98" e.Btree.key
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check bool) "past end" true (Btree.Scanner.next sc = None);
  Alcotest.(check bool) "seek past end" true (Btree.Scanner.seek sc "99" = None)

let test_empty_tree () =
  let t = mk () in
  Btree.check t;
  Alcotest.(check int) "empty length" 0 (Btree.length t);
  Alcotest.(check (option string)) "find on empty" None (Btree.find t "x");
  Alcotest.(check bool) "delete on empty" false (Btree.delete t "x");
  let sc = Btree.Scanner.create t ~read:(Btree.raw_read t) in
  Alcotest.(check bool) "seek on empty" true (Btree.Scanner.seek sc "" = None)

let test_max_entries_cap () =
  let t = mk ~page_size:4096 ~max_entries:10 () in
  for i = 0 to 999 do
    Btree.insert t ~key:(Printf.sprintf "%04d" i) ~value:""
  done;
  Btree.check t;
  (* with m=10 every leaf has at most 10 entries, so >= 100 leaves *)
  if Btree.leaf_count t < 100 then
    Alcotest.failf "max_entries not enforced: %d leaves" (Btree.leaf_count t)

let test_front_coding_matches_plain () =
  let keys = List.init 500 (fun i -> Printf.sprintf "path/%02d/item%03d" (i mod 7) i) in
  let build front_coding =
    let t = mk ~front_coding () in
    List.iter (fun k -> Btree.insert t ~key:k ~value:(String.make 3 'v')) keys;
    Btree.check t;
    t
  in
  let a = build true and b = build false in
  Alcotest.(check (list (pair string string)))
    "same contents" (all_entries a) (all_entries b);
  let pages t = Storage.Pager.page_count (Btree.pager t) in
  if pages a >= pages b then
    Alcotest.failf "front coding saved nothing: %d vs %d" (pages a) (pages b)

let test_insert_batch () =
  let t = mk ~max_entries:6 () in
  (* seed with some data, then batch-merge around it *)
  for i = 0 to 99 do
    Btree.insert t ~key:(Printf.sprintf "%04d" (2 * i)) ~value:"old"
  done;
  let batch =
    List.init 150 (fun i -> (Printf.sprintf "%04d" i, Printf.sprintf "b%d" i))
  in
  Btree.insert_batch t batch;
  Btree.check t;
  (* batch keys replaced/landed; untouched odd keys beyond 149 unchanged *)
  Alcotest.(check (option string)) "replaced" (Some "b42") (Btree.find t "0042");
  Alcotest.(check (option string)) "new" (Some "b43") (Btree.find t "0043");
  Alcotest.(check (option string)) "untouched" (Some "old") (Btree.find t "0150");
  Alcotest.(check int) "length" (150 + 25) (Btree.length t);
  (* duplicate keys in one batch: the later one wins *)
  Btree.insert_batch t [ ("dup", "first"); ("dup", "second") ];
  Alcotest.(check (option string)) "later dup wins" (Some "second")
    (Btree.find t "dup")

let test_insert_batch_empty_tree () =
  let t = mk ~max_entries:4 () in
  let batch = List.init 500 (fun i -> (Printf.sprintf "%05d" i, "")) in
  Btree.insert_batch t batch;
  Btree.check t;
  Alcotest.(check int) "all in" 500 (Btree.length t);
  Btree.insert_batch t [];
  Btree.check t

let test_batch_with_overflow_values () =
  let t = mk ~page_size:128 () in
  let big = String.make 2000 'x' in
  Btree.insert_batch t
    [ ("a", "small"); ("b", big); ("c", ""); ("d", big ^ "2") ];
  Btree.check t;
  Alcotest.(check (option string)) "big via batch" (Some big) (Btree.find t "b");
  Alcotest.(check (option string)) "second big" (Some (big ^ "2")) (Btree.find t "d");
  (* replacing an overflow value through a batch frees the old chain *)
  let before = Storage.Pager.page_count (Btree.pager t) in
  Btree.insert_batch t [ ("b", "tiny") ];
  if Storage.Pager.page_count (Btree.pager t) >= before then
    Alcotest.fail "batch replacement did not free the overflow chain";
  Alcotest.(check (option string)) "replaced" (Some "tiny") (Btree.find t "b")

let test_batch_write_amortization () =
  (* the point of [4]: a clustered batch writes each touched page once *)
  let build f =
    let t = mk ~page_size:1024 () in
    for i = 0 to 999 do
      Btree.insert t ~key:(Printf.sprintf "k%06d" (2 * i)) ~value:"v"
    done;
    let batch =
      List.init 500 (fun i -> (Printf.sprintf "k%06d" ((2 * i) + 1), "w"))
    in
    let stats = Storage.Pager.stats (Btree.pager t) in
    Storage.Stats.reset stats;
    f t batch;
    Btree.check t;
    stats.Storage.Stats.writes
  in
  let one_by_one =
    build (fun t batch ->
        List.iter (fun (key, value) -> Btree.insert t ~key ~value) batch)
  in
  let batched = build (fun t batch -> Btree.insert_batch t batch) in
  if batched * 3 > one_by_one then
    Alcotest.failf "batch wrote %d pages, one-by-one %d (expected >=3x saving)"
      batched one_by_one

let prop_batch_equals_sequential =
  QCheck.Test.make ~count:50 ~name:"insert_batch = sequential inserts"
    QCheck.(
      pair
        (list (pair (int_bound 200) (string_of_size (QCheck.Gen.int_range 0 5))))
        (list (pair (int_bound 200) (string_of_size (QCheck.Gen.int_range 0 5)))))
    (fun (pre, batch) ->
      let enc i = Printf.sprintf "%04d" i in
      let t1 = mk ~page_size:128 ~max_entries:4 () in
      let t2 = mk ~page_size:128 ~max_entries:4 () in
      List.iter
        (fun (k, v) ->
          Btree.insert t1 ~key:(enc k) ~value:v;
          Btree.insert t2 ~key:(enc k) ~value:v)
        pre;
      List.iter (fun (k, v) -> Btree.insert t1 ~key:(enc k) ~value:v) batch;
      Btree.insert_batch t2 (List.map (fun (k, v) -> (enc k, v)) batch);
      Btree.check t1;
      Btree.check t2;
      all_entries t1 = all_entries t2)

(* --- model-based randomized test -------------------------------------------- *)

let prop_model =
  QCheck.Test.make ~count:30 ~name:"btree behaves like a sorted map"
    QCheck.(
      list
        (pair (int_bound 2) (string_of_size (QCheck.Gen.int_range 1 12))))
    (fun ops ->
      let t = mk ~page_size:128 ~max_entries:5 () in
      let model = ref Smap.empty in
      List.iteri
        (fun i (op, key) ->
          let key = if key = "" then "k" else key in
          match op with
          | 0 | 1 ->
              let v = Printf.sprintf "v%d" i in
              Btree.insert t ~key ~value:v;
              model := Smap.add key v !model
          | _ ->
              let present = Btree.delete t key in
              if present <> Smap.mem key !model then
                QCheck.Test.fail_reportf "delete presence mismatch on %S" key;
              model := Smap.remove key !model)
        ops;
      let r = Btree.check_invariants t in
      if r.Btree.entries <> Smap.cardinal !model then
        QCheck.Test.fail_reportf "report counts %d entries, model %d"
          r.Btree.entries (Smap.cardinal !model);
      if r.Btree.height <> Btree.height t then
        QCheck.Test.fail_reportf "report height diverged";
      if r.Btree.min_fill < 0. || r.Btree.min_fill > 1. then
        QCheck.Test.fail_reportf "min_fill %f out of range" r.Btree.min_fill;
      if r.Btree.avg_fill < 0. || r.Btree.avg_fill > 1. then
        QCheck.Test.fail_reportf "avg_fill %f out of range" r.Btree.avg_fill;
      let got = all_entries t in
      let want = Smap.bindings !model in
      if got <> want then
        QCheck.Test.fail_reportf "contents diverged: %d vs %d entries"
          (List.length got) (List.length want);
      true)

(* random insert/delete/update sequences on a file-backed tree: after a
   sync + reattach cycle the tree is identical and the invariant report is
   unchanged *)
let prop_sync_reattach =
  QCheck.Test.make ~count:30 ~name:"sync/reattach preserves the tree"
    QCheck.(
      list (pair (int_bound 2) (string_of_size (QCheck.Gen.int_range 1 10))))
    (fun ops ->
      let path = Filename.temp_file "uindex_btree_sync" ".pages" in
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun p -> try Sys.remove p with Sys_error _ -> ())
            [ path; Storage.Pager.journal_path path ])
        (fun () ->
          let pager = Storage.Pager.create_file ~page_size:256 path in
          let t = Btree.create pager in
          List.iteri
            (fun i (op, key) ->
              match op with
              | 0 | 1 -> Btree.insert t ~key ~value:(Printf.sprintf "v%d" i)
              | _ -> ignore (Btree.delete t key))
            ops;
          let before = all_entries t in
          let r_before = Btree.check_invariants t in
          Btree.sync t;
          Storage.Pager.close pager;
          let pager = Storage.Pager.open_file path in
          let t = Btree.reattach pager in
          let same =
            all_entries t = before && Btree.check_invariants t = r_before
          in
          Storage.Pager.close pager;
          same))

let prop_random_interval =
  QCheck.Test.make ~count:50 ~name:"scan_intervals = filtered iteration"
    QCheck.(pair (list (int_bound 999)) (list (pair (int_bound 999) (int_bound 999))))
    (fun (keys, ivs) ->
      let t = mk ~page_size:128 () in
      let enc i = Printf.sprintf "%04d" i in
      List.iter (fun k -> Btree.insert t ~key:(enc k) ~value:"") keys;
      let ivs = List.map (fun (a, b) -> (enc (min a b), enc (max a b))) ivs in
      let got = ref [] in
      Btree.scan_intervals t ~read:(Btree.raw_read t) ivs (fun e ->
          got := e.Btree.key :: !got);
      let want =
        List.sort_uniq compare keys |> List.map enc
        |> List.filter (fun k ->
               List.exists (fun (lo, hi) -> lo <= k && k < hi) ivs)
      in
      List.rev !got = want)

(* failure injection: decoding an arbitrary (corrupted) page must either
   produce a node or raise Invalid_argument — never crash or hang *)
let prop_decode_garbage =
  QCheck.Test.make ~count:500 ~name:"Node.decode survives garbage pages"
    QCheck.(string_of_size (QCheck.Gen.return 256))
    (fun junk ->
      let page = Bytes.of_string junk in
      match Btree.Node.decode page with
      | Btree.Node.Leaf _ | Btree.Node.Internal _ -> true
      | exception Invalid_argument _ -> true
      | exception _ -> false)

(* a corrupted page inside a live tree surfaces as a clean error *)
let test_corrupted_page_detected () =
  let t = mk () in
  for i = 0 to 200 do
    Btree.insert t ~key:(Printf.sprintf "%04d" i) ~value:""
  done;
  let pager = Btree.pager t in
  (* smash a page that check will walk *)
  let victim = 0 in
  Storage.Pager.write pager victim (Bytes.make 256 '\xEE');
  match Btree.check t with
  | () -> Alcotest.fail "corruption not detected"
  | exception Storage.Storage_error.Corruption { page; component; _ } ->
      Alcotest.(check int) "damaged page identified" victim (Option.get page);
      Alcotest.(check string) "btree detector" "btree.node" component

(* a longer soak: interleaved inserts, deletes, batches and scans with
   periodic invariant checks, at realistic page size *)
let test_soak () =
  let t = mk ~page_size:1024 () in
  let rng = Workload.Rng.create 2026 in
  let module Smap = Map.Make (String) in
  let model = ref Smap.empty in
  let key () = Printf.sprintf "k%06d" (Workload.Rng.int rng 30_000) in
  for round = 1 to 40 do
    (match Workload.Rng.int rng 3 with
    | 0 ->
        (* burst of single inserts *)
        for _ = 1 to 500 do
          let k = key () and v = string_of_int round in
          Btree.insert t ~key:k ~value:v;
          model := Smap.add k v !model
        done
    | 1 ->
        (* a batch *)
        let batch = List.init 700 (fun i -> (key (), Printf.sprintf "b%d_%d" round i)) in
        Btree.insert_batch t batch;
        List.iter (fun (k, v) -> model := Smap.add k v !model) batch
    | _ ->
        (* deletions *)
        for _ = 1 to 400 do
          let k = key () in
          let present = Btree.delete t k in
          if present <> Smap.mem k !model then
            Alcotest.failf "delete presence diverged on %s (round %d)" k round;
          model := Smap.remove k !model
        done);
    if round mod 8 = 0 then begin
      Btree.check t;
      Alcotest.(check int)
        (Printf.sprintf "cardinality round %d" round)
        (Smap.cardinal !model) (Btree.length t)
    end
  done;
  Btree.check t;
  let got = all_entries t in
  Alcotest.(check int) "final contents" (Smap.cardinal !model) (List.length got);
  if got <> Smap.bindings !model then Alcotest.fail "final contents diverged"

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_model;
      prop_sync_reattach;
      prop_random_interval;
      prop_batch_equals_sequential;
      prop_decode_garbage;
    ]

let () =
  Alcotest.run "btree"
    [
      ( "node",
        [
          Alcotest.test_case "roundtrip" `Quick test_node_roundtrip;
          Alcotest.test_case "compression shrinks" `Quick test_node_size_compression;
          Alcotest.test_case "encode u16 guards" `Quick test_encode_u16_guards;
          Alcotest.test_case "tree entry guards" `Quick test_tree_entry_guards;
        ] );
      ( "operations",
        [
          Alcotest.test_case "insert/find/replace" `Quick test_insert_find;
          Alcotest.test_case "iteration sorted" `Quick test_iter_sorted;
          Alcotest.test_case "delete & rebalance" `Quick test_delete_rebalance;
          Alcotest.test_case "overflow values" `Quick test_overflow_values;
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "max entries (m=10)" `Quick test_max_entries_cap;
          Alcotest.test_case "front coding equivalence" `Quick
            test_front_coding_matches_plain;
          Alcotest.test_case "batch insert" `Quick test_insert_batch;
          Alcotest.test_case "batch into empty tree" `Quick
            test_insert_batch_empty_tree;
          Alcotest.test_case "batch write amortization" `Quick
            test_batch_write_amortization;
          Alcotest.test_case "batch with overflow values" `Quick
            test_batch_with_overflow_values;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "detected by check" `Quick
            test_corrupted_page_detected;
        ] );
      ( "scans",
        [
          Alcotest.test_case "range" `Quick test_scan_range;
          Alcotest.test_case "intervals & pruning" `Quick test_scan_intervals;
          Alcotest.test_case "scanner seek/next" `Quick test_scanner_seek_next;
        ] );
      ("soak", [ Alcotest.test_case "interleaved workload" `Slow test_soak ]);
      ("properties", qsuite);
    ]
