(* Tests for the textual query format of Section 3.4. *)

module Ps = Workload.Paper_schema
module Value = Objstore.Value
module Query = Uindex.Query
module Qparse = Uindex.Qparse
module Exec = Uindex.Exec
module Index = Uindex.Index

let b = lazy (Ps.base ())

let parse s = Qparse.parse (Lazy.force b).schema s
let to_syntax q = Qparse.to_syntax (Lazy.force b).schema q

let test_values () =
  let q = parse "(Red, Vehicle*)" in
  Alcotest.(check bool) "exact str" true (q.Query.value = V_eq (Str "Red"));
  let q = parse "(50, Employee)" in
  Alcotest.(check bool) "exact int" true (q.Query.value = V_eq (Int 50));
  let q = parse "(-5, Employee)" in
  Alcotest.(check bool) "negative int" true (q.Query.value = V_eq (Int (-5)));
  let q = parse "(*, Vehicle*)" in
  Alcotest.(check bool) "any" true (q.Query.value = V_any);
  let q = parse "([Blue-Red], Vehicle*)" in
  Alcotest.(check bool) "range" true
    (q.Query.value = V_range (Some (Str "Blue"), Some (Str "Red")));
  let q = parse "([50-], Employee)" in
  Alcotest.(check bool) "open above" true
    (q.Query.value = V_range (Some (Int 50), None));
  let q = parse "([-50], Employee)" in
  Alcotest.(check bool) "open below" true
    (q.Query.value = V_range (None, Some (Int 50)));
  let q = parse "([--2], Employee)" in
  Alcotest.(check bool) "negative upper bound" true
    (q.Query.value = V_range (None, Some (Int (-2))));
  let q = parse "({Red, Blue}, Vehicle*)" in
  Alcotest.(check bool) "enum" true (q.Query.value = V_in [ Str "Red"; Str "Blue" ]);
  let q = parse "(\"Hello World\", Vehicle*)" in
  Alcotest.(check bool) "quoted" true (q.Query.value = V_eq (Str "Hello World"))

let test_patterns () =
  let base = Lazy.force b in
  let q = parse "(Red, Vehicle)" in
  Alcotest.(check bool) "exact class" true
    ((List.hd q.Query.comps).pat = P_class base.vehicle);
  let q = parse "(Red, Automobile*)" in
  Alcotest.(check bool) "subtree" true
    ((List.hd q.Query.comps).pat = P_subtree base.automobile);
  let q = parse "(Red, [Automobile* | Truck])" in
  Alcotest.(check bool) "union" true
    ((List.hd q.Query.comps).pat
    = P_union [ P_subtree base.automobile; P_class base.truck ])

let test_slots_and_paths () =
  let base = Lazy.force b in
  let q = parse "(50, Employee*, Company* @12, Vehicle* ?)" in
  Alcotest.(check int) "three comps" 3 (List.length q.Query.comps);
  (match q.Query.comps with
  | [ e; c; v ] ->
      Alcotest.(check bool) "employee any" true (e.slot = S_any);
      Alcotest.(check bool) "company bound" true (c.slot = S_oid 12);
      Alcotest.(check bool) "vehicle find" true (v.slot = S_any);
      Alcotest.(check bool) "classes" true
        (e.pat = P_subtree base.employee
        && c.pat = P_subtree base.company
        && v.pat = P_subtree base.vehicle)
  | _ -> Alcotest.fail "arity");
  let q = parse "(50, Employee @{1, 2, 3})" in
  Alcotest.(check bool) "one-of slot" true
    ((List.hd q.Query.comps).slot = S_one_of [ 1; 2; 3 ])

let test_errors () =
  let expect_fail s =
    match parse s with
    | exception Qparse.Parse_error _ -> ()
    | _ -> Alcotest.failf "should not parse: %s" s
  in
  expect_fail "";
  expect_fail "(Red)";
  expect_fail "(Red, NoSuchClass)";
  expect_fail "(Red, Vehicle";
  expect_fail "(Red, Vehicle) junk";
  expect_fail "([Red-], Vehicle*)extra";
  expect_fail "([-], Vehicle*)";
  expect_fail "(Red, Vehicle @)";
  expect_fail "(\"unterminated, Vehicle)"

let test_end_to_end () =
  (* a parsed query runs and agrees with the hand-built one *)
  let base = Lazy.force b in
  let ex = Ps.example1 base in
  let idx =
    Index.create_class_hierarchy (Storage.Pager.create ()) base.enc
      ~root:base.vehicle ~attr:"color"
  in
  Index.build idx ex.store;
  let parsed = Exec.parallel idx (parse "(Red, Automobile*)") in
  let built =
    Exec.parallel idx
      (Query.class_hierarchy ~value:(V_eq (Str "Red")) (P_subtree base.automobile))
  in
  Alcotest.(check (list int)) "same result" (Exec.head_oids built)
    (Exec.head_oids parsed)

let gen_query =
  let open QCheck.Gen in
  let base = Lazy.force b in
  let classes =
    [| base.vehicle; base.automobile; base.compact; base.truck; base.company |]
  in
  let gen_scalar =
    oneof [ map (fun i -> Value.Int i) (int_range (-50) 999);
            map (fun c -> Value.Str c) (oneofl [ "Red"; "Blue"; "hello_world" ]) ]
  in
  let gen_value =
    oneof
      [
        return Query.V_any;
        map (fun v -> Query.V_eq v) gen_scalar;
        map2
          (fun a b ->
            Query.V_range
              (Some (Value.Int (min a b)), Some (Value.Int (max a b))))
          (int_range 0 99) (int_range 0 99);
        map (fun vs -> Query.V_in vs) (list_size (int_range 1 3) gen_scalar);
      ]
  in
  let gen_pat =
    let leaf =
      map
        (fun (i, sub) ->
          let c = classes.(i mod Array.length classes) in
          if sub then Query.P_subtree c else Query.P_class c)
        (pair nat bool)
    in
    oneof
      [ leaf; map (fun ps -> Query.P_union ps) (list_size (int_range 1 3) leaf) ]
  in
  let gen_slot =
    oneof
      [
        return Query.S_any;
        map (fun o -> Query.S_oid o) (int_range 0 9999);
        map (fun os -> Query.S_one_of os) (list_size (int_range 1 3) (int_range 0 99));
      ]
  in
  let gen_comp = map2 (fun pat slot -> { Query.pat; slot }) gen_pat gen_slot in
  map2
    (fun value comps -> { Query.value; comps })
    gen_value
    (list_size (int_range 1 3) gen_comp)

(* V_range over Int only in the generator, so ranges stay well-typed *)
let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"parse (to_syntax q) = q"
    (QCheck.make gen_query) (fun q ->
      let s = to_syntax q in
      match parse s with
      | q' -> q' = q
      | exception Qparse.Parse_error m ->
          QCheck.Test.fail_reportf "did not re-parse %S: %s" s m)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ]

let () =
  Alcotest.run "qparse"
    [
      ( "parsing",
        [
          Alcotest.test_case "values" `Quick test_values;
          Alcotest.test_case "class patterns" `Quick test_patterns;
          Alcotest.test_case "slots & paths" `Quick test_slots_and_paths;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "end to end" `Quick test_end_to_end;
        ] );
      ("properties", qsuite);
    ]
