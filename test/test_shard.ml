(* The sharding subsystem end to end: shard-map validation and
   round-tripping, the splitter's exact partition of a real index, the
   planner's interval intersection on subtree boundaries, and — the
   heart of it — a differential run of 500+ generated queries through a
   3-shard scatter-gather router against the unsharded engine, with the
   per-shard request counters proving pruning is exact, not heuristic.
   Partial failure (a dead shard) must surface as a typed
   [shard_failure], and a unanimously unroutable query must pass the
   shards' own error through untouched. *)

module Dg = Workload.Datagen
module Ps = Workload.Paper_schema
module Db = Uindex.Db
module Index = Uindex.Index
module Query = Uindex.Query
module Qparse = Uindex.Qparse
module Value = Objstore.Value
module Json = Obs.Json
module Encoding = Oodb_schema.Encoding
module Service = Uindex_server.Service
module Protocol = Uindex_server.Protocol
module Client = Uindex_server.Client
module Smap = Uindex_shard.Shard_map
module Planner = Uindex_shard.Planner
module Splitter = Uindex_shard.Splitter
module Router = Uindex_shard.Router

let mkshard ?hi ?file ?endpoint lo = { Smap.lo; hi; file; endpoint }

let map_of_boundaries bounds =
  let rec go lo = function
    | [] -> [ mkshard lo ]
    | b :: rest -> mkshard ~hi:b lo :: go b rest
  in
  Smap.make (go "" bounds)

(* One store, one unsharded service, and a [shards]-way fleet of
   in-process shard services behind a router, all over the same data. *)
type fleet = {
  ext : Ps.extended;
  map : Smap.t;
  unsharded : Service.t;
  services : Service.t array;
  router : Router.t;
}

let make_fleet ?(n_vehicles = 600) ?(seed = 7) ?(shards = 3) () =
  let e = Dg.exp1 ~n_vehicles ~seed () in
  let ext = e.Dg.ext in
  let b = ext.Ps.b in
  let db0 = Db.create e.Dg.store in
  Db.attach_index db0 e.Dg.ch_color;
  Db.attach_index db0 e.Dg.path_age;
  let unsharded = Service.create ~schema:b.Ps.schema db0 in
  let bounds = Splitter.choose_boundaries ~source:e.Dg.ch_color ~shards in
  let map = map_of_boundaries bounds in
  let services =
    Array.init (Smap.count map) (fun i ->
        let db = Db.create e.Dg.store in
        Db.attach_index db
          (Splitter.restrict ~source:e.Dg.ch_color map i (Storage.Pager.create ()));
        Db.attach_index db
          (Splitter.restrict ~source:e.Dg.path_age map i (Storage.Pager.create ()));
        Service.create ~schema:b.Ps.schema db)
  in
  let backends = Array.map (fun s -> Router.Local s) services in
  let router =
    Router.create ~schema:b.Ps.schema ~enc:b.Ps.enc ~map ~backends ()
  in
  { ext; map; unsharded; services; router }

(* A deterministic query mix covering every pattern and value form the
   wire syntax can express: exact/subtree/union class patterns times
   exact/set/range/open-range values on the class-hierarchy index, plus
   path queries with varying component patterns and ages. *)
let query_mix ext =
  let b = ext.Ps.b in
  let classes =
    [
      b.Ps.vehicle;
      b.Ps.automobile;
      b.Ps.compact;
      b.Ps.truck;
      ext.Ps.bus;
      ext.Ps.military_bus;
      ext.Ps.tourist_bus;
      ext.Ps.passenger_bus;
      ext.Ps.foreign_auto;
      ext.Ps.service_auto;
      ext.Ps.heavy_truck;
      ext.Ps.light_truck;
    ]
  in
  let pats =
    List.concat_map (fun c -> [ Query.P_class c; Query.P_subtree c ]) classes
    @ [
        Query.P_union [ Query.P_subtree ext.Ps.bus; Query.P_subtree b.Ps.truck ];
        Query.P_union
          [ Query.P_class b.Ps.compact; Query.P_subtree ext.Ps.military_bus ];
        Query.P_union
          [ Query.P_subtree b.Ps.automobile; Query.P_class b.Ps.vehicle ];
        Query.P_union
          [
            Query.P_class ext.Ps.heavy_truck;
            Query.P_class ext.Ps.light_truck;
            Query.P_subtree ext.Ps.passenger_bus;
          ];
      ]
  in
  let colors = Array.to_list Ps.colors in
  let values =
    (Query.V_any :: List.map (fun c -> Query.V_eq (Value.Str c)) colors)
    @ [
        Query.V_in [ Value.Str "Red"; Value.Str "Blue" ];
        Query.V_range (Some (Value.Str "B"), Some (Value.Str "H"));
        Query.V_range (None, Some (Value.Str "M"));
        Query.V_range (Some (Value.Str "R"), None);
      ]
  in
  let ch =
    List.concat_map
      (fun v -> List.map (fun p -> Query.class_hierarchy ~value:v p) pats)
      values
  in
  let path_comps =
    [
      [ b.Ps.employee, `Sub; b.Ps.company, `Sub; b.Ps.vehicle, `Sub ];
      [ b.Ps.employee, `Exact; b.Ps.company, `Sub; b.Ps.vehicle, `Sub ];
      [ b.Ps.employee, `Sub; b.Ps.japanese_auto_company, `Sub; b.Ps.vehicle, `Sub ];
      [ b.Ps.employee, `Sub; b.Ps.auto_company, `Sub; b.Ps.automobile, `Sub ];
      [ b.Ps.employee, `Sub; b.Ps.truck_company, `Sub; b.Ps.truck, `Sub ];
      [ b.Ps.employee, `Sub; b.Ps.company, `Exact; ext.Ps.bus, `Sub ];
      [ b.Ps.employee, `Sub; b.Ps.company, `Sub; b.Ps.compact, `Exact ];
    ]
  in
  let ages =
    (Query.V_any
    :: List.init 30 (fun i -> Query.V_eq (Value.Int (20 + i))))
    @ [
        Query.V_range (Some (Value.Int 30), Some (Value.Int 40));
        Query.V_range (Some (Value.Int 55), None);
      ]
  in
  let comp (c, k) =
    Query.comp
      (match k with `Sub -> Query.P_subtree c | `Exact -> Query.P_class c)
  in
  let paths =
    List.concat_map
      (fun v ->
        List.map (fun cs -> Query.path ~value:v (List.map comp cs)) path_comps)
      ages
  in
  ch @ paths

(* --- shard map --------------------------------------------------------- *)

let expect_invalid name shards =
  match Smap.make shards with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_map_validation () =
  expect_invalid "empty map" [];
  expect_invalid "first lo nonempty" [ mkshard "a" ];
  expect_invalid "gap between ranges" [ mkshard ~hi:"b" ""; mkshard "c" ];
  expect_invalid "overlap" [ mkshard ~hi:"c" ""; mkshard "b" ];
  expect_invalid "empty range" [ mkshard ~hi:"b" ""; mkshard ~hi:"b" "b"; mkshard "b" ];
  expect_invalid "unbounded non-last" [ mkshard ""; mkshard "b" ];
  expect_invalid "bounded last" [ mkshard ~hi:"b" "" ];
  let m = Smap.make [ mkshard ~hi:"b" ""; mkshard ~hi:"d" "b"; mkshard "d" ] in
  Alcotest.(check int) "count" 3 (Smap.count m);
  Alcotest.(check int) "locate below" 0 (Smap.locate m "a");
  Alcotest.(check int) "locate on boundary" 1 (Smap.locate m "b");
  Alcotest.(check int) "locate inside" 1 (Smap.locate m "c");
  Alcotest.(check int) "locate top" 2 (Smap.locate m "zz");
  Alcotest.(check (list int)) "intersecting one" [ 1 ]
    (Smap.intersecting m [ ("b", "c") ]);
  Alcotest.(check (list int)) "intersecting span" [ 0; 1; 2 ]
    (Smap.intersecting m [ ("a", "e") ]);
  Alcotest.(check (list int)) "empty interval" []
    (Smap.intersecting m [ ("c", "c") ]);
  Alcotest.(check (list int)) "no intervals" [] (Smap.intersecting m [])

let test_map_roundtrip () =
  (* real serialized codes carry 0x02 unit terminators; they must
     survive JSON and the filesystem byte-exactly *)
  let ext = Ps.extended () in
  let b = ext.Ps.b in
  let bound c = fst (Encoding.subtree_interval b.Ps.enc c) in
  let b1, b2 =
    let x = bound ext.Ps.bus and y = bound b.Ps.truck in
    if x < y then (x, y) else (y, x)
  in
  let m =
    Smap.make
      [
        mkshard ~hi:b1 ~file:"s0.pages" ~endpoint:"h0:4000" "";
        mkshard ~hi:b2 ~file:"s1.pages" b1;
        mkshard ~endpoint:"/tmp/s2.sock" b2;
      ]
  in
  let m' = Smap.of_json (Smap.to_json m) in
  Alcotest.(check string) "json round-trip"
    (Json.to_string (Smap.to_json m))
    (Json.to_string (Smap.to_json m'));
  let file = Filename.temp_file "uindex_shard" ".map.json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Smap.save m file;
      let m'' = Smap.load file in
      Alcotest.(check string) "file round-trip"
        (Json.to_string (Smap.to_json m))
        (Json.to_string (Smap.to_json m'')));
  match Smap.of_json (Json.Obj [ ("shards", Json.List []) ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_json accepted an empty cover"

(* --- splitter ---------------------------------------------------------- *)

let test_splitter_partition () =
  let e = Dg.exp1 ~n_vehicles:400 ~seed:11 () in
  let bounds = Splitter.choose_boundaries ~source:e.Dg.ch_color ~shards:3 in
  Alcotest.(check int) "boundary count" 2 (List.length bounds);
  let map = map_of_boundaries bounds in
  let parts =
    Splitter.split ~source:e.Dg.ch_color
      ~make_pager:(fun _ -> Storage.Pager.create ())
      map
  in
  let total =
    Array.fold_left (fun acc ix -> acc + Index.entry_count ix) 0 parts
  in
  Alcotest.(check int) "totality" (Index.entry_count e.Dg.ch_color) total;
  Array.iteri
    (fun i ix ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d nonempty" i)
        true
        (Index.entry_count ix > 0);
      ignore (Btree.check_invariants (Index.tree ix));
      Btree.iter (Index.tree ix) (fun en ->
          let sk = Splitter.shard_key ~ty:(Index.attr_ty ix) en.Btree.key in
          if Smap.locate map sk <> i then
            Alcotest.failf "shard %d holds an out-of-range entry" i))
    parts

(* --- planner ----------------------------------------------------------- *)

let test_planner_intervals () =
  let ext = Ps.extended () in
  let b = ext.Ps.b in
  let enc = b.Ps.enc in
  Alcotest.(check int) "P_union [] admits nothing" 0
    (List.length (Planner.code_intervals enc (Query.P_union [])));
  (* duplicate members merge away *)
  Alcotest.(check int) "idempotent union" 1
    (List.length
       (Planner.code_intervals enc
          (Query.P_union
             [ Query.P_subtree ext.Ps.bus; Query.P_subtree ext.Ps.bus ])));
  (* an exact interval inside its own subtree merges into it *)
  let sub = Planner.code_intervals enc (Query.P_subtree b.Ps.vehicle) in
  let merged =
    Planner.code_intervals enc
      (Query.P_union [ Query.P_class b.Ps.vehicle; Query.P_subtree b.Ps.vehicle ])
  in
  Alcotest.(check bool) "exact absorbed by subtree" true (sub = merged)

let test_planner_boundary () =
  let ext = Ps.extended () in
  let b = ext.Ps.b in
  let enc = b.Ps.enc in
  (* split exactly on the Bus subtree boundary: the bare serialized
     code of Bus, below every Bus-subtree shard key *)
  let boundary = fst (Encoding.subtree_interval enc ext.Ps.bus) in
  let m = map_of_boundaries [ boundary ] in
  let route pat =
    Planner.route m enc (Query.class_hierarchy ~value:Query.V_any pat)
  in
  Alcotest.(check (list int)) "bus subtree above the cut" [ 1 ]
    (route (Query.P_subtree ext.Ps.bus));
  Alcotest.(check (list int)) "bus exactly" [ 1 ] (route (Query.P_class ext.Ps.bus));
  Alcotest.(check (list int)) "bus descendant" [ 1 ]
    (route (Query.P_class ext.Ps.military_bus));
  Alcotest.(check (list int)) "vehicle root below the cut" [ 0 ]
    (route (Query.P_class b.Ps.vehicle));
  Alcotest.(check (list int)) "vehicle subtree spans the cut" [ 0; 1 ]
    (route (Query.P_subtree b.Ps.vehicle));
  Alcotest.(check (list int)) "empty union routes nowhere" []
    (route (Query.P_union []))

(* --- router ------------------------------------------------------------ *)

let member_exn name doc =
  match Json.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks %S: %s" name (Json.to_string doc)

let test_router_empty_union () =
  let f = make_fleet ~n_vehicles:200 () in
  let q = Query.class_hierarchy ~value:Query.V_any (Query.P_union []) in
  Alcotest.(check (list int)) "routes nowhere" [] (Router.route_query f.router q);
  let reply = Router.respond f.router q in
  let d = Json.of_string reply in
  Alcotest.(check bool) "ok" true (Protocol.response_is_ok d);
  Alcotest.(check (option int)) "count 0" (Some 0)
    (Json.to_int (member_exn "count" d));
  Alcotest.(check (option int)) "no rows" (Some 0)
    (Option.map List.length (Json.to_list (member_exn "rows" d)));
  Alcotest.(check (array int)) "no shard contacted"
    (Array.make (Smap.count f.map) 0)
    (Router.requests_per_shard f.router)

let test_router_all_shards () =
  let f = make_fleet ~n_vehicles:200 () in
  let q =
    Query.class_hierarchy ~value:Query.V_any (Query.P_subtree f.ext.Ps.b.Ps.vehicle)
  in
  Alcotest.(check (list int)) "vehicle subtree spans every shard"
    (List.init (Smap.count f.map) Fun.id)
    (Router.route_query f.router q)

let test_differential () =
  let f = make_fleet () in
  let schema = f.ext.Ps.b.Ps.schema in
  let qs = query_mix f.ext in
  Alcotest.(check bool) "mix is large enough" true (List.length qs >= 500);
  let expected = Array.make (Smap.count f.map) 0 in
  let single = ref 0 and full = ref 0 and ok = ref 0 in
  List.iter
    (fun q ->
      let text = Qparse.to_syntax schema q in
      let line = "query " ^ text in
      (match Qparse.parse schema text with
      | exception Qparse.Parse_error _ -> ()
      | q' ->
          let targets = Router.route_query f.router q' in
          List.iter (fun i -> expected.(i) <- expected.(i) + 1) targets;
          (match targets with
          | [ _ ] -> incr single
          | l when List.length l = Smap.count f.map -> incr full
          | _ -> ()));
      let a = Service.serve_line f.unsharded line in
      let r = Router.serve_line f.router line in
      if Protocol.response_is_ok (Json.of_string a) then incr ok;
      Alcotest.(check string)
        (Printf.sprintf "reply for %s" text)
        (Router.canonical_projection a)
        (Router.canonical_projection r))
    qs;
  Alcotest.(check (array int)) "pruning is exact" expected
    (Router.requests_per_shard f.router);
  Alcotest.(check bool) "mix has single-shard queries" true (!single > 0);
  Alcotest.(check bool) "mix has full fan-outs" true (!full > 0);
  Alcotest.(check bool) "mix mostly answers" true
    (!ok * 2 > List.length qs)

let test_single_shard_bypass () =
  let f = make_fleet ~n_vehicles:300 () in
  let schema = f.ext.Ps.b.Ps.schema in
  (* find a class pattern routed to exactly one shard *)
  let q, i =
    let cs = Ps.vehicle_leaf_classes f.ext in
    let rec pick k =
      if k >= Array.length cs then Alcotest.fail "no single-shard class"
      else
        let q =
          Query.class_hierarchy ~value:(Query.V_eq (Value.Str "Red"))
            (Query.P_class cs.(k))
        in
        match Router.route_query f.router q with
        | [ i ] -> (q, i)
        | _ -> pick (k + 1)
    in
    pick 0
  in
  let line = "@beef query " ^ Qparse.to_syntax schema q in
  (* warm the shard's cache so cost fields are stable, then the
     forwarded reply must be byte-identical to the shard's own —
     trace id, cost fields and all: no parse, no re-render *)
  ignore (Service.serve_line f.services.(i) line);
  let direct = Service.serve_line f.services.(i) line in
  let via = Router.serve_line f.router line in
  Alcotest.(check string) "forwarded bytes untouched" direct via;
  Alcotest.(check (option string)) "trace id echoed" (Some "beef")
    (Json.to_str (member_exn "trace_id" (Json.of_string via)))

let test_partial_failure () =
  let f = make_fleet ~n_vehicles:300 () in
  let b = f.ext.Ps.b in
  let dead = Filename.concat (Filename.get_temp_dir_name ()) "uindex-no-such.sock" in
  let backends =
    Array.mapi
      (fun i s -> if i = 1 then Router.Remote dead else Router.Local s)
      f.services
  in
  let policy =
    { Client.default_retry_policy with attempts = 1; base_delay = 0.001 }
  in
  let router =
    Router.create ~retry_policy:policy ~schema:b.Ps.schema ~enc:b.Ps.enc
      ~map:f.map ~backends ()
  in
  (* spans every shard, so the dead one is contacted *)
  let spanning =
    "query " ^ Qparse.to_syntax b.Ps.schema
      (Query.class_hierarchy ~value:Query.V_any (Query.P_subtree b.Ps.vehicle))
  in
  let d = Json.of_string (Router.serve_line router spanning) in
  Alcotest.(check (option string)) "typed partial failure"
    (Some "shard_failure")
    (Protocol.response_error_kind d);
  let detail =
    Option.value ~default:"" (Json.to_str (member_exn "detail" (member_exn "error" d)))
  in
  let contains hay needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "detail names the lost shard" true
    (contains detail "shard 1");
  (* a query pruned away from the dead shard still answers *)
  let cs = Ps.vehicle_leaf_classes f.ext in
  let rec pick k =
    if k >= Array.length cs then Alcotest.fail "no query avoiding shard 1"
    else
      let q = Query.class_hierarchy ~value:Query.V_any (Query.P_class cs.(k)) in
      match Router.route_query router q with
      | targets when targets <> [] && not (List.mem 1 targets) -> q
      | _ -> pick (k + 1)
  in
  let q = pick 0 in
  let line = "query " ^ Qparse.to_syntax b.Ps.schema q in
  let live = Json.of_string (Router.serve_line router line) in
  Alcotest.(check bool) "pruned query unaffected" true
    (Protocol.response_is_ok live)

let test_unanimous_error_passthrough () =
  let f = make_fleet ~n_vehicles:200 () in
  let b = f.ext.Ps.b in
  (* arity-2 path: no such index anywhere, first component spans every
     shard — all shards reply [unroutable], and that reply (not a
     [shard_failure]) must come back *)
  let q =
    Query.path ~value:Query.V_any
      [ Query.comp (Query.P_subtree b.Ps.vehicle);
        Query.comp (Query.P_subtree b.Ps.company) ]
  in
  Alcotest.(check int) "spans every shard" (Smap.count f.map)
    (List.length (Router.route_query f.router q));
  let line = "query " ^ Qparse.to_syntax b.Ps.schema q in
  let via = Json.of_string (Router.serve_line f.router line) in
  let direct = Json.of_string (Service.serve_line f.unsharded line) in
  Alcotest.(check (option string)) "same error as unsharded"
    (Protocol.response_error_kind direct)
    (Protocol.response_error_kind via);
  Alcotest.(check bool) "is unroutable, not shard_failure" true
    (Protocol.response_error_kind via = Some "unroutable")

let () =
  Alcotest.run "shard"
    [
      ( "map",
        [
          Alcotest.test_case "validation" `Quick test_map_validation;
          Alcotest.test_case "round-trip" `Quick test_map_roundtrip;
        ] );
      ( "splitter",
        [ Alcotest.test_case "partition" `Quick test_splitter_partition ] );
      ( "planner",
        [
          Alcotest.test_case "intervals" `Quick test_planner_intervals;
          Alcotest.test_case "subtree boundary" `Quick test_planner_boundary;
        ] );
      ( "router",
        [
          Alcotest.test_case "empty union" `Quick test_router_empty_union;
          Alcotest.test_case "all shards" `Quick test_router_all_shards;
          Alcotest.test_case "differential 500+" `Quick test_differential;
          Alcotest.test_case "single-shard bypass" `Quick test_single_shard_bypass;
          Alcotest.test_case "partial failure" `Quick test_partial_failure;
          Alcotest.test_case "unanimous error" `Quick
            test_unanimous_error_passthrough;
        ] );
    ]
