(* Property-based differential tests: the two retrieval algorithms
   ({!Exec.parallel} and {!Exec.forward}) against a naive in-memory scan
   over the generated data.  Any disagreement — a binding produced by one
   executor and not another, or by an executor and not the oracle — is a
   correctness bug in index encoding, planning or scanning.

   Three layers:
   - 1,000 generated class-hierarchy queries (exact / range / one-of /
     unrestricted values, class / subtree / union patterns) over two
     experiment-2 style datasets;
   - a qcheck property that regenerates the schema itself per case;
   - path queries on the experiment-1 vehicle database against an oracle
     that walks the object store's references directly. *)

module Dg = Workload.Datagen
module Qg = Workload.Querygen
module Rng = Workload.Rng
module Ps = Workload.Paper_schema
module Query = Uindex.Query
module Exec = Uindex.Exec
module Index = Uindex.Index
module Value = Objstore.Value
module Store = Objstore.Store
module Schema = Oodb_schema.Schema
module Encoding = Oodb_schema.Encoding

(* bindings as a canonical set, comparable across executors and oracle *)
let canon_bindings bs =
  List.sort_uniq compare
    (List.map (fun b -> (b.Exec.value, b.Exec.comps)) bs)

let canon (o : Exec.outcome) = canon_bindings o.Exec.bindings

let pp_query schema q = Format.asprintf "%a" (Query.pp schema) q

(* --- class-hierarchy differential ----------------------------------------- *)

(* a random single-component query over [classes] with [distinct_keys]
   integer key values *)
let gen_ch_query rng ~classes ~distinct_keys =
  let pat =
    match Rng.int rng 4 with
    | 0 -> Query.P_subtree (Rng.pick rng classes)
    | 1 -> Query.P_class (Rng.pick rng classes)
    | _ ->
        let k = 1 + Rng.int rng (min 5 (Array.length classes)) in
        let placement =
          match Rng.int rng 3 with
          | 0 -> Qg.Near
          | 1 -> Qg.Distant
          | _ -> Qg.Random
        in
        Qg.union_of_classes (Qg.pick_sets rng placement ~classes ~k)
  in
  let exact () = Qg.exact_value rng ~distinct_keys in
  let value =
    match Rng.int rng 10 with
    | 0 -> Query.V_any
    | 1 | 2 ->
        let lo, hi = Qg.range_bounds rng ~distinct_keys ~frac:0.1 in
        Query.V_range (Some (Value.Int lo), Some (Value.Int hi))
    | 3 ->
        if Rng.int rng 2 = 0 then Query.V_range (None, Some (Value.Int (exact ())))
        else Query.V_range (Some (Value.Int (exact ())), None)
    | 4 | 5 ->
        Query.V_in
          (List.sort_uniq compare
             (List.init (1 + Rng.int rng 4) (fun _ -> Value.Int (exact ()))))
    | _ -> Query.V_eq (Value.Int (exact ()))
  in
  Query.class_hierarchy ~value pat

(* the oracle: filter the raw (key, class, oid) rows the dataset was
   built from *)
let ch_oracle schema entries (q : Query.t) =
  let pat =
    match q.Query.comps with [ c ] -> c.Query.pat | _ -> assert false
  in
  Array.to_list entries
  |> List.filter_map (fun (k, cls, oid) ->
         if
           Query.value_matches q.Query.value (Value.Int k)
           && Query.pat_matches schema pat cls
         then Some (Value.Int k, [ (cls, oid) ])
         else None)
  |> List.sort_uniq compare

let check_ch_query ~schema ~entries ~idx ~slack q =
  let want = ch_oracle schema entries q in
  let f = Exec.forward idx q in
  let p = Exec.parallel idx q in
  if canon f <> want then
    Alcotest.failf "forward disagrees with oracle on %s (%d vs %d bindings)"
      (pp_query schema q)
      (List.length (canon f))
      (List.length want);
  if canon p <> want then
    Alcotest.failf "parallel disagrees with oracle on %s (%d vs %d bindings)"
      (pp_query schema q)
      (List.length (canon p))
      (List.length want);
  (* the parallel algorithm's whole point: skipping never costs more
     pages than scanning, up to the descent overhead of re-seeks
     (internal pages the forward scan's single bracket never touches) *)
  if p.Exec.page_reads > f.Exec.page_reads + slack f.Exec.page_reads then
    Alcotest.failf "parallel read %d pages, forward %d, on %s"
      p.Exec.page_reads f.Exec.page_reads (pp_query schema q)

let exp2_datasets =
  lazy
    [
      Dg.exp2
        { n_objects = 2000; n_classes = 8; distinct_keys = 50;
          page_size = 256; seed = 7 };
      Dg.exp2
        { n_objects = 2000; n_classes = 40; distinct_keys = 400;
          page_size = 256; seed = 11 };
    ]

let test_exp2_differential () =
  let total = ref 0 in
  List.iter
    (fun (d : Dg.exp2) ->
      let rng = Rng.create (1000 + d.cfg.seed) in
      let height = Btree.height (Index.tree d.uindex) in
      let slack f_reads = height + (f_reads / 4) in
      for _ = 1 to 500 do
        incr total;
        let q =
          gen_ch_query rng ~classes:d.classes
            ~distinct_keys:d.cfg.distinct_keys
        in
        check_ch_query ~schema:d.schema ~entries:d.entries ~idx:d.uindex
          ~slack q
      done)
    (Lazy.force exp2_datasets);
  Alcotest.(check int) "1000 generated queries" 1000 !total

(* same differential, but the schema, data and index are themselves
   random per case *)
let prop_random_schema_differential =
  QCheck.Test.make ~count:60 ~name:"random schema: parallel = forward = oracle"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n_classes = 2 + Rng.int rng 11 in
      let schema, root, classes = Dg.hierarchy ~n_classes in
      let enc = Encoding.assign schema in
      let pager = Storage.Pager.create ~page_size:256 () in
      let idx = Index.create_class_hierarchy pager enc ~root ~attr:"k" in
      let distinct_keys = 5 + Rng.int rng 40 in
      let n = 50 + Rng.int rng 250 in
      let entries =
        Array.init n (fun i ->
            (Rng.int rng distinct_keys, Rng.pick rng classes, i + 1))
      in
      Array.iter
        (fun (k, cls, oid) ->
          Index.insert_entry idx ~value:(Value.Int k) [ (cls, oid) ])
        entries;
      let height = Btree.height (Index.tree idx) in
      for _ = 1 to 8 do
        let q = gen_ch_query rng ~classes ~distinct_keys in
        check_ch_query ~schema ~entries ~idx
          ~slack:(fun f -> height + (f / 4))
          q
      done;
      true)

(* --- path-query differential ----------------------------------------------- *)

(* the oracle walks Vehicle -> manufactured_by -> president -> age through
   the object store, no index involved *)
let path_oracle (e : Dg.exp1) (q : Query.t) =
  let b = e.ext.b in
  let emp_pat, comp_pat, veh_pat =
    match q.Query.comps with
    | [ a; b; c ] -> (a.Query.pat, b.Query.pat, c.Query.pat)
    | _ -> assert false
  in
  let matches pat oid =
    Query.pat_matches b.schema pat (Store.class_of e.store oid)
  in
  Store.extent e.store ~deep:true b.vehicle
  |> List.concat_map (fun v ->
         if not (matches veh_pat v) then []
         else
           Store.follow e.store v "manufactured_by"
           |> List.concat_map (fun c ->
                  if not (matches comp_pat c) then []
                  else
                    Store.follow e.store c "president"
                    |> List.filter_map (fun emp ->
                           if not (matches emp_pat emp) then None
                           else
                             match Store.attr e.store emp "age" with
                             | Value.Int _ as age
                               when Query.value_matches q.Query.value age ->
                                 Some
                                   ( age,
                                     [
                                       (Store.class_of e.store emp, emp);
                                       (Store.class_of e.store c, c);
                                       (Store.class_of e.store v, v);
                                     ] )
                             | _ -> None)))
  |> List.sort_uniq compare

let test_path_differential () =
  let e = Dg.exp1 ~n_vehicles:400 ~n_companies:40 ~n_employees:60 ~seed:5 () in
  let b = e.ext.b in
  let rng = Rng.create 99 in
  let vehicle_pats =
    [|
      Query.P_subtree b.vehicle;
      Query.P_subtree b.automobile;
      Query.P_subtree b.truck;
      Query.P_class b.compact;
      Query.P_union [ P_subtree b.automobile; P_subtree b.truck ];
    |]
  in
  let company_pats =
    [|
      Query.P_subtree b.company;
      Query.P_subtree b.auto_company;
      Query.P_class b.japanese_auto_company;
    |]
  in
  let height = Btree.height (Index.tree e.path_age) in
  for _ = 1 to 200 do
    let value =
      match Rng.int rng 4 with
      | 0 -> Query.V_any
      | 1 ->
          let lo = 20 + Rng.int rng 40 in
          Query.V_range (Some (Value.Int lo), Some (Value.Int (lo + Rng.int rng 15)))
      | _ -> Query.V_eq (Value.Int (20 + Rng.int rng 50))
    in
    let q =
      Query.path ~value
        [
          Query.comp (Query.P_subtree b.employee);
          Query.comp (Rng.pick rng company_pats);
          Query.comp (Rng.pick rng vehicle_pats);
        ]
    in
    let want = path_oracle e q in
    let f = Exec.forward e.path_age q in
    let p = Exec.parallel e.path_age q in
    if canon f <> want then
      Alcotest.failf "forward disagrees with store walk on %s (%d vs %d)"
        (pp_query b.schema q)
        (List.length (canon f))
        (List.length want);
    if canon p <> want then
      Alcotest.failf "parallel disagrees with store walk on %s (%d vs %d)"
        (pp_query b.schema q)
        (List.length (canon p))
        (List.length want);
    if p.Exec.page_reads > f.Exec.page_reads + height + (f.Exec.page_reads / 4)
    then
      Alcotest.failf "parallel read %d pages, forward %d, on %s"
        p.Exec.page_reads f.Exec.page_reads (pp_query b.schema q)
  done

(* --- cached differential --------------------------------------------------- *)

(* the same 1,000-query class-hierarchy differential, but against a warm
   shared buffer pool (kept deliberately smaller than the index so
   evictions happen).  The pool must be invisible twice over: identical
   bindings, and exact accounting — every raw fetch below the per-query
   cache is either a pager read or a pool hit, so
   [cached.page_reads + cached.pool_hits = uncached.page_reads]. *)
let test_exp2_cached_differential () =
  let total = ref 0 in
  List.iter
    (fun (d : Dg.exp2) ->
      let rng = Rng.create (2000 + d.cfg.seed) in
      let tree = Index.tree d.uindex in
      Index.set_cache_pages d.uindex 32;
      let pool = Index.pool d.uindex in
      for _ = 1 to 500 do
        incr total;
        let q =
          gen_ch_query rng ~classes:d.classes
            ~distinct_keys:d.cfg.distinct_keys
        in
        (* uncached twin: detach the pool, keep it warm for the next run *)
        Btree.set_pool tree None;
        let u_f = Exec.forward d.uindex q and u_p = Exec.parallel d.uindex q in
        Btree.set_pool tree pool;
        let c_f = Exec.forward d.uindex q and c_p = Exec.parallel d.uindex q in
        if canon c_f <> canon u_f then
          Alcotest.failf "cached forward diverges on %s" (pp_query d.schema q);
        if canon c_p <> canon u_p then
          Alcotest.failf "cached parallel diverges on %s" (pp_query d.schema q);
        List.iter
          (fun (algo, (c : Exec.outcome), (u : Exec.outcome)) ->
            if c.Exec.page_reads + c.Exec.pool_hits <> u.Exec.page_reads then
              Alcotest.failf
                "%s accounting leak on %s: %d reads + %d hits <> %d uncached"
                algo (pp_query d.schema q) c.Exec.page_reads c.Exec.pool_hits
                u.Exec.page_reads)
          [ ("forward", c_f, u_f); ("parallel", c_p, u_p) ]
      done;
      Index.set_cache_pages d.uindex 0)
    (Lazy.force exp2_datasets);
  Alcotest.(check int) "1000 cached queries" 1000 !total

let dump_tree t =
  let acc = ref [] in
  Btree.iter t (fun e -> acc := (e.Btree.key, e.Btree.value ()) :: !acc);
  List.rev !acc

(* mutations under a live pool: a pooled tree and a plain twin receive
   the same interleaved insert/delete stream; write-through and
   invalidate-on-free must keep every pool-served lookup and sweep
   byte-identical to the twin *)
let test_cached_mutation_differential () =
  let rng = Rng.create 4242 in
  let p_plain = Storage.Pager.create ~page_size:256 () in
  let p_pooled = Storage.Pager.create ~page_size:256 () in
  let plain = Btree.create p_plain in
  let pool = Storage.Buffer_pool.create ~capacity:16 p_pooled in
  let pooled = Btree.create ~pool p_pooled in
  let key i = Printf.sprintf "k%05d" i in
  let live = Hashtbl.create 64 in
  for round = 1 to 40 do
    for _ = 1 to 25 do
      let i = Rng.int rng 500 in
      if Rng.int rng 3 = 0 && Hashtbl.mem live i then begin
        ignore (Btree.delete plain (key i));
        ignore (Btree.delete pooled (key i));
        Hashtbl.remove live i
      end
      else begin
        let v = Printf.sprintf "v%d.%d" round i in
        Btree.insert plain ~key:(key i) ~value:v;
        Btree.insert pooled ~key:(key i) ~value:v;
        Hashtbl.replace live i v
      end
    done;
    (* point reads through the (warm) pool against the plain twin *)
    for _ = 1 to 20 do
      let i = Rng.int rng 500 in
      let want = Btree.find plain (key i) in
      let got = Btree.find pooled (key i) in
      if got <> want then
        Alcotest.failf "round %d: stale pool read for %s" round (key i)
    done
  done;
  Alcotest.(check bool) "full sweep identical" true
    (dump_tree plain = dump_tree pooled);
  Alcotest.(check bool) "pool was exercised" true
    (Storage.Buffer_pool.hits pool > 0);
  Btree.check pooled

let with_temp_pages name f =
  let path = Filename.temp_file name ".pages" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Storage.Pager.journal_path path ])
    (fun () -> f path)

(* crash mid-commit, recover, reopen: a fresh pool on the recovered file
   must serve exactly what an uncached reopen serves — pools are
   per-pager-instance, so recovery coherence is structural, and this
   pins it *)
let test_cached_recovery_differential () =
  with_temp_pages "uindex_cached_recover" (fun path ->
      let pager = Storage.Pager.create_file ~page_size:256 path in
      let t = Btree.create pager in
      for i = 0 to 199 do
        Btree.insert t ~key:(Printf.sprintf "k%04d" i)
          ~value:(string_of_int i)
      done;
      Storage.Pager.set_meta pager (string_of_int (Btree.root t));
      Storage.Pager.sync pager;
      (* mutate, then crash partway through the second commit *)
      let w0 = Storage.Pager.physical_writes pager in
      let pager =
        Storage.Pager.create_faulty
          { Storage.Pager.no_faults with fail_write = Some (w0 + 5); torn = true }
          pager
      in
      for i = 200 to 259 do
        Btree.insert t ~key:(Printf.sprintf "k%04d" i)
          ~value:(string_of_int i)
      done;
      ignore (Btree.delete t "k0000");
      Storage.Pager.set_meta pager (string_of_int (Btree.root t));
      (match Storage.Pager.sync pager with
      | () -> Alcotest.fail "expected injected fault"
      | exception Storage.Pager.Fault _ -> ());
      (try Storage.Pager.close pager with Storage.Pager.Fault _ -> ());
      ignore (Storage.Pager.recover path);
      (* two independent reopens of the recovered file *)
      let reopen ~pooled =
        let p = Storage.Pager.open_file ~page_size:256 path in
        let root = int_of_string (Storage.Pager.meta p) in
        match pooled with
        | false -> Btree.attach p ~root
        | true ->
            Btree.attach ~pool:(Storage.Buffer_pool.create ~capacity:8 p) p
              ~root
      in
      let plain = reopen ~pooled:false in
      let pooled = reopen ~pooled:true in
      let want = dump_tree plain in
      Alcotest.(check bool) "cold pooled reopen identical" true
        (dump_tree pooled = want);
      (* second sweep runs against a warm pool *)
      Alcotest.(check bool) "warm pooled sweep identical" true
        (dump_tree pooled = want);
      Btree.check pooled)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_random_schema_differential ]

let () =
  Alcotest.run "differential"
    [
      ( "class-hierarchy",
        [ Alcotest.test_case "1000 queries vs oracle" `Quick test_exp2_differential ] );
      ( "path",
        [ Alcotest.test_case "200 queries vs store walk" `Quick test_path_differential ] );
      ( "cached",
        [
          Alcotest.test_case "1000 queries cached = uncached" `Quick
            test_exp2_cached_differential;
          Alcotest.test_case "interleaved insert/delete under pool" `Quick
            test_cached_mutation_differential;
          Alcotest.test_case "crash recovery with fresh pool" `Quick
            test_cached_recovery_differential;
        ] );
      ("random-schema", qsuite);
    ]
