(* Crash-recovery property tests.

   Each case derives a workload (random inserts/deletes with periodic
   commits) and a fault schedule from one seed, runs it twice — once clean
   to learn how many physical writes the workload performs, once with a
   write fault injected somewhere in that range — then reopens the file
   and checks the recovered tree.

   Because file-backed writes are buffered until {!Storage.Pager.sync},
   the injected fault always fires inside a sync, and a sync is atomic:
   either the journal committed (the crash hit the checkpoint phase, and
   recovery replays it) or it did not (the torn journal is discarded and
   the file still holds the previous commit).  The recovered contents must
   therefore equal EXACTLY one of two model snapshots: the last
   acknowledged commit, or the commit that was in flight when the fault
   hit.  Nothing in between, nothing lost, nothing invented. *)

module Pager = Storage.Pager
module Rng = Workload.Rng
module Smap = Map.Make (String)

type op = Insert of string * string | Delete of string

let gen_workload rng =
  let n_ops = 40 + Rng.int rng 80 in
  let key () = Printf.sprintf "k%04d" (Rng.int rng 300) in
  List.init n_ops (fun i ->
      if Rng.int rng 5 = 0 then Delete (key ())
      else Insert (key (), Printf.sprintf "v%d_%d" i (Rng.int rng 1000)))

(* Runs the workload; commits every [sync_every] ops and once at the end.
   Returns the crash outcome, the model at the last acknowledged commit,
   and the model of the commit that was being attempted when the fault
   fired (equal to the former when no sync was in flight). *)
let run_workload ~path ~ops ~sync_every ~fault =
  let pager = Pager.create_file ~page_size:256 path in
  let t = Btree.create pager in
  (* commit the empty tree first so the header metadata always names a
     valid root, whatever happens later; faults arm only after it, so a
     schedule can never hit this setup commit *)
  Btree.sync t;
  let setup_writes = Pager.physical_writes pager in
  (match fault with Some spec -> ignore (Pager.create_faulty spec pager) | None -> ());
  let model = ref Smap.empty in
  let last_synced = ref Smap.empty in
  let attempted = ref Smap.empty in
  let commit () =
    attempted := !model;
    Btree.sync t;
    last_synced := !model
  in
  let outcome =
    match
      List.iteri
        (fun i op ->
          (match op with
          | Insert (k, v) ->
              Btree.insert t ~key:k ~value:v;
              model := Smap.add k v !model
          | Delete k ->
              ignore (Btree.delete t k);
              model := Smap.remove k !model);
          if (i + 1) mod sync_every = 0 then commit ())
        ops;
      commit ();
      Pager.close pager
    with
    | () -> `Completed
    | exception Pager.Fault _ ->
        (* a crashed process just dies; close only releases the fd *)
        (try Pager.close pager with Pager.Fault _ -> ());
        `Crashed
  in
  (outcome, !last_synced, !attempted, setup_writes, Pager.physical_writes pager)

let tree_contents t =
  let out = ref Smap.empty in
  Btree.iter t (fun e -> out := Smap.add e.Btree.key (e.value ()) !out);
  !out

let with_temp_pages f =
  let path = Filename.temp_file "uindex_recovery" ".pages" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Pager.journal_path path ])
    (fun () -> f path)

let prop_crash_recovery =
  QCheck.Test.make ~count:500 ~name:"crash mid-commit loses nothing acknowledged"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let ops = gen_workload rng in
      let sync_every = 8 + Rng.int rng 16 in
      let torn = Rng.int rng 2 = 0 in
      (* clean run: learn the workload's physical write count *)
      let setup_writes, total_writes =
        with_temp_pages (fun path ->
            match run_workload ~path ~ops ~sync_every ~fault:None with
            | `Completed, _, _, w0, w -> (w0, w)
            | `Crashed, _, _, _, _ -> QCheck.Test.fail_report "clean run crashed")
      in
      if total_writes <= setup_writes then
        QCheck.Test.fail_report "workload wrote nothing";
      let fail_at =
        setup_writes + 1 + Rng.int rng (total_writes - setup_writes)
      in
      let fault =
        { Pager.no_faults with fail_write = Some fail_at; torn }
      in
      with_temp_pages (fun path ->
          let outcome, last_synced, attempted, _, _ =
            run_workload ~path ~ops ~sync_every ~fault:(Some fault)
          in
          if outcome <> `Crashed then
            QCheck.Test.fail_reportf "fault at write %d/%d never fired"
              fail_at total_writes;
          (* recovery: open_file replays or discards the journal *)
          let pager = Pager.open_file path in
          let t = Btree.reattach pager in
          let report = Btree.check_invariants t in
          let got = tree_contents t in
          Pager.close pager;
          if Sys.file_exists (Pager.journal_path path) then
            QCheck.Test.fail_report "journal survived recovery";
          if report.Btree.entries <> Smap.cardinal got then
            QCheck.Test.fail_report "invariant report disagrees with contents";
          if not (Smap.equal String.equal got last_synced) then
            if not (Smap.equal String.equal got attempted) then
              QCheck.Test.fail_reportf
                "recovered %d entries: neither the last commit (%d) nor the \
                 one in flight (%d)"
                (Smap.cardinal got)
                (Smap.cardinal last_synced)
                (Smap.cardinal attempted);
          true))

(* A pager crash must also never corrupt free-list state: crash during a
   commit that frees pages, recover, and allocation still works with no
   page handed out twice. *)
let prop_crash_free_list =
  QCheck.Test.make ~count:100 ~name:"free list survives a crash"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      with_temp_pages (fun path ->
          let run fault =
            let p = Pager.create_file ~page_size:128 path in
            let ids = Array.init 12 (fun _ -> Pager.alloc p) in
            Array.iteri
              (fun i id -> Pager.write p id (Bytes.make 128 (Char.chr (65 + i))))
              ids;
            Pager.sync p;
            (match fault with
            | Some spec -> ignore (Pager.create_faulty spec p)
            | None -> ());
            (try
               for i = 0 to 11 do
                 if i mod 3 = seed mod 3 then Pager.free p ids.(i)
               done;
               Pager.sync p
             with Pager.Fault _ -> ());
            (try Pager.close p with Pager.Fault _ -> ());
            Pager.physical_writes p
          in
          let w = run None in
          Sys.remove path;
          let fail_at = 1 + Rng.int rng w in
          ignore (run (Some { Pager.no_faults with fail_write = Some fail_at;
                              torn = Rng.int rng 2 = 0 }));
          let p = Pager.open_file path in
          (* every live page is readable and every alloc yields a fresh id *)
          let live = ref [] in
          for id = 0 to 11 do
            match Pager.read p id with
            | _ -> live := id :: !live
            | exception Invalid_argument _ -> ()
          done;
          let fresh = List.init 6 (fun _ -> Pager.alloc p) in
          let all = fresh @ !live in
          let ok =
            List.length (List.sort_uniq compare all) = List.length all
          in
          Pager.close p;
          ok))

(* --- group-commit crash schedules -------------------------------------- *)

module Dg = Workload.Datagen
module Index = Uindex.Index
module Db = Uindex.Db
module Value = Objstore.Value

(* A schedule is a list of steps; each step applies a few mutations and
   commits them — mostly [`Async] (acknowledged, not yet flushed), with
   occasional synchronous durability points.  Because async commits
   write nothing physical, every buffered group reaches disk in ONE
   atomic pager sync, so a crash anywhere in the write sequence must
   recover to a whole-group boundary: everything up to the last
   acknowledged durability point, or everything the in-flight flush
   covered.  The states of individual async commits inside a group are
   NOT legal recovery outcomes — that is the boundary property this
   checks, at every physical write offset the workload has. *)

type gc_step = { g_ops : int; g_sync : bool }

let gen_schedule rng =
  let n = 6 + Rng.int rng 10 in
  List.init n (fun _ ->
      { g_ops = 1 + Rng.int rng 4; g_sync = Rng.int rng 3 = 0 })

let index_contents idx =
  let out = ref Smap.empty in
  Btree.iter (Index.tree idx) (fun e ->
      out := Smap.add e.Btree.key (e.value ()) !out);
  !out

let run_gc_workload ~path ~seed ~plan ~fault =
  let e = Dg.exp1 ~n_vehicles:40 ~n_companies:10 ~n_employees:5 ~seed () in
  let b = e.ext.b in
  let pager = Pager.create_file ~page_size:512 path in
  let idx =
    Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
  in
  let db = Db.create e.store in
  Db.add_index db idx;
  Db.sync db;
  let setup_writes = Pager.physical_writes pager in
  (match fault with
  | Some spec -> ignore (Pager.create_faulty spec pager)
  | None -> ());
  let durable_model = ref (index_contents idx) in
  let attempted = ref !durable_model in
  let rng = Rng.create (seed + 7919) in
  let oids = ref [] in
  let counter = ref 0 in
  let apply_op () =
    incr counter;
    match !oids with
    | o :: rest when Rng.int rng 6 = 0 ->
        oids := rest;
        Db.delete db o
    | _ ->
        let oid =
          Db.insert db ~cls:b.vehicle
            [ ("color", Value.Str (Printf.sprintf "gc-%04d" !counter)) ]
        in
        oids := oid :: !oids
  in
  let outcome =
    match
      List.iter
        (fun step ->
          for _ = 1 to step.g_ops do
            apply_op ()
          done;
          if step.g_sync then begin
            (* the flush this commit leads covers every async commit
               submitted since the previous durability point *)
            attempted := index_contents idx;
            let lsn = Db.commit db in
            if Db.durable_lsn db < lsn then
              failwith "sync commit returned before its LSN was durable";
            durable_model := !attempted
          end
          else begin
            let lsn = Db.commit ~mode:`Async db in
            ignore (lsn : int)
          end)
        plan;
      attempted := index_contents idx;
      Db.sync db;
      durable_model := !attempted;
      Pager.close pager
    with
    | () -> `Completed
    | exception Pager.Fault _ ->
        (try Pager.close pager with Pager.Fault _ -> ());
        `Crashed
  in
  ( outcome,
    !durable_model,
    !attempted,
    setup_writes,
    Pager.physical_writes pager )

let prop_group_commit_crash =
  QCheck.Test.make ~count:500
    ~name:"group commit crash recovers a whole-group boundary"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let plan = gen_schedule rng in
      let torn = Rng.int rng 2 = 0 in
      let setup_writes, total_writes =
        with_temp_pages (fun path ->
            match run_gc_workload ~path ~seed ~plan ~fault:None with
            | `Completed, _, _, w0, w -> (w0, w)
            | `Crashed, _, _, _, _ ->
                QCheck.Test.fail_report "clean run crashed")
      in
      if total_writes <= setup_writes then
        QCheck.Test.fail_report "schedule flushed nothing";
      let fail_at =
        setup_writes + 1 + Rng.int rng (total_writes - setup_writes)
      in
      let fault = { Pager.no_faults with fail_write = Some fail_at; torn } in
      with_temp_pages (fun path ->
          let outcome, durable_model, attempted, _, _ =
            run_gc_workload ~path ~seed ~plan ~fault:(Some fault)
          in
          if outcome <> `Crashed then
            QCheck.Test.fail_reportf "fault at write %d/%d never fired"
              fail_at total_writes;
          let pager = Pager.open_file path in
          let t = Btree.reattach pager in
          let report = Btree.check_invariants t in
          let got = tree_contents t in
          Pager.close pager;
          if report.Btree.entries <> Smap.cardinal got then
            QCheck.Test.fail_report "invariant report disagrees with contents";
          (* the recovered state must be exactly a group boundary — the
             acknowledged watermark state, or the whole in-flight group
             (which supersedes it, including its deletes).  Anything
             else either lost an acknowledged commit or leaked a partial
             group. *)
          if not (Smap.equal String.equal got durable_model) then
            if not (Smap.equal String.equal got attempted) then
              QCheck.Test.fail_reportf
                "recovered %d entries: neither the watermark state (%d) \
                 nor the in-flight group (%d) — a partial group leaked"
                (Smap.cardinal got)
                (Smap.cardinal durable_model)
                (Smap.cardinal attempted);
          true))

(* recover_status distinguishes the three outcomes the CLI's exit codes
   report: no journal, a committed journal replayed, a torn journal
   discarded. *)

let status_t =
  Alcotest.testable
    (fun ppf s ->
      Format.pp_print_string ppf
        (match s with
        | Pager.No_journal -> "No_journal"
        | Pager.Replayed -> "Replayed"
        | Pager.Discarded_torn -> "Discarded_torn"))
    ( = )

let test_status_no_journal () =
  with_temp_pages (fun path ->
      let p = Pager.create_file ~page_size:256 path in
      let id = Pager.alloc p in
      Pager.write p id (Bytes.make 256 'a');
      Pager.sync p;
      Pager.close p;
      Alcotest.check status_t "clean file" Pager.No_journal
        (Pager.recover_status path))

let test_status_discarded_torn () =
  with_temp_pages (fun path ->
      let p = Pager.create_file ~page_size:256 path in
      let id = Pager.alloc p in
      Pager.write p id (Bytes.make 256 'a');
      Pager.sync p;
      Pager.close p;
      (* a torn journal: right magic, never reached the commit marker *)
      let oc = open_out_bin (Pager.journal_path path) in
      output_string oc "UJRNL1\n\000half-written garbage";
      close_out oc;
      Alcotest.check status_t "torn journal" Pager.Discarded_torn
        (Pager.recover_status path);
      Alcotest.(check bool) "journal removed" false
        (Sys.file_exists (Pager.journal_path path));
      (* the pre-transaction state is intact *)
      let p = Pager.open_file path in
      Alcotest.(check char) "old content" 'a' (Bytes.get (Pager.read p id) 0);
      Pager.close p)

let test_status_replayed () =
  with_temp_pages (fun path ->
      (* crash on the very last physical write of a commit: the journal
         is fully durable, only the checkpoint is incomplete *)
      let build fault =
        let p = Pager.create_file ~page_size:256 path in
        let id = Pager.alloc p in
        Pager.write p id (Bytes.make 256 'a');
        Pager.sync p;
        (match fault with
        | Some s -> ignore (Pager.create_faulty s p)
        | None -> ());
        (try
           Pager.write p id (Bytes.make 256 'b');
           Pager.sync p
         with Pager.Fault _ -> ());
        (try Pager.close p with Pager.Fault _ -> ());
        Pager.physical_writes p
      in
      let w = build None in
      Sys.remove path;
      ignore (build (Some { Pager.no_faults with fail_write = Some w }));
      Alcotest.check status_t "committed journal" Pager.Replayed
        (Pager.recover_status path);
      (* replay restored the in-flight commit *)
      let p = Pager.open_file path in
      Alcotest.(check char) "new content" 'b' (Bytes.get (Pager.read p 0) 0);
      Pager.close p)

let status_suite =
  [
    Alcotest.test_case "no journal" `Quick test_status_no_journal;
    Alcotest.test_case "torn journal discarded" `Quick
      test_status_discarded_torn;
    Alcotest.test_case "committed journal replayed" `Quick
      test_status_replayed;
  ]

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_crash_recovery; prop_crash_free_list; prop_group_commit_crash ]

let () =
  Alcotest.run "recovery"
    [ ("crash", qsuite); ("recover_status", status_suite) ]
