(* Tests for Section 4.1: schema relations (SUP/REF) stored in the same
   kind of index, clustered by code. *)

module Ps = Workload.Paper_schema
module Schema = Oodb_schema.Schema
module Encoding = Oodb_schema.Encoding
module Si = Uindex.Schema_index

let setup () =
  let b = Ps.base () in
  let si = Si.create (Storage.Pager.create ()) b.enc in
  Si.build si;
  (b, si)

let sorted = List.sort compare

let test_subtree () =
  let b, si = setup () in
  let got, reads = Si.subtree si b.vehicle in
  Alcotest.(check (list int)) "vehicle subtree"
    (Schema.subtree b.schema b.vehicle)
    got;
  Alcotest.(check bool) "read something" true (reads > 0);
  let got, _ = Si.subtree si b.company in
  Alcotest.(check (list int)) "company subtree"
    (Schema.subtree b.schema b.company)
    got

let test_children_parent () =
  let b, si = setup () in
  let got, _ = Si.children si b.vehicle in
  Alcotest.(check (list int)) "children" (Schema.children b.schema b.vehicle)
    got;
  Alcotest.(check bool) "parent of compact" true
    (fst (Si.parent si b.compact) = Some b.automobile);
  Alcotest.(check bool) "root has no parent" true (fst (Si.parent si b.vehicle) = None)

let test_refs () =
  let b, si = setup () in
  let from, _ = Si.refs_from si b.vehicle in
  Alcotest.(check (list (pair string int)))
    "vehicle refs"
    [ ("manufactured_by", b.company) ]
    from;
  let target, _ = Si.refs_to si b.company in
  Alcotest.(check (list (pair string int)))
    "who points at company"
    (sorted
       [ ("manufactured_by", b.vehicle); ("belongs_to", b.division) ])
    (sorted target);
  let target, _ = Si.refs_to si b.employee in
  Alcotest.(check (list (pair string int)))
    "who points at employee"
    [ ("president", b.company) ]
    target

let test_evolution () =
  let b, si = setup () in
  let n0 = Si.entry_count si in
  let sports =
    Schema.add_class b.schema ~parent:b.automobile ~name:"SportsCar"
      ~attrs:[ ("sponsor", Schema.Ref b.company) ]
  in
  Encoding.assign_new_class b.enc sports;
  Si.note_class_added si sports;
  Alcotest.(check bool) "entries grew" true (Si.entry_count si > n0);
  let got, _ = Si.subtree si b.automobile in
  Alcotest.(check (list int)) "subtree includes new class"
    (Schema.subtree b.schema b.automobile)
    got;
  Alcotest.(check bool) "parent link" true
    (fst (Si.parent si sports) = Some b.automobile);
  let target, _ = Si.refs_to si b.company in
  Alcotest.(check bool) "new ref indexed" true
    (List.mem ("sponsor", sports) target)

let test_clustering () =
  (* the whole point: a subtree query's page reads stay near the B-tree
     height even in a larger schema, because the entries are clustered *)
  let s = Schema.create () in
  let root = Schema.add_class s ~name:"R" ~attrs:[] in
  let rec grow parent depth =
    if depth < 6 then
      for i = 0 to 2 do
        let c =
          Schema.add_class s ~parent
            ~name:(Printf.sprintf "C%d_%d_%d" depth i (Schema.class_count s))
            ~attrs:[]
        in
        grow c (depth + 1)
      done
  in
  grow root 0;
  let enc = Encoding.assign s in
  let si = Si.create (Storage.Pager.create ()) enc in
  Si.build si;
  (* a small, deep subtree *)
  let leafish =
    List.find
      (fun c -> List.length (Schema.subtree s c) = 4)
      (Schema.all_classes s)
  in
  let got, reads = Si.subtree si leafish in
  Alcotest.(check int) "small subtree" 4 (List.length got);
  if reads > 6 then
    Alcotest.failf "subtree scan not clustered: %d page reads" reads

let () =
  Alcotest.run "schema_index"
    [
      ( "queries",
        [
          Alcotest.test_case "subtree" `Quick test_subtree;
          Alcotest.test_case "children & parent" `Quick test_children_parent;
          Alcotest.test_case "refs" `Quick test_refs;
          Alcotest.test_case "evolution" `Quick test_evolution;
          Alcotest.test_case "clustering" `Quick test_clustering;
        ] );
    ]
