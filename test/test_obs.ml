(* Unit tests for the observability layer: the JSON codec, the metrics
   registry, and the tracing spans/sinks. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- JSON ---------------------------------------------------------------- *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("yes", Json.Bool true);
      ("n", Json.Int (-42));
      ("f", Json.Float 1.5);
      ("s", Json.Str "a\"b\\c\n\t\xe2\x82\xac");
      ("l", Json.List [ Json.Int 1; Json.Str "two"; Json.List [] ]);
      ("o", Json.Obj [ ("k", Json.Int 7) ]);
    ]

let test_json_roundtrip () =
  let s = Json.to_string sample in
  Alcotest.(check bool) "compact round-trip" true (Json.of_string s = sample);
  let m = Json.to_multiline sample in
  Alcotest.(check bool) "multiline round-trip" true (Json.of_string m = sample);
  Alcotest.(check bool)
    "multiline has one member per line" true
    (List.length (String.split_on_char '\n' (String.trim m)) >= 7)

let test_json_parse () =
  Alcotest.(check bool)
    "unicode escape" true
    (Json.of_string {|"€"|} = Json.Str "\xe2\x82\xac");
  Alcotest.(check bool)
    "numbers" true
    (Json.of_string "[0, -7, 2.5, 1e3]"
    = Json.List [ Json.Int 0; Json.Int (-7); Json.Float 2.5; Json.Float 1000. ]);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | exception Json.Parse_error _ -> ()
      | v ->
          Alcotest.failf "parsed %S to %s" bad (Json.to_string v))
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "" ]

let test_json_accessors () =
  Alcotest.(check (option int)) "member/to_int" (Some 7)
    (Option.bind (Json.member "o" sample) (Json.member "k")
    |> Fun.flip Option.bind Json.to_int);
  Alcotest.(check bool) "missing member" true (Json.member "zzz" sample = None)

(* --- metrics ------------------------------------------------------------- *)

let test_counters_gauges () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r ~subsystem:"t" "events" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter value" 5 (Metrics.value c);
  (* registration is idempotent: same instrument comes back *)
  let c' = Metrics.counter ~registry:r ~subsystem:"t" "events" in
  Metrics.incr c';
  Alcotest.(check int) "same instrument" 6 (Metrics.value c);
  (* but a kind clash is a programming error *)
  (match Metrics.gauge ~registry:r ~subsystem:"t" "events" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash accepted");
  let g = Metrics.gauge ~registry:r ~subsystem:"t" "level" in
  Metrics.set g 3;
  Metrics.set g 9;
  Alcotest.(check int) "gauge last-wins" 9 (Metrics.gauge_value g);
  Alcotest.(check (option int)) "find counter" (Some 6)
    (Metrics.find r "t.events");
  Alcotest.(check (option int)) "find gauge" (Some 9) (Metrics.find r "t.level");
  Alcotest.(check (option int)) "find unknown" None (Metrics.find r "t.nope");
  Metrics.reset r;
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.value c);
  Alcotest.(check int) "reset zeroes gauges" 0 (Metrics.gauge_value g)

let test_histogram () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r ~subsystem:"t" "lat" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 100; -5 ];
  let s = Metrics.summary h in
  Alcotest.(check int) "count" 7 s.Metrics.count;
  Alcotest.(check int) "sum clamps negatives" 110 s.Metrics.sum;
  Alcotest.(check int) "max" 100 s.Metrics.max_value;
  Alcotest.(check bool) "p50 sane" true (s.Metrics.p50 >= 1 && s.Metrics.p50 <= 4);
  Alcotest.(check bool) "p99 capped at max" true (s.Metrics.p99 <= 100);
  let v = Metrics.observe_span h (fun () -> 42) in
  Alcotest.(check int) "observe_span returns" 42 v;
  Alcotest.(check int) "observe_span observed" 8 (Metrics.summary h).Metrics.count

let test_metrics_export () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r ~subsystem:"pager" "reads" in
  Metrics.add c 12;
  let h = Metrics.histogram ~registry:r ~subsystem:"exec" "ns" in
  Metrics.observe h 1000;
  let j = Metrics.to_json r in
  Alcotest.(check (option int)) "counter in json" (Some 12)
    (Option.bind (Json.member "pager.reads" j) Json.to_int);
  Alcotest.(check (option int)) "histogram count in json" (Some 1)
    (Option.bind (Json.member "exec.ns" j) (Json.member "count")
    |> Fun.flip Option.bind Json.to_int);
  (* the table renders every instrument, grouped by subsystem *)
  let table = Format.asprintf "%a" Metrics.pp r in
  List.iter
    (fun needle ->
      if not (contains table needle) then
        Alcotest.failf "missing %S in:\n%s" needle table)
    [ "pager.reads"; "exec.ns"; "[pager]"; "[exec]" ]

(* --- tracing ------------------------------------------------------------- *)

let test_span_tree () =
  let root = Trace.span "query" in
  let a = Trace.span ~fields:[ ("page_reads", 3) ] "descent" in
  let b = Trace.span "descent" in
  Trace.add_field b "page_reads" 4;
  Trace.add_field b "page_reads" 5 (* replace, not append *);
  Trace.add_child root a;
  Trace.add_child root b;
  Alcotest.(check (option int)) "field" (Some 5) (Trace.field b "page_reads");
  Alcotest.(check int) "total over subtree" 8 (Trace.total root "page_reads");
  Alcotest.(check int) "total of absent field" 0 (Trace.total root "zzz");
  let txt = Format.asprintf "%a" Trace.pp root in
  Alcotest.(check bool) "pp mentions fields" true (contains txt "page_reads=5");
  let j = Trace.to_json root in
  match Json.member "children" j with
  | Some (Json.List [ _; _ ]) -> ()
  | _ -> Alcotest.fail "json children"

let test_sinks () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Alcotest.(check bool) "default scope off" true (Trace.scope () = None);
  let sink = Trace.collector () in
  Trace.emit sink (Trace.span "a");
  Trace.emit sink (Trace.span "b");
  Alcotest.(check (list string)) "collected in order" [ "a"; "b" ]
    (List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.collected sink));
  let (), spans =
    Trace.with_collector (fun () ->
        (match Trace.scope () with
        | Some s -> Trace.emit s (Trace.span "inside")
        | None -> Alcotest.fail "collector not installed"))
  in
  Alcotest.(check int) "with_collector captures" 1 (List.length spans);
  Alcotest.(check bool) "global restored" true (Trace.scope () = None)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
          Alcotest.test_case "histograms" `Quick test_histogram;
          Alcotest.test_case "export" `Quick test_metrics_export;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span trees" `Quick test_span_tree;
          Alcotest.test_case "sinks" `Quick test_sinks;
        ] );
    ]
