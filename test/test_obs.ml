(* Unit tests for the observability layer: the JSON codec, the metrics
   registry, and the tracing spans/sinks. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- JSON ---------------------------------------------------------------- *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("yes", Json.Bool true);
      ("n", Json.Int (-42));
      ("f", Json.Float 1.5);
      ("s", Json.Str "a\"b\\c\n\t\xe2\x82\xac");
      ("l", Json.List [ Json.Int 1; Json.Str "two"; Json.List [] ]);
      ("o", Json.Obj [ ("k", Json.Int 7) ]);
    ]

let test_json_roundtrip () =
  let s = Json.to_string sample in
  Alcotest.(check bool) "compact round-trip" true (Json.of_string s = sample);
  let m = Json.to_multiline sample in
  Alcotest.(check bool) "multiline round-trip" true (Json.of_string m = sample);
  Alcotest.(check bool)
    "multiline has one member per line" true
    (List.length (String.split_on_char '\n' (String.trim m)) >= 7)

let test_json_parse () =
  Alcotest.(check bool)
    "unicode escape" true
    (Json.of_string {|"€"|} = Json.Str "\xe2\x82\xac");
  Alcotest.(check bool)
    "numbers" true
    (Json.of_string "[0, -7, 2.5, 1e3]"
    = Json.List [ Json.Int 0; Json.Int (-7); Json.Float 2.5; Json.Float 1000. ]);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | exception Json.Parse_error _ -> ()
      | v ->
          Alcotest.failf "parsed %S to %s" bad (Json.to_string v))
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "" ]

let test_json_accessors () =
  Alcotest.(check (option int)) "member/to_int" (Some 7)
    (Option.bind (Json.member "o" sample) (Json.member "k")
    |> Fun.flip Option.bind Json.to_int);
  Alcotest.(check bool) "missing member" true (Json.member "zzz" sample = None)

(* --- metrics ------------------------------------------------------------- *)

let test_counters_gauges () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r ~subsystem:"t" "events" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter value" 5 (Metrics.value c);
  (* registration is idempotent: same instrument comes back *)
  let c' = Metrics.counter ~registry:r ~subsystem:"t" "events" in
  Metrics.incr c';
  Alcotest.(check int) "same instrument" 6 (Metrics.value c);
  (* but a kind clash is a programming error *)
  (match Metrics.gauge ~registry:r ~subsystem:"t" "events" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash accepted");
  let g = Metrics.gauge ~registry:r ~subsystem:"t" "level" in
  Metrics.set g 3;
  Metrics.set g 9;
  Alcotest.(check int) "gauge last-wins" 9 (Metrics.gauge_value g);
  Alcotest.(check (option int)) "find counter" (Some 6)
    (Metrics.find r "t.events");
  Alcotest.(check (option int)) "find gauge" (Some 9) (Metrics.find r "t.level");
  Alcotest.(check (option int)) "find unknown" None (Metrics.find r "t.nope");
  Metrics.reset r;
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.value c);
  Alcotest.(check int) "reset zeroes gauges" 0 (Metrics.gauge_value g)

let test_histogram () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r ~subsystem:"t" "lat" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 100; -5 ];
  let s = Metrics.summary h in
  Alcotest.(check int) "count" 7 s.Metrics.count;
  Alcotest.(check int) "sum clamps negatives" 110 s.Metrics.sum;
  Alcotest.(check int) "max" 100 s.Metrics.max_value;
  Alcotest.(check bool) "p50 sane" true (s.Metrics.p50 >= 1 && s.Metrics.p50 <= 4);
  Alcotest.(check bool) "p99 capped at max" true (s.Metrics.p99 <= 100);
  let v = Metrics.observe_span h (fun () -> 42) in
  Alcotest.(check int) "observe_span returns" 42 v;
  Alcotest.(check int) "observe_span observed" 8 (Metrics.summary h).Metrics.count

(* Satellite coverage for the summary export: the histogram JSON must
   carry explicit tail members, not just count/sum — [uindex top] and
   the slow-query tooling read "p99" and "max" by name. *)
let test_histogram_tail_export () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r ~subsystem:"t" "ns" in
  for i = 1 to 100 do
    Metrics.observe h i
  done;
  let j =
    match Json.member "t.ns" (Metrics.to_json r) with
    | Some j -> j
    | None -> Alcotest.fail "t.ns missing from export"
  in
  let get k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some v -> v
    | None -> Alcotest.failf "histogram export missing %S" k
  in
  Alcotest.(check int) "max" 100 (get "max");
  Alcotest.(check bool) "p99 near tail" true (get "p99" >= 90);
  Alcotest.(check bool) "p99 <= max" true (get "p99" <= get "max");
  Alcotest.(check bool) "p50 < p99" true (get "p50" < get "p99");
  let table = Format.asprintf "%a" Metrics.pp r in
  List.iter
    (fun needle ->
      if not (contains table needle) then
        Alcotest.failf "missing %S in:\n%s" needle table)
    [ "p99<="; "max=100" ]

let test_counters_json_delta () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r ~subsystem:"t" "events" in
  let g = Metrics.gauge ~registry:r ~subsystem:"t" "depth" in
  let h = Metrics.histogram ~registry:r ~subsystem:"t" "ns" in
  Metrics.add c 3;
  Metrics.set g 9;
  Metrics.observe h 5;
  let before = Metrics.counters_json r in
  (* counters only: gauges and histograms must stay out of the monotone
     subset, else a shrinking queue would read as a regression *)
  Alcotest.(check bool) "gauge excluded" true
    (Json.member "t.depth" before = None);
  Alcotest.(check bool) "histogram excluded" true
    (Json.member "t.ns" before = None);
  Alcotest.(check (option int)) "counter present" (Some 3)
    (Option.bind (Json.member "t.events" before) Json.to_int);
  Metrics.add c 4;
  let c2 = Metrics.counter ~registry:r ~subsystem:"t" "late" in
  Metrics.incr c2;
  let after = Metrics.counters_json r in
  let d = Metrics.delta ~before ~after in
  Alcotest.(check (option int)) "delta" (Some 4) (List.assoc_opt "t.events" d);
  (* a counter born after the snapshot diffs against 0 *)
  Alcotest.(check (option int)) "new counter" (Some 1)
    (List.assoc_opt "t.late" d)

let test_metrics_export () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r ~subsystem:"pager" "reads" in
  Metrics.add c 12;
  let h = Metrics.histogram ~registry:r ~subsystem:"exec" "ns" in
  Metrics.observe h 1000;
  let j = Metrics.to_json r in
  Alcotest.(check (option int)) "counter in json" (Some 12)
    (Option.bind (Json.member "pager.reads" j) Json.to_int);
  Alcotest.(check (option int)) "histogram count in json" (Some 1)
    (Option.bind (Json.member "exec.ns" j) (Json.member "count")
    |> Fun.flip Option.bind Json.to_int);
  (* the table renders every instrument, grouped by subsystem *)
  let table = Format.asprintf "%a" Metrics.pp r in
  List.iter
    (fun needle ->
      if not (contains table needle) then
        Alcotest.failf "missing %S in:\n%s" needle table)
    [ "pager.reads"; "exec.ns"; "[pager]"; "[exec]" ]

(* --- tracing ------------------------------------------------------------- *)

let test_span_tree () =
  let root = Trace.span "query" in
  let a = Trace.span ~fields:[ ("page_reads", 3) ] "descent" in
  let b = Trace.span "descent" in
  Trace.add_field b "page_reads" 4;
  Trace.add_field b "page_reads" 5 (* replace, not append *);
  Trace.add_child root a;
  Trace.add_child root b;
  Alcotest.(check (option int)) "field" (Some 5) (Trace.field b "page_reads");
  Alcotest.(check int) "total over subtree" 8 (Trace.total root "page_reads");
  Alcotest.(check int) "total of absent field" 0 (Trace.total root "zzz");
  let txt = Format.asprintf "%a" Trace.pp root in
  Alcotest.(check bool) "pp mentions fields" true (contains txt "page_reads=5");
  let j = Trace.to_json root in
  match Json.member "children" j with
  | Some (Json.List [ _; _ ]) -> ()
  | _ -> Alcotest.fail "json children"

let test_sinks () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Alcotest.(check bool) "default scope off" true (Trace.scope () = None);
  let sink = Trace.collector () in
  Trace.emit sink (Trace.span "a");
  Trace.emit sink (Trace.span "b");
  Alcotest.(check (list string)) "collected in order" [ "a"; "b" ]
    (List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.collected sink));
  let (), spans =
    Trace.with_collector (fun () ->
        (match Trace.scope () with
        | Some s -> Trace.emit s (Trace.span "inside")
        | None -> Alcotest.fail "collector not installed"))
  in
  Alcotest.(check int) "with_collector captures" 1 (List.length spans);
  Alcotest.(check bool) "global restored" true (Trace.scope () = None)

(* Four domains trace concurrently, each into its own collector: the
   domain-local override means no domain ever sees another's spans. *)
let test_domain_isolated_collectors () =
  let per_domain = 200 in
  let work d () =
    let (), spans =
      Trace.with_collector (fun () ->
          for _i = 1 to per_domain do
            match Trace.scope () with
            | Some sink ->
                Trace.emit sink
                  (Trace.span ~fields:[ ("domain", d) ] (Printf.sprintf "d%d" d))
            | None -> Alcotest.fail "collector not installed"
          done)
    in
    spans
  in
  let domains = List.init 4 (fun d -> Domain.spawn (work d)) in
  List.iteri
    (fun d dom ->
      let spans = Domain.join dom in
      Alcotest.(check int)
        (Printf.sprintf "domain %d span count" d)
        per_domain (List.length spans);
      List.iter
        (fun (s : Trace.span) ->
          if Trace.field s "domain" <> Some d then
            Alcotest.failf "domain %d saw foreign span %s" d s.Trace.name)
        spans)
    domains;
  Alcotest.(check bool) "main domain unaffected" true (Trace.scope () = None)

(* A deliberately shared global collector: emission is a CAS push, so
   four domains hammering one sink must lose nothing. *)
let test_shared_global_collector () =
  let per_domain = 500 in
  let sink = Trace.collector () in
  Fun.protect
    ~finally:(fun () -> Trace.set_global Trace.null)
    (fun () ->
      Trace.set_global sink;
      let work d () =
        for _i = 1 to per_domain do
          match Trace.scope () with
          | Some s -> Trace.emit s (Trace.span ~fields:[ ("d", d) ] "op")
          | None -> Alcotest.fail "global sink not visible"
        done
      in
      let domains = List.init 4 (fun d -> Domain.spawn (work d)) in
      List.iter Domain.join domains;
      let spans = Trace.collected sink in
      Alcotest.(check int) "no lost spans" (4 * per_domain) (List.length spans);
      List.iteri
        (fun d () ->
          Alcotest.(check int)
            (Printf.sprintf "domain %d contribution" d)
            per_domain
            (List.length
               (List.filter
                  (fun s -> Trace.field s "d" = Some d)
                  spans)))
        [ (); (); (); () ])

(* --- ring ---------------------------------------------------------------- *)

let test_ring_eviction () =
  let r = Obs.Ring.create 3 in
  Alcotest.(check int) "capacity" 3 (Obs.Ring.capacity r);
  Alcotest.(check (list int)) "empty" [] (Obs.Ring.to_list r);
  Obs.Ring.add r 1;
  Obs.Ring.add r 2;
  Alcotest.(check (list int)) "newest first" [ 2; 1 ] (Obs.Ring.to_list r);
  Obs.Ring.add r 3;
  Obs.Ring.add r 4;
  (* 1 evicted: the ring keeps the most recent capacity elements *)
  Alcotest.(check (list int)) "evicts oldest" [ 4; 3; 2 ] (Obs.Ring.to_list r);
  Alcotest.(check int) "length" 3 (Obs.Ring.length r);
  Obs.Ring.clear r;
  Alcotest.(check (list int)) "cleared" [] (Obs.Ring.to_list r);
  Obs.Ring.add r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Obs.Ring.to_list r)

let test_ring_edge_caps () =
  (* capacity 0 is the legal "disabled" ring *)
  let z = Obs.Ring.create 0 in
  Obs.Ring.add z 1;
  Obs.Ring.add z 2;
  Alcotest.(check (list int)) "cap 0 drops all" [] (Obs.Ring.to_list z);
  Alcotest.(check int) "cap 0 length" 0 (Obs.Ring.length z);
  (match Obs.Ring.create (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative capacity accepted");
  (* concurrent adds under the mutex keep the count exact *)
  let r = Obs.Ring.create 64 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 100 do
              Obs.Ring.add r ((d * 1000) + i)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "full after concurrent adds" 64 (Obs.Ring.length r)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
          Alcotest.test_case "histograms" `Quick test_histogram;
          Alcotest.test_case "tail export" `Quick test_histogram_tail_export;
          Alcotest.test_case "counters_json delta" `Quick
            test_counters_json_delta;
          Alcotest.test_case "export" `Quick test_metrics_export;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span trees" `Quick test_span_tree;
          Alcotest.test_case "sinks" `Quick test_sinks;
          Alcotest.test_case "domain-isolated collectors" `Quick
            test_domain_isolated_collectors;
          Alcotest.test_case "shared global collector" `Quick
            test_shared_global_collector;
        ] );
      ( "ring",
        [
          Alcotest.test_case "eviction order" `Quick test_ring_eviction;
          Alcotest.test_case "edge capacities" `Quick test_ring_edge_caps;
        ] );
    ]
