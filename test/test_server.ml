(* The socket server under friendly and hostile clients: an in-process
   server over a Unix-domain socket in a temp dir, exercised with good
   queries, malformed frames, oversized lengths, truncated requests,
   mid-request disconnects, overload and shutdown.  The invariant
   throughout: a typed error reply or a clean close — never a crash, and
   never a poisoned worker (proved by serving more good requests than
   there are workers after every abuse). *)

module Dg = Workload.Datagen
module Db = Uindex.Db
module Value = Objstore.Value
module Json = Obs.Json
module Protocol = Uindex_server.Protocol
module Service = Uindex_server.Service
module Server = Uindex_server.Server
module Client = Uindex_server.Client

let with_server ?(workers = 2) ?(backlog = 16) ?(request_timeout = 5.) f =
  let e = Dg.exp1 ~n_vehicles:300 ~seed:3 () in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  Db.attach_index db e.path_age;
  let svc = Service.create ~schema:e.ext.b.schema db in
  let dir = Filename.temp_file "uindex_srv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "srv.sock" in
  let config =
    {
      (Server.default_config (Server.Unix_sock path)) with
      workers;
      backlog;
      request_timeout;
    }
  in
  let server = Server.start svc config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f path server)

let expect_ok path line =
  let c = Client.connect_unix path in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let r = Client.request c line in
      if not (Protocol.response_is_ok r) then
        Alcotest.failf "expected ok for %S, got %s" line (Json.to_string r);
      r)

let expect_error path line kind =
  let c = Client.connect_unix path in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let r = Client.request c line in
      Alcotest.(check (option string))
        (Printf.sprintf "error kind for %S" line)
        (Some kind)
        (Protocol.response_error_kind r))

(* more good requests than workers: if any worker died or is stuck on a
   leftover connection, this hangs or fails *)
let prove_workers_alive ?(n = 5) path =
  for i = 1 to n do
    ignore (expect_ok path (if i mod 2 = 0 then "ping" else "query (Red, Bus*)"))
  done

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let read_reply fd =
  match Protocol.read_frame fd with
  | Protocol.Frame s -> Some (Json.of_string s)
  | Protocol.Eof | Protocol.Truncated | Protocol.Too_large _ -> None

(* --- the tests ----------------------------------------------------------- *)

let test_good_queries () =
  with_server @@ fun path _server ->
  let r = expect_ok path "query (Red, Bus*)" in
  let count = Option.bind (Json.member "count" r) Json.to_int in
  Alcotest.(check bool) "rows answered" true (Option.get count > 0);
  let r' = expect_ok path "query ([50-60], Employee*, Company*, Vehicle*)" in
  Alcotest.(check bool) "path query answered" true
    (Option.get (Option.bind (Json.member "count" r') Json.to_int) > 0);
  (* determinism: same query, byte-identical replies across connections *)
  let c1 = Client.connect_unix path and c2 = Client.connect_unix path in
  let a = Client.request_raw c1 "query (Red, Bus*)" in
  let b = Client.request_raw c2 "query (Red, Bus*)" in
  Client.close c1;
  Client.close c2;
  Alcotest.(check string) "byte-identical replies" a b;
  (* one connection, many requests *)
  let c = Client.connect_unix path in
  for _ = 1 to 5 do
    assert (Protocol.response_is_ok (Client.request c "ping"))
  done;
  Client.close c

let test_bad_requests () =
  with_server @@ fun path _server ->
  expect_error path "" "bad_request";
  expect_error path "bogus" "bad_request";
  expect_error path "query" "bad_request";
  expect_error path "query (((" "parse_error";
  expect_error path "query (Red, NoSuchClass*)" "parse_error";
  (* parse errors keep the connection alive *)
  let c = Client.connect_unix path in
  ignore (Client.request c "nonsense");
  Alcotest.(check bool) "connection survives a bad request" true
    (Protocol.response_is_ok (Client.request c "ping"));
  Client.close c;
  prove_workers_alive path

let test_oversized_frame () =
  with_server @@ fun path _server ->
  let fd = raw_connect path in
  (* a hostile header announcing 256 MiB *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (256 * 1024 * 1024));
  ignore (Unix.write fd hdr 0 4);
  (match read_reply fd with
  | Some r ->
      Alcotest.(check (option string))
        "typed reply" (Some "frame_too_large")
        (Protocol.response_error_kind r)
  | None -> Alcotest.fail "expected a frame_too_large reply");
  (* ... and the server closed the stream afterwards *)
  Alcotest.(check bool) "closed after reply" true (read_reply fd = None);
  Unix.close fd;
  prove_workers_alive path

let test_truncated_frame () =
  with_server @@ fun path _server ->
  (* header promising 100 bytes, then silence and disconnect *)
  let fd = raw_connect path in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 100l;
  ignore (Unix.write fd hdr 0 4);
  ignore (Unix.write fd (Bytes.of_string "only twenty bytes...") 0 20);
  Unix.close fd;
  (* partial header then disconnect *)
  let fd = raw_connect path in
  ignore (Unix.write fd (Bytes.of_string "\x00\x00") 0 2);
  Unix.close fd;
  prove_workers_alive path

let test_mid_request_disconnect () =
  with_server @@ fun path _server ->
  (* full request, but the client vanishes before reading the reply *)
  let fd = raw_connect path in
  Protocol.write_frame fd "query (Red, Vehicle*)";
  Unix.close fd;
  (* instant disconnect, no bytes at all *)
  let fd = raw_connect path in
  Unix.close fd;
  prove_workers_alive path

let test_quit_and_garbage_payload () =
  with_server @@ fun path _server ->
  let c = Client.connect_unix path in
  let r = Client.request c "quit" in
  Alcotest.(check bool) "quit acknowledged" true (Protocol.response_is_ok r);
  (match Client.request c "ping" with
  | exception Client.Error (Client.Closed_by_server | Client.Reset) -> ()
  | _ -> Alcotest.fail "connection should be closed after quit");
  Client.close c;
  (* binary garbage as a request payload is just a bad request *)
  let fd = raw_connect path in
  Protocol.write_frame fd "\x00\xff\x13\x37 binary nonsense \x01";
  (match read_reply fd with
  | Some r ->
      Alcotest.(check (option string))
        "typed reply" (Some "bad_request")
        (Protocol.response_error_kind r)
  | None -> Alcotest.fail "expected a bad_request reply");
  Unix.close fd;
  prove_workers_alive path

let test_overload_shedding () =
  (* one worker occupied by a slow client; the backlog holds one more;
     further connections must get typed overloaded replies *)
  with_server ~workers:1 ~backlog:1 ~request_timeout:5.
  @@ fun path _server ->
  let occupier = raw_connect path in
  (* a connection the single worker pops then blocks on (until its read
     times out or we close); give the worker a moment to pop it *)
  Unix.sleepf 0.3;
  let extras = List.init 6 (fun _ -> raw_connect path) in
  Unix.sleepf 0.3;
  let sheds =
    List.fold_left
      (fun acc fd ->
        match read_reply fd with
        | Some r when Protocol.response_error_kind r = Some "overloaded" ->
            acc + 1
        | Some _ | None -> acc)
      0 extras
  in
  Alcotest.(check bool)
    (Printf.sprintf "some of 6 extras shed as overloaded (%d)" sheds)
    true (sheds >= 1);
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) extras;
  Unix.close occupier;
  prove_workers_alive path

let test_stale_queue_timeout () =
  (* a connection that waited in the queue longer than the request
     timeout gets a typed timeout reply, not silent service *)
  with_server ~workers:1 ~backlog:8 ~request_timeout:0.4
  @@ fun path _server ->
  (* two idle connections ahead of [stale]: the single worker blocks
     ~0.4 s on each before its read times out, so [stale] sits in the
     queue for ~0.8 s — past its own 0.4 s deadline *)
  let occ1 = raw_connect path in
  Unix.sleepf 0.05;
  let occ2 = raw_connect path in
  Unix.sleepf 0.05;
  let stale = raw_connect path in
  let got_timeout =
    match read_reply stale with
    | Some r -> Protocol.response_error_kind r = Some "timeout"
    | None -> false
  in
  Alcotest.(check bool) "stale queued connection got a timeout reply" true
    got_timeout;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ occ1; occ2 ];
  Unix.close stale;
  prove_workers_alive path

let test_stats_response () =
  with_server @@ fun path _server ->
  ignore (expect_ok path "query (Red, Bus*)");
  let r = expect_ok path "stats" in
  (match Json.member "request_latency" r with
  | Some (Json.Obj fields) ->
      List.iter
        (fun k ->
          if not (List.mem_assoc k fields) then
            Alcotest.failf "request_latency missing %s" k)
        [ "count"; "p50"; "p95"; "p99" ]
  | _ -> Alcotest.fail "stats carries request_latency percentiles");
  Alcotest.(check bool) "stats carries the registry" true
    (Json.member "metrics" r <> None)

(* --- telemetry and admin introspection ----------------------------------- *)

(* like [with_server], but with control over telemetry and which indexes
   are attached (the reconciliation test wants exactly one pager serving
   queries); hands back the datagen bundle and the db for direct writes *)
let with_custom_server ?(workers = 2) ?telemetry ?(attach_path = true) f =
  let e = Dg.exp1 ~n_vehicles:300 ~seed:3 () in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  if attach_path then Db.attach_index db e.path_age;
  let svc = Service.create ?telemetry ~schema:e.ext.b.schema db in
  let dir = Filename.temp_file "uindex_tel" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "srv.sock" in
  let config =
    {
      (Server.default_config (Server.Unix_sock path)) with
      workers;
      backlog = 16;
      request_timeout = 5.;
    }
  in
  let server = Server.start svc config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f ~e ~db path)

let member_exn what k j =
  match Json.member k j with
  | Some v -> v
  | None -> Alcotest.failf "%s missing %S" what k

let test_health_response () =
  with_server @@ fun path _server ->
  ignore (expect_ok path "query (Red, Bus*)");
  let r = expect_ok path "health" in
  Alcotest.(check (option int)) "workers gauge" (Some 2)
    (Json.to_int (member_exn "health" "workers" r));
  List.iter
    (fun k -> ignore (member_exn "health" k r))
    [ "uptime_s"; "queue_depth"; "active_sessions"; "tracing" ];
  let acked = Option.get (Json.to_int (member_exn "health" "acked_lsn" r)) in
  let durable =
    Option.get (Json.to_int (member_exn "health" "durable_lsn" r))
  in
  let lag = Option.get (Json.to_int (member_exn "health" "lsn_lag" r)) in
  Alcotest.(check int) "lsn_lag = acked - durable" (acked - durable) lag;
  Alcotest.(check bool) "durability never runs ahead of acks" true (lag >= 0);
  let slow = member_exn "health" "slow_log" r in
  Alcotest.(check (option int)) "default slow capacity" (Some 128)
    (Json.to_int (member_exn "slow_log" "capacity" slow));
  let gc = member_exn "health" "gc" r in
  List.iter
    (fun k ->
      match Json.to_int (member_exn "gc" k gc) with
      | Some n when n >= 0 -> ()
      | _ -> Alcotest.failf "gc.%s not a non-negative int" k)
    [ "minor_collections"; "major_collections"; "heap_words" ]

let test_admin_malformed () =
  with_server @@ fun path _server ->
  List.iter
    (fun line -> expect_error path line "bad_request")
    [
      "stats extra";
      "health 1";
      "slow-queries abc";
      "slow-queries -1";
      "slow-queries 1 2";
      "@zz ping" (* non-hex trace id *);
      "@ ping" (* empty trace id *);
      "@12345678901234567 ping" (* 17 digits: id wider than 64 bits *);
      "@ab12" (* trace id with no request *);
    ];
  (* admin abuse keeps the connection alive, like any bad request *)
  let c = Client.connect_unix path in
  ignore (Client.request c "stats bogus");
  Alcotest.(check bool) "connection survives" true
    (Protocol.response_is_ok (Client.request c "stats"));
  Client.close c;
  prove_workers_alive path

let test_trace_id_echo () =
  with_server @@ fun path _server ->
  (* no client id: no echo — a server-assigned id must stay internal so
     replies stay byte-identical with tracing on or off *)
  let r = expect_ok path "ping" in
  Alcotest.(check bool) "no trace_id unless propagated" true
    (Json.member "trace_id" r = None);
  let r = expect_ok path "@ab12 ping" in
  Alcotest.(check (option string)) "ping echo" (Some "ab12")
    (Option.bind (Json.member "trace_id" r) Json.to_str);
  let r = expect_ok path "@ff query (Red, Bus*)" in
  Alcotest.(check (option string)) "query echo" (Some "ff")
    (Option.bind (Json.member "trace_id" r) Json.to_str);
  Alcotest.(check bool) "traced query still answers" true
    (Option.get (Option.bind (Json.member "count" r) Json.to_int) > 0);
  (* the id is the only difference: stripping it restores byte equality *)
  let c = Client.connect_unix path in
  let plain = Client.request_raw c "query (Red, Bus*)" in
  let traced = Client.request c "@ab12 query (Red, Bus*)" in
  Client.close c;
  let stripped =
    match traced with
    | Json.Obj kvs -> Json.Obj (List.remove_assoc "trace_id" kvs)
    | j -> j
  in
  Alcotest.(check string) "identical sans trace_id" plain
    (Json.to_string stripped)

let test_slow_ring_eviction () =
  (* service-level: threshold 0 admits everything into a 3-slot ring, so
     5 requests must leave exactly the newest 3, newest first *)
  let e = Dg.exp1 ~n_vehicles:300 ~seed:3 () in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  let telemetry =
    {
      Service.tracing = true;
      sample_every = 1;
      slow_threshold_ns = 0;
      slow_capacity = 3;
    }
  in
  let svc = Service.create ~telemetry ~schema:e.ext.b.schema db in
  let lines =
    [
      "query (Red, Bus*)";
      "query (White, Bus*)";
      "query (Red, Vehicle*)";
      "query (White, Vehicle*)";
      "ping";
    ]
  in
  List.iter (fun l -> ignore (Service.serve_line svc l)) lines;
  let j = Service.slow_log_json svc in
  Alcotest.(check (option int)) "count" (Some 3)
    (Json.to_int (member_exn "slow log" "count" j));
  let entries =
    match member_exn "slow log" "entries" j with
    | Json.List l -> l
    | _ -> Alcotest.fail "entries not a list"
  in
  Alcotest.(check (list string)) "newest first, oldest evicted"
    [ "ping"; "query (White, Vehicle*)"; "query (Red, Vehicle*)" ]
    (List.map
       (fun en ->
         Option.get (Json.to_str (member_exn "slow entry" "request" en)))
       entries);
  (* sequence numbers decrease newest-first; durations are measured *)
  let seqs =
    List.map
      (fun en -> Option.get (Json.to_int (member_exn "slow entry" "seq" en)))
      entries
  in
  Alcotest.(check (list int)) "seq strictly decreasing" [ 4; 3; 2 ] seqs;
  List.iter
    (fun en ->
      if Option.get (Json.to_int (member_exn "slow entry" "dur_ns" en)) < 0
      then Alcotest.fail "negative duration";
      ignore (member_exn "slow entry" "span" en)
      (* sampled 1-in-1, so every entry carries its span *))
    entries;
  (* the limit argument truncates from the newest end *)
  (match Json.member "entries" (Service.slow_log_json ~limit:1 svc) with
  | Some (Json.List [ en ]) ->
      Alcotest.(check (option string)) "limit keeps newest" (Some "ping")
        (Json.to_str (member_exn "slow entry" "request" en))
  | _ -> Alcotest.fail "limit 1 should keep exactly one entry");
  (* a capacity-0 ring disables the log entirely *)
  let dark =
    Service.create
      ~telemetry:{ telemetry with Service.slow_capacity = 0 }
      ~schema:e.ext.b.schema db
  in
  ignore (Service.serve_line dark "ping");
  Alcotest.(check (option int)) "capacity 0 admits nothing" (Some 0)
    (Json.to_int (member_exn "slow log" "count" (Service.slow_log_json dark)))

let test_monotone_counters_under_commits () =
  (* two stats scrapes race a committing writer: every counter delta must
     still be >= 0 — a snapshot must never observe a counter mid-rollback
     or torn *)
  with_custom_server @@ fun ~e ~db path ->
  let b = e.Dg.ext.b in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop) do
          ignore
            (Db.insert db ~cls:b.vehicle [ ("color", Value.Str "Teal") ]);
          ignore (Db.commit db);
          incr n
        done;
        !n)
  in
  let c = Client.connect_unix path in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Client.close c)
    (fun () ->
      let counters () = member_exn "stats" "counters" (Client.stats c) in
      let prev = ref (counters ()) in
      for round = 1 to 6 do
        ignore (Client.request c "query (Red, Bus*)");
        Unix.sleepf 0.02;
        let cur = counters () in
        List.iter
          (fun (k, v) ->
            if v < 0 then
              Alcotest.failf "round %d: counter %s went backwards by %d"
                round k (-v))
          (Obs.Metrics.delta ~before:!prev ~after:cur);
        prev := cur
      done);
  let commits = Domain.join writer in
  Alcotest.(check bool)
    (Printf.sprintf "writer interleaved commits (%d)" commits)
    true (commits > 0)

let test_page_read_reconciliation () =
  (* the acceptance invariant: the global pager.reads counter delta
     between two stats scrapes must equal the sum of per-request
     page_reads over the slow-log entries in between — every page read
     the server does (session-pin attach walks included, across both
     attached indexes) is attributed to some request's span *)
  let telemetry =
    {
      Service.tracing = true;
      sample_every = 1;
      slow_threshold_ns = 0;
      slow_capacity = 512;
    }
  in
  with_custom_server ~telemetry @@ fun ~e:_ ~db:_ path ->
  let c = Client.connect_unix path in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let counters r = member_exn "stats" "counters" r in
      let before = counters (Client.stats c) in
      let lines =
        List.concat
          (List.init 10 (fun _ ->
               [
                 "query (Red, Bus*)";
                 "query (White, Vehicle*)";
                 "query (Red, Vehicle*)";
                 "ping";
               ]))
      in
      List.iter
        (fun l ->
          if not (Protocol.response_is_ok (Client.request c l)) then
            Alcotest.failf "request %S failed" l)
        lines;
      let after = counters (Client.stats c) in
      let d = Obs.Metrics.delta ~before ~after in
      let delta k = Option.value ~default:0 (List.assoc_opt k d) in
      Alcotest.(check int) "every query executed" 30 (delta "exec.queries");
      let slow = Client.slow_queries c in
      let entries =
        match member_exn "slow log" "entries" slow with
        | Json.List l -> l
        | _ -> Alcotest.fail "entries not a list"
      in
      (* ring capacity exceeds total traffic, so nothing was evicted:
         the entries are exactly the requests served (scrapes included,
         at zero reads each) *)
      Alcotest.(check int) "nothing evicted" (List.length lines + 2)
        (List.length entries);
      let attributed =
        List.fold_left
          (fun acc en ->
            acc
            + Option.get
                (Json.to_int (member_exn "slow entry" "page_reads" en)))
          0 entries
      in
      Alcotest.(check int) "pager.reads reconciles with per-request spans"
        (delta "pager.reads") attributed)

let test_concurrent_clients () =
  with_server ~workers:4 @@ fun path _server ->
  (* a sequential baseline, then 8 concurrent clients must match it *)
  let lines =
    [
      "query (Red, Bus*)";
      "query (White, Vehicle*)";
      "query ([50-60], Employee*, Company*, Vehicle*)";
    ]
  in
  let baseline =
    let c = Client.connect_unix path in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () -> List.map (Client.request_raw c) lines)
  in
  let clients =
    List.init 8 (fun _ ->
        Domain.spawn (fun () ->
            let c = Client.connect_unix path in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () -> List.map (Client.request_raw c) lines)))
  in
  List.iteri
    (fun i d ->
      let got = Domain.join d in
      List.iter2
        (Alcotest.(check string) (Printf.sprintf "client %d byte-identical" i))
        baseline got)
    clients

let test_graceful_stop () =
  let e = Dg.exp1 ~n_vehicles:200 ~seed:3 () in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  let svc = Service.create ~schema:e.ext.b.schema db in
  let dir = Filename.temp_file "uindex_stop" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "srv.sock" in
  let server =
    Server.start svc (Server.default_config (Server.Unix_sock path))
  in
  let c = Client.connect_unix path in
  assert (Protocol.response_is_ok (Client.request c "ping"));
  Client.close c;
  Server.stop server;
  Server.stop server (* idempotent *);
  Alcotest.(check bool) "socket file unlinked" false (Sys.file_exists path);
  (match Client.connect_unix path with
  | c ->
      Client.close c;
      Alcotest.fail "listener still accepting after stop"
  | exception Client.Error (Client.Connect_failed _) -> ());
  Unix.rmdir dir

(* --- session-leak audit ----------------------------------------------- *)

(* [Db.active_sessions] must return to zero after every error path a
   hostile client or a failing backend can reach: if a worker abandons
   a request without releasing its session, snapshot reclamation stalls
   forever.  Workers may still be finishing an abandoned request when
   the client side returns, so poll briefly before declaring a leak. *)
let assert_sessions_drained label =
  let rec wait tries =
    let n = Uindex.Db.active_sessions () in
    if n = 0 then ()
    else if tries = 0 then Alcotest.failf "%s: %d sessions leaked" label n
    else begin
      Unix.sleepf 0.02;
      wait (tries - 1)
    end
  in
  wait 100

let test_session_leak_audit () =
  with_server @@ fun path _server ->
  Alcotest.(check int) "baseline" 0 (Uindex.Db.active_sessions ());
  ignore (expect_ok path "query (Red, Vehicle*)");
  assert_sessions_drained "good query";
  expect_error path "query (((" "parse_error";
  expect_error path "query (Red, NoSuchClass*)" "parse_error";
  assert_sessions_drained "parse errors";
  (* arity with no matching index: a typed unroutable reply *)
  expect_error path "query ([1-2], Employee*, Vehicle*)" "unroutable";
  assert_sessions_drained "unroutable";
  (* hostile 256 MiB length header *)
  let fd = raw_connect path in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (256 * 1024 * 1024));
  ignore (Unix.write fd hdr 0 4);
  ignore (read_reply fd);
  Unix.close fd;
  assert_sessions_drained "oversized frame";
  (* header promising bytes that never come *)
  let fd = raw_connect path in
  Bytes.set_int32_be hdr 0 100l;
  ignore (Unix.write fd hdr 0 4);
  Unix.close fd;
  assert_sessions_drained "truncated frame";
  (* full request, client gone before the reply is written *)
  let fd = raw_connect path in
  Protocol.write_frame fd "query (White, Vehicle*)";
  Unix.close fd;
  prove_workers_alive path;
  assert_sessions_drained "mid-request disconnect"

let test_session_leak_under_chaos () =
  let module Chaos = Uindex_server.Chaos in
  let e = Dg.exp1 ~n_vehicles:300 ~seed:3 () in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  Db.attach_index db e.path_age;
  let svc = Service.create ~schema:e.ext.b.schema db in
  let dir = Filename.temp_file "uindex_leak" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "srv.sock" in
  let chaos =
    { Chaos.none with Chaos.seed = 11; reset = 0.3; crash = 0.3; truncate = 0.2 }
  in
  let config =
    {
      (Server.default_config (Server.Unix_sock path)) with
      workers = 2;
      request_timeout = 2.;
      chaos = Some (Chaos.arm chaos);
      restart_budget = 1000;
    }
  in
  let server = Server.start svc config in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* hammer the chaotic server; cut connections and crashed workers
         are expected — leaked sessions are not *)
      for i = 0 to 39 do
        let line =
          match i mod 3 with
          | 0 -> "query (Red, Vehicle*)"
          | 1 -> "query ([50-60], Employee*, Company*, Vehicle*)"
          | _ -> "query (White, Bus*)"
        in
        match Client.connect_unix path with
        | exception Client.Error _ -> ()
        | c ->
            (match Client.request c line with
            | (_ : Json.t) -> ()
            | exception Client.Error _ -> ());
            Client.close c
      done;
      assert_sessions_drained "chaos mix")

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "good queries, persistent connections" `Quick
            test_good_queries;
          Alcotest.test_case "bad requests get typed errors" `Quick
            test_bad_requests;
          Alcotest.test_case "oversized frame" `Quick test_oversized_frame;
          Alcotest.test_case "truncated frames" `Quick test_truncated_frame;
          Alcotest.test_case "mid-request disconnect" `Quick
            test_mid_request_disconnect;
          Alcotest.test_case "quit and binary garbage" `Quick
            test_quit_and_garbage_payload;
        ] );
      ( "load",
        [
          Alcotest.test_case "overload shedding" `Quick test_overload_shedding;
          Alcotest.test_case "stale queue timeout" `Quick
            test_stale_queue_timeout;
          Alcotest.test_case "8 concurrent clients = sequential" `Quick
            test_concurrent_clients;
        ] );
      ( "service",
        [
          Alcotest.test_case "stats percentiles" `Quick test_stats_response;
          Alcotest.test_case "graceful stop" `Quick test_graceful_stop;
          Alcotest.test_case "session-leak audit" `Quick
            test_session_leak_audit;
          Alcotest.test_case "session leaks under chaos" `Quick
            test_session_leak_under_chaos;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "health fields" `Quick test_health_response;
          Alcotest.test_case "malformed admin requests" `Quick
            test_admin_malformed;
          Alcotest.test_case "trace id echo" `Quick test_trace_id_echo;
          Alcotest.test_case "slow ring eviction" `Quick
            test_slow_ring_eviction;
          Alcotest.test_case "monotone counters under commits" `Quick
            test_monotone_counters_under_commits;
          Alcotest.test_case "page-read reconciliation" `Quick
            test_page_read_reconciliation;
        ] );
    ]
