(* Differential tests for the bottom-up bulk loader.

   A bulk-loaded tree and an entry-at-a-time tree built from the same
   input are two implementations of the same map; they must agree on
   every observable: the full iteration (keys AND resolved values, so
   overflow chains are exercised), generated point lookups (hits and
   misses), range scans, entry counts — and both must satisfy the
   structural invariants.  Inputs include duplicate keys (later wins),
   empty and singleton streams, overflow-sized values, and a 100k-entry
   build that also checks the bulk path is actually cheaper in page
   writes.  A final case runs the same comparison one level up, through
   [Index.build] vs per-object incremental indexing. *)

module Pager = Storage.Pager
module Rng = Workload.Rng
module Dg = Workload.Datagen
module Index = Uindex.Index
module Query = Uindex.Query
module Exec = Uindex.Exec
module Value = Objstore.Value

let mk_tree ?config ?(page_size = 256) () =
  Btree.create ?config (Pager.create ~page_size ())

let contents t =
  let out = ref [] in
  Btree.iter t (fun e -> out := (e.Btree.key, e.value ()) :: !out);
  List.rev !out

let compare_trees ~queries rng bulk incr =
  let cb = contents bulk and ci = contents incr in
  if cb <> ci then
    QCheck.Test.fail_reportf "iteration differs: %d vs %d entries"
      (List.length cb) (List.length ci);
  let rb = Btree.check_invariants bulk and ri = Btree.check_invariants incr in
  if rb.Btree.entries <> List.length cb then
    QCheck.Test.fail_report "bulk invariant report disagrees with contents";
  if rb.Btree.entries <> ri.Btree.entries then
    QCheck.Test.fail_report "entry counts differ";
  if Btree.length bulk <> Btree.length incr then
    QCheck.Test.fail_report "lengths differ";
  (* generated point lookups: present keys, absent keys *)
  let keys = Array.of_list (List.map fst cb) in
  for _ = 1 to queries do
    let k =
      if Array.length keys > 0 && Rng.int rng 2 = 0 then
        keys.(Rng.int rng (Array.length keys))
      else Printf.sprintf "k%05d" (Rng.int rng 2000)
    in
    if Btree.find bulk k <> Btree.find incr k then
      QCheck.Test.fail_reportf "find %S differs" k
  done;
  (* range scans *)
  let scan t lo hi =
    let out = ref [] in
    Btree.scan_range t
      ~read:(fun id -> Pager.read (Btree.pager t) id)
      ~lo ~hi
      (fun e -> out := (e.Btree.key, e.value ()) :: !out);
    List.rev !out
  in
  for _ = 1 to 40 do
    let a = Printf.sprintf "k%05d" (Rng.int rng 2000)
    and b = Printf.sprintf "k%05d" (Rng.int rng 2000) in
    let lo = min a b and hi = max a b in
    if scan bulk lo hi <> scan incr lo hi then
      QCheck.Test.fail_reportf "scan [%s, %s) differs" lo hi
  done;
  true

(* random input: sorted keys with duplicates, values of wildly varying
   length so some spill to overflow chains *)
let gen_input rng =
  let n = Rng.int rng 600 in
  let keyspace = 1 + Rng.int rng (n + 1) in
  let keys =
    List.init n (fun _ -> Printf.sprintf "k%05d" (Rng.int rng keyspace))
    |> List.sort compare
  in
  List.mapi
    (fun i k ->
      let len =
        match Rng.int rng 10 with
        | 0 -> 0
        | 1 | 2 -> 80 + Rng.int rng 200 (* overflow territory at ps=256 *)
        | _ -> Rng.int rng 20
      in
      (k, String.init len (fun j -> Char.chr (97 + ((i + j) mod 26)))))
    keys

let prop_differential =
  QCheck.Test.make ~count:120 ~name:"bulk-loaded = entry-at-a-time"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let input = gen_input rng in
      let fill = 0.5 +. (float_of_int (Rng.int rng 6) /. 10.) in
      let config =
        if Rng.int rng 3 = 0 then
          Some
            {
              (Btree.default_config ~page_size:256) with
              Btree.max_entries = Some (4 + Rng.int rng 12);
            }
        else None
      in
      let bulk = mk_tree ?config () in
      let incr = mk_tree ?config () in
      Btree.bulk_load ~fill bulk (List.to_seq input);
      List.iter (fun (k, v) -> Btree.insert incr ~key:k ~value:v) input;
      compare_trees ~queries:12 rng bulk incr)

let test_edge_cases () =
  (* empty stream: tree stays empty and valid *)
  let t = mk_tree () in
  Btree.bulk_load t Seq.empty;
  Alcotest.(check bool) "empty tree is empty" true (Btree.is_empty t);
  ignore (Btree.check_invariants t);
  (* loading into a non-empty tree is refused *)
  Btree.insert t ~key:"a" ~value:"1";
  Alcotest.check_raises "non-empty tree refused"
    (Invalid_argument "Btree.bulk_load: tree is not empty") (fun () ->
      Btree.bulk_load t (List.to_seq [ ("b", "2") ]));
  (* singleton *)
  let t = mk_tree () in
  Btree.bulk_load t (List.to_seq [ ("only", "v") ]);
  Alcotest.(check (option string)) "singleton" (Some "v") (Btree.find t "only");
  Alcotest.(check int) "singleton length" 1 (Btree.length t);
  ignore (Btree.check_invariants t);
  (* all-duplicate stream collapses to the last value *)
  let t = mk_tree () in
  Btree.bulk_load t
    (List.to_seq (List.init 500 (fun i -> ("dup", string_of_int i))));
  Alcotest.(check int) "all-dup length" 1 (Btree.length t);
  Alcotest.(check (option string)) "later wins" (Some "499") (Btree.find t "dup");
  (* unsorted input is refused *)
  let t = mk_tree () in
  Alcotest.check_raises "unsorted refused"
    (Invalid_argument "Btree.bulk_load: entries not sorted") (fun () ->
      Btree.bulk_load t (List.to_seq [ ("b", "1"); ("a", "2") ]));
  (* bad fill factors *)
  let t = mk_tree () in
  Alcotest.check_raises "fill 0 refused"
    (Invalid_argument "Btree.bulk_load: fill factor must be in (0, 1]")
    (fun () -> Btree.bulk_load ~fill:0. t Seq.empty);
  Alcotest.check_raises "fill > 1 refused"
    (Invalid_argument "Btree.bulk_load: fill factor must be in (0, 1]")
    (fun () -> Btree.bulk_load ~fill:1.5 t Seq.empty)

(* 100k+ entries: answers stay identical and the bulk path writes far
   fewer pages than splitting its way up *)
let test_large () =
  let n = 100_000 in
  let rng = Rng.create 42 in
  let entry i =
    (* ~4% duplicate keys sprinkled in *)
    let i = if i mod 25 = 0 && i > 0 then i - 1 else i in
    (Printf.sprintf "key%08d" i, Printf.sprintf "val%d" (i * 7))
  in
  let input = List.init n entry in
  let pb = Pager.create ~page_size:1024 () in
  let pi = Pager.create ~page_size:1024 () in
  let bulk = Btree.create pb and incr = Btree.create pi in
  Btree.bulk_load bulk (List.to_seq input);
  let bulk_writes = (Pager.stats pb).Storage.Stats.writes in
  List.iter (fun (k, v) -> Btree.insert incr ~key:k ~value:v) input;
  let incr_writes = (Pager.stats pi).Storage.Stats.writes in
  Alcotest.(check int) "identical lengths" (Btree.length incr)
    (Btree.length bulk);
  let rb = Btree.check_invariants bulk and ri = Btree.check_invariants incr in
  Alcotest.(check int) "identical entry counts" ri.Btree.entries
    rb.Btree.entries;
  Alcotest.(check bool)
    (Printf.sprintf "bulk load writes fewer pages (%d << %d)" bulk_writes
       incr_writes)
    true
    (bulk_writes < incr_writes / 4);
  Alcotest.(check bool) "bulk pages are denser" true
    (rb.Btree.avg_fill > ri.Btree.avg_fill);
  (* 1200 point probes across hits and misses *)
  let mism = ref 0 in
  for q = 1 to 1200 do
    let k =
      if q mod 3 = 0 then Printf.sprintf "key%08d" (Rng.int rng (n * 2))
      else Printf.sprintf "key%08d" (Rng.int rng n)
    in
    if Btree.find bulk k <> Btree.find incr k then mism := !mism + 1
  done;
  Alcotest.(check int) "1200 probes agree" 0 !mism

(* Index-level: [Index.build] (which now bulk-loads an empty tree) must
   produce the same index as per-object incremental indexing. *)
let test_index_build () =
  let e = Dg.exp1 ~n_vehicles:400 ~seed:11 () in
  let b = e.ext.b in
  let mk () =
    Index.create_class_hierarchy
      (Pager.create ~page_size:512 ())
      b.enc ~root:b.vehicle ~attr:"color"
  in
  let built = mk () in
  Index.build built e.store;
  let incr = mk () in
  Objstore.Store.iter e.store (fun o -> Index.index_object incr e.store o.oid);
  Alcotest.(check int) "entry_count matches" (Index.entry_count incr)
    (Index.entry_count built);
  ignore (Btree.check_invariants (Index.tree built));
  let keys t =
    let out = ref [] in
    Btree.iter (Index.tree t) (fun en -> out := en.Btree.key :: !out);
    List.rev !out
  in
  Alcotest.(check bool) "entry keys identical" true (keys built = keys incr);
  (* and the two answer queries identically *)
  let canon (o : Exec.outcome) =
    List.sort_uniq compare
      (List.map (fun bd -> (bd.Exec.value, bd.Exec.comps)) o.Exec.bindings)
  in
  List.iter
    (fun c ->
      let q =
        Query.class_hierarchy
          ~value:(Query.V_eq (Value.Str c))
          (Query.P_subtree b.vehicle)
      in
      if canon (Exec.parallel built q) <> canon (Exec.parallel incr q) then
        Alcotest.failf "query for %s differs" c)
    [ "Red"; "White"; "Blue"; "Black"; "Silver"; "Green" ]

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_differential ]

let () =
  Alcotest.run "bulkload"
    [
      ("differential", qsuite);
      ( "edges",
        [
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "100k entries" `Quick test_large;
          Alcotest.test_case "Index.build differential" `Quick test_index_build;
        ] );
    ]
