(* Concurrent snapshot isolation: K reader domains replay generated
   query workloads against views pinned at known committed cuts while a
   writer domain keeps mutating and committing the live index.

   The protocol: a test mutex guards (mutate + sync + record the oracle
   entry list) on the writer side and (pin a view + grab the matching
   oracle) on the reader side, so each reader knows exactly which
   committed image its view pinned.  The queries themselves run outside
   the mutex — genuinely concurrent with later commits — and every
   answer must equal the oracle evaluated at the reader's pinned cut.
   Any cross-talk from the writer (a stash missed on overwrite, a torn
   publish) shows up as a binding from the future or a vanished one.

   Plus direct invariant tests: a view pinned before a commit observes
   none of that commit's effects (file- and memory-backed), and
   [Db.session] pins all indexes at one cut. *)

module Dg = Workload.Datagen
module Rng = Workload.Rng
module Query = Uindex.Query
module Exec = Uindex.Exec
module Index = Uindex.Index
module Db = Uindex.Db
module Value = Objstore.Value
module Schema = Oodb_schema.Schema

type entry = Value.t * (Schema.class_id * int) list

let canon (o : Exec.outcome) =
  List.sort_uniq compare
    (List.map (fun b -> (b.Exec.value, b.Exec.comps)) o.Exec.bindings)

let oracle_eval schema (entries : entry list) (q : Query.t) =
  let pat =
    match q.Query.comps with [ c ] -> c.Query.pat | _ -> assert false
  in
  entries
  |> List.filter (fun (v, comps) ->
         Query.value_matches q.Query.value v
         &&
         match comps with
         | [ (cls, _) ] -> Query.pat_matches schema pat cls
         | _ -> false)
  |> List.sort_uniq compare

let gen_query rng ~classes ~distinct_keys =
  let pat =
    if Rng.int rng 2 = 0 then Query.P_subtree (Rng.pick rng classes)
    else Query.P_class (Rng.pick rng classes)
  in
  let value =
    match Rng.int rng 5 with
    | 0 -> Query.V_any
    | 1 ->
        let a = Rng.int rng distinct_keys and b = Rng.int rng distinct_keys in
        Query.V_range (Some (Value.Int (min a b)), Some (Value.Int (max a b)))
    | _ -> Query.V_eq (Value.Int (Rng.int rng distinct_keys))
  in
  Query.class_hierarchy ~value pat

(* --- the differential harness ------------------------------------------- *)

let readers = 4
let rounds_per_reader = 13
let queries_per_round = 20 (* 4 * 13 * 20 = 1040 queries per backend *)

let run_differential ~durable () =
  let d =
    Dg.exp2
      {
        n_objects = 800;
        n_classes = 8;
        distinct_keys = 60;
        page_size = 256;
        seed = 13;
      }
  in
  let file =
    if durable then Some (Filename.temp_file "uindex_conc" ".pages") else None
  in
  Fun.protect
    ~finally:(fun () ->
      match file with
      | Some f ->
          (try Sys.remove f with Sys_error _ -> ());
          (try Sys.remove (f ^ ".journal") with Sys_error _ -> ())
      | None -> ())
  @@ fun () ->
  let pager =
    match file with
    | Some f -> Storage.Pager.create_file ~page_size:512 f
    | None -> Storage.Pager.create ()
  in
  let idx = Index.create_class_hierarchy pager d.enc ~root:d.root ~attr:"k" in
  let all_entries =
    Array.map (fun (k, cls, oid) -> (Value.Int k, [ (cls, oid) ])) d.entries
  in
  let half = Array.length all_entries / 2 in
  let initial = Array.to_list (Array.sub all_entries 0 half) in
  List.iter (fun (v, comps) -> Index.insert_entry idx ~value:v comps) initial;
  Index.sync idx;
  (* guards: writer's mutate+sync+publish, reader's pin+oracle grab *)
  let mu = Mutex.create () in
  let committed = ref initial in
  let next_fresh = ref half in
  let removed_pool = ref [] in
  let stop_writer = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Rng.create 99 in
        let commits = ref 0 in
        while not (Atomic.get stop_writer) do
          Mutex.lock mu;
          (* up to 10 insertions: unseen entries first, then recycle *)
          let fresh = ref [] in
          for _ = 1 to 10 do
            if !next_fresh < Array.length all_entries then begin
              fresh := all_entries.(!next_fresh) :: !fresh;
              incr next_fresh
            end
            else
              match !removed_pool with
              | e :: rest ->
                  removed_pool := rest;
                  fresh := e :: !fresh
              | [] -> ()
          done;
          List.iter
            (fun (v, comps) -> Index.insert_entry idx ~value:v comps)
            !fresh;
          (* and a handful of removals (~5 expected) *)
          let live = !fresh @ !committed in
          let pr = max 2 (List.length live / 5) in
          let doomed, kept =
            List.partition (fun _ -> Rng.int rng pr = 0) live
          in
          List.iter
            (fun (v, comps) -> Index.remove_entry idx ~value:v comps)
            doomed;
          removed_pool := doomed @ !removed_pool;
          Index.sync idx;
          committed := kept;
          incr commits;
          Mutex.unlock mu;
          Unix.sleepf 0.002
        done;
        !commits)
  in
  let reader k =
    Domain.spawn (fun () ->
        let rng = Rng.create (500 + k) in
        let failures = ref 0 and ran = ref 0 in
        for _round = 1 to rounds_per_reader do
          Mutex.lock mu;
          let view = Index.snapshot_view idx in
          let oracle = !committed in
          Mutex.unlock mu;
          Fun.protect ~finally:(fun () -> Index.release_view view)
          @@ fun () ->
          for _q = 1 to queries_per_round do
            incr ran;
            let q = gen_query rng ~classes:d.classes ~distinct_keys:60 in
            let want = oracle_eval d.schema oracle q in
            if canon (Exec.parallel view q) <> want then incr failures;
            if canon (Exec.forward view q) <> want then incr failures
          done
        done;
        (!ran, !failures))
  in
  let reader_domains = List.init readers reader in
  let results = List.map Domain.join reader_domains in
  Atomic.set stop_writer true;
  let commits = Domain.join writer in
  let total_ran = List.fold_left (fun a (r, _) -> a + r) 0 results in
  let total_failed = List.fold_left (fun a (_, f) -> a + f) 0 results in
  Alcotest.(check int)
    (Printf.sprintf "all %d answers match their pinned-snapshot oracle"
       total_ran)
    0 total_failed;
  Alcotest.(check bool)
    "at least 1000 queries ran" true
    (total_ran >= 1000);
  Alcotest.(check bool) "the writer interleaved commits" true (commits > 1);
  (* the dust settles: the live index equals the final committed oracle *)
  Mutex.lock mu;
  let final_oracle = !committed in
  Mutex.unlock mu;
  let q_all = Query.class_hierarchy ~value:Query.V_any (Query.P_subtree d.root) in
  Alcotest.(check bool)
    "final live state matches final oracle" true
    (canon (Exec.parallel idx q_all)
    = oracle_eval d.schema final_oracle q_all);
  Alcotest.(check int) "all snapshots released" 0
    (Storage.Pager.live_snapshots pager);
  match file with Some _ -> Storage.Pager.close pager | None -> ()

(* --- pin-before-commit invisibility -------------------------------------- *)

let sub_entries d lo hi =
  Array.to_list (Array.sub d lo (hi - lo))
  |> List.map (fun (k, cls, oid) -> (Value.Int k, [ (cls, oid) ]))

let run_pin_before_commit ~durable () =
  let d =
    Dg.exp2
      {
        n_objects = 200;
        n_classes = 8;
        distinct_keys = 20;
        page_size = 256;
        seed = 5;
      }
  in
  let file =
    if durable then Some (Filename.temp_file "uindex_pin" ".pages") else None
  in
  Fun.protect
    ~finally:(fun () ->
      match file with
      | Some f ->
          (try Sys.remove f with Sys_error _ -> ());
          (try Sys.remove (f ^ ".journal") with Sys_error _ -> ())
      | None -> ())
  @@ fun () ->
  let pager =
    match file with
    | Some f -> Storage.Pager.create_file ~page_size:512 f
    | None -> Storage.Pager.create ()
  in
  let idx = Index.create_class_hierarchy pager d.enc ~root:d.root ~attr:"k" in
  let before = sub_entries d.entries 0 150 in
  let after = sub_entries d.entries 150 200 in
  List.iter (fun (v, comps) -> Index.insert_entry idx ~value:v comps) before;
  Index.sync idx;
  let view = Index.snapshot_view idx in
  let q_all = Query.class_hierarchy ~value:Query.V_any (Query.P_subtree d.root) in
  let want_before = oracle_eval d.schema before q_all in
  (* mutate the live index: splits will overwrite pages the view pinned *)
  List.iter (fun (v, comps) -> Index.insert_entry idx ~value:v comps) after;
  Alcotest.(check bool)
    "uncommitted writes are invisible to the pinned view" true
    (canon (Exec.parallel view q_all) = want_before);
  Index.sync idx;
  Alcotest.(check bool)
    "the commit itself is invisible to the pre-commit view" true
    (canon (Exec.parallel view q_all) = want_before);
  let view2 = Index.snapshot_view idx in
  Alcotest.(check bool)
    "a fresh view sees the commit" true
    (canon (Exec.parallel view2 q_all)
    = oracle_eval d.schema (before @ after) q_all);
  Index.release_view view;
  Index.release_view view2;
  Index.release_view view (* idempotent *);
  Alcotest.(check int) "no snapshots left" 0
    (Storage.Pager.live_snapshots pager);
  match file with Some _ -> Storage.Pager.close pager | None -> ()

(* --- Db sessions ---------------------------------------------------------- *)

let test_db_sessions () =
  let e = Dg.exp1 ~n_vehicles:300 ~seed:3 () in
  let b = e.ext.b in
  let db = Db.create e.store in
  Db.attach_index db e.ch_color;
  Db.attach_index db e.path_age;
  let q =
    Query.class_hierarchy
      ~value:(Query.V_eq (Value.Str "Red"))
      (Query.P_subtree b.vehicle)
  in
  let count_in session =
    List.length (Db.session_query session e.ch_color q).Exec.bindings
  in
  let s1 = Db.open_session db in
  let c1 = count_in s1 in
  let oid = Db.insert db ~cls:b.vehicle [ ("color", Value.Str "Red") ] in
  Alcotest.(check int) "old session: insert invisible" c1 (count_in s1);
  Alcotest.(check int) "new session: insert visible" (c1 + 1)
    (Db.with_session db count_in);
  Alcotest.(check int) "live query agrees" (c1 + 1)
    (List.length (Db.query db e.ch_color q).Exec.bindings);
  Db.delete db oid;
  Alcotest.(check int) "old session: delete also invisible" c1 (count_in s1);
  Alcotest.(check int) "new session: back to the start" c1
    (Db.with_session db count_in);
  Db.close_session s1;
  Db.close_session s1 (* idempotent *);
  Alcotest.check_raises "closed session refuses queries"
    (Invalid_argument "Db.session_view: session is closed") (fun () ->
      ignore (count_in s1))

(* --- durability watermark ------------------------------------------------ *)

(* A small file-backed Db: vehicles with a color index, synced once so
   sessions can pin. *)
let with_file_db ~seed f =
  let e = Dg.exp1 ~n_vehicles:30 ~n_companies:8 ~n_employees:4 ~seed () in
  let b = e.ext.b in
  let file = Filename.temp_file "uindex_wm" ".pages" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ file; Storage.Pager.journal_path file ])
  @@ fun () ->
  let pager = Storage.Pager.create_file ~page_size:512 file in
  let idx =
    Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
  in
  let db = Db.create e.store in
  Db.add_index db idx;
  Db.sync db;
  Fun.protect ~finally:(fun () -> Storage.Pager.close pager) @@ fun () ->
  f db idx b

(* [`Async] acknowledges without flushing: the LSN sits above the
   watermark until something drives a group flush, and [wait_durable]
   is exactly that something. *)
let test_async_commit_semantics () =
  with_file_db ~seed:21 @@ fun db _idx b ->
  ignore (Db.insert db ~cls:b.vehicle [ ("color", Value.Str "wm-a") ]);
  let lsn1 = Db.commit ~mode:`Async db in
  Alcotest.(check bool)
    "async commit acknowledged above the watermark" true
    (Db.durable_lsn db < lsn1);
  Db.wait_durable db lsn1;
  Alcotest.(check bool)
    "wait_durable drives the group flush" true
    (Db.durable_lsn db >= lsn1);
  ignore (Db.insert db ~cls:b.vehicle [ ("color", Value.Str "wm-b") ]);
  let lsn2 = Db.commit db in
  Alcotest.(check bool) "LSNs increase" true (lsn2 > lsn1);
  Alcotest.(check bool)
    "sync commit returns durable" true
    (Db.durable_lsn db >= lsn2);
  (* waiting on an already-durable LSN is a no-op *)
  Db.wait_durable db lsn1;
  Alcotest.(check bool) "watermark kept" true (Db.durable_lsn db >= lsn2)

(* Three committing writer domains while a monitor samples the
   watermark: it must never move backwards, every synchronous commit
   must be covered on return, and after a final wait the watermark
   covers every acknowledged commit. *)
let test_watermark_monotone () =
  with_file_db ~seed:22 @@ fun db _idx b ->
  Db.set_group_window db 0.001;
  let stop = Atomic.make false in
  let max_lsn = Atomic.make 0 in
  let record l =
    let rec go () =
      let cur = Atomic.get max_lsn in
      if l > cur && not (Atomic.compare_and_set max_lsn cur l) then go ()
    in
    go ()
  in
  let monitor =
    Domain.spawn (fun () ->
        let bad = ref None in
        let last = ref 0 in
        while not (Atomic.get stop) do
          let d = Db.durable_lsn db in
          if d < !last then bad := Some (!last, d);
          last := max !last d;
          Unix.sleepf 0.0002
        done;
        !bad)
  in
  let writers =
    List.init 3 (fun w ->
        Domain.spawn (fun () ->
            let rng = Rng.create (100 + w) in
            for k = 1 to 30 do
              ignore
                (Db.insert db ~cls:b.vehicle
                   [
                     ("color", Value.Str (Printf.sprintf "wm-%d-%d" w k));
                   ]);
              if Rng.int rng 2 = 0 then begin
                let l = Db.commit db in
                record l;
                if Db.durable_lsn db < l then
                  failwith "sync commit returned above the watermark"
              end
              else record (Db.commit ~mode:`Async db)
            done))
  in
  List.iter Domain.join writers;
  Db.wait_durable db (Atomic.get max_lsn);
  Alcotest.(check bool)
    "watermark covers every acknowledged commit" true
    (Db.durable_lsn db >= Atomic.get max_lsn);
  Atomic.set stop true;
  match Domain.join monitor with
  | None -> ()
  | Some (was, now) ->
      Alcotest.failf "durable_lsn regressed: %d then %d" was now

(* Sessions pin the last flushed image of a file-backed index.  A
   writer commits in bursts of [g] async commits closed by one
   wait_durable, so every flush covers a whole burst; a concurrent
   reader pinning sessions must only ever see a whole number of bursts
   — a dense prefix of the insertion order, never a torn group — and at
   least as many as the flush counter said were durable before the pin. *)
let test_snapshot_group_boundaries () =
  with_file_db ~seed:23 @@ fun db idx b ->
  let g = 4 and bursts = 25 in
  let flushed = Atomic.make 0 in
  let done_ = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        for j = 1 to bursts do
          let last = ref 0 in
          for i = 1 to g do
            let n = ((j - 1) * g) + i in
            ignore
              (Db.insert db ~cls:b.vehicle
                 [ ("color", Value.Str (Printf.sprintf "zz-%04d" n)) ]);
            last := Db.commit ~mode:`Async db
          done;
          Db.wait_durable db !last;
          Atomic.set flushed j
        done;
        Atomic.set done_ true)
  in
  let q =
    Query.class_hierarchy
      ~value:
        (Query.V_range (Some (Value.Str "zz-"), Some (Value.Str "zz-~")))
      (Query.P_subtree b.vehicle)
  in
  let checks = ref 0 in
  let fail = ref None in
  while (not (Atomic.get done_) || !checks = 0) && !fail = None do
    let lb = Atomic.get flushed * g in
    Db.with_session db (fun s ->
        let got =
          (Db.session_query s idx q).Exec.bindings
          |> List.map (fun bd ->
                 match bd.Exec.value with
                 | Value.Str c -> c
                 | v -> Alcotest.failf "non-string key %a" Value.pp v)
          |> List.sort_uniq compare
        in
        let k = List.length got in
        if k mod g <> 0 then
          fail := Some (Printf.sprintf "saw %d zz commits: torn group" k)
        else if k < lb then
          fail :=
            Some
              (Printf.sprintf
                 "saw %d zz commits but %d were already durable" k lb)
        else if k > bursts * g then
          fail := Some (Printf.sprintf "saw %d zz commits: too many" k)
        else begin
          let want = List.init k (fun i -> Printf.sprintf "zz-%04d" (i + 1)) in
          if got <> want then
            fail := Some "visible commits are not a prefix of the history"
        end;
        incr checks)
  done;
  Domain.join writer;
  (match !fail with Some m -> Alcotest.fail m | None -> ());
  Alcotest.(check bool)
    (Printf.sprintf "ran %d snapshot checks" !checks)
    true (!checks > 0);
  (* the final state is the full history *)
  Db.with_session db (fun s ->
      Alcotest.(check int) "all bursts visible at the end" (bursts * g)
        (List.length (Db.session_query s idx q).Exec.bindings))

let () =
  Alcotest.run "concurrent"
    [
      ( "differential",
        [
          Alcotest.test_case "memory: 4 readers vs interleaved writer" `Quick
            (run_differential ~durable:false);
          Alcotest.test_case "file: 4 readers vs interleaved writer" `Quick
            (run_differential ~durable:true);
        ] );
      ( "pin-before-commit",
        [
          Alcotest.test_case "memory view" `Quick
            (run_pin_before_commit ~durable:false);
          Alcotest.test_case "file view" `Quick
            (run_pin_before_commit ~durable:true);
        ] );
      ("sessions", [ Alcotest.test_case "Db sessions" `Quick test_db_sessions ]);
      ( "watermark",
        [
          Alcotest.test_case "async commit semantics" `Quick
            test_async_commit_semantics;
          Alcotest.test_case "durable_lsn is monotone" `Quick
            test_watermark_monotone;
          Alcotest.test_case "snapshots pin group boundaries" `Quick
            test_snapshot_group_boundaries;
        ] );
    ]
