(* Tests for the COD class-code scheme: ordering, subtree intervals, unit
   allocation, and fractional insertion (schema evolution). *)

module Code = Oodb_schema.Code

let test_basic () =
  let v = Code.root "D" in
  let a = Code.child v "B" in
  let c = Code.child a "B" in
  Alcotest.(check int) "depth" 3 (Code.depth c);
  Alcotest.(check (list string)) "units" [ "D"; "B"; "B" ] (Code.units c);
  Alcotest.(check bool) "parent" true (Code.parent c = Some a);
  Alcotest.(check bool) "root parent" true (Code.parent v = None);
  Alcotest.(check string) "display" "D.B.B" (Code.to_string c)

let test_preorder () =
  (* a class sorts before its descendants, descendants before the next
     sibling: the "`$` below `A`" property *)
  let v = Code.root "D" in
  let auto = Code.child v "B" in
  let compact = Code.child auto "B" in
  let truck = Code.child v "C" in
  let next_root = Code.root "E" in
  let expect_lt a b =
    if Code.compare a b >= 0 then
      Alcotest.failf "%s should precede %s" (Code.to_string a) (Code.to_string b)
  in
  expect_lt v auto;
  expect_lt auto compact;
  expect_lt compact truck;
  expect_lt truck next_root

let test_serialize_roundtrip () =
  let c = Code.child (Code.child (Code.root "Cz") "AB") "M" in
  Alcotest.(check bool) "roundtrip" true
    (Code.equal c (Code.of_serialized (Code.serialize c)));
  Alcotest.check_raises "no terminator"
    (Invalid_argument "Code.of_serialized: missing terminator") (fun () ->
      ignore (Code.of_serialized "AB"))

let test_subtree_interval () =
  let v = Code.root "D" in
  let auto = Code.child v "B" in
  let compact = Code.child auto "B" in
  let truck = Code.child v "C" in
  let lo, hi = Code.subtree_interval auto in
  let inside c =
    let s = Code.serialize c in
    lo <= s && s < hi
  in
  Alcotest.(check bool) "self inside" true (inside auto);
  Alcotest.(check bool) "child inside" true (inside compact);
  Alcotest.(check bool) "sibling outside" false (inside truck);
  Alcotest.(check bool) "parent outside" false (inside v)

let test_is_ancestor () =
  let a = Code.root "B" in
  let b = Code.child a "C" in
  let c = Code.child b "D" in
  Alcotest.(check bool) "self" true (Code.is_ancestor ~ancestor:a a);
  Alcotest.(check bool) "grandchild" true (Code.is_ancestor ~ancestor:a c);
  Alcotest.(check bool) "not reverse" false (Code.is_ancestor ~ancestor:c a)

let test_unit_of_rank () =
  let units = List.init 200 Code.unit_of_rank in
  (* strictly increasing in code order *)
  let rec check = function
    | a :: (b :: _ as rest) ->
        if String.compare a b >= 0 then
          Alcotest.failf "rank units out of order: %S >= %S" a b;
        check rest
    | [ _ ] | [] -> ()
  in
  check units;
  List.iter
    (fun u ->
      ignore (Code.check_unit u);
      if u.[String.length u - 1] = 'A' then
        Alcotest.failf "rank unit ends in A: %S" u)
    units

let test_unit_between () =
  let check_between u v =
    let w = Code.unit_between u (Some v) in
    if not (String.compare u w < 0 && String.compare w v < 0) then
      Alcotest.failf "between %S %S gave %S" u v w;
    if w.[String.length w - 1] = 'A' then
      Alcotest.failf "between %S %S ends in A: %S" u v w;
    w
  in
  ignore (check_between "B" "D");
  ignore (check_between "B" "C");
  ignore (check_between "" "B");
  ignore (check_between "B" "BM");
  let top = Code.unit_between "B" None in
  Alcotest.(check bool) "open above" true (String.compare "B" top < 0);
  Alcotest.check_raises "inverted bounds"
    (Invalid_argument "Code.unit_between: bounds not ordered") (fun () ->
      ignore (Code.unit_between "D" (Some "B")))

let prop_unit_between_dense =
  (* repeated insertion between the same pair keeps producing fresh,
     correctly ordered units: the code space never runs out (Fig. 4) *)
  QCheck.Test.make ~count:50 ~name:"unit_between is dense"
    QCheck.(int_bound 60)
    (fun n ->
      let lo = ref "B" and hi = ref "D" in
      for i = 0 to n do
        let m = Code.unit_between !lo (Some !hi) in
        if not (String.compare !lo m < 0 && String.compare m !hi < 0) then
          QCheck.Test.fail_reportf "not between at step %d" i;
        if i mod 2 = 0 then lo := m else hi := m
      done;
      true)

let prop_codes_sorted_like_serialization =
  QCheck.Test.make ~count:200 ~name:"Code.compare = serialized byte order"
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 4) (int_bound 30))
        (list_of_size (QCheck.Gen.int_range 1 4) (int_bound 30)))
    (fun (a, b) ->
      let mk ranks =
        match List.map Code.unit_of_rank ranks with
        | [] -> assert false
        | u :: rest -> List.fold_left Code.child (Code.root u) rest
      in
      let ca = mk a and cb = mk b in
      let c1 = compare (Code.compare ca cb) 0
      and c2 = compare (String.compare (Code.serialize ca) (Code.serialize cb)) 0 in
      (c1 < 0) = (c2 < 0) && (c1 = 0) = (c2 = 0))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_unit_between_dense; prop_codes_sorted_like_serialization ]

let () =
  Alcotest.run "code"
    [
      ( "codes",
        [
          Alcotest.test_case "construction" `Quick test_basic;
          Alcotest.test_case "pre-order" `Quick test_preorder;
          Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "subtree interval" `Quick test_subtree_interval;
          Alcotest.test_case "ancestry" `Quick test_is_ancestor;
        ] );
      ( "units",
        [
          Alcotest.test_case "rank allocation" `Quick test_unit_of_rank;
          Alcotest.test_case "fractional insertion" `Quick test_unit_between;
        ] );
      ("properties", qsuite);
    ]
