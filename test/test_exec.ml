(* Dedicated tests for the executors' cost accounting: the properties the
   paper's measurements rest on. *)

module Ps = Workload.Paper_schema
module Dg = Workload.Datagen
module Qg = Workload.Querygen
module Value = Objstore.Value
module Query = Uindex.Query
module Index = Uindex.Index
module Exec = Uindex.Exec
module Stats = Storage.Stats
module Pager = Storage.Pager

let small = lazy (
  Dg.exp2 { (Dg.default_exp2 ~n_classes:12 ~distinct_keys:40) with
            n_objects = 5_000; seed = 8 })

let q_of _d ~lo ~hi ~sets =
  let value =
    if lo = hi then Query.V_eq (Value.Int lo)
    else Query.V_range (Some (Value.Int lo), Some (Value.Int hi))
  in
  Query.class_hierarchy ~value (Qg.union_of_classes sets)

let test_parallel_never_worse_on_ch () =
  (* on single-component (class-hierarchy) queries the parallel algorithm
     visits a subset of the forward scan's bracket *)
  let d = Lazy.force small in
  let rng = Workload.Rng.create 3 in
  for _ = 1 to 30 do
    let k = 1 + Workload.Rng.int rng 12 in
    let sets = Qg.pick_sets rng Qg.Random ~classes:d.classes ~k in
    let lo = Workload.Rng.int rng 40 in
    let hi = min 39 (lo + Workload.Rng.int rng 8) in
    let q = q_of d ~lo ~hi:(max lo hi) ~sets in
    let p = Exec.parallel d.uindex q and f = Exec.forward d.uindex q in
    Alcotest.(check (list int)) "same bindings" (Exec.head_oids f)
      (Exec.head_oids p);
    (* skipping may touch internal pages the forward scan's single descent
       never sees (cf. Table 1's queries 5b/6), but it can never exceed
       forward by more than that internal overhead *)
    let slack = Btree.height (Index.tree d.uindex) + (f.Exec.page_reads / 4) in
    if p.Exec.page_reads > f.Exec.page_reads + slack then
      Alcotest.failf "parallel %d way above forward %d pages" p.Exec.page_reads
        f.Exec.page_reads;
    if p.Exec.entries_scanned > f.Exec.entries_scanned then
      Alcotest.failf "parallel scanned more entries (%d > %d)"
        p.Exec.entries_scanned f.Exec.entries_scanned
  done

let test_page_reads_match_stats () =
  (* the outcome's page_reads equals the pager-stat delta — nothing else
     reads pages during a query *)
  let d = Lazy.force small in
  let stats = Pager.stats (Btree.pager (Index.tree d.uindex)) in
  let q = q_of d ~lo:5 ~hi:9 ~sets:(Array.to_list d.classes) in
  let before = Stats.snapshot stats in
  let o = Exec.parallel d.uindex q in
  let delta = (Stats.diff ~before ~after:(Stats.snapshot stats)).Stats.reads in
  Alcotest.(check int) "accounted reads" delta o.Exec.page_reads;
  Alcotest.(check int) "queries do not write" 0
    (Stats.diff ~before ~after:(Stats.snapshot stats)).Stats.writes

let test_empty_results_cheap () =
  let d = Lazy.force small in
  (* a value beyond the domain: descent only *)
  let q = q_of d ~lo:999_999 ~hi:999_999 ~sets:[ d.classes.(0) ] in
  let o = Exec.parallel d.uindex q in
  Alcotest.(check (list int)) "no results" [] (Exec.head_oids o);
  if o.Exec.page_reads > Btree.height (Index.tree d.uindex) + 1 then
    Alcotest.failf "empty exact match read %d pages" o.Exec.page_reads;
  (* an empty range reads nothing at all *)
  let q =
    Query.class_hierarchy
      ~value:(V_range (Some (Value.Int 9), Some (Value.Int 3)))
      (P_subtree d.root)
  in
  let o = Exec.parallel d.uindex q in
  Alcotest.(check int) "empty range reads nothing" 0 o.Exec.page_reads

let test_unbounded_range () =
  let d = Lazy.force small in
  let all = Array.to_list d.classes in
  let q =
    Query.class_hierarchy ~value:(V_range (None, None)) (P_subtree d.root)
  in
  let o = Exec.parallel d.uindex q in
  Alcotest.(check int) "everything" d.cfg.n_objects (List.length o.Exec.bindings);
  let q = Query.class_hierarchy ~value:V_any (Qg.union_of_classes all) in
  let o' = Exec.parallel d.uindex q in
  Alcotest.(check int) "V_any = full range" (List.length o.Exec.bindings)
    (List.length o'.Exec.bindings)

let test_one_of_slot () =
  (* S_one_of on an exact-class first component compiles to per-OID point
     intervals: results are right and reads stay near the tree height *)
  let d = Lazy.force small in
  let cls = d.classes.(3) in
  let matching =
    Array.to_list d.entries
    |> List.filter_map (fun (k, c, oid) ->
           if k = 11 && c = cls then Some oid else None)
  in
  QCheck.assume (List.length matching >= 2);
  let chosen = [ List.nth matching 0; List.nth matching 1; 999_999 ] in
  let q =
    {
      Query.value = V_eq (Value.Int 11);
      comps = [ Query.comp ~slot:(S_one_of chosen) (P_class cls) ];
    }
  in
  let o = Exec.parallel d.uindex q in
  Alcotest.(check (list int))
    "exact oids"
    (List.sort compare [ List.nth matching 0; List.nth matching 1 ])
    (Exec.head_oids o);
  if o.Exec.page_reads > 3 * Btree.height (Index.tree d.uindex) then
    Alcotest.failf "point intervals read too much: %d pages" o.Exec.page_reads

let test_subtree_minus () =
  let b = Ps.base () in
  let ex = Ps.example1 b in
  let idx =
    Index.create_class_hierarchy (Storage.Pager.create ()) b.enc
      ~root:b.vehicle ~attr:"color"
  in
  Index.build idx ex.store;
  (* the paper's query 4: white vehicles that are not compact automobiles *)
  let pat = Query.subtree_minus b.schema b.vehicle ~except:[ b.compact ] in
  let o =
    Exec.parallel idx (Query.class_hierarchy ~value:(V_eq (Str "White")) pat)
  in
  Alcotest.(check (list int)) "non-compact whites" [ ex.v1; ex.v2 ]
    (Exec.head_oids o);
  (* carving out the root leaves nothing *)
  Alcotest.check_raises "nothing left"
    (Invalid_argument "Query.subtree_minus: nothing remains of the subtree")
    (fun () -> ignore (Query.subtree_minus b.schema b.vehicle ~except:[ b.vehicle ]));
  (* minimality: untouched subtrees stay as single subtree patterns *)
  (match Query.subtree_minus b.schema b.vehicle ~except:[ b.truck ] with
  | Query.P_union ps ->
      Alcotest.(check bool) "automobile survives whole" true
        (List.mem (Query.P_subtree b.automobile) ps)
  | _ -> Alcotest.fail "expected a union")

let test_compression_stats () =
  let d = Lazy.force small in
  let cs = Btree.compression_stats (Index.tree d.uindex) in
  Alcotest.(check bool) "entries counted" true (cs.Btree.entries >= d.cfg.n_objects);
  if cs.Btree.stored_key_bytes * 2 > cs.Btree.raw_key_bytes then
    Alcotest.failf "compression too weak: %d stored of %d raw"
      cs.Btree.stored_key_bytes cs.Btree.raw_key_bytes;
  Alcotest.(check bool) "avg prefix positive" true (cs.Btree.avg_prefix_len > 1.

  )

let test_explain () =
  let d = Lazy.force small in
  let sets = [ d.classes.(2); d.classes.(5) ] in
  let q =
    Query.class_hierarchy
      ~value:(V_in [ Value.Int 7; Value.Int 21 ])
      (Qg.union_of_classes sets)
  in
  (match Exec.explain d.uindex q with
  | None -> Alcotest.fail "enumerable query should explain"
  | Some visits ->
      (* the search tree's matched entries equal the query's results *)
      let matched =
        List.fold_left (fun a (v : Btree.visit) -> a + v.Btree.matched) 0 visits
      in
      let o = Exec.parallel d.uindex q in
      Alcotest.(check int) "matches = results" (List.length o.Exec.bindings)
        matched;
      (* root first, depths consistent *)
      (match visits with
      | v :: _ -> Alcotest.(check int) "starts at root" 0 v.Btree.depth
      | [] -> Alcotest.fail "no visits");
      List.iter
        (fun (v : Btree.visit) ->
          if v.Btree.is_leaf then
            Alcotest.(check int)
              "leaves at tree height"
              (Btree.height (Index.tree d.uindex) - 1)
              v.Btree.depth)
        visits;
      (* explain must not disturb accounting *)
      let stats = Pager.stats (Btree.pager (Index.tree d.uindex)) in
      let before = Stats.snapshot stats in
      ignore (Exec.explain d.uindex q);
      Alcotest.(check int) "no reads counted" before.Stats.reads
        (Stats.snapshot stats).Stats.reads);
  (* contiguous ranges have no static search tree *)
  let q =
    Query.class_hierarchy
      ~value:(V_range (Some (Value.Int 0), Some (Value.Int 10)))
      (Qg.union_of_classes sets)
  in
  Alcotest.(check bool) "range explains to None" true (Exec.explain d.uindex q = None)

let test_buffer_pool_reuse () =
  (* repeated identical queries through an LRU pool approach 100% hits *)
  let d = Lazy.force small in
  let tree = Index.tree d.uindex in
  let pool = Storage.Buffer_pool.create ~capacity:2048 (Btree.pager tree) in
  let read id = Storage.Buffer_pool.read pool id in
  let q = q_of d ~lo:5 ~hi:9 ~sets:(Array.to_list d.classes) in
  let plan =
    Uindex.Plan.compile ~enc:(Index.encoding d.uindex) ~ty:(Index.attr_ty d.uindex) q
  in
  let run () =
    let sc = Btree.Scanner.create tree ~read in
    let rec go cur n =
      match cur with
      | Some (e : Btree.entry) -> (
          match Uindex.Plan.classify plan e.key with
          | Uindex.Plan.Accept _ -> go (Btree.Scanner.next sc) (n + 1)
          | Uindex.Plan.Reject _ -> go (Btree.Scanner.next sc) n)
      | None -> n
    in
    match Uindex.Plan.lower plan with
    | Some lo -> go (Btree.Scanner.seek sc lo) 0
    | None -> 0
  in
  ignore (run ());
  let miss0 = Storage.Buffer_pool.misses pool in
  ignore (run ());
  Alcotest.(check int) "second run all hits" miss0
    (Storage.Buffer_pool.misses pool)

let () =
  Alcotest.run "exec"
    [
      ( "accounting",
        [
          Alcotest.test_case "parallel <= forward" `Quick
            test_parallel_never_worse_on_ch;
          Alcotest.test_case "page reads = stats delta" `Quick
            test_page_reads_match_stats;
          Alcotest.test_case "empty results are cheap" `Quick
            test_empty_results_cheap;
          Alcotest.test_case "unbounded ranges" `Quick test_unbounded_range;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "one-of slot intervals" `Quick test_one_of_slot;
          Alcotest.test_case "subtree minus" `Quick test_subtree_minus;
          Alcotest.test_case "compression stats" `Quick test_compression_stats;
          Alcotest.test_case "buffer pool reuse" `Quick test_buffer_pool_reuse;
          Alcotest.test_case "explain (Fig. 3 search tree)" `Quick test_explain;
        ] );
    ]
