(* Tests for schema construction, attribute inheritance, the encoding
   assignment (topological properties), schema evolution and cycle
   handling. *)

module Schema = Oodb_schema.Schema
module Code = Oodb_schema.Code
module Encoding = Oodb_schema.Encoding
module Graph = Oodb_schema.Graph
module Ps = Workload.Paper_schema

let test_construction () =
  let s = Schema.create () in
  let a = Schema.add_class s ~name:"A" ~attrs:[ ("x", Schema.Int) ] in
  let b = Schema.add_class s ~parent:a ~name:"B" ~attrs:[ ("y", Schema.String) ] in
  Alcotest.(check string) "name" "A" (Schema.name s a);
  Alcotest.(check bool) "find" true (Schema.find s "B" = Some b);
  Alcotest.(check bool) "parent" true (Schema.parent s b = Some a);
  Alcotest.(check (list int)) "children" [ b ] (Schema.children s a);
  Alcotest.(check (list int)) "roots" [ a ] (Schema.roots s);
  Alcotest.(check (list int)) "subtree preorder" [ a; b ] (Schema.subtree s a);
  Alcotest.(check bool) "subclass refl" true (Schema.is_subclass s ~sub:a ~super:a);
  Alcotest.(check bool) "subclass" true (Schema.is_subclass s ~sub:b ~super:a);
  Alcotest.(check bool) "not super" false (Schema.is_subclass s ~sub:a ~super:b)

let test_inheritance () =
  let s = Schema.create () in
  let a = Schema.add_class s ~name:"A" ~attrs:[ ("x", Schema.Int) ] in
  let b = Schema.add_class s ~parent:a ~name:"B" ~attrs:[ ("y", Schema.String) ] in
  Alcotest.(check bool) "inherited" true (Schema.attr_type s b "x" = Some Schema.Int);
  Alcotest.(check bool) "own" true (Schema.attr_type s b "y" = Some Schema.String);
  Alcotest.(check bool) "not upward" true (Schema.attr_type s a "y" = None);
  Alcotest.check_raises "shadowing rejected"
    (Invalid_argument "Schema: attribute \"x\" already defined on B or above")
    (fun () -> Schema.add_attr s b "x" Schema.String)

let test_duplicate_class () =
  let s = Schema.create () in
  ignore (Schema.add_class s ~name:"A" ~attrs:[]);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Schema: duplicate class name \"A\"") (fun () ->
      ignore (Schema.add_class s ~name:"A" ~attrs:[]))

let test_refs () =
  let s = Schema.create () in
  let a = Schema.add_class s ~name:"A" ~attrs:[] in
  let b =
    Schema.add_class s ~name:"B"
      ~attrs:[ ("one", Schema.Ref a); ("many", Schema.Ref_set a) ]
  in
  let c = Schema.add_class s ~parent:b ~name:"C" ~attrs:[] in
  Alcotest.(check int) "edges" 2 (List.length (Schema.ref_edges s));
  (* refs are inherited *)
  let refs = Schema.refs s c in
  Alcotest.(check int) "inherited refs" 2 (List.length refs);
  Alcotest.(check bool) "multiplicities" true
    (List.mem ("one", a, `One) refs && List.mem ("many", a, `Many) refs)

(* --- encoding ---------------------------------------------------------------- *)

let test_paper_encoding_order () =
  (* the REF topology forces the paper's C1..C5 order *)
  let b = Ps.base () in
  let code c = Encoding.code b.enc c in
  let lt x y = Code.compare (code x) (code y) < 0 in
  Alcotest.(check bool) "Employee < Company" true (lt b.employee b.company);
  Alcotest.(check bool) "Company < Vehicle" true (lt b.company b.vehicle);
  Alcotest.(check bool) "Company < Division" true (lt b.company b.division);
  Alcotest.(check bool) "City < Division" true (lt b.city b.division);
  (* subclasses extend their parents *)
  Alcotest.(check bool) "Automobile under Vehicle" true
    (Code.is_ancestor ~ancestor:(code b.vehicle) (code b.automobile));
  Alcotest.(check bool) "Compact under Automobile" true
    (Code.is_ancestor ~ancestor:(code b.automobile) (code b.compact));
  (* pre-order = code order across the whole schema *)
  let pre = List.concat_map (Schema.subtree b.schema) (Schema.roots b.schema) in
  let sorted_by_code =
    List.sort (fun x y -> Code.compare (code x) (code y)) pre
  in
  Alcotest.(check bool) "pre-order = code order" true (pre = sorted_by_code)

let test_encoding_lookup () =
  let b = Ps.base () in
  let c = Encoding.code b.enc b.compact in
  Alcotest.(check bool) "by code" true
    (Encoding.class_of_code b.enc c = Some b.compact);
  Alcotest.(check bool) "by serialized" true
    (Encoding.class_of_serialized b.enc (Code.serialize c) = Some b.compact);
  Alcotest.(check bool) "unknown" true
    (Encoding.class_of_serialized b.enc "nonsense\x02" = None)

let test_path_encodable () =
  let b = Ps.base () in
  Alcotest.(check bool) "vehicle->company->employee" true
    (Encoding.path_is_encodable b.enc [ b.vehicle; b.company; b.employee ]);
  Alcotest.(check bool) "reverse is not" false
    (Encoding.path_is_encodable b.enc [ b.employee; b.company; b.vehicle ])

let test_intervals_disjoint () =
  let b = Ps.base () in
  let subtree_ivs =
    List.map (fun r -> Encoding.subtree_interval b.enc r) (Schema.roots b.schema)
  in
  let sorted = List.sort compare subtree_ivs in
  let rec disjoint = function
    | (_, hi) :: ((lo2, _) :: _ as rest) ->
        if hi > lo2 then Alcotest.fail "root subtrees overlap";
        disjoint rest
    | [ _ ] | [] -> ()
  in
  disjoint sorted;
  (* an exact interval sits inside the subtree interval, before children *)
  let slo, shi = Encoding.subtree_interval b.enc b.vehicle in
  let elo, ehi = Encoding.exact_interval b.enc b.vehicle in
  Alcotest.(check bool) "exact inside subtree" true (slo <= elo && ehi <= shi);
  let clo, _ = Encoding.exact_interval b.enc b.automobile in
  Alcotest.(check bool) "own entries before children" true (ehi <= clo)

let test_evolution_child () =
  let b = Ps.base () in
  let n0 = Schema.class_count b.schema in
  let sports =
    Schema.add_class b.schema ~parent:b.automobile ~name:"SportsCar" ~attrs:[]
  in
  Encoding.assign_new_class b.enc sports;
  Alcotest.(check int) "one more class" (n0 + 1) (Schema.class_count b.schema);
  let code = Encoding.code b.enc sports in
  Alcotest.(check bool) "under automobile" true
    (Code.is_ancestor ~ancestor:(Encoding.code b.enc b.automobile) code);
  Alcotest.(check bool) "distinct from compact" false
    (Code.equal code (Encoding.code b.enc b.compact));
  Alcotest.check_raises "double assignment"
    (Invalid_argument "Encoding.assign_new_class: class already encoded")
    (fun () -> Encoding.assign_new_class b.enc sports)

let test_evolution_new_root_constrained () =
  let b = Ps.base () in
  (* a new root that references Company must code after Company's root *)
  let dealer =
    Schema.add_class b.schema ~name:"Dealer"
      ~attrs:[ ("franchise_of", Schema.Ref b.company) ]
  in
  Encoding.assign_new_class b.enc dealer;
  Alcotest.(check bool) "after company" true
    (Code.compare (Encoding.code b.enc b.company) (Encoding.code b.enc dealer) < 0);
  (* and one that is referenced by Vehicle-hierarchy classes must come
     before Vehicle *)
  let engine = Schema.add_class b.schema ~name:"Engine" ~attrs:[] in
  Schema.add_attr b.schema b.vehicle "engine" (Schema.Ref engine);
  Encoding.assign_new_class b.enc engine;
  Alcotest.(check bool) "before vehicle" true
    (Code.compare (Encoding.code b.enc engine) (Encoding.code b.enc b.vehicle) < 0)

let test_cycle_detection () =
  let s = Schema.create () in
  let a = Schema.add_class s ~name:"A" ~attrs:[] in
  let b = Schema.add_class s ~name:"B" ~attrs:[ ("to_a", Schema.Ref a) ] in
  Schema.add_attr s a "to_b" (Schema.Ref b);
  (match Encoding.assign s with
  | exception Encoding.Cycle cyc ->
      Alcotest.(check (list string)) "cycle members" [ "A"; "B" ]
        (List.sort compare cyc)
  | _ -> Alcotest.fail "expected Cycle");
  (* partitioning the edges yields acyclic groups, each encodable *)
  let groups =
    Graph.partition_acyclic
      (List.map (fun (src, _, dst) -> (src, dst)) (Schema.ref_edges s))
  in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  List.iter (fun g -> ignore (Encoding.assign ~ref_edges:g s)) groups

let test_graph_toposort () =
  Alcotest.(check bool) "simple order" true
    (Graph.toposort ~nodes:[ 1; 2; 3 ] ~edges:[ (3, 1); (1, 2) ] = Ok [ 3; 1; 2 ]);
  (* stability: unconstrained nodes keep input order *)
  Alcotest.(check bool) "stable" true
    (Graph.toposort ~nodes:[ 5; 4; 3 ] ~edges:[] = Ok [ 5; 4; 3 ]);
  (match Graph.toposort ~nodes:[ 1; 2 ] ~edges:[ (1, 2); (2, 1) ] with
  | Error cyc -> Alcotest.(check (list int)) "cycle nodes" [ 1; 2 ] (List.sort compare cyc)
  | Ok _ -> Alcotest.fail "expected cycle");
  Alcotest.(check bool) "acyclic check" true
    (Graph.is_acyclic ~nodes:[ 1; 2 ] ~edges:[ (1, 2) ]);
  Alcotest.(check bool) "cyclic check" false
    (Graph.is_acyclic ~nodes:[ 1; 2 ] ~edges:[ (1, 2); (2, 1) ])

let prop_random_schema_preorder =
  (* random forests: code order always equals pre-order *)
  QCheck.Test.make ~count:60 ~name:"random schema: code order = pre-order"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_bound 100))
    (fun parents ->
      let s = Schema.create () in
      let ids =
        List.mapi
          (fun i p ->
            let parent =
              if i = 0 || p mod (i + 1) = i then None else Some (p mod i)
            in
            Schema.add_class s ?parent ~name:(Printf.sprintf "K%d" i) ~attrs:[])
          parents
      in
      ignore ids;
      let enc = Encoding.assign s in
      let pre = List.concat_map (Schema.subtree s) (Schema.roots s) in
      let by_code =
        List.sort
          (fun a b -> Code.compare (Encoding.code enc a) (Encoding.code enc b))
          pre
      in
      pre = by_code)

let prop_incremental_evolution =
  (* classes added one by one after the initial assignment must slot into
     the code order without disturbing it: pre-order = code order at every
     step (the Fig. 4 guarantee) *)
  QCheck.Test.make ~count:40 ~name:"incremental evolution keeps pre-order"
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 10) (int_bound 100))
        (list_of_size (QCheck.Gen.int_range 1 25) (int_bound 1000)))
    (fun (initial, additions) ->
      let s = Schema.create () in
      List.iteri
        (fun i p ->
          let parent = if i = 0 then None else Some (p mod i) in
          ignore (Schema.add_class s ?parent ~name:(Printf.sprintf "I%d" i) ~attrs:[]))
        initial;
      let enc = Encoding.assign s in
      let check_order () =
        let pre = List.concat_map (Schema.subtree s) (Schema.roots s) in
        let by_code =
          List.sort
            (fun a b -> Code.compare (Encoding.code enc a) (Encoding.code enc b))
            pre
        in
        pre = by_code
      in
      List.for_all
        (fun p ->
          let n = Schema.class_count s in
          let parent = if p mod 4 = 0 then None else Some (p mod n) in
          let id =
            Schema.add_class s ?parent ~name:(Printf.sprintf "A%d" n) ~attrs:[]
          in
          Encoding.assign_new_class enc id;
          check_order ())
        additions)

let prop_interval_nesting =
  (* interval algebra over random schemas: exact intervals are disjoint
     across classes; subtree intervals nest exactly along ancestry; every
     exact interval sits inside its own subtree interval *)
  QCheck.Test.make ~count:60 ~name:"interval nesting & disjointness"
    QCheck.(list_of_size (QCheck.Gen.int_range 2 30) (int_bound 100))
    (fun parents ->
      let s = Schema.create () in
      List.iteri
        (fun i p ->
          let parent = if i = 0 || p mod 3 = 0 then None else Some (p mod i) in
          ignore
            (Schema.add_class s ?parent ~name:(Printf.sprintf "N%d" i) ~attrs:[]))
        parents;
      let enc = Encoding.assign s in
      let classes = Schema.all_classes s in
      let inside (lo1, hi1) (lo2, hi2) = lo2 <= lo1 && hi1 <= hi2 in
      let disjoint (lo1, hi1) (lo2, hi2) = hi1 <= lo2 || hi2 <= lo1 in
      List.for_all
        (fun a ->
          let ea = Encoding.exact_interval enc a
          and sa = Encoding.subtree_interval enc a in
          inside ea sa
          && List.for_all
               (fun b ->
                 if a = b then true
                 else
                   let eb = Encoding.exact_interval enc b
                   and sb = Encoding.subtree_interval enc b in
                   disjoint ea eb
                   &&
                   if Schema.is_subclass s ~sub:b ~super:a then inside sb sa
                   else if Schema.is_subclass s ~sub:a ~super:b then inside sa sb
                   else disjoint sa sb)
               classes)
        classes)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_schema_preorder; prop_incremental_evolution; prop_interval_nesting ]

let () =
  Alcotest.run "schema"
    [
      ( "schema",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "inheritance" `Quick test_inheritance;
          Alcotest.test_case "duplicate class" `Quick test_duplicate_class;
          Alcotest.test_case "refs" `Quick test_refs;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "paper order" `Quick test_paper_encoding_order;
          Alcotest.test_case "lookup" `Quick test_encoding_lookup;
          Alcotest.test_case "path encodable" `Quick test_path_encodable;
          Alcotest.test_case "intervals" `Quick test_intervals_disjoint;
        ] );
      ( "evolution",
        [
          Alcotest.test_case "new subclass" `Quick test_evolution_child;
          Alcotest.test_case "new constrained root" `Quick
            test_evolution_new_root_constrained;
          Alcotest.test_case "cycles" `Quick test_cycle_detection;
        ] );
      ("graph", [ Alcotest.test_case "toposort" `Quick test_graph_toposort ]);
      ("properties", qsuite);
    ]
