(* Tests for the baseline index structures: CH-tree, H-tree, CG-tree,
   nested/path index, NIX.  The CG-tree — the paper's experimental
   comparator — additionally gets a randomized test against a reference
   model. *)

module Value = Objstore.Value
module Rng = Workload.Rng

let sorted = List.sort compare

(* a reference model: (value, cls) -> oid list *)
module Model = struct
  type t = (int * int, int list ref) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let insert m v cls oid =
    match Hashtbl.find_opt m (v, cls) with
    | Some r -> r := oid :: !r
    | None -> Hashtbl.add m (v, cls) (ref [ oid ])

  let remove m v cls oid =
    match Hashtbl.find_opt m (v, cls) with
    | Some r ->
        let rec remove_one = function
          | o :: rest when o = oid -> rest
          | o :: rest -> o :: remove_one rest
          | [] -> []
        in
        r := remove_one !r;
        if !r = [] then Hashtbl.remove m (v, cls)
    | None -> ()

  let exact m v sets =
    List.concat_map
      (fun cls ->
        match Hashtbl.find_opt m (v, cls) with
        | Some r -> List.map (fun o -> (cls, o)) !r
        | None -> [])
      sets
    |> sorted

  let range m lo hi sets =
    let out = ref [] in
    Hashtbl.iter
      (fun (v, cls) r ->
        if v >= lo && v <= hi && List.mem cls sets then
          out := List.map (fun o -> (cls, o)) !r @ !out)
      m;
    sorted !out
end

let classes = [ 0; 1; 2; 3; 4 ]

type ops = {
  insert : value:Value.t -> cls:int -> int -> unit;
  remove : value:Value.t -> cls:int -> int -> unit;
  exact : value:Value.t -> sets:int list -> (int * int) list;
  range : lo:Value.t -> hi:Value.t -> sets:int list -> (int * int) list;
  check : unit -> unit;
}

let randomized_against_model ~name ops =
  let rng = Rng.create 42 in
  let m = Model.create () in
  let next_oid = ref 1 in
  let live = ref [] in
  for step = 1 to 2000 do
    let v = Rng.int rng 30 in
    let cls = Rng.int rng (List.length classes) in
    if Rng.int rng 100 < 70 || !live = [] then begin
      let oid = !next_oid in
      incr next_oid;
      ops.insert ~value:(Value.Int v) ~cls oid;
      Model.insert m v cls oid;
      live := (v, cls, oid) :: !live
    end
    else begin
      let n = Rng.int rng (List.length !live) in
      let v, cls, oid = List.nth !live n in
      ops.remove ~value:(Value.Int v) ~cls oid;
      Model.remove m v cls oid;
      live := List.filter (fun x -> x <> (v, cls, oid)) !live
    end;
    if step mod 100 = 0 then begin
      ops.check ();
      let v = Rng.int rng 30 in
      let sets = [ 0; 2; 4 ] in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "%s exact @%d" name step)
        (Model.exact m v sets)
        (sorted (ops.exact ~value:(Value.Int v) ~sets));
      let lo = Rng.int rng 20 in
      let hi = lo + Rng.int rng 10 in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "%s range @%d" name step)
        (Model.range m lo hi sets)
        (sorted (ops.range ~lo:(Value.Int lo) ~hi:(Value.Int hi) ~sets))
    end
  done

let small_config page_size =
  { (Btree.default_config ~page_size) with max_entries = Some 8 }

let test_ch_tree_random () =
  let pager = Storage.Pager.create ~page_size:256 () in
  let t = Baselines.Ch_tree.create ~config:(small_config 256) pager in
  randomized_against_model ~name:"ch"
    {
      insert = Baselines.Ch_tree.insert t;
      remove = Baselines.Ch_tree.remove t;
      exact = Baselines.Ch_tree.exact t;
      range = Baselines.Ch_tree.range t;
      check = (fun () -> Btree.check (Baselines.Ch_tree.tree t));
    }

let test_h_tree_random () =
  let pager = Storage.Pager.create ~page_size:256 () in
  let t = Baselines.H_tree.create ~config:(small_config 256) pager ~classes in
  randomized_against_model ~name:"h"
    {
      insert = Baselines.H_tree.insert t;
      remove = Baselines.H_tree.remove t;
      exact = Baselines.H_tree.exact t;
      range = Baselines.H_tree.range t;
      check = (fun () -> ());
    }

let test_cg_tree_random () =
  let pager = Storage.Pager.create ~page_size:256 () in
  let t = Baselines.Cg_tree.create ~config:(small_config 256) pager in
  randomized_against_model ~name:"cg"
    {
      insert = Baselines.Cg_tree.insert t;
      remove = Baselines.Cg_tree.remove t;
      exact = Baselines.Cg_tree.exact t;
      range = Baselines.Cg_tree.range t;
      check = (fun () -> Baselines.Cg_tree.check t);
    }

let test_cg_tree_large_runs () =
  (* oversized runs must chop into continuation pages and survive removal *)
  let pager = Storage.Pager.create ~page_size:128 () in
  let t = Baselines.Cg_tree.create pager in
  for oid = 1 to 200 do
    Baselines.Cg_tree.insert t ~value:(Value.Int 7) ~cls:0 oid
  done;
  Baselines.Cg_tree.check t;
  let got = Baselines.Cg_tree.exact t ~value:(Value.Int 7) ~sets:[ 0 ] in
  Alcotest.(check int) "all oids back" 200 (List.length got);
  for oid = 1 to 150 do
    Baselines.Cg_tree.remove t ~value:(Value.Int 7) ~cls:0 oid
  done;
  Baselines.Cg_tree.check t;
  let got = Baselines.Cg_tree.exact t ~value:(Value.Int 7) ~sets:[ 0 ] in
  Alcotest.(check (list (pair int int)))
    "tail remains"
    (List.init 50 (fun i -> (0, 151 + i)))
    (sorted got)

let test_cg_set_grouping () =
  (* range queries on one set must not pay for the other sets' pages *)
  let pager = Storage.Pager.create ~page_size:256 () in
  let t = Baselines.Cg_tree.create pager in
  for v = 0 to 99 do
    List.iter
      (fun cls ->
        Baselines.Cg_tree.insert t ~value:(Value.Int v) ~cls ((cls * 1000) + v))
      classes
  done;
  Baselines.Cg_tree.check t;
  let stats = Storage.Pager.stats pager in
  let reads f =
    Storage.Stats.reset stats;
    let r = f () in
    (r, stats.reads)
  in
  let one_set, r1 =
    reads (fun () ->
        Baselines.Cg_tree.range t ~lo:(Value.Int 10) ~hi:(Value.Int 60)
          ~sets:[ 2 ])
  in
  let all_sets, r5 =
    reads (fun () ->
        Baselines.Cg_tree.range t ~lo:(Value.Int 10) ~hi:(Value.Int 60)
          ~sets:classes)
  in
  Alcotest.(check int) "one set result" 51 (List.length one_set);
  Alcotest.(check int) "five sets result" 255 (List.length all_sets);
  if r5 < 2 * r1 then
    Alcotest.failf "5-set range (%d reads) should cost much more than 1-set (%d)"
      r5 r1

let test_path_index () =
  let pager = Storage.Pager.create () in
  let t = Baselines.Path_index.create pager Path in
  (* the paper's example: (Age,50) -> vehicles with company/president *)
  Baselines.Path_index.insert t ~value:(Value.Int 50) ~head:101 ~inner:[ 11; 1 ];
  Baselines.Path_index.insert t ~value:(Value.Int 50) ~head:102 ~inner:[ 11; 1 ];
  Baselines.Path_index.insert t ~value:(Value.Int 50) ~head:103 ~inner:[ 12; 2 ];
  Baselines.Path_index.insert t ~value:(Value.Int 60) ~head:104 ~inner:[ 13; 3 ];
  Alcotest.(check (list int)) "exact heads" [ 101; 102; 103 ]
    (Baselines.Path_index.exact t ~value:(Value.Int 50));
  Alcotest.(check (list int)) "range heads" [ 101; 102; 103; 104 ]
    (Baselines.Path_index.range t ~lo:(Value.Int 50) ~hi:(Value.Int 60));
  (* in-path restriction: only company 11 *)
  Alcotest.(check (list int)) "restricted" [ 101; 102 ]
    (Baselines.Path_index.exact_restricted t ~value:(Value.Int 50)
       ~pred:(fun inner -> List.hd inner = 11));
  Baselines.Path_index.remove t ~value:(Value.Int 50) ~head:102 ~inner:[ 11; 1 ];
  Alcotest.(check (list int)) "after remove" [ 101; 103 ]
    (Baselines.Path_index.exact t ~value:(Value.Int 50));
  (* nested variant drops the inner info *)
  let n = Baselines.Path_index.create pager Nested in
  Baselines.Path_index.insert n ~value:(Value.Int 50) ~head:101 ~inner:[ 11; 1 ];
  Alcotest.(check (list int)) "nested heads" [ 101 ]
    (Baselines.Path_index.exact n ~value:(Value.Int 50));
  Alcotest.check_raises "nested has no paths"
    (Invalid_argument "Path_index.exact_paths: nested variant has no path records")
    (fun () -> ignore (Baselines.Path_index.exact_paths n ~value:(Value.Int 50)))

let test_nix () =
  let pager = Storage.Pager.create () in
  let t = Baselines.Nix.create pager ~classes:[ 0; 1; 2 ] in
  (* chains target-first: employee(cls 0), company(cls 1), vehicle(cls 2) *)
  Baselines.Nix.insert_chain t ~value:(Value.Int 50) [ (0, 1); (1, 11); (2, 101) ];
  Baselines.Nix.insert_chain t ~value:(Value.Int 50) [ (0, 1); (1, 11); (2, 102) ];
  Baselines.Nix.insert_chain t ~value:(Value.Int 60) [ (0, 2); (1, 12); (2, 103) ];
  Alcotest.(check (list (pair int int)))
    "all classes at 50"
    [ (0, 1); (1, 11); (2, 101); (2, 102) ]
    (sorted (Baselines.Nix.exact t ~value:(Value.Int 50) ~sets:[ 0; 1; 2 ]));
  Alcotest.(check (list (pair int int)))
    "companies in range"
    [ (1, 11); (1, 12) ]
    (sorted
       (Baselines.Nix.range t ~lo:(Value.Int 50) ~hi:(Value.Int 60) ~sets:[ 1 ]));
  (* auxiliary parent links *)
  Alcotest.(check (list int)) "employee 1's parents" [ 11; 11 ]
    (Baselines.Nix.parents t ~cls:0 1);
  Alcotest.(check (list int)) "company 11's parents" [ 101; 102 ]
    (Baselines.Nix.parents t ~cls:1 11);
  Baselines.Nix.remove_chain t ~value:(Value.Int 50) [ (0, 1); (1, 11); (2, 101) ];
  Alcotest.(check (list (pair int int)))
    "after removal"
    [ (0, 1); (1, 11); (2, 102) ]
    (sorted (Baselines.Nix.exact t ~value:(Value.Int 50) ~sets:[ 0; 1; 2 ]));
  Alcotest.(check (list int)) "parent link dropped" [ 102 ]
    (Baselines.Nix.parents t ~cls:1 11)

let test_string_values () =
  (* the baselines index string attributes too (colors in experiment 1) *)
  let pager = Storage.Pager.create ~page_size:256 () in
  let ch = Baselines.Ch_tree.create pager in
  let colors = [| "Blue"; "Green"; "Red"; "White" |] in
  Array.iteri
    (fun i c ->
      Baselines.Ch_tree.insert ch ~value:(Value.Str c) ~cls:(i mod 2) (100 + i))
    colors;
  Alcotest.(check (list (pair int int)))
    "exact str" [ (0, 102) ]
    (Baselines.Ch_tree.exact ch ~value:(Value.Str "Red") ~sets:[ 0; 1 ]);
  Alcotest.(check (list (pair int int)))
    "range str"
    [ (0, 100); (1, 101); (0, 102) ]
    (Baselines.Ch_tree.range ch ~lo:(Value.Str "Blue") ~hi:(Value.Str "Red")
       ~sets:[ 0; 1 ]);
  let cg = Baselines.Cg_tree.create (Storage.Pager.create ~page_size:256 ()) in
  Array.iteri
    (fun i c ->
      Baselines.Cg_tree.insert cg ~value:(Value.Str c) ~cls:(i mod 2) (100 + i))
    colors;
  Baselines.Cg_tree.check cg;
  Alcotest.(check (list (pair int int)))
    "cg range str"
    [ (0, 100); (0, 102); (1, 101) ]
    (sorted
       (Baselines.Cg_tree.range cg ~lo:(Value.Str "Blue") ~hi:(Value.Str "Red")
          ~sets:[ 0; 1 ]))

let test_empty_structures () =
  let pager = Storage.Pager.create ~page_size:256 () in
  let ch = Baselines.Ch_tree.create pager in
  Alcotest.(check (list (pair int int))) "ch empty" []
    (Baselines.Ch_tree.exact ch ~value:(Value.Int 5) ~sets:[ 0 ]);
  Baselines.Ch_tree.remove ch ~value:(Value.Int 5) ~cls:0 7;
  let cg = Baselines.Cg_tree.create (Storage.Pager.create ~page_size:256 ()) in
  Alcotest.(check (list (pair int int))) "cg empty" []
    (Baselines.Cg_tree.range cg ~lo:(Value.Int 0) ~hi:(Value.Int 9) ~sets:[ 0; 1 ]);
  Baselines.Cg_tree.remove cg ~value:(Value.Int 5) ~cls:0 7;
  Baselines.Cg_tree.check cg;
  (* querying sets that never got entries *)
  Baselines.Cg_tree.insert cg ~value:(Value.Int 5) ~cls:0 7;
  Alcotest.(check (list (pair int int))) "absent set" []
    (Baselines.Cg_tree.exact cg ~value:(Value.Int 5) ~sets:[ 3 ])

(* randomized path-index and NIX checks against a simple model *)
let prop_path_index_model =
  QCheck.Test.make ~count:30 ~name:"path index behaves like a value multimap"
    QCheck.(list (tup3 (int_bound 2) (int_bound 15) (int_bound 50)))
    (fun ops ->
      let pager = Storage.Pager.create ~page_size:256 () in
      let t = Baselines.Path_index.create pager Baselines.Path_index.Path in
      let model : (int, (int * int list) list ref) Hashtbl.t = Hashtbl.create 8 in
      let get v =
        match Hashtbl.find_opt model v with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add model v r;
            r
      in
      List.iter
        (fun (op, v, head) ->
          let inner = [ head + 1000; head + 2000 ] in
          if op < 2 then begin
            Baselines.Path_index.insert t ~value:(Value.Int v) ~head ~inner;
            let r = get v in
            r := (head, inner) :: !r
          end
          else begin
            Baselines.Path_index.remove t ~value:(Value.Int v) ~head ~inner;
            let r = get v in
            let rec drop = function
              | x :: rest when x = (head, inner) -> rest
              | x :: rest -> x :: drop rest
              | [] -> []
            in
            r := drop !r
          end)
        ops;
      Hashtbl.fold
        (fun v r acc ->
          acc
          && List.sort_uniq compare (List.map fst !r)
             = Baselines.Path_index.exact t ~value:(Value.Int v))
        model true)

let prop_nix_model =
  QCheck.Test.make ~count:30 ~name:"nix exact agrees with inserted chains"
    QCheck.(list (tup3 (int_bound 9) (int_bound 20) bool))
    (fun ops ->
      let pager = Storage.Pager.create ~page_size:256 () in
      let t = Baselines.Nix.create pager ~classes:[ 0; 1; 2 ] in
      let live = ref [] in
      List.iter
        (fun (v, o, add) ->
          let chain = [ (0, o); (1, o + 100); (2, o + 200) ] in
          if add || not (List.mem (v, chain) !live) then begin
            Baselines.Nix.insert_chain t ~value:(Value.Int v) chain;
            live := (v, chain) :: !live
          end
          else begin
            Baselines.Nix.remove_chain t ~value:(Value.Int v) chain;
            let rec drop = function
              | x :: rest when x = (v, chain) -> rest
              | x :: rest -> x :: drop rest
              | [] -> []
            in
            live := drop !live
          end)
        ops;
      List.for_all
        (fun v ->
          let expect =
            List.filter (fun (v', _) -> v' = v) !live
            |> List.concat_map (fun (_, ch) -> ch)
            |> List.sort_uniq compare
          in
          sorted (Baselines.Nix.exact t ~value:(Value.Int v) ~sets:[ 0; 1; 2 ])
          = expect)
        (List.init 10 Fun.id))

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_path_index_model; prop_nix_model ]

let () =
  Alcotest.run "baselines"
    [
      ( "randomized-vs-model",
        [
          Alcotest.test_case "ch-tree" `Quick test_ch_tree_random;
          Alcotest.test_case "h-tree" `Quick test_h_tree_random;
          Alcotest.test_case "cg-tree" `Quick test_cg_tree_random;
        ] );
      ( "cg-tree",
        [
          Alcotest.test_case "continuation chunks" `Quick test_cg_tree_large_runs;
          Alcotest.test_case "set grouping" `Quick test_cg_set_grouping;
        ] );
      ("path-index", [ Alcotest.test_case "nested & path" `Quick test_path_index ]);
      ("nix", [ Alcotest.test_case "primary & auxiliary" `Quick test_nix ]);
      ( "robustness",
        [
          Alcotest.test_case "string values" `Quick test_string_values;
          Alcotest.test_case "empty structures" `Quick test_empty_structures;
        ] );
      ("properties", qsuite);
    ]
