(* Interleaved fault families: the crash schedules of the recovery suite
   (group commits cut down at a random physical write) composed with the
   media damage of the corruption suite (bit rot, zeroed pages, truncated
   files inflicted on the recovered file).

   Per case: run a randomized group-commit schedule against a file-backed
   index, crash it mid-write, recover ({!Pager.recover_status} — the
   verdicts behind the CLI's 0/3 exit codes), then rot the recovered file
   and demand the two safety properties hold through the composition:

   - reading the rotten file yields a legal recovery state (a whole
     group-commit boundary) or raises [Storage_error.Corruption] — never
     a silently wrong tree;
   - {!Verify.salvage} rebuilds from the surviving store without reading
     a single damaged page, and the salvaged index answers queries
     byte-identically to a fresh build from the same store. *)

module Pager = Storage.Pager
module Err = Storage.Storage_error
module Rng = Workload.Rng
module Dg = Workload.Datagen
module Index = Uindex.Index
module Verify = Uindex.Verify
module Query = Uindex.Query
module Exec = Uindex.Exec
module Db = Uindex.Db
module Value = Objstore.Value
module Smap = Map.Make (String)

let with_temp_pages f =
  let path = Filename.temp_file "uindex_faultmix" ".pages" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; Pager.journal_path path ])
    (fun () -> f path)

type gc_step = { g_ops : int; g_sync : bool }

let gen_schedule rng =
  let n = 6 + Rng.int rng 10 in
  List.init n (fun _ ->
      { g_ops = 1 + Rng.int rng 4; g_sync = Rng.int rng 3 = 0 })

let tree_contents t =
  let out = ref Smap.empty in
  Btree.iter t (fun e -> out := Smap.add e.Btree.key (e.value ()) !out);
  !out

let index_contents idx = tree_contents (Index.tree idx)

(* the group-commit workload of the recovery suite, returning the store
   it mutated so the salvage stage can rebuild from it *)
let run_workload ~path ~seed ~plan ~fault =
  let e = Dg.exp1 ~n_vehicles:40 ~n_companies:10 ~n_employees:5 ~seed () in
  let b = e.ext.b in
  let pager = Pager.create_file ~page_size:512 path in
  let idx =
    Index.create_class_hierarchy pager b.enc ~root:b.vehicle ~attr:"color"
  in
  let db = Db.create e.store in
  Db.add_index db idx;
  Db.sync db;
  let setup_writes = Pager.physical_writes pager in
  (match fault with
  | Some spec -> ignore (Pager.create_faulty spec pager)
  | None -> ());
  let durable_model = ref (index_contents idx) in
  let attempted = ref !durable_model in
  let rng = Rng.create (seed + 7919) in
  let oids = ref [] in
  let counter = ref 0 in
  let apply_op () =
    incr counter;
    match !oids with
    | o :: rest when Rng.int rng 6 = 0 ->
        oids := rest;
        Db.delete db o
    | _ ->
        let oid =
          Db.insert db ~cls:b.vehicle
            [ ("color", Value.Str (Printf.sprintf "fm-%04d" !counter)) ]
        in
        oids := oid :: !oids
  in
  let outcome =
    match
      List.iter
        (fun step ->
          for _ = 1 to step.g_ops do
            apply_op ()
          done;
          if step.g_sync then begin
            attempted := index_contents idx;
            ignore (Db.commit db : int);
            durable_model := !attempted
          end
          else ignore (Db.commit ~mode:`Async db : int))
        plan;
      attempted := index_contents idx;
      Db.sync db;
      durable_model := !attempted;
      Pager.close pager
    with
    | () -> `Completed
    | exception Pager.Fault _ ->
        (try Pager.close pager with Pager.Fault _ -> ());
        `Crashed
  in
  ( outcome,
    e,
    !durable_model,
    !attempted,
    setup_writes,
    Pager.physical_writes pager )

let canon (o : Exec.outcome) =
  List.sort compare
    (List.map (fun bd -> (bd.Exec.value, bd.Exec.comps)) o.Exec.bindings)

let queries e =
  let b = e.Dg.ext.Workload.Paper_schema.b in
  [
    Query.class_hierarchy ~value:Query.V_any
      (Query.P_subtree b.Workload.Paper_schema.vehicle);
    Query.class_hierarchy
      ~value:(Query.V_eq (Value.Str "fm-0001"))
      (Query.P_subtree b.Workload.Paper_schema.vehicle);
  ]

(* answers from a throwaway index built fresh from [store] — the ground
   truth salvage must reproduce *)
let fresh_answers e =
  let b = e.Dg.ext.Workload.Paper_schema.b in
  let idx =
    Index.create_class_hierarchy (Pager.create ())
      b.Workload.Paper_schema.enc ~root:b.Workload.Paper_schema.vehicle
      ~attr:"color"
  in
  Index.build idx e.Dg.store;
  List.map (fun q -> canon (Exec.run idx q ~algo:`Parallel)) (queries e)

let prop_faultmix =
  QCheck.Test.make ~count:250
    ~name:"crash + media rot: boundary state or Corruption, salvage restores"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let plan = gen_schedule rng in
      let torn = Rng.int rng 2 = 0 in
      let setup_writes, total_writes =
        with_temp_pages (fun path ->
            match run_workload ~path ~seed ~plan ~fault:None with
            | `Completed, _, _, _, w0, w -> (w0, w)
            | `Crashed, _, _, _, _, _ ->
                QCheck.Test.fail_report "clean run crashed")
      in
      if total_writes <= setup_writes then
        QCheck.Test.fail_report "schedule flushed nothing";
      let fail_at =
        setup_writes + 1 + Rng.int rng (total_writes - setup_writes)
      in
      let crash = { Pager.no_faults with fail_write = Some fail_at; torn } in
      with_temp_pages (fun path ->
          let outcome, e, durable_model, attempted, _, _ =
            run_workload ~path ~seed ~plan ~fault:(Some crash)
          in
          if outcome <> `Crashed then
            QCheck.Test.fail_reportf "fault at write %d/%d never fired"
              fail_at total_writes;
          (* recover: the CLI's exit codes 0 (No_journal/Replayed) and 3
             (Discarded_torn) come from exactly this verdict *)
          (match Pager.recover_status path with
          | Pager.No_journal | Pager.Replayed | Pager.Discarded_torn -> ());
          if Sys.file_exists (Pager.journal_path path) then
            QCheck.Test.fail_report "journal survived recovery";
          (* now rot the recovered file: pick a live page to damage *)
          let live =
            let p = Pager.open_file path in
            let ids = ref [] in
            for id = 0 to 63 do
              match Pager.read p id with
              | _ -> ids := id :: !ids
              | exception Invalid_argument _ -> ()
              | exception Err.Corruption _ -> ids := id :: !ids
            done;
            Pager.close p;
            !ids
          in
          if live = [] then QCheck.Test.fail_report "no live pages recovered";
          let pick l = List.nth l (Rng.int rng (List.length l)) in
          let media =
            match Rng.int rng 4 with
            | 0 -> [] (* pure crash, no rot *)
            | 1 ->
                [ Pager.Flip_bit { page = pick live; bit = Rng.int rng (512 * 8) } ]
            | 2 -> [ Pager.Zero_page { page = pick live } ]
            | _ -> [ Pager.Truncate_file { keep = 1 + Rng.int rng (List.length live) } ]
          in
          (* property 1: the rotten file reads as a legal recovery state
             or raises typed Corruption — never a silent wrong tree *)
          (match
             let p = Pager.open_file path in
             ignore (Pager.create_faulty { Pager.no_faults with media } p);
             Fun.protect
               ~finally:(fun () ->
                 try Pager.close p with Err.Corruption _ -> ())
               (fun () -> tree_contents (Btree.reattach p))
           with
          | got ->
              if not (Smap.equal String.equal got durable_model) then
                if not (Smap.equal String.equal got attempted) then
                  QCheck.Test.fail_reportf
                    "rotten file read back %d entries: neither the \
                     watermark state (%d) nor the in-flight group (%d)"
                    (Smap.cardinal got)
                    (Smap.cardinal durable_model)
                    (Smap.cardinal attempted)
          | exception Err.Corruption _ -> ()
          | exception Invalid_argument _ ->
              (* Truncate_file can leave reads beyond the new bound *)
              if media = [] then
                QCheck.Test.fail_report "clean reattach raised Invalid_argument");
          (* property 2: salvage never reads the damaged pages — it must
             succeed and answer byte-identically to a fresh build from
             the surviving store, however badly the file is rotten *)
          let b = e.Dg.ext.Workload.Paper_schema.b in
          let desc =
            Index.create_class_hierarchy (Pager.create ())
              b.Workload.Paper_schema.enc
              ~root:b.Workload.Paper_schema.vehicle ~attr:"color"
          in
          let salvaged =
            Verify.salvage desc e.Dg.store (Pager.create ())
          in
          let report = Verify.check ~store:e.Dg.store salvaged in
          if not report.Verify.ok then
            QCheck.Test.fail_report "salvaged index does not verify";
          let expected = fresh_answers e in
          List.iter2
            (fun q want ->
              if canon (Exec.run salvaged q ~algo:`Parallel) <> want then
                QCheck.Test.fail_report
                  "salvaged index answers differ from a fresh build")
            (queries e) expected;
          true))

let () =
  Alcotest.run "faultmix"
    [
      ( "crash x media",
        [ QCheck_alcotest.to_alcotest prop_faultmix ] );
    ]
