(* EXPLAIN ANALYZE accounting tests: the span tree must agree exactly with
   the independent oracle — the pager's own read counter — and the
   instrumentation must not change what queries cost or return.  Also
   covers the per-query isolation of Stats.diff accounting, the buffer
   pool's mirrored counters, and the journal counters under crash
   recovery. *)

module Dg = Workload.Datagen
module Qg = Workload.Querygen
module Value = Objstore.Value
module Query = Uindex.Query
module Index = Uindex.Index
module Exec = Uindex.Exec
module Stats = Storage.Stats
module Pager = Storage.Pager
module Metrics = Obs.Metrics
module Trace = Obs.Trace

let small =
  lazy
    (Dg.exp2
       {
         (Dg.default_exp2 ~n_classes:12 ~distinct_keys:40) with
         n_objects = 5_000;
         seed = 8;
       })

let q_of ~lo ~hi ~sets =
  let value =
    if lo = hi then Query.V_eq (Value.Int lo)
    else Query.V_range (Some (Value.Int lo), Some (Value.Int hi))
  in
  Query.class_hierarchy ~value (Qg.union_of_classes sets)

let random_query d rng =
  let k = 1 + Workload.Rng.int rng 12 in
  let sets = Qg.pick_sets rng Qg.Random ~classes:d.Dg.classes ~k in
  let lo = Workload.Rng.int rng 40 in
  let hi = min 39 (lo + Workload.Rng.int rng 8) in
  q_of ~lo ~hi:(max lo hi) ~sets

(* the acceptance property: for both algorithms, the span tree's summed
   page reads equal the outcome's count AND the pager-stats delta *)
let test_analyze_matches_oracle () =
  let d = Lazy.force small in
  let stats = Pager.stats (Btree.pager (Index.tree d.uindex)) in
  let rng = Workload.Rng.create 42 in
  for _ = 1 to 25 do
    let q = random_query d rng in
    List.iter
      (fun algo ->
        let before = Stats.snapshot stats in
        let o, sp = Exec.analyze ~algo d.uindex q in
        let oracle =
          (Stats.diff ~before ~after:(Stats.snapshot stats)).Stats.reads
        in
        Alcotest.(check int) "outcome = oracle" oracle o.Exec.page_reads;
        Alcotest.(check int) "span tree = oracle" oracle
          (Trace.total sp "page_reads");
        Alcotest.(check int) "span entries = scanned" o.Exec.entries_scanned
          (Trace.total sp "entries");
        Alcotest.(check (option int)) "root binding count"
          (Some (List.length o.Exec.bindings))
          (Trace.field sp "bindings"))
      [ `Forward; `Parallel ]
  done

(* the same oracle reconciliation with a shared buffer pool attached:
   pool hits never reach the pager, so the span tree must still sum to
   the pager-stats delta exactly, with the hits accounted separately —
   [Trace.total sp "pool_hits"] = the outcome's pool-hit count = the
   Stats.pool_hits delta.  Warm runs must actually hit. *)
let test_analyze_matches_oracle_pooled () =
  let d = Lazy.force small in
  let stats = Pager.stats (Btree.pager (Index.tree d.uindex)) in
  Index.set_cache_pages d.uindex 64;
  Fun.protect
    ~finally:(fun () -> Index.set_cache_pages d.uindex 0)
    (fun () ->
      let rng = Workload.Rng.create 43 in
      let warm_hits = ref 0 in
      for _ = 1 to 25 do
        let q = random_query d rng in
        List.iter
          (fun algo ->
            (* run twice: the second pass sees a warm pool *)
            ignore (Exec.run ~algo d.uindex q);
            let before = Stats.snapshot stats in
            let o, sp = Exec.analyze ~algo d.uindex q in
            let delta = Stats.diff ~before ~after:(Stats.snapshot stats) in
            Alcotest.(check int) "outcome = oracle" delta.Stats.reads
              o.Exec.page_reads;
            Alcotest.(check int) "span tree = oracle" delta.Stats.reads
              (Trace.total sp "page_reads");
            Alcotest.(check int) "outcome hits = stats delta"
              delta.Stats.pool_hits o.Exec.pool_hits;
            Alcotest.(check int) "span hits = outcome hits" o.Exec.pool_hits
              (Trace.total sp "pool_hits");
            warm_hits := !warm_hits + o.Exec.pool_hits)
          [ `Forward; `Parallel ]
      done;
      Alcotest.(check bool) "warm runs hit the pool" true (!warm_hits > 0))

let test_analyze_same_answers () =
  (* analyze is the same execution, just narrated: identical results and
     identical costs to the untraced run *)
  let d = Lazy.force small in
  let rng = Workload.Rng.create 7 in
  for _ = 1 to 10 do
    let q = random_query d rng in
    List.iter
      (fun algo ->
        let o = Exec.run ~algo d.uindex q in
        let o', _ = Exec.analyze ~algo d.uindex q in
        Alcotest.(check (list int)) "same bindings" (Exec.head_oids o)
          (Exec.head_oids o');
        Alcotest.(check int) "same page reads" o.Exec.page_reads
          o'.Exec.page_reads;
        Alcotest.(check int) "same entries" o.Exec.entries_scanned
          o'.Exec.entries_scanned)
      [ `Forward; `Parallel ]
  done

let test_span_shape () =
  let d = Lazy.force small in
  (* an enumerable multi-point query forces several descents *)
  let q =
    Query.class_hierarchy
      ~value:(V_in [ Value.Int 7; Value.Int 21; Value.Int 33 ])
      (Qg.union_of_classes [ d.Dg.classes.(2); d.Dg.classes.(5) ])
  in
  let _, sp = Exec.analyze ~algo:`Parallel d.uindex q in
  Alcotest.(check string) "root named after algo" "parallel" sp.Trace.name;
  let names = List.map (fun (s : Trace.span) -> s.Trace.name) sp.Trace.children in
  Alcotest.(check bool) "plan span first" true (List.hd names = "plan");
  Alcotest.(check bool) "merge span last" true
    (List.nth names (List.length names - 1) = "merge");
  let descents = List.filter (( = ) "descent") names in
  Alcotest.(check bool) "several descent segments" true
    (List.length descents >= 2);
  (* the forward scan of the same query has exactly one descent + one scan *)
  let _, sp = Exec.analyze ~algo:`Forward d.uindex q in
  Alcotest.(check (list string)) "forward shape"
    [ "plan"; "descent"; "scan"; "merge" ]
    (List.map (fun (s : Trace.span) -> s.Trace.name) sp.Trace.children)

let test_global_sink_emission () =
  let d = Lazy.force small in
  let q = q_of ~lo:5 ~hi:9 ~sets:(Array.to_list d.Dg.classes) in
  let o, spans =
    Trace.with_collector (fun () -> Exec.parallel d.uindex q)
  in
  match spans with
  | [ sp ] ->
      Alcotest.(check int) "emitted span = outcome" o.Exec.page_reads
        (Trace.total sp "page_reads")
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* satellite: Stats.diff gives per-query isolation without resets — interleaved
   queries and repeated runs never contaminate each other's counts *)
let test_per_query_isolation () =
  let d = Lazy.force small in
  let q1 = q_of ~lo:5 ~hi:9 ~sets:(Array.to_list d.Dg.classes) in
  let q2 = q_of ~lo:0 ~hi:39 ~sets:(Array.to_list d.Dg.classes) in
  let first = Exec.parallel d.uindex q1 in
  (* burn a lot of reads with other traffic, both algorithms *)
  ignore (Exec.forward d.uindex q2);
  ignore (Exec.parallel d.uindex q2);
  ignore (Btree.length (Index.tree d.uindex));
  let again = Exec.parallel d.uindex q1 in
  Alcotest.(check int) "same cost after unrelated traffic"
    first.Exec.page_reads again.Exec.page_reads;
  let f1 = Exec.forward d.uindex q1 in
  let f2 = Exec.forward d.uindex q1 in
  Alcotest.(check int) "forward repeatable" f1.Exec.page_reads f2.Exec.page_reads

(* satellite: buffer-pool hits/misses/evictions mirror into the pager's
   Stats.t and show up in Stats.pp *)
let test_pool_counters_in_stats () =
  let pager = Pager.create ~page_size:256 () in
  let t = Btree.create pager in
  for i = 0 to 199 do
    Btree.insert t ~key:(Printf.sprintf "key%04d" i) ~value:"v"
  done;
  let stats = Pager.stats pager in
  let before = Stats.snapshot stats in
  Alcotest.(check int) "pool counters start at 0" 0
    (before.Stats.pool_hits + before.Stats.pool_misses
   + before.Stats.pool_evictions);
  let pool = Storage.Buffer_pool.create ~capacity:4 pager in
  Btree.iter t ~read:(Storage.Buffer_pool.read pool) (fun _ -> ());
  Btree.iter t ~read:(Storage.Buffer_pool.read pool) (fun _ -> ());
  let after = Stats.snapshot stats in
  Alcotest.(check int) "hits mirrored"
    (Storage.Buffer_pool.hits pool)
    (after.Stats.pool_hits - before.Stats.pool_hits);
  Alcotest.(check int) "misses mirrored"
    (Storage.Buffer_pool.misses pool)
    (after.Stats.pool_misses - before.Stats.pool_misses);
  Alcotest.(check int) "evictions mirrored"
    (Storage.Buffer_pool.evictions pool)
    (after.Stats.pool_evictions - before.Stats.pool_evictions);
  Alcotest.(check bool) "a tiny pool does evict" true
    (Storage.Buffer_pool.evictions pool > 0);
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i =
      i + n <= h && (String.sub haystack i n = needle || go (i + 1))
    in
    go 0
  in
  let rendered = Format.asprintf "%a" Stats.pp stats in
  List.iter
    (fun needle ->
      if not (contains rendered needle) then
        Alcotest.failf "missing %S in %s" needle rendered)
    [ "pool_hits"; "pool_misses"; "pool_evictions" ]

(* satellite: journal replay / torn-commit discard increment the registry
   counters.  Deterministic crash points via write-fault injection: the
   last physical write of a sync lands in the checkpoint phase (journal
   already committed -> replay); the first lands in the journal phase
   (torn -> discard). *)
let test_journal_counters () =
  let dir = Filename.temp_file "uindex_obs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let jc name =
        Option.value ~default:0 (Metrics.find Metrics.default ("journal." ^ name))
      in
      let workload path fault =
        let pager = Pager.create_file ~page_size:256 path in
        let t = Btree.create pager in
        Btree.sync t;
        let w_setup = Pager.physical_writes pager in
        (match fault with
        | Some at ->
            ignore
              (Pager.create_faulty
                 { Pager.no_faults with fail_write = Some at }
                 pager)
        | None -> ());
        match
          for i = 0 to 60 do
            Btree.insert t ~key:(Printf.sprintf "k%03d" i) ~value:"v"
          done;
          Btree.sync t
        with
        | () ->
            let w_before = Pager.physical_writes pager in
            ignore w_before;
            Pager.close pager;
            (w_setup, Pager.physical_writes pager)
        | exception Pager.Fault _ ->
            (try Pager.close pager with Pager.Fault _ -> ());
            (w_setup, Pager.physical_writes pager)
      in
      (* clean run: learn the write schedule *)
      let clean = Filename.concat dir "clean.pages" in
      let w_setup, w_total = workload clean None in
      Alcotest.(check bool) "final sync does write" true (w_total > w_setup + 4);
      (* a clean file recovers without touching the journal counters *)
      let r0, t0 = (jc "replays", jc "torn_discarded") in
      Alcotest.(check bool) "no journal to replay" false (Pager.recover clean);
      Alcotest.(check int) "clean: replays unchanged" r0 (jc "replays");
      Alcotest.(check int) "clean: torn unchanged" t0 (jc "torn_discarded");
      (* crash on the very last write: the journal committed, the
         checkpoint did not finish -> recover replays it *)
      let committed = Filename.concat dir "committed.pages" in
      ignore (workload committed (Some w_total));
      let r0, n0, t0 = (jc "replays", jc "records_replayed", jc "torn_discarded") in
      Alcotest.(check bool) "committed journal replayed" true
        (Pager.recover committed);
      Alcotest.(check int) "replay counted" (r0 + 1) (jc "replays");
      Alcotest.(check bool) "records counted" true (jc "records_replayed" > n0);
      Alcotest.(check int) "no torn discard" t0 (jc "torn_discarded");
      (* crash on the first write of the final sync: the journal is torn
         -> recover discards it *)
      let torn = Filename.concat dir "torn.pages" in
      ignore (workload torn (Some (w_setup + 1)));
      let r0, t0 = (jc "replays", jc "torn_discarded") in
      Alcotest.(check bool) "torn journal not replayed" false (Pager.recover torn);
      Alcotest.(check int) "no replay" r0 (jc "replays");
      Alcotest.(check int) "torn discard counted" (t0 + 1) (jc "torn_discarded"))

let () =
  Alcotest.run "analyze"
    [
      ( "analyze",
        [
          Alcotest.test_case "span tree = pager oracle" `Quick
            test_analyze_matches_oracle;
          Alcotest.test_case "span tree = pager oracle (pooled)" `Quick
            test_analyze_matches_oracle_pooled;
          Alcotest.test_case "analyze = run" `Quick test_analyze_same_answers;
          Alcotest.test_case "span shape" `Quick test_span_shape;
          Alcotest.test_case "global sink emission" `Quick
            test_global_sink_emission;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "per-query isolation" `Quick
            test_per_query_isolation;
          Alcotest.test_case "buffer-pool counters in Stats" `Quick
            test_pool_counters_in_stats;
          Alcotest.test_case "journal counters" `Quick test_journal_counters;
        ] );
    ]
