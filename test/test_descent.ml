(* The compare-in-place descent (DESIGN.md §13) against the decoding
   reference implementation:

   - node-level property tests proving [Node.leaf_search] and
     [Node.child_in_place] agree with plain binary-search semantics over
     the decoded node, across adversarial key shapes (dup-heavy shared
     prefixes, prefix-of-each-other chains, long keys, front coding on
     and off);
   - a tree-level differential test proving fast and reference modes
     return byte-identical answers AND issue identical page reads with
     no cache attached;
   - an allocation assertion: a warm-pool point lookup allocates
     (almost) nothing on the minor heap;
   - scanner-reuse and memo-bound regressions. *)

let with_fast on f =
  let old = Btree.fast_descent () in
  Btree.set_fast_descent on;
  Fun.protect ~finally:(fun () -> Btree.set_fast_descent old) f

let mk ?(page_size = 256) ?max_entries ?(front_coding = true) () =
  let pager = Storage.Pager.create ~page_size () in
  let config =
    { (Btree.default_config ~page_size) with max_entries; front_coding }
  in
  Btree.create ~config pager

(* --- node-level: in-place search vs decoded reference --------------------- *)

(* independent re-statement of the search semantics, over decoded keys *)
let ref_lower_bound (keys : string array) probe =
  let n = Array.length keys in
  let i = ref 0 in
  while !i < n && String.compare keys.(!i) probe < 0 do
    incr i
  done;
  (!i, !i < n && keys.(!i) = probe)

(* child [i] holds keys [k] with [ikeys.(i-1) <= k < ikeys.(i)]: an equal
   separator sends the descent right *)
let ref_child (n : Btree.Node.internal) probe =
  let m = Array.length n.ikeys in
  let i = ref 0 in
  while !i < m && String.compare n.ikeys.(!i) probe <= 0 do
    incr i
  done;
  n.children.(!i)

(* adversarial key shapes: tiny alphabet (heavy shared prefixes), runs
   padded to hundreds of bytes (long keys, large suffix_len), and mixed
   printable tails *)
let key_gen =
  let open QCheck.Gen in
  let small_char = map (fun i -> Char.chr (Char.code 'a' + i)) (int_bound 2) in
  frequency
    [
      (5, string_size ~gen:small_char (int_range 1 8));
      ( 2,
        map2
          (fun a b -> a ^ b)
          (string_size ~gen:small_char (int_range 1 5))
          (string_size ~gen:printable (int_range 0 6)) );
      ( 1,
        map2
          (fun s n -> s ^ String.make n 'q')
          (string_size ~gen:small_char (int_range 1 4))
          (int_range 1 300) );
    ]

(* sorted unique keys, with the first key's whole prefix chain mixed in so
   front coding produces maximal-prefix entries *)
let keys_gen =
  let open QCheck.Gen in
  map
    (fun ks ->
      let ks = match ks with [] -> [ "k" ] | ks -> ks in
      let chain =
        match ks with
        | k :: _ -> List.init (String.length k) (fun i -> String.sub k 0 (i + 1))
        | [] -> []
      in
      Array.of_list (List.sort_uniq compare (chain @ ks)))
    (list_size (int_range 1 40) key_gen)

(* probes that land on, just before, just after, and inside every key *)
let probes_of keys =
  let mutate_last k delta =
    let n = String.length k in
    if n = 0 then k
    else
      String.mapi
        (fun i c -> if i = n - 1 then Char.chr ((Char.code c + delta) land 0xFF) else c)
        k
  in
  let per k =
    [
      k;
      k ^ "\x00";
      k ^ "zz";
      (if String.length k > 1 then String.sub k 0 (String.length k - 1) else "");
      mutate_last k 1;
      mutate_last k (-1);
    ]
  in
  "" :: String.make 310 'z' :: List.concat_map per (Array.to_list keys)

let leaf_of keys =
  let vals =
    Array.mapi
      (fun i k ->
        if i mod 7 = 3 then
          Btree.Node.Overflow { head = i + 2; length = 100_000 + i }
        else Btree.Node.Inline (Printf.sprintf "v%d:%s" i k))
      keys
  in
  Btree.Node.Leaf { lkeys = keys; lvals = vals; next = 42 }

let prop_leaf_search_matches_decode =
  QCheck.Test.make ~count:1000 ~name:"leaf_search = lower bound over decode"
    QCheck.(make (Gen.pair keys_gen Gen.bool))
    (fun (keys, front_coding) ->
      let node = leaf_of keys in
      let page_size = max 64 (Btree.Node.size ~front_coding node) in
      let b = Btree.Node.encode ~front_coding ~page_size node in
      let lvals =
        match node with Btree.Node.Leaf l -> l.lvals | _ -> assert false
      in
      List.for_all
        (fun probe ->
          let r = Btree.Node.leaf_search b probe in
          let i = Btree.Node.search_index r
          and exact = Btree.Node.search_exact r in
          let want_i, want_exact = ref_lower_bound keys probe in
          if i <> want_i || exact <> want_exact then
            QCheck.Test.fail_reportf
              "probe %S over %d keys (fc=%b): got (%d,%b), want (%d,%b)" probe
              (Array.length keys) front_coding i exact want_i want_exact;
          (* the packed offset must point at the entry's payload *)
          (if exact then
             let v =
               Btree.Node.leaf_value b
                 (Btree.Node.leaf_payload_off b (Btree.Node.search_off r))
             in
             if v <> lvals.(i) then
               QCheck.Test.fail_reportf "probe %S: payload at offset diverged"
                 probe);
          true)
        (probes_of keys))

let prop_child_matches_decode =
  QCheck.Test.make ~count:1000 ~name:"child_in_place = child index over decode"
    QCheck.(make (Gen.pair keys_gen Gen.bool))
    (fun (keys, front_coding) ->
      let children = Array.init (Array.length keys + 1) (fun i -> 100 + i) in
      let node = Btree.Node.Internal { ikeys = keys; children } in
      let page_size = max 64 (Btree.Node.size ~front_coding node) in
      let b = Btree.Node.encode ~front_coding ~page_size node in
      let dec =
        match Btree.Node.decode b with
        | Btree.Node.Internal n -> n
        | Btree.Node.Leaf _ -> assert false
      in
      List.for_all
        (fun probe ->
          let got = Btree.Node.child_in_place b probe in
          let want = ref_child dec probe in
          if got <> want then
            QCheck.Test.fail_reportf
              "probe %S over %d separators (fc=%b): child %d, want %d" probe
              (Array.length keys) front_coding got want;
          true)
        (probes_of keys))

(* --- tree-level differential: answers and page reads ---------------------- *)

(* keys with shared prefixes, a few hundred entries over many small pages,
   a couple of overflow values *)
let build_tree () =
  let t = mk ~page_size:256 ~max_entries:4 () in
  for i = 0 to 399 do
    let key = Printf.sprintf "grp%d/item%04d" (i mod 5) i in
    let value =
      if i mod 97 = 0 then String.make 3000 (Char.chr (65 + (i mod 26)))
      else Printf.sprintf "value-%d" i
    in
    Btree.insert t ~key ~value
  done;
  t

let tree_probes =
  List.init 450 (fun i -> Printf.sprintf "grp%d/item%04d" (i mod 7) i)

let run_mode t fast =
  with_fast fast @@ fun () ->
  let stats = Storage.Pager.stats (Btree.pager t) in
  Storage.Stats.reset stats;
  let finds = List.map (fun k -> Btree.find t k) tree_probes in
  let mems = List.map (fun k -> Btree.mem t k) tree_probes in
  let sc = Btree.Scanner.create t ~read:(Btree.raw_read t) in
  let scanned = ref [] in
  let note = function
    | None -> ()
    | Some (e : Btree.entry) -> scanned := (e.key, e.value ()) :: !scanned
  in
  List.iteri
    (fun i k ->
      if i mod 3 = 0 then begin
        note (Btree.Scanner.seek sc k);
        for _ = 1 to 6 do
          note (Btree.Scanner.next sc)
        done
      end)
    tree_probes;
  (* one full sweep through the leaf chain *)
  note (Btree.Scanner.seek sc "");
  let continue = ref true in
  while !continue do
    match Btree.Scanner.next sc with
    | Some e -> scanned := (e.key, e.value ()) :: !scanned
    | None -> continue := false
  done;
  (finds, mems, List.rev !scanned, stats.Storage.Stats.reads)

let test_differential () =
  let t = build_tree () in
  let f_finds, f_mems, f_scanned, f_reads = run_mode t true in
  let r_finds, r_mems, r_scanned, r_reads = run_mode t false in
  Alcotest.(check (list (option string))) "find answers" r_finds f_finds;
  Alcotest.(check (list bool)) "mem answers" r_mems f_mems;
  Alcotest.(check (list (pair string string))) "scanned entries" r_scanned
    f_scanned;
  (* no cache anywhere: both modes must fetch exactly the same pages *)
  Alcotest.(check int) "page reads identical" r_reads f_reads;
  if f_reads = 0 then Alcotest.fail "differential run issued no reads"

(* descents and node visits must also agree: the fast path reports the
   paper's metrics identically *)
let test_differential_metrics () =
  let t = build_tree () in
  let counters () =
    ( Option.value ~default:0 (Obs.Metrics.find Obs.Metrics.default "btree.descents"),
      Option.value ~default:0
        (Obs.Metrics.find Obs.Metrics.default "btree.node_visits") )
  in
  let delta fast =
    let d0, v0 = counters () in
    ignore (run_mode t fast);
    let d1, v1 = counters () in
    (d1 - d0, v1 - v0)
  in
  let fd, fv = delta true in
  let rd, rv = delta false in
  Alcotest.(check int) "descents" rd fd;
  Alcotest.(check int) "node visits" rv fv

(* --- allocation: warm-pool point lookups -------------------------------- *)

let test_warm_lookup_alloc () =
  with_fast true @@ fun () ->
  let page_size = 1024 in
  let pager = Storage.Pager.create ~page_size () in
  let pool = Storage.Buffer_pool.create ~capacity:512 pager in
  let config = { (Btree.default_config ~page_size) with max_entries = Some 16 } in
  let t = Btree.create ~config ~pool pager in
  let n = 2000 in
  let keys = Array.init n (fun i -> Printf.sprintf "warm/key%06d" (i * 3)) in
  Array.iter (fun k -> Btree.insert t ~key:k ~value:"v") keys;
  (* everything resident and MRU state settled *)
  Array.iter (fun k -> ignore (Btree.mem t k)) keys;
  let lookups = 1000 in
  let w0 = Gc.minor_words () in
  for i = 0 to lookups - 1 do
    ignore (Btree.mem t (Array.unsafe_get keys (i * 7 mod n)))
  done;
  let per = (Gc.minor_words () -. w0) /. float_of_int lookups in
  if per > 8. then
    Alcotest.failf "warm point lookup allocates %.1f minor words (want ~0)" per

(* --- scanner: memo bound and reuse --------------------------------------- *)

(* reference mode memoizes internal nodes only, so a full iteration over a
   many-leaf tree keeps the memo at O(height) — pre-fix it pinned every
   decoded leaf *)
let test_memo_bounded () =
  with_fast false @@ fun () ->
  let t = mk ~page_size:512 ~max_entries:4 () in
  for i = 0 to 399 do
    Btree.insert t ~key:(Printf.sprintf "%05d" i) ~value:""
  done;
  if Btree.leaf_count t < 50 then
    Alcotest.failf "tree too shallow for the memo test: %d leaves"
      (Btree.leaf_count t);
  let bound = Btree.height t + 2 in
  let sc = Btree.Scanner.create t ~read:(Btree.raw_read t) in
  let worst = ref 0 in
  let cur = ref (Btree.Scanner.seek sc "") in
  let n = ref 0 in
  while !cur <> None do
    worst := max !worst (Btree.Scanner.memo_size sc);
    incr n;
    cur := Btree.Scanner.next sc
  done;
  Alcotest.(check int) "full iteration" 400 !n;
  if !worst > bound then
    Alcotest.failf "memo grew to %d decoded nodes during iteration (height %d)"
      !worst (Btree.height t)

(* fast mode memoizes raw internal pages (mirroring the reference memo,
   and for the same reason: page-read parity on repeated seeks) but must
   never retain leaves — the same O(height) bound applies *)
let test_fast_memo_bounded () =
  with_fast true @@ fun () ->
  let t = mk ~page_size:512 ~max_entries:4 () in
  for i = 0 to 399 do
    Btree.insert t ~key:(Printf.sprintf "%05d" i) ~value:""
  done;
  let bound = Btree.height t + 2 in
  let sc = Btree.Scanner.create t ~read:(Btree.raw_read t) in
  let worst = ref 0 in
  let cur = ref (Btree.Scanner.seek sc "") in
  let n = ref 0 in
  while !cur <> None do
    worst := max !worst (Btree.Scanner.memo_size sc);
    incr n;
    cur := Btree.Scanner.next sc
  done;
  Alcotest.(check int) "full iteration" 400 !n;
  if !worst > bound then
    Alcotest.failf "fast memo grew to %d pages during iteration (height %d)"
      !worst (Btree.height t)

(* reset re-points an existing scanner at another tree (the Exec per-domain
   cursor), and at the same tree after mutation *)
let test_scanner_reset_reuse () =
  let ta = mk ~max_entries:4 () in
  let tb = mk ~max_entries:4 () in
  for i = 0 to 49 do
    Btree.insert ta ~key:(Printf.sprintf "a%03d" i) ~value:"A";
    Btree.insert tb ~key:(Printf.sprintf "b%03d" i) ~value:"B"
  done;
  let sc = Btree.Scanner.create ta ~read:(Btree.raw_read ta) in
  (match Btree.Scanner.seek sc "a" with
  | Some e -> Alcotest.(check string) "tree A" "a000" e.Btree.key
  | None -> Alcotest.fail "expected entry in tree A");
  Btree.Scanner.reset sc tb ~read:(Btree.raw_read tb);
  Alcotest.(check int) "memo cleared" 0 (Btree.Scanner.memo_size sc);
  (match Btree.Scanner.seek sc "" with
  | Some e -> Alcotest.(check string) "tree B" "b000" e.Btree.key
  | None -> Alcotest.fail "expected entry in tree B");
  (* mutation + reset: the cursor must observe the new entry *)
  Btree.insert tb ~key:"b000a" ~value:"new";
  Btree.Scanner.reset sc tb ~read:(Btree.raw_read tb);
  (match Btree.Scanner.seek sc "b000a" with
  | Some e ->
      Alcotest.(check string) "new key" "b000a" e.Btree.key;
      Alcotest.(check string) "new value" "new" (e.Btree.value ())
  | None -> Alcotest.fail "reset scanner missed the new entry")

(* both scanner modes agree after reset swaps trees mid-life *)
let test_scanner_reset_differential () =
  let run fast =
    with_fast fast @@ fun () ->
    let ta = mk ~max_entries:4 () in
    let tb = mk ~max_entries:5 () in
    for i = 0 to 99 do
      Btree.insert ta ~key:(Printf.sprintf "k%04d" (2 * i)) ~value:"a";
      Btree.insert tb ~key:(Printf.sprintf "k%04d" ((2 * i) + 1)) ~value:"b"
    done;
    let sc = Btree.Scanner.create ta ~read:(Btree.raw_read ta) in
    let out = ref [] in
    let burst t key =
      Btree.Scanner.reset sc t ~read:(Btree.raw_read t);
      (match Btree.Scanner.seek sc key with
      | Some e -> out := e.Btree.key :: !out
      | None -> ());
      for _ = 1 to 4 do
        match Btree.Scanner.next sc with
        | Some e -> out := e.Btree.key :: !out
        | None -> ()
      done
    in
    burst ta "k0050";
    burst tb "k0050";
    burst ta "k0199";
    burst tb "zzz";
    List.rev !out
  in
  Alcotest.(check (list string)) "reset bursts agree" (run false) (run true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_leaf_search_matches_decode; prop_child_matches_decode ]

let () =
  Alcotest.run "descent"
    [
      ("in-place search", qsuite);
      ( "differential",
        [
          Alcotest.test_case "answers and page reads" `Quick test_differential;
          Alcotest.test_case "descent metrics" `Quick test_differential_metrics;
        ] );
      ( "allocation",
        [ Alcotest.test_case "warm point lookup" `Quick test_warm_lookup_alloc ] );
      ( "scanner",
        [
          Alcotest.test_case "memo stays O(height)" `Quick test_memo_bounded;
          Alcotest.test_case "fast memo stays O(height)" `Quick
            test_fast_memo_bounded;
          Alcotest.test_case "reset and reuse" `Quick test_scanner_reset_reuse;
          Alcotest.test_case "reset differential" `Quick
            test_scanner_reset_differential;
        ] );
    ]
