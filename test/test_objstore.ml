(* Tests for the object store: typed inserts, extents, reverse references,
   attribute updates and deletion. *)

module Schema = Oodb_schema.Schema
module Store = Objstore.Store
module Value = Objstore.Value
module Ps = Workload.Paper_schema

let setup () =
  let b = Ps.base () in
  (b, Store.create b.schema)

let test_insert_get () =
  let b, st = setup () in
  let e = Store.insert st ~cls:b.employee [ ("age", Value.Int 50) ] in
  Alcotest.(check bool) "mem" true (Store.mem st e);
  Alcotest.(check int) "class" b.employee (Store.class_of st e);
  Alcotest.(check bool) "attr" true (Store.attr st e "age" = Value.Int 50);
  Alcotest.(check bool) "unset attr is Null" true (Store.attr st e "name" = Value.Null);
  Alcotest.(check int) "count" 1 (Store.count st)

let test_type_checking () =
  let b, st = setup () in
  Alcotest.check_raises "wrong value type"
    (Invalid_argument "Store: attribute \"age\" of Employee expects an int, got \"x\"")
    (fun () ->
      ignore (Store.insert st ~cls:b.employee [ ("age", Value.Str "x") ]));
  Alcotest.check_raises "undeclared attribute"
    (Invalid_argument "Schema: class Employee has no attribute \"salary\"")
    (fun () ->
      ignore (Store.insert st ~cls:b.employee [ ("salary", Value.Int 3) ]));
  Alcotest.check_raises "dangling reference"
    (Invalid_argument "Store: reference to unknown oid 999") (fun () ->
      ignore
        (Store.insert st ~cls:b.company
           [ ("president", Value.Ref 999) ]));
  (* reference target class checked, subclasses allowed *)
  let e = Store.insert st ~cls:b.employee [ ("age", Value.Int 40) ] in
  let jc =
    Store.insert st ~cls:b.japanese_auto_company [ ("president", Value.Ref e) ]
  in
  Alcotest.check_raises "wrong target class"
    (Invalid_argument "Store: oid 2 is a JapaneseAutoCompany, not a Employee")
    (fun () ->
      ignore (Store.insert st ~cls:b.company [ ("president", Value.Ref jc) ]))

let test_extent () =
  let b, st = setup () in
  let e = Store.insert st ~cls:b.employee [] in
  let c1 = Store.insert st ~cls:b.auto_company [ ("president", Value.Ref e) ] in
  let c2 =
    Store.insert st ~cls:b.japanese_auto_company [ ("president", Value.Ref e) ]
  in
  Alcotest.(check (list int)) "shallow" [] (Store.extent st ~deep:false b.company);
  Alcotest.(check (list int)) "deep" [ c1; c2 ]
    (List.sort compare (Store.extent st b.company));
  Alcotest.(check (list int)) "auto subtree" [ c1; c2 ]
    (List.sort compare (Store.extent st b.auto_company))

let test_referrers_and_follow () =
  let b, st = setup () in
  let e = Store.insert st ~cls:b.employee [ ("age", Value.Int 50) ] in
  let c = Store.insert st ~cls:b.company [ ("president", Value.Ref e) ] in
  let v =
    Store.insert st ~cls:b.vehicle
      [ ("color", Value.Str "Red"); ("manufactured_by", Value.Ref c) ]
  in
  Alcotest.(check (list int)) "company's president" [ e ] (Store.follow st c "president");
  Alcotest.(check (list int)) "who references e" [ c ]
    (Store.referrers st e ~via:"president");
  Alcotest.(check (list int)) "who references c" [ v ]
    (Store.referrers st c ~via:"manufactured_by");
  (* update moves the reverse link *)
  let e2 = Store.insert st ~cls:b.employee [ ("age", Value.Int 60) ] in
  Store.set_attr st c "president" (Value.Ref e2);
  Alcotest.(check (list int)) "old link gone" [] (Store.referrers st e ~via:"president");
  Alcotest.(check (list int)) "new link" [ c ] (Store.referrers st e2 ~via:"president");
  (* deletion clears links *)
  Store.delete st v;
  Alcotest.(check (list int)) "after delete" []
    (Store.referrers st c ~via:"manufactured_by");
  Alcotest.(check bool) "gone" false (Store.mem st v)

let test_multi_value () =
  let b, st = setup () in
  let bike =
    Schema.add_class b.schema ~parent:b.vehicle ~name:"Bicycle"
      ~attrs:[ ("comakers", Schema.Ref_set b.company) ]
  in
  let e = Store.insert st ~cls:b.employee [] in
  let c1 = Store.insert st ~cls:b.company [ ("president", Value.Ref e) ] in
  let c2 = Store.insert st ~cls:b.company [ ("president", Value.Ref e) ] in
  let bk = Store.insert st ~cls:bike [ ("comakers", Value.Ref_set [ c1; c2 ]) ] in
  Alcotest.(check (list int)) "follow many" [ c1; c2 ] (Store.follow st bk "comakers");
  Alcotest.(check (list int)) "reverse from c1" [ bk ]
    (Store.referrers st c1 ~via:"comakers");
  Store.set_attr st bk "comakers" (Value.Ref_set [ c2 ]);
  Alcotest.(check (list int)) "c1 unlinked" [] (Store.referrers st c1 ~via:"comakers");
  Alcotest.(check (list int)) "c2 still linked" [ bk ]
    (Store.referrers st c2 ~via:"comakers")

(* a truncated Int payload must fail with its own diagnostic — not a
   generic out-of-bounds from the byte decoder — so scan-level handlers
   can tell data corruption from programming errors *)
let test_decode_truncated_int () =
  let whole = Value.encode (Value.Int 42) in
  let v, stop = Value.decode ~ty:Schema.Int whole 0 in
  Alcotest.(check bool) "roundtrip" true (v = Value.Int 42);
  Alcotest.(check int) "consumes 8 bytes" 8 stop;
  let short = String.sub whole 0 5 in
  Alcotest.check_raises "truncated payload"
    (Invalid_argument
       "Value.decode: truncated Int key (need 8 bytes at offset 0, have 5)")
    (fun () -> ignore (Value.decode ~ty:Schema.Int short 0));
  Alcotest.check_raises "offset past the end"
    (Invalid_argument
       "Value.decode: truncated Int key (need 8 bytes at offset 9, have -1)")
    (fun () -> ignore (Value.decode ~ty:Schema.Int whole 9))

let test_iter_count () =
  let b, st = setup () in
  for _ = 1 to 10 do
    ignore (Store.insert st ~cls:b.employee [])
  done;
  let n = ref 0 in
  Store.iter st (fun _ -> incr n);
  Alcotest.(check int) "iter visits all" 10 !n

let () =
  Alcotest.run "objstore"
    [
      ( "store",
        [
          Alcotest.test_case "insert/get" `Quick test_insert_get;
          Alcotest.test_case "type checking" `Quick test_type_checking;
          Alcotest.test_case "extents" `Quick test_extent;
          Alcotest.test_case "referrers & follow" `Quick test_referrers_and_follow;
          Alcotest.test_case "multi-value refs" `Quick test_multi_value;
          Alcotest.test_case "iter/count" `Quick test_iter_count;
          Alcotest.test_case "truncated Int decode" `Quick
            test_decode_truncated_int;
        ] );
    ]
