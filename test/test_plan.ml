(* Tests for query compilation: candidate navigation (the partial-key
   machinery of Algorithm 1), brackets, and classification verdicts. *)

module Schema = Oodb_schema.Schema
module Encoding = Oodb_schema.Encoding
module Value = Objstore.Value
module Query = Uindex.Query
module Plan = Uindex.Plan
module Ukey = Uindex.Ukey
module Ps = Workload.Paper_schema

let setup () =
  let b = Ps.base () in
  let code c = Encoding.code b.enc c in
  (b, code)

let compile b q = Plan.compile ~enc:b.Ps.enc ~ty:Schema.Int q

let compile_str b q = Plan.compile ~enc:b.Ps.enc ~ty:Schema.String q

let test_lower_upper () =
  let b, code = setup () in
  let plan =
    compile b (Query.class_hierarchy ~value:(V_eq (Int 50)) (P_subtree b.vehicle))
  in
  let lo = Option.get (Plan.lower plan) in
  let hi = Option.get (Plan.upper plan) in
  (* entries with value 50 and vehicle classes lie inside; others outside *)
  let k50 = Ukey.entry_key ~value:(Value.Int 50) [ (code b.compact, 3) ] in
  let k49 = Ukey.entry_key ~value:(Value.Int 49) [ (code b.compact, 3) ] in
  let k_emp = Ukey.entry_key ~value:(Value.Int 50) [ (code b.employee, 3) ] in
  Alcotest.(check bool) "inside" true (lo <= k50 && k50 < hi);
  Alcotest.(check bool) "other value outside" true (k49 < lo);
  Alcotest.(check bool) "other class outside" true (k_emp < lo)

let test_empty_plans () =
  let b, _ = setup () in
  let empty_range =
    compile b
      (Query.class_hierarchy
         ~value:(V_range (Some (Int 9), Some (Int 3)))
         (P_subtree b.vehicle))
  in
  Alcotest.(check bool) "inverted range has no bracket" true
    (Plan.bracket empty_range = None);
  let empty_in =
    compile b (Query.class_hierarchy ~value:(V_in []) (P_subtree b.vehicle))
  in
  Alcotest.(check bool) "empty V_in" true (Plan.bracket empty_in = None)

let test_next_candidate_jumps_value () =
  let b, code = setup () in
  let plan =
    compile b
      (Query.class_hierarchy ~value:(V_in [ Int 10; Int 20 ]) (P_subtree b.vehicle))
  in
  (* from a position in the 10-group at the very end of the vehicle
     subtree interval, the next candidate must be the 20-group's start *)
  ignore code;
  let _, subtree_hi = Encoding.subtree_interval b.enc b.vehicle in
  let past = Value.encode (Value.Int 10) ^ "\x01" ^ subtree_hi in
  let c = Option.get (Plan.next_candidate plan past) in
  let v20 = Ukey.entry_key ~value:(Value.Int 20) [ (code b.vehicle, 0) ] in
  Alcotest.(check bool) "candidate <= first 20-entry" true (c <= v20);
  Alcotest.(check bool) "candidate above old position" true (past < c);
  (* past the last value: no candidate *)
  let beyond = Ukey.entry_key ~value:(Value.Int 21) [ (code b.vehicle, 0) ] in
  Alcotest.(check bool) "exhausted" true (Plan.next_candidate plan beyond = None)

let test_next_candidate_within_group () =
  let b, code = setup () in
  let plan =
    compile b
      (Query.class_hierarchy ~value:(V_eq (Int 5))
         (P_union [ P_class b.vehicle; P_class b.truck ]))
  in
  (* from an automobile entry (between vehicle and truck in code order),
     the candidate jumps to the truck interval *)
  let auto = Ukey.entry_key ~value:(Value.Int 5) [ (code b.automobile, 1) ] in
  let c = Option.get (Plan.next_candidate plan auto) in
  let truck0 = Ukey.entry_key ~value:(Value.Int 5) [ (code b.truck, 0) ] in
  Alcotest.(check bool) "jumps over automobile subtree" true (auto < c && c <= truck0)

let test_candidate_admissible_stays () =
  let b, code = setup () in
  let plan =
    compile b (Query.class_hierarchy ~value:(V_eq (Int 5)) (P_subtree b.vehicle))
  in
  let k = Ukey.entry_key ~value:(Value.Int 5) [ (code b.compact, 77) ] in
  Alcotest.(check (option string)) "admissible key is its own candidate" (Some k)
    (Plan.next_candidate plan k)

let test_contig_range_candidates () =
  let b, code = setup () in
  let plan =
    compile b
      (Query.class_hierarchy
         ~value:(V_range (Some (Int 10), Some (Int 12)))
         (P_subtree b.truck))
  in
  (* below the range: first candidate is at value 10 *)
  let low = Ukey.entry_key ~value:(Value.Int 3) [ (code b.truck, 1) ] in
  let c = Option.get (Plan.next_candidate plan low) in
  let t10 = Ukey.entry_key ~value:(Value.Int 10) [ (code b.truck, 0) ] in
  Alcotest.(check bool) "clamped to range start" true (c <= t10 && low < c);
  (* inside, past the truck subtree of value 11: bumps to value 12 *)
  let _, truck_hi = Encoding.subtree_interval b.enc b.truck in
  let past11 = Value.encode (Value.Int 11) ^ "\x01" ^ truck_hi in
  let c = Option.get (Plan.next_candidate plan past11) in
  let t12 = Ukey.entry_key ~value:(Value.Int 12) [ (code b.truck, 0) ] in
  Alcotest.(check bool) "bumps to 12" true (past11 < c && c <= t12);
  (* past the range end: exhausted *)
  let past12 = Value.encode (Value.Int 12) ^ "\x01" ^ truck_hi in
  Alcotest.(check bool) "exhausted past hi" true
    (Plan.next_candidate plan past12 = None)

let test_classify_verdicts () =
  let b, code = setup () in
  let plan =
    compile b
      (Query.path ~value:(V_eq (Int 50))
         [
           Query.comp (P_subtree b.employee);
           Query.comp ~slot:(S_oid 11) (P_subtree b.company);
           Query.comp (P_subtree b.vehicle);
         ])
  in
  let key eo co vo =
    Ukey.entry_key ~value:(Value.Int 50)
      [ (code b.employee, eo); (code b.auto_company, co); (code b.compact, vo) ]
  in
  (match Plan.classify plan (key 1 11 3) with
  | Plan.Accept { arity; _ } -> Alcotest.(check int) "full arity" 3 arity
  | Plan.Reject _ -> Alcotest.fail "expected accept");
  (* wrong slot: skipped forward *)
  (match Plan.classify plan (key 1 12 3) with
  | Plan.Reject (Plan.Seek k) ->
      Alcotest.(check bool) "skip beyond this company run" true (k > key 1 12 0xFFFFFF)
  | _ -> Alcotest.fail "expected reject-with-seek");
  (* wrong value: rejected *)
  let k49 =
    Ukey.entry_key ~value:(Value.Int 49)
      [ (code b.employee, 1); (code b.auto_company, 11); (code b.compact, 3) ]
  in
  (match Plan.classify plan k49 with
  | Plan.Reject (Plan.Seek k) -> Alcotest.(check bool) "seek to 50 group" true (k > k49)
  | _ -> Alcotest.fail "expected reject");
  (* arity mismatch: plain advance *)
  let short = Ukey.entry_key ~value:(Value.Int 50) [ (code b.employee, 1) ] in
  match Plan.classify plan short with
  | Plan.Reject Plan.Advance -> ()
  | _ -> Alcotest.fail "expected advance on arity mismatch"

let test_classify_partial_path () =
  let b, code = setup () in
  let plan =
    compile b
      (Query.path ~value:(V_eq (Int 50))
         [ Query.comp (P_subtree b.employee); Query.comp (P_subtree b.company) ])
  in
  let key =
    Ukey.entry_key ~value:(Value.Int 50)
      [ (code b.employee, 1); (code b.company, 2); (code b.vehicle, 3) ]
  in
  match Plan.classify plan key with
  | Plan.Accept { arity; next = Plan.Seek k; d } ->
      Alcotest.(check int) "prefix arity" 2 arity;
      Alcotest.(check bool) "skip past shared prefix" true (k > key);
      Alcotest.(check int) "decoded still full" 3 (List.length d.Ukey.comps)
  | _ -> Alcotest.fail "expected prefix accept with skip"

(* an entry whose key bytes cannot be decoded (e.g. a truncated Int
   payload from a corrupt page) must not abort the scan: classify counts
   it in exec.undecodable_entries and advances past it *)
let test_classify_undecodable () =
  let b, code = setup () in
  let plan =
    compile b (Query.class_hierarchy ~value:Query.V_any (P_subtree b.vehicle))
  in
  let good = Ukey.entry_key ~value:(Value.Int 50) [ (code b.compact, 1) ] in
  let truncated = String.sub good 0 4 in
  let before = Plan.undecodable_entries () in
  (match Plan.classify plan truncated with
  | Plan.Reject Plan.Advance -> ()
  | _ -> Alcotest.fail "expected plain advance on undecodable key");
  Alcotest.(check int) "counter bumped" (before + 1)
    (Plan.undecodable_entries ());
  (* well-formed keys leave it alone *)
  (match Plan.classify plan good with
  | Plan.Accept _ -> ()
  | Plan.Reject _ -> Alcotest.fail "good key should classify");
  Alcotest.(check int) "counter stable on good keys" (before + 1)
    (Plan.undecodable_entries ())

let test_string_values () =
  let b, code = setup () in
  let plan =
    compile_str b
      (Query.class_hierarchy
         ~value:(V_range (Some (Str "Blue"), Some (Str "Red")))
         (P_subtree b.vehicle))
  in
  let kgreen = Ukey.entry_key ~value:(Value.Str "Green") [ (code b.compact, 1) ] in
  (match Plan.classify plan kgreen with
  | Plan.Accept _ -> ()
  | Plan.Reject _ -> Alcotest.fail "Green should be in Blue..Red");
  let kwhite = Ukey.entry_key ~value:(Value.Str "White") [ (code b.compact, 1) ] in
  (match Plan.classify plan kwhite with
  | Plan.Reject _ -> ()
  | Plan.Accept _ -> Alcotest.fail "White is outside Blue..Red");
  (* candidate from a value that exhausted its group: the next candidate
     is above it (text successor floor) *)
  let past = Ukey.succ_prefix kgreen in
  let c = Plan.next_candidate plan past in
  Alcotest.(check bool) "progresses" true
    (match c with Some c -> c > kgreen | None -> false)

let test_rejects_bad_queries () =
  let b, _ = setup () in
  Alcotest.check_raises "no components"
    (Invalid_argument "Plan.compile: query has no components") (fun () ->
      ignore (compile b { Query.value = V_any; comps = [] }));
  Alcotest.check_raises "ref value"
    (Invalid_argument "Plan.compile: query value must be Int or Str") (fun () ->
      ignore
        (compile b
           (Query.class_hierarchy ~value:(V_eq (Value.Ref 3)) (P_subtree b.vehicle))))

let () =
  Alcotest.run "plan"
    [
      ( "navigation",
        [
          Alcotest.test_case "bracket bounds" `Quick test_lower_upper;
          Alcotest.test_case "empty plans" `Quick test_empty_plans;
          Alcotest.test_case "value jumps" `Quick test_next_candidate_jumps_value;
          Alcotest.test_case "class interval jumps" `Quick
            test_next_candidate_within_group;
          Alcotest.test_case "admissible fixpoint" `Quick
            test_candidate_admissible_stays;
          Alcotest.test_case "contiguous ranges" `Quick test_contig_range_candidates;
        ] );
      ( "classification",
        [
          Alcotest.test_case "verdicts" `Quick test_classify_verdicts;
          Alcotest.test_case "partial path" `Quick test_classify_partial_path;
          Alcotest.test_case "undecodable entries counted" `Quick
            test_classify_undecodable;
          Alcotest.test_case "string values" `Quick test_string_values;
          Alcotest.test_case "bad queries" `Quick test_rejects_bad_queries;
        ] );
    ]
