module Bu = Storage.Bytes_util

type oid = int

type t = Null | Int of int | Str of string | Ref of oid | Ref_set of oid list

let equal a b = a = b

let rank = function
  | Null -> 0
  | Int _ -> 1
  | Str _ -> 2
  | Ref _ -> 3
  | Ref_set _ -> 4

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Ref x, Ref y -> Int.compare x y
  | Ref_set x, Ref_set y -> Stdlib.compare x y
  | Null, Null -> 0
  | _ -> Int.compare (rank a) (rank b)

let encode = function
  | Int x -> Bu.encode_int x
  | Str s -> Bu.check_text s
  | Null | Ref _ | Ref_set _ ->
      invalid_arg "Value.encode: only Int and Str values are indexable"

let decode ~ty s off =
  match ty with
  | Oodb_schema.Schema.Int ->
      if off < 0 || off + 8 > String.length s then
        invalid_arg
          (Printf.sprintf
             "Value.decode: truncated Int key (need 8 bytes at offset %d, \
              have %d)"
             off
             (String.length s - off));
      (Int (Bu.decode_int s off), off + 8)
  | Oodb_schema.Schema.String ->
      let stop =
        match String.index_from_opt s off '\x01' with
        | Some i -> i
        | None -> String.length s
      in
      (Str (String.sub s off (stop - off)), stop)
  | Oodb_schema.Schema.Ref _ | Oodb_schema.Schema.Ref_set _ ->
      invalid_arg "Value.decode: reference attributes are not key values"

let pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Int x -> Format.pp_print_int ppf x
  | Str s -> Format.fprintf ppf "%S" s
  | Ref o -> Format.fprintf ppf "@%d" o
  | Ref_set os ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           (fun ppf o -> Format.fprintf ppf "@%d" o))
        os
