(** Attribute values of database objects. *)

type oid = int
(** Object identifiers; encoded on 4 bytes in index keys, as in the
    paper's experiments. *)

type t =
  | Null
  | Int of int
  | Str of string
  | Ref of oid          (** single-valued reference (m:1) *)
  | Ref_set of oid list (** multi-valued reference *)

val equal : t -> t -> bool
val compare : t -> t -> int

val encode : t -> string
(** Order-preserving key encoding of an indexable value ([Int] or [Str]).
    Raises [Invalid_argument] on [Null], [Ref] and [Ref_set]: references
    are traversed, not indexed as key bytes. *)

val decode : ty:Oodb_schema.Schema.attr_type -> string -> int -> t * int
(** [decode ~ty s off] reads the value back from a key, returning it
    together with the offset of the separator byte that follows it in the
    key format ([Int] is 8 fixed bytes; [Str] runs to the next [0x01]).
    Raises [Invalid_argument] with a ["truncated Int key"] diagnostic
    when fewer than 8 bytes remain for an [Int] — a distinct message, so
    callers that tolerate malformed entries can still surface corruption
    in their counters rather than conflating it with type errors. *)

val pp : Format.formatter -> t -> unit
