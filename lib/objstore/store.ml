module Schema = Oodb_schema.Schema

type oid = Value.oid

type obj = {
  oid : oid;
  cls : Schema.class_id;
  mutable attrs : (string * Value.t) list;
}

type t = {
  schema : Schema.t;
  objects : (oid, obj) Hashtbl.t;
  extents : (Schema.class_id, oid list ref) Hashtbl.t;
  (* (target oid, attribute) -> referrer oids *)
  referrers : (oid * string, oid list ref) Hashtbl.t;
  mutable next_oid : oid;
}

let create schema =
  {
    schema;
    objects = Hashtbl.create 256;
    extents = Hashtbl.create 16;
    referrers = Hashtbl.create 256;
    next_oid = 1;
  }

let schema t = t.schema
let get t oid = Hashtbl.find t.objects oid
let mem t oid = Hashtbl.mem t.objects oid
let class_of t oid = (get t oid).cls
let count t = Hashtbl.length t.objects
let iter t f = Hashtbl.iter (fun _ o -> f o) t.objects

let attr t oid a =
  match List.assoc_opt a (get t oid).attrs with
  | Some v -> v
  | None -> Value.Null

let multi_find tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add tbl key r;
      r

let add_referrer t ~target ~via ~source =
  let r = multi_find t.referrers (target, via) in
  r := source :: !r

let remove_referrer t ~target ~via ~source =
  match Hashtbl.find_opt t.referrers (target, via) with
  | Some r -> r := List.filter (fun o -> o <> source) !r
  | None -> ()

let ref_targets = function
  | Value.Ref o -> [ o ]
  | Value.Ref_set os -> os
  | Value.Null | Value.Int _ | Value.Str _ -> []

let check_value t cls a v =
  let ty = Schema.attr_type_exn t.schema cls a in
  let fail expect =
    invalid_arg
      (Format.asprintf "Store: attribute %S of %s expects %s, got %a" a
         (Schema.name t.schema cls) expect Value.pp v)
  in
  let check_target c o =
    match Hashtbl.find_opt t.objects o with
    | None -> invalid_arg (Printf.sprintf "Store: reference to unknown oid %d" o)
    | Some target ->
        if not (Schema.is_subclass t.schema ~sub:target.cls ~super:c) then
          invalid_arg
            (Printf.sprintf "Store: oid %d is a %s, not a %s" o
               (Schema.name t.schema target.cls)
               (Schema.name t.schema c))
  in
  match (ty, v) with
  | _, Value.Null -> ()
  | Schema.Int, Value.Int _ -> ()
  | Schema.String, Value.Str _ -> ()
  | Schema.Ref c, Value.Ref o -> check_target c o
  | Schema.Ref_set c, Value.Ref_set os -> List.iter (check_target c) os
  | Schema.Int, _ -> fail "an int"
  | Schema.String, _ -> fail "a string"
  | Schema.Ref _, _ -> fail "a single reference"
  | Schema.Ref_set _, _ -> fail "a reference set"

let insert t ~cls attrs =
  List.iter (fun (a, v) -> check_value t cls a v) attrs;
  let oid = t.next_oid in
  t.next_oid <- oid + 1;
  let o = { oid; cls; attrs } in
  Hashtbl.add t.objects oid o;
  let e = multi_find t.extents cls in
  e := oid :: !e;
  List.iter
    (fun (a, v) ->
      List.iter (fun tgt -> add_referrer t ~target:tgt ~via:a ~source:oid)
        (ref_targets v))
    attrs;
  oid

let set_attr t oid a v =
  let o = get t oid in
  check_value t o.cls a v;
  (match List.assoc_opt a o.attrs with
  | Some old ->
      List.iter
        (fun tgt -> remove_referrer t ~target:tgt ~via:a ~source:oid)
        (ref_targets old)
  | None -> ());
  o.attrs <- (a, v) :: List.remove_assoc a o.attrs;
  List.iter (fun tgt -> add_referrer t ~target:tgt ~via:a ~source:oid)
    (ref_targets v)

let delete t oid =
  let o = get t oid in
  List.iter
    (fun (a, v) ->
      List.iter
        (fun tgt -> remove_referrer t ~target:tgt ~via:a ~source:oid)
        (ref_targets v))
    o.attrs;
  (match Hashtbl.find_opt t.extents o.cls with
  | Some e -> e := List.filter (fun x -> x <> oid) !e
  | None -> ());
  Hashtbl.remove t.objects oid

let extent t ?(deep = true) cls =
  let classes = if deep then Schema.subtree t.schema cls else [ cls ] in
  List.concat_map
    (fun c ->
      match Hashtbl.find_opt t.extents c with
      | Some e -> List.rev !e
      | None -> [])
    classes

let referrers t oid ~via =
  match Hashtbl.find_opt t.referrers (oid, via) with
  | Some r -> List.rev !r
  | None -> []

let follow t oid a = ref_targets (attr t oid a)
