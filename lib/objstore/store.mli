(** The object heap: typed object instances behind OIDs.

    This backs index construction and maintenance, and serves as the
    ground truth that query results are verified against in tests.  It
    keeps class extents (for building indexes) and reverse-reference lists
    (for the paper's mid-path update case: when a company replaces its
    president, the affected path-index entries are found by walking the
    referrers, Section 3.5). *)

module Schema := Oodb_schema.Schema

type oid = Value.oid

type obj = {
  oid : oid;
  cls : Schema.class_id;
  mutable attrs : (string * Value.t) list;
}

type t

val create : Schema.t -> t
val schema : t -> Schema.t

val insert : t -> cls:Schema.class_id -> (string * Value.t) list -> oid
(** Allocates an OID and stores the object.  Every attribute must be
    declared (possibly inherited) on [cls] with a compatible type; [Ref]
    targets must exist and be instances of (a subclass of) the declared
    target class. *)

val get : t -> oid -> obj
(** Raises [Not_found]. *)

val mem : t -> oid -> bool
val class_of : t -> oid -> Schema.class_id
val attr : t -> oid -> string -> Value.t
(** [Null] when the attribute is unset. *)

val set_attr : t -> oid -> string -> Value.t -> unit
(** Type-checked like {!insert}; updates reverse-reference lists. *)

val delete : t -> oid -> unit
(** Removes the object.  Dangling references from other objects are left
    in place (as in the paper, index maintenance is driven explicitly). *)

val extent : t -> ?deep:bool -> Schema.class_id -> oid list
(** Instances of the class; with [~deep:true] (default) of its whole
    subtree. *)

val referrers : t -> oid -> via:string -> oid list
(** Objects whose attribute [via] references the given object. *)

val follow : t -> oid -> string -> oid list
(** Dereferences a [Ref] (one OID) or [Ref_set] (many); [[]] on [Null]. *)

val count : t -> int
val iter : t -> (obj -> unit) -> unit
