module Bu = Storage.Bytes_util
module Value = Objstore.Value

type t = {
  pager : Storage.Pager.t;
  trees : (int, Btree.t) Hashtbl.t;
}

let create ?config pager ~classes =
  let trees = Hashtbl.create (List.length classes) in
  List.iter (fun c -> Hashtbl.replace trees c (Btree.create ?config pager)) classes;
  { pager; trees }

let pager t = t.pager

let tree_exn t cls =
  match Hashtbl.find_opt t.trees cls with
  | Some tr -> tr
  | None -> invalid_arg "H_tree: class not registered"

(* per-class entries: key = value ++ 0x01 ++ oid, empty payload *)
let entry_key value oid = Value.encode value ^ "\x01" ^ Bu.encode_u32 oid

let insert t ~value ~cls oid =
  Btree.insert (tree_exn t cls) ~key:(entry_key value oid) ~value:""

let remove t ~value ~cls oid =
  ignore (Btree.delete (tree_exn t cls) (entry_key value oid))

let build t entries =
  List.iter (fun (v, cls, oid) -> insert t ~value:v ~cls oid) entries

let scan_tree tr ~lo ~hi cls out =
  Btree.scan_range tr ~read:(Btree.raw_read tr) ~lo ~hi (fun e ->
      let oid = Bu.decode_u32 e.key (String.length e.key - 4) in
      out := (cls, oid) :: !out)

let exact t ~value ~sets =
  let venc = Value.encode value in
  let lo = venc ^ "\x01" and hi = venc ^ "\x02" in
  let out = ref [] in
  List.iter (fun cls -> scan_tree (tree_exn t cls) ~lo ~hi cls out) sets;
  List.rev !out

let range t ~lo ~hi ~sets =
  let lo = Value.encode lo ^ "\x01"
  and hi = Value.encode hi ^ "\x02" in
  let out = ref [] in
  List.iter (fun cls -> scan_tree (tree_exn t cls) ~lo ~hi cls out) sets;
  List.rev !out

let entry_count t =
  Hashtbl.fold (fun _ tr acc -> acc + Btree.length tr) t.trees 0
