(** CG-tree: the multiple-set index of Kilger and Moerkotte [6], the
    structure the paper's second experiment compares the U-index against
    (Section 5.1).

    Architecture, as described there:

    - an inner B+-tree on the attribute value whose leaf records are
      {e set directories}: for each set (class) having objects with that
      value, a pointer to the data page holding that [(value, set)] run —
      only non-NULL references are stored;
    - {e data pages}, chained per set in key order (the "link pointers
      between leaf pages of the same set"), each holding several keys'
      runs of its set (the "sharing of multiple keys entries in one leaf
      page") — this is what gives CG-trees their set-grouping behaviour
      on range queries;
    - page splits choose the best splitting key (a run boundary closest
      to the byte midpoint, never separating a continuation run).

    Like the paper's own reimplementation, leaf-page balancing is not
    implemented.

    The per-set chain heads/positions that the original stores as set
    links in inner nodes are kept here as an in-memory locator; a range
    query charges one shared inner-tree descent plus the per-set chain
    pages, matching the original's accounting. *)

type t

val create : ?config:Btree.config -> Storage.Pager.t -> t

val insert : t -> value:Objstore.Value.t -> cls:int -> int -> unit
val remove : t -> value:Objstore.Value.t -> cls:int -> int -> unit
val build : t -> (Objstore.Value.t * int * int) list -> unit

val exact : t -> value:Objstore.Value.t -> sets:int list -> (int * int) list
val range :
  t ->
  lo:Objstore.Value.t ->
  hi:Objstore.Value.t ->
  sets:int list ->
  (int * int) list

val pager : t -> Storage.Pager.t
val entry_count : t -> int
val data_page_count : t -> int
val check : t -> unit
(** Structural invariants: chains sorted, directory pointers valid,
    runs consistent.  For tests. *)
