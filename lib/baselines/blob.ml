module Bu = Storage.Bytes_util

type directory = (int * int list) list

let encode_entries buf entries =
  Buffer.add_string buf (Bu.encode_u32 (List.length entries));
  List.iter
    (fun (id, oids) ->
      Buffer.add_string buf (Bu.encode_u32 id);
      Buffer.add_string buf (Bu.encode_u32 (List.length oids));
      List.iter (fun o -> Buffer.add_string buf (Bu.encode_u32 o)) oids)
    entries

let decode_entries s =
  let n = Bu.decode_u32 s 0 in
  let pos = ref 4 in
  List.init n (fun _ ->
      let id = Bu.decode_u32 s !pos in
      let count = Bu.decode_u32 s (!pos + 4) in
      pos := !pos + 8;
      let oids =
        List.init count (fun i -> Bu.decode_u32 s (!pos + (4 * i)))
      in
      pos := !pos + (4 * count);
      (id, oids))

let encode_directory d =
  let buf = Buffer.create 64 in
  encode_entries buf d;
  Buffer.contents buf

let decode_directory = decode_entries

let directory_add d cls oid =
  let rec go = function
    | (c, oids) :: rest when c = cls -> (c, oids @ [ oid ]) :: rest
    | e :: rest -> e :: go rest
    | [] -> [ (cls, [ oid ]) ]
  in
  go d

let directory_remove d cls oid =
  let rec remove_one = function
    | o :: rest when o = oid -> rest
    | o :: rest -> o :: remove_one rest
    | [] -> []
  in
  List.filter_map
    (fun (c, oids) ->
      if c <> cls then Some (c, oids)
      else
        match remove_one oids with [] -> None | oids -> Some (c, oids))
    d

type paths = (int * int list) list

let encode_paths p =
  let buf = Buffer.create 64 in
  encode_entries buf p;
  Buffer.contents buf

let decode_paths = decode_entries

let encode_oids oids =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (Bu.encode_u32 (List.length oids));
  List.iter (fun o -> Buffer.add_string buf (Bu.encode_u32 o)) oids;
  Buffer.contents buf

let decode_oids s =
  let n = Bu.decode_u32 s 0 in
  List.init n (fun i -> Bu.decode_u32 s (4 + (4 * i)))
