(** CH-tree: the original class-hierarchy index of Kim et al. [7, 9].

    One B+-tree on the attribute value; each leaf record carries a {e set
    directory} mapping every class of the indexed hierarchy that has
    objects with this value to its OID list.  Pure {e key grouping}: an
    exact-match query reads one record, but a range query must read every
    record in the range — including the OIDs of classes it did not ask
    for — which is the weakness the U-index and CG-trees address. *)

type t

val create : ?config:Btree.config -> Storage.Pager.t -> t

val pager : t -> Storage.Pager.t
val tree : t -> Btree.t

val insert : t -> value:Objstore.Value.t -> cls:int -> int -> unit
val remove : t -> value:Objstore.Value.t -> cls:int -> int -> unit

val build : t -> (Objstore.Value.t * int * int) list -> unit
(** Bulk load: one directory write per distinct value. *)

val exact : t -> value:Objstore.Value.t -> sets:int list -> (int * int) list
(** [(class, oid)] pairs of the requested sets having the value. *)

val range :
  t ->
  lo:Objstore.Value.t ->
  hi:Objstore.Value.t ->
  sets:int list ->
  (int * int) list
(** Inclusive value range. *)

val entry_count : t -> int
