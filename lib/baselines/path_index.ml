module Value = Objstore.Value

type variant = Nested | Path

type t = { tree : Btree.t; variant : variant }

let pager t = Btree.pager t.tree

let create ?config pager variant = { tree = Btree.create ?config pager; variant }
let variant t = t.variant

let decode_record t blob =
  match t.variant with
  | Nested -> List.map (fun o -> (o, [])) (Blob.decode_oids blob)
  | Path -> Blob.decode_paths blob

let encode_record t paths =
  match t.variant with
  | Nested -> Blob.encode_oids (List.map fst paths)
  | Path -> Blob.encode_paths paths

let update t venc f =
  let paths =
    match Btree.find t.tree venc with
    | Some blob -> decode_record t blob
    | None -> []
  in
  match f paths with
  | [] -> ignore (Btree.delete t.tree venc)
  | paths -> Btree.insert t.tree ~key:venc ~value:(encode_record t paths)

let insert t ~value ~head ~inner =
  update t (Value.encode value) (fun paths -> paths @ [ (head, inner) ])

let remove t ~value ~head ~inner =
  let inner = match t.variant with Nested -> [] | Path -> inner in
  update t (Value.encode value) (fun paths ->
      let rec remove_one = function
        | p :: rest when p = (head, inner) -> rest
        | p :: rest -> p :: remove_one rest
        | [] -> []
      in
      remove_one paths)

let build t entries =
  let tagged =
    List.map (fun (v, h, i) -> (Value.encode v, h, i)) entries
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  let flush venc paths =
    if paths <> [] then
      Btree.insert t.tree ~key:venc ~value:(encode_record t (List.rev paths))
  in
  let rec go cur paths = function
    | (venc, h, i) :: rest when venc = cur -> go cur ((h, i) :: paths) rest
    | (venc, h, i) :: rest ->
        flush cur paths;
        go venc [ (h, i) ] rest
    | [] -> flush cur paths
  in
  match tagged with
  | [] -> ()
  | (venc, h, i) :: rest -> go venc [ (h, i) ] rest

let exact t ~value =
  match Btree.find t.tree (Value.encode value) with
  | None -> []
  | Some blob -> List.map fst (decode_record t blob) |> List.sort_uniq compare

let range t ~lo ~hi =
  let lo = Value.encode lo
  and hi = Storage.Bytes_util.succ_prefix (Value.encode hi) in
  let out = ref [] in
  Btree.scan_range t.tree ~read:(Btree.raw_read t.tree) ~lo ~hi (fun e ->
      out := List.map fst (decode_record t (e.value ())) :: !out);
  List.concat !out |> List.sort_uniq compare

let exact_paths t ~value =
  if t.variant <> Path then
    invalid_arg "Path_index.exact_paths: nested variant has no path records";
  match Btree.find t.tree (Value.encode value) with
  | None -> []
  | Some blob -> decode_record t blob

let exact_restricted t ~value ~pred =
  exact_paths t ~value
  |> List.filter_map (fun (head, inner) -> if pred inner then Some head else None)
  |> List.sort_uniq compare

let entry_count t =
  let n = ref 0 in
  Btree.iter t.tree (fun e ->
      n := !n + List.length (decode_record t (e.value ())));
  !n
