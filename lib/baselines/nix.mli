(** NIX — the Nested-Inherited Index of Bertino and Foscoli [3].

    Like the U-index, NIX answers combined class-hierarchy / path
    queries: for an attribute value it indexes {e all} object instances
    of every class (and subclass) along the path.  Structurally it is a
    {e key-grouping} scheme: the primary B+-tree maps a value to a leaf
    directory with one entry per class holding the relevant OIDs; a set of
    auxiliary per-class B+-trees maps each object to its parents along the
    path (the objects referencing it), which is what accelerates updates.

    The paper compares against NIX qualitatively (Section 4.4): single
    class queries comparable; dispersed subclasses favour NIX, complete
    subtrees favour the U-index; in-path OID restrictions favour the
    U-index (NIX must intersect directory lists); end-of-path updates
    favour the U-index (NIX maintains the auxiliary structures). *)

type t

val create : ?config:Btree.config -> Storage.Pager.t -> classes:int list -> t
(** [classes] are all classes that may appear along the path (including
    subclasses); each gets an auxiliary tree. *)

val insert_chain : t -> value:Objstore.Value.t -> (int * int) list -> unit
(** [(class, oid)] components of one path instantiation, target-first
    (same orientation as {!Uindex.Ukey.entry_key}); the head of the path
    is the last element.  Records each object under the value and its
    parent links in the auxiliary trees. *)

val remove_chain : t -> value:Objstore.Value.t -> (int * int) list -> unit

val exact : t -> value:Objstore.Value.t -> sets:int list -> (int * int) list
(** [(class, oid)] of objects of the requested classes associated with
    the value. *)

val range :
  t ->
  lo:Objstore.Value.t ->
  hi:Objstore.Value.t ->
  sets:int list ->
  (int * int) list

val parents : t -> cls:int -> int -> int list
(** Auxiliary lookup: the objects referencing this one along the path
    (used by the update algorithms). *)

val pager : t -> Storage.Pager.t
val entry_count : t -> int
