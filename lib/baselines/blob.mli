(** Serialization of the directory records the baseline index structures
    keep in their leaves (CH-trees, NIX: per-class OID lists; path
    indexes: path instantiations). *)

type directory = (int * int list) list
(** [(class_or_set_id, oids)] pairs; order is preserved. *)

val encode_directory : directory -> string
val decode_directory : string -> directory

val directory_add : directory -> int -> int -> directory
(** [directory_add d cls oid] appends [oid] to the class's list (creating
    it), keeping one entry per class. *)

val directory_remove : directory -> int -> int -> directory
(** Removes one occurrence; drops the class entry when its list empties. *)

type paths = (int * int list) list
(** Path records: [(head_oid, inner_oids)] — the instantiations of a path
    index entry. *)

val encode_paths : paths -> string
val decode_paths : string -> paths

val encode_oids : int list -> string
val decode_oids : string -> int list
