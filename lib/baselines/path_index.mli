(** The nested index and path index of Kim and Bertino [1].

    Both are B+-trees on the value of the nested attribute at the end of
    a path [A.B.C.attr]:

    - the {e nested index} leaf record holds only the OIDs of the head
      class [A] (access to the top class only);
    - the {e path index} leaf record additionally points to path records
      listing the instantiations [(head, [b; c])], so predicates on
      in-path classes can be answered — at the cost of reading extra
      (potentially many) index pages, which is the weakness Section 2
      notes and the U-index's clustered path components avoid. *)

type variant = Nested | Path

type t

val create : ?config:Btree.config -> Storage.Pager.t -> variant -> t
val variant : t -> variant

val insert :
  t -> value:Objstore.Value.t -> head:int -> inner:int list -> unit
(** [inner] lists the in-path objects (e.g. [[company; employee]]); the
    nested variant ignores it. *)

val remove :
  t -> value:Objstore.Value.t -> head:int -> inner:int list -> unit

val build : t -> (Objstore.Value.t * int * int list) list -> unit

val exact : t -> value:Objstore.Value.t -> int list
(** Head OIDs with this value. *)

val range : t -> lo:Objstore.Value.t -> hi:Objstore.Value.t -> int list

val exact_paths : t -> value:Objstore.Value.t -> (int * int list) list
(** Path-variant only: the full instantiations [(head, inner)]. *)

val exact_restricted :
  t -> value:Objstore.Value.t -> pred:(int list -> bool) -> int list
(** Path-variant only: heads whose inner objects satisfy [pred] — the
    in-path-predicate queries path indexes exist for. *)

val pager : t -> Storage.Pager.t
val entry_count : t -> int
