module Bu = Storage.Bytes_util
module Pager = Storage.Pager
module Value = Objstore.Value

let no_page = 0xFFFFFFFF

(* --- data pages ----------------------------------------------------------

   header: u32 next | u16 nruns
   run:    u16 key_len | key | u32 count | count * u32 oids              *)

type run = { rkey : string; oids : int list }

type dpage = { next : int; runs : run list }

let run_size r = 2 + String.length r.rkey + 4 + (4 * List.length r.oids)

let dpage_size p =
  6 + List.fold_left (fun acc r -> acc + run_size r) 0 p.runs

let encode_dpage ~page_size p =
  let b = Bytes.make page_size '\000' in
  Bu.put_u32 b 0 (if p.next < 0 then no_page else p.next);
  Bu.put_u16 b 4 (List.length p.runs);
  let pos = ref 6 in
  List.iter
    (fun r ->
      Bu.put_u16 b !pos (String.length r.rkey);
      Bytes.blit_string r.rkey 0 b (!pos + 2) (String.length r.rkey);
      pos := !pos + 2 + String.length r.rkey;
      Bu.put_u32 b !pos (List.length r.oids);
      pos := !pos + 4;
      List.iter
        (fun o ->
          Bu.put_u32 b !pos o;
          pos := !pos + 4)
        r.oids)
    p.runs;
  b

let decode_dpage b =
  let next = Bu.get_u32 b 0 in
  let nruns = Bu.get_u16 b 4 in
  let pos = ref 6 in
  let runs =
    List.init nruns (fun _ ->
        let klen = Bu.get_u16 b !pos in
        let rkey = Bytes.sub_string b (!pos + 2) klen in
        pos := !pos + 2 + klen;
        let count = Bu.get_u32 b !pos in
        pos := !pos + 4;
        let oids =
          List.init count (fun i -> Bu.get_u32 b (!pos + (4 * i)))
        in
        pos := !pos + (4 * count);
        { rkey; oids })
  in
  { next = (if next = no_page then -1 else next); runs }

(* --- the index ------------------------------------------------------------ *)

type t = {
  dir : Btree.t;  (* encoded value -> directory blob: (set, data page) *)
  pager : Pager.t;
  (* per-set locator: data pages in chain order with their first keys.
     This stands in for the set links the original keeps in inner nodes;
     it is consulted to find a range query's start page (charged as the
     shared inner-tree descent) and by the write path. *)
  locators : (int, (string * int) list ref) Hashtbl.t;
}

let create ?config pager =
  { dir = Btree.create ?config pager; pager; locators = Hashtbl.create 16 }

let pager t = t.pager

let locator t s =
  match Hashtbl.find_opt t.locators s with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add t.locators s l;
      l

let read_dpage_raw t id = decode_dpage (Pager.read t.pager id)
let write_dpage t id p =
  Pager.write t.pager id (encode_dpage ~page_size:(Pager.page_size t.pager) p)

(* --- directory records ----------------------------------------------------- *)

let dir_get t venc =
  match Btree.find t.dir venc with
  | Some blob -> Blob.decode_directory blob
  | None -> []

let dir_put t venc d =
  match d with
  | [] -> ignore (Btree.delete t.dir venc)
  | d -> Btree.insert t.dir ~key:venc ~value:(Blob.encode_directory d)

let dir_set_entry t venc s page =
  let d = dir_get t venc in
  let d = (s, [ page ]) :: List.remove_assoc s d in
  dir_put t venc (List.sort compare d)

let dir_drop_entry t venc s =
  dir_put t venc (List.remove_assoc s (dir_get t venc))

(* --- write path ------------------------------------------------------------ *)

let capacity t = Pager.page_size t.pager - 6

(* best splitting key: the run boundary closest to the byte midpoint that
   does not separate two runs of the same key (continuations) *)
let split_runs runs =
  let sizes = List.map run_size runs in
  let total = List.fold_left ( + ) 0 sizes in
  let arr = Array.of_list runs in
  let n = Array.length arr in
  let best = ref (-1)
  and best_cost = ref max_int
  and acc = ref 0 in
  List.iteri
    (fun i s ->
      if i < n - 1 then begin
        acc := !acc + s;
        let cost = abs ((2 * !acc) - total) in
        if cost < !best_cost && arr.(i).rkey <> arr.(i + 1).rkey then begin
          best_cost := cost;
          best := i + 1
        end
      end)
    sizes;
  if !best < 0 then None
  else
    Some
      ( Array.to_list (Array.sub arr 0 !best),
        Array.to_list (Array.sub arr !best (n - !best)) )

(* split an oversized single run into page-sized continuation chunks *)
let chop_run t r =
  let cap = capacity t in
  let max_oids = max 1 ((cap - 2 - String.length r.rkey - 4) / 4) in
  let rec go oids =
    if List.length oids <= max_oids then [ { r with oids } ]
    else
      let rec take n acc = function
        | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let chunk, rest = take max_oids [] oids in
      { r with oids = chunk } :: go rest
  in
  go r.oids

let locator_insert l key page =
  let rec go = function
    | (k, p) :: rest when String.compare k key <= 0 -> (k, p) :: go rest
    | rest -> (key, page) :: rest
  in
  l := go !l

let locator_remove l page = l := List.filter (fun (_, p) -> p <> page) !l

let locator_refresh l page first_key =
  l := List.map (fun (k, p) -> if p = page then (first_key, p) else (k, p)) !l;
  l := List.sort (fun (a, _) (b, _) -> String.compare a b) !l

(* page containing the last first_key <= key (where a run for [key] would
   live), or the first page of the chain *)
let locator_find l key =
  let rec go best = function
    | (k, p) :: rest ->
        if String.compare k key <= 0 then go (Some p) rest else best
    | [] -> best
  in
  match go None !l with
  | Some p -> Some p
  | None -> ( match !l with (_, p) :: _ -> Some p | [] -> None)

(* store [runs] into page [id] (keeping its chain position), splitting into
   continuation pages as needed; updates directories for moved keys *)
let rec store_runs t s id (p : dpage) =
  if dpage_size p <= capacity t || List.length p.runs <= 1 then begin
    match p.runs with
    | [ r ] when dpage_size p > capacity t ->
        (* a single oversized run: chop into continuations *)
        let chunks = chop_run t r in
        let rec place id next = function
          | [ c ] -> write_dpage t id { next; runs = [ c ] }
          | c :: rest ->
              let q = Pager.alloc t.pager in
              locator_insert (locator t s) c.rkey q;
              write_dpage t id { next = q; runs = [ c ] };
              place q next rest
          | [] -> ()
        in
        (* directories keep pointing at [id], the first chunk *)
        place id p.next chunks
    | _ ->
        write_dpage t id p;
        (match p.runs with
        | r :: _ -> locator_refresh (locator t s) id r.rkey
        | [] -> ())
  end
  else
    match split_runs p.runs with
    | None ->
        (* all runs share one key; handled by the single-run path above
           after merging them *)
        let oids = List.concat_map (fun r -> r.oids) p.runs in
        let rkey = (List.hd p.runs).rkey in
        store_runs t s id { p with runs = [ { rkey; oids } ] }
    | Some (left, right) ->
        let q = Pager.alloc t.pager in
        (* redirect the directory entries of keys whose FIRST chunk moved
           to [q]; keys whose first chunk stayed on the left keep their
           pointer (continuations are found by following the chain) *)
        let left_keys = List.map (fun r -> r.rkey) left in
        let first_right = (List.hd right).rkey in
        List.iter
          (fun k -> if not (List.mem k left_keys) then dir_set_entry t k s q)
          (List.sort_uniq String.compare (List.map (fun r -> r.rkey) right));
        write_dpage t id { next = q; runs = left };
        locator_refresh (locator t s) id (List.hd left).rkey;
        locator_insert (locator t s) first_right q;
        store_runs t s q { next = p.next; runs = right }

let insert t ~value ~cls:s oid =
  let venc = Value.encode value in
  let d = dir_get t venc in
  match List.assoc_opt s d with
  | Some [ page ] ->
      (* append to the existing run (continuations: append to the last
         chunk by walking while pages still hold this key) *)
      let rec last_chunk id =
        let p = read_dpage_raw t id in
        match List.rev p.runs with
        | { rkey; _ } :: _ when rkey = venc && p.next >= 0 -> (
            let np = read_dpage_raw t p.next in
            match np.runs with
            | { rkey = k2; _ } :: _ when k2 = venc -> last_chunk p.next
            | _ -> id)
        | _ -> id
      in
      let id = last_chunk page in
      let p = read_dpage_raw t id in
      let runs =
        List.map
          (fun r -> if r.rkey = venc then { r with oids = r.oids @ [ oid ] } else r)
          p.runs
      in
      store_runs t s id { p with runs }
  | Some _ | None -> (
      (* no run for (venc, s) yet: put one into the set's chain *)
      match locator_find (locator t s) venc with
      | None ->
          let id = Pager.alloc t.pager in
          write_dpage t id { next = -1; runs = [ { rkey = venc; oids = [ oid ] } ] };
          locator_insert (locator t s) venc id;
          dir_set_entry t venc s id
      | Some id ->
          let p = read_dpage_raw t id in
          let rec place = function
            | r :: rest when String.compare r.rkey venc < 0 -> r :: place rest
            | rest -> { rkey = venc; oids = [ oid ] } :: rest
          in
          dir_set_entry t venc s id;
          store_runs t s id { p with runs = place p.runs })

(* unlink an emptied page from its set's chain and free it *)
let unlink_empty t s id =
  let l = locator t s in
  let rec pred_of prev = function
    | (_, p) :: rest -> if p = id then prev else pred_of (Some p) rest
    | [] -> prev
  in
  let pred = pred_of None !l in
  let next = (read_dpage_raw t id).next in
  (match pred with
  | Some pid ->
      let pp = read_dpage_raw t pid in
      write_dpage t pid { pp with next }
  | None -> ());
  locator_remove l id;
  Pager.free t.pager id

let remove t ~value ~cls:s oid =
  let venc = Value.encode value in
  match List.assoc_opt s (dir_get t venc) with
  | None | Some [] -> ()
  | Some (page :: _) ->
      (* gather the run's chunk pages (continuations follow directly) *)
      let rec chunk_pages id acc =
        if id < 0 then List.rev acc
        else
          let p = read_dpage_raw t id in
          if not (List.exists (fun r -> r.rkey = venc) p.runs) then
            List.rev acc
          else
            let last_is_venc =
              match List.rev p.runs with
              | r :: _ -> r.rkey = venc
              | [] -> false
            in
            if last_is_venc then chunk_pages p.next ((id, p) :: acc)
            else List.rev ((id, p) :: acc)
      in
      let chunks = chunk_pages page [] in
      let oids =
        List.concat_map
          (fun (_, p) ->
            List.concat_map
              (fun r -> if r.rkey = venc then r.oids else [])
              p.runs)
          chunks
      in
      if List.mem oid oids then begin
        let rec remove_one = function
          | o :: rest when o = oid -> rest
          | o :: rest -> o :: remove_one rest
          | [] -> []
        in
        let oids = remove_one oids in
        (* strip the run from every chunk page, then reinstate the merged
           remainder (if any) on the first chunk page *)
        let strip (id, (p : dpage)) keep_run =
          let runs = List.filter (fun r -> r.rkey <> venc) p.runs in
          let runs =
            match keep_run with
            | Some r ->
                let rec place = function
                  | x :: rest when String.compare x.rkey venc < 0 ->
                      x :: place rest
                  | rest -> r :: rest
                in
                place runs
            | None -> runs
          in
          (id, { p with runs })
        in
        match chunks with
        | [] -> ()
        | (fid, _) :: rest ->
            let keep =
              if oids = [] then None else Some { rkey = venc; oids }
            in
            (* process continuation chunks first, re-reading each page at
               use time (unlinking rewrites predecessors' next pointers) *)
            List.iter
              (fun (id, _) ->
                let _, p = strip (id, read_dpage_raw t id) None in
                if p.runs = [] then unlink_empty t s id
                else begin
                  write_dpage t id p;
                  locator_refresh (locator t s) id (List.hd p.runs).rkey
                end)
              rest;
            let _, fp = strip (fid, read_dpage_raw t fid) keep in
            if fp.runs = [] then begin
              unlink_empty t s fid;
              dir_drop_entry t venc s
            end
            else begin
              store_runs t s fid fp;
              if keep = None then dir_drop_entry t venc s
            end
      end

let build t entries =
  List.iter (fun (v, cls, oid) -> insert t ~value:v ~cls oid) entries

(* --- queries --------------------------------------------------------------- *)

let exact t ~value ~sets =
  let venc = Value.encode value in
  let cache = Pager.Cache.create t.pager in
  let read = Pager.Cache.read cache in
  match Btree.find t.dir ~read venc with
  | None -> []
  | Some blob ->
      let d = Blob.decode_directory blob in
      List.concat_map
        (fun s ->
          match List.assoc_opt s d with
          | None | Some [] -> []
          | Some (page :: _) ->
              let rec collect id acc =
                if id < 0 then acc
                else
                  let p = decode_dpage (read id) in
                  let here =
                    List.concat_map
                      (fun r -> if r.rkey = venc then r.oids else [])
                      p.runs
                  in
                  (* continue only while a continuation chunk may follow *)
                  let last_is_venc =
                    match List.rev p.runs with
                    | { rkey; _ } :: _ -> rkey = venc
                    | [] -> false
                  in
                  if here <> [] && last_is_venc then collect p.next (acc @ here)
                  else acc @ here
              in
              List.map (fun o -> (s, o)) (collect page []))
        sets

let range t ~lo ~hi ~sets =
  let lo_enc = Value.encode lo and hi_enc = Value.encode hi in
  let cache = Pager.Cache.create t.pager in
  let read = Pager.Cache.read cache in
  (* one shared inner-tree descent models the set-link lookup *)
  ignore (Btree.find t.dir ~read lo_enc);
  List.concat_map
    (fun s ->
      match locator_find (locator t s) lo_enc with
      | None -> []
      | Some start ->
          let rec walk id acc =
            if id < 0 then acc
            else
              let p = decode_dpage (read id) in
              let keep =
                List.filter
                  (fun r ->
                    String.compare r.rkey lo_enc >= 0
                    && String.compare r.rkey hi_enc <= 0)
                  p.runs
              in
              let acc =
                acc
                @ List.concat_map
                    (fun r -> List.map (fun o -> (s, o)) r.oids)
                    keep
              in
              let beyond =
                List.exists (fun r -> String.compare r.rkey hi_enc > 0) p.runs
              in
              if beyond then acc else walk p.next acc
          in
          walk start [])
    sets

(* --- introspection ---------------------------------------------------------- *)

let entry_count t =
  Hashtbl.fold
    (fun _ l acc ->
      List.fold_left
        (fun acc (_, page) ->
          let p = read_dpage_raw t page in
          acc + List.fold_left (fun a r -> a + List.length r.oids) 0 p.runs)
        acc
        (List.sort_uniq compare !l))
    t.locators 0

let data_page_count t =
  Hashtbl.fold
    (fun _ l acc -> acc + List.length (List.sort_uniq compare !l))
    t.locators 0

let check t =
  let fail fmt = Format.kasprintf failwith fmt in
  Btree.check t.dir;
  Hashtbl.iter
    (fun s l ->
      (* chains must be sorted and match the locator *)
      match !l with
      | [] -> ()
      | (_, first) :: _ ->
          let rec walk id prev_key seen =
            if id < 0 then List.rev seen
            else
              let p = read_dpage_raw t id in
              let prev =
                List.fold_left
                  (fun prev r ->
                    if String.compare prev r.rkey > 0 then
                      fail "set %d: chain out of order" s;
                    r.rkey)
                  prev_key p.runs
              in
              walk p.next prev (id :: seen)
          in
          let chain = walk first "" [] in
          let loc_pages = List.map snd !l |> List.sort_uniq compare in
          if List.sort_uniq compare chain <> loc_pages then
            fail "set %d: locator does not match chain" s)
    t.locators;
  (* every directory pointer must land on a page holding the run *)
  Btree.iter t.dir (fun e ->
      let d = Blob.decode_directory (e.value ()) in
      List.iter
        (fun (s, pages) ->
          match pages with
          | [ page ] ->
              let p = read_dpage_raw t page in
              if not (List.exists (fun r -> r.rkey = e.key) p.runs) then
                fail "directory for set %d points at a page without the run" s
          | _ -> fail "malformed directory entry")
        d)
