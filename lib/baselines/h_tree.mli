(** H-tree: the class-divided index of Lu, Low and Ooi [8].

    One B+-tree per class, nested along the class hierarchy by link
    pointers between the trees.  Pure {e set grouping}: each class's
    entries are clustered by key in its own tree, so range queries on a
    single class are optimal, but retrieval cost grows directly with the
    number of classes queried (one sub-search per class).

    Simplification: the original's inter-tree nesting links (which let a
    parent-tree search position the subtree searches) are not modelled —
    each queried class costs a full descent of its own tree.  The paper's
    qualitative characterisation — best for range queries, cost directly
    proportional to the number of sets — is exactly what this reproduces,
    and is all the experiments exercise. *)

type t

val create :
  ?config:Btree.config -> Storage.Pager.t -> classes:int list -> t
(** One tree per class id. *)

val insert : t -> value:Objstore.Value.t -> cls:int -> int -> unit
val remove : t -> value:Objstore.Value.t -> cls:int -> int -> unit
val build : t -> (Objstore.Value.t * int * int) list -> unit

val exact : t -> value:Objstore.Value.t -> sets:int list -> (int * int) list
val range :
  t ->
  lo:Objstore.Value.t ->
  hi:Objstore.Value.t ->
  sets:int list ->
  (int * int) list

val pager : t -> Storage.Pager.t
val entry_count : t -> int
