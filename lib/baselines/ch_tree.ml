module Value = Objstore.Value

type t = { tree : Btree.t }

let create ?config pager = { tree = Btree.create ?config pager }
let pager t = Btree.pager t.tree
let tree t = t.tree

let update_directory t venc f =
  let dir =
    match Btree.find t.tree venc with
    | Some blob -> Blob.decode_directory blob
    | None -> []
  in
  match f dir with
  | [] -> ignore (Btree.delete t.tree venc)
  | dir -> Btree.insert t.tree ~key:venc ~value:(Blob.encode_directory dir)

let insert t ~value ~cls oid =
  update_directory t (Value.encode value) (fun d -> Blob.directory_add d cls oid)

let remove t ~value ~cls oid =
  update_directory t (Value.encode value) (fun d ->
      Blob.directory_remove d cls oid)

let build t entries =
  let tagged =
    List.map (fun (v, cls, oid) -> (Value.encode v, cls, oid)) entries
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  let flush venc dir =
    if dir <> [] then
      Btree.insert t.tree ~key:venc ~value:(Blob.encode_directory (List.rev dir))
  in
  let rec go cur dir = function
    | (venc, cls, oid) :: rest when venc = cur ->
        go cur (Blob.directory_add dir cls oid) rest
    | (venc, cls, oid) :: rest ->
        flush cur dir;
        go venc (Blob.directory_add [] cls oid) rest
    | [] -> flush cur dir
  in
  match tagged with
  | [] -> ()
  | (venc, cls, oid) :: rest -> go venc (Blob.directory_add [] cls oid) rest

let filter_sets sets dir =
  List.concat_map
    (fun (cls, oids) ->
      if List.mem cls sets then List.map (fun o -> (cls, o)) oids else [])
    dir

let exact t ~value ~sets =
  match Btree.find t.tree (Value.encode value) with
  | None -> []
  | Some blob -> filter_sets sets (Blob.decode_directory blob)

let range t ~lo ~hi ~sets =
  let lo = Value.encode lo
  and hi = Storage.Bytes_util.succ_prefix (Value.encode hi) in
  let out = ref [] in
  Btree.scan_range t.tree ~read:(Btree.raw_read t.tree) ~lo ~hi (fun e ->
      (* key grouping: every record in the range is read in full *)
      let dir = Blob.decode_directory (e.value ()) in
      out := filter_sets sets dir :: !out);
  List.concat (List.rev !out)

let entry_count t =
  let n = ref 0 in
  Btree.iter t.tree (fun e ->
      List.iter (fun (_, oids) -> n := !n + List.length oids)
        (Blob.decode_directory (e.value ())));
  !n
