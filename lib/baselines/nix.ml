module Bu = Storage.Bytes_util
module Value = Objstore.Value

type t = {
  pager : Storage.Pager.t;
  primary : Btree.t;  (* encoded value -> directory (class -> oid multiset) *)
  aux : (int, Btree.t) Hashtbl.t;  (* per class: oid -> parent oid list *)
}

let create ?config pager ~classes =
  let aux = Hashtbl.create (List.length classes) in
  List.iter (fun c -> Hashtbl.replace aux c (Btree.create ?config pager)) classes;
  { pager; primary = Btree.create ?config pager; aux }

let aux_exn t cls =
  match Hashtbl.find_opt t.aux cls with
  | Some tr -> tr
  | None -> invalid_arg "Nix: class not registered"

let update_primary t venc f =
  let dir =
    match Btree.find t.primary venc with
    | Some blob -> Blob.decode_directory blob
    | None -> []
  in
  match f dir with
  | [] -> ignore (Btree.delete t.primary venc)
  | dir -> Btree.insert t.primary ~key:venc ~value:(Blob.encode_directory dir)

let aux_update t cls oid f =
  let tr = aux_exn t cls in
  let key = Bu.encode_u32 oid in
  let parents =
    match Btree.find tr key with
    | Some blob -> Blob.decode_oids blob
    | None -> []
  in
  match f parents with
  | [] -> ignore (Btree.delete tr key)
  | parents -> Btree.insert tr ~key ~value:(Blob.encode_oids parents)

let insert_chain t ~value chain =
  let venc = Value.encode value in
  update_primary t venc (fun dir ->
      List.fold_left (fun dir (cls, oid) -> Blob.directory_add dir cls oid) dir chain);
  (* parent links: the component after [x] in target-first order is the
     object referencing [x] *)
  let rec link = function
    | (cls, oid) :: ((_, parent) :: _ as rest) ->
        aux_update t cls oid (fun ps -> ps @ [ parent ]);
        link rest
    | [ _ ] | [] -> ()
  in
  link chain

let remove_chain t ~value chain =
  let venc = Value.encode value in
  update_primary t venc (fun dir ->
      List.fold_left
        (fun dir (cls, oid) -> Blob.directory_remove dir cls oid)
        dir chain);
  let rec unlink = function
    | (cls, oid) :: ((_, parent) :: _ as rest) ->
        aux_update t cls oid (fun ps ->
            let rec remove_one = function
              | p :: r when p = parent -> r
              | p :: r -> p :: remove_one r
              | [] -> []
            in
            remove_one ps);
        unlink rest
    | [ _ ] | [] -> ()
  in
  unlink chain

let filter_sets sets dir =
  List.concat_map
    (fun (cls, oids) ->
      if List.mem cls sets then
        List.sort_uniq compare oids |> List.map (fun o -> (cls, o))
      else [])
    dir

let exact t ~value ~sets =
  match Btree.find t.primary (Value.encode value) with
  | None -> []
  | Some blob -> filter_sets sets (Blob.decode_directory blob)

let range t ~lo ~hi ~sets =
  let lo = Value.encode lo
  and hi = Storage.Bytes_util.succ_prefix (Value.encode hi) in
  let out = ref [] in
  Btree.scan_range t.primary ~read:(Btree.raw_read t.primary) ~lo ~hi (fun e ->
      out := filter_sets sets (Blob.decode_directory (e.value ())) :: !out);
  List.concat (List.rev !out)

let parents t ~cls oid =
  match Btree.find (aux_exn t cls) (Bu.encode_u32 oid) with
  | Some blob -> Blob.decode_oids blob
  | None -> []

let pager t = t.pager

let entry_count t =
  let n = ref 0 in
  Btree.iter t.primary (fun e ->
      List.iter
        (fun (_, oids) -> n := !n + List.length oids)
        (Blob.decode_directory (e.value ())));
  !n
