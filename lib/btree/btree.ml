module Node = Node
module Bu = Storage.Bytes_util
module Pager = Storage.Pager

(* Process-wide instruments (see Obs.Metrics).  [node_visits] counts the
   paper's "visited nodes" — every node touched during a descent or
   pruned scan, whether or not the page read was absorbed by a cache. *)
let m_descents =
  Obs.Metrics.counter ~subsystem:"btree" ~help:"root-to-leaf descents"
    "descents"

let m_node_visits =
  Obs.Metrics.counter ~subsystem:"btree"
    ~help:"nodes visited during lookups and scans" "node_visits"

let h_visit_level =
  Obs.Metrics.histogram ~subsystem:"btree"
    ~help:"tree level (root = 0) of each node visit" "visit_level"

let m_fc_saved =
  Obs.Metrics.counter ~subsystem:"btree"
    ~help:"key bytes elided by front compression on encode" "fc_bytes_saved"

let m_splits =
  Obs.Metrics.counter ~subsystem:"btree"
    ~help:"node splits (each extra node produced)" "splits"

let visit_node level =
  Obs.Metrics.incr m_node_visits;
  Obs.Metrics.observe h_visit_level level

(* Read-path selector: the fast path searches encoded pages in place
   (see Node.leaf_search); the reference path decodes every node it
   touches.  Both issue identical page reads and metrics, differing only
   in allocation — kept switchable at runtime so benchmarks can A/B them
   and the differential suite can prove them byte-identical. *)
let fast_flag = Atomic.make true
let set_fast_descent on = Atomic.set fast_flag on
let fast_descent () = Atomic.get fast_flag

type config = {
  max_entries : int option;
  front_coding : bool;
  overflow_threshold : int;
}

let default_config ~page_size =
  {
    max_entries = None;
    front_coding = true;
    overflow_threshold = (page_size - Node.header_size) / 4;
  }

module Buffer_pool = Storage.Buffer_pool

type t = {
  pager : Pager.t;
  cfg : config;
  mutable root : int;
  mutable height : int;
  mutable pool : Buffer_pool.t option;
      (* shared page source: reads go through the pool, writes are
         written through, frees invalidate — see write_page/free_page *)
}

let pager t = t.pager
let config t = t.cfg
let height t = t.height
let pool t = t.pool

let set_pool t pool =
  (match pool with
  | Some p when Buffer_pool.pager p != t.pager ->
      invalid_arg "Btree.set_pool: pool is over a different pager"
  | Some _ | None -> ());
  t.pool <- pool

let page_size t = Pager.page_size t.pager

(* Every page write and free must keep the shared pool coherent: a write
   refreshes the resident copy (write-through), a free drops it before
   the pager can recycle the id for unrelated content. *)
let write_page t id page =
  Pager.write t.pager id page;
  match t.pool with Some p -> Buffer_pool.update p id page | None -> ()

let free_page t id =
  (match t.pool with Some p -> Buffer_pool.invalidate p id | None -> ());
  Pager.free t.pager id

let store t id node =
  let saved = ref 0 in
  write_page t id
    (Node.encode ~saved ~front_coding:t.cfg.front_coding
       ~page_size:(page_size t) node);
  Obs.Metrics.add m_fc_saved !saved

let create ?config ?pool pager =
  let cfg =
    match config with
    | Some c -> c
    | None -> default_config ~page_size:(Pager.page_size pager)
  in
  let t = { pager; cfg; root = -1; height = 1; pool = None } in
  set_pool t pool;
  let root = Pager.alloc pager in
  t.root <- root;
  store t root (Node.Leaf { lkeys = [||]; lvals = [||]; next = -1 });
  t

let root t = t.root

(* A page that reaches us but no longer parses as a node is damage the
   pager's checksums did not (or could not) catch — report it as typed
   corruption, never as a bare API error. *)
let load read id =
  let b = read id in
  try Node.decode b
  with Invalid_argument detail | Failure detail ->
    raise
      (Storage.Storage_error.Corruption
         { page = Some id; component = "btree.node"; detail })

let corrupt id detail =
  raise
    (Storage.Storage_error.Corruption
       { page = Some id; component = "btree.node"; detail })

let attach ?config ?pool pager ~root =
  let cfg =
    match config with
    | Some c -> c
    | None -> default_config ~page_size:(Pager.page_size pager)
  in
  let t = { pager; cfg; root; height = 1; pool = None } in
  set_pool t pool;
  (* recover the height from the leftmost path; through [load] so a
     corrupt page surfaces as typed corruption, not a bare decode error *)
  let rec descend id h =
    match load (Pager.read pager) id with
    | Node.Leaf _ -> h
    | Node.Internal n -> descend n.children.(0) (h + 1)
  in
  t.height <- descend root 1;
  t

(* The root page id is the only state outside the pager; persist it in the
   pager's header metadata so a reopened file is self-describing. *)
let meta_tag = "BT1"

let sync t =
  Pager.set_meta t.pager (meta_tag ^ Bu.encode_u32 t.root);
  Pager.sync t.pager

let reattach ?config ?pool pager =
  let m = Pager.meta pager in
  if String.length m <> 7 || String.sub m 0 3 <> meta_tag then
    raise
      (Storage.Storage_error.Corruption
         {
           page = None;
           component = "btree.meta";
           detail = "Btree.reattach: pager metadata does not name a tree root";
         });
  attach ?config ?pool pager ~root:(Bu.decode_u32 m 3)

(* Borrowed reads: the tree never mutates a page it has read (all
   updates re-encode into fresh buffers and go through [write_page]), so
   pool hits can hand out the resident bytes without copying. *)
let raw_read t id =
  match t.pool with
  | Some p -> Buffer_pool.read_ro p id
  | None -> Pager.read t.pager id

let cached_read t = Pager.Cache.of_read (raw_read t)

(* Quiet page access for introspection: reads pages without perturbing the
   experiment's counters. *)
let quiet_read t id =
  let s = t.pager |> Pager.stats in
  let before = Storage.Stats.snapshot s in
  let b = Pager.read t.pager id in
  s.reads <- before.reads;
  b

(* --- overflow value chains ------------------------------------------- *)

let chunk_capacity t = page_size t - 6

let write_overflow t data =
  let cap = chunk_capacity t in
  let len = String.length data in
  let nchunks = max 1 ((len + cap - 1) / cap) in
  let next = ref 0xFFFFFFFF in
  (* write chunks back to front so each knows its successor *)
  for i = nchunks - 1 downto 0 do
    let off = i * cap in
    let clen = min cap (len - off) in
    let page = Bytes.make (page_size t) '\000' in
    Bu.put_u32 page 0 !next;
    Bu.put_u16 page 4 clen;
    Bytes.blit_string data off page 6 clen;
    let id = Pager.alloc t.pager in
    write_page t id page;
    next := id
  done;
  !next

let read_overflow read head length =
  let buf = Buffer.create length in
  let rec go id =
    if id <> 0xFFFFFFFF && id >= 0 then begin
      let b = read id in
      let next = Bu.get_u32 b 0 in
      let clen = Bu.get_u16 b 4 in
      Buffer.add_subbytes buf b 6 clen;
      go next
    end
  in
  go head;
  Buffer.contents buf

let free_overflow t head =
  let rec go id =
    if id <> 0xFFFFFFFF && id >= 0 then begin
      let b = quiet_read t id in
      let next = Bu.get_u32 b 0 in
      free_page t id;
      go next
    end
  in
  go head

let make_value t v =
  (* values at or above [overflow_marker] cannot be inlined regardless of
     the configured threshold: the u16 length field would truncate (or
     collide with the marker itself) *)
  if
    String.length v > t.cfg.overflow_threshold
    || String.length v >= Node.overflow_marker
  then Node.Overflow { head = write_overflow t v; length = String.length v }
  else Node.Inline v

(* Entry-size guard: a key must be able to sit alone in a fresh leaf —
   otherwise a split cannot isolate it and the split loop stalls — and
   must stay within the u16 suffix-length field even uncompressed. *)
let check_entry_fits t key value =
  if String.length key > 0xFFFF then
    invalid_arg "Btree: key exceeds 65535 bytes";
  let payload =
    if
      String.length value > t.cfg.overflow_threshold
      || String.length value >= Node.overflow_marker
    then 10
    else 2 + String.length value
  in
  if Node.header_size + 4 + String.length key + payload > page_size t then
    invalid_arg "Btree: key too large for a leaf page"

let resolve_value read = function
  | Node.Inline s -> s
  | Node.Overflow { head; length } -> read_overflow read head length

let free_value t = function
  | Node.Inline _ -> ()
  | Node.Overflow { head; _ } -> free_overflow t head

(* --- array helpers ---------------------------------------------------- *)

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

(* first index with a.(i) >= key, or length *)
let lower_bound a key =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare a.(mid) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* first index with a.(i) > key, or length *)
let upper_bound a key =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare a.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* child to descend into for [key] *)
let child_index (n : Node.internal) key = upper_bound n.ikeys key

(* --- capacity --------------------------------------------------------- *)

let nkeys = function
  | Node.Leaf l -> Array.length l.lkeys
  | Node.Internal n -> Array.length n.ikeys

let fits t node =
  Node.size ~front_coding:t.cfg.front_coding node <= page_size t
  && match t.cfg.max_entries with None -> true | Some m -> nkeys node <= m

let min_entries t =
  match t.cfg.max_entries with Some m -> max 1 (m / 2) | None -> 1

let underfull t node =
  let size_low =
    Node.size ~front_coding:t.cfg.front_coding node < page_size t / 3
  in
  match t.cfg.max_entries with
  | Some _ -> nkeys node < min_entries t
  | None -> size_low

(* can give one entry away without itself underflowing *)
let can_spare t node =
  let n = nkeys node in
  n >= 2
  &&
  match t.cfg.max_entries with
  | Some _ -> n - 1 >= min_entries t
  | None ->
      (* approximate: dropping the largest entry keeps us above the floor *)
      Node.size ~front_coding:t.cfg.front_coding node * (n - 1) / n
      >= page_size t / 3

(* --- split ------------------------------------------------------------ *)

(* Entry sizes as serialized in the original node; splitting at [s]
   uncompresses entry [s] (it becomes the first of the right node). *)
let entry_sizes ~front_coding node =
  let sizes keys payload =
    let n = Array.length keys in
    let e = Array.make n 0 in
    let p = Array.make n 0 in
    let prev = ref "" in
    for i = 0 to n - 1 do
      let pl =
        if front_coding then min (Bu.common_prefix_len !prev keys.(i)) 0xFFFF
        else 0
      in
      p.(i) <- pl;
      e.(i) <- 4 + (String.length keys.(i) - pl) + payload i;
      prev := keys.(i)
    done;
    (e, p)
  in
  match node with
  | Node.Leaf { lkeys; lvals; _ } ->
      sizes lkeys (fun i -> Node.inline_size lvals.(i))
  | Node.Internal { ikeys; _ } -> sizes ikeys (fun _ -> 4)

let choose_split t node =
  let fc = t.cfg.front_coding in
  let e, p = entry_sizes ~front_coding:fc node in
  let n = Array.length e in
  assert (n >= 2);
  let total = Array.fold_left ( + ) 0 e in
  let best = ref 1 and best_cost = ref max_int in
  let left = ref e.(0) in
  for s = 1 to n - 1 do
    let l = Node.header_size + !left in
    let r = Node.header_size + (total - !left) + p.(s) in
    let cost = max l r in
    if cost < !best_cost then begin
      best_cost := cost;
      best := s
    end;
    left := !left + e.(s)
  done;
  !best

(* --- insert ------------------------------------------------------------ *)

(* Returns [Some (separator, new_right_page)] when the child split. *)
let rec insert_at t id key value =
  match load (raw_read t) id with
  | Node.Leaf l ->
      let i = lower_bound l.lkeys key in
      let l =
        if i < Array.length l.lkeys && l.lkeys.(i) = key then begin
          free_value t l.lvals.(i);
          let lvals = Array.copy l.lvals in
          lvals.(i) <- value;
          { l with lvals }
        end
        else
          {
            l with
            lkeys = array_insert l.lkeys i key;
            lvals = array_insert l.lvals i value;
          }
      in
      if fits t (Leaf l) then begin
        store t id (Leaf l);
        None
      end
      else begin
        Obs.Metrics.incr m_splits;
        let s = choose_split t (Leaf l) in
        let right_id = Pager.alloc t.pager in
        let left : Node.leaf =
          {
            lkeys = Array.sub l.lkeys 0 s;
            lvals = Array.sub l.lvals 0 s;
            next = right_id;
          }
        in
        let right : Node.leaf =
          {
            lkeys = Array.sub l.lkeys s (Array.length l.lkeys - s);
            lvals = Array.sub l.lvals s (Array.length l.lvals - s);
            next = l.next;
          }
        in
        store t id (Leaf left);
        store t right_id (Leaf right);
        Some (right.lkeys.(0), right_id)
      end
  | Node.Internal n -> (
      let ci = child_index n key in
      match insert_at t n.children.(ci) key value with
      | None -> None
      | Some (sep, new_child) ->
          let n : Node.internal =
            {
              ikeys = array_insert n.ikeys ci sep;
              children = array_insert n.children (ci + 1) new_child;
            }
          in
          if fits t (Internal n) then begin
            store t id (Internal n);
            None
          end
          else begin
            Obs.Metrics.incr m_splits;
            let s = choose_split t (Internal n) in
            let sep_up = n.ikeys.(s) in
            let right_id = Pager.alloc t.pager in
            let left : Node.internal =
              {
                ikeys = Array.sub n.ikeys 0 s;
                children = Array.sub n.children 0 (s + 1);
              }
            in
            let right : Node.internal =
              {
                ikeys = Array.sub n.ikeys (s + 1) (Array.length n.ikeys - s - 1);
                children =
                  Array.sub n.children (s + 1) (Array.length n.children - s - 1);
              }
            in
            store t id (Internal left);
            store t right_id (Internal right);
            Some (sep_up, right_id)
          end)

let insert t ~key ~value =
  check_entry_fits t key value;
  let value = make_value t value in
  match insert_at t t.root key value with
  | None -> ()
  | Some (sep, right) ->
      let new_root = Pager.alloc t.pager in
      store t new_root
        (Internal { ikeys = [| sep |]; children = [| t.root; right |] });
      t.root <- new_root;
      t.height <- t.height + 1

(* --- batched insert ------------------------------------------------------ *)

(* Split an over-full leaf into as many fitting leaves as needed; the
   first reuses [id], the rest are fresh pages chained in between.
   Returns the separators/pages to add to the parent. *)
let multiway_split_leaf t id (l : Node.leaf) =
  let n = Array.length l.lkeys in
  let fits_prefix start len =
    let node =
      Node.Leaf
        {
          lkeys = Array.sub l.lkeys start len;
          lvals = Array.sub l.lvals start len;
          next = -1;
        }
    in
    fits t node
  in
  (* greedy partition into maximal fitting runs *)
  let rec partition start acc =
    if start >= n then List.rev acc
    else begin
      let len = ref 1 in
      while start + !len < n && fits_prefix start (!len + 1) do incr len done;
      partition (start + !len) ((start, !len) :: acc)
    end
  in
  let parts = partition 0 [] in
  match parts with
  | [] | [ _ ] ->
      store t id (Node.Leaf l);
      []
  | first :: rest ->
      Obs.Metrics.add m_splits (List.length rest);
      let pages = List.map (fun _ -> Pager.alloc t.pager) rest in
      let page_of = Array.of_list (id :: pages) in
      let parts = Array.of_list (first :: rest) in
      let splits = ref [] in
      for i = Array.length parts - 1 downto 0 do
        let start, len = parts.(i) in
        let next =
          if i = Array.length parts - 1 then l.next else page_of.(i + 1)
        in
        store t page_of.(i)
          (Node.Leaf
             {
               lkeys = Array.sub l.lkeys start len;
               lvals = Array.sub l.lvals start len;
               next;
             });
        if i > 0 then splits := (l.lkeys.(start), page_of.(i)) :: !splits
      done;
      !splits

(* Likewise for an over-full internal node; separators between parts are
   promoted. *)
let multiway_split_internal t id (nd : Node.internal) =
  let nk = Array.length nd.ikeys in
  let fits_slice kstart klen =
    fits t
      (Node.Internal
         {
           ikeys = Array.sub nd.ikeys kstart klen;
           children = Array.sub nd.children kstart (klen + 1);
         })
  in
  (* partition the key range [0, nk) into runs, consuming one promoted
     key between consecutive runs; every promoted key must be followed by
     a non-empty run, so the tail is never dropped *)
  let rec partition kstart acc =
    let remaining = nk - kstart in
    let maxfit = ref 1 in
    while !maxfit < remaining && fits_slice kstart (!maxfit + 1) do
      incr maxfit
    done;
    if !maxfit >= remaining then List.rev ((kstart, remaining) :: acc)
    else begin
      (* keep at least one key for the next run after the promotion *)
      let len = max 1 (min !maxfit (remaining - 2)) in
      partition (kstart + len + 1) ((kstart, len) :: acc)
    end
  in
  let parts = partition 0 [] in
  match parts with
  | [] | [ _ ] ->
      store t id (Node.Internal nd);
      []
  | first :: rest ->
      Obs.Metrics.add m_splits (List.length rest);
      let pages = List.map (fun _ -> Pager.alloc t.pager) rest in
      let page_of = Array.of_list (id :: pages) in
      let parts = Array.of_list (first :: rest) in
      let splits = ref [] in
      for i = Array.length parts - 1 downto 0 do
        let kstart, klen = parts.(i) in
        store t page_of.(i)
          (Node.Internal
             {
               ikeys = Array.sub nd.ikeys kstart klen;
               children = Array.sub nd.children kstart (klen + 1);
             });
        if i > 0 then
          (* the promoted key precedes this part *)
          splits := (nd.ikeys.(kstart - 1), page_of.(i)) :: !splits
      done;
      !splits

let insert_batch t kvs =
  if kvs <> [] then begin
    List.iter (fun (k, v) -> check_entry_fits t k v) kvs;
    (* stable sort; later occurrences of a key win, as with sequential
       insertion *)
    let arr = Array.of_list kvs in
    let tagged = Array.mapi (fun i (k, v) -> (k, i, v)) arr in
    Array.sort compare tagged;
    let deduped = ref [] in
    Array.iteri
      (fun i (k, _, v) ->
        let last =
          i = Array.length tagged - 1
          || (match tagged.(i + 1) with k', _, _ -> k' <> k)
        in
        if last then deduped := (k, v) :: !deduped)
      tagged;
    let entries = List.rev !deduped in
    (* [go id entries] merges the sorted entries into the subtree rooted
       at [id]; returns the (separator, page) splits for the parent *)
    let rec go id entries =
      if entries = [] then []
      else
        match load (raw_read t) id with
        | Node.Leaf l ->
            let merged_k = ref [] and merged_v = ref [] in
            let push k v =
              merged_k := k :: !merged_k;
              merged_v := v :: !merged_v
            in
            let rec merge i entries =
              match entries with
              | [] ->
                  for j = i to Array.length l.lkeys - 1 do
                    push l.lkeys.(j) l.lvals.(j)
                  done
              | (k, v) :: rest ->
                  if i >= Array.length l.lkeys then begin
                    push k (make_value t v);
                    merge i rest
                  end
                  else
                    let c = String.compare l.lkeys.(i) k in
                    if c < 0 then begin
                      push l.lkeys.(i) l.lvals.(i);
                      merge (i + 1) entries
                    end
                    else if c = 0 then begin
                      free_value t l.lvals.(i);
                      push k (make_value t v);
                      merge (i + 1) rest
                    end
                    else begin
                      push k (make_value t v);
                      merge i rest
                    end
            in
            merge 0 entries;
            let l =
              {
                l with
                Node.lkeys = Array.of_list (List.rev !merged_k);
                lvals = Array.of_list (List.rev !merged_v);
              }
            in
            if fits t (Node.Leaf l) then begin
              store t id (Node.Leaf l);
              []
            end
            else multiway_split_leaf t id l
        | Node.Internal nd ->
            (* partition entries over the children and recurse *)
            let nk = Array.length nd.ikeys in
            let splits = ref [] in
            let rec by_child ci entries =
              if entries <> [] then
                if ci >= nk then
                  splits := (ci, go nd.children.(ci) entries) :: !splits
                else begin
                  let sep = nd.ikeys.(ci) in
                  let mine, rest =
                    List.partition (fun (k, _) -> String.compare k sep < 0) entries
                  in
                  if mine <> [] then
                    splits := (ci, go nd.children.(ci) mine) :: !splits;
                  by_child (ci + 1) rest
                end
            in
            by_child 0 entries;
            (* fold the children's splits into this node, rightmost first
               so indices stay valid *)
            let ikeys = ref nd.ikeys and children = ref nd.children in
            List.iter
              (fun (ci, child_splits) ->
                List.iteri
                  (fun j (sep, page) ->
                    ikeys := array_insert !ikeys (ci + j) sep;
                    children := array_insert !children (ci + j + 1) page)
                  child_splits)
              !splits;
            let nd = { Node.ikeys = !ikeys; children = !children } in
            if fits t (Node.Internal nd) then begin
              store t id (Node.Internal nd);
              []
            end
            else multiway_split_internal t id nd
    in
    match go t.root entries with
    | [] -> ()
    | splits ->
        (* the root split (possibly many ways): add levels until a single
           root fits *)
        let rec add_level child0 splits =
          let nd =
            {
              Node.ikeys = Array.of_list (List.map fst splits);
              children = Array.of_list (child0 :: List.map snd splits);
            }
          in
          let id = Pager.alloc t.pager in
          t.root <- id;
          t.height <- t.height + 1;
          if fits t (Node.Internal nd) then store t id (Node.Internal nd)
          else
            let up = multiway_split_internal t id nd in
            if up <> [] then add_level id up
        in
        add_level t.root splits
  end

(* --- delete ------------------------------------------------------------ *)

(* Rebalance child [ci] of internal node [n]; returns the updated parent. *)
let fix_child t (n : Node.internal) ci : Node.internal =
  let merge_into_left li ri sep_idx =
    let left_id = n.children.(li) and right_id = n.children.(ri) in
    let left = load (raw_read t) left_id
    and right = load (raw_read t) right_id in
    let merged =
      match (left, right) with
      | Node.Leaf a, Node.Leaf b ->
          Node.Leaf
            {
              lkeys = Array.append a.lkeys b.lkeys;
              lvals = Array.append a.lvals b.lvals;
              next = b.next;
            }
      | Node.Internal a, Node.Internal b ->
          Node.Internal
            {
              ikeys =
                Array.concat [ a.ikeys; [| n.ikeys.(sep_idx) |]; b.ikeys ];
              children = Array.append a.children b.children;
            }
      | _ ->
          raise
            (Storage.Storage_error.Corruption
               {
                 page = None;
                 component = "btree.node";
                 detail = "Btree: sibling kind mismatch";
               })
    in
    if fits t merged then begin
      store t left_id merged;
      free_page t right_id;
      Some
        {
          Node.ikeys = array_remove n.ikeys sep_idx;
          children = array_remove n.children ri;
        }
    end
    else None
  in
  let borrow_from_right () =
    let left_id = n.children.(ci) and right_id = n.children.(ci + 1) in
    let left = load (raw_read t) left_id
    and right = load (raw_read t) right_id in
    if not (can_spare t right) then None
    else
      let new_sep =
        match (left, right) with
        | Node.Leaf a, Node.Leaf b ->
            let k = b.lkeys.(0) and v = b.lvals.(0) in
            store t left_id
              (Leaf
                 {
                   a with
                   lkeys = Array.append a.lkeys [| k |];
                   lvals = Array.append a.lvals [| v |];
                 });
            store t right_id
              (Leaf
                 {
                   b with
                   lkeys = array_remove b.lkeys 0;
                   lvals = array_remove b.lvals 0;
                 });
            b.lkeys.(1)
        | Node.Internal a, Node.Internal b ->
            store t left_id
              (Internal
                 {
                   ikeys = Array.append a.ikeys [| n.ikeys.(ci) |];
                   children = Array.append a.children [| b.children.(0) |];
                 });
            store t right_id
              (Internal
                 {
                   ikeys = array_remove b.ikeys 0;
                   children = array_remove b.children 0;
                 });
            b.ikeys.(0)
        | _ ->
            raise
              (Storage.Storage_error.Corruption
                 {
                   page = None;
                   component = "btree.node";
                   detail = "Btree: sibling kind mismatch";
                 })
      in
      let ikeys = Array.copy n.ikeys in
      ikeys.(ci) <- new_sep;
      Some { n with ikeys }
  in
  let borrow_from_left () =
    let left_id = n.children.(ci - 1) and right_id = n.children.(ci) in
    let left = load (raw_read t) left_id
    and right = load (raw_read t) right_id in
    if not (can_spare t left) then None
    else
      let new_sep =
        match (left, right) with
        | Node.Leaf a, Node.Leaf b ->
            let last = Array.length a.lkeys - 1 in
            let k = a.lkeys.(last) and v = a.lvals.(last) in
            store t left_id
              (Leaf
                 {
                   a with
                   lkeys = Array.sub a.lkeys 0 last;
                   lvals = Array.sub a.lvals 0 last;
                 });
            store t right_id
              (Leaf
                 {
                   b with
                   lkeys = array_insert b.lkeys 0 k;
                   lvals = array_insert b.lvals 0 v;
                 });
            k
        | Node.Internal a, Node.Internal b ->
            let last = Array.length a.ikeys - 1 in
            let up = a.ikeys.(last) in
            store t left_id
              (Internal
                 {
                   ikeys = Array.sub a.ikeys 0 last;
                   children = Array.sub a.children 0 (last + 1);
                 });
            store t right_id
              (Internal
                 {
                   ikeys = array_insert b.ikeys 0 n.ikeys.(ci - 1);
                   children = array_insert b.children 0 a.children.(last + 1);
                 });
            up
        | _ ->
            raise
              (Storage.Storage_error.Corruption
                 {
                   page = None;
                   component = "btree.node";
                   detail = "Btree: sibling kind mismatch";
                 })
      in
      let ikeys = Array.copy n.ikeys in
      ikeys.(ci - 1) <- new_sep;
      Some { n with ikeys }
  in
  let try_right () =
    if ci + 1 > Array.length n.ikeys then None
    else
      match borrow_from_right () with
      | Some n -> Some n
      | None -> merge_into_left ci (ci + 1) ci
  in
  let try_left () =
    if ci = 0 then None
    else
      match borrow_from_left () with
      | Some n -> Some n
      | None -> merge_into_left (ci - 1) ci (ci - 1)
  in
  match try_right () with
  | Some n -> n
  | None -> ( match try_left () with Some n -> n | None -> n)

let rec delete_at t id key =
  match load (raw_read t) id with
  | Node.Leaf l ->
      let i = lower_bound l.lkeys key in
      if i < Array.length l.lkeys && l.lkeys.(i) = key then begin
        free_value t l.lvals.(i);
        let l =
          {
            l with
            Node.lkeys = array_remove l.lkeys i;
            lvals = array_remove l.lvals i;
          }
        in
        store t id (Leaf l);
        (true, underfull t (Leaf l))
      end
      else (false, false)
  | Node.Internal n ->
      let ci = child_index n key in
      let present, child_underflow = delete_at t n.children.(ci) key in
      if not child_underflow then (present, false)
      else
        let n = fix_child t n ci in
        store t id (Internal n);
        (present, underfull t (Internal n))

let delete t key =
  let present, _ = delete_at t t.root key in
  (* collapse a root that lost all separators *)
  (match load (quiet_read t) t.root with
  | Node.Internal { ikeys = [||]; children } ->
      free_page t t.root;
      t.root <- children.(0);
      t.height <- t.height - 1
  | Node.Internal _ | Node.Leaf _ -> ());
  present

(* --- lookups ------------------------------------------------------------ *)

type entry = { key : string; value : unit -> string }

let find_leaf read root key =
  Obs.Metrics.incr m_descents;
  let rec go id level =
    visit_node level;
    match load read id with
    | Node.Leaf l -> (id, l)
    | Node.Internal n -> go n.children.(child_index n key) (level + 1)
  in
  go root 0

let find_decode t read key =
  let _, l = find_leaf read t.root key in
  let i = lower_bound l.lkeys key in
  if i < Array.length l.lkeys && l.lkeys.(i) = key then
    Some (resolve_value read l.lvals.(i))
  else None

let mem_decode t read key =
  let _, l = find_leaf read t.root key in
  let i = lower_bound l.lkeys key in
  i < Array.length l.lkeys && l.lkeys.(i) = key

(* Fast-path descent to the leaf covering [key]: kind byte plus
   compare-in-place child selection on the raw page — no decode, no
   allocation.  Top-level recursion (not a local closure) so a warm-pool
   point lookup allocates nothing at all.  The [_raw] variant reads the
   tree's own page source directly; building a [raw_read t] closure per
   call would defeat the point. *)
let rec fast_leaf_raw t key id level =
  visit_node level;
  let b = raw_read t id in
  match Node.is_leaf_page b with
  | true -> b
  | false -> (
      match Node.child_in_place b key with
      | c -> fast_leaf_raw t key c (level + 1)
      | exception (Invalid_argument d | Failure d) -> corrupt id d)
  | exception (Invalid_argument d | Failure d) -> corrupt id d

let rec fast_leaf_with read key id level =
  visit_node level;
  let b = read id in
  match Node.is_leaf_page b with
  | true -> b
  | false -> (
      match Node.child_in_place b key with
      | c -> fast_leaf_with read key c (level + 1)
      | exception (Invalid_argument d | Failure d) -> corrupt id d)
  | exception (Invalid_argument d | Failure d) -> corrupt id d

(* On a leaf that fails to parse mid-search the fast path no longer
   knows which page it is on; the decoding reference path re-derives the
   typed corruption report (with its page id) — or, if the damage was
   transient, the correct answer. *)
let find t ?read key =
  if Atomic.get fast_flag then (
    try
      Obs.Metrics.incr m_descents;
      let b =
        match read with
        | None -> fast_leaf_raw t key t.root 0
        | Some r -> fast_leaf_with r key t.root 0
      in
      let r = Node.leaf_search b key in
      if Node.search_exact r then
        Some
          (match
             Node.leaf_value b (Node.leaf_payload_off b (Node.search_off r))
           with
          | Node.Inline s -> s
          | Node.Overflow { head; length } ->
              let read = match read with Some r -> r | None -> raw_read t in
              read_overflow read head length)
      else None
    with Invalid_argument _ | Failure _ ->
      find_decode t (match read with Some r -> r | None -> raw_read t) key)
  else find_decode t (match read with Some r -> r | None -> raw_read t) key

let mem t ?read key =
  if Atomic.get fast_flag then (
    try
      Obs.Metrics.incr m_descents;
      let b =
        match read with
        | None -> fast_leaf_raw t key t.root 0
        | Some r -> fast_leaf_with r key t.root 0
      in
      Node.search_exact (Node.leaf_search b key)
    with Invalid_argument _ | Failure _ ->
      mem_decode t (match read with Some r -> r | None -> raw_read t) key)
  else mem_decode t (match read with Some r -> r | None -> raw_read t) key

let make_entry read (l : Node.leaf) i =
  { key = l.lkeys.(i); value = (fun () -> resolve_value read l.lvals.(i)) }

(* --- scanner ------------------------------------------------------------ *)

module Scanner = struct
  type tree = t

  (* One scanner carries both read paths, selected by [fast] (sampled
     from the process-wide mode at create/reset time so a query never
     mixes them).  The fast cursor walks the encoded leaf page directly,
     reconstructing only the key under the cursor into the reusable
     [keybuf] scratch — entries a scan skips past are never
     materialized, and values only on [entry.value ()].  The reference
     cursor decodes nodes as before, memoizing internal ones only: the
     leaf chain is visited once per scan, so memoizing leaves (the
     pre-PR-8 behaviour) pinned every decoded leaf of a full iteration.
     All mutable state is recycled by [reset], so a session can reuse
     one scanner (and its memo table and scratch) across queries. *)
  type t = {
    mutable tree : tree;
    mutable read : int -> Bytes.t;
    mutable fast : bool;
    (* reference path *)
    memo : (int, Node.t) Hashtbl.t;  (* internal nodes only *)
    mutable leaf : Node.leaf option;
    mutable idx : int;
    (* fast path *)
    pmemo : (int, Bytes.t) Hashtbl.t;  (* raw internal pages only *)
    mutable page : Bytes.t;  (* current leaf page; [Bytes.empty] = unpositioned *)
    mutable pid : int;  (* its page id, for corruption reports *)
    mutable n : int;  (* its entry count *)
    mutable next_leaf : int;
    mutable fidx : int;  (* cursor entry index within the leaf *)
    mutable off : int;  (* cursor entry byte offset *)
    mutable keybuf : Bytes.t;  (* cursor key bytes live in [0, keylen) *)
    mutable keylen : int;
    mutable live : bool;  (* the cursor holds an entry *)
  }

  let create tree ~read =
    {
      tree;
      read;
      fast = Atomic.get fast_flag;
      memo = Hashtbl.create 32;
      leaf = None;
      idx = 0;
      pmemo = Hashtbl.create 32;
      page = Bytes.empty;
      pid = -1;
      n = 0;
      next_leaf = -1;
      fidx = 0;
      off = 0;
      keybuf = Bytes.create 64;
      keylen = 0;
      live = false;
    }

  (* Re-point a scanner at a (possibly different) tree, keeping its memo
     table and key scratch allocations.  Any mutation of the tree — or
     swapping the underlying view — invalidates a scanner's position;
     reset is the reuse contract's only entry point. *)
  let reset t tree ~read =
    t.tree <- tree;
    t.read <- read;
    t.fast <- Atomic.get fast_flag;
    Hashtbl.reset t.memo;
    t.leaf <- None;
    t.idx <- 0;
    Hashtbl.reset t.pmemo;
    t.page <- Bytes.empty;
    t.pid <- -1;
    t.live <- false

  let memo_size t = Hashtbl.length t.memo + Hashtbl.length t.pmemo

  (* --- reference path --- *)

  let load_memo t id =
    match Hashtbl.find_opt t.memo id with
    | Some n -> n
    | None ->
        let n = load t.read id in
        (match n with
        | Node.Internal _ -> Hashtbl.add t.memo id n
        | Node.Leaf _ -> ());
        n

  (* skip empty leaves until an entry is under the cursor *)
  let rec normalize t =
    match t.leaf with
    | None -> ()
    | Some l ->
        if t.idx < Array.length l.lkeys then ()
        else if l.next < 0 then t.leaf <- None
        else begin
          (match load_memo t l.next with
          | Node.Leaf l' -> t.leaf <- Some l'
          | Node.Internal _ ->
              corrupt l.next "Btree: leaf chain hit internal node");
          t.idx <- 0;
          normalize t
        end

  let ref_peek t =
    match t.leaf with
    | Some l when t.idx < Array.length l.lkeys ->
        Some (make_entry t.read l t.idx)
    | Some _ | None -> None

  let ref_seek t key =
    let rec descend id level =
      visit_node level;
      match load_memo t id with
      | Node.Leaf l -> l
      | Node.Internal n -> descend n.children.(child_index n key) (level + 1)
    in
    let l = descend t.tree.root 0 in
    t.leaf <- Some l;
    t.idx <- lower_bound l.lkeys key;
    normalize t;
    ref_peek t

  (* --- fast path --- *)

  let reserve t len =
    if Bytes.length t.keybuf < len then begin
      let b = Bytes.create (max len (2 * Bytes.length t.keybuf)) in
      Bytes.blit t.keybuf 0 b 0 t.keylen;
      t.keybuf <- b
    end

  (* Install the entry at [t.off] as the cursor key, taking its stored
     prefix from the key already in the scratch.  Mirrors [Node.decode]'s
     [String.sub prev 0 p]: a stored prefix longer than the previous key
     is the same corruption, reported identically. *)
  let set_cursor_advance t =
    let b = t.page in
    let off = t.off in
    let p = Node.entry_prefix b off in
    let slen = Node.entry_suffix_len b off in
    if p > t.keylen then
      invalid_arg "Node.search: prefix exceeds previous key";
    reserve t (p + slen);
    Bytes.blit b (Node.entry_suffix_off off) t.keybuf p slen;
    t.keylen <- p + slen;
    t.live <- true

  (* Same, but after a seek: the search only ever stops on an entry
     whose stored prefix is also a prefix of the probe key, so the
     probe supplies the prefix bytes. *)
  let set_cursor_from_probe t probe =
    let b = t.page in
    let off = t.off in
    let p = Node.entry_prefix b off in
    let slen = Node.entry_suffix_len b off in
    reserve t (p + slen);
    Bytes.blit_string probe 0 t.keybuf 0 p;
    Bytes.blit b (Node.entry_suffix_off off) t.keybuf p slen;
    t.keylen <- p + slen;
    t.live <- true

  (* position at the first entry of the leaf-chain page [id], skipping
     empty leaves, exactly as [normalize] does on decoded nodes *)
  let rec fast_first_entry t id =
    if id < 0 then t.live <- false
    else begin
      let b = t.read id in
      t.pid <- id;
      t.page <- b;
      t.keylen <- 0;
      match
        if not (Node.is_leaf_page b) then
          failwith "Btree: leaf chain hit internal node";
        t.n <- Node.entry_count b;
        t.next_leaf <- Node.leaf_next b;
        if t.n > 0 then begin
          t.fidx <- 0;
          t.off <- Node.header_size;
          set_cursor_advance t;
          true
        end
        else false
      with
      | true -> ()
      | false -> fast_first_entry t t.next_leaf
      | exception (Invalid_argument d | Failure d) -> corrupt id d
    end

  (* Mirror of [load_memo]: internal pages are memoized raw, so a
     re-seek re-reads exactly what the reference path re-reads — the
     leaf only.  Memoized pages were classified internal when added,
     so the kind check is skipped on a hit. *)
  let rec fast_descend t key id level =
    visit_node level;
    match Hashtbl.find_opt t.pmemo id with
    | Some b -> (
        match Node.child_in_place b key with
        | c -> fast_descend t key c (level + 1)
        | exception (Invalid_argument d | Failure d) -> corrupt id d)
    | None -> (
        let b = t.read id in
        match Node.is_leaf_page b with
        | true ->
            t.pid <- id;
            b
        | false -> (
            Hashtbl.add t.pmemo id b;
            match Node.child_in_place b key with
            | c -> fast_descend t key c (level + 1)
            | exception (Invalid_argument d | Failure d) -> corrupt id d)
        | exception (Invalid_argument d | Failure d) -> corrupt id d)

  let fast_seek t key =
    let b = fast_descend t key t.tree.root 0 in
    t.page <- b;
    t.keylen <- 0;
    try
      let r = Node.leaf_search b key in
      t.n <- Node.entry_count b;
      t.next_leaf <- Node.leaf_next b;
      let i = Node.search_index r in
      if i < t.n then begin
        t.fidx <- i;
        t.off <- Node.search_off r;
        set_cursor_from_probe t key
      end
      else fast_first_entry t t.next_leaf
    with Invalid_argument d | Failure d -> corrupt t.pid d

  let fast_next t =
    if t.live then
      if t.fidx + 1 < t.n then (
        try
          t.off <- Node.leaf_entry_end t.page t.off;
          t.fidx <- t.fidx + 1;
          set_cursor_advance t
        with Invalid_argument d | Failure d -> corrupt t.pid d)
      else fast_first_entry t t.next_leaf

  let fast_peek t =
    if not t.live then None
    else begin
      let read = t.read in
      let page = t.page in
      let pid = t.pid in
      match Node.leaf_payload_off page t.off with
      | vpos ->
          Some
            {
              key = Bytes.sub_string t.keybuf 0 t.keylen;
              value =
                (fun () ->
                  match Node.leaf_value page vpos with
                  | v -> resolve_value read v
                  | exception (Invalid_argument d | Failure d) ->
                      corrupt pid d);
            }
      | exception (Invalid_argument d | Failure d) -> corrupt pid d
    end

  (* --- dispatch --- *)

  let seek t key =
    Obs.Metrics.incr m_descents;
    if t.fast then begin
      fast_seek t key;
      fast_peek t
    end
    else ref_seek t key

  let next t =
    if t.fast then begin
      fast_next t;
      fast_peek t
    end
    else begin
      t.idx <- t.idx + 1;
      normalize t;
      ref_peek t
    end
end

let iter t ?read f =
  let read = match read with Some r -> r | None -> raw_read t in
  let sc = Scanner.create t ~read in
  let rec go = function
    | None -> ()
    | Some e ->
        f e;
        go (Scanner.next sc)
  in
  go (Scanner.seek sc "")

let length t =
  let n = ref 0 in
  iter t ~read:(quiet_read t) (fun _ -> incr n);
  !n

let scan_range t ~read ~lo ~hi f =
  let sc = Scanner.create t ~read in
  let rec go = function
    | Some e when String.compare e.key hi < 0 ->
        f e;
        go (Scanner.next sc)
    | Some _ | None -> ()
  in
  go (Scanner.seek sc lo)

(* --- multi-interval pruned descent -------------------------------------- *)

let normalize_intervals ivs =
  let ivs =
    List.filter (fun (lo, hi) -> String.compare lo hi < 0) ivs
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let rec merge = function
    | (l1, h1) :: (l2, h2) :: rest when String.compare l2 h1 <= 0 ->
        merge ((l1, if String.compare h1 h2 >= 0 then h1 else h2) :: rest)
    | iv :: rest -> iv :: merge rest
    | [] -> []
  in
  merge ivs

let scan_intervals t ~read ivs f =
  let ivs = Array.of_list (normalize_intervals ivs) in
  if Array.length ivs > 0 then begin
    (* does any interval intersect the child range (clo, chi)? bounds are
       options; [None] means unbounded *)
    let intersects clo chi =
      Array.exists
        (fun (l, h) ->
          (match chi with None -> true | Some c -> String.compare l c < 0)
          && match clo with None -> true | Some c -> String.compare h c > 0)
        ivs
    in
    let rec visit id level clo chi =
      visit_node level;
      match load read id with
      | Node.Leaf l ->
          let iv = ref 0 in
          Array.iteri
            (fun i k ->
              while
                !iv < Array.length ivs && String.compare (snd ivs.(!iv)) k <= 0
              do
                incr iv
              done;
              if !iv < Array.length ivs && String.compare (fst ivs.(!iv)) k <= 0
              then f (make_entry read l i))
            l.lkeys
      | Node.Internal n ->
          let nk = Array.length n.ikeys in
          for i = 0 to nk do
            let lo = if i = 0 then clo else Some n.ikeys.(i - 1) in
            let hi = if i = nk then chi else Some n.ikeys.(i) in
            if intersects lo hi then visit n.children.(i) (level + 1) lo hi
          done
    in
    visit t.root 0 None None
  end

type visit = { depth : int; page : int; is_leaf : bool; matched : int }

let trace_intervals t ~read ivs =
  let ivs = Array.of_list (normalize_intervals ivs) in
  let out = ref [] in
  if Array.length ivs > 0 then begin
    let intersects clo chi =
      Array.exists
        (fun (l, h) ->
          (match chi with None -> true | Some c -> String.compare l c < 0)
          && match clo with None -> true | Some c -> String.compare h c > 0)
        ivs
    in
    let rec visit id depth clo chi =
      visit_node depth;
      match load read id with
      | Node.Leaf l ->
          let iv = ref 0 and matched = ref 0 in
          Array.iter
            (fun k ->
              while
                !iv < Array.length ivs && String.compare (snd ivs.(!iv)) k <= 0
              do
                incr iv
              done;
              if !iv < Array.length ivs && String.compare (fst ivs.(!iv)) k <= 0
              then incr matched)
            l.lkeys;
          out := { depth; page = id; is_leaf = true; matched = !matched } :: !out
      | Node.Internal n ->
          out := { depth; page = id; is_leaf = false; matched = 0 } :: !out;
          let nk = Array.length n.ikeys in
          for i = 0 to nk do
            let lo = if i = 0 then clo else Some n.ikeys.(i - 1) in
            let hi = if i = nk then chi else Some n.ikeys.(i) in
            if intersects lo hi then visit n.children.(i) (depth + 1) lo hi
          done
    in
    visit t.root 0 None None
  end;
  List.rev !out

(* --- introspection ------------------------------------------------------- *)

type invariant_report = {
  height : int;
  nodes : int;
  leaves : int;
  entries : int;
  min_fill : float;
  avg_fill : float;
}

let pp_invariant_report ppf r =
  Format.fprintf ppf
    "height=%d nodes=%d leaves=%d entries=%d min_fill=%.2f avg_fill=%.2f"
    r.height r.nodes r.leaves r.entries r.min_fill r.avg_fill

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  let leaves_in_order = ref [] in
  let nodes = ref 0 and leaves = ref 0 and entries = ref 0 in
  let min_fill = ref 1.0 and fill_sum = ref 0.0 in
  (* fill factor: fraction of the page used, or of the entry cap when the
     tree models the paper's fixed-arity nodes *)
  let account id node nkeys =
    incr nodes;
    let fill =
      match t.cfg.max_entries with
      | Some m -> float_of_int nkeys /. float_of_int m
      | None ->
          float_of_int (Node.size ~front_coding:t.cfg.front_coding node)
          /. float_of_int (page_size t)
    in
    fill_sum := !fill_sum +. fill;
    if id <> t.root && fill < !min_fill then min_fill := fill
  in
  let rec walk id depth lo hi =
    match load (quiet_read t) id with
    | Node.Leaf l ->
        if depth <> t.height then
          fail "leaf %d at depth %d, expected height %d" id depth t.height;
        let node = Node.Leaf l in
        account id node (Array.length l.lkeys);
        incr leaves;
        entries := !entries + Array.length l.lkeys;
        if id <> t.root && Array.length l.lkeys = 0 then
          fail "non-root leaf %d is empty" id;
        if Node.size ~front_coding:t.cfg.front_coding node > page_size t then
          fail "leaf %d exceeds page size" id;
        (match t.cfg.max_entries with
        | Some m when Array.length l.lkeys > m ->
            fail "leaf %d has %d entries > max %d" id (Array.length l.lkeys) m
        | Some _ | None -> ());
        Array.iteri
          (fun i k ->
            if i > 0 && String.compare l.lkeys.(i - 1) k >= 0 then
              fail "leaf %d keys not strictly sorted at %d" id i;
            (match lo with
            | Some b when String.compare k b < 0 ->
                fail "leaf %d key below separator" id
            | Some _ | None -> ());
            match hi with
            | Some b when String.compare k b >= 0 ->
                fail "leaf %d key above separator" id
            | Some _ | None -> ())
          l.lkeys;
        leaves_in_order := (id, l.next) :: !leaves_in_order
    | Node.Internal n ->
        let node = Node.Internal n in
        account id node (Array.length n.ikeys);
        if Node.size ~front_coding:t.cfg.front_coding node > page_size t then
          fail "internal %d exceeds page size" id;
        if Array.length n.children <> Array.length n.ikeys + 1 then
          fail "internal %d arity mismatch" id;
        Array.iteri
          (fun i k ->
            if i > 0 && String.compare n.ikeys.(i - 1) k >= 0 then
              fail "internal %d separators not sorted" id)
          n.ikeys;
        let nk = Array.length n.ikeys in
        for i = 0 to nk do
          let clo = if i = 0 then lo else Some n.ikeys.(i - 1) in
          let chi = if i = nk then hi else Some n.ikeys.(i) in
          walk n.children.(i) (depth + 1) clo chi
        done
  in
  walk t.root 1 None None;
  (* the leaf chain must link the leaves exactly in key order *)
  let leaves_chain = List.rev !leaves_in_order in
  let rec check_chain = function
    | (_, next) :: ((id', _) :: _ as rest) ->
        if next <> id' then fail "leaf chain broken: %d -> %d" next id';
        check_chain rest
    | [ (_, next) ] -> if next <> -1 then fail "last leaf has next=%d" next
    | [] -> ()
  in
  check_chain leaves_chain;
  {
    height = t.height;
    nodes = !nodes;
    leaves = !leaves;
    entries = !entries;
    min_fill = (if !nodes <= 1 then 1.0 else !min_fill);
    avg_fill = (if !nodes = 0 then 0. else !fill_sum /. float_of_int !nodes);
  }

let check t = ignore (check_invariants t)

let fold_nodes t f init =
  let acc = ref init in
  let rec walk id =
    let node = load (quiet_read t) id in
    acc := f !acc node;
    match node with
    | Node.Leaf _ -> ()
    | Node.Internal n -> Array.iter walk n.children
  in
  walk t.root;
  !acc

let leaf_count t =
  fold_nodes t
    (fun acc -> function Node.Leaf _ -> acc + 1 | Node.Internal _ -> acc)
    0

let node_count t = fold_nodes t (fun acc _ -> acc + 1) 0

type compression_stats = {
  entries : int;
  raw_key_bytes : int;
  stored_key_bytes : int;
  avg_prefix_len : float;
}

let compression_stats t =
  let entries = ref 0 and raw = ref 0 and stored = ref 0 in
  let account keys =
    let prev = ref "" in
    Array.iter
      (fun k ->
        let p =
          if t.cfg.front_coding then Bu.common_prefix_len !prev k else 0
        in
        incr entries;
        raw := !raw + String.length k;
        stored := !stored + String.length k - p;
        prev := k)
      keys
  in
  let rec walk id =
    match load (quiet_read t) id with
    | Node.Leaf l -> account l.lkeys
    | Node.Internal n ->
        account n.ikeys;
        Array.iter walk n.children
  in
  walk t.root;
  {
    entries = !entries;
    raw_key_bytes = !raw;
    stored_key_bytes = !stored;
    avg_prefix_len =
      (if !entries = 0 then 0.
       else float_of_int (!raw - !stored) /. float_of_int !entries);
  }

let pp_stats ppf t =
  Format.fprintf ppf "height=%d nodes=%d leaves=%d entries=%d pages=%d"
    (height t) (node_count t) (leaf_count t) (length t)
    (Pager.page_count t.pager)

(* --- sorted bulk load ---------------------------------------------------- *)

let is_empty (t : t) =
  t.height = 1
  &&
  match load (quiet_read t) t.root with
  | Node.Leaf l -> Array.length l.lkeys = 0
  | Node.Internal _ -> false

(* Build the tree bottom-up from a sorted entry stream: pack leaves left
   to right up to [fill] of the page budget, collect each one's first
   key, then synthesize every internal level the same way from the
   (first key, page id) list of the level below.  Every page is written
   exactly once; the entry-at-a-time path would instead split its way
   through O(n) node rewrites and leave pages half full. *)
let bulk_load ?(fill = 0.9) t entries =
  if fill <= 0. || fill > 1. then
    invalid_arg "Btree.bulk_load: fill factor must be in (0, 1]";
  if not (is_empty t) then invalid_arg "Btree.bulk_load: tree is not empty";
  let fc = t.cfg.front_coding in
  let budget =
    max (Node.header_size + 1) (int_of_float (fill *. float_of_int (page_size t)))
  in
  let cap =
    match t.cfg.max_entries with
    | None -> max_int
    | Some m -> max 1 (int_of_float (ceil (fill *. float_of_int m)))
  in
  let pfx prev k = if fc then min (Bu.common_prefix_len prev k) 0xFFFF else 0 in
  (* leaf level; the first leaf reuses the root page, so an empty or
     single-leaf load leaves the tree metadata untouched *)
  let leaves = ref [] in
  let cur = ref t.root in
  let keys = ref [] and vals = ref [] and n = ref 0 in
  let size = ref Node.header_size and prev = ref "" and first = ref "" in
  let flush_leaf ~next =
    store t !cur
      (Node.Leaf
         {
           lkeys = Array.of_list (List.rev !keys);
           lvals = Array.of_list (List.rev !vals);
           next;
         });
    leaves := (!first, !cur) :: !leaves
  in
  let add k value =
    if
      String.length k > 0xFFFF
      || Node.header_size + 4 + String.length k + Node.inline_size value
         > page_size t
    then invalid_arg "Btree.bulk_load: key too large for a leaf page";
    let esz = 4 + (String.length k - pfx !prev k) + Node.inline_size value in
    if !n > 0 && (!size + esz > budget || !n >= cap) then begin
      (* the next leaf's id is needed now for the chain link, so every
         leaf is still written exactly once *)
      let next = Pager.alloc t.pager in
      flush_leaf ~next;
      cur := next;
      keys := [];
      vals := [];
      n := 0;
      size := Node.header_size;
      prev := ""
    end;
    if !n = 0 then first := k;
    size := !size + 4 + (String.length k - pfx !prev k) + Node.inline_size value;
    keys := k :: !keys;
    vals := value :: !vals;
    incr n;
    prev := k
  in
  (* dedup adjacent equal keys (later wins, as sequential insertion
     would) before materializing values, so a replaced overflow value is
     never even written *)
  let pending = ref None in
  Seq.iter
    (fun (k, v) ->
      match !pending with
      | None -> pending := Some (k, v)
      | Some (pk, _) when String.compare pk k > 0 ->
          invalid_arg "Btree.bulk_load: entries not sorted"
      | Some (pk, _) when String.equal pk k -> pending := Some (k, v)
      | Some (pk, pv) ->
          add pk (make_value t pv);
          pending := Some (k, v))
    entries;
  (match !pending with None -> () | Some (k, v) -> add k (make_value t v));
  if !n > 0 then begin
    flush_leaf ~next:(-1);
    (* internal levels, bottom-up.  Greedy packing, with two escape
       hatches at the boundaries: a group only closes once it has two
       children, and a final straggler steals its left neighbour from
       the previous group rather than becoming a one-child node. *)
    let pack_level children =
      let m = List.length children in
      let out = ref [] in
      let gkeys = ref [] and gkids = ref [] and gn = ref 0 in
      let gsize = ref Node.header_size and gprev = ref "" and gfirst = ref "" in
      let close () =
        let id = Pager.alloc t.pager in
        store t id
          (Node.Internal
             {
               ikeys = Array.of_list (List.rev !gkeys);
               children = Array.of_list (List.rev !gkids);
             });
        out := (!gfirst, id) :: !out
      in
      let start fk cid =
        gkeys := [];
        gkids := [ cid ];
        gn := 1;
        gsize := Node.header_size;
        gprev := "";
        gfirst := fk
      in
      let append fk cid =
        gsize := !gsize + 4 + (String.length fk - pfx !gprev fk) + 4;
        gkeys := fk :: !gkeys;
        gkids := cid :: !gkids;
        incr gn;
        gprev := fk
      in
      List.iteri
        (fun i (fk, cid) ->
          if i = 0 then start fk cid
          else begin
            let cost = 4 + (String.length fk - pfx !gprev fk) + 4 in
            let full = !gsize + cost > budget || !gn > cap in
            let last = i = m - 1 in
            if full && !gn >= 2 && not last then begin
              close ();
              start fk cid
            end
            else if full && !gn >= 3 && last then begin
              let pk = List.hd !gkeys and pc = List.hd !gkids in
              gkeys := List.tl !gkeys;
              gkids := List.tl !gkids;
              decr gn;
              close ();
              start pk pc;
              append fk cid
            end
            else append fk cid
          end)
        children;
      close ();
      List.rev !out
    in
    let rec build level h =
      match level with
      | [ (_, id) ] ->
          t.root <- id;
          t.height <- h
      | children -> build (pack_level children) (h + 1)
    in
    build (List.rev !leaves) 1
  end
