(** On-page layout of B+-tree nodes.

    A node is serialized into one fixed-size page:

    {v
    byte 0        kind: 0 = internal, 1 = leaf
    bytes 1-2     number of keys (u16)
    bytes 3-6     leaf: next-leaf page id | internal: leftmost child id
    then, per key i (in key order):
      u16  prefix_len   bytes shared with the previous key in this node
      u16  suffix_len
      suffix bytes
      payload:
        internal  u32 child page id (child to the right of key i)
        leaf      u16 value length + value bytes, or the overflow marker
                  0xFFFF followed by u32 head page id + u32 total length
    v}

    The per-node front compression of keys (storing only the suffix that
    differs from the previous key) is the storage mechanism the paper's
    encoding scheme leans on: long composite keys that share value / class
    code / path prefixes cost only their distinguishing suffix
    (Section 3.2).  Compression can be disabled ([front_coding:false]) for
    the ablation benchmark. *)

type value =
  | Inline of string
  | Overflow of { head : int; length : int }
      (** Large values live in a chain of overflow pages starting at
          [head]; see {!Btree} for chain management. *)

type leaf = {
  lkeys : string array;
  lvals : value array;
  next : int;  (** page id of the next leaf in key order, [-1] if last *)
}

type internal = {
  ikeys : string array;  (** n separator keys *)
  children : int array;  (** n+1 children; child [i] holds keys [k] with
                             [ikeys.(i-1) <= k < ikeys.(i)] *)
}

type t = Leaf of leaf | Internal of internal

val header_size : int

val size : front_coding:bool -> t -> int
(** Serialized size in bytes, including the header. *)

val encode : ?saved:int ref -> front_coding:bool -> page_size:int -> t -> Bytes.t
(** Raises [Invalid_argument] if the node does not fit.  When [saved] is
    given, the total number of key bytes the front compression elided
    (the sum of stored prefix lengths) is added to it — the live feed
    behind the [btree.fc_bytes_saved] metric. *)

val decode : Bytes.t -> t

val inline_size : value -> int
(** Size contribution of a leaf payload. *)

val pp : Format.formatter -> t -> unit
