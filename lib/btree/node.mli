(** On-page layout of B+-tree nodes.

    A node is serialized into one fixed-size page:

    {v
    byte 0        kind: 0 = internal, 1 = leaf
    bytes 1-2     number of keys (u16)
    bytes 3-6     leaf: next-leaf page id | internal: leftmost child id
    then, per key i (in key order):
      u16  prefix_len   bytes shared with the previous key in this node
      u16  suffix_len
      suffix bytes
      payload:
        internal  u32 child page id (child to the right of key i)
        leaf      u16 value length + value bytes, or the overflow marker
                  0xFFFF followed by u32 head page id + u32 total length
    v}

    The per-node front compression of keys (storing only the suffix that
    differs from the previous key) is the storage mechanism the paper's
    encoding scheme leans on: long composite keys that share value / class
    code / path prefixes cost only their distinguishing suffix
    (Section 3.2).  Compression can be disabled ([front_coding:false]) for
    the ablation benchmark. *)

type value =
  | Inline of string
  | Overflow of { head : int; length : int }
      (** Large values live in a chain of overflow pages starting at
          [head]; see {!Btree} for chain management. *)

type leaf = {
  lkeys : string array;
  lvals : value array;
  next : int;  (** page id of the next leaf in key order, [-1] if last *)
}

type internal = {
  ikeys : string array;  (** n separator keys *)
  children : int array;  (** n+1 children; child [i] holds keys [k] with
                             [ikeys.(i-1) <= k < ikeys.(i)] *)
}

type t = Leaf of leaf | Internal of internal

val header_size : int

val overflow_marker : int
(** The u16 inline-length value ([0xFFFF]) that instead announces an
    overflow payload; the largest representable inline value is therefore
    [overflow_marker - 1] bytes. *)

val size : front_coding:bool -> t -> int
(** Serialized size in bytes, including the header. *)

val encode : ?saved:int ref -> front_coding:bool -> page_size:int -> t -> Bytes.t
(** Raises [Invalid_argument] if the node does not fit.  When [saved] is
    given, the total number of key bytes the front compression elided
    (the sum of stored prefix lengths) is added to it — the live feed
    behind the [btree.fc_bytes_saved] metric. *)

val decode : Bytes.t -> t

val inline_size : value -> int
(** Size contribution of a leaf payload. *)

(** {1 Compare-in-place search}

    The fast read path operates on the encoded page without decoding it:
    searches walk the front-coded entries in the page buffer, deciding
    each comparison from the stored [(prefix_len, suffix)] pair alone, so
    a descent materializes no key and allocates nothing.  {!decode}
    remains the reference implementation; the two are proven equivalent
    by a differential property test.  On malformed pages these raise
    [Invalid_argument] exactly as {!decode} does. *)

val is_leaf_page : Bytes.t -> bool
(** Node kind from the header byte; raises [Invalid_argument] on any
    other kind byte (same failure as {!decode}). *)

val entry_count : Bytes.t -> int

val leaf_next : Bytes.t -> int
(** Next-leaf page id, [-1] when this is the last leaf. *)

val leaf_search : Bytes.t -> string -> int
(** Lower bound of the probe among a leaf page's entries, computed
    against the page buffer.  The result is a packed immediate int —
    unpack with {!search_index} (the lower-bound index),
    {!search_exact} (whether the entry at that index equals the probe)
    and {!search_off} (that entry's byte offset in the page; the
    end-of-entries offset when the index equals {!entry_count}). *)

val search_index : int -> int
val search_exact : int -> bool
val search_off : int -> int

val child_in_place : Bytes.t -> string -> int
(** The child page id a descent for the probe key must follow from an
    internal page: upper bound over the separators, compared in place. *)

val entry_prefix : Bytes.t -> int -> int
(** Stored prefix length of the entry at a byte offset. *)

val entry_suffix_len : Bytes.t -> int -> int
val entry_suffix_off : int -> int

val leaf_payload_off : Bytes.t -> int -> int
(** Byte offset of the leaf payload of the entry at [off]. *)

val leaf_entry_end : Bytes.t -> int -> int
(** Byte offset just past the leaf entry at [off] — i.e. the next
    entry's offset. *)

val leaf_value : Bytes.t -> int -> value
(** Decode the leaf payload at a payload offset (see
    {!leaf_payload_off}); the only allocating accessor, called when a
    scan actually needs the value. *)

val pp : Format.formatter -> t -> unit
