(** A disk-format B+-tree with variable-length, front-compressed keys.

    This is the single index structure of the paper (Section 3.2): the
    U-index and several baselines are thin encodings over it.  Keys are
    arbitrary byte strings ordered by [String.compare]; values are byte
    strings, spilled transparently to overflow-page chains when large
    (needed by the directory-style baselines, e.g. CH-trees).

    Node capacity is the page size in bytes — front compression therefore
    directly increases fanout, which is the paper's storage argument — with
    an optional maximum entry count to model Experiment 1's "at most
    [m = 10] records per node".

    All page accesses go through one pluggable page source.  Without a
    pool, {!raw_read} is the pager itself, so the pager's
    {!Storage.Stats} counts exactly the page reads the paper reports.
    With a shared {!Storage.Buffer_pool} attached ({!create}'s [?pool]
    or {!set_pool}), {!raw_read} serves hits from the pool (counted as
    [pool_hits], not pager reads) and only misses reach the pager; every
    page the tree writes is written through to the pool and every freed
    page is invalidated, so the pool can never serve stale bytes.
    Read-only operations take an explicit [read] function: pass
    {!raw_read} to count every access (forward scanning), or a
    {!Storage.Pager.Cache} reader to count distinct pages only (the
    parallel retrieval algorithm's "utilize any page already in
    memory") — {!cached_read} layers that per-query cache over the
    tree's page source, pooled or not. *)

module Node : module type of Node
(** The on-page node layout, exposed for white-box tests and tooling. *)

type config = {
  max_entries : int option;
      (** cap on keys per node, in addition to the byte capacity *)
  front_coding : bool;  (** store key suffixes only (default [true]) *)
  overflow_threshold : int;
      (** values longer than this spill to overflow pages *)
}

val default_config : page_size:int -> config

type t

val create : ?config:config -> ?pool:Storage.Buffer_pool.t -> Storage.Pager.t -> t
(** An empty tree whose nodes live on pages of the given pager.  [?pool]
    attaches a shared buffer pool as the page source (see {!set_pool}). *)

val root : t -> int
(** The root's current page id.  Together with the pager's backing file
    this is all the state needed to re-open the tree. *)

val attach :
  ?config:config -> ?pool:Storage.Buffer_pool.t -> Storage.Pager.t -> root:int -> t
(** [attach pager ~root] re-opens a tree previously built on this pager's
    pages (e.g. after {!Storage.Pager.open_file}); the height is recovered
    by walking to the leftmost leaf.  The configuration must match the one
    the tree was built with — in particular [front_coding]. *)

val sync : t -> unit
(** Records the current root in the pager's header metadata and commits
    everything with {!Storage.Pager.sync}.  Because a sync is atomic
    (journal then checkpoint), a tree on a file-backed pager always
    reopens to its last-synced state, however many splits or merges were
    in flight when a crash hit. *)

val reattach : ?config:config -> ?pool:Storage.Buffer_pool.t -> Storage.Pager.t -> t
(** [reattach pager] re-opens the tree whose root a previous {!sync}
    recorded in the pager's metadata — the usual way to resume after
    {!Storage.Pager.open_file}.  Raises {!Storage.Storage_error.Corruption}
    when the metadata does not name a tree (no {!sync} ever ran, or the
    header was damaged). *)

val pager : t -> Storage.Pager.t
val config : t -> config

val pool : t -> Storage.Buffer_pool.t option
(** The shared buffer pool currently serving reads, if any. *)

val set_pool : t -> Storage.Buffer_pool.t option -> unit
(** Attach (or detach, with [None]) a shared buffer pool as the tree's
    page source.  The pool must be over this tree's pager (raises
    [Invalid_argument] otherwise).  While attached, all reads go through
    the pool and all writes/frees keep it coherent; [None] restores the
    paper's uncached accounting exactly. *)

val height : t -> int
(** Number of levels; [1] when the root is a leaf. *)

val raw_read : t -> int -> Bytes.t
(** Reads through the tree's page source: the pager directly (counting
    every call), or the attached pool (hits served without a pager
    read). *)

val cached_read : t -> Storage.Pager.Cache.t
(** A fresh per-query cache over this tree's page source. *)

val set_fast_descent : bool -> unit
(** Process-wide read-path selector (default [on]).  When on, lookups
    and scans search the encoded page in place ({!Node.leaf_search} /
    {!Node.child_in_place}) and never materialize keys they skip; when
    off, every touched node is decoded ({!Node.decode}), the reference
    implementation.  Both paths issue identical page reads and return
    byte-identical results (proven by the differential suite); only
    allocation and CPU differ.  Scanners sample the flag at
    create/reset time, so in-flight scans are unaffected. *)

val fast_descent : unit -> bool

(** {1 Updates} *)

val insert : t -> key:string -> value:string -> unit
(** Inserts, replacing any existing value for [key]. *)

val insert_batch : t -> (string * string) list -> unit
(** Batched insertion (Tsur & Gudes [4], used by the paper's Section 3.5
    "batch" update argument): the batch is sorted and merged into the
    tree in one pass, so each touched node is read and written once no
    matter how many of the batch's keys it receives.  Semantically
    equivalent to inserting the pairs in list order (later duplicates
    win). *)

val delete : t -> string -> bool
(** Removes the key; [false] if absent.  Rebalances by borrowing from or
    merging with siblings. *)

val is_empty : t -> bool
(** [true] iff the tree holds no entries (a lone empty root leaf). *)

val bulk_load : ?fill:float -> t -> (string * string) Seq.t -> unit
(** [bulk_load t entries] builds the tree bottom-up from a stream of
    entries in non-decreasing key order (adjacent duplicates collapse,
    later wins): leaves are packed left to right up to [fill]
    (default [0.9]) of the page — or of [max_entries] — and the internal
    levels are synthesized above them, so every page is written exactly
    once.  Far cheaper than entry-at-a-time insertion for an initial
    build, and the resulting pages are denser.

    Raises [Invalid_argument] if the tree is not empty, the input is out
    of order, or [fill] is outside [(0, 1]]. *)

(** {1 Point and range access} *)

val find : t -> ?read:(int -> Bytes.t) -> string -> string option
(** Exact lookup; resolves overflow values (counting their page reads). *)

val mem : t -> ?read:(int -> Bytes.t) -> string -> bool

type entry = { key : string; value : unit -> string }
(** A scan result.  [value ()] resolves the payload lazily, reading
    overflow pages only when called. *)

val iter : t -> ?read:(int -> Bytes.t) -> (entry -> unit) -> unit
(** All entries in key order. *)

val length : t -> int
(** Number of entries (O(leaves)); does not touch the stats counters. *)

val scan_range :
  t -> read:(int -> Bytes.t) -> lo:string -> hi:string -> (entry -> unit) -> unit
(** Forward scan of [[lo, hi)]: one descent to [lo], then sequential leaf
    traversal.  Every leaf between the bounds is read — the naive
    algorithm of Section 3.3. *)

val scan_intervals :
  t ->
  read:(int -> Bytes.t) ->
  (string * string) list ->
  (entry -> unit) ->
  unit
(** [scan_intervals t ~read ivs f] applies [f] to every entry whose key
    falls in one of the half-open intervals [ivs].  The tree is descended
    once, visiting only nodes whose key range intersects the interval set —
    the pruned descent at the heart of the paper's parallel retrieval
    algorithm (Algorithm 1).  Intervals are normalized (sorted, merged)
    internally. *)

type visit = {
  depth : int;  (** 0 at the root *)
  page : int;
  is_leaf : bool;
  matched : int;  (** entries inside the interval set (leaves only) *)
}

val trace_intervals :
  t -> read:(int -> Bytes.t) -> (string * string) list -> visit list
(** The nodes a {!scan_intervals} descent would visit, in visit order —
    the paper's dynamically-constructed search tree (Fig. 3), for
    explain-style tooling. *)

(** {1 Positioned scans}

    A scanner supports the paper's skip-scan: sequential advance plus
    re-seek to an arbitrary key, sharing one page cache so that revisited
    pages are free. *)

module Scanner : sig
  type tree := t
  type t

  val create : tree -> read:(int -> Bytes.t) -> t

  val reset : t -> tree -> read:(int -> Bytes.t) -> unit
  (** Re-point an existing scanner at a tree, recycling its memo table
      and key scratch instead of allocating fresh ones — the session
      cursor-reuse hook.  {b Contract:} any mutation of the underlying
      tree (insert, delete, bulk load, root change) or swap of the view
      it reads from invalidates a scanner's position; the owner must
      [reset] before the next query and must not interleave two queries
      on one scanner. *)

  val seek : t -> string -> entry option
  (** Position at the first entry with key [>=] the argument and return
      it. *)

  val next : t -> entry option
  (** Advance to the following entry. *)

  val memo_size : t -> int
  (** Decoded nodes currently memoized (reference path; the fast path
      memoizes nothing).  Bounded by the number of internal nodes the
      scan's descents touch — O(height) for a plain iteration — never by
      the leaf count. *)
end

(** {1 Introspection (tests, experiments)} *)

type invariant_report = {
  height : int;  (** levels, [1] = root is a leaf *)
  nodes : int;  (** internal + leaf nodes *)
  leaves : int;
  entries : int;
  min_fill : float;
      (** worst fill factor over non-root nodes ([1.0] for a lone root):
          bytes used / page size, or entries / cap under [max_entries] *)
  avg_fill : float;  (** mean fill factor over all nodes *)
}

val check_invariants : t -> invariant_report
(** Validates structural invariants — sorted unique keys, node sizes
    within capacity, separator consistency, uniform leaf depth, non-root
    leaves non-empty, leaf-chain order and completeness — and returns
    occupancy statistics.  Raises [Failure] with a diagnostic on
    violation. *)

val pp_invariant_report : Format.formatter -> invariant_report -> unit

val check : t -> unit
(** [check_invariants] with the report discarded. *)

val leaf_count : t -> int
val node_count : t -> int
(** Internal + leaf nodes (excludes overflow pages). *)

type compression_stats = {
  entries : int;
  raw_key_bytes : int;  (** sum of full key lengths *)
  stored_key_bytes : int;  (** sum of stored suffix lengths *)
  avg_prefix_len : float;  (** average compressed-away prefix *)
}

val compression_stats : t -> compression_stats
(** How much the per-node front compression saves on this tree's leaf and
    internal keys (Section 4.2's storage-cost argument). *)

val pp_stats : Format.formatter -> t -> unit
