module Bu = Storage.Bytes_util

type value = Inline of string | Overflow of { head : int; length : int }

type leaf = { lkeys : string array; lvals : value array; next : int }
type internal = { ikeys : string array; children : int array }
type t = Leaf of leaf | Internal of internal

let header_size = 7
let overflow_marker = 0xFFFF
let no_page = 0xFFFFFFFF

let inline_size = function
  | Inline s -> 2 + String.length s
  | Overflow _ -> 2 + 8

let prefix_len ~front_coding ~prev key =
  if front_coding then min (Bu.common_prefix_len prev key) 0xFFFF else 0

let size ~front_coding t =
  let entry prev key payload =
    let p = prefix_len ~front_coding ~prev key in
    4 + (String.length key - p) + payload
  in
  match t with
  | Leaf { lkeys; lvals; _ } ->
      let total = ref header_size in
      let prev = ref "" in
      Array.iteri
        (fun i k ->
          total := !total + entry !prev k (inline_size lvals.(i));
          prev := k)
        lkeys;
      !total
  | Internal { ikeys; _ } ->
      let total = ref header_size in
      let prev = ref "" in
      Array.iter
        (fun k ->
          total := !total + entry !prev k 4;
          prev := k)
        ikeys;
      !total

let encode ?saved ~front_coding ~page_size t =
  if size ~front_coding t > page_size then
    invalid_arg "Node.encode: node exceeds page size";
  let b = Bytes.make page_size '\000' in
  let pos = ref header_size in
  let put_entry prev key write_payload =
    let p = prefix_len ~front_coding ~prev key in
    (match saved with Some r -> r := !r + p | None -> ());
    let suffix_len = String.length key - p in
    (* put_u16 silently keeps the low 16 bits, so an oversized field
       would corrupt the page rather than fail — refuse it here *)
    if suffix_len > 0xFFFF then
      invalid_arg "Node.encode: key suffix exceeds 65535 bytes";
    Bu.put_u16 b !pos p;
    Bu.put_u16 b (!pos + 2) suffix_len;
    Bytes.blit_string key p b (!pos + 4) suffix_len;
    pos := !pos + 4 + suffix_len;
    write_payload ()
  in
  (match t with
  | Leaf { lkeys; lvals; next } ->
      Bytes.set b 0 '\001';
      Bu.put_u16 b 1 (Array.length lkeys);
      Bu.put_u32 b 3 (if next < 0 then no_page else next);
      let prev = ref "" in
      Array.iteri
        (fun i k ->
          put_entry !prev k (fun () ->
              (match lvals.(i) with
              | Inline s ->
                  (* 0xFFFF is the overflow marker, so the largest
                     representable inline length is 65534 *)
                  if String.length s >= overflow_marker then
                    invalid_arg "Node.encode: inline value exceeds 65534 bytes";
                  Bu.put_u16 b !pos (String.length s);
                  Bytes.blit_string s 0 b (!pos + 2) (String.length s);
                  pos := !pos + 2 + String.length s
              | Overflow { head; length } ->
                  Bu.put_u16 b !pos overflow_marker;
                  Bu.put_u32 b (!pos + 2) head;
                  Bu.put_u32 b (!pos + 6) length;
                  pos := !pos + 10));
          prev := k)
        lkeys
  | Internal { ikeys; children } ->
      if Array.length children <> Array.length ikeys + 1 then
        invalid_arg "Node.encode: children/keys arity mismatch";
      Bytes.set b 0 '\000';
      Bu.put_u16 b 1 (Array.length ikeys);
      Bu.put_u32 b 3 children.(0);
      let prev = ref "" in
      Array.iteri
        (fun i k ->
          put_entry !prev k (fun () ->
              Bu.put_u32 b !pos children.(i + 1);
              pos := !pos + 4);
          prev := k)
        ikeys);
  b

let decode b =
  let kind = Bytes.get b 0 in
  let nkeys = Bu.get_u16 b 1 in
  let word3 = Bu.get_u32 b 3 in
  let pos = ref header_size in
  let read_key prev =
    let p = Bu.get_u16 b !pos in
    let slen = Bu.get_u16 b (!pos + 2) in
    let key =
      String.sub prev 0 p ^ Bytes.sub_string b (!pos + 4) slen
    in
    pos := !pos + 4 + slen;
    key
  in
  match kind with
  | '\001' ->
      let lkeys = Array.make nkeys "" in
      let lvals = Array.make nkeys (Inline "") in
      let prev = ref "" in
      for i = 0 to nkeys - 1 do
        let k = read_key !prev in
        lkeys.(i) <- k;
        prev := k;
        let vlen = Bu.get_u16 b !pos in
        if vlen = overflow_marker then begin
          let head = Bu.get_u32 b (!pos + 2) in
          let length = Bu.get_u32 b (!pos + 6) in
          lvals.(i) <- Overflow { head; length };
          pos := !pos + 10
        end
        else begin
          lvals.(i) <- Inline (Bytes.sub_string b (!pos + 2) vlen);
          pos := !pos + 2 + vlen
        end
      done;
      let next = if word3 = no_page then -1 else word3 in
      Leaf { lkeys; lvals; next }
  | '\000' ->
      let ikeys = Array.make nkeys "" in
      let children = Array.make (nkeys + 1) word3 in
      let prev = ref "" in
      for i = 0 to nkeys - 1 do
        let k = read_key !prev in
        ikeys.(i) <- k;
        prev := k;
        children.(i + 1) <- Bu.get_u32 b !pos;
        pos := !pos + 4
      done;
      Internal { ikeys; children }
  | _ -> invalid_arg "Node.decode: bad node kind byte"

(* --- compare-in-place search -------------------------------------------- *)

(* The fast read path searches the encoded page directly instead of
   decoding it.  Front coding makes this possible without materializing
   any key: walking the entries in order while maintaining [ml] — the
   length of the common prefix of the probe key and the last entry
   passed — each entry's order relative to the probe is decided from its
   stored (prefix_len, suffix) alone:

     prefix_len > ml   the entry agrees with its predecessor beyond the
                       point where the predecessor fell below the probe,
                       so the entry is below it too (the predecessor
                       cannot have been a proper prefix of the probe
                       there, since prefix_len never exceeds its
                       length);
     prefix_len <= ml  the entry's first prefix_len bytes equal the
                       probe's (both match the predecessor that far), so
                       the suffix is compared byte-wise against the
                       probe's tail starting at prefix_len, updating
                       [ml].

   Note the second case must NOT shortcut on prefix_len < ml: stored
   prefixes are not necessarily maximal (front_coding:false stores 0 for
   every entry), so a shorter prefix than [ml] says nothing about where
   the entry diverges — only the suffix bytes do.

   Malformed pages fail the bounds checks of the safe byte accessors (or
   the explicit suffix check below) with [Invalid_argument], exactly as
   [decode] does, so the Btree layer converts both paths to typed
   corruption identically. *)

let is_leaf_page b =
  match Bytes.get b 0 with
  | '\001' -> true
  | '\000' -> false
  | _ -> invalid_arg "Node.decode: bad node kind byte"

let entry_count b = Bu.get_u16 b 1

let leaf_next b =
  let w = Bu.get_u32 b 3 in
  if w = no_page then -1 else w

let entry_prefix b off = Bu.get_u16 b off
let entry_suffix_len b off = Bu.get_u16 b (off + 2)
let entry_suffix_off off = off + 4

let leaf_payload_off b off = off + 4 + Bu.get_u16 b (off + 2)

let leaf_payload_len b pos =
  let vlen = Bu.get_u16 b pos in
  if vlen = overflow_marker then 10 else 2 + vlen

let leaf_entry_end b off =
  let pos = leaf_payload_off b off in
  pos + leaf_payload_len b pos

let leaf_value b pos =
  let vlen = Bu.get_u16 b pos in
  if vlen = overflow_marker then
    Overflow { head = Bu.get_u32 b (pos + 2); length = Bu.get_u32 b (pos + 6) }
  else Inline (Bytes.sub_string b (pos + 2) vlen)

let check_suffix b soff slen =
  if soff + slen > Bytes.length b then
    invalid_arg "Node.search: entry overruns page"

(* packed [leaf_search] result: bit 0 = exact, bits 1-20 = index, the
   rest = byte offset of that entry (end-of-entries offset at the end) *)
let search_off r = r lsr 21
let search_index r = (r lsr 1) land 0xFFFFF
let search_exact r = r land 1 = 1

let leaf_search b key =
  let n = Bu.get_u16 b 1 in
  let klen = String.length key in
  let pos = ref header_size in
  let idx = ref 0 in
  let ml = ref 0 in
  let exact = ref false in
  let stop = ref false in
  while (not !stop) && !idx < n do
    let p = Bu.get_u16 b !pos in
    let slen = Bu.get_u16 b (!pos + 2) in
    let soff = !pos + 4 in
    check_suffix b soff slen;
    if p > !ml then begin
      let vpos = soff + slen in
      pos := vpos + leaf_payload_len b vpos;
      incr idx
    end
    else begin
      let rem = klen - p in
      let lim = if slen < rem then slen else rem in
      let j = Bu.match_len b soff key p lim in
      if j < lim then
        if Char.code (Bytes.unsafe_get b (soff + j)) < Char.code key.[p + j]
        then begin
          ml := p + j;
          let vpos = soff + slen in
          pos := vpos + leaf_payload_len b vpos;
          incr idx
        end
        else stop := true
      else if slen < rem then begin
        (* the entry is a proper prefix of the probe: below it *)
        ml := p + slen;
        let vpos = soff + slen in
        pos := vpos + leaf_payload_len b vpos;
        incr idx
      end
      else if slen = rem then begin
        exact := true;
        stop := true
      end
      else stop := true (* the probe is a proper prefix of the entry *)
    end
  done;
  (!pos lsl 21) lor (!idx lsl 1) lor (if !exact then 1 else 0)

(* Upper bound over an internal page's separators: the search advances
   past separators [<=] the probe, keeping the page id to their right. *)
let child_in_place b key =
  let n = Bu.get_u16 b 1 in
  let klen = String.length key in
  let pos = ref header_size in
  let idx = ref 0 in
  let ml = ref 0 in
  let child = ref (Bu.get_u32 b 3) in
  let stop = ref false in
  while (not !stop) && !idx < n do
    let p = Bu.get_u16 b !pos in
    let slen = Bu.get_u16 b (!pos + 2) in
    let soff = !pos + 4 in
    check_suffix b soff slen;
    if p > !ml then begin
      child := Bu.get_u32 b (soff + slen);
      pos := soff + slen + 4;
      incr idx
    end
    else begin
      let rem = klen - p in
      let lim = if slen < rem then slen else rem in
      let j = Bu.match_len b soff key p lim in
      if j < lim then
        if Char.code (Bytes.unsafe_get b (soff + j)) < Char.code key.[p + j]
        then begin
          ml := p + j;
          child := Bu.get_u32 b (soff + slen);
          pos := soff + slen + 4;
          incr idx
        end
        else stop := true
      else if slen <= rem then begin
        (* separator <= probe (equal when slen = rem): go right of it *)
        ml := p + slen;
        child := Bu.get_u32 b (soff + slen);
        pos := soff + slen + 4;
        incr idx
      end
      else stop := true
    end
  done;
  !child

let pp_key ppf k =
  String.iter
    (fun c ->
      if c >= ' ' && c < '\127' then Format.pp_print_char ppf c
      else Format.fprintf ppf "\\x%02x" (Char.code c))
    k

let pp ppf = function
  | Leaf { lkeys; next; _ } ->
      Format.fprintf ppf "@[<hv 2>Leaf(next=%d,@ keys=[%a])@]" next
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_key)
        (Array.to_list lkeys)
  | Internal { ikeys; children } ->
      Format.fprintf ppf "@[<hv 2>Internal(children=[%a],@ keys=[%a])@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Format.pp_print_int)
        (Array.to_list children)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_key)
        (Array.to_list ikeys)
