module Bu = Storage.Bytes_util

type value = Inline of string | Overflow of { head : int; length : int }

type leaf = { lkeys : string array; lvals : value array; next : int }
type internal = { ikeys : string array; children : int array }
type t = Leaf of leaf | Internal of internal

let header_size = 7
let overflow_marker = 0xFFFF
let no_page = 0xFFFFFFFF

let inline_size = function
  | Inline s -> 2 + String.length s
  | Overflow _ -> 2 + 8

let prefix_len ~front_coding ~prev key =
  if front_coding then min (Bu.common_prefix_len prev key) 0xFFFF else 0

let size ~front_coding t =
  let entry prev key payload =
    let p = prefix_len ~front_coding ~prev key in
    4 + (String.length key - p) + payload
  in
  match t with
  | Leaf { lkeys; lvals; _ } ->
      let total = ref header_size in
      let prev = ref "" in
      Array.iteri
        (fun i k ->
          total := !total + entry !prev k (inline_size lvals.(i));
          prev := k)
        lkeys;
      !total
  | Internal { ikeys; _ } ->
      let total = ref header_size in
      let prev = ref "" in
      Array.iter
        (fun k ->
          total := !total + entry !prev k 4;
          prev := k)
        ikeys;
      !total

let encode ?saved ~front_coding ~page_size t =
  if size ~front_coding t > page_size then
    invalid_arg "Node.encode: node exceeds page size";
  let b = Bytes.make page_size '\000' in
  let pos = ref header_size in
  let put_entry prev key write_payload =
    let p = prefix_len ~front_coding ~prev key in
    (match saved with Some r -> r := !r + p | None -> ());
    let suffix_len = String.length key - p in
    Bu.put_u16 b !pos p;
    Bu.put_u16 b (!pos + 2) suffix_len;
    Bytes.blit_string key p b (!pos + 4) suffix_len;
    pos := !pos + 4 + suffix_len;
    write_payload ()
  in
  (match t with
  | Leaf { lkeys; lvals; next } ->
      Bytes.set b 0 '\001';
      Bu.put_u16 b 1 (Array.length lkeys);
      Bu.put_u32 b 3 (if next < 0 then no_page else next);
      let prev = ref "" in
      Array.iteri
        (fun i k ->
          put_entry !prev k (fun () ->
              (match lvals.(i) with
              | Inline s ->
                  Bu.put_u16 b !pos (String.length s);
                  Bytes.blit_string s 0 b (!pos + 2) (String.length s);
                  pos := !pos + 2 + String.length s
              | Overflow { head; length } ->
                  Bu.put_u16 b !pos overflow_marker;
                  Bu.put_u32 b (!pos + 2) head;
                  Bu.put_u32 b (!pos + 6) length;
                  pos := !pos + 10));
          prev := k)
        lkeys
  | Internal { ikeys; children } ->
      if Array.length children <> Array.length ikeys + 1 then
        invalid_arg "Node.encode: children/keys arity mismatch";
      Bytes.set b 0 '\000';
      Bu.put_u16 b 1 (Array.length ikeys);
      Bu.put_u32 b 3 children.(0);
      let prev = ref "" in
      Array.iteri
        (fun i k ->
          put_entry !prev k (fun () ->
              Bu.put_u32 b !pos children.(i + 1);
              pos := !pos + 4);
          prev := k)
        ikeys);
  b

let decode b =
  let kind = Bytes.get b 0 in
  let nkeys = Bu.get_u16 b 1 in
  let word3 = Bu.get_u32 b 3 in
  let pos = ref header_size in
  let read_key prev =
    let p = Bu.get_u16 b !pos in
    let slen = Bu.get_u16 b (!pos + 2) in
    let key =
      String.sub prev 0 p ^ Bytes.sub_string b (!pos + 4) slen
    in
    pos := !pos + 4 + slen;
    key
  in
  match kind with
  | '\001' ->
      let lkeys = Array.make nkeys "" in
      let lvals = Array.make nkeys (Inline "") in
      let prev = ref "" in
      for i = 0 to nkeys - 1 do
        let k = read_key !prev in
        lkeys.(i) <- k;
        prev := k;
        let vlen = Bu.get_u16 b !pos in
        if vlen = overflow_marker then begin
          let head = Bu.get_u32 b (!pos + 2) in
          let length = Bu.get_u32 b (!pos + 6) in
          lvals.(i) <- Overflow { head; length };
          pos := !pos + 10
        end
        else begin
          lvals.(i) <- Inline (Bytes.sub_string b (!pos + 2) vlen);
          pos := !pos + 2 + vlen
        end
      done;
      let next = if word3 = no_page then -1 else word3 in
      Leaf { lkeys; lvals; next }
  | '\000' ->
      let ikeys = Array.make nkeys "" in
      let children = Array.make (nkeys + 1) word3 in
      let prev = ref "" in
      for i = 0 to nkeys - 1 do
        let k = read_key !prev in
        ikeys.(i) <- k;
        prev := k;
        children.(i + 1) <- Bu.get_u32 b !pos;
        pos := !pos + 4
      done;
      Internal { ikeys; children }
  | _ -> invalid_arg "Node.decode: bad node kind byte"

let pp_key ppf k =
  String.iter
    (fun c ->
      if c >= ' ' && c < '\127' then Format.pp_print_char ppf c
      else Format.fprintf ppf "\\x%02x" (Char.code c))
    k

let pp ppf = function
  | Leaf { lkeys; next; _ } ->
      Format.fprintf ppf "@[<hv 2>Leaf(next=%d,@ keys=[%a])@]" next
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_key)
        (Array.to_list lkeys)
  | Internal { ikeys; children } ->
      Format.fprintf ppf "@[<hv 2>Internal(children=[%a],@ keys=[%a])@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Format.pp_print_int)
        (Array.to_list children)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_key)
        (Array.to_list ikeys)
