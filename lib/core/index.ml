module Schema = Oodb_schema.Schema
module Code = Oodb_schema.Code
module Encoding = Oodb_schema.Encoding
module Value = Objstore.Value
module Store = Objstore.Store

type kind =
  | Class_hierarchy of { root : Schema.class_id; attr : string }
  | Path of { head : Schema.class_id; refs : string list; attr : string }

(* one REF path registered on the index *)
type spec = {
  (* declared classes head-first: [Vehicle; Company; Employee] *)
  s_classes : Schema.class_id array;
  (* REF attribute names, s_refs.(i) : s_classes.(i) -> s_classes.(i+1) *)
  s_refs : string array;
  s_attr : string;
}

type t = {
  tree : Btree.t;
  enc : Encoding.t;
  kind : kind;
  ty : Schema.attr_type;
  mutable specs : spec list;
}

let kind t = t.kind
let encoding t = t.enc
let tree t = t.tree
let attr_ty t = t.ty
let sync t = Btree.sync t.tree
let pool t = Btree.pool t.tree

let set_cache_pages t n =
  if n < 0 then invalid_arg "Uindex.set_cache_pages: negative capacity";
  if n = 0 then Btree.set_pool t.tree None
  else
    Btree.set_pool t.tree
      (Some (Storage.Buffer_pool.create ~capacity:n (Btree.pager t.tree)))

let first_spec t =
  match t.specs with
  | s :: _ -> s
  | [] -> invalid_arg "Uindex: index has no path registered"

let paths t =
  List.map
    (fun s -> (Array.to_list s.s_classes, Array.to_list s.s_refs, s.s_attr))
    t.specs

let path_classes t = Array.to_list (first_spec t).s_classes
let arity t = Array.length (first_spec t).s_classes

let check_indexable schema cls attr =
  match Schema.attr_type_exn schema cls attr with
  | (Schema.Int | Schema.String) as ty -> ty
  | Schema.Ref _ | Schema.Ref_set _ ->
      invalid_arg
        (Printf.sprintf
           "Uindex: attribute %S of %s is a reference, not an indexable value"
           attr (Schema.name schema cls))

let create_class_hierarchy ?config ?pool pager enc ~root ~attr =
  let schema = Encoding.schema enc in
  let ty = check_indexable schema root attr in
  {
    tree = Btree.create ?config ?pool pager;
    enc;
    kind = Class_hierarchy { root; attr };
    ty;
    specs = [ { s_classes = [| root |]; s_refs = [||]; s_attr = attr } ];
  }

let attach_class_hierarchy ?config ?pool pager enc ~root ~attr =
  let schema = Encoding.schema enc in
  let ty = check_indexable schema root attr in
  {
    tree = Btree.reattach ?config ?pool pager;
    enc;
    kind = Class_hierarchy { root; attr };
    ty;
    specs = [ { s_classes = [| root |]; s_refs = [||]; s_attr = attr } ];
  }

let recreate ?config ?pool t pager =
  let config =
    match config with
    | Some _ as c -> c
    | None ->
        (* the tree configuration is page-size-dependent
           (overflow_threshold); inherit it only when it still applies *)
        if
          Storage.Pager.page_size pager
          = Storage.Pager.page_size (Btree.pager t.tree)
        then Some (Btree.config t.tree)
        else None
  in
  {
    tree = Btree.create ?config ?pool pager;
    enc = t.enc;
    kind = t.kind;
    ty = t.ty;
    specs = t.specs;
  }

(* resolve and validate one REF path; returns its spec and attribute type *)
let make_spec enc ~head ~refs ~attr =
  let schema = Encoding.schema enc in
  if refs = [] then
    invalid_arg
      "Uindex.create_path: empty REF chain (use a class-hierarchy index)";
  let classes =
    List.fold_left
      (fun acc r ->
        let cur = List.hd acc in
        match Schema.attr_type schema cur r with
        | Some (Schema.Ref c) | Some (Schema.Ref_set c) -> c :: acc
        | Some (Schema.Int | Schema.String) ->
            invalid_arg
              (Printf.sprintf "Uindex.create_path: %S on %s is not a reference"
                 r (Schema.name schema cur))
        | None ->
            invalid_arg
              (Printf.sprintf "Uindex.create_path: %s has no attribute %S"
                 (Schema.name schema cur) r))
      [ head ] refs
    |> List.rev
  in
  let tail = List.nth classes (List.length classes - 1) in
  let ty = check_indexable schema tail attr in
  if not (Encoding.path_is_encodable enc classes) then
    invalid_arg
      "Uindex.create_path: class codes do not decrease along the path (the \
       REF path is not encodable; check the schema's REF direction)";
  (* the subtrees along the path must be disjoint, in descending order *)
  let rec check_disjoint = function
    | a :: (b :: _ as rest) ->
        let _, ahi = Encoding.subtree_interval enc b in
        let blo, _ = Encoding.subtree_interval enc a in
        if String.compare ahi blo > 0 then
          invalid_arg
            "Uindex.create_path: class subtrees along the path overlap";
        check_disjoint rest
    | [ _ ] | [] -> ()
  in
  check_disjoint classes;
  ( {
      s_classes = Array.of_list classes;
      s_refs = Array.of_list refs;
      s_attr = attr;
    },
    ty )

let create_path ?config ?pool pager enc ~head ~refs ~attr =
  let spec, ty = make_spec enc ~head ~refs ~attr in
  {
    tree = Btree.create ?config ?pool pager;
    enc;
    kind = Path { head; refs; attr };
    ty;
    specs = [ spec ];
  }

let add_path t ~head ~refs ~attr =
  (match t.kind with
  | Path _ -> ()
  | Class_hierarchy _ ->
      invalid_arg "Uindex.add_path: not a path index");
  let spec, ty = make_spec t.enc ~head ~refs ~attr in
  if ty <> t.ty then
    invalid_arg
      "Uindex.add_path: the new path's attribute type differs from the \
       index's";
  t.specs <- t.specs @ [ spec ]

let default_comps t =
  Array.to_list (first_spec t).s_classes
  |> List.rev
  |> List.map (fun c -> Query.comp (Query.P_subtree c))

(* --- entry computation --------------------------------------------------- *)

let positions spec store oid =
  let schema = Store.schema store in
  let cls = Store.class_of store oid in
  let out = ref [] in
  Array.iteri
    (fun i declared ->
      if Schema.is_subclass schema ~sub:cls ~super:declared then
        out := i :: !out)
    spec.s_classes;
  List.rev !out

(* chains (head-first oid lists) passing through [oid] at position [p] *)
let chains_through spec store oid p =
  let schema = Store.schema store in
  let fits i o =
    Schema.is_subclass schema ~sub:(Store.class_of store o)
      ~super:spec.s_classes.(i)
  in
  let rec backward p o =
    if p = 0 then [ [ o ] ]
    else
      Store.referrers store o ~via:spec.s_refs.(p - 1)
      |> List.filter (fits (p - 1))
      |> List.concat_map (fun r ->
             List.map (fun ch -> ch @ [ o ]) (backward (p - 1) r))
  in
  let rec forward p o =
    if p = Array.length spec.s_classes - 1 then [ [ o ] ]
    else
      Store.follow store o spec.s_refs.(p)
      |> List.filter (fits (p + 1))
      |> List.concat_map (fun tgt ->
             List.map (fun ch -> o :: ch) (forward (p + 1) tgt))
  in
  let backs = backward p oid and fronts = forward p oid in
  List.concat_map
    (fun back -> List.map (fun front -> back @ List.tl front) fronts)
    backs

let spec_entry_keys t spec store oid =
  positions spec store oid
  |> List.concat_map (fun p ->
         chains_through spec store oid p
         |> List.filter_map (fun chain ->
                let tail = List.nth chain (List.length chain - 1) in
                match Store.attr store tail spec.s_attr with
                | Value.Null -> None
                | Value.Ref _ | Value.Ref_set _ -> None
                | (Value.Int _ | Value.Str _) as v ->
                    let comps =
                      List.rev_map
                        (fun o ->
                          (Encoding.code t.enc (Store.class_of store o), o))
                        chain
                    in
                    Some (Ukey.entry_key ~value:v comps)))

let entry_keys t store oid =
  if not (Store.mem store oid) then []
  else
    List.concat_map (fun spec -> spec_entry_keys t spec store oid) t.specs
    |> List.sort_uniq String.compare

let index_object t store oid =
  (* entries of one object cluster by construction; merge them in one
     batch (Section 3.5's batch updates) *)
  Btree.insert_batch t.tree
    (List.map (fun key -> (key, "")) (entry_keys t store oid))

let deindex_object t store oid =
  List.iter (fun key -> ignore (Btree.delete t.tree key)) (entry_keys t store oid)

let entry_of t ~value comps =
  Ukey.entry_key ~value
    (List.map (fun (cls, oid) -> (Encoding.code t.enc cls, oid)) comps)

let insert_entry t ~value comps =
  Btree.insert t.tree ~key:(entry_of t ~value comps) ~value:""

let remove_entry t ~value comps =
  ignore (Btree.delete t.tree (entry_of t ~value comps))

let build ?fill t store =
  let spec_entries spec =
    Store.extent store ~deep:true spec.s_classes.(0)
    |> List.concat_map (fun oid -> spec_entry_keys t spec store oid)
    |> List.map (fun key -> (key, ""))
  in
  if Btree.is_empty t.tree then
    (* initial build: sort every path's entries together and construct
       the tree bottom-up, writing each page exactly once *)
    List.concat_map spec_entries t.specs
    |> List.sort_uniq compare
    |> List.to_seq
    |> Btree.bulk_load ?fill t.tree
  else
    (* incremental (re)build into a populated tree: merge per path *)
    List.iter (fun spec -> Btree.insert_batch t.tree (spec_entries spec)) t.specs

(* --- snapshot views ------------------------------------------------------ *)

let snapshot_view t =
  let parent = Btree.pager t.tree in
  let snap = Storage.Pager.snapshot parent in
  let tree =
    try
      if Storage.Pager.durable parent then
        (* the committed B-tree root is named by the committed header
           metadata (recorded by Btree.sync) *)
        Btree.reattach ~config:(Btree.config t.tree) snap
      else
        (* memory pagers commit every write immediately, so the live root
           is the committed root (the header metadata may be stale
           between Btree.syncs) *)
        Btree.attach ~config:(Btree.config t.tree) snap
          ~root:(Btree.root t.tree)
    with e ->
      Storage.Pager.release_snapshot snap;
      raise e
  in
  (* no pool: a pool caches the live image, which may be ahead of the
     pinned snapshot *)
  { t with tree }

let release_view v =
  let pager = Btree.pager v.tree in
  if not (Storage.Pager.is_snapshot pager) then
    invalid_arg "Uindex.release_view: not a snapshot view";
  Storage.Pager.release_snapshot pager

let is_view t = Storage.Pager.is_snapshot (Btree.pager t.tree)

let entry_count t = Btree.length t.tree

let pp_stats ppf t =
  let name =
    match t.kind with
    | Class_hierarchy { root; attr } ->
        Printf.sprintf "CH(%s.%s)"
          (Schema.name (Encoding.schema t.enc) root)
          attr
    | Path { head; refs; attr } ->
        Printf.sprintf "PATH(%s.%s.%s%s)"
          (Schema.name (Encoding.schema t.enc) head)
          (String.concat "." refs) attr
          (match t.specs with
          | _ :: _ :: _ -> Printf.sprintf " +%d paths" (List.length t.specs - 1)
          | _ -> "")
  in
  Format.fprintf ppf "%s %a" name Btree.pp_stats t.tree
