module Schema = Oodb_schema.Schema
module Value = Objstore.Value

type value_pred =
  | V_any
  | V_eq of Value.t
  | V_in of Value.t list
  | V_range of Value.t option * Value.t option

type class_pat =
  | P_class of Schema.class_id
  | P_subtree of Schema.class_id
  | P_union of class_pat list

type slot =
  | S_any
  | S_oid of Value.oid
  | S_one_of of Value.oid list
  | S_pred of (Value.oid -> bool)

type comp = { pat : class_pat; slot : slot }
type t = { value : value_pred; comps : comp list }

let comp ?(slot = S_any) pat = { pat; slot }

let subtree_minus schema root ~except =
  let rec go c =
    if List.mem c except then []
    else
      let touched =
        List.exists (fun e -> Schema.is_subclass schema ~sub:e ~super:c) except
      in
      if not touched then [ P_subtree c ]
      else P_class c :: List.concat_map go (Schema.children schema c)
  in
  match go root with
  | [] -> invalid_arg "Query.subtree_minus: nothing remains of the subtree"
  | [ p ] -> p
  | ps -> P_union ps
let class_hierarchy ~value pat = { value; comps = [ comp pat ] }
let path ~value comps = { value; comps }

let value_matches pred v =
  match pred with
  | V_any -> true
  | V_eq w -> Value.compare v w = 0
  | V_in ws -> List.exists (fun w -> Value.compare v w = 0) ws
  | V_range (lo, hi) ->
      (match lo with Some l -> Value.compare v l >= 0 | None -> true)
      && (match hi with Some h -> Value.compare v h <= 0 | None -> true)

let rec pat_matches schema pat cls =
  match pat with
  | P_class c -> c = cls
  | P_subtree c -> Schema.is_subclass schema ~sub:cls ~super:c
  | P_union ps -> List.exists (fun p -> pat_matches schema p cls) ps

let slot_matches slot oid =
  match slot with
  | S_any -> true
  | S_oid o -> o = oid
  | S_one_of os -> List.mem oid os
  | S_pred f -> f oid

let pp_value_pred ppf = function
  | V_any -> Format.pp_print_string ppf "*"
  | V_eq v -> Value.pp ppf v
  | V_in vs ->
      Format.fprintf ppf "in{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Value.pp)
        vs
  | V_range (lo, hi) ->
      let pp_bound ppf = function
        | Some v -> Value.pp ppf v
        | None -> Format.pp_print_string ppf "_"
      in
      Format.fprintf ppf "[%a-%a]" pp_bound lo pp_bound hi

let rec pp_pat schema ppf = function
  | P_class c -> Format.pp_print_string ppf (Schema.name schema c)
  | P_subtree c -> Format.fprintf ppf "%s*" (Schema.name schema c)
  | P_union ps ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '|')
           (pp_pat schema))
        ps

let pp_slot ppf = function
  | S_any -> Format.pp_print_string ppf "_"
  | S_oid o -> Format.fprintf ppf "@%d" o
  | S_one_of os -> Format.fprintf ppf "@{%d oids}" (List.length os)
  | S_pred _ -> Format.pp_print_string ppf "<pred>"

let pp schema ppf t =
  Format.fprintf ppf "(%a" pp_value_pred t.value;
  List.iter
    (fun c -> Format.fprintf ppf ", %a %a" (pp_pat schema) c.pat pp_slot c.slot)
    t.comps;
  Format.fprintf ppf ")"
