module Schema = Oodb_schema.Schema
module Value = Objstore.Value

exception Parse_error of string

(* --- lexer ----------------------------------------------------------------- *)

type token =
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Comma
  | Dash
  | Pipe
  | Star
  | Question
  | Underscore
  | At
  | Int of int
  | Word of string  (* bare identifier or quoted string *)
  | Quoted of string

let fail pos fmt =
  Format.kasprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" pos m))) fmt

let lex input =
  let n = String.length input in
  let out = ref [] in
  let i = ref 0 in
  let push t = out := (t, !i) :: !out in
  while !i < n do
    let c = input.[!i] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> ()
    | '(' -> push Lparen
    | ')' -> push Rparen
    | '[' -> push Lbracket
    | ']' -> push Rbracket
    | '{' -> push Lbrace
    | '}' -> push Rbrace
    | ',' -> push Comma
    | '|' -> push Pipe
    | '*' -> push Star
    | '?' -> push Question
    | '_' -> push Underscore
    | '@' -> push At
    | '"' ->
        let start = !i + 1 in
        let rec close j =
          if j >= n then fail start "unterminated string literal"
          else if input.[j] = '"' then j
          else close (j + 1)
        in
        let stop = close start in
        push (Quoted (String.sub input start (stop - start)));
        i := stop
    | '-' ->
        (* a dash is a sign only when a digit follows AND the previous
           token cannot end a scalar (so [5--3] parses) *)
        let prev_ends_scalar =
          match !out with
          | (Int _, _) :: _ | (Word _, _) :: _ | (Quoted _, _) :: _ -> true
          | (Rbrace, _) :: _ | (Rbracket, _) :: _ -> true
          | _ -> false
        in
        (* directly after '[' a dash is always the range separator, so
           [-50] means "open below"; a negative lower bound has no
           textual form *)
        let after_lbracket =
          match !out with (Lbracket, _) :: _ -> true | _ -> false
        in
        if
          (not prev_ends_scalar) && (not after_lbracket)
          && !i + 1 < n
          && input.[!i + 1] >= '0'
          && input.[!i + 1] <= '9'
        then begin
          let start = !i in
          let rec stop j =
            if j < n && input.[j] >= '0' && input.[j] <= '9' then stop (j + 1)
            else j
          in
          let j = stop (start + 1) in
          push (Int (int_of_string (String.sub input start (j - start))));
          i := j - 1
        end
        else push Dash
    | '0' .. '9' ->
        let start = !i in
        let rec stop j =
          if j < n && input.[j] >= '0' && input.[j] <= '9' then stop (j + 1)
          else j
        in
        let j = stop start in
        push (Int (int_of_string (String.sub input start (j - start))));
        i := j - 1
    | ('A' .. 'Z' | 'a' .. 'z') ->
        let start = !i in
        let is_word_char c =
          (c >= 'A' && c <= 'Z')
          || (c >= 'a' && c <= 'z')
          || (c >= '0' && c <= '9')
          || c = '_'
        in
        let rec stop j = if j < n && is_word_char input.[j] then stop (j + 1) else j in
        let j = stop start in
        push (Word (String.sub input start (j - start)));
        i := j - 1
    | _ -> fail !i "unexpected character %C" c);
    incr i
  done;
  List.rev !out

(* --- parser ------------------------------------------------------------------ *)

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t

let pos st = match st.toks with [] -> -1 | (_, p) :: _ -> p

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t what =
  match st.toks with
  | (t', _) :: rest when t' = t -> st.toks <- rest
  | _ -> fail (pos st) "expected %s" what

let scalar st =
  match peek st with
  | Some (Int x) ->
      advance st;
      Value.Int x
  | Some (Word w) ->
      advance st;
      Value.Str w
  | Some (Quoted s) ->
      advance st;
      Value.Str s
  | _ -> fail (pos st) "expected a value (integer, word or \"string\")"

let value_pred st =
  match peek st with
  | Some Star ->
      advance st;
      Query.V_any
  | Some Lbrace ->
      advance st;
      let rec items acc =
        let v = scalar st in
        match peek st with
        | Some Comma ->
            advance st;
            items (v :: acc)
        | _ ->
            expect st Rbrace "'}'";
            List.rev (v :: acc)
      in
      Query.V_in (items [])
  | Some Lbracket ->
      advance st;
      let lo =
        match peek st with
        | Some Dash -> None
        | _ -> Some (scalar st)
      in
      expect st Dash "'-'";
      let hi =
        match peek st with
        | Some Rbracket -> None
        | _ -> Some (scalar st)
      in
      expect st Rbracket "']'";
      if lo = None && hi = None then fail (pos st) "empty range bounds";
      Query.V_range (lo, hi)
  | _ -> Query.V_eq (scalar st)

let class_name schema st =
  match peek st with
  | Some (Word w) -> (
      advance st;
      match Schema.find schema w with
      | Some id -> id
      | None -> fail (pos st) "unknown class %S" w)
  | _ -> fail (pos st) "expected a class name"

let rec class_pat schema st =
  match peek st with
  | Some Lbracket ->
      advance st;
      let rec alts acc =
        let p = class_pat schema st in
        match peek st with
        | Some Pipe ->
            advance st;
            alts (p :: acc)
        | _ ->
            expect st Rbracket "']'";
            List.rev (p :: acc)
      in
      Query.P_union (alts [])
  | _ -> (
      let id = class_name schema st in
      match peek st with
      | Some Star ->
          advance st;
          Query.P_subtree id
      | _ -> Query.P_class id)

let slot st =
  match peek st with
  | Some Question | Some Underscore ->
      advance st;
      Query.S_any
  | Some At -> (
      advance st;
      match peek st with
      | Some (Int o) ->
          advance st;
          Query.S_oid o
      | Some Lbrace ->
          advance st;
          let rec oids acc =
            match peek st with
            | Some (Int o) -> (
                advance st;
                match peek st with
                | Some Comma ->
                    advance st;
                    oids (o :: acc)
                | _ ->
                    expect st Rbrace "'}'";
                    List.rev (o :: acc))
            | _ -> fail (pos st) "expected an OID"
          in
          Query.S_one_of (oids [])
      | _ -> fail (pos st) "expected an OID or '{' after '@'")
  | _ -> Query.S_any

let comp schema st =
  let pat = class_pat schema st in
  let slot = slot st in
  { Query.pat; slot }

let parse schema input =
  let st = { toks = lex input } in
  expect st Lparen "'('";
  let value = value_pred st in
  let rec comps acc =
    match peek st with
    | Some Comma ->
        advance st;
        comps (comp schema st :: acc)
    | Some Rparen ->
        advance st;
        List.rev acc
    | _ -> fail (pos st) "expected ',' or ')'"
  in
  let comps = comps [] in
  if comps = [] then raise (Parse_error "query needs at least one class component");
  (match st.toks with
  | [] -> ()
  | (_, p) :: _ -> fail p "trailing input after query");
  { Query.value; comps }

(* --- printer ------------------------------------------------------------------ *)

let scalar_to_syntax = function
  | Value.Int x -> string_of_int x
  | Value.Str s ->
      let plain =
        s <> ""
        && String.for_all
             (fun c ->
               (c >= 'A' && c <= 'Z')
               || (c >= 'a' && c <= 'z')
               || (c >= '0' && c <= '9')
               || c = '_')
             s
        && not (s.[0] >= '0' && s.[0] <= '9')
      in
      if plain then s else Printf.sprintf "%S" s
  | Value.Null | Value.Ref _ | Value.Ref_set _ ->
      invalid_arg "Qparse.to_syntax: non-scalar value"

let value_to_syntax = function
  | Query.V_any
  | Query.V_range (None, None) (* an unbounded range is just "any" *) -> "*"
  | Query.V_eq v -> scalar_to_syntax v
  | Query.V_in vs ->
      "{" ^ String.concat ", " (List.map scalar_to_syntax vs) ^ "}"
  | Query.V_range (lo, hi) ->
      let b = function Some v -> scalar_to_syntax v | None -> "" in
      Printf.sprintf "[%s-%s]" (b lo) (b hi)

let rec pat_to_syntax schema = function
  | Query.P_class c -> Schema.name schema c
  | Query.P_subtree c -> Schema.name schema c ^ "*"
  | Query.P_union ps ->
      "[" ^ String.concat " | " (List.map (pat_to_syntax schema) ps) ^ "]"

let slot_to_syntax = function
  | Query.S_any -> ""
  | Query.S_oid o -> Printf.sprintf " @%d" o
  | Query.S_one_of os ->
      Printf.sprintf " @{%s}" (String.concat ", " (List.map string_of_int os))
  | Query.S_pred _ -> " ?"

let to_syntax schema (q : Query.t) =
  let comps =
    List.map
      (fun c -> pat_to_syntax schema c.Query.pat ^ slot_to_syntax c.Query.slot)
      q.comps
  in
  Printf.sprintf "(%s%s)" (value_to_syntax q.value)
    (String.concat "" (List.map (fun c -> ", " ^ c) comps))
