module Schema = Oodb_schema.Schema
module Encoding = Oodb_schema.Encoding
module Store = Objstore.Store
module Pager = Storage.Pager
module Bu = Storage.Bytes_util
module Node = Btree.Node

let nil = 0xFFFFFFFF

type issue = { component : string; page : int option; detail : string }

type report = {
  ok : bool;
  checksums : bool;
  pages : int;
  node_pages : int;
  overflow_pages : int;
  free_pages : int;
  entries : int;
  issues : issue list;
}

(* Sorted-list difference: elements of [a] not in [b] (both sorted,
   deduplicated). *)
let rec diff_sorted a b =
  match (a, b) with
  | [], _ -> []
  | a, [] -> a
  | x :: a', y :: b' ->
      let c = String.compare x y in
      if c = 0 then diff_sorted a' b'
      else if c < 0 then x :: diff_sorted a' b
      else diff_sorted a b'

let check ?(throttle = fun (_ : int) -> ()) ?store idx =
  let tree = Index.tree idx in
  let pager = Btree.pager tree in
  let enc = Index.encoding idx in
  let ty = Index.attr_ty idx in
  let schema = Encoding.schema enc in
  let hw = Pager.high_water pager in
  let issues = ref [] and n_issues = ref 0 in
  let issue ?page component fmt =
    Format.kasprintf
      (fun detail ->
        incr n_issues;
        (* cap the retained list: a shredded file can produce one issue
           per page/entry, and the report only needs a sample *)
        if !n_issues <= 1000 then issues := { component; page; detail } :: !issues)
      fmt
  in
  let record_exn fallback_component = function
    | Storage.Storage_error.Corruption { page; component; detail } ->
        issue ?page component "%s" detail
    | Invalid_argument detail | Failure detail ->
        issue fallback_component "%s" detail
    | e -> issue fallback_component "%s" (Printexc.to_string e)
  in
  (* --- pass 1: page reachability ---------------------------------- *)
  (* Every page of the pager must be exactly one of: free, B-tree node,
     overflow chunk.  Walk the tree from the root, claiming pages; a
     page claimed twice, referenced while freed, or live but never
     claimed is damage. *)
  let roles : (int, [ `Node | `Overflow ]) Hashtbl.t = Hashtbl.create 256 in
  let claim id role ~source =
    if Hashtbl.mem roles id then begin
      issue ~page:id "verify.reachability" "page %d reached twice (%s)" id
        source;
      false
    end
    else begin
      Hashtbl.add roles id role;
      true
    end
  in
  let read_page id ~source =
    if id < 0 || id >= hw then begin
      issue "verify.reachability" "reference to out-of-range page %d (%s)" id
        source;
      None
    end
    else begin
      (* the scrub's pacing point: one callback per page read, before
         the read, so a sleeping throttle spreads the IO out *)
      throttle id;
      match Pager.read pager id with
      | b -> Some b
      | exception e ->
          record_exn "verify.reachability" e;
          None
    end
  in
  let rec walk_node id ~source =
    if claim id `Node ~source then
      match read_page id ~source with
      | None -> ()
      | Some b -> (
          match Node.decode b with
          | exception (Invalid_argument d | Failure d) ->
              issue ~page:id "btree.node" "%s" d
          | Node.Internal { children; _ } ->
              Array.iter
                (fun c ->
                  walk_node c ~source:(Printf.sprintf "child of node %d" id))
                children
          | Node.Leaf { lvals; _ } ->
              Array.iter
                (function
                  | Node.Inline _ -> ()
                  | Node.Overflow { head; length } ->
                      walk_overflow head length ~owner:id)
                lvals)
  and walk_overflow head length ~owner =
    let source = Printf.sprintf "overflow chain of leaf %d" owner in
    let rec go id remaining =
      if id <> nil && id >= 0 then
        if remaining <= 0 then
          issue ~page:id "verify.reachability"
            "overflow chain of leaf %d exceeds its recorded length" owner
        else if claim id `Overflow ~source then
          match read_page id ~source with
          | None -> ()
          | Some b ->
              let next = Bu.get_u32 b 0 and clen = Bu.get_u16 b 4 in
              go next (remaining - max 1 clen)
    in
    go head length
  in
  walk_node (Btree.root tree) ~source:"root";
  let free = Pager.free_pages pager in
  List.iter
    (fun id ->
      if Hashtbl.mem roles id then
        issue ~page:id "verify.reachability"
          "page %d is both free and referenced by the tree" id)
    free;
  for id = 0 to hw - 1 do
    if Pager.is_live pager id && not (Hashtbl.mem roles id) then
      issue ~page:id "verify.reachability"
        "live page %d is not reachable from the tree (leaked)" id
  done;
  (* --- pass 2: structural invariants ------------------------------- *)
  (try Btree.check tree with e -> record_exn "btree.invariants" e);
  (* --- pass 3 and 4: entry decoding + store cross-reference -------- *)
  let entries = ref 0 in
  let live_keys = ref [] in
  let iter_ok =
    (* key comps are in ascending code order: target first, head last —
       the reverse of each path's declared head-first class list *)
    let declared_paths =
      List.map (fun (classes, _, _) -> List.rev classes) (Index.paths idx)
    in
    let fits comps declared =
      List.length comps = List.length declared
      && List.for_all2
           (fun (cls, _) decl -> Schema.is_subclass schema ~sub:cls ~super:decl)
           comps declared
    in
    try
      Btree.iter tree (fun e ->
          incr entries;
          live_keys := e.Btree.key :: !live_keys;
          match Ukey.decode ~enc ~ty e.Btree.key with
          | exception (Invalid_argument d | Failure d) ->
              issue "verify.entry" "undecodable entry key %S: %s" e.Btree.key d
          | dec ->
              if not (List.exists (fits dec.Ukey.comps) declared_paths) then
                issue "verify.entry"
                  "entry %S: COD chain matches no registered path" e.Btree.key;
              Option.iter
                (fun st ->
                  List.iter
                    (fun (cls, oid) ->
                      if not (Store.mem st oid) then
                        issue "verify.entry"
                          "entry %S references missing object %d" e.Btree.key
                          oid
                      else if Store.class_of st oid <> cls then
                        issue "verify.entry"
                          "entry %S records class %s for object %d, store says \
                           %s"
                          e.Btree.key
                          (Schema.name schema cls)
                          oid
                          (Schema.name schema (Store.class_of st oid)))
                    dec.Ukey.comps)
                store);
      true
    with e ->
      record_exn "verify.entry" e;
      false
  in
  (match store with
  | Some st when iter_ok ->
      (* the live entry set must equal a fresh rebuild from the store *)
      let expected = ref [] in
      Store.iter st (fun o ->
          expected := Index.entry_keys idx st o.Store.oid @ !expected);
      let live = List.sort_uniq String.compare !live_keys in
      let expected = List.sort_uniq String.compare !expected in
      let missing = diff_sorted expected live in
      let extra = diff_sorted live expected in
      List.iter
        (fun k -> issue "verify.store" "missing entry for store object: %S" k)
        missing;
      List.iter
        (fun k -> issue "verify.store" "entry with no store counterpart: %S" k)
        extra
  | _ -> ());
  let count role =
    Hashtbl.fold (fun _ r acc -> if r = role then acc + 1 else acc) roles 0
  in
  {
    ok = !n_issues = 0;
    checksums = Pager.checksums_enabled pager;
    pages = hw;
    node_pages = count `Node;
    overflow_pages = count `Overflow;
    free_pages = List.length free;
    entries = !entries;
    issues = List.rev !issues;
  }

let salvage ?config ?pool idx store pager =
  let fresh = Index.recreate ?config ?pool idx pager in
  Index.build fresh store;
  Index.sync fresh;
  fresh

let issue_to_json i =
  Obs.Json.Obj
    [
      ("component", Obs.Json.Str i.component);
      ("page", match i.page with Some p -> Obs.Json.Int p | None -> Obs.Json.Null);
      ("detail", Obs.Json.Str i.detail);
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("ok", Obs.Json.Bool r.ok);
      ("checksums", Obs.Json.Bool r.checksums);
      ("pages", Obs.Json.Int r.pages);
      ("node_pages", Obs.Json.Int r.node_pages);
      ("overflow_pages", Obs.Json.Int r.overflow_pages);
      ("free_pages", Obs.Json.Int r.free_pages);
      ("entries", Obs.Json.Int r.entries);
      ("issues", Obs.Json.List (List.map issue_to_json r.issues));
    ]

let pp ppf r =
  Format.fprintf ppf
    "@[<v>ok: %b@,pages: %d (%d nodes, %d overflow, %d free)@,entries: %d"
    r.ok r.pages r.node_pages r.overflow_pages r.free_pages r.entries;
  List.iter
    (fun i ->
      Format.fprintf ppf "@,%s%s: %s" i.component
        (match i.page with
        | Some p -> Printf.sprintf " (page %d)" p
        | None -> "")
        i.detail)
    r.issues;
  Format.fprintf ppf "@]"
