module Schema = Oodb_schema.Schema
module Value = Objstore.Value
module Stats = Storage.Stats
module Pager = Storage.Pager
module Trace = Obs.Trace

type binding = {
  value : Value.t;
  comps : (Schema.class_id * Value.oid) list;
}

type outcome = {
  bindings : binding list;
  page_reads : int;
  pool_hits : int;
  entries_scanned : int;
}

let head_oids o =
  List.filter_map
    (fun b ->
      match List.rev b.comps with (_, oid) :: _ -> Some oid | [] -> None)
    o.bindings
  |> List.sort_uniq compare

let take n l =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n l

let binding_of (d : Ukey.decoded) arity =
  { value = d.value; comps = take arity d.comps }

(* [page_reads] stays the pager-read delta whether or not a pool is
   attached: pool hits never reach the pager, misses do, so the paper's
   uncached counts are preserved exactly when no pool is in play and the
   warm counts are genuine physical-page fetches otherwise.  Hits are
   reported separately. *)
let with_read_count tree f =
  let stats = Pager.stats (Btree.pager tree) in
  let before = Stats.snapshot stats in
  let bindings, entries = f () in
  let delta = Stats.diff ~before ~after:(Stats.snapshot stats) in
  {
    bindings = List.rev bindings;
    page_reads = delta.reads;
    pool_hits = delta.pool_hits;
    entries_scanned = entries;
  }

(* --- span plumbing ------------------------------------------------------ *)

(* All instrumentation is keyed on [trace : Trace.span option]; when it is
   [None] the cost is an option match at segment boundaries — never per
   entry — so the untraced paths stay within noise of the old code.

   Only descent/scan segment spans carry a ["page_reads"] field, and every
   pager read issued by the executor happens inside exactly one segment
   (plan compilation and candidate generation are pure), so
   [Trace.total root "page_reads"] equals the query's pager-stats delta. *)

let plan_span trace plan =
  match trace with
  | None -> ()
  | Some parent ->
      let sp = Trace.span "plan" in
      (match Plan.intervals plan with
      | Some ivs -> Trace.add_field sp "intervals" (List.length ivs)
      | None -> Trace.add_field sp "enumerable" 0);
      Trace.add_child parent sp

let merge_span trace (acc, n) =
  (match trace with
  | None -> ()
  | Some parent ->
      let sp = Trace.span "merge" in
      Trace.add_field sp "bindings" (List.length acc);
      Trace.add_field sp "entries_scanned" n;
      Trace.add_child parent sp);
  (acc, n)

(* Mutable per-query segment accounting for the scan loops.  A segment is
   one B-tree descent plus the sequential scan that follows it; the
   parallel algorithm opens a new segment at every [Plan.Seek]. *)
type seg_state = {
  parent : Trace.span;
  stats : Stats.t;
  mutable sp : Trace.span option;
  mutable start_reads : int;
  mutable start_pool_hits : int;
  mutable entries : int;
  mutable accepted : int;
}

let seg_make trace stats =
  match trace with
  | None -> None
  | Some parent ->
      Some
        {
          parent;
          stats;
          sp = None;
          start_reads = 0;
          start_pool_hits = 0;
          entries = 0;
          accepted = 0;
        }

let seg_close = function
  | None -> ()
  | Some s -> (
      match s.sp with
      | None -> ()
      | Some sp ->
          Trace.add_field sp "page_reads" (s.stats.Stats.reads - s.start_reads);
          let hits = s.stats.Stats.pool_hits - s.start_pool_hits in
          if hits > 0 then Trace.add_field sp "pool_hits" hits;
          Trace.add_field sp "entries" s.entries;
          Trace.add_field sp "accepted" s.accepted;
          Trace.add_child s.parent sp;
          s.sp <- None)

let seg_open seg name =
  match seg with
  | None -> ()
  | Some s ->
      seg_close seg;
      s.sp <- Some (Trace.span name);
      s.start_reads <- s.stats.Stats.reads;
      s.start_pool_hits <- s.stats.Stats.pool_hits;
      s.entries <- 0;
      s.accepted <- 0

let seg_entry seg ~accepted =
  match seg with
  | None -> ()
  | Some s ->
      s.entries <- s.entries + 1;
      if accepted then s.accepted <- s.accepted + 1

(* --- cursor reuse -------------------------------------------------------- *)

(* One scanner per domain, re-pointed at the query's view with
   [Scanner.reset]: the memo table and key scratch are recycled instead
   of reallocated per query (ROADMAP item 5's "cursor structs reused
   across a session").  Server workers are domains, so each worker gets
   its own cursor and no locking is needed.  The slot is emptied while a
   query runs — a re-entrant call would simply build a fresh scanner —
   and refilled on the way out, exceptions included. *)
let scanner_slot : Btree.Scanner.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_scanner tree read f =
  let slot = Domain.DLS.get scanner_slot in
  let sc =
    match !slot with
    | Some sc ->
        slot := None;
        Btree.Scanner.reset sc tree ~read;
        sc
    | None -> Btree.Scanner.create tree ~read
  in
  Fun.protect ~finally:(fun () -> slot := Some sc) (fun () -> f sc)

(* --- the two algorithms ------------------------------------------------- *)

let forward_impl ?trace idx query =
  let plan =
    Plan.compile ~enc:(Index.encoding idx) ~ty:(Index.attr_ty idx) query
  in
  plan_span trace plan;
  let tree = Index.tree idx in
  with_read_count tree (fun () ->
      match Plan.bracket plan with
      | None -> ([], 0)
      | Some (lo, hi) ->
          let seg = seg_make trace (Pager.stats (Btree.pager tree)) in
          with_scanner tree (Btree.raw_read tree) @@ fun sc ->
          let below_hi key =
            match hi with
            | Some h -> String.compare key h < 0
            | None -> true
          in
          (* the forward algorithm never skips; it scans on, but it must
             still deduplicate partial-path matches: a binding is emitted
             only when it differs from the previous one *)
          let rec go acc n prev = function
            | Some (e : Btree.entry) when below_hi e.key -> (
                match Plan.classify plan e.key with
                | Plan.Accept { d; arity; _ } ->
                    seg_entry seg ~accepted:true;
                    let b = binding_of d arity in
                    let acc = if Some b = prev then acc else b :: acc in
                    go acc (n + 1) (Some b) (Btree.Scanner.next sc)
                | Plan.Reject _ ->
                    seg_entry seg ~accepted:false;
                    go acc (n + 1) prev (Btree.Scanner.next sc))
            | Some _ | None -> (acc, n)
          in
          seg_open seg "descent";
          let first = Btree.Scanner.seek sc lo in
          seg_open seg "scan";
          let r = go [] 0 None first in
          seg_close seg;
          merge_span trace r)

let parallel_impl ?trace idx query =
  let plan =
    Plan.compile ~enc:(Index.encoding idx) ~ty:(Index.attr_ty idx) query
  in
  plan_span trace plan;
  let tree = Index.tree idx in
  with_read_count tree (fun () ->
      let seg = seg_make trace (Pager.stats (Btree.pager tree)) in
      let cache = Btree.cached_read tree in
      let read = Pager.Cache.read cache in
      with_scanner tree read @@ fun sc ->
      let upper = Plan.upper plan in
      let below_hi key =
        match upper with
        | Some h -> String.compare key h < 0
        | None -> true
      in
      let rec go acc n cur =
        match cur with
        | Some (e : Btree.entry) when below_hi e.key -> (
            let continue acc n = function
              | Plan.Seek k ->
                  (* skip targets are always strictly beyond [e.key] *)
                  seg_open seg "descent";
                  go acc n (Btree.Scanner.seek sc k)
              | Plan.Advance -> go acc n (Btree.Scanner.next sc)
              | Plan.Stop -> (acc, n)
            in
            match Plan.classify plan e.key with
            | Plan.Accept { d; arity; next } ->
                seg_entry seg ~accepted:true;
                continue (binding_of d arity :: acc) (n + 1) next
            | Plan.Reject next ->
                seg_entry seg ~accepted:false;
                continue acc (n + 1) next)
        | Some _ | None -> (acc, n)
      in
      match Plan.lower plan with
      | None -> ([], 0)
      | Some lo ->
          seg_open seg "descent";
          let r = go [] 0 (Btree.Scanner.seek sc lo) in
          seg_close seg;
          merge_span trace r)

let algo_name = function `Forward -> "forward" | `Parallel -> "parallel"

let impl = function `Forward -> forward_impl | `Parallel -> parallel_impl

let m_queries =
  Obs.Metrics.counter ~subsystem:"exec" ~help:"queries executed" "queries"

let h_page_reads =
  Obs.Metrics.histogram ~subsystem:"exec" ~help:"page reads per query"
    "page_reads"

let h_entries =
  Obs.Metrics.histogram ~subsystem:"exec" ~help:"entries scanned per query"
    "entries_scanned"

let h_alloc =
  Obs.Metrics.histogram ~subsystem:"exec"
    ~help:"minor-heap words allocated per query" "alloc_per_query"

let record (o : outcome) =
  Obs.Metrics.incr m_queries;
  Obs.Metrics.observe h_page_reads o.page_reads;
  Obs.Metrics.observe h_entries o.entries_scanned;
  o

(* The allocation regression guard (ROADMAP item 5): every query records
   its Gc.minor_words delta.  Reading the minor allocation pointer is a
   few instructions, so this rides on the hot path; the histogram
   observation itself happens after the second sample. *)
let with_alloc_accounting f =
  let w0 = Gc.minor_words () in
  let o = f () in
  Obs.Metrics.observe h_alloc (int_of_float (Gc.minor_words () -. w0));
  o

let finish_root sp (o : outcome) =
  Trace.add_field sp "bindings" (List.length o.bindings);
  Trace.add_field sp "entries_scanned" o.entries_scanned

(* Public entry points trace into the global sink when one is installed
   (see Obs.Trace.with_collector); with the default null sink they run
   the bare algorithms. *)
let run ~algo idx query =
  with_alloc_accounting @@ fun () ->
  match Trace.scope () with
  | None -> record (impl algo idx query)
  | Some sink ->
      let sp = Trace.span (algo_name algo) in
      let o = impl algo ~trace:sp idx query in
      finish_root sp o;
      Trace.emit sink sp;
      record o

let forward idx query = run ~algo:`Forward idx query
let parallel idx query = run ~algo:`Parallel idx query

let analyze ~algo idx query =
  with_alloc_accounting @@ fun () ->
  let sp = Trace.span (algo_name algo) in
  let undecodable0 = Plan.undecodable_entries () in
  let o = impl algo ~trace:sp idx query in
  finish_root sp o;
  (if o.pool_hits > 0 then Trace.add_field sp "pool_hits_total" o.pool_hits);
  let undecodable = Plan.undecodable_entries () - undecodable0 in
  if undecodable > 0 then Trace.add_field sp "undecodable_entries" undecodable;
  (record o, sp)

let explain idx query =
  let plan =
    Plan.compile ~enc:(Index.encoding idx) ~ty:(Index.attr_ty idx) query
  in
  match Plan.intervals plan with
  | None -> None
  | Some ivs ->
      let tree = Index.tree idx in
      let stats = Pager.stats (Btree.pager tree) in
      let before = Stats.snapshot stats in
      (* explain must not perturb measurements: read the pager directly
         (never the shared pool, whose LRU state and hit counters a dry
         run must not disturb) and roll the read counter back after *)
      let read = Pager.Cache.read (Pager.Cache.create (Btree.pager tree)) in
      let visits = Btree.trace_intervals tree ~read ivs in
      stats.Stats.reads <- before.Stats.reads;
      Some visits

let pp_explain ppf visits =
  List.iter
    (fun (v : Btree.visit) ->
      Format.fprintf ppf "%s%s page %d%s@."
        (String.make (2 * v.Btree.depth) ' ')
        (if v.Btree.is_leaf then "leaf" else "node")
        v.Btree.page
        (if v.Btree.is_leaf then Printf.sprintf " (%d matching entries)" v.Btree.matched
         else ""))
    visits
