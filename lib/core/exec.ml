module Schema = Oodb_schema.Schema
module Value = Objstore.Value
module Stats = Storage.Stats
module Pager = Storage.Pager

type binding = {
  value : Value.t;
  comps : (Schema.class_id * Value.oid) list;
}

type outcome = {
  bindings : binding list;
  page_reads : int;
  entries_scanned : int;
}

let head_oids o =
  List.filter_map
    (fun b ->
      match List.rev b.comps with (_, oid) :: _ -> Some oid | [] -> None)
    o.bindings
  |> List.sort_uniq compare

let take n l =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n l

let binding_of (d : Ukey.decoded) arity =
  { value = d.value; comps = take arity d.comps }

let with_read_count tree f =
  let stats = Pager.stats (Btree.pager tree) in
  let before = Stats.snapshot stats in
  let bindings, entries = f () in
  let delta = Stats.diff ~before ~after:(Stats.snapshot stats) in
  { bindings = List.rev bindings; page_reads = delta.reads; entries_scanned = entries }

let forward idx query =
  let plan =
    Plan.compile ~enc:(Index.encoding idx) ~ty:(Index.attr_ty idx) query
  in
  let tree = Index.tree idx in
  with_read_count tree (fun () ->
      match Plan.bracket plan with
      | None -> ([], 0)
      | Some (lo, hi) ->
          let sc = Btree.Scanner.create tree ~read:(Btree.raw_read tree) in
          let below_hi key =
            match hi with
            | Some h -> String.compare key h < 0
            | None -> true
          in
          (* the forward algorithm never skips; it scans on, but it must
             still deduplicate partial-path matches: a binding is emitted
             only when it differs from the previous one *)
          let rec go acc n prev = function
            | Some (e : Btree.entry) when below_hi e.key -> (
                match Plan.classify plan e.key with
                | Plan.Accept { d; arity; _ } ->
                    let b = binding_of d arity in
                    let acc = if Some b = prev then acc else b :: acc in
                    go acc (n + 1) (Some b) (Btree.Scanner.next sc)
                | Plan.Reject _ -> go acc (n + 1) prev (Btree.Scanner.next sc))
            | Some _ | None -> (acc, n)
          in
          go [] 0 None (Btree.Scanner.seek sc lo))

let parallel idx query =
  let plan =
    Plan.compile ~enc:(Index.encoding idx) ~ty:(Index.attr_ty idx) query
  in
  let tree = Index.tree idx in
  with_read_count tree (fun () ->
      let cache = Btree.cached_read tree in
      let read = Pager.Cache.read cache in
      let sc = Btree.Scanner.create tree ~read in
      let upper = Plan.upper plan in
      let below_hi key =
        match upper with
        | Some h -> String.compare key h < 0
        | None -> true
      in
      let rec go acc n cur =
        match cur with
        | Some (e : Btree.entry) when below_hi e.key -> (
            let continue acc n = function
              | Plan.Seek k ->
                  (* skip targets are always strictly beyond [e.key] *)
                  go acc n (Btree.Scanner.seek sc k)
              | Plan.Advance -> go acc n (Btree.Scanner.next sc)
              | Plan.Stop -> (acc, n)
            in
            match Plan.classify plan e.key with
            | Plan.Accept { d; arity; next } ->
                continue (binding_of d arity :: acc) (n + 1) next
            | Plan.Reject next -> continue acc (n + 1) next)
        | Some _ | None -> (acc, n)
      in
      match Plan.lower plan with
      | None -> ([], 0)
      | Some lo -> go [] 0 (Btree.Scanner.seek sc lo))

let run ~algo idx query =
  match algo with `Forward -> forward idx query | `Parallel -> parallel idx query

let explain idx query =
  let plan =
    Plan.compile ~enc:(Index.encoding idx) ~ty:(Index.attr_ty idx) query
  in
  match Plan.intervals plan with
  | None -> None
  | Some ivs ->
      let tree = Index.tree idx in
      let stats = Pager.stats (Btree.pager tree) in
      let before = Stats.snapshot stats in
      let read = Pager.Cache.read (Btree.cached_read tree) in
      let visits = Btree.trace_intervals tree ~read ivs in
      (* explain must not perturb measurements *)
      stats.Stats.reads <- before.Stats.reads;
      Some visits

let pp_explain ppf visits =
  List.iter
    (fun (v : Btree.visit) ->
      Format.fprintf ppf "%s%s page %d%s@."
        (String.make (2 * v.Btree.depth) ' ')
        (if v.Btree.is_leaf then "leaf" else "node")
        v.Btree.page
        (if v.Btree.is_leaf then Printf.sprintf " (%d matching entries)" v.Btree.matched
         else ""))
    visits
