(** Query compilation: from {!Query.t} to key-space navigation.

    A compiled plan drives both retrieval algorithms of the paper:

    - {e forward scanning} uses {!bracket}: one contiguous key interval
      from the first to the last possibly-relevant entry;
    - the {e parallel algorithm} (Algorithm 1) repeatedly asks
      {!next_candidate} for the smallest admissible position at or after
      the current key and {!classify} for accept/skip decisions, so the
      executor only ever touches B-tree nodes that can hold relevant
      entries — the paper's dynamically-built search tree over partial
      keys, with the partial-key set expressed as (value spec × code
      intervals) plus per-component skip targets. *)

module Schema := Oodb_schema.Schema
module Encoding := Oodb_schema.Encoding

type t

val compile : enc:Encoding.t -> ty:Schema.attr_type -> Query.t -> t
(** Raises [Invalid_argument] if the query has no components or uses a
    non-indexable value. *)

val query : t -> Query.t

val lower : t -> string option
(** First admissible position; [None] when the plan is empty (e.g. an
    empty range). *)

val upper : t -> string option
(** Exclusive upper bound of all admissible keys; [None] = unbounded. *)

val bracket : t -> (string * string option) option
(** [(lower, upper)] for the naive forward scan. *)

val intervals : t -> (string * string) list option
(** The finite set of admissible key intervals — one per (value, code
    interval) pair — when the value spec is enumerable ([V_eq]/[V_in]);
    [None] for contiguous ranges, whose candidates are generated lazily
    during the scan.  Feeds {!Btree.trace_intervals} for explain
    output. *)

val next_candidate : t -> string -> string option
(** Smallest admissible position [>=] the given byte string.  The result
    is a seek target, not necessarily an existing key.  Admissibility here
    covers the value spec and the first component's code/OID intervals;
    later components are checked by {!classify}. *)

type next =
  | Seek of string  (** jump to this position *)
  | Advance  (** just move to the next entry *)
  | Stop  (** no admissible position remains *)

type verdict =
  | Accept of { d : Ukey.decoded; arity : int; next : next }
      (** [arity] is the number of query components that matched (the
          query may be a proper prefix of the entry — the paper's
          partial-path queries, in which case [next] jumps past the
          remaining entries of the same matched prefix so each binding is
          produced once) *)
  | Reject of next

val classify : t -> string -> verdict
(** Full match check of an entry key, producing a skip target on
    rejection: failing the value or first component jumps to the next
    admissible group; failing a later component's class skips that class's
    run; failing a slot skips that object's run (the paper's "skip by
    looking the uncompressed part of the key up in the parent",
    Section 3.4).  An entry whose key bytes do not decode at all (e.g. a
    truncated [Int] key) is rejected with [Advance] and counted in the
    [exec.undecodable_entries] metric — corruption is tolerated but never
    silent. *)

val undecodable_entries : unit -> int
(** Current value of the process-wide [exec.undecodable_entries] counter
    (0 when no entry ever failed to decode). *)
