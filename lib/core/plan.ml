module Bu = Storage.Bytes_util
module Schema = Oodb_schema.Schema
module Encoding = Oodb_schema.Encoding
module Value = Objstore.Value

type vspec =
  | Vs_enum of string list  (* sorted encoded values *)
  | Vs_contig of string option * string option  (* encoded incl. bounds *)

(* interval over the component zone (the bytes after the value separator) *)
type cspec = { clo : string; chi : string }

type t = {
  enc : Encoding.t;
  ty : Schema.attr_type;
  q : Query.t;
  vspec : vspec;
  cspecs : cspec list;  (* sorted by [clo], disjoint *)
}

let query t = t.q

(* --- compilation -------------------------------------------------------- *)

let encode_value v =
  match v with
  | Value.Int _ | Value.Str _ -> Value.encode v
  | Value.Null | Value.Ref _ | Value.Ref_set _ ->
      invalid_arg "Plan.compile: query value must be Int or Str"

let compile_vspec = function
  | Query.V_any -> Vs_contig (None, None)
  | Query.V_eq v -> Vs_enum [ encode_value v ]
  | Query.V_in vs ->
      Vs_enum (List.sort_uniq String.compare (List.map encode_value vs))
  | Query.V_range (lo, hi) ->
      Vs_contig (Option.map encode_value lo, Option.map encode_value hi)

let rec pat_intervals enc slot = function
  | Query.P_class c -> (
      let lo, hi = Encoding.exact_interval enc c in
      match slot with
      | Query.S_oid o ->
          let p = lo ^ Bu.encode_u32 o in
          [ { clo = p; chi = Ukey.succ_prefix p } ]
      | Query.S_one_of os ->
          List.map
            (fun o ->
              let p = lo ^ Bu.encode_u32 o in
              { clo = p; chi = Ukey.succ_prefix p })
            os
      | Query.S_any | Query.S_pred _ -> [ { clo = lo; chi = hi } ])
  | Query.P_subtree c ->
      let lo, hi = Encoding.subtree_interval enc c in
      [ { clo = lo; chi = hi } ]
  | Query.P_union ps -> List.concat_map (pat_intervals enc slot) ps

let normalize_cspecs cs =
  let cs =
    List.filter (fun c -> String.compare c.clo c.chi < 0) cs
    |> List.sort (fun a b -> String.compare a.clo b.clo)
  in
  let rec merge = function
    | a :: b :: rest when String.compare b.clo a.chi <= 0 ->
        merge
          ({
             a with
             chi = (if String.compare a.chi b.chi >= 0 then a.chi else b.chi);
           }
          :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge cs

let compile ~enc ~ty (q : Query.t) =
  (match ty with
  | Schema.Int | Schema.String -> ()
  | Schema.Ref _ | Schema.Ref_set _ ->
      invalid_arg "Plan.compile: indexed attribute must be Int or String");
  let comp0 =
    match q.comps with
    | c :: _ -> c
    | [] -> invalid_arg "Plan.compile: query has no components"
  in
  {
    enc;
    ty;
    q;
    vspec = compile_vspec q.value;
    cspecs = normalize_cspecs (pat_intervals enc comp0.slot comp0.pat);
  }

(* --- candidate navigation ------------------------------------------------ *)

let sep_char = '\x01'

type where = Group_start | Group_inside of string | Group_past

(* Locate the byte string [k] relative to the value groups of this plan's
   key space: the value-group floor it belongs to and where inside the
   group it sits. *)
let split_floor t k =
  match t.ty with
  | Schema.Int ->
      if String.length k < 8 then
        (k ^ String.make (8 - String.length k) '\x00', Group_start)
      else
        let vb = String.sub k 0 8 in
        if String.length k = 8 then (vb, Group_start)
        else if k.[8] < sep_char then (vb, Group_start)
        else if k.[8] = sep_char then
          (vb, Group_inside (String.sub k 9 (String.length k - 9)))
        else (vb, Group_past)
  | Schema.String -> (
      match String.index_opt k sep_char with
      | Some i ->
          (String.sub k 0 i, Group_inside (String.sub k (i + 1) (String.length k - i - 1)))
      | None -> (k, Group_start))
  | Schema.Ref _ | Schema.Ref_set _ -> assert false

(* Least value-group floor strictly above [vb].  For ints this is [vb + 1];
   for text values no encodable value lies strictly between [vb] and
   [vb ^ "\x08"] (text bytes are >= 0x08). *)
let value_above t vb =
  match t.ty with
  | Schema.Int ->
      let x = Bu.decode_int vb 0 in
      if x = max_int then None else Some (Bu.encode_int (x + 1))
  | Schema.String -> Some (vb ^ "\x08")
  | Schema.Ref _ | Schema.Ref_set _ -> assert false

(* smallest admissible encoded value >= floor (or > floor when [strict]) *)
let next_value t ~strict floor =
  match t.vspec with
  | Vs_enum vs ->
      List.find_opt
        (fun v ->
          let c = String.compare v floor in
          if strict then c > 0 else c >= 0)
        vs
  | Vs_contig (lo, hi) -> (
      let floor = if strict then value_above t floor else Some floor in
      match floor with
      | None -> None
      | Some floor ->
          let v =
            match lo with
            | Some l when String.compare floor l < 0 -> l
            | Some _ | None -> floor
          in
          (match hi with
          | Some h when String.compare v h > 0 -> None
          | Some _ | None -> Some v))

(* smallest admissible component-zone position >= [r] within one value
   group; [r = None] means the group start *)
let next_in_group t r =
  match t.cspecs with
  | [] -> None
  | first :: _ -> (
      match r with
      | None -> Some first.clo
      | Some r ->
          List.find_map
            (fun c ->
              if String.compare r c.clo <= 0 then Some c.clo
              else if String.compare r c.chi < 0 then Some r
              else None)
            t.cspecs)

let rec candidate_from t vb where =
  let strict = where = Group_past in
  match next_value t ~strict vb with
  | None -> None
  | Some v -> (
      let rem =
        match where with
        | Group_inside r when v = vb -> Some r
        | Group_inside _ | Group_start | Group_past -> None
      in
      match next_in_group t rem with
      | Some pos -> Some (v ^ "\x01" ^ pos)
      | None -> candidate_from t v Group_past)

let next_candidate t k =
  let vb, where = split_floor t k in
  candidate_from t vb where

let lower t = next_candidate t ""

let last_chi t =
  match List.rev t.cspecs with c :: _ -> Some c.chi | [] -> None

let upper t =
  match last_chi t with
  | None -> Some "" (* no admissible component zone: empty bracket *)
  | Some chi -> (
      match t.vspec with
      | Vs_enum [] -> Some ""
      | Vs_enum vs ->
          let last = List.fold_left (fun _ v -> v) "" vs in
          Some (last ^ "\x01" ^ chi)
      | Vs_contig (_, Some hi) -> Some (hi ^ "\x01" ^ chi)
      | Vs_contig (_, None) -> None)

let bracket t =
  match lower t with None -> None | Some lo -> Some (lo, upper t)

let intervals t =
  match t.vspec with
  | Vs_contig _ -> None
  | Vs_enum vs ->
      Some
        (List.concat_map
           (fun v ->
             List.map
               (fun c -> (v ^ "\x01" ^ c.clo, v ^ "\x01" ^ c.chi))
               t.cspecs)
           vs)

(* --- classification ------------------------------------------------------ *)

type next = Seek of string | Advance | Stop

type verdict =
  | Accept of { d : Ukey.decoded; arity : int; next : next }
  | Reject of next

(* Entries whose key bytes fail to decode are rejected-with-advance so a
   scan survives them, but silence would mask corruption (a truncated Int
   key, an unknown class code): count every swallowed reject where
   stats/EXPLAIN can see it. *)
let m_undecodable =
  Obs.Metrics.counter ~subsystem:"exec"
    ~help:"index entries whose keys failed to decode during classify"
    "undecodable_entries"

let undecodable_entries () =
  Option.value ~default:0 (Obs.Metrics.find Obs.Metrics.default "exec.undecodable_entries")

let seek_or_stop = function Some k -> Seek k | None -> Stop

let skip_from t prefix =
  match Ukey.succ_prefix prefix with
  | s -> seek_or_stop (next_candidate t s)
  | exception Invalid_argument _ -> Stop

let classify t key =
  match Ukey.decode ~enc:t.enc ~ty:t.ty key with
  | exception Invalid_argument _ ->
      Obs.Metrics.incr m_undecodable;
      Reject Advance
  | d ->
      if not (Query.value_matches t.q.value d.value) then
        Reject (seek_or_stop (next_candidate t key))
      else begin
        let schema = Encoding.schema t.enc in
        let rec check i qcomps dcomps offs =
          match (qcomps, dcomps, offs) with
          | [], [], [] -> Accept { d; arity = i; next = Advance }
          | [], _ :: _, (_, _, _) :: _ ->
              (* partial-path query (paper's query 4): the query matched a
                 proper prefix of the entry; skip the rest of this prefix
                 group so each binding is produced once *)
              let _, _, last_end = List.nth d.comp_offsets (i - 1) in
              Accept
                { d; arity = i; next = skip_from t (String.sub key 0 last_end) }
          | qc :: qrest, (cls, oid) :: drest, (_, oid_start, cend) :: orest ->
              let open Query in
              if not (pat_matches schema qc.pat cls) then
                if i = 0 then Reject (seek_or_stop (next_candidate t key))
                else Reject (skip_from t (String.sub key 0 oid_start))
              else if not (slot_matches qc.slot oid) then
                Reject (skip_from t (String.sub key 0 cend))
              else check (i + 1) qrest drest orest
          | _ :: _, [], _ | _, _ :: _, [] | _, [], _ :: _ ->
              (* the entry has fewer components than the query asks for *)
              Reject Advance
        in
        check 0 t.q.comps d.comps d.comp_offsets
      end
