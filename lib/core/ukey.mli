(** Composite-key encoding of U-index entries (Section 3.2).

    An entry key is

    {v value-bytes 0x01 component ... component v}

    where each component is [serialized-code 0x01 oid(4 bytes)] and the
    components appear in ascending code order (for a REF path that is
    target first, head last — the paper's [(Age,50) C1$e1 C2$c1 C5$v...]
    layout).  The class-hierarchy index is the one-component case.

    Because codes sort in schema pre-order, this makes every value group,
    every class-subtree run within a group, and every shared path prefix a
    contiguous key range, and the B-tree's front compression absorbs the
    repetition. *)

module Schema := Oodb_schema.Schema
module Code := Oodb_schema.Code
module Encoding := Oodb_schema.Encoding

val sep : string
(** The [0x01] separator after the value bytes. *)

val component : Code.t -> Objstore.Value.oid -> string

val entry_key : value:Objstore.Value.t -> (Code.t * Objstore.Value.oid) list -> string
(** Components must already be in ascending code order; raises
    [Invalid_argument] otherwise. *)

val value_prefix : Objstore.Value.t -> string
(** [value-bytes 0x01]: the common prefix of every entry for this
    value. *)

type decoded = {
  value : Objstore.Value.t;
  comps : (Schema.class_id * Objstore.Value.oid) list;
  comp_offsets : (int * int * int) list;
      (** per component: (start of code, start of oid, end) byte offsets
          into the key — used to build skip targets *)
}

val decode : enc:Encoding.t -> ty:Schema.attr_type -> string -> decoded
(** Raises [Invalid_argument] on malformed keys or unknown codes. *)

val succ_prefix : string -> string
(** The smallest key greater than every key that starts with the given
    prefix (byte-string increment with carry).  Raises [Invalid_argument]
    on a prefix of all [0xff] bytes. *)
