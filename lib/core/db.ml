module Store = Objstore.Store
module Value = Objstore.Value

let src = Logs.Src.create "uindex.db" ~doc:"U-index database façade"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  store : Store.t;
  mutable indexes : Index.t list;
  mutable cache_pages : int;  (* 0 = uncached, the paper's accounting *)
  writer : Mutex.t;
      (* serializes every mutation (and session pinning, so a session
         never pins a half-applied commit) *)
  gc : Storage.Group_commit.t;
      (* batches concurrent commit requests into shared flushes; lock
         order is writer -> gc's internal mutex, never the reverse *)
}

let with_writer t f =
  Mutex.lock t.writer;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) f

let create ?(cache_pages = 0) store =
  if cache_pages < 0 then invalid_arg "Db.create: negative cache_pages";
  (* the coordinator's flush function closes over the db record we are
     about to build; break the cycle with a forward cell *)
  let cell = ref None in
  let flush () =
    match !cell with
    | None -> assert false
    | Some t ->
        with_writer t @@ fun () ->
        (* sample the target after taking the writer lock: every
           transaction submitted by then is fully applied, so the
           flushed image is always a whole-transaction prefix *)
        let target = Storage.Group_commit.submitted t.gc in
        List.iter Index.sync t.indexes;
        target
  in
  let t =
    {
      store;
      indexes = [];
      cache_pages;
      writer = Mutex.create ();
      gc = Storage.Group_commit.create ~flush ();
    }
  in
  cell := Some t;
  t

let store t = t.store
let indexes t = t.indexes
let cache_pages t = t.cache_pages

let set_cache_pages t n =
  if n < 0 then invalid_arg "Db.set_cache_pages: negative capacity";
  with_writer t @@ fun () ->
  t.cache_pages <- n;
  List.iter (fun idx -> Index.set_cache_pages idx n) t.indexes

let register ?(build = true) t idx =
  (* pools are per-pager: each index gets its own, sized by the db-wide
     knob, unless the caller attached one already *)
  if t.cache_pages > 0 && Index.pool idx = None then
    Index.set_cache_pages idx t.cache_pages;
  if build then Index.build idx t.store;
  Log.debug (fun m ->
      m "registered index (%d entries)" (Index.entry_count idx));
  t.indexes <- t.indexes @ [ idx ]

let add_index t idx = with_writer t (fun () -> register t idx)

let attach_index t idx =
  (* the index already holds its entries (e.g. it was re-opened from a
     page file): register it without rebuilding *)
  with_writer t (fun () -> register ~build:false t idx)

let remove_index t idx =
  with_writer t @@ fun () ->
  t.indexes <- List.filter (fun i -> i != idx) t.indexes

(* Objects whose index entries can change when [oid]'s attributes change:
   [oid] itself is enough, because every entry involving [oid] contains it
   as a component and [Index.entry_keys] enumerates chains through every
   position. *)
let reindex_around t f oid =
  let old_keys = List.map (fun idx -> Index.entry_keys idx t.store oid) t.indexes in
  f ();
  List.iter2
    (fun idx old ->
      let now = Index.entry_keys idx t.store oid in
      let stale = List.filter (fun k -> not (List.mem k now)) old in
      let fresh = List.filter (fun k -> not (List.mem k old)) now in
      Log.debug (fun m ->
          m "reindex oid %d: -%d +%d entries" oid (List.length stale)
            (List.length fresh));
      List.iter (fun k -> ignore (Btree.delete (Index.tree idx) k)) stale;
      (* clustered fresh entries merge in one batched pass (Section 3.5) *)
      Btree.insert_batch (Index.tree idx) (List.map (fun k -> (k, "")) fresh))
    t.indexes old_keys

let insert t ~cls attrs =
  with_writer t @@ fun () ->
  let oid = Store.insert t.store ~cls attrs in
  List.iter (fun idx -> Index.index_object idx t.store oid) t.indexes;
  oid

let delete t oid =
  with_writer t @@ fun () ->
  List.iter (fun idx -> Index.deindex_object idx t.store oid) t.indexes;
  Store.delete t.store oid

let set_attr t oid attr v =
  with_writer t @@ fun () ->
  reindex_around t (fun () -> Store.set_attr t.store oid attr v) oid

let query ?(algo = `Parallel) _t idx q = Exec.run ~algo idx q

(* --- commits and the durability watermark -------------------------------- *)

let commit ?(mode = `Sync) t =
  (* the LSN is taken under the writer lock so "submitted" always means
     "fully applied": any flush sampling the watermark afterwards
     includes this transaction as a whole or not at all *)
  let lsn = with_writer t (fun () -> Storage.Group_commit.submit t.gc) in
  (match mode with
  | `Sync -> Storage.Group_commit.wait_durable t.gc lsn
  | `Async -> ());
  lsn

let durable_lsn t = Storage.Group_commit.durable_lsn t.gc
let acked_lsn t = Storage.Group_commit.submitted t.gc
let wait_durable t lsn = Storage.Group_commit.wait_durable t.gc lsn
let set_group_window t w = Storage.Group_commit.set_window t.gc w
let sync t = ignore (commit t)

(* --- snapshot sessions ---------------------------------------------------- *)

type session = {
  views : (Index.t * Index.t) list;  (* (live index, pinned view) *)
  mutable open_ : bool;
}

(* Process-wide count of pinned sessions, mirrored into a gauge so the
   server's Health response can report it without holding a Db handle
   per registry entry. *)
let session_count = Atomic.make 0

let g_sessions =
  Obs.Metrics.gauge ~subsystem:"db"
    ~help:"snapshot sessions currently pinned" "active_sessions"

let active_sessions () = Atomic.get session_count

let open_session t =
  (* pin under the writer lock: all views see the same committed cut,
     never a half-applied mutation *)
  with_writer t @@ fun () ->
  let views = ref [] in
  (try
     List.iter
       (fun idx -> views := (idx, Index.snapshot_view idx) :: !views)
       t.indexes
   with e ->
     List.iter (fun (_, v) -> Index.release_view v) !views;
     raise e);
  Obs.Metrics.set g_sessions (Atomic.fetch_and_add session_count 1 + 1);
  { views = List.rev !views; open_ = true }

let close_session s =
  if s.open_ then begin
    s.open_ <- false;
    Obs.Metrics.set g_sessions (Atomic.fetch_and_add session_count (-1) - 1);
    List.iter (fun (_, v) -> Index.release_view v) s.views
  end

let with_session t f =
  let s = open_session t in
  Fun.protect ~finally:(fun () -> close_session s) (fun () -> f s)

let session_view s idx =
  if not s.open_ then invalid_arg "Db.session_view: session is closed";
  match List.assq_opt idx s.views with
  | Some v -> v
  | None ->
      if List.exists (fun (_, v) -> v == idx) s.views then idx
      else
        invalid_arg
          "Db.session_view: index was not registered when the session opened"

let session_indexes s = List.map snd s.views

let session_query ?(algo = `Parallel) s idx q =
  Exec.run ~algo (session_view s idx) q

let check t =
  List.iter
    (fun idx ->
      Btree.check (Index.tree idx);
      (* the live entry set must equal a fresh rebuild *)
      let live = ref [] in
      Btree.iter (Index.tree idx) (fun e -> live := e.key :: !live);
      let expected = ref [] in
      Store.iter t.store (fun o ->
          expected := Index.entry_keys idx t.store o.oid @ !expected);
      let live = List.sort_uniq String.compare !live
      and expected = List.sort_uniq String.compare !expected in
      if live <> expected then
        failwith
          (Printf.sprintf
             "Db.check: index out of sync (%d live entries, %d expected)"
             (List.length live) (List.length expected)))
    t.indexes
