module Schema = Oodb_schema.Schema
module Code = Oodb_schema.Code
module Encoding = Oodb_schema.Encoding
module Stats = Storage.Stats
module Pager = Storage.Pager

(* entry tags: each relation gets its own key region, and within a region
   keys are serialized codes, so code clustering applies *)
let tag_class = "\x10"
let tag_sup = "\x11" (* child -> parent *)
let tag_ref_from = "\x12" (* source -> (attr, target) *)
let tag_ref_to = "\x13" (* target -> (attr, source) *)

type t = { tree : Btree.t; enc : Encoding.t }

let create ?config pager enc = { tree = Btree.create ?config pager; enc }

let ser t cls = Code.serialize (Encoding.code t.enc cls)

let sep = "\x01"

let class_key t cls = tag_class ^ ser t cls

let sup_key t cls parent = tag_sup ^ ser t cls ^ sep ^ ser t parent

let ref_from_key t src attr dst =
  tag_ref_from ^ ser t src ^ sep ^ attr ^ sep ^ ser t dst

let ref_to_key t dst attr src =
  tag_ref_to ^ ser t dst ^ sep ^ attr ^ sep ^ ser t src

let index_class t cls =
  let schema = Encoding.schema t.enc in
  let add key = Btree.insert t.tree ~key ~value:"" in
  add (class_key t cls);
  (match Schema.parent schema cls with
  | Some p -> add (sup_key t cls p)
  | None -> ());
  List.iter
    (fun (attr, ty) ->
      match ty with
      | Schema.Ref dst | Schema.Ref_set dst ->
          add (ref_from_key t cls attr dst);
          add (ref_to_key t dst attr cls)
      | Schema.Int | Schema.String -> ())
    (Schema.own_attrs schema cls)

let build t =
  let schema = Encoding.schema t.enc in
  List.iter (fun cls -> index_class t cls) (Schema.all_classes schema)

let note_class_added = index_class

let with_reads t f =
  let stats = Pager.stats (Btree.pager t.tree) in
  let before = Stats.snapshot stats in
  let r = f () in
  (r, (Stats.diff ~before ~after:(Stats.snapshot stats)).Stats.reads)

(* scan all keys with the given prefix, reporting their suffixes *)
let scan_prefix t prefix =
  let out = ref [] in
  Btree.scan_range t.tree ~read:(Btree.raw_read t.tree) ~lo:prefix
    ~hi:(Storage.Bytes_util.succ_prefix prefix) (fun e ->
      out :=
        String.sub e.Btree.key (String.length prefix)
          (String.length e.Btree.key - String.length prefix)
        :: !out);
  List.rev !out

let class_of_ser_exn t s =
  match Encoding.class_of_serialized t.enc s with
  | Some c -> c
  | None -> failwith "Schema_index: unknown code in index entry"

let subtree t cls =
  with_reads t (fun () ->
      let lo, hi = Encoding.subtree_interval t.enc cls in
      let out = ref [] in
      Btree.scan_range t.tree ~read:(Btree.raw_read t.tree) ~lo:(tag_class ^ lo)
        ~hi:(tag_class ^ hi) (fun e ->
          let ser = String.sub e.Btree.key 1 (String.length e.Btree.key - 1) in
          out := class_of_ser_exn t ser :: !out);
      List.rev !out)

let children t cls =
  let depth = Code.depth (Encoding.code t.enc cls) in
  let all, reads = subtree t cls in
  ( List.filter
      (fun c -> Code.depth (Encoding.code t.enc c) = depth + 1)
      all,
    reads )

let parent t cls =
  with_reads t (fun () ->
      match scan_prefix t (tag_sup ^ ser t cls ^ sep) with
      | [ p ] -> Some (class_of_ser_exn t p)
      | [] -> None
      | _ -> failwith "Schema_index: multiple SUP parents")

let split_attr_code suffix =
  match String.index_opt suffix '\x01' with
  | Some i ->
      ( String.sub suffix 0 i,
        String.sub suffix (i + 1) (String.length suffix - i - 1) )
  | None -> failwith "Schema_index: malformed REF entry"

let refs_from t cls =
  with_reads t (fun () ->
      scan_prefix t (tag_ref_from ^ ser t cls ^ sep)
      |> List.map (fun suffix ->
             let attr, code = split_attr_code suffix in
             (attr, class_of_ser_exn t code)))

let refs_to t cls =
  with_reads t (fun () ->
      scan_prefix t (tag_ref_to ^ ser t cls ^ sep)
      |> List.map (fun suffix ->
             let attr, code = split_attr_code suffix in
             (attr, class_of_ser_exn t code)))

let entry_count t = Btree.length t.tree
