(** The textual query format of Section 3.4.

    The paper writes queries as
    [(attr-value, class-code1, val1, class-code2, val2, ...)], with Unix-
    style shorthands: [*] on a class for its whole subtree, [\[..|..\]]
    for alternation, [\[lo-hi\]] for value ranges, [?] for a value to be
    found.  This module parses that format — using class {e names} rather
    than raw codes — into {!Query.t}:

    {v
    (Red, Bus* ?)                                exact value, subtree
    (50, Employee*, Company* @12, Vehicle* ?)    path with a bound OID slot
    ([Blue-Red], [Automobile* | Truck] ?)        range + alternation
    ({Red, Blue}, Vehicle* ?)                    value enumeration
    ( *, JapaneseAutoCompany* ? )                any value (star = wildcard)
    v}

    Grammar (whitespace-insensitive):

    {v
    query   ::= '(' value (',' comp)* ')'
    value   ::= '*' | scalar | '[' scalar '-' scalar ']'
              | '[' scalar '-' ']' | '[' '-' scalar ']'
              | '{' scalar (',' scalar)* '}'
    scalar  ::= integer | word | '"' chars '"'
    comp    ::= pat slot?
    pat     ::= NAME '*'? | '[' pat ('|' pat)* ']'
    slot    ::= '?' | '_' | '@' integer | '@' '{' integer (',' integer)* '}'
    v} *)

exception Parse_error of string
(** Carries a human-readable message with the offending position. *)

val parse : Oodb_schema.Schema.t -> string -> Query.t
(** Raises {!Parse_error} on malformed input or unknown class names. *)

val to_syntax : Oodb_schema.Schema.t -> Query.t -> string
(** Prints a query back into the parsable format.  [S_pred] slots — which
    have no textual form — print as ['?'].  For queries without [S_pred],
    [parse schema (to_syntax schema q)] reproduces [q]. *)
