module Bu = Storage.Bytes_util
module Schema = Oodb_schema.Schema
module Code = Oodb_schema.Code
module Encoding = Oodb_schema.Encoding
module Value = Objstore.Value
module Store = Objstore.Store
module Stats = Storage.Stats
module Pager = Storage.Pager

type t = {
  tree : Btree.t;
  enc : Encoding.t;
  root : Schema.class_id;
  attr : string;
  ty : Schema.attr_type;
}

let tree t = t.tree

let create ?config pager enc ~root ~attr =
  let schema = Encoding.schema enc in
  let ty =
    match Schema.attr_type_exn schema root attr with
    | (Schema.Int | Schema.String) as ty -> ty
    | Schema.Ref _ | Schema.Ref_set _ ->
        invalid_arg "Grouped.create: attribute must be Int or String"
  in
  { tree = Btree.create ?config pager; enc; root; attr; ty }

(* the key ends with the component terminator (and no OID), so it falls
   inside the same exact/subtree intervals as single-value entries *)
let key_of t value cls =
  Value.encode value ^ "\x01"
  ^ Code.serialize (Encoding.code t.enc cls)
  ^ Code.component_end

let encode_oids oids =
  String.concat "" (List.map Bu.encode_u32 oids)

let decode_oids blob =
  List.init (String.length blob / 4) (fun i -> Bu.decode_u32 blob (4 * i))

let update t key f =
  let oids =
    match Btree.find t.tree key with
    | Some blob -> decode_oids blob
    | None -> []
  in
  match f oids with
  | [] -> ignore (Btree.delete t.tree key)
  | oids -> Btree.insert t.tree ~key ~value:(encode_oids oids)

let insert t ~value ~cls oid = update t (key_of t value cls) (fun os -> os @ [ oid ])

let remove t ~value ~cls oid =
  update t (key_of t value cls) (fun os ->
      let rec drop = function
        | o :: rest when o = oid -> rest
        | o :: rest -> o :: drop rest
        | [] -> []
      in
      drop os)

let build t store =
  (* group the extent's entries, then one batched load *)
  let groups = Hashtbl.create 256 in
  List.iter
    (fun oid ->
      match Store.attr store oid t.attr with
      | (Value.Int _ | Value.Str _) as v ->
          let key = key_of t v (Store.class_of store oid) in
          let r =
            match Hashtbl.find_opt groups key with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add groups key r;
                r
          in
          r := oid :: !r
      | Value.Null | Value.Ref _ | Value.Ref_set _ -> ())
    (Store.extent store ~deep:true t.root);
  Btree.insert_batch t.tree
    (Hashtbl.fold
       (fun key r acc -> (key, encode_oids (List.rev !r)) :: acc)
       groups [])

(* --- queries -------------------------------------------------------------- *)

(* the value bytes may themselves contain 0x01 (e.g. [encode_int 1]), so
   the separator position must come from the typed value decoder *)
let split_key t key =
  match Value.decode ~ty:t.ty key 0 with
  | exception Invalid_argument _ -> None
  | v, stop ->
      let n = String.length key in
      if stop >= n || key.[stop] <> '\x01' || key.[n - 1] <> '\x01' then None
      else
        Option.map
          (fun cls -> (v, cls))
          (Encoding.class_of_serialized t.enc
             (String.sub key (stop + 1) (n - stop - 2)))

let query t (q : Query.t) =
  let comp =
    match q.comps with
    | [ c ] -> c
    | _ -> invalid_arg "Grouped.query: single-component queries only"
  in
  let schema = Encoding.schema t.enc in
  let stats = Pager.stats (Btree.pager t.tree) in
  let before = Stats.snapshot stats in
  let out = ref [] in
  let consider (e : Btree.entry) =
    match split_key t e.key with
    | Some (v, cls)
      when Query.pat_matches schema comp.pat cls
           && Query.value_matches q.value v ->
        List.iter
          (fun oid ->
            if Query.slot_matches comp.slot oid then out := (cls, oid) :: !out)
          (decode_oids (e.value ()))
    | Some _ | None -> ()
  in
  let plan = Plan.compile ~enc:t.enc ~ty:t.ty q in
  (match Plan.intervals plan with
  | Some ivs ->
      Btree.scan_intervals t.tree ~read:(Btree.raw_read t.tree) ivs consider
  | None -> (
      match Plan.bracket plan with
      | None -> ()
      | Some (lo, hi) ->
          let hi = match hi with Some h -> h | None -> "\xff\xff\xff\xff\xff\xff\xff\xff\xff" in
          Btree.scan_range t.tree ~read:(Btree.raw_read t.tree) ~lo ~hi consider));
  let reads = (Stats.diff ~before ~after:(Stats.snapshot stats)).Stats.reads in
  (List.rev !out, reads)

let entry_count t =
  let n = ref 0 in
  Btree.iter t.tree (fun e -> n := !n + (String.length (e.value ()) / 4));
  !n
