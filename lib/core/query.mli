(** The query language of Section 3.4.

    A query has the paper's general format

    {v (attr-value, class-code_1, val_1, class-code_2, val_2, ...) v}

    where the attribute value may be exact, a range or an enumeration, the
    class codes may be exact classes, whole subtrees (["C5A*"]) or unions,
    and each path slot may be free, bound to an OID, or a predicate.
    Components are listed in ascending code order, i.e. path-target first,
    exactly as they appear inside index keys; a class-hierarchy query has
    one component. *)

module Schema := Oodb_schema.Schema
module Value := Objstore.Value

type value_pred =
  | V_any
  | V_eq of Value.t
  | V_in of Value.t list
  | V_range of Value.t option * Value.t option
      (** inclusive bounds; [None] = unbounded *)

type class_pat =
  | P_class of Schema.class_id  (** exactly this class *)
  | P_subtree of Schema.class_id  (** the class and its descendants *)
  | P_union of class_pat list

type slot =
  | S_any
  | S_oid of Value.oid
  | S_one_of of Value.oid list
  | S_pred of (Value.oid -> bool)
      (** arbitrary restriction, e.g. the result of a prior select
          (Section 3.3, path query 3) *)

type comp = { pat : class_pat; slot : slot }

type t = { value : value_pred; comps : comp list }

val comp : ?slot:slot -> class_pat -> comp
(** [slot] defaults to [S_any]. *)

val subtree_minus :
  Schema.t -> Schema.class_id -> except:Schema.class_id list -> class_pat
(** The subtree of a class with some sub-subtrees carved out — the
    paper's query 4, "vehicles which are not compact automobiles".
    Produces the smallest pattern: whole surviving subtrees stay
    [P_subtree], classes on the boundary become [P_class].  Raises
    [Invalid_argument] when nothing remains. *)

val class_hierarchy : value:value_pred -> class_pat -> t
(** A single-component query. *)

val path : value:value_pred -> comp list -> t

val value_matches : value_pred -> Value.t -> bool
val pat_matches : Schema.t -> class_pat -> Schema.class_id -> bool
val slot_matches : slot -> Value.oid -> bool

val pp : Schema.t -> Format.formatter -> t -> unit
