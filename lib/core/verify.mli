(** Offline verification and repair of a persisted U-index.

    {!check} cross-examines every layer of an index below the query
    engine, without assuming any of them is intact:

    + {e page reachability}: every page of the pager must be exactly one
      of header, free, B-tree node, or overflow chunk — the tree is
      walked from its root, claiming pages, and leaked, doubly-claimed,
      or free-but-referenced pages are reported;
    + {e structural invariants}: {!Btree.check} (key order, separator
      bounds, uniform depth, the leaf chain);
    + {e entry validation}: every entry key must decode
      ({!Ukey.decode}), and its COD chain must match a registered path
      of the index;
    + {e store cross-reference} (when the object store is supplied):
      every component must name a live object of the recorded class,
      and the whole entry set must equal a fresh rebuild from the store
      — the U-index is a pure function of store and schema (Section 3),
      which is also what makes {!salvage} possible.

    Every detector failure — including {!Storage_error.Corruption}
    raised by the pager's per-page checksums — is caught and recorded as
    an {!issue}; [check] itself does not raise on damaged input. *)

module Store := Objstore.Store

type issue = { component : string; page : int option; detail : string }
(** One detected problem.  [component] names the detector or the
    subsystem that raised (["verify.reachability"], ["verify.entry"],
    ["verify.store"], ["pager.page"], ["btree.node"], ...). *)

type report = {
  ok : bool;  (** no issues found *)
  checksums : bool;  (** the pager verifies per-page checksums *)
  pages : int;  (** allocation high-water mark *)
  node_pages : int;
  overflow_pages : int;
  free_pages : int;
  entries : int;  (** entries seen while scanning (0 when unreadable) *)
  issues : issue list;  (** at most 1000 retained; [ok] reflects all *)
}

val check : ?throttle:(int -> unit) -> ?store:Store.t -> Index.t -> report
(** Run all verification passes.  [?store] enables the store
    cross-reference pass.  [?throttle] is called with each page id just
    before the reachability walk reads it — the online scrub sleeps
    inside it to spread verification IO out over time, and it doubles
    as a page-visit observer. *)

val salvage :
  ?config:Btree.config ->
  ?pool:Storage.Buffer_pool.t ->
  Index.t ->
  Store.t ->
  Storage.Pager.t ->
  Index.t
(** [salvage idx store pager] rebuilds the index from scratch on
    [pager] (fresh, typically a new file): an empty index with [idx]'s
    description ({!Index.recreate}) is {!Index.build}t from the
    surviving object store and synced.  The damaged index's pages are
    never read — only its in-memory description is used — so salvage
    succeeds regardless of how badly the old pages are corrupted. *)

val to_json : report -> Obs.Json.t
(** Machine-readable form of the report ([uindex-cli check --json]). *)

val pp : Format.formatter -> report -> unit
