(** Query execution: the two retrieval algorithms of the paper.

    {!forward} is the baseline of Section 3.3: one B-tree descent to the
    first possibly-relevant entry, then a sequential leaf scan to the last
    one, filtering as it goes.  Every page in between is read.

    {!parallel} is Algorithm 1 ("parallel scanning of the index"): it
    follows the plan's candidate positions, seeking across irrelevant runs
    instead of scanning them, and it serves repeated page visits from a
    per-query cache — the paper's "utilize any page which is already in
    memory".  Page reads therefore count {e distinct} pages only. *)

module Schema := Oodb_schema.Schema

type binding = {
  value : Objstore.Value.t;
  comps : (Schema.class_id * Objstore.Value.oid) list;
      (** matched components in ascending code order (path target first);
          truncated to the query's arity for partial-path queries *)
}

type outcome = {
  bindings : binding list;
  page_reads : int;
      (** the paper's "visited nodes" / "page reads": pager reads only.
          With a shared buffer pool attached to the index, hits are
          excluded here (they cost no page fetch) and reported in
          [pool_hits]; without a pool the two accountings coincide with
          the paper's exactly. *)
  pool_hits : int;  (** reads served by the shared buffer pool (0 if none) *)
  entries_scanned : int;
}

val head_oids : outcome -> Objstore.Value.oid list
(** The distinct OIDs of the last (head-class) component of each binding —
    e.g. "the vehicles" for a path query rooted at Vehicle. *)

val forward : Index.t -> Query.t -> outcome
val parallel : Index.t -> Query.t -> outcome

val run : algo:[ `Forward | `Parallel ] -> Index.t -> Query.t -> outcome
(** All three entry points emit a span tree to the global tracing sink
    when one is installed (see {!Obs.Trace.with_collector}); with the
    default null sink they run untraced, at the cost of one option match
    per descent segment. *)

val analyze :
  algo:[ `Forward | `Parallel ] -> Index.t -> Query.t -> outcome * Obs.Trace.span
(** EXPLAIN ANALYZE: runs the query and returns its outcome together
    with the span tree of what actually happened — a root span named
    after the algorithm with [bindings]/[entries_scanned] fields, and
    children [plan], one [descent]/[scan] span per B-tree descent
    segment (each carrying its own [page_reads], [entries] and
    [accepted] deltas), and a final [merge].  Only segment spans carry
    [page_reads], so [Obs.Trace.total span "page_reads"] equals
    [outcome.page_reads] exactly — with or without a buffer pool.
    Segments additionally carry [pool_hits] when a pool served reads
    (so [Obs.Trace.total span "pool_hits"] = [outcome.pool_hits]); the
    root records [pool_hits_total] and, when any index entry failed to
    decode during the run, [undecodable_entries].  Render with
    {!Obs.Trace.pp}. *)

val explain : Index.t -> Query.t -> Btree.visit list option
(** The search tree the parallel algorithm builds for an enumerable query
    (the paper's Fig. 3): every B-tree node the pruned descent visits,
    with depth and per-leaf match counts.  [None] when the query's value
    predicate is a contiguous range (candidates are generated lazily and
    no static tree exists).  Reads go through a throwaway cache straight
    to the pager — never the shared pool — and do not disturb the
    pager's statistics or the pool's LRU state. *)

val pp_explain : Format.formatter -> Btree.visit list -> unit
(** Renders the search tree with one line per node, indented by depth. *)
