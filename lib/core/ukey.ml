module Bu = Storage.Bytes_util
module Schema = Oodb_schema.Schema
module Code = Oodb_schema.Code
module Encoding = Oodb_schema.Encoding
module Value = Objstore.Value

let sep = "\x01"

let component code oid = Code.serialize code ^ sep ^ Bu.encode_u32 oid

let value_prefix value = Value.encode value ^ sep

let entry_key ~value comps =
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        Code.compare a b < 0 && sorted rest
    | [ _ ] | [] -> true
  in
  if not (sorted comps) then
    invalid_arg "Ukey.entry_key: components not in ascending code order";
  if comps = [] then invalid_arg "Ukey.entry_key: no components";
  value_prefix value
  ^ String.concat "" (List.map (fun (c, o) -> component c o) comps)

type decoded = {
  value : Value.t;
  comps : (Schema.class_id * Value.oid) list;
  comp_offsets : (int * int * int) list;
}

let decode ~enc ~ty key =
  let n = String.length key in
  let value, stop = Value.decode ~ty key 0 in
  if stop >= n || key.[stop] <> '\x01' then
    invalid_arg "Ukey.decode: missing value separator";
  let rec comps pos acc offs =
    if pos >= n then (List.rev acc, List.rev offs)
    else begin
      (* the serialized code runs to the 0x01 component terminator *)
      let code_end =
        match String.index_from_opt key pos '\x01' with
        | Some i -> i
        | None -> invalid_arg "Ukey.decode: unterminated component code"
      in
      let ser = String.sub key pos (code_end - pos) in
      let cls =
        match Encoding.class_of_serialized enc ser with
        | Some c -> c
        | None ->
            invalid_arg
              (Printf.sprintf "Ukey.decode: unknown class code at offset %d"
                 pos)
      in
      let oid_start = code_end + 1 in
      if oid_start + 4 > n then invalid_arg "Ukey.decode: truncated oid";
      let oid = Bu.decode_u32 key oid_start in
      comps (oid_start + 4)
        ((cls, oid) :: acc)
        ((pos, oid_start, oid_start + 4) :: offs)
    end
  in
  let comps, comp_offsets = comps (stop + 1) [] [] in
  if comps = [] then invalid_arg "Ukey.decode: no components";
  { value; comps; comp_offsets }

let succ_prefix = Bu.succ_prefix
