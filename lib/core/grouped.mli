(** The grouped entry layout of Section 3.2.1.

    Before suggesting single-value entries, the paper describes U-index
    leaf entries as

    {v (attribute-value, Class-name-code)  ->  list of object-ids v}

    i.e. one entry per (value, class) pair carrying that class's OID list.
    The main library ({!Index}) uses the single-value form ("one can use
    only single-value entries ... and rely on the compression mechanism");
    this module implements the grouped form for the class-hierarchy case
    so the two layouts can be compared (ablation A7): grouped entries
    store OIDs more densely but pay read-modify-write maintenance and
    lose per-OID key compression.

    Keys are [value-bytes 0x01 serialized-code], so all the clustering
    properties (value groups, contiguous class subtrees) are identical to
    the single-value layout's. *)

module Schema := Oodb_schema.Schema
module Encoding := Oodb_schema.Encoding

type t

val create :
  ?config:Btree.config ->
  Storage.Pager.t ->
  Encoding.t ->
  root:Schema.class_id ->
  attr:string ->
  t

val tree : t -> Btree.t

val insert : t -> value:Objstore.Value.t -> cls:Schema.class_id -> int -> unit
val remove : t -> value:Objstore.Value.t -> cls:Schema.class_id -> int -> unit

val build : t -> Objstore.Store.t -> unit

val query :
  t -> Query.t -> (Schema.class_id * int) list * int
(** [(results, page_reads)] for a single-component query (the value
    predicate and class pattern of a {!Query.class_hierarchy} query; the
    slot restricts the OID list).  Uses the pruned multi-interval descent
    when the value predicate is enumerable, and a bracket scan
    otherwise. *)

val entry_count : t -> int
