(** The U-index (Section 3): one key-compressed B+-tree serving
    class-hierarchy, path, combined class/path, and multi-path indexing.

    A {e class-hierarchy} index on [(root, attr)] holds one entry per
    object of [root]'s subtree having a value for [attr].

    A {e path} index on [head.ref1.ref2...attr] holds one entry per
    instantiation of the REF path: the key carries the whole path
    (target object first, head object last, in ascending code order).
    Because entries record the {e actual} classes of the objects on the
    chain — which may be subclasses of the declared path classes — the
    same structure answers plain path queries, combined class-hierarchy /
    path queries, and partial-path queries; the paper's "combined index"
    is not a separate structure here.

    Several paths that share a suffix (e.g. [Vehicle.manufactured_by] and
    [Division.belongs_to], both ending in [Company.president.age]) can
    live in {e one} index ({!add_path}, the "Multiple Paths" case of
    Section 3.3): their entries share key prefixes, which front
    compression erases, and a single query retrieves objects of several
    heads at once.

    Entries are single-valued (the OID lives in the key, the B-tree value
    is empty) and rely on front compression to erase the repetition, as
    suggested at the end of Section 3.2.1. *)

module Schema := Oodb_schema.Schema
module Encoding := Oodb_schema.Encoding
module Store := Objstore.Store

type kind =
  | Class_hierarchy of { root : Schema.class_id; attr : string }
  | Path of { head : Schema.class_id; refs : string list; attr : string }
      (** [refs] are the REF attribute names walked from [head]; [attr]
          is the indexed attribute of the final target class.  An index
          created as [Path] may carry further paths ({!add_path}). *)

type t

val create_class_hierarchy :
  ?config:Btree.config ->
  ?pool:Storage.Buffer_pool.t ->
  Storage.Pager.t ->
  Encoding.t ->
  root:Schema.class_id ->
  attr:string ->
  t
(** Raises [Invalid_argument] if [attr] is not an [Int]/[String]
    attribute of [root] (possibly inherited).  [?pool] attaches a shared
    buffer pool over [pager] as the index's page source (see
    {!set_cache_pages}). *)

val attach_class_hierarchy :
  ?config:Btree.config ->
  ?pool:Storage.Buffer_pool.t ->
  Storage.Pager.t ->
  Encoding.t ->
  root:Schema.class_id ->
  attr:string ->
  t
(** Re-opens a class-hierarchy index previously persisted with {!sync}
    on this pager (usually after {!Storage.Pager.open_file}), via
    {!Btree.reattach}.  The caller supplies the index description —
    only the tree root lives in the pager metadata.  Raises
    {!Storage.Storage_error.Corruption} when the metadata does not name
    a tree. *)

val recreate :
  ?config:Btree.config -> ?pool:Storage.Buffer_pool.t -> t -> Storage.Pager.t -> t
(** [recreate t pager] is an {e empty} index with the same encoding,
    kind, attribute type and registered paths as [t], on a fresh tree
    over [pager] — the skeleton {!Verify.salvage} rebuilds into.  [t]'s
    tree configuration is inherited when the page sizes match. *)

val create_path :
  ?config:Btree.config ->
  ?pool:Storage.Buffer_pool.t ->
  Storage.Pager.t ->
  Encoding.t ->
  head:Schema.class_id ->
  refs:string list ->
  attr:string ->
  t
(** Validates that the REF chain is well-typed, that the class subtrees
    along the path are disjoint, and that their codes strictly decrease
    from head to target (i.e. the path is encodable, Section 3.1). *)

val add_path :
  t -> head:Schema.class_id -> refs:string list -> attr:string -> unit
(** Registers an additional REF path on a path index (Section 3.3,
    "Multiple Paths").  The new path is validated like {!create_path} and
    must index an attribute of the same type; existing entries are kept —
    rebuild ({!build}) or index objects incrementally afterwards.
    Raises [Invalid_argument] on a class-hierarchy index. *)

val kind : t -> kind
val encoding : t -> Encoding.t
val tree : t -> Btree.t
val attr_ty : t -> Schema.attr_type

val pool : t -> Storage.Buffer_pool.t option
(** The shared buffer pool serving this index's reads, if any. *)

val set_cache_pages : t -> int -> unit
(** [set_cache_pages t n] attaches a fresh shared LRU buffer pool of [n]
    pages over the index's pager; [0] detaches any pool, restoring the
    paper's exact uncached page-read accounting.  The pool persists
    across queries (that is the point: steady-state hit rates), stays
    coherent with the index's own inserts and deletes via write-through,
    and counts hits as [Stats.pool_hits] rather than pager reads. *)

val paths : t -> (Schema.class_id list * string list * string) list
(** Every registered path as [(declared classes head-first, refs, attr)];
    a class-hierarchy index reports the singleton
    [([root], [], attr)]. *)

val path_classes : t -> Schema.class_id list
(** Declared classes of the {e first} path, head-first
    ([[Vehicle; Company; Employee]]); a class-hierarchy index has the
    singleton [[root]]. *)

val arity : t -> int
(** Components per entry of the first path. *)

val default_comps : t -> Query.comp list
(** One unrestricted subtree component per class of the first path, in
    ascending code order (target first) — the starting point for building
    queries against this index. *)

val entry_keys : t -> Store.t -> Objstore.Value.oid -> string list
(** The index keys the object currently participates in, across all
    registered paths, at whatever positions its class fits.  Used by
    maintenance; deduplicated. *)

val index_object : t -> Store.t -> Objstore.Value.oid -> unit
val deindex_object : t -> Store.t -> Objstore.Value.oid -> unit

val insert_entry :
  t -> value:Objstore.Value.t -> (Schema.class_id * Objstore.Value.oid) list -> unit
(** Low-level bulk loading: insert one entry directly, bypassing the
    object store.  Components are [(class, oid)] in ascending code order
    (single component for a class-hierarchy index).  Used by the
    experiment generators. *)

val remove_entry :
  t -> value:Objstore.Value.t -> (Schema.class_id * Objstore.Value.oid) list -> unit

val build : ?fill:float -> t -> Store.t -> unit
(** (Re)indexes every relevant object of the store, over all paths.
    Into an empty tree this bulk-loads bottom-up ({!Btree.bulk_load},
    packing pages to [fill], default [0.9]); into a populated tree it
    falls back to batched merging. *)

val sync : t -> unit
(** {!Btree.sync} on the underlying tree: persists the root and commits
    buffered pages when the index lives on a file-backed pager. *)

val snapshot_view : t -> t
(** [snapshot_view t] pins the index's last committed image
    ({!Storage.Pager.snapshot}) and attaches a read-only index over it:
    queries against the view answer from that image — with their page
    reads accounted in the view's own pager stats — no matter what the
    writer inserts, deletes or syncs concurrently.  For a file-backed
    index the view answers from the last {!sync} (raises
    {!Storage.Storage_error.Corruption} if the index was never synced);
    for an in-memory index it answers from the current state.  Views
    attach without a buffer pool (a pool caches the live image).
    Release with {!release_view}; one view belongs to one thread at a
    time.  Do not call the mutating operations, {!sync}, or
    {!add_path}/{!set_cache_pages} on a view. *)

val release_view : t -> unit
(** Release a view's pinned snapshot (idempotent), folding its read
    accounting into the parent pager's stats.  Raises
    [Invalid_argument] if the argument is not a view. *)

val is_view : t -> bool

val entry_count : t -> int
val pp_stats : Format.formatter -> t -> unit
