(** The U-index library: a uniform indexing scheme for object-oriented
    databases (Gudes, Information Systems 22(4), 1997).

    - {!Ukey}: composite-key encoding of index entries
    - {!Query}: the query language (values, class patterns, path slots)
    - {!Qparse}: the textual query format of Section 3.4
    - {!Plan}: query compilation to key-space navigation
    - {!Index}: the index structure (class-hierarchy / path / combined /
      multi-path) and its maintenance
    - {!Exec}: forward-scanning and parallel retrieval algorithms, plus
      explain output (the Fig. 3 search tree)
    - {!Db}: store + indexes kept in sync
    - {!Grouped}: the alternative OID-list entry layout of Section 3.2.1
    - {!Schema_index}: schema relations stored in the same kind of index
      (Section 4.1) *)

module Ukey = Ukey
module Query = Query
module Qparse = Qparse
module Plan = Plan
module Index = Index
module Exec = Exec
module Verify = Verify
module Db = Db
module Grouped = Grouped
module Schema_index = Schema_index
