(** A database façade: an object store plus a set of U-indexes kept in
    sync through every mutation (the update algorithms of Section 3.5).

    Mid-path updates — "a president switches companies" — are handled by
    computing the affected entries against the pre-update state, applying
    the store mutation, and recomputing: each affected entry is one plain
    B-tree insert/delete, and because entries of one path prefix are
    clustered the deletions arrive in key order (the paper's batch
    observation). *)

module Schema := Oodb_schema.Schema
module Store := Objstore.Store
module Value := Objstore.Value

type t

val create : ?cache_pages:int -> Store.t -> t
(** [?cache_pages] (default [0]) sizes the shared buffer pool attached
    to every index registered with {!add_index}; [0] keeps all reads
    uncached — the paper's exact page-read accounting. *)

val store : t -> Store.t

val add_index : t -> Index.t -> unit
(** Registers the index (building it over the current store content).
    If the database was created with [cache_pages > 0] and the index has
    no pool yet, a shared pool of that many pages is attached first (one
    pool per index: pools are tied to the index's pager). *)

val cache_pages : t -> int

val set_cache_pages : t -> int -> unit
(** Re-sizes the pool on every registered index (and future ones);
    [0] detaches them all. *)

val remove_index : t -> Index.t -> unit
(** Stops maintaining the index; its pages are not reclaimed (drop the
    pager to release them). *)

val indexes : t -> Index.t list

val insert : t -> cls:Schema.class_id -> (string * Value.t) list -> Value.oid
val delete : t -> Value.oid -> unit
val set_attr : t -> Value.oid -> string -> Value.t -> unit

val query :
  ?algo:[ `Forward | `Parallel ] -> t -> Index.t -> Query.t -> Exec.outcome
(** Runs the query through the given index ([`Parallel] by default). *)

val sync : t -> unit
(** {!Index.sync} on every index: commits all file-backed index state. *)

val check : t -> unit
(** Verifies every index: B-tree invariants hold and the entry set equals
    what a full rebuild from the store would produce.  For tests. *)
