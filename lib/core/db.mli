(** A database façade: an object store plus a set of U-indexes kept in
    sync through every mutation (the update algorithms of Section 3.5).

    Mid-path updates — "a president switches companies" — are handled by
    computing the affected entries against the pre-update state, applying
    the store mutation, and recomputing: each affected entry is one plain
    B-tree insert/delete, and because entries of one path prefix are
    clustered the deletions arrive in key order (the paper's batch
    observation).

    {b Concurrency model.}  One writer, many snapshot readers.  Every
    mutating operation ({!insert}, {!delete}, {!set_attr}, {!sync},
    index (de)registration) serializes on an internal writer lock, so
    writers may come from any thread.  Readers open a {!session}, which
    pins — atomically with respect to writers — a snapshot view of every
    registered index; queries through the session see exactly the
    committed state at pin time (snapshot isolation) no matter how the
    writer proceeds.  {!query} (without a session) reads the {e live}
    index and belongs to the writer side: do not call it concurrently
    with mutations. *)

module Schema := Oodb_schema.Schema
module Store := Objstore.Store
module Value := Objstore.Value

type t

val create : ?cache_pages:int -> Store.t -> t
(** [?cache_pages] (default [0]) sizes the shared buffer pool attached
    to every index registered with {!add_index}; [0] keeps all reads
    uncached — the paper's exact page-read accounting. *)

val store : t -> Store.t

val add_index : t -> Index.t -> unit
(** Registers the index (building it over the current store content).
    If the database was created with [cache_pages > 0] and the index has
    no pool yet, a shared pool of that many pages is attached first (one
    pool per index: pools are tied to the index's pager). *)

val attach_index : t -> Index.t -> unit
(** Like {!add_index} but without rebuilding — for an index that already
    holds its entries, e.g. one re-opened from a page file with
    {!Index.attach_class_hierarchy}. *)

val cache_pages : t -> int

val set_cache_pages : t -> int -> unit
(** Re-sizes the pool on every registered index (and future ones);
    [0] detaches them all. *)

val remove_index : t -> Index.t -> unit
(** Stops maintaining the index; its pages are not reclaimed (drop the
    pager to release them). *)

val indexes : t -> Index.t list

val insert : t -> cls:Schema.class_id -> (string * Value.t) list -> Value.oid
val delete : t -> Value.oid -> unit
val set_attr : t -> Value.oid -> string -> Value.t -> unit

val query :
  ?algo:[ `Forward | `Parallel ] -> t -> Index.t -> Query.t -> Exec.outcome
(** Runs the query through the given index ([`Parallel] by default). *)

(** {1 Commits, group commit, and the durability watermark}

    Mutations apply to the live indexes immediately; {!commit} makes
    them durable.  Every commit gets a monotonically increasing logical
    sequence number (LSN).  Concurrent synchronous committers are
    batched: one leader flushes all journal state with a single pair of
    fsyncs and acknowledges the whole group, so fsyncs-per-commit drops
    below 1 under write concurrency.

    [`Sync] (the default) returns only once the commit is durable.
    [`Async] returns as soon as the commit is {e acknowledged} — applied
    and sequenced, visible to new sessions, but possibly not yet on
    disk.  The watermark {!durable_lsn} says exactly which prefix of the
    commit history would survive a crash; an async committer that needs
    durability later calls {!wait_durable} with its LSN. *)

val commit : ?mode:[ `Sync | `Async ] -> t -> int
(** Commits everything applied so far and returns its LSN.  With
    [`Sync], on return [durable_lsn t >= lsn].  With [`Async], the
    commit becomes durable at the next group flush (any later [`Sync]
    commit, {!sync}, or {!wait_durable} call drives one). *)

val durable_lsn : t -> int
(** The durability watermark: every commit with an LSN [<=] this value
    is on stable storage.  Monotone non-decreasing; [0] before the first
    flush. *)

val acked_lsn : t -> int
(** The highest LSN handed to any committer so far (acknowledged to the
    application, though possibly not yet durable).  [acked_lsn t -
    durable_lsn t] is the durability lag the server's Health response
    reports: how many acknowledged commits a crash right now would
    replay from the journal. *)

val wait_durable : t -> int -> unit
(** [wait_durable t lsn] blocks until [durable_lsn t >= lsn], leading a
    group flush itself if none is in flight. *)

val set_group_window : t -> float -> unit
(** How long (seconds) a group-commit leader waits before flushing so
    trailing committers can join its group.  Default [0.]: flush
    immediately.  A millisecond or two trades a little latency for
    fewer fsyncs under concurrent writers. *)

val sync : t -> unit
(** [commit t] with the LSN discarded: commits all file-backed index
    state synchronously. *)

val check : t -> unit
(** Verifies every index: B-tree invariants hold and the entry set equals
    what a full rebuild from the store would produce.  For tests. *)

(** {1 Snapshot sessions} *)

type session
(** A reader's handle: a snapshot view of every index, all pinned at the
    same committed cut.  One session belongs to one thread; any number
    of sessions may run concurrently with each other and with the
    writer. *)

val open_session : t -> session
(** Pins a session at the current committed state (taking the writer
    lock briefly, so the cut is never mid-mutation).  File-backed
    indexes must have been synced at least once.  Release with
    {!close_session}. *)

val close_session : session -> unit
(** Releases every pinned view (idempotent).  Queries through a closed
    session raise [Invalid_argument]. *)

val with_session : t -> (session -> 'a) -> 'a
(** [with_session t f] opens a session, runs [f], and always closes it. *)

val active_sessions : unit -> int
(** Process-wide count of currently pinned sessions (also exported as
    the [db.active_sessions] gauge). *)

val session_query :
  ?algo:[ `Forward | `Parallel ] -> session -> Index.t -> Query.t -> Exec.outcome
(** [session_query s idx q] runs [q] against the session's pinned view
    of [idx] (pass the live index; the session maps it to its view).
    [outcome.page_reads] counts reads on the view's own snapshot. *)

val session_view : session -> Index.t -> Index.t
(** The session's pinned view of a live index (a view argument is
    returned unchanged).  Raises [Invalid_argument] if the index was not
    registered when the session opened. *)

val session_indexes : session -> Index.t list
(** Every pinned view, in registration order. *)
