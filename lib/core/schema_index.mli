(** Schema information stored in the index itself (Section 4.1).

    "By using the name-encoding scheme above, schema information can be
    stored in the same index and retrieved easily.  For example, the
    relations SUP or REF may be stored in the index and that information
    is also clustered."

    This module materialises that claim: class existence, SUP edges and
    REF edges become entries of the same kind of key-compressed B+-tree
    the U-index uses, keyed by serialized class codes — so a whole
    subtree of the class hierarchy is one contiguous range scan, and a
    class's REF neighbourhood is clustered around its code.  Every query
    reports its page reads, like the object indexes. *)

module Schema := Oodb_schema.Schema
module Encoding := Oodb_schema.Encoding

type t

val create : ?config:Btree.config -> Storage.Pager.t -> Encoding.t -> t
(** An empty schema index over the encoding. *)

val build : t -> unit
(** Loads every class, SUP edge and REF edge of the encoding's schema
    currently encoded.  Idempotent. *)

val note_class_added : t -> Schema.class_id -> unit
(** Incremental maintenance after schema evolution: indexes the class
    (which must already have a code) together with its SUP edge and its
    own REF attributes. *)

val subtree : t -> Schema.class_id -> Schema.class_id list * int
(** Pre-order classes of the subtree, from one clustered range scan;
    returns [(classes, page_reads)]. *)

val children : t -> Schema.class_id -> Schema.class_id list * int
val parent : t -> Schema.class_id -> Schema.class_id option * int

val refs_from : t -> Schema.class_id -> (string * Schema.class_id) list * int
(** REF attributes declared on the class: [(attr, target)]. *)

val refs_to : t -> Schema.class_id -> (string * Schema.class_id) list * int
(** Who references this class: [(attr, source)]. *)

val entry_count : t -> int
