(** Assignment of {!Code} values to classes (the paper's [COD] relation).

    The lexicographic order of the assigned codes matches a depth-first
    topological order of the schema graph:

    - within a class hierarchy, a subclass's code extends its
      superclass's, so pre-order traversal equals code order and every
      subtree is a contiguous code interval;
    - across hierarchies, the hierarchy roots are topologically ordered by
      the lifted REF constraints: if any class of tree [T1] references a
      class of tree [T2] then [root(T2)]'s code precedes [root(T1)]'s —
      this is what makes a REF path's class codes appear in ascending
      order inside a composite index key (Section 3.1).

    The assignment is incremental: classes added to the schema after
    {!assign} get codes via {!assign_new_class} without recoding anything
    (the Fig. 4 evolution cases). *)

exception Cycle of string list
(** Raised by {!assign} when the lifted REF constraints between hierarchy
    roots are cyclic; carries the class names on the cycle.  Break the
    cycle by partitioning the REF edges ({!Graph.partition_acyclic}) and
    encoding each group separately. *)

type t

val assign : ?ref_edges:(Schema.class_id * Schema.class_id) list ->
  Schema.t -> t
(** Assigns codes to every class currently in the schema.  [ref_edges]
    overrides the set of REF constraints to honour (defaults to all of the
    schema's REF edges) — pass a subset to encode one acyclic group of a
    cyclic schema. *)

val schema : t -> Schema.t
val code : t -> Schema.class_id -> Code.t
val class_of_code : t -> Code.t -> Schema.class_id option
val class_of_serialized : t -> string -> Schema.class_id option

val subtree_interval : t -> Schema.class_id -> string * string
(** Serialized-key interval of the class-hierarchy subtree rooted at the
    class. *)

val exact_interval : t -> Schema.class_id -> string * string
(** Serialized-key interval containing exactly this class's entries (the
    serialized code followed by the component terminator). *)

val assign_new_class : t -> Schema.class_id -> unit
(** Gives a code to a class added after {!assign}: as a fresh child unit
    under its parent's code, or as a new hierarchy root placed between
    existing roots so that its REF constraints still hold.  Raises
    {!Cycle} if no valid root position exists. *)

val path_is_encodable : t -> Schema.class_id list -> bool
(** [path_is_encodable t [a; b; c]] checks that codes strictly decrease
    along the REF path [a -> b -> c], i.e. the composite key components
    (listed target-first) come out in ascending code order. *)

val pp : Format.formatter -> t -> unit
