module Bu = Storage.Bytes_util

type t = string list

let sep = '\x02'
let lo_char = 'A'
let hi_char = 'z'
let component_end = "\x01"

let check_unit u =
  if u = "" then invalid_arg "Code: empty unit";
  String.iter
    (fun c ->
      if c < lo_char || c > hi_char then
        invalid_arg "Code: unit character outside 'A'..'z'")
    u;
  u

let root u = [ check_unit u ]
let child c u = c @ [ check_unit u ]
let units c = c
let depth = List.length

let parent c =
  match List.rev c with
  | [] | [ _ ] -> None
  | _ :: rev -> Some (List.rev rev)

let serialize c =
  let buf = Buffer.create 16 in
  List.iter
    (fun u ->
      Buffer.add_string buf u;
      Buffer.add_char buf sep)
    c;
  Buffer.contents buf

let of_serialized s =
  let n = String.length s in
  if n = 0 || s.[n - 1] <> sep then
    invalid_arg "Code.of_serialized: missing terminator";
  let rec split start acc =
    if start >= n then List.rev acc
    else
      match String.index_from_opt s start sep with
      | None -> invalid_arg "Code.of_serialized: missing terminator"
      | Some i ->
          if i = start then invalid_arg "Code.of_serialized: empty unit";
          split (i + 1) (check_unit (String.sub s start (i - start)) :: acc)
  in
  split 0 []

let compare a b = String.compare (serialize a) (serialize b)
let equal a b = a = b

let rec is_ancestor ~ancestor c =
  match (ancestor, c) with
  | [], _ -> true
  | _, [] -> false
  | a :: arest, b :: brest -> a = b && is_ancestor ~ancestor:arest brest

let subtree_interval c =
  let lo = serialize c in
  (* every descendant's serialization starts with [lo]; bumping the final
     separator byte gives the least key above all of them *)
  let hi = Bytes.of_string lo in
  Bytes.set hi (Bytes.length hi - 1) (Char.chr (Char.code sep + 1));
  (lo, Bytes.to_string hi)

let to_string c = String.concat "." c
let pp ppf c = Format.pp_print_string ppf (to_string c)

(* Single characters 'B'..'z' in order (never 'A', see unit_between), then
   'z'-prefixed recursion: B < C < ... < z < zB < zC < ... *)
let single_range = Char.code hi_char - Char.code lo_char (* 57: 'B'..'z' *)

let rec unit_of_rank i =
  if i < 0 then invalid_arg "Code.unit_of_rank: negative rank";
  if i < single_range then String.make 1 (Char.chr (Char.code lo_char + 1 + i))
  else String.make 1 hi_char ^ unit_of_rank (i - single_range)

let rec unit_between u v =
  (match v with
  | Some v ->
      if not (u = "" || String.compare u v < 0) then
        invalid_arg "Code.unit_between: bounds not ordered"
  | None -> ());
  match v with
  | None -> if u = "" then "M" else u ^ "M"
  | Some v ->
      let n = Bu.common_prefix_len u v in
      let prefix = String.sub v 0 n in
      let u' = String.sub u n (String.length u - n) in
      let v' = String.sub v n (String.length v - n) in
      (* v' is non-empty because u < v *)
      let x = if u' = "" then -1 else Char.code u'.[0] - Char.code lo_char in
      let y = Char.code v'.[0] - Char.code lo_char in
      if y - x >= 2 then begin
        let m = x + ((y - x) / 2) in
        let d = String.make 1 (Char.chr (Char.code lo_char + m)) in
        prefix ^ if m = 0 then d ^ "M" else d
      end
      else if x >= 0 then
        (* adjacent first characters: stay on [u]'s side and go deeper *)
        prefix ^ u' ^ "M"
      else begin
        (* u ended, v' starts with 'A': recurse below the rest of v *)
        let rest = String.sub v' 1 (String.length v' - 1) in
        if rest = "" then
          invalid_arg "Code.unit_between: no unit fits below a unit ending in 'A'";
        prefix ^ "A" ^ unit_between "" (Some rest)
      end
