(** Small graph utilities for the encoding scheme.

    The [COD] encoding requires the schema graph to be acyclic
    (Section 3); REF relationships can create cycles (e.g. the paper's
    OWN/USE example, Section 4.3), which are handled by partitioning the
    REF edges into several acyclic groups — each group gets its own
    encoding, and a query is routed to the group containing the
    referencing attribute it mentions. *)

val toposort :
  nodes:int list -> edges:(int * int) list -> (int list, int list) result
(** [toposort ~nodes ~edges] orders [nodes] so every edge [(a, b)] has [a]
    before [b]; ties are broken by the input order of [nodes] (stable).
    On a cycle, returns [Error cycle_nodes]. *)

val is_acyclic : nodes:int list -> edges:(int * int) list -> bool

val partition_acyclic : (int * int) list -> (int * int) list list
(** Greedily partitions edges into groups, each of which is acyclic (the
    paper's graph-duplication strategy).  Input order is preserved inside
    each group. *)
