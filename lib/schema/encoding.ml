exception Cycle of string list

type t = {
  schema : Schema.t;
  codes : (Schema.class_id, Code.t) Hashtbl.t;
  by_ser : (string, Schema.class_id) Hashtbl.t;
  (* next fresh-unit rank per parent; key [-1] is the top level *)
  ranks : (int, int ref) Hashtbl.t;
}

let schema t = t.schema

let code t id =
  match Hashtbl.find_opt t.codes id with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Encoding: class %s has no code"
           (Schema.name t.schema id))

let class_of_serialized t s = Hashtbl.find_opt t.by_ser s
let class_of_code t c = class_of_serialized t (Code.serialize c)

let subtree_interval t id = Code.subtree_interval (code t id)

let exact_interval t id =
  let s = Code.serialize (code t id) in
  (s ^ Code.component_end, s ^ "\x02")

let rec root_of schema id =
  match Schema.parent schema id with
  | Some p -> root_of schema p
  | None -> id

let sibling_units t parent =
  let sibs =
    match parent with
    | Some p -> Schema.children t.schema p
    | None -> Schema.roots t.schema
  in
  List.filter_map
    (fun s ->
      match Hashtbl.find_opt t.codes s with
      | Some c -> Some (List.hd (List.rev (Code.units c)))
      | None -> None)
    sibs

let fresh_unit t ~parent_key ~taken =
  let r =
    match Hashtbl.find_opt t.ranks parent_key with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.ranks parent_key r;
        r
  in
  let rec pick () =
    let u = Code.unit_of_rank !r in
    incr r;
    if List.mem u taken then pick () else u
  in
  pick ()

let record t id c =
  Hashtbl.replace t.codes id c;
  Hashtbl.replace t.by_ser (Code.serialize c) id

let rec assign_subtree t id c =
  record t id c;
  List.iter
    (fun child ->
      let u = fresh_unit t ~parent_key:id ~taken:[] in
      assign_subtree t child (Code.child c u))
    (Schema.children t.schema id)

let assign ?ref_edges schema =
  let refs =
    match ref_edges with
    | Some e -> e
    | None -> List.map (fun (s, _, d) -> (s, d)) (Schema.ref_edges schema)
  in
  let roots = Schema.roots schema in
  let lifted =
    List.filter_map
      (fun (src, dst) ->
        let rs = root_of schema src and rd = root_of schema dst in
        if rs = rd then None else Some (rd, rs))
      refs
  in
  let order =
    match Graph.toposort ~nodes:roots ~edges:lifted with
    | Ok o -> o
    | Error cyc -> raise (Cycle (List.map (Schema.name schema) cyc))
  in
  let t =
    {
      schema;
      codes = Hashtbl.create 64;
      by_ser = Hashtbl.create 64;
      ranks = Hashtbl.create 64;
    }
  in
  List.iter
    (fun r ->
      let u = fresh_unit t ~parent_key:(-1) ~taken:[] in
      assign_subtree t r (Code.root u))
    order;
  t

let top_unit t id = List.hd (Code.units (code t (root_of t.schema id)))

let assign_new_class t id =
  if Hashtbl.mem t.codes id then
    invalid_arg "Encoding.assign_new_class: class already encoded";
  match Schema.parent t.schema id with
  | Some p ->
      let u =
        fresh_unit t ~parent_key:p ~taken:(sibling_units t (Some p))
      in
      (* descendants may exist if the caller batched several additions *)
      assign_subtree t id (Code.child (code t p) u)
  | None ->
      (* a new hierarchy root: honour REF constraints against existing
         roots by slotting its top unit between them (Fig. 4b) *)
      let edges = Schema.ref_edges t.schema in
      let lows =
        List.filter_map
          (fun (src, _, dst) ->
            if root_of t.schema src = id && root_of t.schema dst <> id then
              Some (top_unit t dst)
            else None)
          edges
      and highs =
        List.filter_map
          (fun (src, _, dst) ->
            if root_of t.schema dst = id && root_of t.schema src <> id then
              Some (top_unit t src)
            else None)
          edges
      in
      let lower =
        List.fold_left
          (fun acc u -> if String.compare u acc > 0 then u else acc)
          "" lows
      and upper =
        match List.sort String.compare highs with u :: _ -> Some u | [] -> None
      in
      let unit =
        match upper with
        | Some up when String.compare lower up >= 0 ->
            raise
              (Cycle [ Schema.name t.schema id ])
        | Some _ | None ->
            if lower = "" && upper = None then
              fresh_unit t ~parent_key:(-1) ~taken:(sibling_units t None)
            else
              let rec pick lo =
                let u = Code.unit_between lo upper in
                if List.mem u (sibling_units t None) then pick u else u
              in
              pick lower
      in
      assign_subtree t id (Code.root unit)

let path_is_encodable t path =
  let rec go = function
    | a :: (b :: _ as rest) ->
        Code.compare (code t a) (code t b) > 0 && go rest
    | [ _ ] | [] -> true
  in
  go path

let pp ppf t =
  let entries =
    Hashtbl.fold (fun id c acc -> (c, id) :: acc) t.codes []
    |> List.sort (fun (a, _) (b, _) -> Code.compare a b)
  in
  List.iter
    (fun (c, id) ->
      Format.fprintf ppf "%-12s %s@." (Code.to_string c)
        (Schema.name t.schema id))
    entries
