type class_id = int

type attr_type = Int | String | Ref of class_id | Ref_set of class_id

type class_info = {
  cname : string;
  cparent : class_id option;
  mutable cattrs : (string * attr_type) list;  (* declaration order *)
  mutable cchildren : class_id list;  (* reverse declaration order *)
}

type t = {
  mutable classes : class_info array;
  mutable count : int;
  by_name : (string, class_id) Hashtbl.t;
}

let create () = { classes = [||]; count = 0; by_name = Hashtbl.create 16 }

let info t id =
  if id < 0 || id >= t.count then invalid_arg "Schema: unknown class id";
  t.classes.(id)

let name t id = (info t id).cname
let find t n = Hashtbl.find_opt t.by_name n

let find_exn t n =
  match find t n with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Schema: no class named %S" n)

let parent t id = (info t id).cparent
let children t id = List.rev (info t id).cchildren
let class_count t = t.count

let all_classes t = List.init t.count Fun.id

let roots t =
  List.filter (fun id -> (info t id).cparent = None) (all_classes t)

let own_attrs t id = (info t id).cattrs

let rec attr_type t id attr =
  match List.assoc_opt attr (info t id).cattrs with
  | Some ty -> Some ty
  | None -> (
      match (info t id).cparent with
      | Some p -> attr_type t p attr
      | None -> None)

let attr_type_exn t id attr =
  match attr_type t id attr with
  | Some ty -> ty
  | None ->
      invalid_arg
        (Printf.sprintf "Schema: class %s has no attribute %S" (name t id)
           attr)

let validate_attr t id (attr, _ty) =
  match attr_type t id attr with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Schema: attribute %S already defined on %s or above"
           attr (name t id))
  | None -> ()

let check_class_exists t id =
  if id < 0 || id >= t.count then invalid_arg "Schema: unknown class id"

let add_class ?parent t ~name:n ~attrs =
  if Hashtbl.mem t.by_name n then
    invalid_arg (Printf.sprintf "Schema: duplicate class name %S" n);
  (match parent with Some p -> check_class_exists t p | None -> ());
  List.iter
    (fun (_, ty) ->
      match ty with
      | Ref c | Ref_set c -> check_class_exists t c
      | Int | String -> ())
    attrs;
  let id = t.count in
  if id >= Array.length t.classes then begin
    let n' = max 8 (2 * Array.length t.classes) in
    let a =
      Array.make n'
        { cname = ""; cparent = None; cattrs = []; cchildren = [] }
    in
    Array.blit t.classes 0 a 0 t.count;
    t.classes <- a
  end;
  t.classes.(id) <-
    { cname = n; cparent = parent; cattrs = []; cchildren = [] };
  t.count <- t.count + 1;
  Hashtbl.add t.by_name n id;
  (* inherit checks need the class registered first *)
  List.iter
    (fun (a, ty) ->
      validate_attr t id (a, ty);
      t.classes.(id).cattrs <- t.classes.(id).cattrs @ [ (a, ty) ])
    attrs;
  (match parent with
  | Some p -> t.classes.(p).cchildren <- id :: t.classes.(p).cchildren
  | None -> ());
  id

let add_attr t id attr ty =
  check_class_exists t id;
  (match ty with
  | Ref c | Ref_set c -> check_class_exists t c
  | Int | String -> ());
  validate_attr t id (attr, ty);
  t.classes.(id).cattrs <- t.classes.(id).cattrs @ [ (attr, ty) ]

let rec subtree t id =
  id :: List.concat_map (subtree t) (children t id)

let rec is_subclass t ~sub ~super =
  sub = super
  ||
  match parent t sub with
  | Some p -> is_subclass t ~sub:p ~super
  | None -> false

let rec inherited_attrs t id =
  let above =
    match parent t id with Some p -> inherited_attrs t p | None -> []
  in
  above @ own_attrs t id

let refs t id =
  List.filter_map
    (fun (attr, ty) ->
      match ty with
      | Ref c -> Some (attr, c, `One)
      | Ref_set c -> Some (attr, c, `Many)
      | Int | String -> None)
    (inherited_attrs t id)

let ref_edges t =
  List.concat_map
    (fun id ->
      List.filter_map
        (fun (attr, ty) ->
          match ty with
          | Ref c | Ref_set c -> Some (id, attr, c)
          | Int | String -> None)
        (own_attrs t id))
    (all_classes t)

let pp ppf t =
  let rec pp_class indent id =
    Format.fprintf ppf "%s%s" (String.make indent ' ') (name t id);
    List.iter
      (fun (a, ty) ->
        let tys =
          match ty with
          | Int -> "int"
          | String -> "string"
          | Ref c -> "ref " ^ name t c
          | Ref_set c -> "ref-set " ^ name t c
        in
        Format.fprintf ppf " %s:%s" a tys)
      (own_attrs t id);
    Format.fprintf ppf "@.";
    List.iter (pp_class (indent + 2)) (children t id)
  in
  List.iter (pp_class 0) (roots t)
