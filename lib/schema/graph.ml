module Imap = Map.Make (Int)

let toposort ~nodes ~edges =
  let rank = List.mapi (fun i n -> (n, i)) nodes |> List.to_seq |> Imap.of_seq in
  let in_deg = ref (List.fold_left (fun m n -> Imap.add n 0 m) Imap.empty nodes)
  and succs = ref Imap.empty in
  List.iter
    (fun (a, b) ->
      if Imap.mem a rank && Imap.mem b rank && a <> b then begin
        succs := Imap.update a (fun l -> Some (b :: Option.value l ~default:[])) !succs;
        in_deg := Imap.update b (fun d -> Some (Option.value d ~default:0 + 1)) !in_deg
      end)
    edges;
  (* Kahn's algorithm with a rank-ordered frontier for stability *)
  let module Pq = Set.Make (struct
    type t = int * int (* rank, node *)

    let compare = compare
  end) in
  let frontier = ref Pq.empty in
  Imap.iter
    (fun n d -> if d = 0 then frontier := Pq.add (Imap.find n rank, n) !frontier)
    !in_deg;
  let out = ref [] in
  while not (Pq.is_empty !frontier) do
    let ((_, n) as e) = Pq.min_elt !frontier in
    frontier := Pq.remove e !frontier;
    out := n :: !out;
    List.iter
      (fun m ->
        let d = Imap.find m !in_deg - 1 in
        in_deg := Imap.add m d !in_deg;
        if d = 0 then frontier := Pq.add (Imap.find m rank, m) !frontier)
      (Option.value (Imap.find_opt n !succs) ~default:[])
  done;
  let sorted = List.rev !out in
  if List.length sorted = List.length nodes then Ok sorted
  else
    (* the leftover nodes all sit on or behind a cycle *)
    let placed = List.fold_left (fun s n -> Imap.add n () s) Imap.empty sorted in
    Error (List.filter (fun n -> not (Imap.mem n placed)) nodes)

let is_acyclic ~nodes ~edges =
  match toposort ~nodes ~edges with Ok _ -> true | Error _ -> false

let partition_acyclic edges =
  let nodes =
    List.concat_map (fun (a, b) -> [ a; b ]) edges |> List.sort_uniq compare
  in
  let groups = ref [] in
  List.iter
    (fun e ->
      let rec place = function
        | g :: rest ->
            if is_acyclic ~nodes ~edges:(e :: !g) then g := e :: !g
            else place rest
        | [] ->
            let g = ref [ e ] in
            groups := !groups @ [ g ]
      in
      place !groups)
    edges;
  List.map (fun g -> List.rev !g) !groups
