(** Class codes: the paper's [COD] naming scheme (Section 3).

    A code is a sequence of {e units}, one per level of the class
    hierarchy: the code of a class is its parent's code extended by one
    unit, so a class-hierarchy subtree is exactly a unit-prefix range.

    Codes are serialized for use inside index keys by terminating every
    unit with the byte [0x02], which is smaller than any unit character.
    This gives the two properties the scheme needs:

    - serialized order = pre-order of the hierarchy (a class sorts before
      its descendants, the paper's "`$` is lower lexicographically than
      `A`");
    - the serialized keys of a subtree form one contiguous byte-string
      interval.

    Units are strings over ['A'..'z'].  Fresh sibling units are allocated
    in order, and {!unit_between} produces a unit strictly between two
    existing ones — this is what makes the Fig. 4 schema-evolution cases
    (insert a class anywhere without recoding the rest) work. *)

type t
(** A class code; the root-level unit comes first. *)

val root : string -> t
(** A top-level code made of a single unit. *)

val child : t -> string -> t
(** [child c u] extends [c] with unit [u]. *)

val units : t -> string list
val depth : t -> int
(** Number of units; a hierarchy root has depth 1. *)

val parent : t -> t option

val compare : t -> t -> int
(** Pre-order: equals [String.compare] on {!serialize}. *)

val equal : t -> t -> bool

val is_ancestor : ancestor:t -> t -> bool
(** Reflexive: a code is its own ancestor. *)

val serialize : t -> string
(** The byte-string image used in index keys. *)

val component_end : string
(** The byte ([0x01]) that index-key formats place after a serialized code
    and before the payload (OID).  It is smaller than the unit terminator,
    so a class's own entries sort before its descendants' — the paper's
    "`$` is lower lexicographically than `A`". *)

val of_serialized : string -> t
(** Inverse of {!serialize}; raises [Invalid_argument] on malformed
    input. *)

val subtree_interval : t -> string * string
(** [subtree_interval c] is the half-open serialized-key interval
    containing exactly the codes of [c]'s subtree (including [c]). *)

val to_string : t -> string
(** Display form, units joined with ['.'] (e.g. ["C.E.A"]). *)

val pp : Format.formatter -> t -> unit

(** {1 Unit allocation} *)

val unit_of_rank : int -> string
(** [unit_of_rank i] is the [i]-th unit in allocation order ([i >= 0]):
    single characters first, then longer strings; strictly increasing in
    code order, never ending in ['A']. *)

val unit_between : string -> string option -> string
(** [unit_between u v] is a unit strictly between [u] and [v] ([None]
    means unbounded above).  [u] may be [""] to mean "below every unit".
    Raises [Invalid_argument] if the gap is empty.  Never returns a unit
    ending in ['A'], which guarantees further insertions always fit. *)

val check_unit : string -> string
(** Validates that a unit is non-empty and uses only ['A'..'z']. *)
