(** OODB schema: classes, attributes, the class ("is-a") hierarchy and the
    class-composition ("REF") hierarchy of Section 2.

    A class may have one parent (SUP/SUB edges form a forest; the paper's
    encoding needs an acyclic class hierarchy, and multiple inheritance is
    out of scope here — Section 4.3 argues it rarely breaks acyclicity).
    REF relationships are declared as attributes of type {!attr_type.Ref}
    (m:1, single object reference) or {!attr_type.Ref_set} (multi-value
    reference, Section 4.3).  Attributes are inherited by subclasses. *)

type class_id = int

type attr_type =
  | Int
  | String
  | Ref of class_id  (** m:1 reference — a REF edge to the target class *)
  | Ref_set of class_id  (** multi-valued reference *)

type t

val create : unit -> t

val add_class :
  ?parent:class_id -> t -> name:string -> attrs:(string * attr_type) list ->
  class_id
(** Declares a class.  Raises [Invalid_argument] on duplicate names,
    unknown parents, or attribute names clashing with inherited ones. *)

val add_attr : t -> class_id -> string -> attr_type -> unit
(** Adds an attribute to an existing class. *)

val name : t -> class_id -> string
val find : t -> string -> class_id option
val find_exn : t -> string -> class_id
val parent : t -> class_id -> class_id option
val children : t -> class_id -> class_id list
(** In declaration order. *)

val roots : t -> class_id list
val all_classes : t -> class_id list
val class_count : t -> int

val subtree : t -> class_id -> class_id list
(** Pre-order: the class itself first, then descendants. *)

val is_subclass : t -> sub:class_id -> super:class_id -> bool
(** Reflexive. *)

val own_attrs : t -> class_id -> (string * attr_type) list

val attr_type : t -> class_id -> string -> attr_type option
(** Looks the attribute up on the class and then on its ancestors
    (inheritance). *)

val attr_type_exn : t -> class_id -> string -> attr_type

val refs : t -> class_id -> (string * class_id * [ `One | `Many ]) list
(** All REF attributes (own and inherited) of a class: attribute name,
    target class, multiplicity. *)

val ref_edges : t -> (class_id * string * class_id) list
(** Every REF edge in the schema as [(source, attribute, target)]. *)

val pp : Format.formatter -> t -> unit
