module Json = Obs.Json
module Metrics = Obs.Metrics
module Schema = Oodb_schema.Schema
module Value = Objstore.Value
module Db = Uindex.Db
module Index = Uindex.Index
module Query = Uindex.Query
module Qparse = Uindex.Qparse

let requests = Metrics.counter ~subsystem:"server" "requests"
let request_errors = Metrics.counter ~subsystem:"server" "request_errors"

let request_ns =
  Metrics.histogram ~subsystem:"server"
    ~help:"request handling latency (ns)" "request_ns"

type t = {
  db : Db.t;
  schema : Schema.t;
  route : (int * Index.t) list;  (* query arity -> serving index *)
}

let create ~schema db =
  let route =
    List.map (fun idx -> (Index.arity idx, idx)) (Db.indexes db)
  in
  { db; schema; route }

let db t = t.db

(* --- rendering -------------------------------------------------------- *)

let value_json = function
  | Value.Null -> Json.Null
  | Value.Int i -> Json.Int i
  | Value.Str s -> Json.Str s
  | Value.Ref o -> Json.Obj [ ("ref", Json.Int o) ]
  | Value.Ref_set os -> Json.List (List.map (fun o -> Json.Int o) os)

let binding_json schema (b : Uindex.Exec.binding) =
  Json.Obj
    [
      ("value", value_json b.value);
      ( "comps",
        Json.List
          (List.map
             (fun (cls, oid) ->
               Json.List [ Json.Str (Schema.name schema cls); Json.Int oid ])
             b.comps) );
    ]

(* A canonical row order: Exec already returns a deterministic order per
   snapshot, but sorting rendered rows makes concurrent replies
   byte-comparable against a sequential baseline without trusting that. *)
let rows_json schema bindings =
  let rendered = List.map (binding_json schema) bindings in
  let keyed = List.map (fun j -> (Json.to_string j, j)) rendered in
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) keyed
  in
  Json.List (List.map snd sorted)

(* --- dispatch --------------------------------------------------------- *)

let stats_response () =
  let latency =
    match Metrics.find_summary Metrics.default "server.request_ns" with
    | Some s -> Metrics.summary_json s
    | None -> Json.Null
  in
  Protocol.ok
    [
      ("type", Json.Str "stats");
      ("request_latency", latency);
      ("metrics", Metrics.to_json Metrics.default);
    ]

let query_response t ~algo text =
  match Qparse.parse t.schema text with
  | exception Qparse.Parse_error msg ->
      Protocol.error ~detail:msg Protocol.Parse_error
  | q -> (
      let arity = List.length q.Query.comps in
      match List.assoc_opt arity t.route with
      | None ->
          Protocol.error
            ~detail:
              (Printf.sprintf "no index serves arity-%d queries" arity)
            Protocol.Unroutable
      | Some idx ->
          let out =
            Db.with_session t.db (fun s -> Db.session_query ~algo s idx q)
          in
          Protocol.ok
            [
              ("type", Json.Str "rows");
              ("count", Json.Int (List.length out.bindings));
              ("rows", rows_json t.schema out.bindings);
              ("page_reads", Json.Int out.page_reads);
              ("pool_hits", Json.Int out.pool_hits);
              ("entries_scanned", Json.Int out.entries_scanned);
            ])

let handle ?deadline t (req : Protocol.request) =
  Metrics.incr requests;
  let resp =
    Metrics.observe_span request_ns @@ fun () ->
    let expired =
      match deadline with
      | Some d -> Unix.gettimeofday () > d
      | None -> false
    in
    if expired then
      Protocol.error ~detail:"deadline exceeded before execution"
        Protocol.Timeout
    else
      match req with
      | Protocol.Ping -> Protocol.ok [ ("type", Json.Str "pong") ]
      | Protocol.Quit -> Protocol.ok [ ("type", Json.Str "bye") ]
      | Protocol.Stats -> stats_response ()
      | Protocol.Query { algo; text } -> (
          try query_response t ~algo text
          with e ->
            Protocol.error ~detail:(Printexc.to_string e) Protocol.Internal)
  in
  if not (Protocol.response_is_ok resp) then Metrics.incr request_errors;
  resp

let handle_line ?deadline t line =
  match Protocol.parse_request line with
  | Error msg -> Protocol.error ~detail:msg Protocol.Bad_request
  | Ok req -> handle ?deadline t req
