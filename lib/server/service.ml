module Json = Obs.Json
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Ring = Obs.Ring
module Schema = Oodb_schema.Schema
module Value = Objstore.Value
module Db = Uindex.Db
module Index = Uindex.Index
module Query = Uindex.Query
module Qparse = Uindex.Qparse

let requests = Metrics.counter ~subsystem:"server" "requests"
let request_errors = Metrics.counter ~subsystem:"server" "request_errors"

let request_ns =
  Metrics.histogram ~subsystem:"server"
    ~help:"request handling latency (ns)" "request_ns"

(* per-stage histograms fed by every served request *)
let h_queue_wait =
  Metrics.histogram ~subsystem:"server"
    ~help:"time between accept and a worker picking the connection (ns)"
    "queue_wait_ns"

let h_pin =
  Metrics.histogram ~subsystem:"server"
    ~help:"snapshot-session pin latency (ns)" "session_pin_ns"

let h_exec =
  Metrics.histogram ~subsystem:"server" ~help:"query execution latency (ns)"
    "exec_ns"

let h_render =
  Metrics.histogram ~subsystem:"server"
    ~help:"response JSON rendering latency (ns)" "render_ns"

let h_bytes =
  Metrics.histogram ~subsystem:"server" ~help:"response payload bytes"
    "bytes_out"

let slow_admitted =
  Metrics.counter ~subsystem:"server"
    ~help:"requests admitted to the slow-query log" "slow_queries"

let corruption_replies =
  Metrics.counter ~subsystem:"server"
    ~help:"requests answered with a typed data_corruption error"
    "corruption_replies"

(* --- telemetry configuration ------------------------------------------ *)

type telemetry = {
  tracing : bool;
  sample_every : int;
  slow_threshold_ns : int;
  slow_capacity : int;
}

let default_telemetry =
  {
    tracing = true;
    sample_every = 1;
    slow_threshold_ns = 10_000_000 (* 10 ms *);
    slow_capacity = 128;
  }

type slow_entry = {
  se_seq : int;
  se_trace : int;
  se_at : float;
  se_line : string;
  se_dur_ns : int;
  se_reads : int;
  se_span : Trace.span option;  (* None when the request was not traced *)
}

type t = {
  db : Db.t;
  schema : Schema.t;
  route : (int * Index.t) list;  (* query arity -> serving index *)
  tel : telemetry;
  slow : slow_entry Ring.t;
  seq : int Atomic.t;  (* server-assigned trace ids and the sampling clock *)
  started : float;
  shard_info : Json.t option;  (* topology of the shard this node serves *)
}

let create ?(telemetry = default_telemetry) ?shard_info ~schema db =
  let telemetry =
    { telemetry with sample_every = max 1 telemetry.sample_every }
  in
  let route =
    List.map (fun idx -> (Index.arity idx, idx)) (Db.indexes db)
  in
  {
    db;
    schema;
    route;
    tel = telemetry;
    slow = Ring.create (max 0 telemetry.slow_capacity);
    seq = Atomic.make 0;
    started = Unix.gettimeofday ();
    shard_info;
  }

let db t = t.db
let telemetry t = t.tel

(* --- rendering -------------------------------------------------------- *)

let value_json = function
  | Value.Null -> Json.Null
  | Value.Int i -> Json.Int i
  | Value.Str s -> Json.Str s
  | Value.Ref o -> Json.Obj [ ("ref", Json.Int o) ]
  | Value.Ref_set os -> Json.List (List.map (fun o -> Json.Int o) os)

let binding_json schema (b : Uindex.Exec.binding) =
  Json.Obj
    [
      ("value", value_json b.value);
      ( "comps",
        Json.List
          (List.map
             (fun (cls, oid) ->
               Json.List [ Json.Str (Schema.name schema cls); Json.Int oid ])
             b.comps) );
    ]

(* A canonical row order: Exec already returns a deterministic order per
   snapshot, but sorting rendered rows makes concurrent replies
   byte-comparable against a sequential baseline without trusting that. *)
let rows_json schema bindings =
  let rendered = List.map (binding_json schema) bindings in
  let keyed = List.map (fun j -> (Json.to_string j, j)) rendered in
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) keyed
  in
  Json.List (List.map snd sorted)

let hex_id = Printf.sprintf "%x"

let slow_entry_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.se_seq);
       ("trace_id", Json.Str (hex_id e.se_trace));
       ("at", Json.Float e.se_at);
       ("request", Json.Str e.se_line);
       ("dur_ns", Json.Int e.se_dur_ns);
       ("page_reads", Json.Int e.se_reads);
     ]
    @ match e.se_span with
      | None -> []
      | Some sp -> [ ("span", Trace.to_json sp) ])

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let slow_log_fields ?limit t =
  let entries = Ring.to_list t.slow in
  let entries =
    match limit with Some n -> take n entries | None -> entries
  in
  [
    ("threshold_ns", Json.Int t.tel.slow_threshold_ns);
    ("capacity", Json.Int (Ring.capacity t.slow));
    ("count", Json.Int (List.length entries));
    ("entries", Json.List (List.map slow_entry_json entries));
  ]

let slow_log_json ?limit t = Json.Obj (slow_log_fields ?limit t)

(* --- dispatch --------------------------------------------------------- *)

let stats_response t =
  let latency =
    match Metrics.find_summary Metrics.default "server.request_ns" with
    | Some s -> Metrics.summary_json s
    | None -> Json.Null
  in
  Protocol.ok
    [
      ("type", Json.Str "stats");
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
      ("request_latency", latency);
      ("metrics", Metrics.to_json Metrics.default);
      ("counters", Metrics.counters_json Metrics.default);
    ]

let health_response t =
  let metric name =
    Option.value ~default:0 (Metrics.find Metrics.default name)
  in
  let gc = Gc.quick_stat () in
  let acked = Db.acked_lsn t.db and durable = Db.durable_lsn t.db in
  let shard_fields =
    match t.shard_info with None -> [] | Some j -> [ ("shard", j) ]
  in
  Protocol.ok
    ([
      ("type", Json.Str "health");
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
      ("workers", Json.Int (metric "server.workers"));
      ("queue_depth", Json.Int (metric "server.queue_depth"));
      ("active_sessions", Json.Int (Db.active_sessions ()));
      ("acked_lsn", Json.Int acked);
      ("durable_lsn", Json.Int durable);
      ("lsn_lag", Json.Int (acked - durable));
      ("tracing", Json.Bool t.tel.tracing);
      ("fast_descent", Json.Bool (Btree.fast_descent ()));
      ( "supervisor",
        Json.Obj
          [
            ("worker_restarts", Json.Int (metric "server.worker_restarts"));
            ( "acceptor_restarts",
              Json.Int (metric "server.acceptor_restarts") );
            ( "restart_budget_left",
              Json.Int (metric "server.restart_budget_left") );
          ] );
      ("quarantine", Quarantine.summary_json ());
      ( "scrub",
        Json.Obj
          [
            ("passes", Json.Int (metric "scrub.passes"));
            ("pages", Json.Int (metric "scrub.pages"));
            ("issues", Json.Int (metric "scrub.issues"));
            ("last_issues", Json.Int (metric "scrub.last_issues"));
          ] );
      ( "slow_log",
        Json.Obj
          [
            ("length", Json.Int (Ring.length t.slow));
            ("capacity", Json.Int (Ring.capacity t.slow));
            ("threshold_ns", Json.Int t.tel.slow_threshold_ns);
          ] );
      ( "gc",
        Json.Obj
          [
            ("minor_words", Json.Int (int_of_float gc.Gc.minor_words));
            ("promoted_words", Json.Int (int_of_float gc.Gc.promoted_words));
            ("major_words", Json.Int (int_of_float gc.Gc.major_words));
            ("minor_collections", Json.Int gc.Gc.minor_collections);
            ("major_collections", Json.Int gc.Gc.major_collections);
            ("compactions", Json.Int gc.Gc.compactions);
            ("heap_words", Json.Int gc.Gc.heap_words);
            ("top_heap_words", Json.Int gc.Gc.top_heap_words);
          ] );
    ]
    @ shard_fields)

let slow_response ?limit t =
  Protocol.ok (("type", Json.Str "slow_queries") :: slow_log_fields ?limit t)

let ns_since t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)

let query_response ?root t ~algo text =
  match Qparse.parse t.schema text with
  | exception Qparse.Parse_error msg ->
      Protocol.error ~detail:msg Protocol.Parse_error
  | q -> (
      let arity = List.length q.Query.comps in
      match List.assoc_opt arity t.route with
      | None ->
          Protocol.error
            ~detail:
              (Printf.sprintf "no index serves arity-%d queries" arity)
            Protocol.Unroutable
      | Some idx ->
          let pin0 = Unix.gettimeofday () in
          let s = Db.open_session t.db in
          Fun.protect ~finally:(fun () -> Db.close_session s) @@ fun () ->
          let pin_ns = ns_since pin0 in
          (* pinning itself reads pages: each snapshot view's Btree.attach
             walks the leftmost path to recover the tree height, before
             the executor's stats baseline.  Charge those reads to the
             root span — exec children carry only descent reads, so
             [Trace.total root "page_reads"] equals every pager read the
             request issued, across all pinned indexes. *)
          let pin_reads =
            List.fold_left
              (fun acc v ->
                acc
                + (Storage.Pager.stats (Btree.pager (Index.tree v)))
                    .Storage.Stats.reads)
              0 (Db.session_indexes s)
          in
          let exec0 = Unix.gettimeofday () in
          let out, children =
            match root with
            | None -> (Db.session_query ~algo s idx q, [])
            | Some _ ->
                Trace.with_collector (fun () ->
                    Db.session_query ~algo s idx q)
          in
          let exec_ns = ns_since exec0 in
          Metrics.observe h_pin pin_ns;
          Metrics.observe h_exec exec_ns;
          (match root with
          | Some sp ->
              Trace.add_field sp "session_pin_ns" pin_ns;
              Trace.add_field sp "page_reads" pin_reads;
              Trace.add_field sp "exec_ns" exec_ns;
              Trace.add_field sp "pool_hits" out.pool_hits;
              List.iter (Trace.add_child sp) children
          | None -> ());
          Protocol.ok
            [
              ("type", Json.Str "rows");
              ("count", Json.Int (List.length out.bindings));
              ("rows", rows_json t.schema out.bindings);
              ("page_reads", Json.Int out.page_reads);
              ("pool_hits", Json.Int out.pool_hits);
              ("entries_scanned", Json.Int out.entries_scanned);
            ])

let dispatch ?deadline ?root t (req : Protocol.request) =
  let expired =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  if expired then
    Protocol.error ~detail:"deadline exceeded before execution"
      Protocol.Timeout
  else
    match req with
    | Protocol.Ping -> Protocol.ok [ ("type", Json.Str "pong") ]
    | Protocol.Quit -> Protocol.ok [ ("type", Json.Str "bye") ]
    | Protocol.Stats -> stats_response t
    | Protocol.Health -> health_response t
    | Protocol.Slow_queries limit -> slow_response ?limit t
    | Protocol.Query { algo; text } -> (
        try query_response ?root t ~algo text
        with
        | Storage.Storage_error.Corruption { page; component; detail } ->
            (* containment, not connection death: the page goes into the
               quarantine, the client gets a typed error, and every query
               that does not touch the damage keeps being served *)
            Metrics.incr corruption_replies;
            Quarantine.record ~source:"request" ?page ~component ~detail ();
            Protocol.error
              ~detail:
                (Printf.sprintf "%s%s: %s" component
                   (match page with
                   | Some p -> Printf.sprintf " (page %d)" p
                   | None -> "")
                   detail)
              Protocol.Corrupt
        | e -> Protocol.error ~detail:(Printexc.to_string e) Protocol.Internal)

(* echo a client-propagated trace id on every response, success or error *)
let attach_trace_id id = function
  | Json.Obj kvs -> Json.Obj (kvs @ [ ("trace_id", Json.Str (hex_id id)) ])
  | j -> j

(* The single request pipeline: parse result in, (response document,
   rendered payload) out.  Everything the server sends goes through
   here, so per-stage histograms, tracing, and slow-log admission see
   every request — including parse failures, which are logged spanless. *)
let serve_core ?(queued_ns = 0) ?deadline ~line t parsed =
  Metrics.incr requests;
  let t0 = Unix.gettimeofday () in
  let w0 = Gc.minor_words () in
  if queued_ns > 0 then Metrics.observe h_queue_wait queued_ns;
  let seq = Atomic.fetch_and_add t.seq 1 in
  let client_id =
    match parsed with Ok (id, _) -> id | Error _ -> None
  in
  let traced =
    t.tel.tracing
    && (match parsed with Ok _ -> true | Error _ -> false)
    && (client_id <> None || seq mod t.tel.sample_every = 0)
  in
  let trace_id = match client_id with Some id -> id | None -> seq in
  let root = if traced then Some (Trace.span "request") else None in
  (match root with
  | Some sp ->
      Trace.add_field sp "trace_id" trace_id;
      if queued_ns > 0 then Trace.add_field sp "queue_wait_ns" queued_ns
  | None -> ());
  let resp =
    match parsed with
    | Error msg -> Protocol.error ~detail:msg Protocol.Bad_request
    | Ok (_, req) -> dispatch ?deadline ?root t req
  in
  let resp =
    match client_id with
    | Some id -> attach_trace_id id resp
    | None -> resp
  in
  let render0 = Unix.gettimeofday () in
  let payload = Json.to_string resp in
  let render_ns = ns_since render0 in
  let bytes_out = String.length payload in
  Metrics.observe h_render render_ns;
  Metrics.observe h_bytes bytes_out;
  let dur_ns = ns_since t0 in
  Metrics.observe request_ns dur_ns;
  (match root with
  | Some sp ->
      Trace.add_field sp "render_ns" render_ns;
      Trace.add_field sp "bytes_out" bytes_out;
      Trace.add_field sp "alloc_words"
        (int_of_float (Gc.minor_words () -. w0));
      Trace.add_field sp "dur_ns" dur_ns
  | None -> ());
  if Ring.capacity t.slow > 0 && dur_ns >= t.tel.slow_threshold_ns then begin
    Metrics.incr slow_admitted;
    (* traced: every read the request issued (pin + descent, the span
       total); untraced fallback: the executor's descent reads from the
       response — exact pager.reads reconciliation needs tracing on *)
    let se_reads =
      match root with
      | Some sp -> Trace.total sp "page_reads"
      | None -> (
          match Json.member "page_reads" resp with
          | Some (Json.Int n) -> n
          | _ -> 0)
    in
    Ring.add t.slow
      {
        se_seq = seq;
        se_trace = trace_id;
        se_at = t0;
        se_line = line;
        se_dur_ns = dur_ns;
        se_reads;
        se_span = root;
      }
  end;
  if not (Protocol.response_is_ok resp) then Metrics.incr request_errors;
  (resp, payload)

let handle ?deadline t (req : Protocol.request) =
  fst
    (serve_core ?deadline ~line:(Protocol.request_to_string req) t
       (Ok (None, req)))

let handle_line ?deadline t line =
  fst (serve_core ?deadline ~line t (Protocol.parse_line line))

let serve_line ?queued_ns ?deadline t line =
  snd (serve_core ?queued_ns ?deadline ~line t (Protocol.parse_line line))
