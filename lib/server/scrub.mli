(** The online background scrub: a domain that periodically re-verifies
    every serving index against a pinned snapshot, while queries keep
    running.

    Each pass opens a read session (the same snapshot machinery queries
    use, so the scrub never blocks the writer or the readers), runs the
    offline verifier's structural passes ({!Uindex.Verify.check}) over
    each index view with an IO throttle — sleeping every few page reads
    so a big file does not monopolize the disk — and feeds every finding
    into the {!Quarantine}.  A damaged page is therefore reported even
    if no query ever touches it, closing the gap between "no request
    failed" and "the file is intact".

    Pass/issue counts surface as [scrub.*] metrics and in the [health]
    response. *)

type config = {
  every : float;  (** seconds between passes (> 0) *)
  pause_every : int;  (** sleep after this many page reads *)
  pause : float;  (** seconds slept at each throttle point *)
}

val default_config : config
(** A pass every 30 s, pausing 1 ms every 64 pages. *)

type t

val start : ?config:config -> Uindex.Db.t -> t
(** Spawns the scrub domain.  The first pass runs after [every]
    seconds. *)

val passes : t -> int
(** Completed passes so far. *)

val stop : t -> unit
(** Stops after at most the current pass's remaining page reads (the
    throttle stops sleeping once a stop is requested) and joins the
    domain.  Idempotent. *)
