(** Deterministic, seeded network-fault injection for the socket server.

    An armed injector wraps the server side of every connection's frame
    I/O and, with per-fault probabilities drawn from a seeded [splitmix64]
    stream, injects the classic serving failure modes:

    - {b reset}: the connection is closed abruptly instead of a reply;
    - {b partial}: only a prefix of the reply frame is written before the
      close — the client sees a frame truncated mid-payload;
    - {b truncate}: the close lands inside the 4-byte length header — a
      frame truncated before the payload even starts;
    - {b delay}: an injected pause of [delay-ms] before the operation;
    - {b slow-read}: the request frame is consumed one byte at a time
      with pauses (a server-side slow-loris, exercising peer deadlines);
    - {b crash}: {!Crash} is raised instead of serving the request,
      killing the worker domain — the hook that exercises supervision.

    Every decision comes from the spec's seed, so a chaos run is
    reproducible; every injection increments a [chaos.*] counter, so a
    soak can prove the storm actually happened.  The injector never
    fabricates or mutates payload {e bytes} — replies are either the
    true bytes, a strict prefix of them, or nothing — which is what
    makes the differential property ("byte-identical answers or typed
    errors") meaningful under chaos. *)

module Rng : sig
  (** splitmix64 — the same generator the workload library uses, inlined
      here so the server library stays dependency-free.  Not
      thread-safe; one stream per owner. *)

  type t

  val create : int -> t

  val float : t -> float
  (** uniform in [0, 1) *)

  val int : t -> int -> int
  (** [int t bound] — uniform in [0, bound), [bound > 0]. *)
end

type spec = {
  seed : int;
  reset : float;  (** P(close instead of replying) *)
  partial : float;  (** P(write a strict prefix of the reply, then close) *)
  truncate : float;  (** P(cut the reply inside its length header) *)
  delay : float;  (** P(pause [delay_ms] before a read or write) *)
  slow_read : float;  (** P(consume the request byte-at-a-time) *)
  crash : float;  (** P(raise {!Crash} instead of serving) *)
  delay_ms : float;  (** pause length for [delay] and [slow_read] *)
}

val none : spec
(** All probabilities zero, seed 0 — injects nothing. *)

val parse : string -> (spec, string) result
(** Parses the [--chaos] grammar: comma-separated [key=value] pairs with
    keys [seed], [reset], [partial], [truncate], [delay], [slow-read],
    [crash] (probabilities in [0, 1]) and [delay-ms] (milliseconds).
    Unset keys default to {!none}'s fields (with [delay_ms] = 2).
    Example: ["seed=7,reset=0.05,partial=0.1,delay=0.2,delay-ms=3"]. *)

val spec_to_string : spec -> string
(** Canonical round-trippable spelling of a spec. *)

exception Crash
(** The deliberate worker-crash fault.  The server's worker loop lets it
    escape (after closing the victim connection), so the domain actually
    dies and the supervisor must respawn it. *)

type t
(** An armed injector: a spec plus its mutex-guarded RNG stream. *)

val arm : spec -> t
val spec : t -> spec

val read_frame : t option -> Unix.file_descr -> Protocol.read_result
(** {!Protocol.read_frame} with [delay] and [slow-read] faults.  [None]
    is the fault-free fast path. *)

val maybe_crash : t option -> unit
(** Raises {!Crash} with probability [crash]. *)

val write_frame : t option -> Unix.file_descr -> string -> [ `Sent | `Injected ]
(** {!Protocol.write_frame} with [delay], [reset], [partial] and
    [truncate] faults.  [`Injected] means the reply was dropped or cut
    short and the connection must be closed.  [Unix.Unix_error]
    propagates as from {!Protocol.write_frame}. *)
