module Json = Obs.Json

let src = Logs.Src.create "uindex.server" ~doc:"query service socket server"

module Log = (val Logs.src_log src : Logs.LOG)

let g_workers =
  Obs.Metrics.gauge ~subsystem:"server" ~help:"worker domains serving"
    "workers"

let g_queue_depth =
  Obs.Metrics.gauge ~subsystem:"server"
    ~help:"connections waiting in the accept queue" "queue_depth"

type addr = Unix_sock of string | Tcp of string * int

type config = {
  addr : addr;
  workers : int;
  backlog : int;
  request_timeout : float;  (* seconds; 0. = no deadline *)
}

let default_config addr =
  { addr; workers = 4; backlog = 64; request_timeout = 5. }

type conn = { fd : Unix.file_descr; enqueued_at : float }

type t = {
  service : Service.t;
  config : config;
  listen_fd : Unix.file_descr;
  queue : conn Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  stopping : bool Atomic.t;
  mutable acceptor : unit Domain.t option;
  mutable pool : unit Domain.t list;
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_quietly fd json =
  try Protocol.write_frame fd (Json.to_string json)
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let send_raw_quietly fd payload =
  try Protocol.write_frame fd payload
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* --- binding ---------------------------------------------------------- *)

let unlink_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> invalid_arg (Printf.sprintf "Server: %s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let bind_listener config =
  match config.addr with
  | Unix_sock path ->
      unlink_stale_socket path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd (max 8 config.backlog);
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let ip = Unix.inet_addr_of_string host in
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd (max 8 config.backlog);
      fd

let bound_addr t = Unix.getsockname t.listen_fd

(* --- acceptor --------------------------------------------------------- *)

let enqueue t fd =
  Mutex.lock t.qlock;
  let full = Queue.length t.queue >= t.config.backlog in
  if not full then begin
    Queue.push { fd; enqueued_at = Unix.gettimeofday () } t.queue;
    Obs.Metrics.set g_queue_depth (Queue.length t.queue);
    Condition.signal t.qcond
  end;
  Mutex.unlock t.qlock;
  if full then begin
    (* shed load in the acceptor: a typed reply beats a hung client *)
    Log.warn (fun m -> m "accept queue full (%d): shedding" t.config.backlog);
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1. with Unix.Unix_error _ -> ());
    send_quietly fd (Protocol.error ~detail:"accept queue full" Protocol.Overloaded);
    close_quietly fd
  end

let rec accept_loop t =
  if not (Atomic.get t.stopping) then begin
    (* poll with a timeout so a quiet listener still notices [stop] *)
    (match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> enqueue t fd
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    accept_loop t
  end

(* --- workers ---------------------------------------------------------- *)

(* next queued connection; None only when stopping AND the queue has
   drained — pending requests are served through shutdown *)
let pop t =
  Mutex.lock t.qlock;
  while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
    Condition.wait t.qcond t.qlock
  done;
  let c = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Obs.Metrics.set g_queue_depth (Queue.length t.queue);
  Mutex.unlock t.qlock;
  c

let serve_conn t conn =
  let timeout = t.config.request_timeout in
  let fd = conn.fd in
  if timeout > 0. then begin
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
  end;
  if timeout > 0. && Unix.gettimeofday () -. conn.enqueued_at > timeout then begin
    (* went stale waiting in the accept queue: tell the client, not limbo *)
    send_quietly fd (Protocol.error ~detail:"queued past deadline" Protocol.Timeout);
    close_quietly fd
  end
  else begin
    (* the accept-queue wait belongs to the connection's first request;
       subsequent requests on the same connection waited zero *)
    let queued_ns =
      ref
        (int_of_float
           ((Unix.gettimeofday () -. conn.enqueued_at) *. 1e9))
    in
    let rec loop () =
      match Protocol.read_frame fd with
      | Protocol.Eof | Protocol.Truncated -> close_quietly fd
      | Protocol.Too_large n ->
          (* stream position is unrecoverable after a hostile length *)
          send_quietly fd
            (Protocol.error
               ~detail:(Printf.sprintf "frame of %d bytes exceeds %d" n Protocol.max_frame)
               Protocol.Frame_too_large);
          close_quietly fd
      | Protocol.Frame payload ->
          let deadline =
            if timeout > 0. then Some (Unix.gettimeofday () +. timeout)
            else None
          in
          let wait = !queued_ns in
          queued_ns := 0;
          send_raw_quietly fd
            (Service.serve_line ~queued_ns:wait ?deadline t.service payload);
          if
            match Protocol.parse_request payload with
            | Ok Protocol.Quit -> true
            | _ -> false
          then close_quietly fd
          else loop ()
    in
    try loop ()
    with
    | Unix.Unix_error
        ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT | Unix.ECONNRESET
          | Unix.EPIPE ),
          _,
          _ ) ->
        close_quietly fd
  end

let worker_loop t =
  let rec go () =
    match pop t with
    | None -> ()
    | Some conn ->
        (* a worker must survive anything one connection throws at it *)
        (try serve_conn t conn
         with e ->
           Log.err (fun m -> m "worker: %s" (Printexc.to_string e));
           close_quietly conn.fd);
        go ()
  in
  go ()

(* --- lifecycle -------------------------------------------------------- *)

let start service config =
  if config.workers < 1 then invalid_arg "Server.start: workers < 1";
  if config.backlog < 1 then invalid_arg "Server.start: backlog < 1";
  (* a peer that disconnects mid-reply must surface as EPIPE on the
     write, not kill the process *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = bind_listener config in
  let t =
    {
      service;
      config;
      listen_fd;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stopping = Atomic.make false;
      acceptor = None;
      pool = [];
    }
  in
  t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t));
  t.pool <-
    List.init config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  Obs.Metrics.set g_workers config.workers;
  Log.info (fun m -> m "serving with %d workers" config.workers);
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Mutex.lock t.qlock;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qlock;
    Option.iter Domain.join t.acceptor;
    t.acceptor <- None;
    (* wake workers again in case they raced the first broadcast *)
    Mutex.lock t.qlock;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qlock;
    List.iter Domain.join t.pool;
    t.pool <- [];
    Obs.Metrics.set g_workers 0;
    (* the pool drained the queue before exiting; anything left was
       enqueued in the closing race — refuse it cleanly *)
    Queue.iter
      (fun c ->
        send_quietly c.fd (Protocol.error ~detail:"server stopping" Protocol.Overloaded);
        close_quietly c.fd)
      t.queue;
    Queue.clear t.queue;
    close_quietly t.listen_fd;
    (match t.config.addr with
    | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    (* drain-then-sync: shutdown leaves nothing in the journal *)
    Uindex.Db.sync (Service.db t.service);
    Log.info (fun m -> m "stopped")
  end
