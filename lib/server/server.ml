module Json = Obs.Json

let src = Logs.Src.create "uindex.server" ~doc:"query service socket server"

module Log = (val Logs.src_log src : Logs.LOG)

let g_workers =
  Obs.Metrics.gauge ~subsystem:"server" ~help:"worker domains serving"
    "workers"

let g_queue_depth =
  Obs.Metrics.gauge ~subsystem:"server"
    ~help:"connections waiting in the accept queue" "queue_depth"

let c_worker_restarts =
  Obs.Metrics.counter ~subsystem:"server"
    ~help:"dead worker domains respawned by the supervisor" "worker_restarts"

let c_acceptor_restarts =
  Obs.Metrics.counter ~subsystem:"server"
    ~help:"dead acceptor domains respawned by the supervisor"
    "acceptor_restarts"

let g_budget_left =
  Obs.Metrics.gauge ~subsystem:"server"
    ~help:"domain respawns left in the restart budget" "restart_budget_left"

type addr = Unix_sock of string | Tcp of string * int

type config = {
  addr : addr;
  workers : int;
  backlog : int;
  request_timeout : float;  (* seconds; 0. = no deadline *)
  chaos : Chaos.t option;  (* armed fault injector; None = serve honestly *)
  restart_budget : int;  (* domain respawns before degrading *)
}

let default_config addr =
  {
    addr;
    workers = 4;
    backlog = 64;
    request_timeout = 5.;
    chaos = None;
    restart_budget = 8;
  }

type conn = { fd : Unix.file_descr; enqueued_at : float }

(* what a worker serves requests through: the plain query service, or
   any other request pipeline with the same line-in/payload-out contract
   (e.g. a shard router) *)
type handler = {
  serve : queued_ns:int -> deadline:float option -> string -> string;
  on_stop : unit -> unit;
}

let handler_of_service service =
  {
    serve =
      (fun ~queued_ns ~deadline line ->
        Service.serve_line ~queued_ns ?deadline service line);
    on_stop = (fun () -> Uindex.Db.sync (Service.db service));
  }

type t = {
  handler : handler;
  config : config;
  listen_fd : Unix.file_descr;
  queue : conn Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  stopping : bool Atomic.t;
  (* supervision: dying domains report their slot (-1 = acceptor) here;
     the supervisor joins the corpse and respawns it under the budget *)
  dead : int Queue.t;
  dlock : Mutex.t;
  dcond : Condition.t;
  budget_left : int Atomic.t;
  pool : unit Domain.t option array;
  mutable acceptor : unit Domain.t option;
  mutable supervisor : unit Domain.t option;
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_quietly fd json =
  try Protocol.write_frame fd (Json.to_string json)
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* --- binding ---------------------------------------------------------- *)

let unlink_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> invalid_arg (Printf.sprintf "Server: %s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let bind_listener config =
  match config.addr with
  | Unix_sock path ->
      unlink_stale_socket path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd (max 8 config.backlog);
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let ip = Unix.inet_addr_of_string host in
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd (max 8 config.backlog);
      fd

let bound_addr t = Unix.getsockname t.listen_fd

(* --- acceptor --------------------------------------------------------- *)

let enqueue t fd =
  Mutex.lock t.qlock;
  let full = Queue.length t.queue >= t.config.backlog in
  if not full then begin
    Queue.push { fd; enqueued_at = Unix.gettimeofday () } t.queue;
    Obs.Metrics.set g_queue_depth (Queue.length t.queue);
    Condition.signal t.qcond
  end;
  Mutex.unlock t.qlock;
  if full then begin
    (* shed load in the acceptor: a typed reply beats a hung client *)
    Log.warn (fun m -> m "accept queue full (%d): shedding" t.config.backlog);
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1. with Unix.Unix_error _ -> ());
    send_quietly fd (Protocol.error ~detail:"accept queue full" Protocol.Overloaded);
    close_quietly fd
  end

let rec accept_loop t =
  if not (Atomic.get t.stopping) then begin
    (* poll with a timeout so a quiet listener still notices [stop] *)
    (match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> enqueue t fd
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    accept_loop t
  end

(* --- workers ---------------------------------------------------------- *)

(* next queued connection; None only when stopping AND the queue has
   drained — pending requests are served through shutdown *)
let pop t =
  Mutex.lock t.qlock;
  while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
    Condition.wait t.qcond t.qlock
  done;
  let c = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Obs.Metrics.set g_queue_depth (Queue.length t.queue);
  Mutex.unlock t.qlock;
  c

let serve_conn t conn =
  let timeout = t.config.request_timeout in
  let chaos = t.config.chaos in
  let fd = conn.fd in
  if timeout > 0. then begin
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
  end;
  if timeout > 0. && Unix.gettimeofday () -. conn.enqueued_at > timeout then begin
    (* went stale waiting in the accept queue: tell the client, not limbo *)
    send_quietly fd (Protocol.error ~detail:"queued past deadline" Protocol.Timeout);
    close_quietly fd
  end
  else begin
    (* the accept-queue wait belongs to the connection's first request;
       subsequent requests on the same connection waited zero *)
    let queued_ns =
      ref
        (int_of_float
           ((Unix.gettimeofday () -. conn.enqueued_at) *. 1e9))
    in
    let rec loop () =
      match Chaos.read_frame chaos fd with
      | Protocol.Eof | Protocol.Truncated -> close_quietly fd
      | Protocol.Too_large n ->
          (* stream position is unrecoverable after a hostile length *)
          send_quietly fd
            (Protocol.error
               ~detail:(Printf.sprintf "frame of %d bytes exceeds %d" n Protocol.max_frame)
               Protocol.Frame_too_large);
          close_quietly fd
      | Protocol.Frame payload -> (
          (* the injected worker crash: raises out of serve_conn so the
             domain really dies and supervision has to earn its keep *)
          Chaos.maybe_crash chaos;
          let deadline =
            if timeout > 0. then Some (Unix.gettimeofday () +. timeout)
            else None
          in
          let wait = !queued_ns in
          queued_ns := 0;
          let reply = t.handler.serve ~queued_ns:wait ~deadline payload in
          let sent =
            try Chaos.write_frame chaos fd reply
            with Unix.Unix_error _ | Invalid_argument _ -> `Sent
          in
          match sent with
          | `Injected ->
              (* the reply was dropped or cut short: the connection is
                 poisoned, kill it like a real fault would *)
              close_quietly fd
          | `Sent ->
              if
                match Protocol.parse_request payload with
                | Ok Protocol.Quit -> true
                | _ -> false
              then close_quietly fd
              else loop ())
    in
    try loop ()
    with
    | Unix.Unix_error
        ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT | Unix.ECONNRESET
          | Unix.EPIPE ),
          _,
          _ ) ->
        close_quietly fd
  end

let worker_loop t =
  let rec go () =
    match pop t with
    | None -> ()
    | Some conn ->
        (* a worker must survive anything one connection throws at it —
           except the deliberate chaos crash, which must kill the domain *)
        (match serve_conn t conn with
        | () -> ()
        | exception Chaos.Crash ->
            close_quietly conn.fd;
            raise Chaos.Crash
        | exception e ->
            Log.err (fun m -> m "worker: %s" (Printexc.to_string e));
            (* best-effort typed reply before closing, so a client can
               tell a server bug from network death *)
            send_quietly conn.fd
              (Protocol.error
                 ~detail:("unhandled server error: " ^ Printexc.to_string e)
                 Protocol.Internal);
            close_quietly conn.fd);
        go ()
  in
  go ()

(* --- supervision ------------------------------------------------------- *)

let report_death t slot =
  Mutex.lock t.dlock;
  Queue.push slot t.dead;
  Condition.signal t.dcond;
  Mutex.unlock t.dlock

let worker_body t slot =
  try worker_loop t
  with e ->
    Log.err (fun m -> m "worker %d died: %s" slot (Printexc.to_string e));
    report_death t slot

let acceptor_body t =
  try accept_loop t
  with e ->
    Log.err (fun m -> m "acceptor died: %s" (Printexc.to_string e));
    report_death t (-1)

let live_workers t =
  Array.fold_left (fun n d -> if d = None then n else n + 1) 0 t.pool

(* joins each corpse as it is reported and respawns it while the budget
   lasts; an exhausted budget degrades (fewer workers) instead of
   respawning forever — a crash loop should page someone, not spin *)
let rec supervisor_loop t =
  Mutex.lock t.dlock;
  while Queue.is_empty t.dead && not (Atomic.get t.stopping) do
    Condition.wait t.dcond t.dlock
  done;
  let slot = if Queue.is_empty t.dead then None else Some (Queue.pop t.dead) in
  Mutex.unlock t.dlock;
  match slot with
  | None -> ()  (* stopping and every death handled *)
  | Some slot ->
      (* the death report was the domain's last act; reap it *)
      if slot < 0 then begin
        Option.iter Domain.join t.acceptor;
        t.acceptor <- None
      end
      else begin
        Option.iter Domain.join t.pool.(slot);
        t.pool.(slot) <- None
      end;
      let budget = Atomic.get t.budget_left in
      if budget > 0 && not (Atomic.get t.stopping) then begin
        Atomic.decr t.budget_left;
        Obs.Metrics.set g_budget_left (budget - 1);
        if slot < 0 then begin
          Obs.Metrics.incr c_acceptor_restarts;
          Log.warn (fun m ->
              m "supervisor: respawning acceptor (%d respawns left)"
                (budget - 1));
          t.acceptor <- Some (Domain.spawn (fun () -> acceptor_body t))
        end
        else begin
          Obs.Metrics.incr c_worker_restarts;
          Log.warn (fun m ->
              m "supervisor: respawning worker %d (%d respawns left)" slot
                (budget - 1));
          t.pool.(slot) <- Some (Domain.spawn (fun () -> worker_body t slot))
        end
      end
      else
        Log.err (fun m ->
            m "supervisor: restart budget exhausted, %s stays down"
              (if slot < 0 then "acceptor" else "worker " ^ string_of_int slot));
      Obs.Metrics.set g_workers (live_workers t);
      supervisor_loop t

(* --- lifecycle -------------------------------------------------------- *)

let start_handler handler config =
  if config.workers < 1 then invalid_arg "Server.start: workers < 1";
  if config.backlog < 1 then invalid_arg "Server.start: backlog < 1";
  if config.restart_budget < 0 then
    invalid_arg "Server.start: restart_budget < 0";
  (* a peer that disconnects mid-reply must surface as EPIPE on the
     write, not kill the process *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = bind_listener config in
  let t =
    {
      handler;
      config;
      listen_fd;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stopping = Atomic.make false;
      dead = Queue.create ();
      dlock = Mutex.create ();
      dcond = Condition.create ();
      budget_left = Atomic.make config.restart_budget;
      pool = Array.make config.workers None;
      acceptor = None;
      supervisor = None;
    }
  in
  t.acceptor <- Some (Domain.spawn (fun () -> acceptor_body t));
  for slot = 0 to config.workers - 1 do
    t.pool.(slot) <- Some (Domain.spawn (fun () -> worker_body t slot))
  done;
  t.supervisor <- Some (Domain.spawn (fun () -> supervisor_loop t));
  Obs.Metrics.set g_workers config.workers;
  Obs.Metrics.set g_budget_left config.restart_budget;
  Log.info (fun m ->
      m "serving with %d workers%s" config.workers
        (match config.chaos with
        | None -> ""
        | Some c -> " [chaos: " ^ Chaos.spec_to_string (Chaos.spec c) ^ "]"));
  t

let start service config = start_handler (handler_of_service service) config

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* wake the pool (to drain) and the supervisor (to exit); the
       supervisor is joined first so nothing mutates the pool under us *)
    Mutex.lock t.qlock;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qlock;
    Mutex.lock t.dlock;
    Condition.broadcast t.dcond;
    Mutex.unlock t.dlock;
    Option.iter Domain.join t.supervisor;
    t.supervisor <- None;
    Option.iter Domain.join t.acceptor;
    t.acceptor <- None;
    (* wake workers again in case they raced the first broadcast *)
    Mutex.lock t.qlock;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qlock;
    Array.iteri
      (fun i d ->
        Option.iter Domain.join d;
        t.pool.(i) <- None)
      t.pool;
    Obs.Metrics.set g_workers 0;
    (* the pool drained the queue before exiting; anything left was
       enqueued in the closing race — refuse it cleanly *)
    Queue.iter
      (fun c ->
        send_quietly c.fd (Protocol.error ~detail:"server stopping" Protocol.Overloaded);
        close_quietly c.fd)
      t.queue;
    Queue.clear t.queue;
    close_quietly t.listen_fd;
    (match t.config.addr with
    | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    (* drain-then-sync: shutdown leaves nothing in the journal *)
    t.handler.on_stop ();
    Log.info (fun m -> m "stopped")
  end
