(** The socket server: a supervised worker pool serving the wire protocol
    over a Unix-domain or TCP listener.

    One acceptor domain polls the listener and pushes connections onto a
    bounded queue; [workers] domains pop connections and serve requests
    through {!Service.handle}.  Overflowing the queue gets the client a
    typed [overloaded] reply instead of a hang; a connection that waited
    in the queue past the request timeout gets a [timeout] reply; socket
    reads and writes carry OS-level timeouts so a stalled peer can never
    pin a worker.  Workers survive every per-connection failure, and
    send a best-effort typed [internal] reply before closing when one
    slips past the request pipeline.

    {b Supervision.}  A supervisor domain watches for dying worker or
    acceptor domains (the only way a domain dies is an escaped
    exception — e.g. the deliberate {!Chaos.Crash} fault), joins each
    corpse and respawns a fresh domain in its slot while the
    [restart_budget] lasts.  An exhausted budget degrades capacity
    instead of masking a crash loop.  Restart counts surface as
    [server.worker_restarts] / [server.acceptor_restarts] and in the
    [health] response.

    {b Chaos.}  An armed {!Chaos.t} in the config wraps every
    connection's frame I/O with seeded fault injection — see {!Chaos}.

    {!stop} is graceful: the supervisor and acceptor quit, workers
    finish every queued connection, the listener closes (Unix-domain
    socket files are unlinked), and the database syncs — after a clean
    stop the journal is empty. *)

type addr =
  | Unix_sock of string  (** path to a Unix-domain socket *)
  | Tcp of string * int  (** dotted-quad bind address and port; port [0]
                             picks an ephemeral port (see {!bound_addr}) *)

type config = {
  addr : addr;
  workers : int;  (** worker domains (>= 1) *)
  backlog : int;  (** max queued connections before shedding (>= 1) *)
  request_timeout : float;
      (** per-request deadline and socket timeout in seconds; [0.]
          disables both *)
  chaos : Chaos.t option;
      (** armed fault injector; [None] serves honestly *)
  restart_budget : int;
      (** domain respawns before the supervisor gives up (>= 0) *)
}

val default_config : addr -> config
(** 4 workers, backlog 64, 5 s timeout, no chaos, restart budget 8. *)

type t

type handler = {
  serve : queued_ns:int -> deadline:float option -> string -> string;
      (** one request line in, one JSON reply out.  [queued_ns] is the
          time the connection waited in the accept queue; [deadline] is
          an absolute [Unix.gettimeofday] cutoff (or [None]). *)
  on_stop : unit -> unit;
      (** called once after a graceful {!stop} has drained the workers —
          the place to sync a database or flush downstream state. *)
}
(** What the worker pool actually runs.  {!start} wraps a {!Service.t}
    in one; {!start_handler} accepts any implementation, letting a
    shard router (or any other request processor) sit behind the same
    listener, queueing, chaos and supervision machinery. *)

val handler_of_service : Service.t -> handler
(** [serve] is {!Service.serve_line}; [on_stop] syncs the service's
    database. *)

val start_handler : handler -> config -> t
(** {!start} generalized over the request handler. *)

val start : Service.t -> config -> t
(** Binds, listens and spawns the acceptor, worker and supervisor
    domains.  Raises [Unix.Unix_error] if the address cannot be bound
    and [Invalid_argument] on nonsensical config or a non-socket file at
    a Unix-domain path (a stale socket file is unlinked and rebound).
    Sets the process's [SIGPIPE] disposition to ignore, so peers that
    vanish mid-reply surface as [EPIPE] writes. *)

val stop : t -> unit
(** Graceful shutdown as described above; blocks until every domain has
    joined and the database has synced.  Idempotent. *)

val bound_addr : t -> Unix.sockaddr
(** The listener's actual address — the chosen port for [Tcp (_, 0)]. *)
