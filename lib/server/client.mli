(** A blocking client for the wire protocol: one connection, one request
    in flight at a time.  Not thread-safe — one client per thread.

    Every failure is typed ({!Error}); no bare [Failure] and no raw
    [Unix.Unix_error] escapes the request path.  Reads and writes carry
    OS-level deadlines ([SO_RCVTIMEO]/[SO_SNDTIMEO], mirroring the
    server side), so a stalled or chaos-injected server surfaces as
    {!Timed_out} instead of a hang.

    {!retrying} layers a bounded exponential-backoff-with-jitter retry
    policy on top: transport failures and replies documented "retry
    later" ([overloaded], [timeout]) are retried against a fresh
    connection; malformed input and other typed errors fail fast. *)

type failure =
  | Connect_failed of string  (** connection could not be established *)
  | Timed_out  (** a read/write deadline expired *)
  | Reset  (** the stream died mid-frame (reset, [EPIPE], truncation) *)
  | Closed_by_server
      (** clean close instead of a reply — e.g. after [quit], a fatal
          framing error, or shutdown *)
  | Bad_frame of string  (** oversized or unparseable reply frame *)
  | Rejected of { kind : string; detail : string }
      (** an admin helper got a typed error reply *)
  | Exhausted of { attempts : int; last : string }
      (** the retry policy gave up; [last] describes the final failure *)

exception Error of failure

val failure_to_string : failure -> string

type t

val connect_unix : ?timeout:float -> string -> t
val connect_tcp : ?timeout:float -> string -> int -> t

val connect_addr : ?timeout:float -> Unix.sockaddr -> t
(** Connects to whatever {!Server.bound_addr} returned.  [?timeout]
    (default 30 s, [0.] disables) sets both socket deadlines; all
    connectors raise [Error (Connect_failed _)] on failure. *)

val parse_spec : string -> [ `Tcp of string * int | `Unix of string ]
(** Classifies a [--connect] endpoint spec: ["HOST:PORT"] (an empty
    host means 127.0.0.1) when the suffix after the last [':'] parses
    as a port, otherwise a Unix socket path. *)

val connect_spec : ?timeout:float -> string -> t
(** {!parse_spec} then connect — what [uindex stats --connect] and
    [uindex top --connect] use. *)

val request_raw : t -> string -> string
(** Sends one request line, returns the raw response payload —
    byte-exact, for differential comparison across clients.  Raises
    {!Error} ({!Timed_out}, {!Reset}, {!Closed_by_server},
    {!Bad_frame}). *)

val request : t -> string -> Obs.Json.t
(** {!request_raw} parsed as JSON; an unparseable reply raises
    [Error (Bad_frame _)]. *)

val stats : t -> Obs.Json.t
val health : t -> Obs.Json.t

val slow_queries : ?limit:int -> t -> Obs.Json.t
(** Admin requests, with the [ok] envelope checked: each returns the
    successful response document and raises [Error (Rejected _)] on an
    error response. *)

val close : t -> unit

(** {1 Retrying requests} *)

type retry_policy = {
  attempts : int;  (** total attempts per request, >= 1 *)
  base_delay : float;  (** first backoff, seconds *)
  max_delay : float;  (** backoff cap, seconds *)
  jitter : float;  (** multiplicative jitter fraction in [0, 1] *)
  retry_seed : int;  (** seeds the jitter stream — runs are replayable *)
}

val default_retry_policy : retry_policy
(** 5 attempts, 50 ms doubling to a 1 s cap, 0.5 jitter, seed 1. *)

type retrying
(** A reconnecting handle: the endpoint, a policy, and the current
    connection (re-established on demand after a failure). *)

val retrying : ?timeout:float -> ?policy:retry_policy -> string -> retrying
(** Over a {!connect_spec} endpoint.  Connection is lazy: a server that
    is briefly down (e.g. mid-[supervise] restart) only costs retries. *)

val retrying_addr :
  ?timeout:float -> ?policy:retry_policy -> Unix.sockaddr -> retrying

val retry_request_raw : retrying -> string -> string
(** Sends one request line, retrying with backoff on transport failures
    ({!Connect_failed}, {!Timed_out}, {!Reset}, {!Closed_by_server})
    and on [overloaded]/[timeout] error replies.  Returns the raw bytes
    of the first conclusive reply — a success {e or} a non-retryable
    typed error ([bad_request], [parse_error], [unroutable],
    [frame_too_large], [data_corruption], [internal]); the caller
    inspects the envelope.  Raises [Error (Exhausted _)] when the
    policy runs out and [Error (Bad_frame _)] immediately on a
    malformed reply. *)

val retry_request : retrying -> string -> Obs.Json.t

val retry_count : retrying -> int
(** Retries this handle has performed (for availability accounting). *)

val retry_close : retrying -> unit
