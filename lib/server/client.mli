(** A minimal blocking client for the wire protocol: one connection, one
    request in flight at a time.  Not thread-safe — one client per
    thread. *)

type t

val connect_unix : string -> t
val connect_tcp : string -> int -> t

val connect_addr : Unix.sockaddr -> t
(** Connects to whatever {!Server.bound_addr} returned. *)

val parse_spec : string -> [ `Tcp of string * int | `Unix of string ]
(** Classifies a [--connect] endpoint spec: ["HOST:PORT"] (an empty
    host means 127.0.0.1) when the suffix after the last [':'] parses
    as a port, otherwise a Unix socket path. *)

val connect_spec : string -> t
(** {!parse_spec} then connect — what [uindex stats --connect] and
    [uindex top --connect] use. *)

exception Closed_by_server
(** The server closed the connection instead of replying — e.g. after
    [quit], a fatal framing error, or shutdown. *)

val request_raw : t -> string -> string
(** Sends one request line, returns the raw response payload —
    byte-exact, for differential comparison across clients.  Raises
    {!Closed_by_server}, or [Unix.Unix_error] on transport failure. *)

val request : t -> string -> Obs.Json.t
(** {!request_raw} parsed as JSON. *)

val stats : t -> Obs.Json.t
val health : t -> Obs.Json.t

val slow_queries : ?limit:int -> t -> Obs.Json.t
(** Admin requests, with the [ok] envelope checked: each returns the
    successful response document and raises [Failure] on an error
    response (reporting the typed error kind). *)

val close : t -> unit
