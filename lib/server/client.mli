(** A minimal blocking client for the wire protocol: one connection, one
    request in flight at a time.  Not thread-safe — one client per
    thread. *)

type t

val connect_unix : string -> t
val connect_tcp : string -> int -> t

val connect_addr : Unix.sockaddr -> t
(** Connects to whatever {!Server.bound_addr} returned. *)

exception Closed_by_server
(** The server closed the connection instead of replying — e.g. after
    [quit], a fatal framing error, or shutdown. *)

val request_raw : t -> string -> string
(** Sends one request line, returns the raw response payload —
    byte-exact, for differential comparison across clients.  Raises
    {!Closed_by_server}, or [Unix.Unix_error] on transport failure. *)

val request : t -> string -> Obs.Json.t
(** {!request_raw} parsed as JSON. *)

val close : t -> unit
