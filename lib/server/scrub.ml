module Metrics = Obs.Metrics
module Db = Uindex.Db
module Verify = Uindex.Verify

let src = Logs.Src.create "uindex.scrub" ~doc:"online background verification"

module Log = (val Logs.src_log src : Logs.LOG)

let c_passes =
  Metrics.counter ~subsystem:"scrub" ~help:"completed scrub passes" "passes"

let c_pages =
  Metrics.counter ~subsystem:"scrub" ~help:"pages read by the scrub" "pages"

let c_issues =
  Metrics.counter ~subsystem:"scrub" ~help:"issues found by the scrub"
    "issues"

let g_last_issues =
  Metrics.gauge ~subsystem:"scrub" ~help:"issues found by the latest pass"
    "last_issues"

type config = { every : float; pause_every : int; pause : float }

let default_config = { every = 30.; pause_every = 64; pause = 0.001 }

type t = {
  cfg : config;
  db : Db.t;
  stopping : bool Atomic.t;
  done_passes : int Atomic.t;
  mutable dom : unit Domain.t option;
}

(* interruptible sleep: waits [dur] unless [stop] fires first; stdlib
   condvars have no timed wait, so poll in small slices *)
let sleep t dur =
  let deadline = Unix.gettimeofday () +. dur in
  let rec wait () =
    let left = deadline -. Unix.gettimeofday () in
    if left > 0. && not (Atomic.get t.stopping) then begin
      Unix.sleepf (min left 0.05);
      wait ()
    end
  in
  wait ()

let record_issue (i : Verify.issue) =
  Metrics.incr c_issues;
  Quarantine.record ~source:"scrub" ?page:i.page ~component:i.component
    ~detail:i.detail ()

let run_pass t =
  let issues_found = ref 0 in
  (match Db.open_session t.db with
  | exception Storage.Storage_error.Corruption { page; component; detail } ->
      (* pinning itself tripped a checksum (e.g. a damaged root path):
         that is a finding, not a scrub failure *)
      incr issues_found;
      Metrics.incr c_issues;
      Quarantine.record ~source:"scrub" ?page ~component ~detail ()
  | s ->
      Fun.protect ~finally:(fun () -> Db.close_session s) @@ fun () ->
      let seen = ref 0 in
      let throttle _page =
        incr seen;
        Metrics.incr c_pages;
        if
          t.cfg.pause > 0.
          && !seen mod max 1 t.cfg.pause_every = 0
          && not (Atomic.get t.stopping)
        then Unix.sleepf t.cfg.pause
      in
      List.iter
        (fun view ->
          let report = Verify.check ~throttle view in
          if not report.Verify.ok then begin
            List.iter record_issue report.Verify.issues;
            issues_found := !issues_found + List.length report.Verify.issues
          end)
        (Db.session_indexes s));
  Metrics.incr c_passes;
  Metrics.set g_last_issues !issues_found;
  Atomic.incr t.done_passes;
  if !issues_found > 0 then
    Log.warn (fun m -> m "scrub pass found %d issue(s)" !issues_found)
  else Log.debug (fun m -> m "scrub pass clean")

let rec loop t =
  sleep t t.cfg.every;
  if not (Atomic.get t.stopping) then begin
    (match run_pass t with
    | () -> ()
    | exception e ->
        (* the scrub must never take the server down with it *)
        Log.err (fun m -> m "scrub pass failed: %s" (Printexc.to_string e)));
    loop t
  end

let start ?(config = default_config) db =
  if config.every <= 0. then invalid_arg "Scrub.start: every <= 0";
  let t =
    {
      cfg = config;
      db;
      stopping = Atomic.make false;
      done_passes = Atomic.make 0;
      dom = None;
    }
  in
  t.dom <- Some (Domain.spawn (fun () -> loop t));
  Log.info (fun m -> m "scrubbing every %gs" config.every);
  t

let passes t = Atomic.get t.done_passes

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Option.iter Domain.join t.dom;
    t.dom <- None
  end
