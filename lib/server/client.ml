module Json = Obs.Json
module Metrics = Obs.Metrics

let c_retries =
  Metrics.counter ~subsystem:"client" ~help:"request attempts retried"
    "retries"

let c_reconnects =
  Metrics.counter ~subsystem:"client"
    ~help:"connections re-established by the retry layer" "reconnects"

let c_exhausted =
  Metrics.counter ~subsystem:"client" ~help:"requests that ran out of retries"
    "exhausted"

type failure =
  | Connect_failed of string
  | Timed_out
  | Reset
  | Closed_by_server
  | Bad_frame of string
  | Rejected of { kind : string; detail : string }
  | Exhausted of { attempts : int; last : string }

exception Error of failure

let failure_to_string = function
  | Connect_failed detail -> Printf.sprintf "connect failed: %s" detail
  | Timed_out -> "timed out"
  | Reset -> "connection reset mid-frame"
  | Closed_by_server -> "closed by server"
  | Bad_frame detail -> Printf.sprintf "bad reply frame: %s" detail
  | Rejected { kind; detail } ->
      Printf.sprintf "rejected: %s (%s)" kind detail
  | Exhausted { attempts; last } ->
      Printf.sprintf "gave up after %d attempts: %s" attempts last

let () =
  Printexc.register_printer (function
    | Error f -> Some (Printf.sprintf "Client.Error (%s)" (failure_to_string f))
    | _ -> None)

type t = { fd : Unix.file_descr }

let default_timeout = 30.

let apply_timeout fd timeout =
  if timeout > 0. then begin
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
  end

let connecting ?(timeout = default_timeout) domain addr =
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match Unix.connect fd addr with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let detail =
        match e with
        | Unix.Unix_error (err, _, _) -> Unix.error_message err
        | e -> Printexc.to_string e
      in
      raise (Error (Connect_failed detail)));
  apply_timeout fd timeout;
  { fd }

let connect_unix ?timeout path =
  connecting ?timeout Unix.PF_UNIX (Unix.ADDR_UNIX path)

let connect_tcp ?timeout host port =
  connecting ?timeout Unix.PF_INET
    (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))

let connect_addr ?timeout = function
  | Unix.ADDR_UNIX path -> connect_unix ?timeout path
  | Unix.ADDR_INET (ip, port) ->
      connect_tcp ?timeout (Unix.string_of_inet_addr ip) port

(* "HOST:PORT" when the suffix after the last ':' is a port number,
   otherwise a Unix socket path — covers paths containing ':' too *)
let parse_spec spec =
  match String.rindex_opt spec ':' with
  | Some i when not (String.contains spec '/') -> (
      let host = String.sub spec 0 i
      and port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          `Tcp ((if host = "" then "127.0.0.1" else host), p)
      | _ -> `Unix spec)
  | _ -> `Unix spec

let connect_spec ?timeout spec =
  match parse_spec spec with
  | `Tcp (host, port) -> connect_tcp ?timeout host port
  | `Unix path -> connect_unix ?timeout path

(* every transport failure on the request path becomes a typed Error:
   expired socket deadlines read as Timed_out, stream death as Reset *)
let typed_transport = function
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
    ->
      Error Timed_out
  | Unix.Unix_error
      ((Unix.ECONNRESET | Unix.EPIPE | Unix.ECONNABORTED | Unix.ESHUTDOWN),
       _, _) ->
      Error Reset
  | Unix.Unix_error (err, _, _) ->
      Error (Bad_frame (Unix.error_message err))
  | e -> e

let request_raw t line =
  match
    Protocol.write_frame t.fd line;
    Protocol.read_frame t.fd
  with
  | Protocol.Frame payload -> payload
  | Protocol.Eof -> raise (Error Closed_by_server)
  | Protocol.Truncated -> raise (Error Reset)
  | Protocol.Too_large n ->
      raise
        (Error (Bad_frame (Printf.sprintf "reply frame of %d bytes" n)))
  | exception (Unix.Unix_error _ as e) -> raise (typed_transport e)

let request t line =
  let raw = request_raw t line in
  match Json.of_string raw with
  | j -> j
  | exception _ -> raise (Error (Bad_frame "reply is not JSON"))

(* --- admin conveniences ------------------------------------------------ *)

let admin t req =
  let resp = request t (Protocol.request_to_string req) in
  if Protocol.response_is_ok resp then resp
  else
    let kind =
      Option.value ~default:"unknown" (Protocol.response_error_kind resp)
    in
    let detail =
      match Json.member "error" resp with
      | Some e -> (
          match Option.bind (Json.member "detail" e) Json.to_str with
          | Some d -> d
          | None -> "")
      | None -> ""
    in
    raise (Error (Rejected { kind; detail }))

let stats t = admin t Protocol.Stats
let health t = admin t Protocol.Health
let slow_queries ?limit t = admin t (Protocol.Slow_queries limit)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- retrying requests ------------------------------------------------- *)

type retry_policy = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
  retry_seed : int;
}

let default_retry_policy =
  {
    attempts = 5;
    base_delay = 0.05;
    max_delay = 1.0;
    jitter = 0.5;
    retry_seed = 1;
  }

type retrying = {
  connect : unit -> t;
  policy : retry_policy;
  rng : Chaos.Rng.t;
  mutable conn : t option;
  mutable retries : int;
}

let retrying ?timeout ?(policy = default_retry_policy) spec =
  if policy.attempts < 1 then invalid_arg "Client.retrying: attempts < 1";
  {
    connect = (fun () -> connect_spec ?timeout spec);
    policy;
    rng = Chaos.Rng.create policy.retry_seed;
    conn = None;
    retries = 0;
  }

let retrying_addr ?timeout ?(policy = default_retry_policy) addr =
  if policy.attempts < 1 then invalid_arg "Client.retrying: attempts < 1";
  {
    connect = (fun () -> connect_addr ?timeout addr);
    policy;
    rng = Chaos.Rng.create policy.retry_seed;
    conn = None;
    retries = 0;
  }

let retry_count r = r.retries

let retry_close r =
  Option.iter close r.conn;
  r.conn <- None

let drop_conn r =
  Option.iter close r.conn;
  r.conn <- None

let ensure_conn r =
  match r.conn with
  | Some c -> c
  | None ->
      let c = r.connect () in
      r.conn <- Some c;
      c

(* exponential backoff with multiplicative jitter: base * 2^k capped,
   scaled by a seeded uniform factor in [1-jitter, 1+jitter] *)
let backoff r k =
  let p = r.policy in
  let d = min p.max_delay (p.base_delay *. (2. ** float_of_int k)) in
  let factor = 1. -. p.jitter +. (2. *. p.jitter *. Chaos.Rng.float r.rng) in
  let d = d *. factor in
  if d > 0. then Unix.sleepf d

(* replies documented "retry later"; everything else typed is final *)
let retryable_reply raw =
  match Json.of_string raw with
  | exception _ -> `Malformed
  | j ->
      if Protocol.response_is_ok j then `Final
      else (
        match Protocol.response_error_kind j with
        | Some ("overloaded" | "timeout") -> `Retry
        | Some _ -> `Final
        | None -> `Malformed)

let retry_request_raw r line =
  let rec attempt k =
    let again last =
      drop_conn r;
      if k + 1 >= r.policy.attempts then begin
        Metrics.incr c_exhausted;
        raise (Error (Exhausted { attempts = r.policy.attempts; last }))
      end
      else begin
        r.retries <- r.retries + 1;
        Metrics.incr c_retries;
        backoff r k;
        attempt (k + 1)
      end
    in
    let reconnecting = r.conn = None in
    match
      let c = ensure_conn r in
      if reconnecting && k > 0 then Metrics.incr c_reconnects;
      request_raw c line
    with
    | raw -> (
        match retryable_reply raw with
        | `Final -> raw
        | `Retry -> again ("server replied retryable: " ^ raw)
        | `Malformed ->
            drop_conn r;
            raise (Error (Bad_frame "reply is not a response document")))
    | exception
        Error ((Connect_failed _ | Timed_out | Reset | Closed_by_server) as f)
      ->
        again (failure_to_string f)
  in
  attempt 0

let retry_request r line =
  let raw = retry_request_raw r line in
  match Json.of_string raw with
  | j -> j
  | exception _ -> raise (Error (Bad_frame "reply is not JSON"))
