module Json = Obs.Json

type t = { fd : Unix.file_descr }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd }

let connect_tcp host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd }

let connect_addr = function
  | Unix.ADDR_UNIX path -> connect_unix path
  | Unix.ADDR_INET (ip, port) -> connect_tcp (Unix.string_of_inet_addr ip) port

exception Closed_by_server

let request_raw t line =
  Protocol.write_frame t.fd line;
  match Protocol.read_frame t.fd with
  | Protocol.Frame payload -> payload
  | Protocol.Eof | Protocol.Truncated -> raise Closed_by_server
  | Protocol.Too_large _ -> raise Closed_by_server

let request t line = Json.of_string (request_raw t line)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
