module Json = Obs.Json

type t = { fd : Unix.file_descr }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd }

let connect_tcp host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd }

let connect_addr = function
  | Unix.ADDR_UNIX path -> connect_unix path
  | Unix.ADDR_INET (ip, port) -> connect_tcp (Unix.string_of_inet_addr ip) port

(* "HOST:PORT" when the suffix after the last ':' is a port number,
   otherwise a Unix socket path — covers paths containing ':' too *)
let parse_spec spec =
  match String.rindex_opt spec ':' with
  | Some i when not (String.contains spec '/') -> (
      let host = String.sub spec 0 i
      and port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          `Tcp ((if host = "" then "127.0.0.1" else host), p)
      | _ -> `Unix spec)
  | _ -> `Unix spec

let connect_spec spec =
  match parse_spec spec with
  | `Tcp (host, port) -> connect_tcp host port
  | `Unix path -> connect_unix path

exception Closed_by_server

let request_raw t line =
  Protocol.write_frame t.fd line;
  match Protocol.read_frame t.fd with
  | Protocol.Frame payload -> payload
  | Protocol.Eof | Protocol.Truncated -> raise Closed_by_server
  | Protocol.Too_large _ -> raise Closed_by_server

let request t line = Json.of_string (request_raw t line)

(* --- admin conveniences ------------------------------------------------ *)

let admin t req =
  let resp = request t (Protocol.request_to_string req) in
  if Protocol.response_is_ok resp then resp
  else
    failwith
      (Printf.sprintf "Client: %s request failed: %s"
         (Protocol.request_to_string req)
         (Option.value ~default:"unknown error"
            (Protocol.response_error_kind resp)))

let stats t = admin t Protocol.Stats
let health t = admin t Protocol.Health
let slow_queries ?limit t = admin t (Protocol.Slow_queries limit)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
