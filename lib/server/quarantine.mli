(** The corruption quarantine: a process-wide registry of pages (and
    page-less findings) that failed verification while the server was
    live.

    Two producers feed it — {!Service} when a request trips
    [Storage_error.Corruption] mid-query, and {!Scrub} when a background
    verification pass finds damage — and both record the same shape:
    the failing page (when known), the detector component, and the
    detail string.  Consumers are the [health] admin response and the
    [server.quarantined_pages] gauge.  Quarantining never blocks
    serving: queries that do not touch a damaged page keep answering,
    and queries that do get a typed [data_corruption] reply — never a
    silent wrong answer, never a dropped connection. *)

type entry = {
  page : int option;  (** the failing page, when the detector knew it *)
  component : string;  (** detector name, e.g. ["pager.page"] *)
  detail : string;
  source : string;  (** ["request"] or ["scrub"] *)
  first_at : float;
  mutable last_at : float;
  mutable hits : int;  (** times this (page, component) was re-reported *)
}

val record :
  source:string -> ?page:int -> component:string -> detail:string -> unit ->
  unit
(** Adds or re-hits the entry keyed by [(page, component)].  Thread- and
    domain-safe. *)

val entries : unit -> entry list
(** All entries, oldest first. *)

val pages : unit -> int list
(** Distinct quarantined page ids, ascending. *)

val length : unit -> int
val is_quarantined : int -> bool

val summary_json : unit -> Obs.Json.t
(** The [health] response's quarantine section: length, distinct pages,
    and per-entry records. *)

val reset : unit -> unit
(** Empty the registry (tests; a salvage would also clear it). *)
