module Json = Obs.Json
module Metrics = Obs.Metrics

let g_pages =
  Metrics.gauge ~subsystem:"server"
    ~help:"distinct pages in the corruption quarantine" "quarantined_pages"

let c_records =
  Metrics.counter ~subsystem:"server"
    ~help:"corruption findings recorded in the quarantine"
    "quarantine_records"

type entry = {
  page : int option;
  component : string;
  detail : string;
  source : string;
  first_at : float;
  mutable last_at : float;
  mutable hits : int;
}

(* process-wide, like the metrics registry: every service/scrub in the
   process reports into one quarantine *)
let lock = Mutex.create ()
let table : (int option * string, entry) Hashtbl.t = Hashtbl.create 16
let order : entry list ref = ref []  (* newest first *)

let distinct_pages_locked () =
  let pages = Hashtbl.fold (fun (p, _) _ acc ->
      match p with Some p -> p :: acc | None -> acc) table []
  in
  List.sort_uniq compare pages

let record ~source ?page ~component ~detail () =
  let now = Unix.gettimeofday () in
  Mutex.lock lock;
  (match Hashtbl.find_opt table (page, component) with
  | Some e ->
      e.hits <- e.hits + 1;
      e.last_at <- now
  | None ->
      let e =
        { page; component; detail; source; first_at = now; last_at = now;
          hits = 1 }
      in
      Hashtbl.add table (page, component) e;
      order := e :: !order;
      Metrics.set g_pages (List.length (distinct_pages_locked ())));
  Mutex.unlock lock;
  Metrics.incr c_records

let entries () =
  Mutex.lock lock;
  let es = List.rev !order in
  Mutex.unlock lock;
  es

let pages () =
  Mutex.lock lock;
  let ps = distinct_pages_locked () in
  Mutex.unlock lock;
  ps

let length () =
  Mutex.lock lock;
  let n = Hashtbl.length table in
  Mutex.unlock lock;
  n

let is_quarantined page =
  Mutex.lock lock;
  let q =
    Hashtbl.fold (fun (p, _) _ acc -> acc || p = Some page) table false
  in
  Mutex.unlock lock;
  q

let entry_json e =
  Json.Obj
    [
      ("page", match e.page with Some p -> Json.Int p | None -> Json.Null);
      ("component", Json.Str e.component);
      ("detail", Json.Str e.detail);
      ("source", Json.Str e.source);
      ("first_at", Json.Float e.first_at);
      ("last_at", Json.Float e.last_at);
      ("hits", Json.Int e.hits);
    ]

let summary_json () =
  Mutex.lock lock;
  let es = List.rev !order and ps = distinct_pages_locked () in
  Mutex.unlock lock;
  Json.Obj
    [
      ("length", Json.Int (List.length es));
      ("pages", Json.List (List.map (fun p -> Json.Int p) ps));
      ("entries", Json.List (List.map entry_json es));
    ]

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  order := [];
  Metrics.set g_pages 0;
  Mutex.unlock lock
