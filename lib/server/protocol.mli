(** The wire protocol: length-prefixed frames carrying text requests and
    JSON responses.

    A frame is a 4-byte big-endian unsigned payload length followed by
    that many payload bytes.  Requests are one-line text commands
    ([ping], [stats], [health], [slow-queries [n]], [quit], [query <q>],
    [query-forward <q>] where [<q>] uses the paper's query syntax — see
    [Qparse]); responses are one {!Obs.Json} object per request:
    [{"ok": true, ...}] on success, [{"ok": false, "error":
    {"kind": ..., "detail": ...}}] on a typed error.  Frames longer than
    {!max_frame} are rejected without being read, so a hostile length
    prefix cannot balloon server memory.

    Any request line may carry a client-propagated trace id as a leading
    [@<hex>] token ([@a1b2c3 query (Red, Bus)], 1–16 hex digits).  The
    server traces that request under the given id and echoes it back as
    a ["trace_id"] member of the response, correlating client-side and
    server-side observations of one request. *)

val max_frame : int
(** Maximum payload bytes per frame (1 MiB), both directions. *)

val write_frame : Unix.file_descr -> string -> unit
(** Raises [Invalid_argument] if the payload exceeds {!max_frame};
    [Unix.Unix_error] on I/O failure. *)

val encode_frame : string -> bytes
(** The on-wire bytes of one frame (header + payload) without writing
    them — what the chaos injector cuts short to fake partial writes.
    Raises [Invalid_argument] past {!max_frame}. *)

val write_all : Unix.file_descr -> bytes -> int -> int -> unit
(** [write_all fd b off len] writes exactly the given byte range,
    looping over short writes.  [Unix.Unix_error] propagates. *)

type read_result =
  | Frame of string  (** one complete payload *)
  | Eof  (** clean close: the peer finished before any header byte *)
  | Too_large of int
      (** header announced this many bytes (> {!max_frame}); nothing
          further was read, and the stream position is unrecoverable *)
  | Truncated  (** the peer disconnected mid-frame *)

val read_frame : Unix.file_descr -> read_result
(** Blocking read of one frame.  [Unix.Unix_error] propagates — with a
    receive timeout set, a stalled peer surfaces as
    [EAGAIN]/[EWOULDBLOCK]. *)

type request =
  | Query of { algo : [ `Parallel | `Forward ]; text : string }
  | Stats  (** full registry snapshot + request-latency summary *)
  | Health
      (** server vitals: workers, queue depth, active sessions, LSN
          lag, GC counters, slow-log occupancy *)
  | Slow_queries of int option
      (** drain the slow-query log (newest first), optionally capped *)
  | Ping
  | Quit

val parse_line : string -> (int option * request, string) result
(** Parses one request line, splitting off the optional leading
    [@<hex>] trace-id token.  A malformed trace id is an error even if
    the command after it is well-formed. *)

val parse_request : string -> (request, string) result
(** {!parse_line} with the trace id discarded.  Case-insensitive on the
    command word; the query text is passed through verbatim. *)

val request_to_string : request -> string
(** Inverse of {!parse_request} (canonical spelling). *)

val line_to_string : ?trace_id:int -> request -> string
(** {!request_to_string} with an optional [@<hex>] trace-id prefix —
    what a tracing client sends. *)

type error_kind =
  | Bad_request  (** unparseable command *)
  | Parse_error  (** query text rejected by [Qparse] *)
  | Unroutable  (** no index serves this query's arity *)
  | Timeout  (** the request exceeded its deadline *)
  | Overloaded  (** accept queue full; retry later *)
  | Frame_too_large
  | Corrupt
      (** the request touched a page that failed its checksum — the
          damage is quarantined and deterministic, so {e not} retryable *)
  | Shard_failure
      (** a scatter-gather fan-out lost one or more shards: the router
          refuses to return a silently partial row set *)
  | Internal

val error_kind_name : error_kind -> string

val ok : (string * Obs.Json.t) list -> Obs.Json.t
(** [{"ok": true, <fields>}]. *)

val error : ?detail:string -> error_kind -> Obs.Json.t
(** [{"ok": false, "error": {"kind": ..., "detail": ...}}]. *)

val response_is_ok : Obs.Json.t -> bool
val response_error_kind : Obs.Json.t -> string option
