module Json = Obs.Json

let max_frame = 1 lsl 20

(* --- framing ---------------------------------------------------------- *)

(* read exactly [len] bytes; false on EOF before they all arrived *)
let rec read_full fd b off len =
  len = 0
  ||
  let n = Unix.read fd b off len in
  n > 0 && read_full fd b (off + n) (len - n)

let encode_frame payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Protocol.encode_frame: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  b

let write_all fd b off len =
  let rec go off len =
    if len > 0 then begin
      let w = Unix.write fd b off len in
      go (off + w) (len - w)
    end
  in
  go off len

let write_frame fd payload =
  let b = encode_frame payload in
  write_all fd b 0 (Bytes.length b)

type read_result =
  | Frame of string
  | Eof
  | Too_large of int
  | Truncated

let read_frame fd =
  let hdr = Bytes.create 4 in
  let n0 = Unix.read fd hdr 0 4 in
  if n0 = 0 then Eof
  else if not (read_full fd hdr n0 (4 - n0)) then Truncated
  else
    (* u32, so a hostile length can not read as negative *)
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) land 0xFFFFFFFF in
    if len > max_frame then Too_large len
    else
      let b = Bytes.create len in
      if read_full fd b 0 len then Frame (Bytes.to_string b) else Truncated

(* --- requests --------------------------------------------------------- *)

type request =
  | Query of { algo : [ `Parallel | `Forward ]; text : string }
  | Stats
  | Health
  | Slow_queries of int option
  | Ping
  | Quit

let is_hex c =
  (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let parse_trace_token tok =
  (* "@a1b2c3" — 1..16 hex digits after the '@' *)
  let n = String.length tok in
  if n < 2 || n > 17 then Error (Printf.sprintf "bad trace id %S" tok)
  else begin
    let ok = ref true in
    for i = 1 to n - 1 do
      if not (is_hex tok.[i]) then ok := false
    done;
    if not !ok then Error (Printf.sprintf "bad trace id %S" tok)
    else
      match int_of_string_opt ("0x" ^ String.sub tok 1 (n - 1)) with
      | Some id -> Ok id
      | None -> Error (Printf.sprintf "bad trace id %S" tok)
  end

let parse_line s =
  let s = String.trim s in
  (* optional client-propagated trace id: "@<hex> <command ...>" *)
  let trace_id, s =
    if String.length s > 0 && s.[0] = '@' then
      match String.index_opt s ' ' with
      | Some i -> (Some (String.sub s 0 i), String.trim
                     (String.sub s (i + 1) (String.length s - i - 1)))
      | None -> (Some s, "")
    else (None, s)
  in
  let parse_id k =
    match trace_id with
    | None -> k None
    | Some tok -> (
        match parse_trace_token tok with
        | Ok id -> k (Some id)
        | Error e -> Error e)
  in
  parse_id @@ fun trace_id ->
  let word, rest =
    match String.index_opt s ' ' with
    | Some i ->
        ( String.sub s 0 i,
          String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, "")
  in
  let req =
    match (String.lowercase_ascii word, rest) with
    | "ping", "" -> Ok Ping
    | "stats", "" -> Ok Stats
    | "health", "" -> Ok Health
    | "slow-queries", "" -> Ok (Slow_queries None)
    | "slow-queries", n -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> Ok (Slow_queries (Some n))
        | _ -> Error (Printf.sprintf "slow-queries: bad count %S" n))
    | "quit", "" -> Ok Quit
    | "query", "" -> Error "query: missing query text"
    | "query", text -> Ok (Query { algo = `Parallel; text })
    | "query-forward", "" -> Error "query-forward: missing query text"
    | "query-forward", text -> Ok (Query { algo = `Forward; text })
    | ("ping" | "stats" | "health" | "quit"), extra ->
        Error (Printf.sprintf "%s: unexpected argument %S" word extra)
    | "", _ -> Error "empty request"
    | w, _ -> Error (Printf.sprintf "unknown command %S" w)
  in
  Result.map (fun req -> (trace_id, req)) req

let parse_request s = Result.map snd (parse_line s)

let request_to_string = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Health -> "health"
  | Slow_queries None -> "slow-queries"
  | Slow_queries (Some n) -> Printf.sprintf "slow-queries %d" n
  | Quit -> "quit"
  | Query { algo = `Parallel; text } -> "query " ^ text
  | Query { algo = `Forward; text } -> "query-forward " ^ text

let line_to_string ?trace_id req =
  match trace_id with
  | None -> request_to_string req
  | Some id -> Printf.sprintf "@%x %s" id (request_to_string req)

(* --- responses -------------------------------------------------------- *)

type error_kind =
  | Bad_request
  | Parse_error
  | Unroutable
  | Timeout
  | Overloaded
  | Frame_too_large
  | Corrupt
  | Shard_failure
  | Internal

let error_kind_name = function
  | Bad_request -> "bad_request"
  | Parse_error -> "parse_error"
  | Unroutable -> "unroutable"
  | Timeout -> "timeout"
  | Overloaded -> "overloaded"
  | Frame_too_large -> "frame_too_large"
  | Corrupt -> "data_corruption"
  | Shard_failure -> "shard_failure"
  | Internal -> "internal"

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let error ?(detail = "") kind =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [
            ("kind", Json.Str (error_kind_name kind));
            ("detail", Json.Str detail);
          ] );
    ]

let response_is_ok j = Json.member "ok" j = Some (Json.Bool true)

let response_error_kind j =
  match Json.member "error" j with
  | Some e -> Option.bind (Json.member "kind" e) Json.to_str
  | None -> None
