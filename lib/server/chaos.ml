let src = Logs.Src.create "uindex.chaos" ~doc:"network fault injection"

module Log = (val Logs.src_log src : Logs.LOG)
module Metrics = Obs.Metrics

let c_resets =
  Metrics.counter ~subsystem:"chaos" ~help:"connections reset before a reply"
    "resets"

let c_partials =
  Metrics.counter ~subsystem:"chaos"
    ~help:"replies cut short mid-payload" "partial_writes"

let c_truncates =
  Metrics.counter ~subsystem:"chaos"
    ~help:"replies cut short inside the length header" "truncated_writes"

let c_delays =
  Metrics.counter ~subsystem:"chaos" ~help:"injected pauses" "delays"

let c_slow_reads =
  Metrics.counter ~subsystem:"chaos"
    ~help:"requests consumed byte-at-a-time" "slow_reads"

let c_crashes =
  Metrics.counter ~subsystem:"chaos"
    ~help:"deliberate worker-domain crashes" "crashes"

let c_faults =
  Metrics.counter ~subsystem:"chaos" ~help:"all injected faults" "faults"

(* --- seeded RNG -------------------------------------------------------- *)

module Rng = struct
  (* splitmix64: the same stream the workload generator uses, inlined so
     the server library carries no workload dependency *)
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let float t =
    (* top 53 bits -> [0, 1) *)
    Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

  let int t bound =
    if bound <= 0 then invalid_arg "Chaos.Rng.int";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1)
                    (Int64.of_int bound))
end

(* --- spec -------------------------------------------------------------- *)

type spec = {
  seed : int;
  reset : float;
  partial : float;
  truncate : float;
  delay : float;
  slow_read : float;
  crash : float;
  delay_ms : float;
}

let none =
  {
    seed = 0;
    reset = 0.;
    partial = 0.;
    truncate = 0.;
    delay = 0.;
    slow_read = 0.;
    crash = 0.;
    delay_ms = 2.;
  }

let parse s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parts =
    List.filter (fun p -> p <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  let rec go spec = function
    | [] -> Ok spec
    | kv :: tl -> (
        match String.index_opt kv '=' with
        | None -> err "chaos spec: %S is not key=value" kv
        | Some i -> (
            let key = String.sub kv 0 i
            and v = String.sub kv (i + 1) (String.length kv - i - 1) in
            let prob k =
              match float_of_string_opt v with
              | Some p when p >= 0. && p <= 1. -> Ok (k p)
              | _ -> err "chaos spec: %s wants a probability in [0,1], got %S"
                       key v
            in
            let next =
              match key with
              | "seed" -> (
                  match int_of_string_opt v with
                  | Some n -> Ok { spec with seed = n }
                  | None -> err "chaos spec: seed wants an integer, got %S" v)
              | "delay-ms" -> (
                  match float_of_string_opt v with
                  | Some ms when ms >= 0. -> Ok { spec with delay_ms = ms }
                  | _ ->
                      err "chaos spec: delay-ms wants milliseconds >= 0, got %S"
                        v)
              | "reset" -> prob (fun p -> { spec with reset = p })
              | "partial" -> prob (fun p -> { spec with partial = p })
              | "truncate" -> prob (fun p -> { spec with truncate = p })
              | "delay" -> prob (fun p -> { spec with delay = p })
              | "slow-read" -> prob (fun p -> { spec with slow_read = p })
              | "crash" -> prob (fun p -> { spec with crash = p })
              | k -> err "chaos spec: unknown key %S" k
            in
            match next with Ok spec -> go spec tl | Error _ as e -> e))
  in
  go none parts

let spec_to_string s =
  Printf.sprintf
    "seed=%d,reset=%g,partial=%g,truncate=%g,delay=%g,slow-read=%g,crash=%g,delay-ms=%g"
    s.seed s.reset s.partial s.truncate s.delay s.slow_read s.crash s.delay_ms

(* --- armed injector ---------------------------------------------------- *)

exception Crash

let () =
  Printexc.register_printer (function
    | Crash -> Some "Chaos.Crash (injected worker crash)"
    | _ -> None)

type t = { cfg : spec; rng : Rng.t; lock : Mutex.t }

let arm cfg = { cfg; rng = Rng.create cfg.seed; lock = Mutex.create () }
let spec t = t.cfg

(* one uniform draw per decision, under the lock: the stream is
   deterministic even when several workers consult it, only the
   interleaving varies *)
let roll t p =
  p > 0.
  &&
  let u =
    Mutex.lock t.lock;
    let u = Rng.float t.rng in
    Mutex.unlock t.lock;
    u
  in
  u < p

let draw_int t bound =
  Mutex.lock t.lock;
  let n = Rng.int t.rng bound in
  Mutex.unlock t.lock;
  n

let fault counter =
  Metrics.incr counter;
  Metrics.incr c_faults

let pause t =
  if t.cfg.delay_ms > 0. then Unix.sleepf (t.cfg.delay_ms /. 1000.)

let maybe_delay t =
  if roll t t.cfg.delay then begin
    fault c_delays;
    pause t
  end

(* --- read side --------------------------------------------------------- *)

(* read exactly [len] bytes one at a time, pausing every few bytes; the
   total injected sleep is bounded by ~4x delay_ms *)
let slow_read_full t fd b off len =
  let slice = t.cfg.delay_ms /. 1000. /. 4. in
  let rec go off len sleeps =
    len = 0
    ||
    let n = Unix.read fd b off 1 in
    n > 0
    &&
    (if slice > 0. && sleeps > 0 then Unix.sleepf slice;
     go (off + n) (len - n) (sleeps - 1))
  in
  go off len 16

let slow_read_frame t fd =
  let hdr = Bytes.create 4 in
  let n0 = Unix.read fd hdr 0 4 in
  if n0 = 0 then Protocol.Eof
  else if not (slow_read_full t fd hdr n0 (4 - n0)) then Protocol.Truncated
  else
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) land 0xFFFFFFFF in
    if len > Protocol.max_frame then Protocol.Too_large len
    else
      let b = Bytes.create len in
      if slow_read_full t fd b 0 len then Protocol.Frame (Bytes.to_string b)
      else Protocol.Truncated

let read_frame c fd =
  match c with
  | None -> Protocol.read_frame fd
  | Some t ->
      maybe_delay t;
      if roll t t.cfg.slow_read then begin
        fault c_slow_reads;
        slow_read_frame t fd
      end
      else Protocol.read_frame fd

let maybe_crash = function
  | None -> ()
  | Some t ->
      if roll t t.cfg.crash then begin
        fault c_crashes;
        Log.warn (fun m -> m "injecting worker crash");
        raise Crash
      end

(* --- write side -------------------------------------------------------- *)

let write_frame c fd payload =
  match c with
  | None ->
      Protocol.write_frame fd payload;
      `Sent
  | Some t ->
      maybe_delay t;
      if roll t t.cfg.reset then begin
        (* close with the reply unsent: the client sees EOF (or a reset)
           exactly where the answer should have been *)
        fault c_resets;
        `Injected
      end
      else if roll t t.cfg.truncate then begin
        (* cut inside the 4-byte header: a frame that never even
           announced its length *)
        fault c_truncates;
        let b = Protocol.encode_frame payload in
        let cut = 1 + draw_int t 3 in
        Protocol.write_all fd b 0 (min cut (Bytes.length b));
        `Injected
      end
      else if roll t t.cfg.partial then begin
        (* a strict prefix of the true frame, never mutated bytes: the
           client must detect the truncation, not parse a wrong answer *)
        fault c_partials;
        let b = Protocol.encode_frame payload in
        let n = Bytes.length b in
        let cut = 4 + draw_int t (max 1 (n - 4)) in
        Protocol.write_all fd b 0 (min cut (n - 1));
        `Injected
      end
      else begin
        Protocol.write_frame fd payload;
        `Sent
      end
