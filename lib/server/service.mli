(** Request dispatch: a {!Uindex.Db} behind the wire protocol.

    A service routes each parsed query to the registered index whose
    {!Uindex.Index.arity} matches the query's component count — the same
    routing the CLI's [query] command performs — and executes it inside a
    {!Uindex.Db.session}, so every request sees one committed snapshot no
    matter what the writer does meanwhile.

    Rows are rendered in a canonical sorted order, so two replies to the
    same query against the same snapshot are byte-identical regardless of
    which worker (or process) produced them.

    Handling is thread-safe: any number of threads may call {!handle} on
    one service concurrently. *)

type t

val create : schema:Oodb_schema.Schema.t -> Uindex.Db.t -> t
(** Snapshots the database's current index registration into a routing
    table (indexes registered later are not served). *)

val db : t -> Uindex.Db.t

val handle : ?deadline:float -> t -> Protocol.request -> Obs.Json.t
(** Executes one request and returns the response document.  [?deadline]
    is an absolute [Unix.gettimeofday] instant; a request that starts
    after its deadline gets a [timeout] error instead of running.  Never
    raises: execution failures become [internal] error responses.
    Observes the [server.requests], [server.request_errors] and
    [server.request_ns] instruments in {!Obs.Metrics.default}. *)

val handle_line : ?deadline:float -> t -> string -> Obs.Json.t
(** {!Protocol.parse_request} then {!handle}; unparseable request lines
    become [bad_request] error responses. *)
