(** Request dispatch: a {!Uindex.Db} behind the wire protocol.

    A service routes each parsed query to the registered index whose
    {!Uindex.Index.arity} matches the query's component count — the same
    routing the CLI's [query] command performs — and executes it inside a
    {!Uindex.Db.session}, so every request sees one committed snapshot no
    matter what the writer does meanwhile.

    Rows are rendered in a canonical sorted order, so two replies to the
    same query against the same snapshot are byte-identical regardless of
    which worker (or process) produced them.

    {b Telemetry.}  Every request flows through one pipeline that feeds
    per-stage histograms ([server.queue_wait_ns], [server.session_pin_ns],
    [server.exec_ns], [server.render_ns], [server.bytes_out],
    [server.request_ns]) in {!Obs.Metrics.default}.  When tracing is on,
    sampled requests (and every request carrying a client trace id) run
    under an {!Obs.Trace} root span whose children are the executor's
    plan/descent spans; requests at or above the slow threshold are
    admitted to a bounded ring — the slow-query log — drainable with the
    [slow-queries] admin request or {!slow_log_json}.  Telemetry never
    changes response bytes: a server-assigned trace id stays internal,
    and only a client-propagated id is echoed back.

    Page-read accounting is exact under tracing: the root span's own
    [page_reads] field carries the session-pin reads (every snapshot
    view's attach walk) and the exec children carry the descent reads,
    so summing span totals over a window of requests reconciles with
    the global [pager.reads] counter delta over the same window.

    Handling is thread-safe: any number of threads may call {!handle} on
    one service concurrently, and worker domains trace into domain-local
    collectors.

    {b Corruption containment.}  A request that trips
    [Storage_error.Corruption] (a page failed its checksum mid-query)
    is answered with a typed [data_corruption] error — the connection
    stays up — and the finding is recorded in the {!Quarantine}, which
    the [health] response surfaces alongside scrub and supervisor
    vitals.  Queries that do not touch the damaged page keep serving
    normally; none ever returns a silently wrong answer. *)

type t

type telemetry = {
  tracing : bool;  (** master switch for span capture *)
  sample_every : int;
      (** trace 1 in [n] requests (requests with a client trace id are
          always traced); clamped to at least 1 *)
  slow_threshold_ns : int;
      (** requests at least this slow enter the slow-query log; [0]
          logs everything *)
  slow_capacity : int;  (** slow-log ring size; [0] disables the log *)
}

val default_telemetry : telemetry
(** Tracing on, every request sampled, 10 ms slow threshold, 128-entry
    slow log. *)

val create :
  ?telemetry:telemetry ->
  ?shard_info:Obs.Json.t ->
  schema:Oodb_schema.Schema.t ->
  Uindex.Db.t ->
  t
(** Snapshots the database's current index registration into a routing
    table (indexes registered later are not served).  [?shard_info], when
    given, is surfaced verbatim as a ["shard"] member of the [health]
    response — a shard server uses it to report which COD range it
    holds. *)

val db : t -> Uindex.Db.t
val telemetry : t -> telemetry

val handle : ?deadline:float -> t -> Protocol.request -> Obs.Json.t
(** Executes one request and returns the response document.  [?deadline]
    is an absolute [Unix.gettimeofday] instant; a request that starts
    after its deadline gets a [timeout] error instead of running.  Never
    raises: execution failures become [internal] error responses.
    Observes the [server.requests], [server.request_errors] and
    [server.request_ns] instruments in {!Obs.Metrics.default}. *)

val handle_line : ?deadline:float -> t -> string -> Obs.Json.t
(** {!Protocol.parse_line} then {!handle}; unparseable request lines
    become [bad_request] error responses. *)

val serve_line : ?queued_ns:int -> ?deadline:float -> t -> string -> string
(** What the server's workers call: {!handle_line} plus rendering, so
    render time and payload bytes are measured and traced as part of the
    request.  [?queued_ns] is how long the connection waited in the
    accept queue; it is observed on the first request of the connection
    and recorded on its root span. *)

val slow_log_json : ?limit:int -> t -> Obs.Json.t
(** Snapshot of the slow-query log, newest first — the same document
    the [slow-queries] admin request returns (sans envelope).  Used to
    dump the log when a drained server shuts down. *)
