(** Partitioning one U-index into per-shard indexes by COD range.

    An entry belongs to the shard whose range contains its {e shard
    key}: the first component's serialized code followed by the [0x01]
    component terminator.  That convention makes a class's bare
    serialized code a subtree boundary (the class and all its
    descendants sort at or above it) and keeps the splitter's
    classification in the same byte-string space as the planner's
    {!Planner.code_intervals}.

    Within one shard, the selected entries are a subsequence of the
    source tree's in-order iteration — keys sort by value first, so a
    COD range selects a sub-run inside every value group without
    reordering anything — which is exactly the sorted stream
    {!Btree.bulk_load} wants: each shard is built bottom-up, every page
    written once.  One filtered scan per shard (a COD range is a union
    of per-value-group key ranges, so a filter {e is} the general range
    scan). *)

module Schema := Oodb_schema.Schema
module Encoding := Oodb_schema.Encoding

val shard_key : ty:Schema.attr_type -> string -> string
(** The shard key of a raw entry key (first component's serialized code
    plus terminator).  Raises [Invalid_argument] on a malformed key. *)

val restrict :
  ?fill:float ->
  source:Uindex.Index.t ->
  Shard_map.t ->
  int ->
  Storage.Pager.t ->
  Uindex.Index.t
(** [restrict ~source map i pager] bulk-loads shard [i]'s entries (and
    only those) from [source] into an empty index of the same kind on
    [pager].  The result serves queries exactly like [source] restricted
    to the shard's COD range. *)

val split :
  ?fill:float ->
  source:Uindex.Index.t ->
  make_pager:(int -> Storage.Pager.t) ->
  Shard_map.t ->
  Uindex.Index.t array
(** {!restrict} for every shard of the map, in order. *)

val choose_boundaries :
  source:Uindex.Index.t -> shards:int -> string list
(** Entry-balanced split points for [shards] shards: scans the source
    once, counts entries per first-component class, and returns
    [shards - 1] boundaries — each the bare serialized code of a class,
    i.e. exactly a class-subtree boundary.  Fewer boundaries come back
    when there are not enough distinct classes to cut. *)
