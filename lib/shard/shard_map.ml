module Json = Obs.Json

type shard = {
  lo : string;
  hi : string option;
  file : string option;
  endpoint : string option;
}

type t = { arr : shard array }

let fail fmt = Printf.ksprintf invalid_arg ("Shard_map: " ^^ fmt)

let make shards =
  let arr = Array.of_list shards in
  let n = Array.length arr in
  if n = 0 then fail "empty map";
  if arr.(0).lo <> "" then fail "shard 0 must start at the bottom of the code space";
  for i = 0 to n - 1 do
    match arr.(i).hi with
    | None -> if i <> n - 1 then fail "shard %d is unbounded but not last" i
    | Some hi ->
        if i = n - 1 then fail "last shard must be unbounded above";
        if arr.(i).lo >= hi then fail "shard %d has an empty range" i;
        if arr.(i + 1).lo <> hi then
          fail "shard %d..%d: ranges are not contiguous" i (i + 1)
  done;
  { arr }

let shards t = t.arr
let count t = Array.length t.arr
let get t i = t.arr.(i)

let in_range s code =
  code >= s.lo && match s.hi with None -> true | Some hi -> code < hi

let locate t code =
  (* the cover is total: exactly one shard matches *)
  let rec go i = if in_range t.arr.(i) code then i else go (i + 1) in
  go 0

let intersects s (lo, hi) =
  lo < hi
  && hi > s.lo
  && match s.hi with None -> true | Some shi -> lo < shi

let intersecting t ivs =
  let ids = ref [] in
  for i = Array.length t.arr - 1 downto 0 do
    if List.exists (intersects t.arr.(i)) ivs then ids := i :: !ids
  done;
  !ids

(* --- serialization ----------------------------------------------------- *)

let opt_str = function None -> Json.Null | Some s -> Json.Str s

let shard_json s =
  Json.Obj
    [
      ("lo", Json.Str s.lo);
      ("hi", opt_str s.hi);
      ("file", opt_str s.file);
      ("endpoint", opt_str s.endpoint);
    ]

let to_json t =
  Json.Obj
    [
      ("shards", Json.List (Array.to_list (Array.map shard_json t.arr)));
    ]

let str_opt = function
  | Some (Json.Str s) -> Some s
  | Some Json.Null | None -> None
  | Some _ -> fail "expected string or null"

let shard_of_json j =
  let lo =
    match Json.member "lo" j with
    | Some (Json.Str s) -> s
    | _ -> fail "shard without a \"lo\" bound"
  in
  {
    lo;
    hi = str_opt (Json.member "hi" j);
    file = str_opt (Json.member "file" j);
    endpoint = str_opt (Json.member "endpoint" j);
  }

let of_json j =
  match Json.member "shards" j with
  | Some (Json.List l) -> make (List.map shard_of_json l)
  | _ -> fail "document has no \"shards\" list"

let save t path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_multiline (to_json t)))

let load path =
  of_json (Json.of_string (In_channel.with_open_text path In_channel.input_all))

(* --- display ----------------------------------------------------------- *)

(* serialized codes are units over ['A'..'z'] terminated by 0x02; dots
   read better than escapes in health output *)
let printable code =
  String.concat "."
    (String.split_on_char '\x02'
       (if code <> "" && code.[String.length code - 1] = '\x02' then
          String.sub code 0 (String.length code - 1)
        else code))

let topology_json t =
  Json.List
    (Array.to_list
       (Array.mapi
          (fun i s ->
            Json.Obj
              [
                ("shard", Json.Int i);
                ("lo", Json.Str (printable s.lo));
                ( "hi",
                  match s.hi with
                  | None -> Json.Null
                  | Some hi -> Json.Str (printable hi) );
                ("file", opt_str s.file);
                ("endpoint", opt_str s.endpoint);
              ])
          t.arr))
