module Json = Obs.Json
module Metrics = Obs.Metrics
module Schema = Oodb_schema.Schema
module Encoding = Oodb_schema.Encoding
module Qparse = Uindex.Qparse
module Service = Uindex_server.Service
module Server = Uindex_server.Server
module Client = Uindex_server.Client
module Protocol = Uindex_server.Protocol

(* the router feeds the same request instruments the service does, so
   [stats]/[top] read a router exactly like a plain server *)
let c_requests = Metrics.counter ~subsystem:"server" "requests"
let c_request_errors = Metrics.counter ~subsystem:"server" "request_errors"

let h_request_ns =
  Metrics.histogram ~subsystem:"server"
    ~help:"request handling latency (ns)" "request_ns"

let h_queue_wait =
  Metrics.histogram ~subsystem:"server"
    ~help:"time between accept and a worker picking the connection (ns)"
    "queue_wait_ns"

let h_fanout =
  Metrics.histogram ~subsystem:"shard"
    ~help:"shards contacted per query" "fanout"

let c_pruned =
  Metrics.counter ~subsystem:"shard"
    ~help:"shard requests avoided by interval pruning" "pruned"

let c_forwarded =
  Metrics.counter ~subsystem:"shard"
    ~help:"requests forwarded to shards" "forwarded"

let c_shard_failures =
  Metrics.counter ~subsystem:"shard"
    ~help:"queries answered with a typed shard_failure error"
    "failures"

let h_merge_ns =
  Metrics.histogram ~subsystem:"shard"
    ~help:"scatter-gather merge latency (ns)" "merge_ns"

type backend = Local of Service.t | Remote of string

type t = {
  schema : Schema.t;
  enc : Encoding.t;
  map : Shard_map.t;
  backends : backend array;
  shard_timeout : float;
  policy : Client.retry_policy;
  per_shard : int Atomic.t array;
  started : float;
}

let create ?(shard_timeout = 5.) ?(retry_policy = Client.default_retry_policy)
    ~schema ~enc ~map ~backends () =
  if Array.length backends <> Shard_map.count map then
    invalid_arg "Router.create: one backend per shard required";
  {
    schema;
    enc;
    map;
    backends;
    shard_timeout;
    policy = retry_policy;
    per_shard = Array.init (Shard_map.count map) (fun _ -> Atomic.make 0);
    started = Unix.gettimeofday ();
  }

let map t = t.map
let requests_per_shard t = Array.map Atomic.get t.per_shard
let route_query t q = Planner.route t.map t.enc q

let ns_since t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
let hex_id = Printf.sprintf "%x"

let attach_trace_id id = function
  | Json.Obj kvs -> Json.Obj (kvs @ [ ("trace_id", Json.Str (hex_id id)) ])
  | j -> j

(* --- canonical projection ---------------------------------------------- *)

let canonical_projection payload =
  match Json.of_string payload with
  | exception Json.Parse_error _ -> payload
  | j ->
      let keep = [ "ok"; "type"; "count"; "rows"; "error"; "trace_id" ] in
      let members =
        List.filter_map (fun k -> Option.map (fun v -> (k, v)) (Json.member k j)) keep
      in
      Json.to_string (Json.Obj members)

(* --- per-shard calls --------------------------------------------------- *)

type shard_reply = Replied of string | Lost of string

let call t i line deadline =
  Atomic.incr t.per_shard.(i);
  Metrics.incr c_forwarded;
  match t.backends.(i) with
  | Local svc -> (
      match Service.serve_line ?deadline svc line with
      | payload -> Replied payload
      | exception e -> Lost (Printexc.to_string e))
  | Remote spec -> (
      let rc =
        Client.retrying ~timeout:t.shard_timeout ~policy:t.policy spec
      in
      Fun.protect ~finally:(fun () -> Client.retry_close rc) @@ fun () ->
      match Client.retry_request_raw rc line with
      | payload -> Replied payload
      | exception Client.Error f -> Lost (Client.failure_to_string f))

let backend_name t i =
  match t.backends.(i) with Local _ -> "local" | Remote spec -> spec

(* --- query fan-out and merge ------------------------------------------- *)

let empty_rows_reply client_id =
  let resp =
    Protocol.ok
      [
        ("type", Json.Str "rows");
        ("count", Json.Int 0);
        ("rows", Json.List []);
        ("page_reads", Json.Int 0);
        ("pool_hits", Json.Int 0);
        ("entries_scanned", Json.Int 0);
      ]
  in
  match client_id with
  | Some id -> attach_trace_id id resp
  | None -> resp

let jint j k =
  match Json.member k j with Some (Json.Int i) -> i | _ -> 0

let shard_failure_reply t client_id ~contacted ~lost =
  Metrics.incr c_shard_failures;
  let detail =
    Printf.sprintf "%d of %d shards lost: %s" (List.length lost)
      (List.length contacted)
      (String.concat "; "
         (List.map
            (fun (i, why) ->
              Printf.sprintf "shard %d (%s): %s" i (backend_name t i) why)
            lost))
  in
  let resp = Protocol.error ~detail Protocol.Shard_failure in
  match client_id with Some id -> attach_trace_id id resp | None -> resp

let merge_replies t client_id ~targets replies =
  let m0 = Unix.gettimeofday () in
  let parsed =
    List.map2
      (fun i r ->
        match r with
        | Lost why -> (i, Error why)
        | Replied payload -> (
            match Json.of_string payload with
            | j -> (i, Ok j)
            | exception Json.Parse_error msg ->
                (i, Error ("unparseable shard reply: " ^ msg))))
      targets replies
  in
  let lost =
    List.filter_map
      (function (i, Error why) -> Some (i, why) | _ -> None)
      parsed
  in
  let oks = List.filter_map (function (_, Ok j) -> Some j | _ -> None) parsed in
  let errors = List.filter (fun j -> not (Protocol.response_is_ok j)) oks in
  if lost <> [] then
    Some (shard_failure_reply t client_id ~contacted:targets ~lost)
  else if errors <> [] then begin
    (* every shard agreeing on one error (e.g. unroutable arity) is that
       error; disagreement means some shards answered and some did not —
       a partial failure *)
    let kinds =
      List.sort_uniq compare
        (List.filter_map Protocol.response_error_kind errors)
    in
    match kinds with
    | [ _ ] when List.length errors = List.length oks -> None (* pass through *)
    | _ ->
        let lost =
          List.filter_map
            (fun (i, r) ->
              match r with
              | Ok j when not (Protocol.response_is_ok j) ->
                  Some
                    ( i,
                      Printf.sprintf "%s reply"
                        (Option.value ~default:"error"
                           (Protocol.response_error_kind j)) )
              | _ -> None)
            parsed
        in
        Some (shard_failure_reply t client_id ~contacted:targets ~lost)
  end
  else begin
    let rows =
      List.concat_map
        (fun j ->
          match Json.member "rows" j with Some (Json.List l) -> l | _ -> [])
        oks
    in
    (* each entry lives on exactly one shard and every shard rendered its
       rows in the canonical order; re-sorting the rendered strings makes
       the merged list byte-identical to the unsharded rendering *)
    let keyed = List.map (fun j -> (Json.to_string j, j)) rows in
    let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) keyed in
    let sum f = List.fold_left (fun a j -> a + jint j f) 0 oks in
    let resp =
      Protocol.ok
        [
          ("type", Json.Str "rows");
          ("count", Json.Int (List.length sorted));
          ("rows", Json.List (List.map snd sorted));
          ("page_reads", Json.Int (sum "page_reads"));
          ("pool_hits", Json.Int (sum "pool_hits"));
          ("entries_scanned", Json.Int (sum "entries_scanned"));
        ]
    in
    let resp =
      match client_id with
      | Some id -> attach_trace_id id resp
      | None -> resp
    in
    Metrics.observe h_merge_ns (ns_since m0);
    Some resp
  end

let respond_parsed t client_id ~line ~deadline q =
  (
      let targets = Planner.route t.map t.enc q in
      let n = List.length targets in
      Metrics.observe h_fanout n;
      Metrics.add c_pruned (Shard_map.count t.map - n);
      match targets with
      | [] -> `Doc (empty_rows_reply client_id)
      | [ i ] -> (
          (* single-shard bypass: forward the line verbatim and hand the
             shard's reply bytes back untouched *)
          match call t i line deadline with
          | Replied payload -> `Raw payload
          | Lost why ->
              `Doc
                (shard_failure_reply t client_id ~contacted:targets
                   ~lost:[ (i, why) ]))
      | targets -> (
          let arr = Array.make n (Lost "not dispatched") in
          let threads =
            List.mapi
              (fun slot i ->
                Thread.create
                  (fun () -> arr.(slot) <- call t i line deadline)
                  ())
              targets
          in
          List.iter Thread.join threads;
          match merge_replies t client_id ~targets (Array.to_list arr) with
          | Some doc -> `Doc doc
          | None -> (
              (* unanimous typed error: pass the first shard's reply through *)
              match arr.(0) with
              | Replied payload -> `Raw payload
              | Lost why ->
                  `Doc
                    (shard_failure_reply t client_id ~contacted:targets
                       ~lost:[ (List.hd targets, why) ]))))

let query_response t client_id ~line ~deadline text =
  match Qparse.parse t.schema text with
  | exception Qparse.Parse_error msg ->
      `Doc (Protocol.error ~detail:msg Protocol.Parse_error)
  | q -> respond_parsed t client_id ~line ~deadline q

let respond ?trace_id t q =
  let line =
    Protocol.line_to_string ?trace_id
      (Protocol.Query { algo = `Parallel; text = Qparse.to_syntax t.schema q })
  in
  match respond_parsed t trace_id ~line ~deadline:None q with
  | `Raw payload -> payload
  | `Doc doc -> Json.to_string doc

(* --- admin responses --------------------------------------------------- *)

let stats_response t =
  let latency =
    match Metrics.find_summary Metrics.default "server.request_ns" with
    | Some s -> Metrics.summary_json s
    | None -> Json.Null
  in
  Protocol.ok
    [
      ("type", Json.Str "stats");
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
      ("request_latency", latency);
      ("metrics", Metrics.to_json Metrics.default);
      ("counters", Metrics.counters_json Metrics.default);
    ]

let health_response t =
  let metric name =
    Option.value ~default:0 (Metrics.find Metrics.default name)
  in
  Protocol.ok
    [
      ("type", Json.Str "health");
      ("role", Json.Str "router");
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
      ("workers", Json.Int (metric "server.workers"));
      ("queue_depth", Json.Int (metric "server.queue_depth"));
      ("shards", Json.Int (Shard_map.count t.map));
      ("topology", Shard_map.topology_json t.map);
      ( "forwarded",
        Json.List
          (Array.to_list
             (Array.map (fun a -> Json.Int (Atomic.get a)) t.per_shard)) );
      ("pruned", Json.Int (metric "shard.pruned"));
      ("shard_failures", Json.Int (metric "shard.failures"));
    ]

let slow_response =
  Protocol.ok
    [
      ("type", Json.Str "slow_queries");
      ("threshold_ns", Json.Int 0);
      ("capacity", Json.Int 0);
      ("count", Json.Int 0);
      ("entries", Json.List []);
    ]

(* --- the request pipeline ---------------------------------------------- *)

let serve_line ?(queued_ns = 0) ?deadline t line =
  Metrics.incr c_requests;
  let t0 = Unix.gettimeofday () in
  if queued_ns > 0 then Metrics.observe h_queue_wait queued_ns;
  let answer =
    match Protocol.parse_line line with
    | Error msg -> `Doc (Protocol.error ~detail:msg Protocol.Bad_request)
    | Ok (client_id, req) -> (
        let expired =
          match deadline with
          | Some d -> Unix.gettimeofday () > d
          | None -> false
        in
        if expired then
          `Doc
            (Protocol.error ~detail:"deadline exceeded before execution"
               Protocol.Timeout)
        else
          match req with
          | Protocol.Ping -> `Doc (Protocol.ok [ ("type", Json.Str "pong") ])
          | Protocol.Quit -> `Doc (Protocol.ok [ ("type", Json.Str "bye") ])
          | Protocol.Stats -> `Doc (stats_response t)
          | Protocol.Health -> `Doc (health_response t)
          | Protocol.Slow_queries _ -> `Doc slow_response
          | Protocol.Query { text; _ } ->
              let doc =
                query_response t client_id ~line ~deadline text
              in
              (match (doc, client_id) with
              | `Doc (Json.Obj _ as d), Some id
                when Json.member "trace_id" d = None ->
                  `Doc (attach_trace_id id d)
              | _ -> doc))
  in
  let payload =
    match answer with `Raw payload -> payload | `Doc doc -> Json.to_string doc
  in
  Metrics.observe h_request_ns (ns_since t0);
  let is_error =
    match answer with
    | `Doc doc -> not (Protocol.response_is_ok doc)
    | `Raw payload -> (
        match Json.of_string payload with
        | j -> not (Protocol.response_is_ok j)
        | exception Json.Parse_error _ -> true)
  in
  if is_error then Metrics.incr c_request_errors;
  payload

let handler t =
  {
    Server.serve =
      (fun ~queued_ns ~deadline line -> serve_line ~queued_ns ?deadline t line);
    on_stop = (fun () -> ());
  }
