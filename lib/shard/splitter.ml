module Index = Uindex.Index
module Value = Objstore.Value

let shard_key ~ty key =
  let _, stop = Value.decode ~ty key 0 in
  let n = String.length key in
  if stop >= n || key.[stop] <> '\x01' then
    invalid_arg "Splitter.shard_key: missing value separator";
  match String.index_from_opt key (stop + 1) '\x01' with
  | None -> invalid_arg "Splitter.shard_key: unterminated component code"
  | Some code_end -> String.sub key (stop + 1) (code_end - stop)

let in_range (s : Shard_map.shard) sk =
  sk >= s.lo && match s.hi with None -> true | Some hi -> sk < hi

let restrict ?fill ~source map i pager =
  let s = Shard_map.get map i in
  let ty = Index.attr_ty source in
  let target = Index.recreate source pager in
  let tree = Index.tree source in
  let sc = Btree.Scanner.create tree ~read:(Btree.raw_read tree) in
  let started = ref false in
  let rec next () =
    let e =
      if !started then Btree.Scanner.next sc
      else begin
        started := true;
        Btree.Scanner.seek sc ""
      end
    in
    match e with
    | None -> Seq.Nil
    | Some e ->
        if in_range s (shard_key ~ty e.Btree.key) then
          Seq.Cons ((e.Btree.key, e.value ()), next)
        else next ()
  in
  Btree.bulk_load ?fill (Index.tree target) next;
  target

let split ?fill ~source ~make_pager map =
  Array.init (Shard_map.count map) (fun i ->
      restrict ?fill ~source map i (make_pager i))

let choose_boundaries ~source ~shards =
  let tree = Index.tree source in
  let ty = Index.attr_ty source in
  let counts = Hashtbl.create 64 in
  Btree.iter tree (fun e ->
      let sk = shard_key ~ty e.Btree.key in
      (* strip the 0x01 terminator: boundaries are bare serialized codes,
         so each cut lands exactly on a class-subtree boundary *)
      let code = String.sub sk 0 (String.length sk - 1) in
      Hashtbl.replace counts code
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts code)));
  let codes =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
  in
  let total = List.fold_left (fun a (_, c) -> a + c) 0 codes in
  if total = 0 then []
  else begin
    let bounds = ref [] and acc = ref 0 and next = ref 1 in
    List.iter
      (fun (code, c) ->
        (* cut before this class once the running count passes the next
           equal-share target; at most one cut per class keeps ranges
           non-empty even when one class dominates *)
        if !next < shards && !acc > 0 && !acc * shards >= total * !next
        then begin
          bounds := code :: !bounds;
          incr next
        end;
        acc := !acc + c)
      codes;
    List.rev !bounds
  end
