(** The scatter-gather query frontend.

    One router serves the same wire protocol as an unsharded
    {!Uindex_server.Service}: it parses each query, asks {!Planner}
    which shards the query's code intervals can touch, fans the request
    out to exactly those shards — in-process services or remote
    endpoints — and merges the replies.

    {b Reply canonicalization.}  Every shard renders rows in the
    canonical sorted order ({!Uindex_server.Service}), and a COD-range
    partition assigns each entry to exactly one shard, so the merged
    row list (re-sorted by rendered bytes) is byte-identical to the
    unsharded engine's row list; [count] is the sum of shard counts and
    the cost fields ([page_reads], [pool_hits], [entries_scanned]) are
    sums over the shards actually contacted.  {!canonical_projection}
    extracts the deployment-independent part of a reply — everything
    except the cost fields — which is the byte-comparable answer.

    {b Single-shard bypass.}  A query routed to one shard is forwarded
    verbatim and its reply bytes returned untouched: no parse, no merge,
    no re-render.

    {b Partial failure.}  A shard that cannot be reached (after the
    client's retry policy is exhausted) or that replies with an error
    the others do not turns the whole reply into a typed
    [shard_failure] error naming the lost shards — never a hang and
    never a silently partial row set.  If every contacted shard returns
    the {e same} error kind (e.g. [unroutable]), that reply is passed
    through unchanged. *)

module Schema := Oodb_schema.Schema
module Encoding := Oodb_schema.Encoding
module Service := Uindex_server.Service
module Server := Uindex_server.Server
module Client := Uindex_server.Client

type backend =
  | Local of Service.t  (** in-process shard: direct dispatch *)
  | Remote of string
      (** connect spec ([HOST:PORT] or Unix socket path); each fan-out
          request opens a fresh retrying connection, so any number of
          worker domains may serve through the router concurrently *)

type t

val create :
  ?shard_timeout:float ->
  ?retry_policy:Client.retry_policy ->
  schema:Schema.t ->
  enc:Encoding.t ->
  map:Shard_map.t ->
  backends:backend array ->
  unit ->
  t
(** [backends] must have one entry per shard of [map].
    [?shard_timeout] (default 5 s) is the per-shard socket deadline on
    remote fan-out requests. *)

val map : t -> Shard_map.t

val requests_per_shard : t -> int array
(** How many requests this router has forwarded to each shard — the
    pruning-exactness witness: a shard disjoint from every query's
    interval set must show zero. *)

val route_query : t -> Uindex.Query.t -> int list
(** The shards {!Planner} would fan this query to (no request is
    sent). *)

val respond : ?trace_id:int -> t -> Uindex.Query.t -> string
(** The reply for an already-parsed query — {!serve_line}'s query path
    without the wire parsing.  This is how a query whose pattern admits
    no code interval at all ([P_union []], which has no textual form)
    gets its canonical empty reply without contacting any shard. *)

val serve_line : ?queued_ns:int -> ?deadline:float -> t -> string -> string
(** The router's request pipeline — same contract as
    {!Uindex_server.Service.serve_line}, feeding the same [server.*]
    instruments plus [shard.fanout] (shards contacted per query),
    [shard.pruned] (shard requests avoided) and [shard.merge_ns]. *)

val handler : t -> Server.handler
(** Plug the router behind the socket server:
    [Server.start_handler (Router.handler r) config]. *)

val canonical_projection : string -> string
(** The deployment-independent projection of a reply payload: parses the
    JSON and keeps [ok], [type], [count], [rows], [error] and
    [trace_id] members (in that order), dropping per-deployment cost
    fields.  Two deployments answer a query identically iff their
    projections are byte-identical.  Unparseable payloads are returned
    unchanged. *)
