(** The shard map: a total, non-overlapping cover of the serialized-code
    space by COD ranges, one range per shard.

    The U-index sorts entries by attribute value first and by the first
    component's serialized class code second, so a COD range does {e not}
    correspond to one contiguous key range — it is the union, over all
    value groups, of that group's code sub-interval.  What a COD range
    {e does} give is exact routing: an entry belongs to exactly one shard
    (the one whose [[lo, hi)] range contains its first component's
    serialized code), and a query touches exactly the shards whose
    ranges intersect its class patterns' code intervals (see
    {!Planner}).  Both facts follow from the paper's containment
    argument: every class subtree is one contiguous serialized-code
    interval.

    Ranges are half-open byte-string intervals under [String.compare].
    Shard 0 starts at [""] (below every code) and the last shard is
    unbounded above, so the cover is total by construction and the
    validator only has to check contiguity. *)

type shard = {
  lo : string;  (** inclusive serialized-code lower bound; [""] on shard 0 *)
  hi : string option;  (** exclusive upper bound; [None] = unbounded (last) *)
  file : string option;  (** page file holding this shard's entries *)
  endpoint : string option;  (** connect spec ([HOST:PORT] or socket path) *)
}

type t

val make : shard list -> t
(** Validates the cover: at least one shard, [lo] of the first is [""],
    each [hi] equals the next shard's [lo], every bounded range is
    non-empty ([lo < hi]), and only the last shard is unbounded.  Raises
    [Invalid_argument] with a diagnostic otherwise. *)

val shards : t -> shard array
val count : t -> int
val get : t -> int -> shard

val locate : t -> string -> int
(** The unique shard whose range contains the given serialized code. *)

val intersecting : t -> (string * string) list -> int list
(** Shard ids (ascending) whose range intersects at least one of the
    half-open code intervals.  Empty intervals ([lo >= hi]) and an empty
    list intersect nothing. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> t
(** Raises [Invalid_argument] on a document that does not describe a
    valid cover.  Range bounds are raw byte strings; {!Obs.Json} escapes
    the [0x02] unit terminators, so maps round-trip byte-exactly. *)

val save : t -> string -> unit
val load : string -> t
(** File I/O over {!to_json}/{!of_json}; [load] raises [Sys_error] or
    [Invalid_argument]. *)

val topology_json : t -> Obs.Json.t
(** The shard list as displayed by [health]: per shard the range (with
    the [0x02] terminators rendered as ["."] for readability), file and
    endpoint. *)
