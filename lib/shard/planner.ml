module Encoding = Oodb_schema.Encoding
module Query = Uindex.Query

(* sort by lo and merge touching/overlapping intervals, dropping empties *)
let normalize ivs =
  let ivs = List.filter (fun (lo, hi) -> lo < hi) ivs in
  let ivs = List.sort (fun (a, _) (b, _) -> String.compare a b) ivs in
  let rec merge = function
    | (lo1, hi1) :: (lo2, hi2) :: rest when lo2 <= hi1 ->
        merge ((lo1, (if hi1 < hi2 then hi2 else hi1)) :: rest)
    | iv :: rest -> iv :: merge rest
    | [] -> []
  in
  merge ivs

let rec collect enc = function
  | Query.P_class c -> [ Encoding.exact_interval enc c ]
  | Query.P_subtree c -> [ Encoding.subtree_interval enc c ]
  | Query.P_union ps -> List.concat_map (collect enc) ps

let code_intervals enc pat = normalize (collect enc pat)

let route map enc (q : Query.t) =
  match q.comps with
  | [] -> List.init (Shard_map.count map) Fun.id
  | first :: _ -> Shard_map.intersecting map (code_intervals enc first.pat)
