(** Query-to-shard routing: the paper's containment argument lifted one
    level.  A query's first component (the path target — the component
    whose code leads every entry key after the value bytes) restricts
    entries to a set of serialized-code intervals: one exact interval
    per [P_class], one subtree interval per [P_subtree], their union for
    [P_union].  A shard whose COD range is disjoint from that interval
    set cannot hold a matching entry, so the router never contacts it —
    pruning is exact, not heuristic. *)

module Encoding := Oodb_schema.Encoding

val code_intervals :
  Encoding.t -> Uindex.Query.class_pat -> (string * string) list
(** The normalized (sorted, merged, non-empty) half-open serialized-code
    intervals admitted by the pattern.  [P_union []] yields []. *)

val route : Shard_map.t -> Encoding.t -> Uindex.Query.t -> int list
(** Shard ids (ascending) the query can touch, from the first
    component's pattern.  A query with no components routes everywhere
    (nothing to prune on). *)
