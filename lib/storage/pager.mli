(** Fixed-size page store with crash-safe commits and fault injection.

    The U-index lives in B-tree nodes stored as fixed-size pages.  A pager
    hands out pages by integer id and counts every access in a {!Stats.t},
    which is what the paper's page-read experiments measure.

    Three backends:

    - {!create} keeps pages in memory (the default for experiments);
    - {!create_file} / {!open_file} back the store with a single file;
    - {!create_faulty} wraps either of the above with deterministic
      injected faults for crash testing.

    {2 File layout and durability}

    Physical page 0 of a page file is a header (magic, page size,
    allocation counters, the head of the free-page chain, a small client
    metadata string, and an FNV-1a checksum); logical page [i] is stored
    at physical page [i + 1].  Freed pages form an intrusive on-disk list:
    each stores the id of the next free page in its first 4 bytes, so
    {!open_file} restores the full allocation state of a previous session.

    File-backed writes are buffered in memory until {!sync}, which commits
    them atomically with a redo journal ([path ^ ".journal"]): the new
    page images are appended to the journal and fsynced, then written in
    place and fsynced, then the journal is removed.  A crash before the
    journal's commit marker is durable leaves the main file untouched (the
    torn journal is discarded); a crash after it is replayed by
    {!recover}, which {!open_file} runs automatically.  Between syncs the
    on-disk file always holds the last committed state. *)

type t

exception Fault of string
(** Raised by injected faults (see {!create_faulty}).  After a write
    fault fires, the pager behaves like a crashed process: every later
    physical write raises too, so no further state reaches disk. *)

type fault_spec = {
  fail_write : int option;
      (** fail the [n]-th physical write (journal record, journal commit
          marker, or in-place page write), counted from the pager's
          creation — see {!physical_writes}; afterwards the pager is
          "crashed": every later physical write raises *)
  torn : bool;
      (** when the failing write fires, land the first half of it before
          raising — a torn page/record *)
  read_error_every : int option;
      (** raise a transient {!Fault} on every [k]-th {!read}; the read
          can simply be retried *)
}

val no_faults : fault_spec
(** All fields off; override with [{ no_faults with fail_write = ... }]. *)

(** {1 Constructors} *)

val create : ?page_size:int -> unit -> t
(** In-memory pager. [page_size] defaults to 1024 bytes (the size used
    throughout the paper's second experiment) and must be at least 64. *)

val create_file : ?page_size:int -> string -> t
(** [create_file path] creates (or truncates) a file-backed pager.  The
    header is written immediately, so the file is a valid empty store
    even before the first {!sync}.  Raises [Unix.Unix_error] on I/O
    failure. *)

val open_file : ?page_size:int -> string -> t
(** [open_file path] reopens a file written by {!create_file}, after
    first replaying any committed journal left by a crash (see
    {!recover}).  Restores the allocation high-water mark, the free
    list, and the {!meta} string.  [page_size] is a cross-check: when
    given, it must match the size recorded in the header.  Raises
    [Invalid_argument] on a missing or corrupt header. *)

val recover : string -> bool
(** [recover path] replays the journal of an interrupted {!sync}, if
    any.  Returns [true] when a complete, checksummed journal was
    replayed into [path]; [false] when there was no journal or only a
    torn one (which is deleted — the main file already holds the
    consistent pre-transaction state).  Idempotent; called by
    {!open_file}. *)

val create_faulty : fault_spec -> t -> t
(** [create_faulty spec t] arms deterministic faults on [t] (returned
    for convenience; [t] itself is modified and shares its stats).
    Faults raise {!Fault} and are counted in [stats.faults]. *)

(** {1 Page operations} *)

val alloc : t -> int
(** Allocate a zeroed page and return its id; reuses freed pages first.
    Counts as one alloc (not a read). *)

val read : t -> int -> Bytes.t
(** [read t id] returns a copy of the page contents and increments the
    read counter.  Raises [Invalid_argument] if [id] was never allocated
    or has been freed. *)

val write : t -> int -> Bytes.t -> unit
(** [write t id b] replaces the page contents and increments the write
    counter.  [Bytes.length b] must equal the page size.  File-backed
    writes become durable at the next {!sync}. *)

val free : t -> int -> unit
(** Release a page for reuse.  Accessing a freed page raises. *)

val sync : t -> unit
(** Atomically commit all buffered writes, the free list, and the
    {!meta} string (journal, then checkpoint; see the module header).
    A no-op on in-memory pagers and when nothing changed. *)

val close : t -> unit
(** Runs {!sync}, then releases the backing file (memory pagers just
    close).  Further access raises [Invalid_argument]. *)

(** {1 Metadata and introspection} *)

val meta : t -> string
(** Small client metadata string stored in the header page — e.g. the
    root id of the B-tree living in this store.  [""] initially. *)

val set_meta : t -> string -> unit
(** Replace the metadata string; committed by the next {!sync}.  Raises
    [Invalid_argument] if it does not fit in the header page (capacity
    is [page_size - 30] bytes). *)

val page_size : t -> int

val page_count : t -> int
(** Number of live (allocated, not freed) pages: the structure's storage
    footprint in pages. *)

val stats : t -> Stats.t
(** The live counters of this pager (shared, mutable). *)

val physical_writes : t -> int
(** Total backend write operations since creation — the clock that
    [fail_write] counts against.  Run a workload once without faults to
    learn its write count, then replay with [fail_write] anywhere in
    that range. *)

val journal_path : string -> string
(** [journal_path path] is the journal file used by a pager backed by
    [path] (for tests that corrupt or inspect it). *)

(** A per-query page cache.  [Cache.read] fetches each page from the
    underlying source at most once, so the pager's read counter counts
    distinct pages — the paper's accounting for the parallel retrieval
    algorithm.  [of_read] layers the cache over any page source (e.g. a
    shared {!Buffer_pool}) instead of a raw pager. *)
module Cache : sig
  type pager := t
  type t

  val create : pager -> t

  val of_read : (int -> Bytes.t) -> t
  (** Memoize an arbitrary page-fetch function for one query. *)

  val read : t -> int -> Bytes.t
  val distinct_reads : t -> int
end
