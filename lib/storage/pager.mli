(** Fixed-size page store with crash-safe commits, per-page checksums,
    and fault injection.

    The U-index lives in B-tree nodes stored as fixed-size pages.  A pager
    hands out pages by integer id and counts every access in a {!Stats.t},
    which is what the paper's page-read experiments measure.

    Three backends:

    - {!create} keeps pages in memory (the default for experiments);
    - {!create_file} / {!open_file} back the store with a single file;
    - {!create_faulty} wraps either of the above with deterministic
      injected faults for crash and corruption testing.

    {2 File layout and durability}

    Physical page 0 of a page file is a header (magic, page size,
    allocation counters, the head of the free-page chain, a flags word, a
    small client metadata string, and an FNV-1a checksum).  Without
    checksums, logical page [i] is stored at physical page [i + 1]; with
    checksums (the default for file pagers) data pages are interleaved
    with {e checksum pages} — one per group of [page_size/4 - 1] logical
    pages, holding a u32 FNV-1a checksum of each page in its group plus a
    self-checksum — so client pages keep their full capacity and page-read
    counts are identical either way.  Freed pages form an intrusive
    on-disk list: each stores the id of the next free page in its first 4
    bytes, so {!open_file} restores the full allocation state of a
    previous session.

    File-backed writes are buffered in memory until {!sync}, which commits
    them atomically with a redo journal ([path ^ ".journal"]): the new
    page images — checksum pages included, so they commit atomically with
    the data they cover — are appended to the journal and fsynced, then
    written in place and fsynced, then the journal is removed.  A crash
    before the journal's commit marker is durable leaves the main file
    untouched (the torn journal is discarded); a crash after it is
    replayed by {!recover}, which {!open_file} runs automatically.
    Between syncs the on-disk file always holds the last committed state.

    {2 Corruption detection}

    With checksums enabled, every {!read} that hits the backend verifies
    the page against its recorded checksum; a mismatch raises
    {!Storage_error.Corruption} and increments the process-wide
    [storage.checksum_failures] counter — a damaged page is never served
    silently.  {!open_file} additionally validates the header, every
    checksum page, and the free-list chain, raising
    {!Storage_error.Corruption} with the failing component.  Only a
    missing magic or an explicit page-size mismatch — "this is not the
    file you meant", rather than "this file is damaged" — still raise
    [Invalid_argument].

    {2 Snapshots and thread safety}

    {!snapshot} pins an immutable read view of the pager's last committed
    image as a read-only pager: file-backed pagers pin the on-disk state
    of the last {!sync}, in-memory pagers (whose writes apply
    immediately) pin the current state.  Snapshots are copy-on-commit:
    when the writer is about to overwrite a committed page — an in-memory
    write/free, or a file checkpoint — the old image is stashed into the
    overlay of every snapshot that can still see it, so snapshot reads
    cost nothing until the writer actually commits over them.  A snapshot
    carries its own {!Stats.t} (so per-query read accounting works
    unchanged on a view) and its own pinned checksum table (so media rot
    under a pinned page is still detected); {!release_snapshot} folds its
    stats back into the parent.

    The concurrency contract is {e single writer, many snapshot
    readers}: all mutating operations must come from one thread at a
    time (callers serialize writers — see [Db]'s writer lock), while any
    number of threads may concurrently read through distinct snapshots
    of the same pager.  A pager-internal mutex serializes every
    state-touching operation with snapshot fetches (they share the file
    descriptor and page array), so the writer may run {e concurrently}
    with snapshot readers.  Live (non-snapshot) reads belong to the
    writer side of the contract.  Introspection helpers ({!page_count},
    {!high_water}, {!free_pages}, {!meta}, {!stats}) read without the
    lock and belong to the owning thread.  A snapshot itself must only
    be used by one thread at a time (sessions give each reader its
    own). *)

type t

exception Fault of string
(** Raised by injected faults (see {!create_faulty}).  After a write
    fault fires, the pager behaves like a crashed process: every later
    physical write raises too, so no further state reaches disk. *)

(** Deterministic media damage, applied to {e committed} backend state
    (bypassing the write buffer and the checksum bookkeeping — the disk
    rotting underneath the pager).  All but [Stale_page] are applied the
    moment {!create_faulty} arms them. *)
type media_fault =
  | Flip_bit of { page : int; bit : int }
      (** flip one bit of logical page [page] ([bit] is reduced modulo
          the page's bit width) *)
  | Zero_page of { page : int }  (** overwrite a logical page with zeros *)
  | Truncate_file of { keep : int }
      (** truncate the backing file to [keep] {e physical} pages
          (header = page 0); reads past the end see zeros.  File
          backends only. *)
  | Stale_page of { page : int }
      (** a lost write: snapshot the page's committed content now and
          silently restore it after the next {!sync} completes — the
          commit succeeds, but this page's new image never reaches the
          platter *)

type fault_spec = {
  fail_write : int option;
      (** fail the [n]-th physical write (journal record, journal commit
          marker, or in-place page write), counted from the pager's
          creation — see {!physical_writes}; afterwards the pager is
          "crashed": every later physical write raises *)
  torn : bool;
      (** when the failing write fires, land the first half of it before
          raising — a torn page/record *)
  read_error_every : int option;
      (** raise a transient {!Fault} on every [k]-th {!read}; the read
          can simply be retried *)
  media : media_fault list;
      (** media damage to inflict (see {!media_fault}) *)
}

val no_faults : fault_spec
(** All fields off; override with [{ no_faults with fail_write = ... }]. *)

(** {1 Constructors} *)

val create : ?page_size:int -> ?checksums:bool -> unit -> t
(** In-memory pager. [page_size] defaults to 1024 bytes (the size used
    throughout the paper's second experiment) and must be at least 64.
    [checksums] defaults to [false] — the in-memory backend is the
    paper's accounting substrate and has no disk to rot. *)

val create_file : ?page_size:int -> ?checksums:bool -> string -> t
(** [create_file path] creates (or truncates) a file-backed pager.  The
    header is written immediately, so the file is a valid empty store
    even before the first {!sync}.  [checksums] defaults to [true].
    Raises [Unix.Unix_error] on I/O failure. *)

val open_file : ?page_size:int -> string -> t
(** [open_file path] reopens a file written by {!create_file}, after
    first replaying any committed journal left by a crash (see
    {!recover}).  Restores the allocation high-water mark, the free
    list, the checksum table, and the {!meta} string; whether checksums
    are verified is read back from the header flags.  [page_size] is a
    cross-check: when given, it must match the size recorded in the
    header.  Raises [Invalid_argument] on a missing magic or page-size
    mismatch, {!Storage_error.Corruption} on a damaged header, checksum
    page, or free list. *)

type recover_status =
  | No_journal  (** nothing to do: the file is already consistent *)
  | Replayed  (** a committed journal was replayed into the file *)
  | Discarded_torn
      (** an uncommitted (torn) journal was discarded; the main file
          holds the consistent pre-transaction state, but the
          transaction that wrote the journal is lost *)

val recover_status : string -> recover_status
(** [recover_status path] replays the journal of an interrupted {!sync},
    if any, and reports what it found.  Idempotent; called by
    {!open_file}. *)

val recover : string -> bool
(** [recover path] = [recover_status path = Replayed].  [false] when
    there was no journal or only a torn one (which is deleted — the main
    file already holds the consistent pre-transaction state). *)

val create_faulty : fault_spec -> t -> t
(** [create_faulty spec t] arms deterministic faults on [t] (returned
    for convenience; [t] itself is modified and shares its stats).
    Write/read faults raise {!Fault} and are counted in [stats.faults];
    media faults damage committed pages silently — with checksums on,
    the damage is caught as {!Storage_error.Corruption} on the next
    read of the page instead. *)

(** {1 Page operations} *)

val alloc : t -> int
(** Allocate a zeroed page and return its id; reuses freed pages first.
    Counts as one alloc (not a read). *)

val read : t -> int -> Bytes.t
(** [read t id] returns a copy of the page contents and increments the
    read counter.  Raises [Invalid_argument] if [id] was never allocated
    or has been freed, {!Storage_error.Corruption} if checksums are
    enabled and the committed content fails verification. *)

val write : t -> int -> Bytes.t -> unit
(** [write t id b] replaces the page contents and increments the write
    counter.  [Bytes.length b] must equal the page size.  File-backed
    writes become durable at the next {!sync}. *)

val free : t -> int -> unit
(** Release a page for reuse.  Accessing a freed page raises. *)

val sync : t -> unit
(** Atomically commit all buffered writes, the free list, the checksum
    pages, and the {!meta} string (journal, then checkpoint; see the
    module header).  A no-op on in-memory pagers and when nothing
    changed. *)

val close : t -> unit
(** Runs {!sync}, then releases the backing file (memory pagers just
    close).  Further access raises [Invalid_argument].  On a snapshot,
    [close] is {!release_snapshot}.  Release all snapshots before
    closing their parent: a released snapshot is harmless, but an
    unreleased one would fail its next read once the parent's file
    descriptor is gone. *)

(** {1 Snapshots} *)

val snapshot : t -> t
(** [snapshot t] pins the last committed image of [t] as a read-only
    pager: {!read} and the introspection functions work (and account
    into the snapshot's own {!stats}), while {!write}, {!alloc},
    {!free}, {!sync} and {!set_meta} raise [Invalid_argument].  {!meta}
    returns the committed metadata string — for a synced file-backed
    index this names the committed B-tree root.  The snapshot is valid
    until {!release_snapshot}; the parent may keep writing and syncing
    concurrently, and the snapshot's contents never change.  Raises
    [Invalid_argument] on a closed pager or on a snapshot. *)

val release_snapshot : t -> unit
(** Release a snapshot: its private read counters are merged into the
    parent's {!stats} and its stashed pages are dropped.  Idempotent.
    Reading a released snapshot raises [Invalid_argument]. *)

val is_snapshot : t -> bool

val durable : t -> bool
(** Whether the underlying storage is file-backed ([true] for a
    file-backed pager and for any snapshot of one).  Sessions use this
    to decide where the committed B-tree root lives: in the committed
    {!meta} for durable pagers, in the live tree for in-memory ones. *)

val live_snapshots : t -> int
(** Number of currently pinned, unreleased snapshots — for asserting
    that sessions drain. *)

(** {1 Metadata and introspection} *)

val meta : t -> string
(** Small client metadata string stored in the header page — e.g. the
    root id of the B-tree living in this store.  [""] initially. *)

val set_meta : t -> string -> unit
(** Replace the metadata string; committed by the next {!sync}.  Raises
    [Invalid_argument] if it does not fit in the header page (capacity
    is [page_size - 32] bytes). *)

val page_size : t -> int

val checksums_enabled : t -> bool
(** Whether this pager verifies per-page checksums on read. *)

val page_count : t -> int
(** Number of live (allocated, not freed) pages: the structure's storage
    footprint in pages. *)

val high_water : t -> int
(** The allocation high-water mark: every page id ever allocated is in
    [0 .. high_water - 1].  Used by the verifier to enumerate the page
    universe. *)

val is_live : t -> int -> bool
(** Whether [id] is currently allocated (in range, not freed). *)

val free_pages : t -> int list
(** The current free list (allocation order; head is reused first). *)

val stats : t -> Stats.t
(** The live counters of this pager (shared, mutable; see the
    thread-safety contract in the module header — a snapshot's stats are
    its own until released). *)

val record_pool_event : t -> [ `Hit | `Miss | `Eviction ] -> unit
(** Mirror one buffer-pool event into this pager's {!stats} under the
    pager's lock (used by {!Buffer_pool} so pool counters cannot race
    snapshot-release merges). *)

val physical_writes : t -> int
(** Total backend write operations since creation — the clock that
    [fail_write] counts against.  Run a workload once without faults to
    learn its write count, then replay with [fail_write] anywhere in
    that range. *)

val journal_path : string -> string
(** [journal_path path] is the journal file used by a pager backed by
    [path] (for tests that corrupt or inspect it). *)

(** A per-query page cache.  [Cache.read] fetches each page from the
    underlying source at most once, so the pager's read counter counts
    distinct pages — the paper's accounting for the parallel retrieval
    algorithm.  [of_read] layers the cache over any page source (e.g. a
    shared {!Buffer_pool}) instead of a raw pager. *)
module Cache : sig
  type pager := t
  type t

  val create : pager -> t

  val of_read : (int -> Bytes.t) -> t
  (** Memoize an arbitrary page-fetch function for one query. *)

  val read : t -> int -> Bytes.t
  val distinct_reads : t -> int
end
