(** A paged store with page-read accounting.

    Two backends share one interface:

    - {!create}: pages in memory.  The paper's reported metric (page
      reads) depends only on which pages an algorithm touches, so the
      experiments run on this backend — deterministic and fast;
    - {!create_file}: pages in an ordinary file (the paper's "index files
      were stored in page files"), read and written with positioned I/O.
      Allocation metadata is kept in memory; the file is storage, not a
      crash-safe database.

    Reads are counted on every {!read} call.  Retrieval algorithms that
    want buffer-pool semantics ("utilize any page which is already in
    memory", Section 3.3) keep their own per-query cache and therefore
    call {!read} at most once per page; see {!Cache}. *)

type t

val create : ?page_size:int -> unit -> t
(** [create ~page_size ()] makes an empty in-memory store.  [page_size]
    defaults to 1024 bytes, the size used throughout the paper's second
    experiment. *)

val create_file : ?page_size:int -> string -> t
(** [create_file path] makes an empty file-backed store, truncating
    [path] if it exists.  Raises [Unix.Unix_error] on I/O failure. *)

val open_file : ?page_size:int -> string -> t
(** [open_file path] re-attaches to an existing page file: every page up
    to the file's length is considered live.  Free-list state is not
    persisted, so pages freed in a previous session are simply not
    reused.  Raises [Invalid_argument] if the file length is not a
    multiple of the page size. *)

val close : t -> unit
(** Releases the backing file (no-op for the memory backend).  Further
    access raises. *)

val page_size : t -> int

val stats : t -> Stats.t
(** The live counters of this pager (shared, mutable). *)

val alloc : t -> int
(** [alloc t] allocates a fresh zeroed page and returns its id.  Reuses
    freed pages first.  Counts as one alloc (not a read). *)

val read : t -> int -> Bytes.t
(** [read t id] returns the current contents of page [id] as a fresh copy
    and increments the read counter.  Raises [Invalid_argument] on an
    unallocated id. *)

val write : t -> int -> Bytes.t -> unit
(** [write t id b] replaces page [id] with [b] (must be exactly
    [page_size t] long) and increments the write counter. *)

val free : t -> int -> unit
(** [free t id] returns page [id] to the allocator. *)

val page_count : t -> int
(** Number of live (allocated, not freed) pages: the structure's storage
    footprint in pages. *)

(** A per-query page cache.  [Cache.read] fetches each page from the
    underlying pager at most once, so the pager's read counter counts
    distinct pages — the paper's accounting for the parallel retrieval
    algorithm. *)
module Cache : sig
  type pager := t
  type t

  val create : pager -> t
  val read : t -> int -> Bytes.t
  val distinct_reads : t -> int
end
