let put_u16 = Bytes.set_uint16_be
let get_u16 = Bytes.get_uint16_be

let put_u32 b off v =
  Bytes.set_int32_be b off (Int32.of_int v)

let get_u32 b off =
  Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF

(* Offset-binary: flipping the sign bit of the two's-complement 64-bit
   image makes unsigned byte order agree with signed integer order. *)
let encode_int x =
  let v = Int64.logxor (Int64.of_int x) Int64.min_int in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Bytes.unsafe_to_string b

let decode_int s off =
  let v = Bytes.get_int64_be (Bytes.unsafe_of_string s) off in
  Int64.to_int (Int64.logxor v Int64.min_int)

let encode_u32 x =
  let b = Bytes.create 4 in
  put_u32 b 0 x;
  Bytes.unsafe_to_string b

let decode_u32 s off = get_u32 (Bytes.unsafe_of_string s) off

let succ_prefix p =
  (* drop trailing 0xff bytes, then increment the last remaining byte *)
  let rec go i =
    if i < 0 then invalid_arg "Bytes_util.succ_prefix: prefix is all 0xff"
    else if p.[i] = '\xff' then go (i - 1)
    else String.sub p 0 i ^ String.make 1 (Char.chr (Char.code p.[i] + 1))
  in
  go (String.length p - 1)

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let match_len b boff s soff len =
  let i = ref 0 in
  while
    !i < len
    && Bytes.unsafe_get b (boff + !i) = String.unsafe_get s (soff + !i)
  do
    incr i
  done;
  !i

(* FNV-1a, folded to 32 bits; used for page-file header and journal
   checksums.  Not cryptographic — it only needs to catch torn writes. *)
let fnv32 ?(init = 0x811C9DC5) b off len =
  let h = ref init in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let check_text s =
  String.iter
    (fun c ->
      if Char.code c < 0x08 then
        invalid_arg "Bytes_util.check_text: byte below 0x08 in text component")
    s;
  s
