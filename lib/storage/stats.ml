type t = {
  mutable reads : int;
  mutable writes : int;
  mutable allocs : int;
  mutable faults : int;
}

let create () = { reads = 0; writes = 0; allocs = 0; faults = 0 }

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.allocs <- 0;
  t.faults <- 0

let snapshot t =
  { reads = t.reads; writes = t.writes; allocs = t.allocs; faults = t.faults }

let diff ~before ~after =
  {
    reads = after.reads - before.reads;
    writes = after.writes - before.writes;
    allocs = after.allocs - before.allocs;
    faults = after.faults - before.faults;
  }

let pp ppf t =
  Format.fprintf ppf "{reads=%d; writes=%d; allocs=%d; faults=%d}" t.reads
    t.writes t.allocs t.faults
