type t = {
  mutable reads : int;
  mutable writes : int;
  mutable allocs : int;
  mutable faults : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable pool_evictions : int;
}

let create () =
  {
    reads = 0;
    writes = 0;
    allocs = 0;
    faults = 0;
    pool_hits = 0;
    pool_misses = 0;
    pool_evictions = 0;
  }

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.allocs <- 0;
  t.faults <- 0;
  t.pool_hits <- 0;
  t.pool_misses <- 0;
  t.pool_evictions <- 0

let snapshot t =
  {
    reads = t.reads;
    writes = t.writes;
    allocs = t.allocs;
    faults = t.faults;
    pool_hits = t.pool_hits;
    pool_misses = t.pool_misses;
    pool_evictions = t.pool_evictions;
  }

let merge_into ~into s =
  into.reads <- into.reads + s.reads;
  into.writes <- into.writes + s.writes;
  into.allocs <- into.allocs + s.allocs;
  into.faults <- into.faults + s.faults;
  into.pool_hits <- into.pool_hits + s.pool_hits;
  into.pool_misses <- into.pool_misses + s.pool_misses;
  into.pool_evictions <- into.pool_evictions + s.pool_evictions

let diff ~before ~after =
  {
    reads = after.reads - before.reads;
    writes = after.writes - before.writes;
    allocs = after.allocs - before.allocs;
    faults = after.faults - before.faults;
    pool_hits = after.pool_hits - before.pool_hits;
    pool_misses = after.pool_misses - before.pool_misses;
    pool_evictions = after.pool_evictions - before.pool_evictions;
  }

let pp ppf t =
  Format.fprintf ppf "{reads=%d; writes=%d; allocs=%d; faults=%d" t.reads
    t.writes t.allocs t.faults;
  if t.pool_hits <> 0 || t.pool_misses <> 0 || t.pool_evictions <> 0 then
    Format.fprintf ppf "; pool_hits=%d; pool_misses=%d; pool_evictions=%d"
      t.pool_hits t.pool_misses t.pool_evictions;
  Format.fprintf ppf "}"
