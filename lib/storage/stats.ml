type t = { mutable reads : int; mutable writes : int; mutable allocs : int }

let create () = { reads = 0; writes = 0; allocs = 0 }

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.allocs <- 0

let snapshot t = { reads = t.reads; writes = t.writes; allocs = t.allocs }

let diff ~before ~after =
  {
    reads = after.reads - before.reads;
    writes = after.writes - before.writes;
    allocs = after.allocs - before.allocs;
  }

let pp ppf t =
  Format.fprintf ppf "{reads=%d; writes=%d; allocs=%d}" t.reads t.writes
    t.allocs
