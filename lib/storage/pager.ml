module Bu = Bytes_util

exception Fault of string

(* Process-wide instruments (the default Obs registry).  Per-pager
   accounting stays in each pager's Stats.t; these aggregate across all
   pagers so `uindex-cli stats` and BENCH_results.json can report global
   I/O traffic, and so journal/recovery events — which happen outside any
   live pager instance — are observable at all. *)
let m_reads = Obs.Metrics.counter ~subsystem:"pager" "reads"
let m_writes = Obs.Metrics.counter ~subsystem:"pager" "writes"
let m_allocs = Obs.Metrics.counter ~subsystem:"pager" "allocs"
let m_frees = Obs.Metrics.counter ~subsystem:"pager" "frees"
let m_syncs = Obs.Metrics.counter ~subsystem:"pager" "syncs"

let m_j_commits = Obs.Metrics.counter ~subsystem:"journal" "commits"
let m_j_records = Obs.Metrics.counter ~subsystem:"journal" "records_written"
let m_j_replays = Obs.Metrics.counter ~subsystem:"journal" "replays"
let m_j_replayed = Obs.Metrics.counter ~subsystem:"journal" "records_replayed"
let m_j_torn = Obs.Metrics.counter ~subsystem:"journal" "torn_discarded"
let m_j_fsyncs = Obs.Metrics.counter ~subsystem:"journal" "fsyncs"

let nil = 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* On-disk formats                                                     *)
(* ------------------------------------------------------------------ *)

(* Physical layout of a page file: physical page 0 is the header.

   Without checksums, logical page [i] lives at physical page [i + 1].

   With checksums (the default for file pagers), data pages are
   interleaved with {e checksum pages} so that client pages keep their
   full [page_size] capacity — the B-tree's node layout, and therefore
   the paper's page-read counts, are identical either way.  Let
   [G = page_size / 4 - 1].  Logical pages are grouped [G] at a time;
   group [g] occupies physical pages [1 + g*(G+1) .. (g+1)*(G+1)], the
   first of which is the group's checksum page:

     checksum page of group g:
       0..        G x u32 FNV-1a checksum of logical page [g*G + i]
       ps-4       u32 FNV-1a self-checksum of bytes [0, ps-4)

     logical page i: physical [2 + (i/G)*(G+1) + i mod G]

   Checksum pages are journaled and checkpointed like any other
   physical record, so they commit atomically with the data they cover.

   Header page:
     0..7    magic "UPGHDR1\n"
     8       u32 page_size
     12      u32 used       (logical high-water mark)
     16      u32 live       (allocated and not freed)
     20      u32 free_head  (first free page, intrusive chain; 0xFFFFFFFF = none)
     24      u16 flags      (bit 0: checksums enabled)
     26      u16 meta_len
     28..    meta bytes (client metadata, e.g. a B-tree root)
     ps-4    u32 FNV-1a checksum of bytes [0, ps-4)

   A free page stores the id of the next free page in its first 4 bytes.

   Journal file (path ^ ".journal"), written on every {!sync}:
     0..7    magic "UJRNL1\n\000"
     8       u32 page_size
     12      u32 count
     16..    count x (u32 physical_index ++ page bytes)   -- the NEW images
     ..      u32 FNV-1a checksum of the records region
     ..      8-byte commit marker "COMMITTD" *)

let header_magic = "UPGHDR1\n"
let journal_magic = "UJRNL1\n\000"
let commit_marker = "COMMITTD"
let header_fixed = 28 (* bytes before the meta area *)
let flag_checksums = 1
let meta_capacity page_size = page_size - header_fixed - 4
let journal_path path = path ^ ".journal"
let group_size page_size = (page_size / 4) - 1

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type media_fault =
  | Flip_bit of { page : int; bit : int }
  | Zero_page of { page : int }
  | Truncate_file of { keep : int }
  | Stale_page of { page : int }

type fault_spec = {
  fail_write : int option;
  torn : bool;
  read_error_every : int option;
  media : media_fault list;
}

let no_faults =
  { fail_write = None; torn = false; read_error_every = None; media = [] }

type fault_plan = {
  spec : fault_spec;
  mutable reads_seen : int;
  mutable crashed : bool;
  mutable stale : (int * Bytes.t) list;
      (* committed images snapshotted at arm time, written back over the
         backend after the next sync completes — a lost write *)
}

type backend =
  | Memory of { mutable pages : Bytes.t option array }
  | File of {
      fd : Unix.file_descr;
      path : string;
      mutable live_map : bool array;
      dirty : (int, Bytes.t) Hashtbl.t;
          (* logical id -> content written since the last sync *)
    }
  | Snap of snap

(* An immutable read view of the parent's last committed image.  The
   snapshot starts empty and reads through to the parent's committed
   storage; when the writer is about to overwrite a committed page (a
   Memory write/free, or a File checkpoint), the old image is stashed
   into the overlay of every live snapshot that can still see it
   (copy-on-commit).  Overlay entries are immutable once added. *)
and snap = {
  parent : t;
  overlay : (int, Bytes.t) Hashtbl.t;  (* stashed committed images *)
  snap_live : bool array;  (* committed liveness at pin time *)
  mutable released : bool;
}

and t = {
  page_size : int;
  checksums : bool;
  mutable backend : backend;
  mutable used : int;  (* high-water mark *)
  mutable free_list : int list;
  mutable live : int;
  mutable closed : bool;
  mutable meta : string;
  mutable meta_dirty : bool;
  mutable free_dirty : bool;  (* free list changed since the last sync *)
  mutable phys_writes : int;  (* backend write operations, ever *)
  mutable sums : Bytes.t;  (* u32 FNV-1a per logical page (checksums on) *)
  mutable faults : fault_plan option;
  stats : Stats.t;
  lock : Mutex.t;
      (* serializes every state-touching operation on this pager with the
         reads of snapshots pinned on it (they share the fd / page array) *)
  mutable snaps : t list;  (* live snapshots pinned on this pager *)
  (* last committed allocation state (File backend; for Memory the live
     fields are the committed state, and for Snap these are frozen) *)
  mutable committed_meta : string;
  mutable committed_used : int;
  mutable committed_free : int list;
  mutable committed_live : int;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* physical index of logical page [id] *)
let data_phys t id =
  if not t.checksums then id + 1
  else
    let g = group_size t.page_size in
    2 + ((id / g) * (g + 1)) + (id mod g)

(* physical index of the checksum page covering group [g] *)
let sum_phys t g = 1 + (g * (group_size t.page_size + 1))

(* ------------------------------------------------------------------ *)
(* Low-level I/O                                                       *)
(* ------------------------------------------------------------------ *)

let pwrite_buf fd ~off b len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go o =
    if o < len then
      let n = Unix.write fd b o (len - o) in
      go (o + n)
  in
  go 0

let pread_buf fd ~off b len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go o =
    if o < len then begin
      let n = Unix.read fd b o (len - o) in
      if n = 0 then Bytes.fill b o (len - o) '\000' (* past EOF: zeros *)
      else go (o + n)
    end
  in
  go 0

(* Every backend write funnels through here: the fault plan fires on the
   Nth physical write, optionally landing only the first half (a torn
   write), and from then on the pager behaves as a crashed process —
   all further physical writes raise. *)
let inject_write t ~full ~half =
  t.phys_writes <- t.phys_writes + 1;
  match t.faults with
  | None -> full ()
  | Some p -> (
      if p.crashed then raise (Fault "Pager: crashed (write after fault)");
      match p.spec.fail_write with
      | Some n when t.phys_writes >= n ->
          p.crashed <- true;
          t.stats.faults <- t.stats.faults + 1;
          if p.spec.torn then half ();
          raise (Fault (Printf.sprintf "Pager: injected fault at write %d" n))
      | _ -> full ())

let inject_read t =
  match t.faults with
  | None -> ()
  | Some p -> (
      match p.spec.read_error_every with
      | Some k when k > 0 ->
          p.reads_seen <- p.reads_seen + 1;
          if p.reads_seen mod k = 0 then begin
            t.stats.faults <- t.stats.faults + 1;
            raise (Fault "Pager: injected transient read error")
          end
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Per-page checksums                                                  *)
(* ------------------------------------------------------------------ *)

let get_sum t id =
  if (id + 1) * 4 <= Bytes.length t.sums then Bu.get_u32 t.sums (id * 4) else 0

let set_sum t id v =
  let need = (id + 1) * 4 in
  if Bytes.length t.sums < need then begin
    let b = Bytes.make (max need (2 * Bytes.length t.sums)) '\000' in
    Bytes.blit t.sums 0 b 0 (Bytes.length t.sums);
    t.sums <- b
  end;
  Bu.put_u32 t.sums (id * 4) v

let verify_page t id b =
  if t.checksums && Bu.fnv32 b 0 t.page_size <> get_sum t id then begin
    Obs.Metrics.incr Storage_error.checksum_failures;
    t.stats.faults <- t.stats.faults + 1;
    Storage_error.corruptf ~page:id ~component:"pager.page"
      "Pager.read: checksum mismatch on page %d" id
  end

(* the on-disk image of the checksum page covering group [g] *)
let checksum_page t g =
  let ps = t.page_size in
  let gs = group_size ps in
  let b = Bytes.make ps '\000' in
  let lo = g * gs in
  for i = 0 to gs - 1 do
    if lo + i < t.used then Bu.put_u32 b (i * 4) (get_sum t (lo + i))
  done;
  Bu.put_u32 b (ps - 4) (Bu.fnv32 b 0 (ps - 4));
  b

(* ------------------------------------------------------------------ *)
(* Header encoding                                                     *)
(* ------------------------------------------------------------------ *)

let encode_header t =
  let b = Bytes.make t.page_size '\000' in
  Bytes.blit_string header_magic 0 b 0 8;
  Bu.put_u32 b 8 t.page_size;
  Bu.put_u32 b 12 t.used;
  Bu.put_u32 b 16 t.live;
  Bu.put_u32 b 20 (match t.free_list with id :: _ -> id | [] -> nil);
  Bu.put_u16 b 24 (if t.checksums then flag_checksums else 0);
  Bu.put_u16 b 26 (String.length t.meta);
  Bytes.blit_string t.meta 0 b header_fixed (String.length t.meta);
  Bu.put_u32 b (t.page_size - 4) (Bu.fnv32 b 0 (t.page_size - 4));
  b

let free_chain_page t ~next =
  let b = Bytes.make t.page_size '\000' in
  Bu.put_u32 b 0 next;
  b

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ~page_size ~checksums backend =
  if page_size < 64 then invalid_arg "Pager.create: page_size < 64";
  {
    page_size;
    checksums;
    backend;
    used = 0;
    free_list = [];
    live = 0;
    closed = false;
    meta = "";
    meta_dirty = false;
    free_dirty = false;
    phys_writes = 0;
    sums = Bytes.create 0;
    faults = None;
    stats = Stats.create ();
    lock = Mutex.create ();
    snaps = [];
    committed_meta = "";
    committed_used = 0;
    committed_free = [];
    committed_live = 0;
  }

let create ?(page_size = 1024) ?(checksums = false) () =
  make ~page_size ~checksums (Memory { pages = Array.make 64 None })

let create_file ?(page_size = 1024) ?(checksums = true) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    make ~page_size ~checksums
      (File { fd; path; live_map = Array.make 64 false; dirty = Hashtbl.create 64 })
  in
  (* a freshly created file is immediately a valid (empty) page file *)
  pwrite_buf fd ~off:0 (encode_header t) page_size;
  Unix.fsync fd;
  t

(* --- journal recovery ----------------------------------------------- *)

let read_whole_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      let b = Bytes.create len in
      pread_buf fd ~off:0 b len;
      b)

let journal_valid j =
  let len = Bytes.length j in
  len >= 16 + 4 + 8
  && Bytes.sub_string j 0 8 = journal_magic
  &&
  let ps = Bu.get_u32 j 8 and count = Bu.get_u32 j 12 in
  ps >= 64
  && count >= 0
  && len = 16 + (count * (4 + ps)) + 4 + 8
  &&
  let records_len = count * (4 + ps) in
  Bu.get_u32 j (16 + records_len) = Bu.fnv32 j 16 records_len
  && Bytes.sub_string j (16 + records_len + 4) 8 = commit_marker

type recover_status = No_journal | Replayed | Discarded_torn

let recover_status path =
  let jpath = journal_path path in
  if not (Sys.file_exists jpath) then No_journal
  else
    let j = read_whole_file jpath in
    if not (journal_valid j) then begin
      (* torn or unfinished journal: the main file was never touched in
         this transaction, so the pre-transaction state is intact *)
      Obs.Metrics.incr m_j_torn;
      Sys.remove jpath;
      Discarded_torn
    end
    else begin
      let ps = Bu.get_u32 j 8 and count = Bu.get_u32 j 12 in
      Obs.Metrics.incr m_j_replays;
      Obs.Metrics.add m_j_replayed count;
      let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          for r = 0 to count - 1 do
            let off = 16 + (r * (4 + ps)) in
            let idx = Bu.get_u32 j off in
            pwrite_buf fd ~off:(idx * ps) (Bytes.sub j (off + 4) ps) ps
          done;
          Unix.fsync fd);
      Sys.remove jpath;
      Replayed
    end

let recover path =
  match recover_status path with
  | Replayed -> true
  | No_journal | Discarded_torn -> false

let open_file ?page_size path =
  ignore (recover path);
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let fail_inv fmt =
    Format.kasprintf (fun m -> Unix.close fd; invalid_arg m) fmt
  in
  let fail ?page ~component fmt =
    Format.kasprintf
      (fun detail ->
        Unix.close fd;
        raise (Storage_error.Corruption { page; component; detail }))
      fmt
  in
  let len = (Unix.fstat fd).Unix.st_size in
  if len < 12 then
    fail ~component:"pager.header" "Pager.open_file: not a page file (too short)";
  let probe = Bytes.create 12 in
  pread_buf fd ~off:0 probe 12;
  if Bytes.sub_string probe 0 8 <> header_magic then
    fail_inv "Pager.open_file: not a page file (bad magic)";
  let ps = Bu.get_u32 probe 8 in
  if ps < 64 then
    fail ~component:"pager.header" "Pager.open_file: corrupt header (page size)";
  (match page_size with
  | Some p when p <> ps ->
      fail_inv "Pager.open_file: page size mismatch (file has %d, expected %d)"
        ps p
  | Some _ | None -> ());
  if len mod ps <> 0 then
    fail ~component:"pager.header"
      "Pager.open_file: file length is not a multiple of page_size";
  let hdr = Bytes.create ps in
  pread_buf fd ~off:0 hdr ps;
  if Bu.get_u32 hdr (ps - 4) <> Bu.fnv32 hdr 0 (ps - 4) then
    fail ~component:"pager.header"
      "Pager.open_file: corrupt header (bad checksum)";
  let used = Bu.get_u32 hdr 12
  and live = Bu.get_u32 hdr 16
  and free_head = Bu.get_u32 hdr 20
  and flags = Bu.get_u16 hdr 24
  and meta_len = Bu.get_u16 hdr 26 in
  if meta_len > meta_capacity ps then
    fail ~component:"pager.header"
      "Pager.open_file: corrupt header (metadata length)";
  let checksums = flags land flag_checksums <> 0 in
  let meta = Bytes.sub_string hdr header_fixed meta_len in
  let gs = group_size ps in
  let dphys id =
    if checksums then 2 + ((id / gs) * (gs + 1)) + (id mod gs) else id + 1
  in
  (* load the checksum pages, each of which is self-checksummed *)
  let sums = Bytes.make (used * 4) '\000' in
  if checksums && used > 0 then begin
    let page = Bytes.create ps in
    for g = 0 to (used - 1) / gs do
      pread_buf fd ~off:((1 + (g * (gs + 1))) * ps) page ps;
      if Bu.get_u32 page (ps - 4) <> Bu.fnv32 page 0 (ps - 4) then begin
        Obs.Metrics.incr Storage_error.checksum_failures;
        fail ~component:"pager.checksum_page"
          "Pager.open_file: corrupt checksum page (group %d)" g
      end;
      let lo = g * gs in
      for i = 0 to gs - 1 do
        if lo + i < used then Bytes.blit page (i * 4) sums ((lo + i) * 4) 4
      done
    done
  end;
  let live_map = Array.make (max 64 used) false in
  for i = 0 to used - 1 do
    live_map.(i) <- true
  done;
  (* rebuild the free list from the intrusive on-disk chain *)
  let free_list = ref [] and n_free = ref 0 in
  let fpage = Bytes.create ps in
  let cur = ref free_head in
  while !cur <> nil do
    let id = !cur in
    if id < 0 || id >= used || not live_map.(id) then
      fail ?page:(if id >= 0 && id < used then Some id else None)
        ~component:"pager.free_list" "Pager.open_file: corrupt free list (page %d)"
        id;
    live_map.(id) <- false;
    free_list := id :: !free_list;
    incr n_free;
    pread_buf fd ~off:(dphys id * ps) fpage ps;
    if checksums && Bu.fnv32 fpage 0 ps <> Bu.get_u32 sums (id * 4) then begin
      Obs.Metrics.incr Storage_error.checksum_failures;
      fail ~page:id ~component:"pager.free_list"
        "Pager.open_file: corrupt free list (checksum mismatch on page %d)" id
    end;
    cur := Bu.get_u32 fpage 0
  done;
  if used - !n_free <> live then
    fail ~component:"pager.header"
      "Pager.open_file: corrupt header (live count %d, found %d)" live
      (used - !n_free);
  let t =
    make ~page_size:ps ~checksums
      (File { fd; path; live_map; dirty = Hashtbl.create 64 })
  in
  t.used <- used;
  t.live <- live;
  t.free_list <- List.rev !free_list;
  t.meta <- meta;
  t.sums <- sums;
  t.committed_meta <- t.meta;
  t.committed_used <- t.used;
  t.committed_free <- t.free_list;
  t.committed_live <- t.live;
  t

(* ------------------------------------------------------------------ *)
(* Sync: journal, checkpoint, clear                                    *)
(* ------------------------------------------------------------------ *)

let check_open t = if t.closed then invalid_arg "Pager: store is closed"

(* write a committed image straight to the backend, bypassing the dirty
   table, the fault plan, and the checksum bookkeeping — this is the
   hardware losing a write, not the pager writing one *)
let clobber_page t id b =
  match t.backend with
  | Memory m ->
      if id < Array.length m.pages && m.pages.(id) <> None then
        m.pages.(id) <- Some (Bytes.copy b)
  | File f -> pwrite_buf f.fd ~off:(data_phys t id * t.page_size) b t.page_size
  | Snap _ -> invalid_arg "Pager: cannot clobber a snapshot"

(* lost writes armed by [Stale_page] land once the next sync completes *)
let apply_stale t =
  match t.faults with
  | Some ({ stale = (_ :: _) as snaps; _ } as p) ->
      List.iter (fun (id, b) -> clobber_page t id b) snaps;
      p.stale <- []
  | _ -> ()

(* Called with [t.lock] held, just before page [id]'s committed image is
   overwritten: preserve that image in the overlay of every live snapshot
   that pinned it and has not stashed it yet.  [fetch] reads the current
   committed image lazily (at most once per call); overlays may share the
   fetched buffer because committed images are replaced, never mutated in
   place, and overlay reads hand out copies. *)
let stash_committed t id fetch =
  match t.snaps with
  | [] -> ()
  | snaps ->
      let cached = ref None in
      let get () =
        match !cached with
        | Some b -> b
        | None ->
            let b = fetch () in
            cached := Some b;
            b
      in
      List.iter
        (fun s ->
          match s.backend with
          | Snap sn
            when (not sn.released)
                 && id < s.used
                 && sn.snap_live.(id)
                 && not (Hashtbl.mem sn.overlay id) ->
              Hashtbl.add sn.overlay id (get ())
          | _ -> ())
        snaps

let sync_locked t =
  check_open t;
  Obs.Metrics.incr m_syncs;
  (match t.faults with
  | Some p when p.crashed ->
      (* a crashed process must not touch the files again — in particular
         it must not truncate a journal that already committed *)
      raise (Fault "Pager: crashed (sync after fault)")
  | _ -> ());
  (match t.backend with
  | Snap _ -> invalid_arg "Pager.sync: snapshot is read-only"
  | Memory _ -> () (* memory writes are applied immediately *)
  | File f ->
      if
        Hashtbl.length f.dirty > 0 || t.free_dirty || t.meta_dirty
      then begin
        (* the transaction: dirty pages, the (re-linked) free chain, and
           always the header — first as logical (id, bytes) pairs *)
        let logical = ref [] in
        Hashtbl.iter (fun id b -> logical := (id, b) :: !logical) f.dirty;
        if t.free_dirty then begin
          let rec chain = function
            | [] -> ()
            | id :: rest ->
                let next = match rest with n :: _ -> n | [] -> nil in
                logical := (id, free_chain_page t ~next) :: !logical;
                chain rest
          in
          chain t.free_list
        end;
        let logical = !logical in
        (* copy-on-commit: the checkpoint below overwrites these pages'
           committed images in place, so stash the old images for any
           snapshot still reading them *)
        List.iter
          (fun (id, _) ->
            stash_committed t id (fun () ->
                let b = Bytes.create t.page_size in
                pread_buf f.fd ~off:(data_phys t id * t.page_size) b
                  t.page_size;
                b))
          logical;
        (* with checksums on, refresh the sums of every page in the
           transaction and add the covering checksum pages as ordinary
           physical records — they commit atomically with the data *)
        let sum_records =
          if not t.checksums then []
          else begin
            let gs = group_size t.page_size in
            List.iter
              (fun (id, b) -> set_sum t id (Bu.fnv32 b 0 t.page_size))
              logical;
            List.map
              (fun g -> (sum_phys t g, checksum_page t g))
              (List.sort_uniq compare
                 (List.map (fun (id, _) -> id / gs) logical))
          end
        in
        let records =
          (0, encode_header t)
          :: List.map (fun (id, b) -> (data_phys t id, b)) logical
          @ sum_records
        in
        let records =
          List.sort (fun (a, _) (b, _) -> compare a b) records
        in
        let count = List.length records in
        Obs.Metrics.incr m_j_commits;
        Obs.Metrics.add m_j_records count;
        (* 1. write the journal (new images), fsync it *)
        let jfd =
          Unix.openfile (journal_path f.path)
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> Unix.close jfd)
          (fun () ->
            let head = Bytes.create 16 in
            Bytes.blit_string journal_magic 0 head 0 8;
            Bu.put_u32 head 8 t.page_size;
            Bu.put_u32 head 12 count;
            pwrite_buf jfd ~off:0 head 16;
            let sum = ref 0x811C9DC5 in
            List.iteri
              (fun r (idx, page) ->
                let rec_len = 4 + t.page_size in
                let buf = Bytes.create rec_len in
                Bu.put_u32 buf 0 idx;
                Bytes.blit page 0 buf 4 t.page_size;
                sum := Bu.fnv32 ~init:!sum buf 0 rec_len;
                let off = 16 + (r * rec_len) in
                inject_write t
                  ~full:(fun () -> pwrite_buf jfd ~off buf rec_len)
                  ~half:(fun () -> pwrite_buf jfd ~off buf (rec_len / 2)))
              records;
            let tail = Bytes.create 12 in
            Bu.put_u32 tail 0 !sum;
            Bytes.blit_string commit_marker 0 tail 4 8;
            let off = 16 + (count * (4 + t.page_size)) in
            inject_write t
              ~full:(fun () -> pwrite_buf jfd ~off tail 12)
              ~half:(fun () -> pwrite_buf jfd ~off tail 6);
            Unix.fsync jfd;
            Obs.Metrics.incr m_j_fsyncs);
        (* 2. checkpoint the same images into the main file, fsync *)
        List.iter
          (fun (idx, page) ->
            let off = idx * t.page_size in
            inject_write t
              ~full:(fun () -> pwrite_buf f.fd ~off page t.page_size)
              ~half:(fun () -> pwrite_buf f.fd ~off page (t.page_size / 2)))
          records;
        Unix.fsync f.fd;
        Obs.Metrics.incr m_j_fsyncs;
        (* 3. the transaction is durable; drop the journal *)
        Sys.remove (journal_path f.path);
        Hashtbl.reset f.dirty;
        t.free_dirty <- false;
        t.meta_dirty <- false;
        (* the checkpoint is durable: this allocation state is what the
           next snapshot pins *)
        t.committed_meta <- t.meta;
        t.committed_used <- t.used;
        t.committed_free <- t.free_list;
        t.committed_live <- t.live
      end);
  apply_stale t

let sync t =
  match t.backend with
  | Snap _ -> invalid_arg "Pager.sync: snapshot is read-only"
  | Memory _ | File _ -> with_lock t (fun () -> sync_locked t)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let is_snapshot t = match t.backend with Snap _ -> true | _ -> false

let durable t =
  match t.backend with
  | File _ -> true
  | Memory _ -> false
  | Snap sn -> ( match sn.parent.backend with File _ -> true | _ -> false)

let live_snapshots t = with_lock t (fun () -> List.length t.snaps)

let snapshot t =
  with_lock t @@ fun () ->
  check_open t;
  let used, live, free_list, meta, snap_live =
    match t.backend with
    | Snap _ -> invalid_arg "Pager.snapshot: cannot snapshot a snapshot"
    | Memory m ->
        (* memory writes apply immediately, so committed = current *)
        let sl = Array.init t.used (fun i -> m.pages.(i) <> None) in
        (t.used, t.live, t.free_list, t.meta, sl)
    | File _ ->
        let sl = Array.make t.committed_used true in
        List.iter
          (fun id -> if id < t.committed_used then sl.(id) <- false)
          t.committed_free;
        ( t.committed_used,
          t.committed_live,
          t.committed_free,
          t.committed_meta,
          sl )
  in
  let s =
    {
      page_size = t.page_size;
      checksums = t.checksums;
      backend =
        Snap
          {
            parent = t;
            overlay = Hashtbl.create 16;
            snap_live;
            released = false;
          };
      used;
      free_list;
      live;
      closed = false;
      meta;
      meta_dirty = false;
      free_dirty = false;
      phys_writes = 0;
      (* the pinned checksums: a media fault that rots a committed page
         under a snapshot is still detected on that snapshot's reads *)
      sums = Bytes.copy t.sums;
      faults = None;
      stats = Stats.create ();
      lock = Mutex.create ();  (* unused: snapshot ops take the parent's *)
      snaps = [];
      committed_meta = meta;
      committed_used = used;
      committed_free = free_list;
      committed_live = live;
    }
  in
  t.snaps <- s :: t.snaps;
  s

let release_snapshot s =
  match s.backend with
  | Snap sn ->
      with_lock sn.parent @@ fun () ->
      if not sn.released then begin
        sn.released <- true;
        s.closed <- true;
        sn.parent.snaps <- List.filter (fun x -> x != s) sn.parent.snaps;
        Stats.merge_into ~into:sn.parent.stats s.stats
      end
  | Memory _ | File _ -> invalid_arg "Pager.release_snapshot: not a snapshot"

let close t =
  match t.backend with
  | Snap _ -> release_snapshot t
  | Memory _ -> with_lock t (fun () -> t.closed <- true)
  | File f ->
      with_lock t @@ fun () ->
      if not t.closed then begin
        let fin () =
          t.closed <- true;
          Unix.close f.fd
        in
        (match sync_locked t with
        | () -> fin ()
        | exception e ->
            fin ();
            raise e)
      end

let page_size t = t.page_size
let checksums_enabled t = t.checksums
let stats t = t.stats
let physical_writes t = t.phys_writes

(* Buffer pools mirror their events here rather than poking the record
   directly, so every mutation of a pager's stats — page ops, pool
   events, snapshot merges — serializes on the same lock. *)
(* Hand-rolled lock scope (no [with_lock] closure): this rides the
   pool-hit hot path, which must stay allocation-free, and the guarded
   field bumps cannot raise. *)
let record_pool_event t ev =
  Mutex.lock t.lock;
  (match ev with
  | `Hit -> t.stats.Stats.pool_hits <- t.stats.Stats.pool_hits + 1
  | `Miss -> t.stats.Stats.pool_misses <- t.stats.Stats.pool_misses + 1
  | `Eviction ->
      t.stats.Stats.pool_evictions <- t.stats.Stats.pool_evictions + 1);
  Mutex.unlock t.lock

let meta t = t.meta

let set_meta t m =
  (match t.backend with
  | Snap _ -> invalid_arg "Pager.set_meta: snapshot is read-only"
  | Memory _ | File _ -> ());
  with_lock t @@ fun () ->
  check_open t;
  if String.length m > meta_capacity t.page_size then
    invalid_arg "Pager.set_meta: metadata does not fit in the header page";
  if m <> t.meta then begin
    t.meta <- m;
    t.meta_dirty <- true
  end

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

(* Media faults damage the {e committed} backend state directly — they
   model the disk rotting underneath the pager, so they bypass the dirty
   table and the checksum bookkeeping. *)
let apply_media t plan =
  let ps = t.page_size in
  let check_page what page =
    if page < 0 || page >= t.used then
      invalid_arg
        (Printf.sprintf "Pager.create_faulty: %s targets page %d (out of range)"
           what page)
  in
  let committed t id =
    match t.backend with
    | Memory m -> (
        match m.pages.(id) with Some b -> Bytes.copy b | None -> Bytes.make ps '\000')
    | File f ->
        let b = Bytes.create ps in
        pread_buf f.fd ~off:(data_phys t id * ps) b ps;
        b
    | Snap _ -> invalid_arg "Pager.create_faulty: snapshots cannot arm faults"
  in
  List.iter
    (fun mf ->
      match mf with
      | Flip_bit { page; bit } ->
          check_page "flip_bit" page;
          let bit = ((bit mod (ps * 8)) + (ps * 8)) mod (ps * 8) in
          let b = committed t page in
          let byte = bit / 8 in
          Bytes.set b byte
            (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit mod 8))));
          clobber_page t page b
      | Zero_page { page } ->
          check_page "zero_page" page;
          clobber_page t page (Bytes.make ps '\000')
      | Truncate_file { keep } -> (
          match t.backend with
          | Memory _ | Snap _ ->
              invalid_arg "Pager.create_faulty: truncate_file needs a file backend"
          | File f ->
              if keep < 0 then
                invalid_arg "Pager.create_faulty: truncate_file keep < 0";
              Unix.ftruncate f.fd (keep * ps))
      | Stale_page { page } ->
          check_page "stale_page" page;
          plan.stale <- (page, committed t page) :: plan.stale)
    plan.spec.media

let create_faulty spec t =
  (match t.backend with
  | Snap _ -> invalid_arg "Pager.create_faulty: snapshots cannot arm faults"
  | Memory _ | File _ -> ());
  with_lock t @@ fun () ->
  let plan = { spec; reads_seen = 0; crashed = false; stale = [] } in
  t.faults <- Some plan;
  apply_media t plan;
  t

(* ------------------------------------------------------------------ *)
(* Page operations                                                     *)
(* ------------------------------------------------------------------ *)

let grow_array a default =
  let n = Array.length a in
  let b = Array.make (2 * n) default in
  Array.blit a 0 b 0 n;
  b

let is_live t id =
  id >= 0 && id < t.used
  &&
  match t.backend with
  | Memory m -> m.pages.(id) <> None
  | File f -> f.live_map.(id)
  | Snap sn -> sn.snap_live.(id)

let high_water t = t.used
let free_pages t = t.free_list

let alloc t =
  (match t.backend with
  | Snap _ -> invalid_arg "Pager.alloc: snapshot is read-only"
  | Memory _ | File _ -> ());
  with_lock t @@ fun () ->
  check_open t;
  Obs.Metrics.incr m_allocs;
  t.stats.allocs <- t.stats.allocs + 1;
  t.live <- t.live + 1;
  let id =
    match t.free_list with
    | id :: rest ->
        t.free_list <- rest;
        t.free_dirty <- true;
        id
    | [] ->
        let id = t.used in
        t.used <- t.used + 1;
        id
  in
  (match t.backend with
  | Memory m ->
      if id >= Array.length m.pages then m.pages <- grow_array m.pages None;
      m.pages.(id) <- Some (Bytes.make t.page_size '\000');
      if t.checksums then
        set_sum t id (Bu.fnv32 (Bytes.make t.page_size '\000') 0 t.page_size)
  | File f ->
      if id >= Array.length f.live_map then
        f.live_map <- grow_array f.live_map false;
      f.live_map.(id) <- true;
      Hashtbl.replace f.dirty id (Bytes.make t.page_size '\000')
  | Snap _ -> assert false);
  id

let check_live t id =
  check_open t;
  if id < 0 || id >= t.used then invalid_arg "Pager: page id out of range";
  if not (is_live t id) then invalid_arg "Pager: page not allocated"

let read t id =
  match t.backend with
  | Snap sn ->
      (* the snapshot's own bounds/liveness/sums are frozen, so only the
         fetch from the parent's shared storage needs the parent's lock *)
      check_live t id;
      Obs.Metrics.incr m_reads;
      t.stats.reads <- t.stats.reads + 1;
      let b =
        with_lock sn.parent @@ fun () ->
        if sn.released then invalid_arg "Pager.read: snapshot was released";
        match Hashtbl.find_opt sn.overlay id with
        | Some b -> Bytes.copy b
        | None -> (
            if sn.parent.closed then
              invalid_arg "Pager.read: parent pager is closed";
            match sn.parent.backend with
            | Memory m -> (
                match m.pages.(id) with
                | Some b -> Bytes.copy b
                | None -> assert false (* stashed before the free *))
            | File f ->
                (* committed image: bypass the writer's dirty table *)
                let b = Bytes.create t.page_size in
                pread_buf f.fd ~off:(data_phys t id * t.page_size) b
                  t.page_size;
                b
            | Snap _ -> assert false)
      in
      verify_page t id b;
      b
  | Memory _ | File _ -> (
      with_lock t @@ fun () ->
      check_live t id;
      inject_read t;
      Obs.Metrics.incr m_reads;
      t.stats.reads <- t.stats.reads + 1;
      match t.backend with
      | Memory m -> (
          match m.pages.(id) with
          | Some b ->
              verify_page t id b;
              Bytes.copy b
          | None -> assert false)
      | File f -> (
          match Hashtbl.find_opt f.dirty id with
          | Some b -> Bytes.copy b (* not yet committed: nothing to verify *)
          | None ->
              let b = Bytes.create t.page_size in
              pread_buf f.fd ~off:(data_phys t id * t.page_size) b t.page_size;
              verify_page t id b;
              b)
      | Snap _ -> assert false)

let write t id b =
  (match t.backend with
  | Snap _ -> invalid_arg "Pager.write: snapshot is read-only"
  | Memory _ | File _ -> ());
  if Bytes.length b <> t.page_size then
    invalid_arg "Pager.write: wrong page size";
  with_lock t @@ fun () ->
  check_live t id;
  Obs.Metrics.incr m_writes;
  t.stats.writes <- t.stats.writes + 1;
  match t.backend with
  | Memory m ->
      (* memory writes commit immediately: preserve the old image for
         pinned snapshots before it is replaced *)
      stash_committed t id (fun () ->
          match m.pages.(id) with Some o -> o | None -> assert false);
      inject_write t
        ~full:(fun () ->
          m.pages.(id) <- Some (Bytes.copy b);
          if t.checksums then set_sum t id (Bu.fnv32 b 0 t.page_size))
        ~half:(fun () ->
          (* a torn write: the first half lands, the rest keeps its old
             content — the recorded sum is intentionally NOT updated, so
             a checksumming pager detects the tear on the next read *)
          let old =
            match m.pages.(id) with Some o -> o | None -> assert false
          in
          let torn = Bytes.copy old in
          Bytes.blit b 0 torn 0 (t.page_size / 2);
          m.pages.(id) <- Some torn)
  | File f -> Hashtbl.replace f.dirty id (Bytes.copy b)
  | Snap _ -> assert false

let free t id =
  (match t.backend with
  | Snap _ -> invalid_arg "Pager.free: snapshot is read-only"
  | Memory _ | File _ -> ());
  with_lock t @@ fun () ->
  check_live t id;
  Obs.Metrics.incr m_frees;
  (match t.backend with
  | Memory m ->
      stash_committed t id (fun () ->
          match m.pages.(id) with Some o -> o | None -> assert false);
      m.pages.(id) <- None
  | File f ->
      f.live_map.(id) <- false;
      Hashtbl.remove f.dirty id
  | Snap _ -> assert false);
  t.live <- t.live - 1;
  t.free_list <- id :: t.free_list;
  t.free_dirty <- true

let page_count t = t.live

module Cache = struct
  type nonrec t = { fetch : int -> Bytes.t; seen : (int, Bytes.t) Hashtbl.t }

  let of_read fetch = { fetch; seen = Hashtbl.create 64 }
  let create pager = of_read (read pager)

  let read t id =
    match Hashtbl.find_opt t.seen id with
    | Some b -> b
    | None ->
        let b = t.fetch id in
        Hashtbl.add t.seen id b;
        b

  let distinct_reads t = Hashtbl.length t.seen
end
