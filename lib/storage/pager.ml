type backend =
  | Memory of { mutable pages : Bytes.t option array }
  | File of { fd : Unix.file_descr; mutable live_map : bool array }

type t = {
  page_size : int;
  mutable backend : backend;
  mutable used : int;  (* high-water mark *)
  mutable free_list : int list;
  mutable live : int;
  mutable closed : bool;
  stats : Stats.t;
}

let make ~page_size backend =
  if page_size < 64 then invalid_arg "Pager.create: page_size < 64";
  {
    page_size;
    backend;
    used = 0;
    free_list = [];
    live = 0;
    closed = false;
    stats = Stats.create ();
  }

let create ?(page_size = 1024) () =
  make ~page_size (Memory { pages = Array.make 64 None })

let create_file ?(page_size = 1024) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  make ~page_size (File { fd; live_map = Array.make 64 false })

let open_file ?(page_size = 1024) path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let len = (Unix.fstat fd).Unix.st_size in
  if len mod page_size <> 0 then begin
    Unix.close fd;
    invalid_arg "Pager.open_file: file length is not a multiple of page_size"
  end;
  let used = len / page_size in
  let t =
    make ~page_size (File { fd; live_map = Array.make (max 64 used) true })
  in
  t.used <- used;
  t.live <- used;
  t

let close t =
  (match t.backend with
  | File { fd; _ } -> if not t.closed then Unix.close fd
  | Memory _ -> ());
  t.closed <- true

let check_open t = if t.closed then invalid_arg "Pager: store is closed"

let page_size t = t.page_size
let stats t = t.stats

let grow_array a default =
  let n = Array.length a in
  let b = Array.make (2 * n) default in
  Array.blit a 0 b 0 n;
  b

let is_live t id =
  id >= 0 && id < t.used
  &&
  match t.backend with
  | Memory m -> m.pages.(id) <> None
  | File f -> f.live_map.(id)

let pwrite_page fd ~page_size id b =
  ignore (Unix.lseek fd (id * page_size) Unix.SEEK_SET);
  let rec go off =
    if off < page_size then
      let n = Unix.write fd b off (page_size - off) in
      go (off + n)
  in
  go 0

let pread_page fd ~page_size id =
  ignore (Unix.lseek fd (id * page_size) Unix.SEEK_SET);
  let b = Bytes.create page_size in
  let rec go off =
    if off < page_size then begin
      let n = Unix.read fd b off (page_size - off) in
      if n = 0 then
        (* short file: the page was allocated but never written *)
        Bytes.fill b off (page_size - off) '\000'
      else go (off + n)
    end
  in
  go 0;
  b

let alloc t =
  check_open t;
  t.stats.allocs <- t.stats.allocs + 1;
  t.live <- t.live + 1;
  let id =
    match t.free_list with
    | id :: rest ->
        t.free_list <- rest;
        id
    | [] ->
        let id = t.used in
        t.used <- t.used + 1;
        id
  in
  (match t.backend with
  | Memory m ->
      if id >= Array.length m.pages then m.pages <- grow_array m.pages None;
      m.pages.(id) <- Some (Bytes.make t.page_size '\000')
  | File f ->
      if id >= Array.length f.live_map then
        f.live_map <- grow_array f.live_map false;
      f.live_map.(id) <- true;
      pwrite_page f.fd ~page_size:t.page_size id (Bytes.make t.page_size '\000'));
  id

let check_live t id =
  check_open t;
  if id < 0 || id >= t.used then invalid_arg "Pager: page id out of range";
  if not (is_live t id) then invalid_arg "Pager: page not allocated"

let read t id =
  check_live t id;
  t.stats.reads <- t.stats.reads + 1;
  match t.backend with
  | Memory m -> (
      match m.pages.(id) with
      | Some b -> Bytes.copy b
      | None -> assert false)
  | File f -> pread_page f.fd ~page_size:t.page_size id

let write t id b =
  if Bytes.length b <> t.page_size then
    invalid_arg "Pager.write: wrong page size";
  check_live t id;
  t.stats.writes <- t.stats.writes + 1;
  match t.backend with
  | Memory m -> m.pages.(id) <- Some (Bytes.copy b)
  | File f -> pwrite_page f.fd ~page_size:t.page_size id b

let free t id =
  check_live t id;
  (match t.backend with
  | Memory m -> m.pages.(id) <- None
  | File f -> f.live_map.(id) <- false);
  t.live <- t.live - 1;
  t.free_list <- id :: t.free_list

let page_count t = t.live

module Cache = struct
  type pager = t
  type nonrec t = { pager : pager; seen : (int, Bytes.t) Hashtbl.t }

  let create pager = { pager; seen = Hashtbl.create 64 }

  let read t id =
    match Hashtbl.find_opt t.seen id with
    | Some b -> b
    | None ->
        let b = read t.pager id in
        Hashtbl.add t.seen id b;
        b

  let distinct_reads t = Hashtbl.length t.seen
end
