module Bu = Bytes_util

exception Fault of string

(* Process-wide instruments (the default Obs registry).  Per-pager
   accounting stays in each pager's Stats.t; these aggregate across all
   pagers so `uindex-cli stats` and BENCH_results.json can report global
   I/O traffic, and so journal/recovery events — which happen outside any
   live pager instance — are observable at all. *)
let m_reads = Obs.Metrics.counter ~subsystem:"pager" "reads"
let m_writes = Obs.Metrics.counter ~subsystem:"pager" "writes"
let m_allocs = Obs.Metrics.counter ~subsystem:"pager" "allocs"
let m_frees = Obs.Metrics.counter ~subsystem:"pager" "frees"
let m_syncs = Obs.Metrics.counter ~subsystem:"pager" "syncs"

let m_j_commits = Obs.Metrics.counter ~subsystem:"journal" "commits"
let m_j_records = Obs.Metrics.counter ~subsystem:"journal" "records_written"
let m_j_replays = Obs.Metrics.counter ~subsystem:"journal" "replays"
let m_j_replayed = Obs.Metrics.counter ~subsystem:"journal" "records_replayed"
let m_j_torn = Obs.Metrics.counter ~subsystem:"journal" "torn_discarded"

let nil = 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* On-disk formats                                                     *)
(* ------------------------------------------------------------------ *)

(* Physical layout of a page file: physical page 0 is the header; logical
   page [i] lives at physical page [i + 1].

   Header page:
     0..7    magic "UPGHDR1\n"
     8       u32 page_size
     12      u32 used       (logical high-water mark)
     16      u32 live       (allocated and not freed)
     20      u32 free_head  (first free page, intrusive chain; 0xFFFFFFFF = none)
     24      u16 meta_len
     26..    meta bytes (client metadata, e.g. a B-tree root)
     ps-4    u32 FNV-1a checksum of bytes [0, ps-4)

   A free page stores the id of the next free page in its first 4 bytes.

   Journal file (path ^ ".journal"), written on every {!sync}:
     0..7    magic "UJRNL1\n\000"
     8       u32 page_size
     12      u32 count
     16..    count x (u32 physical_index ++ page bytes)   -- the NEW images
     ..      u32 FNV-1a checksum of the records region
     ..      8-byte commit marker "COMMITTD" *)

let header_magic = "UPGHDR1\n"
let journal_magic = "UJRNL1\n\000"
let commit_marker = "COMMITTD"
let header_fixed = 26 (* bytes before the meta area *)
let meta_capacity page_size = page_size - header_fixed - 4
let journal_path path = path ^ ".journal"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type backend =
  | Memory of { mutable pages : Bytes.t option array }
  | File of {
      fd : Unix.file_descr;
      path : string;
      mutable live_map : bool array;
      dirty : (int, Bytes.t) Hashtbl.t;
          (* logical id -> content written since the last sync *)
    }

type fault_spec = {
  fail_write : int option;
  torn : bool;
  read_error_every : int option;
}

let no_faults = { fail_write = None; torn = false; read_error_every = None }

type fault_plan = {
  spec : fault_spec;
  mutable reads_seen : int;
  mutable crashed : bool;
}

type t = {
  page_size : int;
  mutable backend : backend;
  mutable used : int;  (* high-water mark *)
  mutable free_list : int list;
  mutable live : int;
  mutable closed : bool;
  mutable meta : string;
  mutable meta_dirty : bool;
  mutable free_dirty : bool;  (* free list changed since the last sync *)
  mutable phys_writes : int;  (* backend write operations, ever *)
  mutable faults : fault_plan option;
  stats : Stats.t;
}

(* ------------------------------------------------------------------ *)
(* Low-level I/O                                                       *)
(* ------------------------------------------------------------------ *)

let pwrite_buf fd ~off b len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go o =
    if o < len then
      let n = Unix.write fd b o (len - o) in
      go (o + n)
  in
  go 0

let pread_buf fd ~off b len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec go o =
    if o < len then begin
      let n = Unix.read fd b o (len - o) in
      if n = 0 then Bytes.fill b o (len - o) '\000' (* past EOF: zeros *)
      else go (o + n)
    end
  in
  go 0

(* Every backend write funnels through here: the fault plan fires on the
   Nth physical write, optionally landing only the first half (a torn
   write), and from then on the pager behaves as a crashed process —
   all further physical writes raise. *)
let inject_write t ~full ~half =
  t.phys_writes <- t.phys_writes + 1;
  match t.faults with
  | None -> full ()
  | Some p -> (
      if p.crashed then raise (Fault "Pager: crashed (write after fault)");
      match p.spec.fail_write with
      | Some n when t.phys_writes >= n ->
          p.crashed <- true;
          t.stats.faults <- t.stats.faults + 1;
          if p.spec.torn then half ();
          raise (Fault (Printf.sprintf "Pager: injected fault at write %d" n))
      | _ -> full ())

let inject_read t =
  match t.faults with
  | None -> ()
  | Some p -> (
      match p.spec.read_error_every with
      | Some k when k > 0 ->
          p.reads_seen <- p.reads_seen + 1;
          if p.reads_seen mod k = 0 then begin
            t.stats.faults <- t.stats.faults + 1;
            raise (Fault "Pager: injected transient read error")
          end
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Header encoding                                                     *)
(* ------------------------------------------------------------------ *)

let encode_header t =
  let b = Bytes.make t.page_size '\000' in
  Bytes.blit_string header_magic 0 b 0 8;
  Bu.put_u32 b 8 t.page_size;
  Bu.put_u32 b 12 t.used;
  Bu.put_u32 b 16 t.live;
  Bu.put_u32 b 20 (match t.free_list with id :: _ -> id | [] -> nil);
  Bu.put_u16 b 24 (String.length t.meta);
  Bytes.blit_string t.meta 0 b header_fixed (String.length t.meta);
  Bu.put_u32 b (t.page_size - 4) (Bu.fnv32 b 0 (t.page_size - 4));
  b

let free_chain_page t ~next =
  let b = Bytes.make t.page_size '\000' in
  Bu.put_u32 b 0 next;
  b

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let make ~page_size backend =
  if page_size < 64 then invalid_arg "Pager.create: page_size < 64";
  {
    page_size;
    backend;
    used = 0;
    free_list = [];
    live = 0;
    closed = false;
    meta = "";
    meta_dirty = false;
    free_dirty = false;
    phys_writes = 0;
    faults = None;
    stats = Stats.create ();
  }

let create ?(page_size = 1024) () =
  make ~page_size (Memory { pages = Array.make 64 None })

let create_file ?(page_size = 1024) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    make ~page_size
      (File { fd; path; live_map = Array.make 64 false; dirty = Hashtbl.create 64 })
  in
  (* a freshly created file is immediately a valid (empty) page file *)
  pwrite_buf fd ~off:0 (encode_header t) page_size;
  Unix.fsync fd;
  t

(* --- journal recovery ----------------------------------------------- *)

let read_whole_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      let b = Bytes.create len in
      pread_buf fd ~off:0 b len;
      b)

let journal_valid j =
  let len = Bytes.length j in
  len >= 16 + 4 + 8
  && Bytes.sub_string j 0 8 = journal_magic
  &&
  let ps = Bu.get_u32 j 8 and count = Bu.get_u32 j 12 in
  ps >= 64
  && count >= 0
  && len = 16 + (count * (4 + ps)) + 4 + 8
  &&
  let records_len = count * (4 + ps) in
  Bu.get_u32 j (16 + records_len) = Bu.fnv32 j 16 records_len
  && Bytes.sub_string j (16 + records_len + 4) 8 = commit_marker

let recover path =
  let jpath = journal_path path in
  if not (Sys.file_exists jpath) then false
  else
    let j = read_whole_file jpath in
    if not (journal_valid j) then begin
      (* torn or unfinished journal: the main file was never touched in
         this transaction, so the pre-transaction state is intact *)
      Obs.Metrics.incr m_j_torn;
      Sys.remove jpath;
      false
    end
    else begin
      let ps = Bu.get_u32 j 8 and count = Bu.get_u32 j 12 in
      Obs.Metrics.incr m_j_replays;
      Obs.Metrics.add m_j_replayed count;
      let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          for r = 0 to count - 1 do
            let off = 16 + (r * (4 + ps)) in
            let idx = Bu.get_u32 j off in
            pwrite_buf fd ~off:(idx * ps) (Bytes.sub j (off + 4) ps) ps
          done;
          Unix.fsync fd);
      Sys.remove jpath;
      true
    end

let open_file ?page_size path =
  ignore (recover path);
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let fail fmt =
    Format.kasprintf (fun m -> Unix.close fd; invalid_arg m) fmt
  in
  let len = (Unix.fstat fd).Unix.st_size in
  if len < 12 then fail "Pager.open_file: not a page file (too short)";
  let probe = Bytes.create 12 in
  pread_buf fd ~off:0 probe 12;
  if Bytes.sub_string probe 0 8 <> header_magic then
    fail "Pager.open_file: not a page file (bad magic)";
  let ps = Bu.get_u32 probe 8 in
  if ps < 64 then fail "Pager.open_file: corrupt header (page size)";
  (match page_size with
  | Some p when p <> ps ->
      fail "Pager.open_file: page size mismatch (file has %d, expected %d)" ps p
  | Some _ | None -> ());
  if len mod ps <> 0 then
    fail "Pager.open_file: file length is not a multiple of page_size";
  let hdr = Bytes.create ps in
  pread_buf fd ~off:0 hdr ps;
  if Bu.get_u32 hdr (ps - 4) <> Bu.fnv32 hdr 0 (ps - 4) then
    fail "Pager.open_file: corrupt header (bad checksum)";
  let used = Bu.get_u32 hdr 12
  and live = Bu.get_u32 hdr 16
  and free_head = Bu.get_u32 hdr 20
  and meta_len = Bu.get_u16 hdr 24 in
  if meta_len > meta_capacity ps then
    fail "Pager.open_file: corrupt header (metadata length)";
  let meta = Bytes.sub_string hdr header_fixed meta_len in
  let live_map = Array.make (max 64 used) false in
  for i = 0 to used - 1 do
    live_map.(i) <- true
  done;
  (* rebuild the free list from the intrusive on-disk chain *)
  let free_list = ref [] and n_free = ref 0 in
  let link = Bytes.create 4 in
  let cur = ref free_head in
  while !cur <> nil do
    let id = !cur in
    if id < 0 || id >= used || not live_map.(id) then
      fail "Pager.open_file: corrupt free list (page %d)" id;
    live_map.(id) <- false;
    free_list := id :: !free_list;
    incr n_free;
    pread_buf fd ~off:((id + 1) * ps) link 4;
    cur := Bu.get_u32 link 0
  done;
  if used - !n_free <> live then
    fail "Pager.open_file: corrupt header (live count %d, found %d)" live
      (used - !n_free);
  let t =
    make ~page_size:ps
      (File { fd; path; live_map; dirty = Hashtbl.create 64 })
  in
  t.used <- used;
  t.live <- live;
  t.free_list <- List.rev !free_list;
  t.meta <- meta;
  t

(* ------------------------------------------------------------------ *)
(* Sync: journal, checkpoint, clear                                    *)
(* ------------------------------------------------------------------ *)

let check_open t = if t.closed then invalid_arg "Pager: store is closed"

let sync t =
  check_open t;
  Obs.Metrics.incr m_syncs;
  (match t.faults with
  | Some p when p.crashed ->
      (* a crashed process must not touch the files again — in particular
         it must not truncate a journal that already committed *)
      raise (Fault "Pager: crashed (sync after fault)")
  | _ -> ());
  match t.backend with
  | Memory _ -> () (* memory writes are applied immediately *)
  | File f ->
      if
        Hashtbl.length f.dirty > 0 || t.free_dirty || t.meta_dirty
      then begin
        (* the transaction: dirty pages, the (re-linked) free chain, and
           always the header — everything as physical (idx, bytes) pairs *)
        let records = ref [ (0, encode_header t) ] in
        Hashtbl.iter
          (fun id b -> records := (id + 1, b) :: !records)
          f.dirty;
        if t.free_dirty then begin
          let rec chain = function
            | [] -> ()
            | id :: rest ->
                let next = match rest with n :: _ -> n | [] -> nil in
                records := (id + 1, free_chain_page t ~next) :: !records;
                chain rest
          in
          chain t.free_list
        end;
        let records =
          List.sort (fun (a, _) (b, _) -> compare a b) !records
        in
        let count = List.length records in
        Obs.Metrics.incr m_j_commits;
        Obs.Metrics.add m_j_records count;
        (* 1. write the journal (new images), fsync it *)
        let jfd =
          Unix.openfile (journal_path f.path)
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> Unix.close jfd)
          (fun () ->
            let head = Bytes.create 16 in
            Bytes.blit_string journal_magic 0 head 0 8;
            Bu.put_u32 head 8 t.page_size;
            Bu.put_u32 head 12 count;
            pwrite_buf jfd ~off:0 head 16;
            let sum = ref 0x811C9DC5 in
            List.iteri
              (fun r (idx, page) ->
                let rec_len = 4 + t.page_size in
                let buf = Bytes.create rec_len in
                Bu.put_u32 buf 0 idx;
                Bytes.blit page 0 buf 4 t.page_size;
                sum := Bu.fnv32 ~init:!sum buf 0 rec_len;
                let off = 16 + (r * rec_len) in
                inject_write t
                  ~full:(fun () -> pwrite_buf jfd ~off buf rec_len)
                  ~half:(fun () -> pwrite_buf jfd ~off buf (rec_len / 2)))
              records;
            let tail = Bytes.create 12 in
            Bu.put_u32 tail 0 !sum;
            Bytes.blit_string commit_marker 0 tail 4 8;
            let off = 16 + (count * (4 + t.page_size)) in
            inject_write t
              ~full:(fun () -> pwrite_buf jfd ~off tail 12)
              ~half:(fun () -> pwrite_buf jfd ~off tail 6);
            Unix.fsync jfd);
        (* 2. checkpoint the same images into the main file, fsync *)
        List.iter
          (fun (idx, page) ->
            let off = idx * t.page_size in
            inject_write t
              ~full:(fun () -> pwrite_buf f.fd ~off page t.page_size)
              ~half:(fun () -> pwrite_buf f.fd ~off page (t.page_size / 2)))
          records;
        Unix.fsync f.fd;
        (* 3. the transaction is durable; drop the journal *)
        Sys.remove (journal_path f.path);
        Hashtbl.reset f.dirty;
        t.free_dirty <- false;
        t.meta_dirty <- false
      end

let close t =
  match t.backend with
  | Memory _ -> t.closed <- true
  | File f ->
      if not t.closed then begin
        let fin () =
          t.closed <- true;
          Unix.close f.fd
        in
        (match sync t with () -> fin () | exception e -> fin (); raise e)
      end

let page_size t = t.page_size
let stats t = t.stats
let physical_writes t = t.phys_writes

let meta t = t.meta

let set_meta t m =
  check_open t;
  if String.length m > meta_capacity t.page_size then
    invalid_arg "Pager.set_meta: metadata does not fit in the header page";
  if m <> t.meta then begin
    t.meta <- m;
    t.meta_dirty <- true
  end

let create_faulty spec t =
  t.faults <- Some { spec; reads_seen = 0; crashed = false };
  t

(* ------------------------------------------------------------------ *)
(* Page operations                                                     *)
(* ------------------------------------------------------------------ *)

let grow_array a default =
  let n = Array.length a in
  let b = Array.make (2 * n) default in
  Array.blit a 0 b 0 n;
  b

let is_live t id =
  id >= 0 && id < t.used
  &&
  match t.backend with
  | Memory m -> m.pages.(id) <> None
  | File f -> f.live_map.(id)

let alloc t =
  check_open t;
  Obs.Metrics.incr m_allocs;
  t.stats.allocs <- t.stats.allocs + 1;
  t.live <- t.live + 1;
  let id =
    match t.free_list with
    | id :: rest ->
        t.free_list <- rest;
        t.free_dirty <- true;
        id
    | [] ->
        let id = t.used in
        t.used <- t.used + 1;
        id
  in
  (match t.backend with
  | Memory m ->
      if id >= Array.length m.pages then m.pages <- grow_array m.pages None;
      m.pages.(id) <- Some (Bytes.make t.page_size '\000')
  | File f ->
      if id >= Array.length f.live_map then
        f.live_map <- grow_array f.live_map false;
      f.live_map.(id) <- true;
      Hashtbl.replace f.dirty id (Bytes.make t.page_size '\000'));
  id

let check_live t id =
  check_open t;
  if id < 0 || id >= t.used then invalid_arg "Pager: page id out of range";
  if not (is_live t id) then invalid_arg "Pager: page not allocated"

let read t id =
  check_live t id;
  inject_read t;
  Obs.Metrics.incr m_reads;
  t.stats.reads <- t.stats.reads + 1;
  match t.backend with
  | Memory m -> (
      match m.pages.(id) with
      | Some b -> Bytes.copy b
      | None -> assert false)
  | File f -> (
      match Hashtbl.find_opt f.dirty id with
      | Some b -> Bytes.copy b
      | None ->
          let b = Bytes.create t.page_size in
          pread_buf f.fd ~off:((id + 1) * t.page_size) b t.page_size;
          b)

let write t id b =
  if Bytes.length b <> t.page_size then
    invalid_arg "Pager.write: wrong page size";
  check_live t id;
  Obs.Metrics.incr m_writes;
  t.stats.writes <- t.stats.writes + 1;
  match t.backend with
  | Memory m ->
      inject_write t
        ~full:(fun () -> m.pages.(id) <- Some (Bytes.copy b))
        ~half:(fun () ->
          (* a torn write: the first half lands, the rest keeps its old
             content *)
          let old =
            match m.pages.(id) with Some o -> o | None -> assert false
          in
          let torn = Bytes.copy old in
          Bytes.blit b 0 torn 0 (t.page_size / 2);
          m.pages.(id) <- Some torn)
  | File f -> Hashtbl.replace f.dirty id (Bytes.copy b)

let free t id =
  check_live t id;
  Obs.Metrics.incr m_frees;
  (match t.backend with
  | Memory m -> m.pages.(id) <- None
  | File f ->
      f.live_map.(id) <- false;
      Hashtbl.remove f.dirty id);
  t.live <- t.live - 1;
  t.free_list <- id :: t.free_list;
  t.free_dirty <- true

let page_count t = t.live

module Cache = struct
  type nonrec t = { fetch : int -> Bytes.t; seen : (int, Bytes.t) Hashtbl.t }

  let of_read fetch = { fetch; seen = Hashtbl.create 64 }
  let create pager = of_read (read pager)

  let read t id =
    match Hashtbl.find_opt t.seen id with
    | Some b -> b
    | None ->
        let b = t.fetch id in
        Hashtbl.add t.seen id b;
        b

  let distinct_reads t = Hashtbl.length t.seen
end
