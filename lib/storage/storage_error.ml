(* Typed corruption errors for the storage layer.

   Every detector in the stack — the pager's per-page checksums, the
   header/free-list validation in [Pager.open_file], and the B-tree's
   node decoder — reports damage through the single [Corruption]
   exception, so callers can distinguish "the data on disk is bad" from
   programming errors ([Invalid_argument]) and transient injected faults
   ([Pager.Fault]). *)

exception
  Corruption of { page : int option; component : string; detail : string }

(* Process-wide count of failed page-checksum verifications.  Lives here
   (not in Pager) so the B-tree and verifier can bump it for damage they
   detect above the pager. *)
let checksum_failures =
  Obs.Metrics.counter ~subsystem:"storage"
    ~help:"page reads whose content failed checksum verification"
    "checksum_failures"

let corruptf ?page ~component fmt =
  Format.kasprintf
    (fun detail -> raise (Corruption { page; component; detail }))
    fmt

let () =
  Printexc.register_printer (function
    | Corruption { page; component; detail } ->
        Some
          (Printf.sprintf "Storage_error.Corruption(%s%s): %s" component
             (match page with
             | Some p -> Printf.sprintf ", page %d" p
             | None -> "")
             detail)
    | _ -> None)
