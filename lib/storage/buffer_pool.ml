(* LRU via a doubly-linked list threaded through a hashtable. *)

(* process-wide counters; each pool also mirrors its events into the
   underlying pager's Stats.t so per-pager snapshots see cache behaviour *)
let m_hits = Obs.Metrics.counter ~subsystem:"buffer_pool" "hits"
let m_misses = Obs.Metrics.counter ~subsystem:"buffer_pool" "misses"
let m_evictions = Obs.Metrics.counter ~subsystem:"buffer_pool" "evictions"

(* The LRU list is circular through a sentinel node, with non-optional
   links: relinking a node on a hit is pure pointer surgery, where
   option-typed links would allocate a [Some] per splice — and the hit
   path must stay allocation-free (it serves the B-tree descent). *)
type node = {
  page_id : int;
  mutable data : Bytes.t;
  mutable prev : node;  (* toward LRU *)
  mutable next : node;  (* toward MRU *)
}

type t = {
  pager : Pager.t;
  capacity : int;
  lock : Mutex.t;  (* LRU surgery is multi-field: serialize everything *)
  table : (int, node) Hashtbl.t;
  sentinel : node;  (* sentinel.next = MRU, sentinel.prev = LRU *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable relinks : int;  (* hits that paid the unlink+push_front *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ~capacity pager =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  let rec sentinel =
    { page_id = -1; data = Bytes.empty; prev = sentinel; next = sentinel }
  in
  {
    pager;
    capacity;
    lock = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    sentinel;
    hits = 0;
    misses = 0;
    evictions = 0;
    relinks = 0;
  }

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let push_front t n =
  let s = t.sentinel in
  n.next <- s.next;
  n.prev <- s;
  s.next.prev <- n;
  s.next <- n

let evict_lru t =
  let n = t.sentinel.prev in
  if n != t.sentinel then begin
    unlink n;
    Hashtbl.remove t.table n.page_id;
    t.evictions <- t.evictions + 1;
    Obs.Metrics.incr m_evictions;
    Pager.record_pool_event t.pager `Eviction
  end

(* The borrowing read.  A hit hands out the resident bytes themselves —
   no copy, no closures, no option allocation — which is safe under the
   coherence contract: [update] replaces a resident node's buffer with a
   fresh copy rather than mutating it in place, and eviction or
   invalidation only drops the pool's reference, so a borrowed buffer is
   immutable for as long as the borrower holds it (it just may grow
   stale, exactly as a copied snapshot of it would).  Callers must not
   write to the returned bytes.  The B-tree read path is the intended
   borrower; this is what makes a warm-pool descent allocation-free. *)
let read_ro t id =
  Mutex.lock t.lock;
  match Hashtbl.find t.table id with
  | n ->
      t.hits <- t.hits + 1;
      (* fast path: a hit on the MRU node needs no list surgery *)
      if t.sentinel.next != n then begin
        t.relinks <- t.relinks + 1;
        unlink n;
        push_front t n
      end;
      let data = n.data in
      Mutex.unlock t.lock;
      Obs.Metrics.incr m_hits;
      Pager.record_pool_event t.pager `Hit;
      data
  | exception Not_found ->
      t.misses <- t.misses + 1;
      Obs.Metrics.incr m_misses;
      Pager.record_pool_event t.pager `Miss;
      (match Pager.read t.pager id with
      | data ->
          if Hashtbl.length t.table >= t.capacity then evict_lru t;
          let rec n = { page_id = id; data; prev = n; next = n } in
          Hashtbl.replace t.table id n;
          push_front t n;
          Mutex.unlock t.lock;
          data
      | exception e ->
          Mutex.unlock t.lock;
          raise e)

let read t id = Bytes.copy (read_ro t id)

(* Write-through: refresh a resident page in place so a later hit can
   never serve stale bytes.  Absent pages are not write-allocated — the
   pool caches read traffic, and the pager remains the source of truth.
   Recency is deliberately untouched: an update is not a read. *)
let update t id data =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table id with
  | Some n -> n.data <- Bytes.copy data
  | None -> ()

let invalidate t id =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table id with
  | Some n ->
      unlink n;
      Hashtbl.remove t.table id
  | None -> ()

let flush t =
  with_lock t @@ fun () ->
  Hashtbl.reset t.table;
  let s = t.sentinel in
  s.next <- s;
  s.prev <- s

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let evictions t = with_lock t (fun () -> t.evictions)
let relinks t = with_lock t (fun () -> t.relinks)
let capacity t = t.capacity
let pager t = t.pager

let lru_order t =
  with_lock t @@ fun () ->
  let s = t.sentinel in
  let rec go acc n = if n == s then List.rev acc else go (n.page_id :: acc) n.next in
  go [] s.next

let hit_rate t =
  with_lock t @@ fun () ->
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let resident t = with_lock t (fun () -> Hashtbl.length t.table)
