(* LRU via a doubly-linked list threaded through a hashtable. *)

(* process-wide counters; each pool also mirrors its events into the
   underlying pager's Stats.t so per-pager snapshots see cache behaviour *)
let m_hits = Obs.Metrics.counter ~subsystem:"buffer_pool" "hits"
let m_misses = Obs.Metrics.counter ~subsystem:"buffer_pool" "misses"
let m_evictions = Obs.Metrics.counter ~subsystem:"buffer_pool" "evictions"

type node = {
  page_id : int;
  mutable data : Bytes.t;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  pager : Pager.t;
  capacity : int;
  lock : Mutex.t;  (* LRU surgery is multi-field: serialize everything *)
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable relinks : int;  (* hits that paid the unlink+push_front *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ~capacity pager =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    pager;
    capacity;
    lock = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    relinks = 0;
  }

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.page_id;
      t.evictions <- t.evictions + 1;
      Obs.Metrics.incr m_evictions;
      Pager.record_pool_event t.pager `Eviction

let read t id =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table id with
  | Some n ->
      t.hits <- t.hits + 1;
      Obs.Metrics.incr m_hits;
      Pager.record_pool_event t.pager `Hit;
      (* fast path: a hit on the MRU node needs no list surgery.  The
         node must be compared directly — [t.head != Some n] allocates a
         fresh [Some] and physical inequality against it is always
         true. *)
      (match t.head with
      | Some h when h == n -> ()
      | _ ->
          t.relinks <- t.relinks + 1;
          unlink t n;
          push_front t n);
      Bytes.copy n.data
  | None ->
      t.misses <- t.misses + 1;
      Obs.Metrics.incr m_misses;
      Pager.record_pool_event t.pager `Miss;
      let data = Pager.read t.pager id in
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let n = { page_id = id; data; prev = None; next = None } in
      Hashtbl.replace t.table id n;
      push_front t n;
      Bytes.copy data

(* Write-through: refresh a resident page in place so a later hit can
   never serve stale bytes.  Absent pages are not write-allocated — the
   pool caches read traffic, and the pager remains the source of truth.
   Recency is deliberately untouched: an update is not a read. *)
let update t id data =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table id with
  | Some n -> n.data <- Bytes.copy data
  | None -> ()

let invalidate t id =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table id with
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table id
  | None -> ()

let flush t =
  with_lock t @@ fun () ->
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let hits t = with_lock t (fun () -> t.hits)
let misses t = with_lock t (fun () -> t.misses)
let evictions t = with_lock t (fun () -> t.evictions)
let relinks t = with_lock t (fun () -> t.relinks)
let capacity t = t.capacity
let pager t = t.pager

let lru_order t =
  with_lock t @@ fun () ->
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.page_id :: acc) n.next
  in
  go [] t.head

let hit_rate t =
  with_lock t @@ fun () ->
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let resident t = with_lock t (fun () -> Hashtbl.length t.table)
