(** Page-access accounting.

    The paper's experimental metric is the number of index pages read per
    query ("visited nodes" in Table 1, "page reads" in Figures 5–8).  Every
    pager carries a [Stats.t]; retrieval algorithms snapshot it before a
    query and diff it after.  A {!Buffer_pool} reading through the pager
    also records its hit/miss/eviction behaviour here, so one snapshot
    captures both raw page traffic and cache effectiveness. *)

type t = {
  mutable reads : int;   (** pages fetched *)
  mutable writes : int;  (** pages written back *)
  mutable allocs : int;  (** pages allocated *)
  mutable faults : int;  (** injected faults fired (see {!Pager.create_faulty}) *)
  mutable pool_hits : int;  (** buffer-pool reads served without a pager read *)
  mutable pool_misses : int;  (** buffer-pool reads that fell through to the pager *)
  mutable pool_evictions : int;  (** buffer-pool pages dropped for capacity *)
}

val create : unit -> t
val reset : t -> unit

val snapshot : t -> t
(** An independent copy, for before/after deltas. *)

val diff : before:t -> after:t -> t
(** Field-wise [after - before]. *)

val pp : Format.formatter -> t -> unit
(** Pool counters are printed only when any of them is non-zero, so
    pagers without a buffer pool render exactly as before. *)
