(** Page-access accounting.

    The paper's experimental metric is the number of index pages read per
    query ("visited nodes" in Table 1, "page reads" in Figures 5–8).  Every
    pager carries a [Stats.t]; retrieval algorithms snapshot it before a
    query and diff it after.  A {!Buffer_pool} reading through the pager
    also records its hit/miss/eviction behaviour here, so one snapshot
    captures both raw page traffic and cache effectiveness.

    {b Thread safety.}  A [Stats.t] is plain mutable state with no
    internal locking; it has exactly one owner at a time.  A live pager's
    stats belong to the single writer thread; a {!Pager.snapshot} carries
    its own [Stats.t] owned by the session thread reading through it, and
    {!Pager.release_snapshot} folds it into the parent's stats with
    {!merge_into} under the parent's lock.  Never share one [Stats.t]
    between threads without external serialization. *)

type t = {
  mutable reads : int;   (** pages fetched *)
  mutable writes : int;  (** pages written back *)
  mutable allocs : int;  (** pages allocated *)
  mutable faults : int;  (** injected faults fired (see {!Pager.create_faulty}) *)
  mutable pool_hits : int;  (** buffer-pool reads served without a pager read *)
  mutable pool_misses : int;  (** buffer-pool reads that fell through to the pager *)
  mutable pool_evictions : int;  (** buffer-pool pages dropped for capacity *)
}

val create : unit -> t
val reset : t -> unit

val snapshot : t -> t
(** An independent copy, for before/after deltas. *)

val diff : before:t -> after:t -> t
(** Field-wise [after - before]. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into s] adds every field of [s] into [into] — used to
    fold a released snapshot's private accounting back into its parent
    pager.  The caller must own (or hold the lock protecting) both
    records. *)

val pp : Format.formatter -> t -> unit
(** Pool counters are printed only when any of them is non-zero, so
    pagers without a buffer pool render exactly as before. *)
