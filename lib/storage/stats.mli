(** Page-access accounting.

    The paper's experimental metric is the number of index pages read per
    query ("visited nodes" in Table 1, "page reads" in Figures 5–8).  Every
    pager carries a [Stats.t]; retrieval algorithms reset it before a query
    and read it after. *)

type t = {
  mutable reads : int;   (** pages fetched *)
  mutable writes : int;  (** pages written back *)
  mutable allocs : int;  (** pages allocated *)
  mutable faults : int;  (** injected faults fired (see {!Pager.create_faulty}) *)
}

val create : unit -> t
val reset : t -> unit

val snapshot : t -> t
(** An independent copy, for before/after deltas. *)

val diff : before:t -> after:t -> t
(** Field-wise [after - before]. *)

val pp : Format.formatter -> t -> unit
