(** A fixed-capacity LRU buffer pool over a {!Pager}.

    The paper counts raw page reads (no buffering between queries, a
    per-query cache within one: Section 3.3's "utilize any page which is
    already in memory").  Real systems put an LRU pool under the index;
    this module provides that layer so experiments can also report
    steady-state hit rates (ablation A6).

    Reads through the pool count against the underlying pager only on a
    miss; hits are served from the pool.  Every hit, miss and eviction is
    also mirrored into the underlying pager's {!Stats.t}
    ([pool_hits]/[pool_misses]/[pool_evictions]) and the process-wide
    [buffer_pool.*] metrics, so cache behaviour shows up in the same
    snapshots the page-read experiments already take.  The pool is read-only: writers
    must go straight to the pager, and call {!invalidate} for pages they
    changed (or {!flush} after a batch).  Pager reads always observe
    writes buffered since the last {!Pager.sync}, so the pool stays
    coherent with the journaled file backend under the same discipline. *)

type t

val create : capacity:int -> Pager.t -> t
(** [capacity] is the number of pages held (must be positive). *)

val read : t -> int -> Bytes.t
(** Serves from the pool, falling back to (and counting) a pager read. *)

val invalidate : t -> int -> unit
(** Drops one page from the pool (after an in-place update or free). *)

val flush : t -> unit
(** Empties the pool. *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Pages dropped to make room (capacity pressure, not {!invalidate}). *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; [0.] before any access. *)

val resident : t -> int
(** Pages currently held. *)
