(** A fixed-capacity LRU buffer pool over a {!Pager}.

    The paper counts raw page reads (no buffering between queries, a
    per-query cache within one: Section 3.3's "utilize any page which is
    already in memory").  Real systems put an LRU pool under the index;
    this module provides that layer so experiments can also report
    steady-state hit rates (ablation A6).

    Reads through the pool count against the underlying pager only on a
    miss; hits are served from the pool.  Every hit, miss and eviction is
    also mirrored into the underlying pager's {!Stats.t}
    ([pool_hits]/[pool_misses]/[pool_evictions]) and the process-wide
    [buffer_pool.*] metrics, so cache behaviour shows up in the same
    snapshots the page-read experiments already take.

    {b Coherence contract.}  Writers go straight to the pager and then
    either {!update} (write-through: refresh the resident copy) or
    {!invalidate} (drop it) the page in the pool; pages returned to the
    pager's free list must be invalidated, since the pager may hand the
    id back out for unrelated content.  Under that discipline the pool
    can never serve stale bytes.  [Btree] follows it for every page it
    writes or frees — see DESIGN.md §7.  A pool is tied to one open
    pager instance: journal [recover] runs on closed files, so a pager
    reopened after recovery starts with a fresh (empty, trivially
    coherent) pool.

    {b Thread safety.}  All operations serialize on an internal
    per-pool mutex, so a pool is safe to share between threads.  Note
    the pool mirrors its counters into the pager's {!Stats.t}, which is
    owned by the writer thread — so a shared pool still belongs to the
    {e writer side} of the pager's single-writer contract.  Snapshot
    sessions never read through a pool: a pool caches the live image,
    which may be ahead of a pinned snapshot, so views attach without one
    (see [Index.snapshot_view]). *)

type t

val create : capacity:int -> Pager.t -> t
(** [capacity] is the number of pages held (must be positive). *)

val read : t -> int -> Bytes.t
(** Serves from the pool, falling back to (and counting) a pager read.
    Returns a private copy the caller may freely mutate. *)

val read_ro : t -> int -> Bytes.t
(** Like {!read}, but a hit hands out the resident buffer itself —
    no copy, no allocation.  The returned bytes must be treated as
    read-only; they stay valid (though possibly stale) indefinitely,
    because {!update} replaces a resident buffer rather than mutating it
    and eviction only drops the pool's reference.  This is the B-tree
    descent's page source: a warm lookup allocates nothing. *)

val update : t -> int -> Bytes.t -> unit
(** Write-through hook: if the page is resident, replace its bytes with
    a copy of [data].  Absent pages are left absent (no write-allocate)
    and recency is unchanged — an update is not a read. *)

val invalidate : t -> int -> unit
(** Drops one page from the pool (after a free, or in place of
    {!update}). *)

val flush : t -> unit
(** Empties the pool. *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Pages dropped to make room (capacity pressure, not {!invalidate}). *)

val relinks : t -> int
(** Hits that moved the node to the front; a hit on the MRU node is
    counted in {!hits} but not here. *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; [0.] before any access. *)

val resident : t -> int
(** Pages currently held. *)

val capacity : t -> int
val pager : t -> Pager.t

val lru_order : t -> int list
(** Resident page ids, most recently used first (for tests). *)
