(** Group-commit coordinator.

    Serializes "make everything submitted so far durable" requests from
    concurrent committers into batched flushes.  Committers first
    {!submit} (under whatever lock serializes their mutations — the
    coordinator itself never takes that lock), receiving a monotonically
    increasing logical sequence number (LSN).  They then call
    {!wait_durable} with that LSN; the first waiter whose LSN is not yet
    durable becomes the {e leader}: it optionally sleeps a short group
    window so trailing committers can pile on, runs the flush function
    once, and wakes every waiter whose LSN the flush covered.  Everyone
    else just blocks — one fsync cycle acknowledges the whole group.

    The flush function is supplied at {!create} time.  It must make
    every transaction submitted {e so far} durable and return the
    highest LSN it covered (typically: take the writer lock, read
    {!submitted}, sync the underlying pagers, return that value).
    Because the coordinator never calls it while holding its own
    internal lock, the flush function may take any lock it likes.

    A committer that skips {!wait_durable} has an {e asynchronous}
    commit: acknowledged to the caller, applied in memory, but not yet
    durable.  The durability watermark {!durable_lsn} is monotone; an
    async commit with LSN [l] is durable exactly when
    [durable_lsn t >= l], which some later flush (or an explicit
    {!wait_durable}/{!flush}) guarantees eventually. *)

type t

val create : ?window:float -> flush:(unit -> int) -> unit -> t
(** [create ~flush ()] makes a coordinator around [flush].  [window]
    (seconds, default [0.]) is how long a leader sleeps before flushing
    to let a group form; [0.] flushes immediately. *)

val set_window : t -> float -> unit
(** Adjust the group window at runtime (clamped to [>= 0.]). *)

val submit : t -> int
(** Allocate and return the next LSN.  Call this while the transaction's
    effects are fully applied (i.e. under the caller's writer lock), so
    that any flush sampling {!submitted} afterwards includes them. *)

val submitted : t -> int
(** Highest LSN handed out by {!submit} so far. *)

val durable_lsn : t -> int
(** The durability watermark: every commit with LSN [<= durable_lsn t]
    is on stable storage.  Monotone non-decreasing. *)

val wait_durable : t -> int -> unit
(** [wait_durable t lsn] returns once [durable_lsn t >= lsn], leading a
    flush itself if nobody else is.  Exceptions raised by the flush
    function propagate to the leader; other waiters retry and will
    re-encounter the same failure if it persists. *)

val flush : t -> unit
(** [flush t] = [wait_durable t (submitted t)]: drive everything
    submitted so far to disk. *)
