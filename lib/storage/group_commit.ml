(* Group-commit coordinator: leader/follower batching of durability
   requests around a single flush function.  See group_commit.mli for
   the contract.

   Locking: [mu] guards every mutable field.  The flush function is
   only ever called with [mu] released (the [flushing] flag keeps a
   second leader from starting), so it is free to take the caller's
   writer lock; the safe lock order is therefore
   writer lock -> mu, never the reverse. *)

let m_groups = Obs.Metrics.counter ~subsystem:"journal" "group_commits"
let m_acked = Obs.Metrics.counter ~subsystem:"journal" "group_acked"
let m_size = Obs.Metrics.histogram ~subsystem:"journal" "group_size"
let m_watermark = Obs.Metrics.gauge ~subsystem:"journal" "group_durable_lsn"

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  flush_fn : unit -> int;
  mutable window : float;
  mutable submitted : int; (* highest LSN handed out *)
  mutable durable : int; (* highest LSN known durable *)
  mutable flushing : bool; (* a leader is between mu releases *)
}

let create ?(window = 0.) ~flush () =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    flush_fn = flush;
    window = Float.max 0. window;
    submitted = 0;
    durable = 0;
    flushing = false;
  }

let set_window t w =
  Mutex.lock t.mu;
  t.window <- Float.max 0. w;
  Mutex.unlock t.mu

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let submit t =
  with_mu t (fun () ->
      t.submitted <- t.submitted + 1;
      t.submitted)

let submitted t = with_mu t (fun () -> t.submitted)
let durable_lsn t = with_mu t (fun () -> t.durable)

(* The leader has set [flushing] and released [mu]; run one flush cycle
   and publish the result.  On any outcome — success or exception — the
   leadership flag drops and all waiters wake to re-check. *)
let lead t =
  let finish target =
    Mutex.lock t.mu;
    (match target with
    | Some covered when covered > t.durable ->
        let group = covered - t.durable in
        t.durable <- covered;
        Obs.Metrics.incr m_groups;
        Obs.Metrics.add m_acked group;
        Obs.Metrics.observe m_size group;
        Obs.Metrics.set m_watermark t.durable
    | Some _ | None -> ());
    t.flushing <- false;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu
  in
  if t.window > 0. then Unix.sleepf t.window;
  match t.flush_fn () with
  | covered -> finish (Some covered)
  | exception e ->
      finish None;
      raise e

let rec wait_durable t lsn =
  let role =
    with_mu t (fun () ->
        if t.durable >= lsn then `Done
        else if not t.flushing then begin
          t.flushing <- true;
          `Lead
        end
        else begin
          (* a flush is in flight; wait for it to land and re-check —
             it may or may not have sampled our LSN *)
          while t.flushing && t.durable < lsn do
            Condition.wait t.cond t.mu
          done;
          if t.durable >= lsn then `Done else `Retry
        end)
  in
  match role with
  | `Done -> ()
  | `Retry -> wait_durable t lsn
  | `Lead ->
      lead t;
      wait_durable t lsn

let flush t = wait_durable t (submitted t)
