(** Typed corruption errors shared by the whole storage stack.

    Raised instead of bare [Failure]/[Invalid_argument] whenever
    on-disk data fails validation: a page-checksum mismatch, a mangled
    page-file header, a broken free-list chain, or an undecodable
    B-tree node.  Catch [Corruption] to distinguish media damage from
    API misuse. *)

exception
  Corruption of { page : int option; component : string; detail : string }
(** [page] is the logical page id when the damage is attributable to one
    page; [component] names the detector (["pager.page"],
    ["pager.header"], ["pager.free_list"], ["pager.checksum_page"],
    ["btree.node"], ["btree.meta"], ...); [detail] is the human-readable
    diagnostic. *)

val corruptf :
  ?page:int -> component:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [corruptf ?page ~component fmt ...] raises {!Corruption} with a
    formatted [detail]. *)

val checksum_failures : Obs.Metrics.counter
(** The process-wide [storage.checksum_failures] counter, incremented on
    every page read whose content fails verification. *)
